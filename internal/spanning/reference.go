package spanning

import (
	"fmt"
	"sort"

	"kkt/internal/graph"
)

// Kruskal returns the indices (into g.Edges()) of the unique minimum
// spanning forest of g under composite weights. Because composite weights
// are distinct, the MSF is unique and set comparison against a distributed
// run is exact.
func Kruskal(g *graph.Graph) []int {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return g.Composite(g.Edge(order[x])) < g.Composite(g.Edge(order[y]))
	})
	uf := NewUnionFind(g.N)
	forest := make([]int, 0, g.N-1)
	for _, ei := range order {
		e := g.Edge(ei)
		if uf.Union(e.A, e.B) {
			forest = append(forest, ei)
		}
	}
	sort.Ints(forest)
	return forest
}

// BFSForest returns edge indices of an arbitrary spanning forest (BFS from
// each unvisited node in ID order).
func BFSForest(g *graph.Graph) []int {
	adj := g.Adjacency()
	visited := make([]bool, g.N+1)
	var forest []int
	queue := make([]uint32, 0, g.N)
	for s := 1; s <= g.N; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], uint32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ei := range adj[v] {
				e := g.Edge(ei)
				o := e.A
				if o == v {
					o = e.B
				}
				if !visited[o] {
					visited[o] = true
					forest = append(forest, ei)
					queue = append(queue, o)
				}
			}
		}
	}
	sort.Ints(forest)
	return forest
}

// Components returns a component label per node (index 0 unused) and the
// number of components.
func Components(g *graph.Graph) ([]int, int) {
	uf := NewUnionFind(g.N)
	for _, e := range g.Edges() {
		uf.Union(e.A, e.B)
	}
	label := make([]int, g.N+1)
	next := 0
	seen := make(map[uint32]int)
	for v := 1; v <= g.N; v++ {
		r := uf.Find(uint32(v))
		l, ok := seen[r]
		if !ok {
			l = next
			next++
			seen[r] = l
		}
		label[v] = l
	}
	return label, next
}

// IsSpanningForest reports whether the given edge indices form a maximal
// spanning forest of g: acyclic, and connecting every pair of nodes that g
// connects.
func IsSpanningForest(g *graph.Graph, forest []int) error {
	uf := NewUnionFind(g.N)
	for _, ei := range forest {
		if ei < 0 || ei >= g.M() {
			return fmt.Errorf("spanning: edge index %d out of range", ei)
		}
		e := g.Edge(ei)
		if !uf.Union(e.A, e.B) {
			return fmt.Errorf("spanning: cycle through edge {%d,%d}", e.A, e.B)
		}
	}
	// Maximality: forest must connect everything the graph connects.
	gLabel, gComp := Components(g)
	if g.N-len(forest) != gComp {
		return fmt.Errorf("spanning: %d edges gives %d trees, graph has %d components",
			len(forest), g.N-len(forest), gComp)
	}
	// Same partition: every graph edge must stay within one forest tree.
	for _, e := range g.Edges() {
		if uf.Find(e.A) != uf.Find(e.B) {
			return fmt.Errorf("spanning: nodes %d,%d connected in graph (label %d) but not in forest",
				e.A, e.B, gLabel[e.A])
		}
	}
	return nil
}

// IsMSF reports whether the given edge indices are exactly the unique
// minimum spanning forest of g.
func IsMSF(g *graph.Graph, forest []int) error {
	if err := IsSpanningForest(g, forest); err != nil {
		return err
	}
	want := Kruskal(g)
	got := append([]int(nil), forest...)
	sort.Ints(got)
	if len(got) != len(want) {
		return fmt.Errorf("spanning: MSF has %d edges, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			e, w := g.Edge(got[i]), g.Edge(want[i])
			return fmt.Errorf("spanning: MSF mismatch at position %d: got {%d,%d} w=%d, want {%d,%d} w=%d",
				i, e.A, e.B, e.Raw, w.A, w.B, w.Raw)
		}
	}
	return nil
}

// ForestWeight sums raw weights over the given edge indices.
func ForestWeight(g *graph.Graph, forest []int) uint64 {
	var total uint64
	for _, ei := range forest {
		total += g.Edge(ei).Raw
	}
	return total
}

// CutEdges returns the indices of edges with exactly one endpoint in the
// node set inT (a boolean per node, index 0 unused) — the paper's
// Cut(T, V\T).
func CutEdges(g *graph.Graph, inT []bool) []int {
	var cut []int
	for i, e := range g.Edges() {
		if inT[e.A] != inT[e.B] {
			cut = append(cut, i)
		}
	}
	return cut
}

// MinCutEdge returns the index of the minimum-composite-weight edge leaving
// the node set, or -1 if the cut is empty.
func MinCutEdge(g *graph.Graph, inT []bool) int {
	best := -1
	var bestW uint64
	for i, e := range g.Edges() {
		if inT[e.A] != inT[e.B] {
			w := g.Composite(e)
			if best < 0 || w < bestW {
				best, bestW = i, w
			}
		}
	}
	return best
}

// TreePathMax returns the index (into forest positions of g) of the
// maximum-composite-weight edge on the tree path between u and v, walking
// only the given forest edges. It returns -1 if u and v are not connected
// by the forest. Used to validate the Insert repair rule.
func TreePathMax(g *graph.Graph, forest []int, u, v uint32) int {
	adj := make(map[uint32][]int)
	inForest := make(map[int]bool, len(forest))
	for _, ei := range forest {
		e := g.Edge(ei)
		adj[e.A] = append(adj[e.A], ei)
		adj[e.B] = append(adj[e.B], ei)
		inForest[ei] = true
	}
	// BFS from u remembering the parent edge.
	parentEdge := make(map[uint32]int)
	visited := map[uint32]bool{u: true}
	queue := []uint32{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			break
		}
		for _, ei := range adj[x] {
			e := g.Edge(ei)
			o := e.A
			if o == x {
				o = e.B
			}
			if !visited[o] {
				visited[o] = true
				parentEdge[o] = ei
				queue = append(queue, o)
			}
		}
	}
	if !visited[v] {
		return -1
	}
	best := -1
	var bestW uint64
	for x := v; x != u; {
		ei := parentEdge[x]
		e := g.Edge(ei)
		if w := g.Composite(e); best < 0 || w > bestW {
			best, bestW = ei, w
		}
		if e.A == x {
			x = e.B
		} else {
			x = e.A
		}
	}
	return best
}
