package spanning

import (
	"sort"
	"testing"

	"kkt/internal/graph"
	"kkt/internal/rng"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("initial sets = %d", uf.Sets())
	}
	if !uf.Union(1, 2) || !uf.Union(3, 4) {
		t.Fatal("fresh unions failed")
	}
	if uf.Union(2, 1) {
		t.Fatal("repeated union succeeded")
	}
	if !uf.Same(1, 2) || uf.Same(1, 3) {
		t.Fatal("Same wrong")
	}
	uf.Union(2, 3)
	if !uf.Same(1, 4) {
		t.Fatal("transitivity broken")
	}
	if uf.Sets() != 2 { // {1,2,3,4}, {5}
		t.Fatalf("sets = %d, want 2", uf.Sets())
	}
}

func TestKruskalHandComputed(t *testing.T) {
	// Square 1-2-3-4 with diagonal: MST is the three cheapest
	// non-cycle-closing edges.
	g := graph.MustNew(4, 100)
	g.MustAddEdge(1, 2, 1) // idx 0
	g.MustAddEdge(2, 3, 2) // idx 1
	g.MustAddEdge(3, 4, 3) // idx 2
	g.MustAddEdge(4, 1, 4) // idx 3
	g.MustAddEdge(1, 3, 5) // idx 4
	got := Kruskal(g)
	want := []int{0, 1, 2}
	if len(got) != 3 {
		t.Fatalf("Kruskal returned %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kruskal = %v, want %v", got, want)
		}
	}
}

func TestKruskalTieBreaksByEdgeNumber(t *testing.T) {
	// all raw weights equal: composite order = edge-number order, so the
	// MST is still unique and deterministic.
	g := graph.MustNew(3, 5)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(1, 3, 3)
	g.MustAddEdge(2, 3, 3)
	got := Kruskal(g)
	// edge numbers: {1,2} < {1,3} < {2,3}; MST takes the two smallest.
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Kruskal = %v, want [0 1]", got)
	}
}

func TestKruskalIsMinimumExhaustive(t *testing.T) {
	// Compare total weight against brute force over all spanning trees
	// on small random graphs.
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		g := graph.GNM(r, 6, 9, 50, graph.UniformWeights(r, 50))
		mst := Kruskal(g)
		if err := IsSpanningForest(g, mst); err != nil {
			t.Fatal(err)
		}
		bestW := bruteForceMinSpanningWeight(g)
		if got := ForestWeight(g, mst); got != bestW {
			t.Fatalf("Kruskal weight %d, brute force %d", got, bestW)
		}
	}
}

// bruteForceMinSpanningWeight enumerates all (n-1)-subsets of edges.
func bruteForceMinSpanningWeight(g *graph.Graph) uint64 {
	m := g.M()
	n := g.N
	best := ^uint64(0)
	var rec func(start, chosen int, picked []int)
	rec = func(start, chosen int, picked []int) {
		if chosen == n-1 {
			uf := NewUnionFind(n)
			for _, ei := range picked {
				e := g.Edge(ei)
				if !uf.Union(e.A, e.B) {
					return
				}
			}
			if w := ForestWeight(g, picked); w < best {
				best = w
			}
			return
		}
		for i := start; i < m; i++ {
			rec(i+1, chosen+1, append(picked, i))
		}
	}
	rec(0, 0, nil)
	return best
}

func TestBFSForestSpans(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		g := graph.GNM(r, 30, 60, 10, graph.UniformWeights(r, 10))
		f := BFSForest(g)
		if err := IsSpanningForest(g, f); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIsSpanningForestRejectsCycle(t *testing.T) {
	g := graph.MustNew(3, 5)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(1, 3, 1)
	if err := IsSpanningForest(g, []int{0, 1, 2}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestIsSpanningForestRejectsNonMaximal(t *testing.T) {
	g := graph.MustNew(3, 5)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	if err := IsSpanningForest(g, []int{0}); err == nil {
		t.Error("non-spanning forest accepted")
	}
}

func TestIsMSFRejectsSuboptimal(t *testing.T) {
	g := graph.MustNew(3, 5)
	g.MustAddEdge(1, 2, 1) // 0
	g.MustAddEdge(2, 3, 2) // 1
	g.MustAddEdge(1, 3, 3) // 2
	if err := IsMSF(g, []int{0, 1}); err != nil {
		t.Errorf("true MSF rejected: %v", err)
	}
	if err := IsMSF(g, []int{0, 2}); err == nil {
		t.Error("suboptimal spanning tree accepted as MSF")
	}
}

func TestComponentsAndDisconnected(t *testing.T) {
	g := graph.MustNew(5, 5)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(4, 5, 1)
	labels, n := Components(g)
	if n != 3 { // {1,2}, {3}, {4,5}
		t.Fatalf("components = %d, want 3", n)
	}
	if labels[1] != labels[2] || labels[4] != labels[5] || labels[1] == labels[3] {
		t.Errorf("labels wrong: %v", labels)
	}
	// Kruskal on a disconnected graph gives a forest with one tree per
	// component.
	msf := Kruskal(g)
	if len(msf) != 2 {
		t.Fatalf("MSF size %d, want 2", len(msf))
	}
	if err := IsMSF(g, msf); err != nil {
		t.Error(err)
	}
}

func TestCutEdges(t *testing.T) {
	g := graph.MustNew(4, 5)
	g.MustAddEdge(1, 2, 1) // inside T
	g.MustAddEdge(2, 3, 2) // cut
	g.MustAddEdge(3, 4, 3) // outside
	g.MustAddEdge(1, 4, 4) // cut
	inT := []bool{false, true, true, false, false}
	cut := CutEdges(g, inT)
	sort.Ints(cut)
	if len(cut) != 2 || cut[0] != 1 || cut[1] != 3 {
		t.Fatalf("cut = %v, want [1 3]", cut)
	}
	if MinCutEdge(g, inT) != 1 {
		t.Fatalf("min cut edge = %d, want 1", MinCutEdge(g, inT))
	}
	// empty cut
	all := []bool{false, true, true, true, true}
	if MinCutEdge(g, all) != -1 {
		t.Error("empty cut should give -1")
	}
}

func TestTreePathMax(t *testing.T) {
	g := graph.MustNew(5, 100)
	g.MustAddEdge(1, 2, 10) // 0
	g.MustAddEdge(2, 3, 50) // 1
	g.MustAddEdge(3, 4, 20) // 2
	g.MustAddEdge(4, 5, 5)  // 3
	forest := []int{0, 1, 2, 3}
	if got := TreePathMax(g, forest, 1, 5); got != 1 {
		t.Errorf("path max = edge %d, want 1", got)
	}
	if got := TreePathMax(g, forest, 3, 4); got != 2 {
		t.Errorf("path max = edge %d, want 2", got)
	}
	// disconnected query
	if got := TreePathMax(g, []int{0}, 1, 5); got != -1 {
		t.Errorf("disconnected path max = %d, want -1", got)
	}
}
