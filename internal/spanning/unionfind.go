// Package spanning holds the sequential reference algorithms the simulator
// is validated against: union-find, Kruskal's MST, spanning-forest
// construction and checkers, cut enumeration and tree-path queries. None of
// this is "distributed"; it is the ground truth for tests and benchmarks.
package spanning

// UnionFind is a disjoint-set forest with union by rank and path
// compression over elements 1..n. The zero value is unusable; use
// NewUnionFind.
type UnionFind struct {
	parent []uint32
	rank   []uint8
	sets   int
}

// NewUnionFind returns a union-find over n singleton elements 1..n.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]uint32, n+1),
		rank:   make([]uint8, n+1),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = uint32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x uint32) uint32 {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the sets of a and b; it reports whether a merge happened
// (false if they were already together).
func (u *UnionFind) Union(a, b uint32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b uint32) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }
