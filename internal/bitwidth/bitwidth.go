// Package bitwidth computes the bit-field layout used throughout the
// simulator: how many bits are needed for node IDs, edge numbers and
// composite (unique) edge weights, as a function of the network size n and
// the maximum raw weight u.
//
// The paper (§2 "Definitions") builds unique edge weights by concatenating
// the raw weight in front of the edge number, where the edge number is the
// concatenation of the two endpoint IDs, smallest first. All three widths
// are O(log(n+u)) bits, which is also the CONGEST message budget.
package bitwidth

import (
	"fmt"
	"math/bits"
)

// Layout describes the bit-field layout for a network with a given size and
// weight range. The zero value is not valid; use New.
type Layout struct {
	// IDBits is the number of bits of a node ID after Karp-Rabin
	// fingerprinting into a polynomial ID space.
	IDBits int
	// EdgeNumBits is the number of bits of an edge number
	// (two IDs concatenated, smallest first).
	EdgeNumBits int
	// RawWeightBits is the number of bits of a raw edge weight in [1,u].
	RawWeightBits int
	// CompositeBits is the number of bits of a composite unique weight
	// (raw weight concatenated in front of the edge number).
	CompositeBits int
	// MessageBudget is the maximum number of bits a single CONGEST
	// message may carry. The simulator fixes the model word size at
	// w = 64 = Theta(log(n+u)) for every size it can represent (the
	// paper notes the odd hash "is particularly efficient if
	// w in {8,32,64}"), and a message is O(1) words.
	MessageBudget int
}

// WordBits is the model word size w. Every quantity the algorithms ship
// (IDs, edge numbers, composite weights, hash descriptions, Z_p values)
// fits in O(1) words of this size.
const WordBits = 64

// budgetWords is the number of w-bit words a single message may carry. The
// largest message any protocol sends is a FindMin broadcast: one odd hash
// (2 words) + an interval (2 words) + framing, comfortably within 8 words.
const budgetWords = 8

// MaxSupportedIDBits bounds the ID width so that an edge number (two IDs)
// fits in a uint64 with room to spare for Z_p arithmetic (p < 2^61).
const MaxSupportedIDBits = 30

// New computes the layout for a network of at most n nodes whose raw edge
// weights lie in [1, u]. It returns an error if the requested sizes
// overflow the 64-bit words the simulator uses.
func New(n int, u uint64) (Layout, error) {
	if n < 2 {
		return Layout{}, fmt.Errorf("bitwidth: need at least 2 nodes, got %d", n)
	}
	if u < 1 {
		return Layout{}, fmt.Errorf("bitwidth: max weight must be >= 1, got %d", u)
	}
	idBits := bits.Len(uint(n)) // IDs are fingerprinted into [1, ~n]
	if idBits < 1 {
		idBits = 1
	}
	if idBits > MaxSupportedIDBits {
		return Layout{}, fmt.Errorf("bitwidth: %d nodes needs %d ID bits, max supported is %d", n, idBits, MaxSupportedIDBits)
	}
	edgeBits := 2 * idBits
	rawBits := bits.Len64(u)
	comp := rawBits + edgeBits
	if comp > 63 {
		return Layout{}, fmt.Errorf("bitwidth: composite weight needs %d bits (raw %d + edge %d), max 63", comp, rawBits, edgeBits)
	}
	return Layout{
		IDBits:        idBits,
		EdgeNumBits:   edgeBits,
		RawWeightBits: rawBits,
		CompositeBits: comp,
		MessageBudget: budgetWords * WordBits,
	}, nil
}

// MustNew is New but panics on error; for use with compile-time-known sizes
// in tests and examples.
func MustNew(n int, u uint64) Layout {
	l, err := New(n, u)
	if err != nil {
		panic(err)
	}
	return l
}

// EdgeNum packs the two endpoint IDs into an edge number, smallest first
// (in the high bits, per the paper's "concatenation ... smallest first").
func (l Layout) EdgeNum(a, b uint32) uint64 {
	if a == b {
		panic("bitwidth: self-loop has no edge number")
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return uint64(lo)<<uint(l.IDBits) | uint64(hi)
}

// SplitEdgeNum recovers the two endpoint IDs (smallest first) from an edge
// number produced by EdgeNum.
func (l Layout) SplitEdgeNum(e uint64) (lo, hi uint32) {
	mask := uint64(1)<<uint(l.IDBits) - 1
	return uint32(e >> uint(l.IDBits)), uint32(e & mask)
}

// Composite builds the unique composite weight: raw weight in the high
// bits, edge number in the low bits. Distinct edges always get distinct
// composites, and comparing composites compares raw weights first.
func (l Layout) Composite(raw uint64, edgeNum uint64) uint64 {
	return raw<<uint(l.EdgeNumBits) | edgeNum
}

// SplitComposite recovers (raw weight, edge number) from a composite weight.
func (l Layout) SplitComposite(c uint64) (raw, edgeNum uint64) {
	mask := uint64(1)<<uint(l.EdgeNumBits) - 1
	return c >> uint(l.EdgeNumBits), c & mask
}

// MaxEdgeNum is the largest representable edge number under this layout.
func (l Layout) MaxEdgeNum() uint64 {
	return uint64(1)<<uint(l.EdgeNumBits) - 1
}

// MaxComposite is the largest representable composite weight.
func (l Layout) MaxComposite() uint64 {
	return uint64(1)<<uint(l.CompositeBits) - 1
}
