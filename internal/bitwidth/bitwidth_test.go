package bitwidth

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		u       uint64
		wantErr bool
	}{
		{"minimal", 2, 1, false},
		{"typical", 1024, 1 << 20, false},
		{"one node", 1, 1, true},
		{"zero weight bound", 4, 0, true},
		{"huge n overflows", 1 << 31, 1, true},
		{"composite overflow", 1 << 20, 1 << 40, true},
		{"large but fits", 1 << 20, 1 << 20, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.n, tt.u)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d, %d) error = %v, wantErr %v", tt.n, tt.u, err, tt.wantErr)
			}
		})
	}
}

func TestLayoutWidths(t *testing.T) {
	l := MustNew(1000, 500)
	if l.IDBits != 10 {
		t.Errorf("IDBits = %d, want 10", l.IDBits)
	}
	if l.EdgeNumBits != 20 {
		t.Errorf("EdgeNumBits = %d, want 20", l.EdgeNumBits)
	}
	if l.RawWeightBits != 9 {
		t.Errorf("RawWeightBits = %d, want 9", l.RawWeightBits)
	}
	if l.CompositeBits != 29 {
		t.Errorf("CompositeBits = %d, want 29", l.CompositeBits)
	}
	if l.MessageBudget != 512 {
		t.Errorf("MessageBudget = %d, want 512", l.MessageBudget)
	}
}

func TestEdgeNumOrdering(t *testing.T) {
	l := MustNew(100, 10)
	if l.EdgeNum(3, 7) != l.EdgeNum(7, 3) {
		t.Error("edge number must be direction-independent")
	}
	// smallest endpoint in the high bits: {1,2} < {1,3} < {2,3}
	e12, e13, e23 := l.EdgeNum(1, 2), l.EdgeNum(1, 3), l.EdgeNum(2, 3)
	if !(e12 < e13 && e13 < e23) {
		t.Errorf("ordering broken: %d %d %d", e12, e13, e23)
	}
}

func TestEdgeNumRoundTrip(t *testing.T) {
	l := MustNew(1<<16, 1<<10)
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		ua, ub := uint32(a)+1, uint32(b)+1
		lo, hi := l.SplitEdgeNum(l.EdgeNum(ua, ub))
		wantLo, wantHi := ua, ub
		if wantLo > wantHi {
			wantLo, wantHi = wantHi, wantLo
		}
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositeRoundTripAndOrder(t *testing.T) {
	l := MustNew(1<<12, 1<<16)
	f := func(rawA, rawB uint16, a1, b1, a2, b2 uint16) bool {
		wa, wb := uint64(rawA)+1, uint64(rawB)+1
		mk := func(a, b uint16) uint64 {
			x, y := uint32(a%4095)+1, uint32(b%4095)+1
			if x == y {
				y = x%4095 + 1
			}
			return l.EdgeNum(x, y)
		}
		e1, e2 := mk(a1, b1), mk(a2, b2)
		c1, c2 := l.Composite(wa, e1), l.Composite(wb, e2)
		gw1, ge1 := l.SplitComposite(c1)
		if gw1 != wa || ge1 != e1 {
			return false
		}
		// composite order respects raw-weight order first
		if wa < wb && c1 >= c2 {
			return false
		}
		if wa > wb && c1 <= c2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositeDistinctForDistinctEdges(t *testing.T) {
	l := MustNew(64, 4)
	seen := make(map[uint64]bool)
	for a := uint32(1); a <= 8; a++ {
		for b := a + 1; b <= 8; b++ {
			c := l.Composite(3, l.EdgeNum(a, b)) // same raw weight everywhere
			if seen[c] {
				t.Fatalf("composite collision for edge {%d,%d}", a, b)
			}
			seen[c] = true
		}
	}
}

func TestSelfLoopPanics(t *testing.T) {
	l := MustNew(10, 10)
	defer func() {
		if recover() == nil {
			t.Error("EdgeNum(5,5) should panic")
		}
	}()
	l.EdgeNum(5, 5)
}
