//go:build !race

// Package race exposes whether the race detector is active, so tests
// whose assertions are not meaningful under instrumentation (e.g.
// allocation counts: the race-mode sync.Pool deliberately drops puts)
// can skip themselves.
package race

// Enabled reports whether the binary was built with -race.
const Enabled = false
