package race

// TB is the subset of testing.TB these helpers need; declared locally so
// the package does not import testing into non-test builds.
type TB interface {
	Helper()
	Skip(args ...any)
}

// SkipAllocTest skips allocation-count assertions under the race
// detector: race-mode sync.Pool deliberately drops puts and the
// instrumentation itself allocates, so AllocsPerRun budgets are only
// meaningful in a normal build (which CI also runs).
func SkipAllocTest(t TB) {
	t.Helper()
	if Enabled {
		t.Skip("allocation counts are not stable under -race")
	}
}
