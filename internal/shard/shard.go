package shard

import "sync"

// Partition maps nodes 1..n onto s contiguous shards of near-equal size.
// Contiguity keeps each worker's node state dense in memory; the mapping
// is pure arithmetic, so there is no table to build or keep coherent.
type Partition struct {
	n, s int
}

// NewPartition builds a partition of nodes 1..n into s shards. The shard
// count is clamped to [1, min(n, 1024)] — more shards than nodes (or than
// any plausible machine) would only manufacture empty workers.
func NewPartition(n, s int) Partition {
	if n < 1 {
		n = 1
	}
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	if s > 1024 {
		s = 1024
	}
	return Partition{n: n, s: s}
}

// Shards returns the shard count.
func (p Partition) Shards() int { return p.s }

// N returns the node count.
func (p Partition) N() int { return p.n }

// Of returns the shard owning node v (1-based). Nodes are assigned in
// contiguous runs: shard i owns the v with i = (v-1)*s/n.
func (p Partition) Of(v int) int {
	return int(uint64(v-1) * uint64(p.s) / uint64(p.n))
}

// Range returns the node interval [lo, hi] owned by shard i — the exact
// inverse of Of: the first node of shard i is the smallest v with
// (v-1)*s >= i*n. Empty shards cannot occur (s <= n).
func (p Partition) Range(i int) (lo, hi int) {
	n, s := uint64(p.n), uint64(p.s)
	lo = int((uint64(i)*n+s-1)/s) + 1
	hi = int((uint64(i+1)*n + s - 1) / s)
	return lo, hi
}

// Workers is a pool of persistent goroutines that execute one closure per
// shard per round. Worker goroutines park between rounds, so a round
// costs two channel operations per extra worker and no goroutine churn.
// Shard 0 always runs inline on the caller's goroutine: with one shard
// the pool degenerates to a plain function call, and with more it saves a
// wakeup on the critical path.
type Workers struct {
	n    int
	work []chan func(int)
	wg   sync.WaitGroup
}

// NewWorkers starts a pool driving n shards (n-1 background goroutines).
func NewWorkers(n int) *Workers {
	if n < 1 {
		n = 1
	}
	w := &Workers{n: n, work: make([]chan func(int), n-1)}
	for i := range w.work {
		ch := make(chan func(int))
		w.work[i] = ch
		go func(shard int) {
			for fn := range ch {
				fn(shard)
				w.wg.Done()
			}
		}(i + 1)
	}
	return w
}

// Round runs fn(shard) for every shard concurrently and returns when all
// have finished. fn must contain its own panic recovery: a panic escaping
// a background worker would kill the process with no chance to pick the
// deterministic one.
func (w *Workers) Round(fn func(shard int)) {
	w.wg.Add(len(w.work))
	for _, ch := range w.work {
		ch <- fn
	}
	fn(0)
	w.wg.Wait()
}

// Close shuts the background workers down. The pool must be idle.
func (w *Workers) Close() {
	for _, ch := range w.work {
		close(ch)
	}
	w.work = nil
}

// Outbox collects side effects emitted during a sharded round — one
// ordered stream per shard, each entry keyed by the parent index of the
// event whose handler emitted it — and replays them in the exact order a
// single-threaded round would have: ascending parent index, then emission
// order within the parent. Each shard appends only to its own stream, so
// workers never contend; the merge walks parents in global order and
// drains the owning shard's run for each.
//
// The invariant making the merge a linear walk instead of a sort: within
// one shard, parents are processed in ascending global order, so each
// stream is already sorted by parent.
type Outbox[T any] struct {
	streams [][]entry[T]
	cursor  []int
}

type entry[T any] struct {
	parent int32
	v      T
}

// Reset prepares the outbox for a round over the given shard count,
// retaining stream capacity across rounds.
func (o *Outbox[T]) Reset(shards int) {
	for len(o.streams) < shards {
		o.streams = append(o.streams, nil)
		o.cursor = append(o.cursor, 0)
	}
	o.streams = o.streams[:shards]
	o.cursor = o.cursor[:shards]
	for i := range o.streams {
		o.streams[i] = o.streams[i][:0]
		o.cursor[i] = 0
	}
}

// Push appends a side effect emitted while shard was processing the event
// at the given parent index. Only the owning worker may push to its shard.
func (o *Outbox[T]) Push(shard int, parent int32, v T) {
	o.streams[shard] = append(o.streams[shard], entry[T]{parent: parent, v: v})
}

// Merge replays every pushed effect in deterministic global order:
// ascending parent index 0..numParents-1 (owner(parent) names the shard
// that processed that parent), emission order within each parent. Entries
// are zeroed as they are consumed so the retained backing arrays do not
// pin the payloads. Merge panics if a stream holds an entry the walk
// cannot reach — that is always an owner/push bookkeeping bug.
func (o *Outbox[T]) Merge(numParents int, owner func(parent int32) int, apply func(T)) {
	var zero entry[T]
	for parent := int32(0); int(parent) < numParents; parent++ {
		s := owner(parent)
		stream := o.streams[s]
		for o.cursor[s] < len(stream) && stream[o.cursor[s]].parent == parent {
			e := &stream[o.cursor[s]]
			o.cursor[s]++
			v := e.v
			*e = zero
			apply(v)
		}
	}
	for s := range o.streams {
		if o.cursor[s] != len(o.streams[s]) {
			panic("shard: outbox merge left entries behind — owner() disagrees with Push")
		}
	}
}
