// Package shard is the deterministic building kit for multi-core
// execution of a single simulation: a contiguous node partition, a pool of
// persistent round workers, and an ordered per-shard outbox whose merge
// reproduces the exact global order a single-threaded run would have
// produced.
//
// The package is engine-agnostic (it knows nothing about messages or
// networks) so the simulator core can build on it without an import
// cycle.
//
// # Invariants
//
// Order independence. Every output of a sharded round is a pure function
// of the round's inputs; the shard count never leaks into it. Callers key
// work by a parent index — the position of the triggering event in the
// round's global input order — and Outbox.Merge replays side effects in
// (parent index, emission order), which is byte-for-byte the order a
// single-threaded round would have produced.
//
// Ownership. During a round each worker owns its shard's state
// exclusively and pushes effects only under its own shard id; between
// rounds the caller owns everything. The round barrier (Workers.Round)
// is the only synchronization point — no locks exist inside a round.
//
// Stability. Partition is pure arithmetic over (n, s): contiguous,
// near-equal shards, no table to build or keep coherent. Workers persist
// across rounds (spawned once per Run) so a round costs two channel
// operations per worker, not a goroutine spawn.
package shard
