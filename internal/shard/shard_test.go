package shard

import (
	"sync/atomic"
	"testing"
)

func TestPartitionCoversAllNodes(t *testing.T) {
	for _, tc := range []struct{ n, s int }{
		{1, 1}, {2, 4}, {10, 3}, {100, 7}, {1000, 16}, {5, 5},
	} {
		p := NewPartition(tc.n, tc.s)
		if p.Shards() > tc.n {
			t.Errorf("n=%d s=%d: %d shards exceed nodes", tc.n, tc.s, p.Shards())
		}
		// Every node maps into range, mapping is monotone, and Range agrees
		// with Of.
		prev := 0
		counts := make([]int, p.Shards())
		for v := 1; v <= tc.n; v++ {
			s := p.Of(v)
			if s < 0 || s >= p.Shards() {
				t.Fatalf("n=%d: Of(%d) = %d out of range", tc.n, v, s)
			}
			if s < prev {
				t.Fatalf("n=%d: Of not monotone at %d", tc.n, v)
			}
			prev = s
			counts[s]++
		}
		for i := 0; i < p.Shards(); i++ {
			lo, hi := p.Range(i)
			if hi-lo+1 != counts[i] {
				t.Errorf("n=%d s=%d: shard %d Range [%d,%d] disagrees with Of count %d",
					tc.n, tc.s, i, lo, hi, counts[i])
			}
			for v := lo; v <= hi; v++ {
				if p.Of(v) != i {
					t.Errorf("n=%d s=%d: node %d in Range(%d) but Of says %d", tc.n, tc.s, v, i, p.Of(v))
				}
			}
		}
		// Balance: sizes differ by at most one.
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d s=%d: imbalanced shards %v", tc.n, tc.s, counts)
		}
	}
}

func TestWorkersRunEveryShard(t *testing.T) {
	for _, n := range []int{1, 2, 8} {
		w := NewWorkers(n)
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		for round := 0; round < 3; round++ {
			w.Round(func(s int) {
				hits.Add(1)
				seen[s].Store(true)
			})
		}
		w.Close()
		if got := hits.Load(); got != int64(3*n) {
			t.Errorf("n=%d: %d executions, want %d", n, got, 3*n)
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Errorf("n=%d: shard %d never ran", n, i)
			}
		}
	}
}

func TestOutboxMergeReplaysSingleThreadedOrder(t *testing.T) {
	// 3 shards; parents 0..8 assigned round-robin; each parent i emits i%3
	// effects. The merge must visit effects in (parent, emission) order.
	const shards, parents = 3, 9
	owner := func(p int32) int { return int(p) % shards }
	var o Outbox[[2]int]
	o.Reset(shards)
	for p := 0; p < parents; p++ {
		for e := 0; e < p%3+1; e++ {
			o.Push(owner(int32(p)), int32(p), [2]int{p, e})
		}
	}
	var got [][2]int
	o.Merge(parents, owner, func(v [2]int) { got = append(got, v) })
	var want [][2]int
	for p := 0; p < parents; p++ {
		for e := 0; e < p%3+1; e++ {
			want = append(want, [2]int{p, e})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("merge replayed %d effects, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("effect %d: got %v want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	// Reuse after Reset keeps working (capacity retained, cursors cleared).
	o.Reset(shards)
	o.Push(1, 0, [2]int{0, 0})
	n := 0
	o.Merge(1, func(int32) int { return 1 }, func([2]int) { n++ })
	if n != 1 {
		t.Fatalf("after reset: replayed %d effects, want 1", n)
	}
}

func TestOutboxMergePanicsOnOwnerMismatch(t *testing.T) {
	var o Outbox[int]
	o.Reset(2)
	o.Push(1, 0, 42) // pushed to shard 1...
	defer func() {
		if recover() == nil {
			t.Fatal("merge with wrong owner did not panic")
		}
	}()
	// ...but owner claims parent 0 lives on shard 0: entry is unreachable.
	o.Merge(1, func(int32) int { return 0 }, func(int) {})
}
