package scaling

import (
	"math"
	"strings"
	"testing"
)

// ladder builds synthetic (x, y) points from a cost law over a geometric
// size ladder.
func ladder(f func(x float64) float64) (xs, ys []float64) {
	for x := 128.0; x <= 1<<20; x *= 4 {
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	return
}

func TestFitLogLogKnownSlopes(t *testing.T) {
	cases := []struct {
		name   string
		f      func(x float64) float64
		lo, hi float64
	}{
		{"linear", func(x float64) float64 { return 5 * x }, 0.999, 1.001},
		{"nlogn", func(x float64) float64 { return x * math.Log(x) }, 1.0, 1.25},
		{"sqrt", func(x float64) float64 { return 2 * math.Sqrt(x) }, 0.499, 0.501},
		{"quadratic", func(x float64) float64 { return x * x / 8 }, 1.999, 2.001},
	}
	for _, tc := range cases {
		xs, ys := ladder(tc.f)
		slope, _, r2, err := FitLogLog(xs, ys)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if slope <= tc.lo || slope >= tc.hi {
			t.Errorf("%s: slope %.4f outside (%.3f, %.3f)", tc.name, slope, tc.lo, tc.hi)
		}
		if r2 < 0.99 {
			t.Errorf("%s: r2=%.4f, want >= 0.99 on a clean synthetic ladder", tc.name, r2)
		}
	}
	// A pure power law must recover the intercept too: y = 3·x^1.5.
	xs, ys := ladder(func(x float64) float64 { return 3 * math.Pow(x, 1.5) })
	slope, intercept, _, err := FitLogLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-1.5) > 1e-9 || math.Abs(intercept-math.Log(3)) > 1e-9 {
		t.Errorf("power law: slope=%v intercept=%v, want 1.5 and ln 3", slope, intercept)
	}
}

func TestFitLogLogDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
		want   string
	}{
		{"mismatched", []float64{1, 2}, []float64{1}, "x values"},
		{"empty", nil, nil, "want >= 2"},
		{"single point", []float64{100}, []float64{42}, "single rung"},
		{"single rung", []float64{100, 100, 100}, []float64{41, 42, 43}, "distinct sizes"},
		{"zero x", []float64{0, 100}, []float64{1, 2}, "not strictly positive"},
		{"negative y", []float64{10, 100}, []float64{-1, 2}, "not strictly positive"},
	}
	for _, tc := range cases {
		_, _, _, err := FitLogLog(tc.xs, tc.ys)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestMeanCI95(t *testing.T) {
	// Known case: n=3, df=2, t=4.303. Sample {1, 2, 3}: mean 2, sd 1,
	// se 1/√3, half-width 4.303/√3 ≈ 2.4843.
	mean, lo, hi, err := MeanCI95([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 2 {
		t.Errorf("mean=%v, want 2", mean)
	}
	h := 4.303 / math.Sqrt(3)
	if math.Abs((hi-lo)/2-h) > 1e-9 || math.Abs((hi+lo)/2-2) > 1e-9 {
		t.Errorf("ci=[%v, %v], want half-width %v around 2", lo, hi, h)
	}

	// Zero variance: zero-width interval, not an error.
	mean, lo, hi, err = MeanCI95([]float64{7, 7, 7, 7})
	if err != nil || mean != 7 || lo != 7 || hi != 7 {
		t.Errorf("zero variance: mean=%v ci=[%v, %v] err=%v, want exactly 7", mean, lo, hi, err)
	}

	// A single sample has no spread to estimate.
	if _, _, _, err := MeanCI95([]float64{1}); err == nil {
		t.Error("single sample: no error")
	}
}

func TestWelchOneSided(t *testing.T) {
	// Clearly separated samples must clear the 95% critical value.
	tt, df, err := WelchOneSided([]float64{1.00, 1.01, 0.99}, []float64{0.60, 0.62, 0.61})
	if err != nil {
		t.Fatal(err)
	}
	if !Separated(tt, df) {
		t.Errorf("t=%v df=%v: expected separation on a 0.4 gap with tiny variance", tt, df)
	}

	// Overlapping samples must not.
	tt, df, err = WelchOneSided([]float64{0.9, 1.1, 1.0}, []float64{0.95, 1.05, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if Separated(tt, df) {
		t.Errorf("t=%v df=%v: unexpected separation on overlapping samples", tt, df)
	}

	// Wrong direction: the statistic goes negative and never separates.
	tt, _, err = WelchOneSided([]float64{0.5, 0.51}, []float64{1.0, 1.01})
	if err != nil || tt >= 0 {
		t.Errorf("reversed gap: t=%v err=%v, want negative", tt, err)
	}

	// Zero variance on both sides degenerates to ±Inf on a nonzero gap —
	// an exact separation — and 0 on a zero gap.
	tt, df, err = WelchOneSided([]float64{2, 2}, []float64{1, 1})
	if err != nil || !math.IsInf(tt, 1) || !Separated(tt, df) {
		t.Errorf("zero variance, positive gap: t=%v df=%v err=%v, want +Inf separated", tt, df, err)
	}
	tt, _, err = WelchOneSided([]float64{1, 1}, []float64{1, 1})
	if err != nil || tt != 0 {
		t.Errorf("zero variance, zero gap: t=%v err=%v, want 0", tt, err)
	}

	// Undersized samples are rejected.
	if _, _, err := WelchOneSided([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("single-value sample: no error")
	}
}

func TestTCrit(t *testing.T) {
	cases := []struct {
		table tTable
		df    float64
		want  float64
	}{
		{t975, 1, 12.706},
		{t975, 2.9, 4.303}, // fractional df floors conservatively
		{t975, 30, 2.042},
		{t975, 35, 2.021},
		{t975, 1e6, 1.960},
		{t95, 4, 2.132},
		{t95, 100, 1.658},
		{t95, 1e6, 1.645},
	}
	for _, tc := range cases {
		if got := tCrit(tc.table, tc.df); got != tc.want {
			t.Errorf("tCrit(df=%v) = %v, want %v", tc.df, got, tc.want)
		}
	}
}
