package scaling

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"kkt/internal/harness"
)

// TestScalingSeparation is the empirical o(m) gate: on a density-growing
// gnm ladder (m = n²/8), the fitted messages-vs-m exponent of the KKT
// build must sit measurably below GHS's at the 95% level. On this ladder
// the repo's KKT build fits ≈ m^0.63 while GHS fits ≈ m^0.95 — the
// separation the paper's o(m) claim predicts. A constant-density ladder
// could not witness it (both costs would be Θ(n) = Θ(m)); see the
// Density doc comment.
func TestScalingSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("full separation ladder is seconds of simulation")
	}
	rep, err := Run(Config{
		Families: []string{harness.FamilyGNM},
		Algos:    []string{harness.AlgoMSTBuildAdaptive, harness.AlgoGHS},
		Ladder:   []int{64, 128, 256, 512, 1024},
		Seeds:    3,
		Seed:     1,
		Density:  DensityQuad,
	})
	if err != nil {
		t.Fatal(err)
	}

	fits := map[string]Fit{}
	for _, c := range rep.Cells {
		for _, rung := range c.Rungs {
			for _, p := range rung.Points {
				if p.Error != "" || !p.Valid {
					t.Fatalf("%s/%s n=%d seed=%d: invalid trial (err=%q)", c.Family, c.Algo, rung.N, p.Seed, p.Error)
				}
			}
		}
		if c.Fits.Messages.Error != "" {
			t.Fatalf("%s/%s: fit error: %s", c.Family, c.Algo, c.Fits.Messages.Error)
		}
		fits[c.Algo] = c.Fits.Messages
	}

	kkt, ghs := fits[harness.AlgoMSTBuildAdaptive], fits[harness.AlgoGHS]
	if kkt.Slope >= 0.85 {
		t.Errorf("kkt messages-vs-m slope %.3f, want sublinear (< 0.85) on the quad ladder", kkt.Slope)
	}
	if ghs.Slope <= 0.85 {
		t.Errorf("ghs messages-vs-m slope %.3f, want near-linear (> 0.85) on the quad ladder", ghs.Slope)
	}
	if kkt.CIHi >= ghs.CILo {
		t.Errorf("confidence intervals overlap: kkt [%.3f, %.3f] vs ghs [%.3f, %.3f]",
			kkt.CILo, kkt.CIHi, ghs.CILo, ghs.CIHi)
	}

	if len(rep.Separations) != 1 {
		t.Fatalf("got %d separations, want 1", len(rep.Separations))
	}
	sep := rep.Separations[0]
	if sep.KKT != harness.AlgoMSTBuildAdaptive || sep.Baseline != harness.AlgoGHS {
		t.Fatalf("separation pair %s vs %s, want mst-build vs ghs", sep.KKT, sep.Baseline)
	}
	if !sep.Separated {
		t.Errorf("Welch test did not separate: gap=%.3f t=%.2f df=%.1f", sep.Gap, sep.WelchT, sep.DF)
	}
	if sep.Gap <= 0 {
		t.Errorf("slope gap %.3f, want positive (ghs above kkt)", sep.Gap)
	}
}

// TestRunDeterministic pins the byte-identity contract: the same config
// produces the same marshaled report at any worker and shard count.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Families: []string{harness.FamilyGNM, harness.FamilyHypercube},
		Algos:    []string{harness.AlgoFlood},
		Ladder:   []int{32, 64, 128},
		Seeds:    2,
		Seed:     7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	cfg.Shards = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := a.MarshalIndent()
	bb, _ := b.MarshalIndent()
	if !bytes.Equal(ab, bb) {
		t.Fatalf("reports diverge across worker/shard counts:\n%s\n---\n%s", ab, bb)
	}
	// Flood visits every edge twice: the fitted slope is exactly 1 and
	// every seed agrees, so the interval collapses to a point.
	for _, c := range a.Cells {
		f := c.Fits.Messages
		if f.Error != "" || f.Slope < 0.999 || f.Slope > 1.001 {
			t.Errorf("%s/flood: slope=%v err=%q, want exactly linear", c.Family, f.Slope, f.Error)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{Ladder: []int{64, 128}}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown family", func(c *Config) { c.Families = []string{"smallworld"} }, "unknown family"},
		{"unknown algo", func(c *Config) { c.Algos = []string{"prim"} }, "unknown algorithm"},
		{"unknown density", func(c *Config) { c.Density = "cubic" }, "unknown density"},
		{"single rung", func(c *Config) { c.Ladder = []int{512} }, "want >= 2"},
		{"duplicate-only rungs", func(c *Config) { c.Ladder = []int{512, 512} }, "want >= 2"},
		{"tiny rung", func(c *Config) { c.Ladder = []int{4, 64} }, "too small"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGnmDensityLaws(t *testing.T) {
	// quad: n²/8, floored at 3n, capped at the simple-graph max.
	if got := gnmM(64, DensityQuad); got != 512 {
		t.Errorf("quad(64) = %d, want 512", got)
	}
	if got := gnmM(8, DensityQuad); got != 24 { // n²/8 = 8 < 3n = 24
		t.Errorf("quad(8) = %d, want floor 3n = 24", got)
	}
	if got := gnmM(10, DensityQuad); got != 30 { // n²/8 = 12, floored to 3n = 30, under the cap 45
		t.Errorf("quad(10) = %d, want 30", got)
	}
	if got := gnmM(8, DensityConst); got != 24 { // 3n = 24 < max 28
		t.Errorf("const(8) = %d, want 24", got)
	}
	if got := gnmM(1024, DensityConst); got != 3072 {
		t.Errorf("const(1024) = %d, want 3072", got)
	}
	if got := gnmM(256, DensitySqrt); got != 4096 {
		t.Errorf("sqrt(256) = %d, want 256·16", got)
	}
}

func TestPowerOfTwoLadder(t *testing.T) {
	got := powerOfTwoLadder([]int{60, 64, 100, 257, 1000})
	want := []int{64, 128, 256, 1024}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("powerOfTwoLadder = %v, want %v", got, want)
	}
	// A ladder collapsing below two rungs errors at Run.
	_, err := Run(Config{
		Families: []string{harness.FamilyHypercube},
		Algos:    []string{harness.AlgoFlood},
		Ladder:   []int{60, 64},
		Seeds:    1,
	})
	if err == nil || !strings.Contains(err.Error(), "collapses") {
		t.Errorf("collapsed hypercube ladder: err=%v", err)
	}
}
