package scaling

import (
	"fmt"
	"math"
	"sort"
	"time"

	"kkt/internal/harness"
)

// Families a sweep can ladder over, in display order. Hypercube rungs
// round to the nearest power of two (the family exists only there).
var Families = []string{
	harness.FamilyGNM,
	harness.FamilyPowerLaw,
	harness.FamilyGeometric,
	harness.FamilyHypercube,
}

// Algos a sweep can measure. The KKT algorithms carry the o(m) claim;
// ghs and flood are the Θ(m)-bound comparators the separation test
// measures against.
var Algos = []string{
	harness.AlgoMSTBuildAdaptive,
	harness.AlgoSTBuild,
	harness.AlgoMSTRepair,
	harness.AlgoSTRepair,
	harness.AlgoGHS,
	harness.AlgoFlood,
}

// IsBaseline reports whether algo is one of the Θ(m)-bound comparators.
func IsBaseline(algo string) bool {
	return algo == harness.AlgoGHS || algo == harness.AlgoFlood
}

// Density knobs for the gnm family: how m grows along the size ladder.
// Constant-density ladders cannot witness o(m) — the KKT build cost is
// governed by n, so at m = Θ(n) every algorithm's cost grows linearly in
// m and the fitted exponents collapse together. The default therefore
// grows density with n, making m the dominant axis.
const (
	DensityConst = "const" // m = 3n: constant average degree
	DensitySqrt  = "sqrt"  // m = n·⌊√n⌋: average degree ~√n
	DensityQuad  = "quad"  // m = n²/8: average degree ~n/4 (the default)
)

// Densities lists the gnm density knobs, in display order.
var Densities = []string{DensityConst, DensitySqrt, DensityQuad}

// Config declares one sweep. Zero fields take the documented defaults.
type Config struct {
	// Families/Algos pick the sweep cells (the cross product). Defaults:
	// gnm × {mst-build, ghs, flood}.
	Families []string
	Algos    []string
	// Ladder is the list of rung sizes n, ascending (>= 2 rungs after
	// normalization; default 256..4096 in 5 geometric steps).
	Ladder []int
	// Seeds is the number of seeded trials per rung (default 3). Per-seed
	// slopes — fitted across rungs at a fixed trial index — feed the
	// confidence intervals and the Welch separation test.
	Seeds int
	// Seed is the base seed; per-trial seeds derive from it via the rung's
	// scenario name, exactly like the bench harness.
	Seed uint64
	// Density picks the gnm m-growth law (default quad; other families
	// have intrinsic density).
	Density string
	// Shards/Workers/Timeout pass through to harness.RunConfig.
	Shards  int
	Workers int
	Timeout time.Duration
	// OnTrialDone, if set, is called after every finished trial (from
	// worker goroutines; must be safe for concurrent use).
	OnTrialDone func(spec harness.Spec, trial int)
}

// DefaultLadder is the stock 5-rung size ladder.
var DefaultLadder = []int{256, 512, 1024, 2048, 4096}

// normalized fills defaults and canonicalizes the ladder (sorted,
// deduplicated).
func (c Config) normalized() Config {
	if len(c.Families) == 0 {
		c.Families = []string{harness.FamilyGNM}
	}
	if len(c.Algos) == 0 {
		c.Algos = []string{harness.AlgoMSTBuildAdaptive, harness.AlgoGHS, harness.AlgoFlood}
	}
	if len(c.Ladder) == 0 {
		c.Ladder = append([]int(nil), DefaultLadder...)
	} else {
		c.Ladder = dedupeSorted(c.Ladder)
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Density == "" {
		c.Density = DensityQuad
	}
	return c
}

// Validate rejects malformed sweep configs: unknown families, algorithms
// or density knobs, ladders with fewer than two rungs (no slope to fit)
// or rungs below the minimum size.
func (c Config) Validate() error {
	c = c.normalized()
	for _, f := range c.Families {
		if !contains(Families, f) {
			return fmt.Errorf("scaling: unknown family %q", f)
		}
	}
	for _, a := range c.Algos {
		if !contains(Algos, a) {
			return fmt.Errorf("scaling: unknown algorithm %q", a)
		}
	}
	if !contains(Densities, c.Density) {
		return fmt.Errorf("scaling: unknown density %q (want const, sqrt or quad)", c.Density)
	}
	if len(c.Ladder) < 2 {
		return fmt.Errorf("scaling: ladder has %d distinct rungs, want >= 2 to fit a slope", len(c.Ladder))
	}
	for _, n := range c.Ladder {
		if n < 8 {
			return fmt.Errorf("scaling: rung n=%d too small, want >= 8", n)
		}
	}
	return nil
}

// TotalTrials returns the number of seeded trials the sweep will run —
// the progress denominator. Hypercube ladders count after power-of-two
// rounding, exactly as Run builds them.
func (c Config) TotalTrials() int {
	c = c.normalized()
	total := 0
	for _, family := range c.Families {
		rungs := len(c.Ladder)
		if family == harness.FamilyHypercube {
			rungs = len(powerOfTwoLadder(c.Ladder))
		}
		total += rungs * len(c.Algos) * c.Seeds
	}
	return total
}

// Run executes the sweep: every (family × algo) cell runs the full ladder
// at Seeds trials per rung through the bench harness, then each cell's
// measured messages and bits are fitted against the generated edge count
// m on log-log axes. For every family holding both a KKT algorithm and a
// baseline, the per-seed slopes feed a one-sided Welch test of the
// separation claim. The report is seed-determined: identical configs
// marshal to byte-identical reports at any worker or shard count.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	type cellKey struct{ family, algo string }
	var specs []harness.Spec
	cellOf := make([]cellKey, 0)
	for _, family := range cfg.Families {
		ladder := cfg.Ladder
		if family == harness.FamilyHypercube {
			ladder = powerOfTwoLadder(ladder)
			if len(ladder) < 2 {
				return nil, fmt.Errorf("scaling: hypercube ladder collapses to %d distinct power-of-two rungs, want >= 2", len(ladder))
			}
		}
		for _, algo := range cfg.Algos {
			for _, n := range ladder {
				spec := rungSpec(family, algo, n, cfg.Density)
				if err := spec.Validate(); err != nil {
					return nil, err
				}
				specs = append(specs, spec)
				cellOf = append(cellOf, cellKey{family, algo})
			}
		}
	}

	results := harness.RunAll(specs, harness.RunConfig{
		Trials:      cfg.Seeds,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,
		Timeout:     cfg.Timeout,
		OnTrialDone: cfg.OnTrialDone,
	})

	rep := &Report{
		Schema:  ReportSchema,
		Seed:    cfg.Seed,
		Seeds:   cfg.Seeds,
		Density: cfg.Density,
		Ladder:  cfg.Ladder,
	}
	for _, family := range cfg.Families {
		for _, algo := range cfg.Algos {
			cell := Cell{Family: family, Algo: algo}
			for i, res := range results {
				if cellOf[i] != (cellKey{family, algo}) {
					continue
				}
				rung := Rung{N: res.Spec.N}
				for _, t := range res.Trials {
					rung.Points = append(rung.Points, Point{
						Seed:     t.Seed,
						M:        t.GraphEdges,
						Messages: t.Messages,
						Bits:     t.Bits,
						Time:     t.Time,
						Valid:    t.Valid,
						Error:    t.Error,
					})
				}
				cell.Rungs = append(cell.Rungs, rung)
			}
			cell.Fits.Messages = fitCell(cell.Rungs, cfg.Seeds, func(p Point) float64 { return float64(p.Messages) })
			cell.Fits.Bits = fitCell(cell.Rungs, cfg.Seeds, func(p Point) float64 { return float64(p.Bits) })
			rep.Cells = append(rep.Cells, cell)
		}
	}
	rep.Separations = separations(rep.Cells, cfg)
	return rep, nil
}

// fitCell computes a cell's fit for one metric: the pooled log-log
// regression over every usable point, plus the per-seed slopes (one fit
// across rungs at each trial index) with their 95% confidence interval.
// Points that errored or measured a nonpositive value are excluded; a
// degenerate cell records the fit error instead of failing the sweep.
func fitCell(rungs []Rung, seeds int, metric func(Point) float64) Fit {
	var fit Fit
	var xs, ys []float64
	for _, r := range rungs {
		for _, p := range r.Points {
			if v := metric(p); p.Error == "" && p.M > 0 && v > 0 {
				xs = append(xs, float64(p.M))
				ys = append(ys, v)
			}
		}
	}
	slope, intercept, r2, err := FitLogLog(xs, ys)
	if err != nil {
		fit.Error = err.Error()
		return fit
	}
	fit.Slope, fit.Intercept, fit.R2 = slope, intercept, r2

	for t := 0; t < seeds; t++ {
		var sx, sy []float64
		for _, r := range rungs {
			if t >= len(r.Points) {
				continue
			}
			p := r.Points[t]
			if v := metric(p); p.Error == "" && p.M > 0 && v > 0 {
				sx = append(sx, float64(p.M))
				sy = append(sy, v)
			}
		}
		s, _, _, err := FitLogLog(sx, sy)
		if err != nil {
			fit.Error = fmt.Sprintf("seed %d: %v", t, err)
			return fit
		}
		fit.PerSeed = append(fit.PerSeed, round6(s))
	}
	mean, lo, hi, err := MeanCI95(fit.PerSeed)
	if err == nil {
		fit.SeedMean, fit.CILo, fit.CIHi = round6(mean), round6(lo), round6(hi)
	}
	fit.Slope, fit.Intercept, fit.R2 = round6(fit.Slope), round6(fit.Intercept), round6(fit.R2)
	return fit
}

// separations runs the one-sided Welch test for every (KKT algo ×
// baseline) pair sharing a family, on the per-seed message slopes. A pair
// separates when the baseline's fitted exponent exceeds the KKT
// algorithm's at the 95% level — the empirical o(m) witness.
func separations(cells []Cell, cfg Config) []Separation {
	byKey := make(map[string]*Cell)
	for i := range cells {
		byKey[cells[i].Family+"/"+cells[i].Algo] = &cells[i]
	}
	var seps []Separation
	for _, family := range cfg.Families {
		for _, kkt := range cfg.Algos {
			if IsBaseline(kkt) {
				continue
			}
			for _, base := range cfg.Algos {
				if !IsBaseline(base) {
					continue
				}
				k, b := byKey[family+"/"+kkt], byKey[family+"/"+base]
				if k == nil || b == nil || k.Fits.Messages.Error != "" || b.Fits.Messages.Error != "" {
					continue
				}
				t, df, err := WelchOneSided(b.Fits.Messages.PerSeed, k.Fits.Messages.PerSeed)
				if err != nil {
					continue
				}
				wt := t
				if math.IsInf(wt, 0) {
					// Zero variance on both sides: the gap is exact. Clamp
					// so the report stays valid JSON.
					wt = math.Copysign(1e12, wt)
				}
				seps = append(seps, Separation{
					Family:    family,
					Metric:    "messages",
					KKT:       kkt,
					Baseline:  base,
					Gap:       round6(b.Fits.Messages.SeedMean - k.Fits.Messages.SeedMean),
					WelchT:    round6(wt),
					DF:        round6(df),
					Separated: Separated(t, df),
				})
			}
		}
	}
	return seps
}

// rungSpec builds the harness scenario of one ladder rung. Repair
// algorithms run a fixed fault script, so their cost-vs-m curve isolates
// the per-topology repair cost rather than a growing workload.
func rungSpec(family, algo string, n int, density string) harness.Spec {
	s := harness.Spec{
		Name:   fmt.Sprintf("scaling/%s/%s/n%d", family, algo, n),
		Family: family,
		N:      n,
		Sched:  harness.SchedSync,
		Algo:   algo,
	}
	if family == harness.FamilyGNM {
		s.M = gnmM(n, density)
	}
	switch algo {
	case harness.AlgoMSTRepair:
		s.Faults = harness.FaultScript{Deletes: 12, Inserts: 6, WeightChanges: 6}
	case harness.AlgoSTRepair:
		s.Faults = harness.FaultScript{Deletes: 12, Inserts: 6}
	}
	return s
}

// gnmM maps a rung size to its gnm edge count under the density law,
// floored at 3n (comfortably connected) and capped at the simple-graph
// maximum.
func gnmM(n int, density string) int {
	var m int
	switch density {
	case DensityConst:
		m = 3 * n
	case DensitySqrt:
		m = n * isqrt(n)
	default: // DensityQuad
		m = n * n / 8
	}
	if m < 3*n {
		m = 3 * n
	}
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	return m
}

// powerOfTwoLadder rounds every rung to the nearest power of two (ties
// go up) and deduplicates, preserving ascending order.
func powerOfTwoLadder(ladder []int) []int {
	out := make([]int, 0, len(ladder))
	for _, n := range ladder {
		lo := 1
		for lo*2 <= n {
			lo *= 2
		}
		hi := lo * 2
		p := lo
		if hi-n <= n-lo {
			p = hi
		}
		if len(out) == 0 || out[len(out)-1] != p {
			out = append(out, p)
		}
	}
	return out
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func dedupeSorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// round6 rounds to 6 decimal places so report floats marshal compactly
// and deterministically across platforms.
func round6(v float64) float64 {
	if v != v || v > 1e300 || v < -1e300 {
		return v
	}
	const s = 1e6
	if v < 0 {
		return float64(int64(v*s-0.5)) / s
	}
	return float64(int64(v*s+0.5)) / s
}
