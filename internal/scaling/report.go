package scaling

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// ReportSchema identifies the scaling report format; bump on incompatible
// changes so downstream tooling can dispatch.
const ReportSchema = "kkt/scaling/v1"

// Report is the top-level sweep artifact (the SCALING_*.json payload). It
// contains only seed-determined data: identical configs marshal to
// byte-identical reports regardless of worker count, shard count or wall
// time.
type Report struct {
	Schema  string `json:"schema"`
	Seed    uint64 `json:"seed"`
	Seeds   int    `json:"seeds"`
	Density string `json:"density"`
	Ladder  []int  `json:"ladder"`
	// Cells hold one (family × algo) sweep each, families outer.
	Cells []Cell `json:"cells"`
	// Separations are the one-sided Welch tests of every (KKT algo ×
	// baseline) pair sharing a family, on the per-seed message slopes.
	Separations []Separation `json:"separations,omitempty"`
}

// Cell is one (family × algo) sweep: the measured ladder and its fits.
type Cell struct {
	Family string `json:"family"`
	Algo   string `json:"algo"`
	Rungs  []Rung `json:"rungs"`
	Fits   Fits   `json:"fits"`
}

// Rung is one ladder size with its per-seed measurements.
type Rung struct {
	N      int     `json:"n"`
	Points []Point `json:"points"`
}

// Point is one seeded trial's measurement: the generated edge count m
// (the fit's x axis) and the protocol costs.
type Point struct {
	Seed     uint64 `json:"seed"`
	M        int    `json:"m"`
	Messages uint64 `json:"messages"`
	Bits     uint64 `json:"bits"`
	Time     int64  `json:"time"`
	Valid    bool   `json:"valid"`
	Error    string `json:"error,omitempty"`
}

// Fits pairs the cell's two fitted metrics.
type Fits struct {
	Messages Fit `json:"messages"`
	Bits     Fit `json:"bits"`
}

// Fit is one log-log regression: the pooled fit over every point, plus
// the per-seed slopes (one regression across rungs per trial index) with
// their 95% Student-t confidence interval. A degenerate cell records
// Error and zeroes the rest.
type Fit struct {
	Slope     float64   `json:"slope"`
	Intercept float64   `json:"intercept"`
	R2        float64   `json:"r2"`
	PerSeed   []float64 `json:"per_seed,omitempty"`
	SeedMean  float64   `json:"seed_mean"`
	CILo      float64   `json:"ci_lo"`
	CIHi      float64   `json:"ci_hi"`
	Error     string    `json:"error,omitempty"`
}

// Separation is one Welch test verdict: does the baseline's fitted
// message exponent exceed the KKT algorithm's on this family? WelchT is
// clamped to ±1e12 when the statistic degenerates to ±Inf (zero variance
// on both sides), keeping the report valid JSON.
type Separation struct {
	Family    string  `json:"family"`
	Metric    string  `json:"metric"`
	KKT       string  `json:"kkt"`
	Baseline  string  `json:"baseline"`
	Gap       float64 `json:"gap"`
	WelchT    float64 `json:"welch_t"`
	DF        float64 `json:"df"`
	Separated bool    `json:"separated"`
}

// MarshalIndent renders the canonical JSON form (two-space indent,
// trailing newline), matching the bench report convention.
func (r Report) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteTable renders the human-readable sweep summary: one row per cell
// with the fitted exponents, then the separation verdicts.
func (r Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "FAMILY\tALGO\tPOINTS\tMSG-SLOPE\tMSG-CI95\tMSG-R2\tBITS-SLOPE")
	for _, c := range r.Cells {
		points := 0
		for _, rung := range c.Rungs {
			points += len(rung.Points)
		}
		mf := c.Fits.Messages
		if mf.Error != "" {
			fmt.Fprintf(tw, "%s\t%s\t%d\tfit error: %s\t\t\t\n", c.Family, c.Algo, points, mf.Error)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t[%.3f, %.3f]\t%.3f\t%.3f\n",
			c.Family, c.Algo, points,
			mf.Slope, mf.CILo, mf.CIHi, mf.R2, c.Fits.Bits.Slope)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(r.Separations) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "FAMILY\tKKT\tBASELINE\tSLOPE-GAP\tWELCH-T\tDF\tSEPARATED")
	for _, s := range r.Separations {
		verdict := "no"
		if s.Separated {
			verdict = "yes"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%.2f\t%.1f\t%s\n",
			s.Family, s.KKT, s.Baseline, s.Gap, s.WelchT, s.DF, verdict)
	}
	return tw.Flush()
}
