// Package scaling runs empirical o(m) verification sweeps: size ladders
// per (graph family × algorithm) cell, log-log curve fits of the measured
// costs against the edge count m, and a one-sided Welch test separating
// the fitted KKT exponent from the Θ(m)-bound baselines.
package scaling

import (
	"fmt"
	"math"
)

// FitLogLog fits ln y = intercept + slope·ln x by ordinary least squares
// and reports the fit's R². Degenerate inputs are rejected with an error:
// mismatched lengths, fewer than two points, fewer than two distinct x
// values (a single rung fits no slope), or nonpositive coordinates (the
// log-log transform is undefined there).
func FitLogLog(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("scaling: fit: %d x values vs %d y values", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("scaling: fit: %d points, want >= 2 (a single rung fits no slope)", len(xs))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	distinct := false
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("scaling: fit: point (%v, %v) not strictly positive", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
		if xs[i] != xs[0] {
			distinct = true
		}
	}
	if !distinct {
		return 0, 0, 0, fmt.Errorf("scaling: fit: all %d points share x=%v (need >= 2 distinct sizes)", len(xs), xs[0])
	}
	n := float64(len(lx))
	var mx, my float64
	for i := range lx {
		mx += lx[i]
		my += ly[i]
	}
	mx /= n
	my /= n
	var sxx, sxy, syy float64
	for i := range lx {
		dx, dy := lx[i]-mx, ly[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		// Constant y: the zero slope fits exactly, residuals vanish.
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return slope, intercept, r2, nil
}

// MeanCI95 returns the sample mean of vals with its two-sided 95%
// Student-t confidence interval. At least two samples are required — a
// single slope has no spread to estimate. Zero-variance samples yield a
// zero-width interval, not an error.
func MeanCI95(vals []float64) (mean, lo, hi float64, err error) {
	if len(vals) < 2 {
		return 0, 0, 0, fmt.Errorf("scaling: ci: %d samples, want >= 2", len(vals))
	}
	mean, variance := meanVar(vals)
	se := math.Sqrt(variance / float64(len(vals)))
	h := tCrit(t975, float64(len(vals)-1)) * se
	return mean, mean - h, mean + h, nil
}

// WelchOneSided computes the one-sided Welch t statistic and its
// Welch–Satterthwaite degrees of freedom for the hypothesis
// mean(hi) > mean(lo). Both samples need at least two values. When both
// samples have zero variance the statistic degenerates to ±Inf (or 0 on a
// zero gap): the gap is then exact rather than estimated, which still
// clears (or fails) any finite critical value.
func WelchOneSided(hi, lo []float64) (t, df float64, err error) {
	if len(hi) < 2 || len(lo) < 2 {
		return 0, 0, fmt.Errorf("scaling: welch: samples of %d and %d values, want >= 2 each", len(hi), len(lo))
	}
	m1, v1 := meanVar(hi)
	m2, v2 := meanVar(lo)
	n1, n2 := float64(len(hi)), float64(len(lo))
	a, b := v1/n1, v2/n2
	gap := m1 - m2
	if a+b == 0 {
		df = n1 + n2 - 2
		switch {
		case gap > 0:
			return math.Inf(1), df, nil
		case gap < 0:
			return math.Inf(-1), df, nil
		}
		return 0, df, nil
	}
	t = gap / math.Sqrt(a+b)
	df = (a + b) * (a + b) / (a*a/(n1-1) + b*b/(n2-1))
	return t, df, nil
}

// Separated reports whether the one-sided Welch statistic clears the 95%
// critical value at the given degrees of freedom.
func Separated(t, df float64) bool { return t > tCrit(t95, df) }

// meanVar returns the sample mean and (n-1)-normalized variance.
func meanVar(vals []float64) (mean, variance float64) {
	n := float64(len(vals))
	for _, v := range vals {
		mean += v
	}
	mean /= n
	if len(vals) < 2 {
		return mean, 0
	}
	for _, v := range vals {
		d := v - mean
		variance += d * d
	}
	return mean, variance / (n - 1)
}

// tTable is a pinned Student-t quantile table: rows index df 1..30, tail
// holds asymptotic steps beyond, inf is the normal-limit value. Tables
// instead of an incomplete-beta implementation: sweeps only ever need the
// 95% decision threshold, and a pinned table is trivially deterministic.
type tTable struct {
	rows []float64
	tail []struct {
		maxDF float64
		crit  float64
	}
	inf float64
}

var (
	// 0.975 quantile — two-sided 95% confidence intervals.
	t975 = tTable{
		rows: []float64{
			12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
			2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
			2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
		},
		tail: []struct{ maxDF, crit float64 }{{40, 2.021}, {60, 2.000}, {120, 1.980}},
		inf:  1.960,
	}

	// 0.95 quantile — one-sided 95% tests.
	t95 = tTable{
		rows: []float64{
			6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
			1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
			1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
		},
		tail: []struct{ maxDF, crit float64 }{{40, 1.684}, {60, 1.671}, {120, 1.658}},
		inf:  1.645,
	}
)

// tCrit looks up the critical value for (possibly fractional) degrees of
// freedom. Fractional df floors to the next-lower table row — the
// conservative direction, since smaller df means a larger critical value.
func tCrit(table tTable, df float64) float64 {
	d := int(df)
	if d < 1 {
		d = 1
	}
	if d <= len(table.rows) {
		return table.rows[d-1]
	}
	for _, s := range table.tail {
		if df <= s.maxDF {
			return s.crit
		}
	}
	return table.inf
}
