package mst

import (
	"testing"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// BenchmarkBuildMST measures a full Build MST run — network construction,
// Borůvka phases, FindMin-C searches — on a connected G(n,3n).
func BenchmarkBuildMST(b *testing.B) {
	r := rng.New(11)
	g := graph.GNM(r, 128, 384, 1024, graph.UniformWeights(r, 1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := congest.NewNetwork(g, congest.WithSeed(uint64(i)+1))
		pr := tree.Attach(nw)
		if _, err := Build(nw, pr, DefaultBuild(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}
