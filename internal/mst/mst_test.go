package mst

import (
	"sort"
	"testing"

	"kkt/internal/congest"
	"kkt/internal/findmin"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/spanning"
	"kkt/internal/tree"
)

// forestIndices converts marked endpoint pairs to edge indices of g.
func forestIndices(t *testing.T, g *graph.Graph, forest [][2]congest.NodeID) []int {
	t.Helper()
	out := make([]int, 0, len(forest))
	for _, e := range forest {
		i := g.EdgeIndex(uint32(e[0]), uint32(e[1]))
		if i < 0 {
			t.Fatalf("marked edge {%d,%d} not in graph", e[0], e[1])
		}
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func buildAndCheck(t *testing.T, g *graph.Graph, seed uint64) BuildResult {
	t.Helper()
	nw := congest.NewNetwork(g)
	pr := tree.Attach(nw)
	res, err := Build(nw, pr, DefaultBuild(seed))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := spanning.IsMSF(g, forestIndices(t, g, res.Forest)); err != nil {
		t.Fatalf("Build result is not the MSF: %v", err)
	}
	return res
}

func TestBuildTinyGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"two nodes", graph.Path(2, 10, graph.UnitWeights())},
		{"triangle", graph.Complete(3, 10, func(k int) uint64 { return uint64(k + 1) })},
		{"path", graph.Path(6, 100, func(k int) uint64 { return uint64(7 * (k + 1)) })},
		{"star", graph.Star(7, 10, func(k int) uint64 { return uint64(k + 1) })},
		{"ring", graph.Ring(5, 10, func(k int) uint64 { return uint64(k + 1) })},
		{"K5", graph.Complete(5, 100, func(k int) uint64 { return uint64(k*3 + 1) })},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buildAndCheck(t, tt.g, 42)
		})
	}
}

func TestBuildRandomGraphs(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 12; trial++ {
		n := 8 + r.Intn(40)
		maxM := n * (n - 1) / 2
		m := n - 1 + r.Intn(maxM-n+2)
		g := graph.GNM(r, n, m, 1000, graph.UniformWeights(r, 1000))
		buildAndCheck(t, g, uint64(trial)*17+3)
	}
}

func TestBuildDuplicateRawWeights(t *testing.T) {
	// Heavy raw-weight ties force composite tie-breaking everywhere.
	r := rng.New(31)
	g := graph.GNM(r, 25, 80, 3, graph.UniformWeights(r, 3))
	buildAndCheck(t, g, 7)
}

func TestBuildDisconnectedForest(t *testing.T) {
	// Two components: Build must produce the minimum spanning forest.
	g := graph.MustNew(7, 100)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(1, 3, 9)
	g.MustAddEdge(4, 5, 2)
	g.MustAddEdge(5, 6, 8)
	g.MustAddEdge(4, 6, 3)
	g.MustAddEdge(6, 7, 1)
	buildAndCheck(t, g, 11)
}

func TestBuildGrid(t *testing.T) {
	r := rng.New(55)
	g := graph.Grid(6, 6, 500, graph.UniformWeights(r, 500))
	buildAndCheck(t, g, 5)
}

func TestBuildPhasesLogarithmic(t *testing.T) {
	r := rng.New(77)
	g := graph.GNM(r, 64, 256, 10000, graph.UniformWeights(r, 10000))
	res := buildAndCheck(t, g, 21)
	// fragments at least halve per fully-successful phase; FindMin-C
	// succeeds with constant probability, so ~2-4x lg n phases is ample.
	if len(res.Phases) > 30 {
		t.Errorf("build took %d phases on n=64", len(res.Phases))
	}
	// fragment counts must be non-increasing
	for i := 1; i < len(res.Phases); i++ {
		if res.Phases[i].Fragments > res.Phases[i-1].Fragments {
			t.Errorf("fragments grew: phase %d had %d, phase %d had %d",
				i-1, res.Phases[i-1].Fragments, i, res.Phases[i].Fragments)
		}
	}
	if res.Phases[0].Fragments != 64 {
		t.Errorf("phase 1 fragments = %d, want n", res.Phases[0].Fragments)
	}
}

func TestBuildFixedPolicyMatchesAdaptive(t *testing.T) {
	r := rng.New(13)
	g := graph.GNM(r, 12, 30, 50, graph.UniformWeights(r, 50))
	nwA := congest.NewNetwork(g)
	prA := tree.Attach(nwA)
	cfgA := DefaultBuild(3)
	resA, err := Build(nwA, prA, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	nwF := congest.NewNetwork(g)
	prF := tree.Attach(nwF)
	cfgF := DefaultBuild(3)
	cfgF.Policy = Fixed
	resF, err := Build(nwF, prF, cfgF)
	if err != nil {
		t.Fatal(err)
	}
	// Same forest either way; Fixed pays for the idle phases.
	ia, fa := forestIndices(t, g, resA.Forest), forestIndices(t, g, resF.Forest)
	if len(ia) != len(fa) {
		t.Fatalf("forests differ in size: %d vs %d", len(ia), len(fa))
	}
	for i := range ia {
		if ia[i] != fa[i] {
			t.Fatal("forests differ")
		}
	}
	if resF.Messages <= resA.Messages {
		t.Errorf("fixed policy (%d msgs) should cost more than adaptive (%d)", resF.Messages, resA.Messages)
	}
	if len(resF.Phases) != MaxPhases(g.N, cfgF.C) {
		t.Errorf("fixed policy ran %d phases, want %d", len(resF.Phases), MaxPhases(g.N, cfgF.C))
	}
}

func TestBuildDeterministicPerSeed(t *testing.T) {
	r := rng.New(8)
	g := graph.GNM(r, 20, 60, 100, graph.UniformWeights(r, 100))
	r1 := buildAndCheck(t, g, 123)
	r2 := buildAndCheck(t, g, 123)
	if r1.Messages != r2.Messages || r1.Rounds != r2.Rounds {
		t.Errorf("same seed, different costs: %d/%d vs %d/%d",
			r1.Messages, r1.Rounds, r2.Messages, r2.Rounds)
	}
}

// --- repair ---

// checkMSF asserts that the network's marked forest is the MSF of g.
func checkMSF(t *testing.T, nw *congest.Network, g *graph.Graph) {
	t.Helper()
	if err := spanning.IsMSF(g, forestIndices(t, g, nw.MarkedEdges())); err != nil {
		t.Fatalf("maintained forest is not the MSF: %v", err)
	}
}

// setup builds a graph + async network carrying its MSF.
func repairSetup(t *testing.T, seed uint64, n, m int) (*graph.Graph, *congest.Network, *tree.Protocol) {
	t.Helper()
	r := rng.New(seed)
	g := graph.GNM(r, n, m, 1000, graph.UniformWeights(r, 1000))
	nw := congest.NewNetwork(g, congest.WithAsync(8), congest.WithSeed(seed))
	pr := tree.Attach(nw)
	var forest [][2]congest.NodeID
	for _, ei := range spanning.Kruskal(g) {
		e := g.Edge(ei)
		forest = append(forest, [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)})
	}
	nw.SetForest(forest)
	return g, nw, pr
}

func TestDeleteTreeEdgeReconnects(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g, nw, pr := repairSetup(t, uint64(trial)+1, 20, 60)
		// delete a random tree edge
		msf := spanning.Kruskal(g)
		victim := g.Edge(msf[trial%len(msf)])
		rep, err := Delete(nw, pr, congest.NodeID(victim.A), congest.NodeID(victim.B), DefaultRepair(uint64(trial)*3+1))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Action != Reconnected && rep.Action != Bridge {
			t.Fatalf("trial %d: action = %v", trial, rep.Action)
		}
		// ground truth on the graph without the edge
		g2 := rebuildWithout(t, g, victim)
		checkMSF(t, nw, g2)
		if rep.Messages == 0 && rep.Action == Reconnected {
			t.Error("reconnection cost zero messages")
		}
	}
}

// rebuildWithout clones g minus one edge.
func rebuildWithout(t *testing.T, g *graph.Graph, victim graph.Edge) *graph.Graph {
	t.Helper()
	g2 := graph.MustNew(g.N, g.MaxRaw)
	for _, e := range g.Edges() {
		if e == victim {
			continue
		}
		g2.MustAddEdge(e.A, e.B, e.Raw)
	}
	return g2
}

func TestDeleteNonTreeEdgeIsFree(t *testing.T) {
	g, nw, pr := repairSetup(t, 5, 15, 50)
	inMSF := make(map[int]bool)
	for _, ei := range spanning.Kruskal(g) {
		inMSF[ei] = true
	}
	var victim graph.Edge
	for i := range g.Edges() {
		if !inMSF[i] {
			victim = g.Edge(i)
			break
		}
	}
	rep, err := Delete(nw, pr, congest.NodeID(victim.A), congest.NodeID(victim.B), DefaultRepair(9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != NoOp || rep.Messages != 0 {
		t.Errorf("non-tree delete: action=%v messages=%d, want no-op/0", rep.Action, rep.Messages)
	}
	checkMSF(t, nw, rebuildWithout(t, g, victim))
}

func TestDeleteBridge(t *testing.T) {
	g := graph.MustNew(4, 10)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 2)
	g.MustAddEdge(2, 3, 5) // bridge
	nw := congest.NewNetwork(g, congest.WithAsync(4))
	pr := tree.Attach(nw)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {3, 4}, {2, 3}})
	rep, err := Delete(nw, pr, 2, 3, DefaultRepair(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != Bridge {
		t.Fatalf("action = %v, want bridge", rep.Action)
	}
	if got := len(nw.MarkedEdges()); got != 2 {
		t.Errorf("marked edges after bridge delete = %d, want 2", got)
	}
}

func TestInsertJoinsTrees(t *testing.T) {
	g := graph.MustNew(4, 10)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 2)
	nw := congest.NewNetwork(g, congest.WithAsync(4))
	pr := tree.Attach(nw)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {3, 4}})
	rep, err := Insert(nw, pr, 2, 3, 7, DefaultRepair(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != Added {
		t.Fatalf("action = %v, want added", rep.Action)
	}
	g.MustAddEdge(2, 3, 7)
	checkMSF(t, nw, g)
}

func TestInsertSwapAndKeep(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g, nw, pr := repairSetup(t, uint64(trial)+50, 18, 40)
		// insert a new edge between two random non-adjacent nodes
		r := rng.New(uint64(trial) + 500)
		var a, b uint32
		for {
			a = uint32(r.Intn(g.N) + 1)
			b = uint32(r.Intn(g.N) + 1)
			if a != b && !g.HasEdge(a, b) {
				break
			}
		}
		raw := r.Range(1, 1000)
		rep, err := Insert(nw, pr, congest.NodeID(a), congest.NodeID(b), raw, DefaultRepair(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Action != Swapped && rep.Action != Kept && rep.Action != Added {
			t.Fatalf("trial %d: action = %v", trial, rep.Action)
		}
		g.MustAddEdge(a, b, raw)
		checkMSF(t, nw, g)
	}
}

func TestWeightChangeAllCases(t *testing.T) {
	g, nw, pr := repairSetup(t, 123, 16, 40)
	msf := spanning.Kruskal(g)
	inMSF := make(map[int]bool)
	for _, ei := range msf {
		inMSF[ei] = true
	}
	treeEdge := g.Edge(msf[2])
	var nonTree graph.Edge
	for i := range g.Edges() {
		if !inMSF[i] {
			nonTree = g.Edge(i)
			break
		}
	}
	apply := func(e graph.Edge, raw uint64) {
		i := g.EdgeIndex(e.A, e.B)
		es := g.Edges()
		es[i].Raw = raw
	}
	// 1. increase a tree edge's weight drastically: likely swap out.
	rep, err := WeightChange(nw, pr, congest.NodeID(treeEdge.A), congest.NodeID(treeEdge.B), 1000, DefaultRepair(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != Reconnected && rep.Action != Bridge {
		t.Fatalf("increase-on-tree action = %v", rep.Action)
	}
	apply(treeEdge, 1000)
	checkMSF(t, nw, g)
	// 2. decrease a non-tree edge to 1: likely swap in.
	rep, err = WeightChange(nw, pr, congest.NodeID(nonTree.A), congest.NodeID(nonTree.B), 1, DefaultRepair(5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != Swapped && rep.Action != Kept {
		t.Fatalf("decrease-on-nontree action = %v", rep.Action)
	}
	apply(nonTree, 1)
	checkMSF(t, nw, g)
	// 3. no-op direction: increase a (current) non-tree edge.
	var nonTree2 graph.Edge
	inMSF2 := make(map[int]bool)
	for _, ei := range spanning.Kruskal(g) {
		inMSF2[ei] = true
	}
	for i := range g.Edges() {
		if !inMSF2[i] {
			nonTree2 = g.Edge(i)
			break
		}
	}
	rep, err = WeightChange(nw, pr, congest.NodeID(nonTree2.A), congest.NodeID(nonTree2.B), nonTree2.Raw+1, DefaultRepair(6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != NoOp || rep.Messages != 0 {
		t.Fatalf("increase-on-nontree: %v/%d msgs, want no-op/0", rep.Action, rep.Messages)
	}
	apply(nonTree2, nonTree2.Raw+1)
	checkMSF(t, nw, g)
}

func TestRepairStreamKeepsInvariant(t *testing.T) {
	// A stream of random deletes and inserts, invariant-checked after
	// each update — the dynamic-network headline.
	g, nw, pr := repairSetup(t, 777, 24, 70)
	r := rng.New(4242)
	for step := 0; step < 30; step++ {
		if r.Bool() && g.M() > g.N {
			// delete a random edge (tree or not)
			ei := r.Intn(g.M())
			e := g.Edge(ei)
			if _, err := Delete(nw, pr, congest.NodeID(e.A), congest.NodeID(e.B), DefaultRepair(uint64(step))); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			g = rebuildWithout(t, g, e)
		} else {
			var a, b uint32
			for tries := 0; ; tries++ {
				a = uint32(r.Intn(g.N) + 1)
				b = uint32(r.Intn(g.N) + 1)
				if a != b && !g.HasEdge(a, b) {
					break
				}
				if tries > 200 {
					a = 0
					break
				}
			}
			if a == 0 {
				continue
			}
			raw := r.Range(1, 1000)
			if _, err := Insert(nw, pr, congest.NodeID(a), congest.NodeID(b), raw, DefaultRepair(uint64(step))); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			g.MustAddEdge(a, b, raw)
		}
		checkMSF(t, nw, g)
	}
}

func TestFindMinVariantInRepair(t *testing.T) {
	// Using FindMin-C for repair gives worst-case cost but may fail;
	// verify the Failed action surfaces rather than corrupting marks.
	for trial := 0; trial < 8; trial++ {
		g, nw, pr := repairSetup(t, uint64(trial)+900, 16, 48)
		msf := spanning.Kruskal(g)
		victim := g.Edge(msf[trial%len(msf)])
		cfg := RepairConfig{Seed: uint64(trial), FindMin: findmin.Defaults(findmin.Capped)}
		rep, err := Delete(nw, pr, congest.NodeID(victim.A), congest.NodeID(victim.B), cfg)
		if err != nil {
			t.Fatal(err)
		}
		switch rep.Action {
		case Reconnected, Bridge:
			checkMSF(t, nw, rebuildWithout(t, g, victim))
		case Failed:
			// acceptable with constant probability; marks must still be
			// a sub-forest (no cycles, properly marked).
			forest := nw.MarkedEdges()
			g2 := rebuildWithout(t, g, victim)
			uf := spanning.NewUnionFind(g2.N)
			for _, e := range forest {
				if !uf.Union(uint32(e[0]), uint32(e[1])) {
					t.Fatal("failed repair left a cycle")
				}
			}
		default:
			t.Fatalf("unexpected action %v", rep.Action)
		}
	}
}
