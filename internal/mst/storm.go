package mst

import (
	"kkt/internal/admit"
	"kkt/internal/congest"
	"kkt/internal/faultplan"
	"kkt/internal/findmin"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// stormRepair is the wave-mode form of the repair drivers in repair.go: the
// same operation bodies (FindMin reconnection for delete-style events,
// path-max settle for insert-style ones) as an explicit continuation state
// machine, so an admission wave of overlapping repairs costs heap objects,
// not parked goroutine stacks. Unlike the sequential drivers it never
// awaits quiescence or applies staged marks itself — the wave controller's
// single Run/ApplyStaged covers every repair in the wave (see
// internal/admit's safety argument).
type stormRepair struct {
	nw *congest.Network
	pr *tree.Protocol
	fm *findmin.Machine

	deleteStyle bool
	// root is the repair initiator — the endpoint whose side of the live
	// marked forest the launcher's admission-time probe found smaller, so
	// the machine's tree traversals stay proportional to the small side
	// (the fault compiler's Event.A orientation is only a modelled guess;
	// see admit.SideProber). peer is the other endpoint.
	root, peer congest.NodeID
	seed       uint64
	cfg        findmin.Config

	st     uint8
	action Action
}

const (
	srStart uint8 = iota
	srFindMin
	srAddEdge
	srPathMax
	srSwap
)

func (sr *stormRepair) reset(deleteStyle bool, a, b congest.NodeID, seed uint64, cfg findmin.Config) {
	sr.deleteStyle, sr.root, sr.peer = deleteStyle, a, b
	sr.seed, sr.cfg = seed, cfg
	sr.st = srStart
	sr.action = 0
}

// Action implements admit.Repair; valid once the task finished.
func (sr *stormRepair) Action() string { return sr.action.String() }

// Step implements congest.StepDriver.
func (sr *stormRepair) Step(t *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	switch sr.st {
	case srStart:
		if sr.deleteStyle {
			sr.fm.Reset(sr.pr, sr.root, rng.New(sr.seed), sr.cfg)
			sr.st = srFindMin
			return sr.stepFindMin(t, congest.Wake{})
		}
		sr.st = srPathMax
		return sr.pr.StartBroadcastEcho(sr.root, pathMaxSpec(sr.peer)), false, nil

	case srFindMin:
		return sr.stepFindMin(t, w)

	case srAddEdge:
		if err := w.Err(); err != nil {
			return 0, true, err
		}
		sr.action = Reconnected
		return 0, true, nil

	case srPathMax:
		v, err := w.Value()
		if err != nil {
			return 0, true, err
		}
		pm := v.(pathMaxResult)
		switch {
		case !pm.Found:
			// peer is in a different tree: the new edge joins two trees.
			// The far half arrives via markx before the wave's Run
			// quiesces.
			sr.nw.Node(sr.root).StageMark(sr.peer)
			sr.pr.SendMarkX(sr.root, sr.peer)
			sr.action = Added
			return 0, true, nil
		case sr.nw.Node(sr.root).EdgeTo(sr.peer).Composite < pm.MaxComposite:
			sr.st = srSwap
			spec := swapSpec(pm.MaxEdgeNum, sr.nw.Node(sr.root).EdgeTo(sr.peer).EdgeNum)
			return sr.pr.StartBroadcastEcho(sr.root, spec), false, nil
		default:
			sr.action = Kept
			return 0, true, nil
		}

	case srSwap:
		if err := w.Err(); err != nil {
			return 0, true, err
		}
		sr.action = Swapped
		return 0, true, nil
	}
	panic("mst: stormRepair stepped after done")
}

// stepFindMin delegates to the inner FindMin machine and, on completion,
// dispatches on its result exactly like the blocking delete driver.
func (sr *stormRepair) stepFindMin(t *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	next, done, err := sr.fm.Step(t, w)
	if !done {
		return next, false, err
	}
	if err != nil {
		return 0, true, err
	}
	res, _ := sr.fm.Result()
	switch res.Reason {
	case findmin.FoundEdge:
		sr.st = srAddEdge
		return sr.pr.StartBroadcastEcho(sr.root, tree.AddEdgeSpec(res.EdgeNum)), false, nil
	case findmin.EmptyCut:
		sr.action = Bridge
	default:
		sr.action = Failed
	}
	return 0, true, nil
}

// StormLauncher implements admit.Launcher for a maintained weighted MSF:
// the admission-time classification mirrors Delete/Insert/WeightChange in
// repair.go — same seed derivations, same inline no-op cases — with the
// driver bodies run as stormRepair machines.
type StormLauncher struct {
	nw    *congest.Network
	pr    *tree.Protocol
	cfg   RepairConfig
	probe *admit.SideProber
	free  []*stormRepair
}

// NewStormLauncher returns a launcher maintaining the MSF on nw/pr.
func NewStormLauncher(nw *congest.Network, pr *tree.Protocol, cfg RepairConfig) *StormLauncher {
	return &StormLauncher{nw: nw, pr: pr, cfg: cfg, probe: admit.NewSideProber()}
}

func (l *StormLauncher) get() *stormRepair {
	if n := len(l.free); n > 0 {
		sr := l.free[n-1]
		l.free = l.free[:n-1]
		return sr
	}
	return &stormRepair{nw: l.nw, pr: l.pr, fm: findmin.NewMachine()}
}

// Release implements admit.Launcher.
func (l *StormLauncher) Release(r admit.Repair) {
	l.free = append(l.free, r.(*stormRepair))
}

// Admit implements admit.Launcher.
func (l *StormLauncher) Admit(ev faultplan.Event, opSeed uint64, claim admit.Claim) admit.Decision {
	a, b := congest.NodeID(ev.A), congest.NodeID(ev.B)
	switch ev.Op {
	case faultplan.OpDelete:
		he := l.nw.Node(a).EdgeTo(b)
		if he == nil {
			return admit.Decision{Inline: true, Action: admit.Skipped, Op: "mst.delete"}
		}
		if !he.Marked {
			l.nw.DeleteLink(a, b)
			return admit.Decision{Inline: true, Action: NoOp.String(), Op: "mst.delete"}
		}
		if !claim(a) {
			return admit.Decision{Deferred: true}
		}
		l.nw.DeleteLink(a, b)
		root, peer := l.probe.Smaller(l.nw, a, b)
		sr := l.get()
		sr.reset(true, root, peer, l.cfg.Seed^uint64(a)<<32^uint64(b), l.cfg.FindMin)
		return admit.Decision{Op: "mst.delete", Driver: sr}

	case faultplan.OpInsert:
		if a == b || l.nw.Node(a).EdgeTo(b) != nil {
			return admit.Decision{Inline: true, Action: admit.Skipped, Op: "mst.insert"}
		}
		if !claim(a, b) {
			return admit.Decision{Deferred: true}
		}
		if err := l.nw.InsertLink(a, b, ev.Raw); err != nil {
			return admit.Decision{Inline: true, Action: admit.Skipped, Op: "mst.insert"}
		}
		// The inserted edge is not yet marked, so the probe still sees two
		// separate trees when the insert is a join — rooting the path probe
		// in the smaller one keeps joins cheap.
		root, peer := l.probe.Smaller(l.nw, a, b)
		sr := l.get()
		sr.reset(false, root, peer, 0, l.cfg.FindMin)
		return admit.Decision{Op: "mst.insert", Driver: sr}

	case faultplan.OpWeightChange:
		he := l.nw.Node(a).EdgeTo(b)
		if he == nil {
			return admit.Decision{Inline: true, Action: admit.Skipped, Op: "mst.reweight"}
		}
		oldRaw, wasMarked := he.Raw, he.Marked
		if ev.Raw == oldRaw {
			return admit.Decision{Inline: true, Action: NoOp.String(), Op: "mst.reweight"}
		}
		switch {
		case wasMarked && ev.Raw > oldRaw:
			// Increase on a tree edge: unmark and repair like a deletion,
			// with the edge staying available as its own replacement.
			if !claim(a) {
				return admit.Decision{Deferred: true}
			}
			l.nw.SetRawWeight(a, b, ev.Raw)
			l.nw.Node(a).SetMark(b, false)
			l.nw.Node(b).SetMark(a, false)
			root, peer := l.probe.Smaller(l.nw, a, b)
			sr := l.get()
			sr.reset(true, root, peer, l.cfg.Seed^uint64(a)<<32^uint64(b)^0x5851f42d4c957f2d, l.cfg.FindMin)
			return admit.Decision{Op: "mst.reweight", Driver: sr}
		case !wasMarked && ev.Raw < oldRaw:
			// Decrease on a non-tree edge: like an insertion.
			if !claim(a, b) {
				return admit.Decision{Deferred: true}
			}
			l.nw.SetRawWeight(a, b, ev.Raw)
			root, peer := l.probe.Smaller(l.nw, a, b)
			sr := l.get()
			sr.reset(false, root, peer, 0, l.cfg.FindMin)
			return admit.Decision{Op: "mst.reweight", Driver: sr}
		default:
			// No-op directions still apply the new weight.
			l.nw.SetRawWeight(a, b, ev.Raw)
			return admit.Decision{Inline: true, Action: NoOp.String(), Op: "mst.reweight"}
		}
	}
	return admit.Decision{Inline: true, Action: admit.Skipped, Op: "mst.unknown"}
}
