package mst

import (
	"fmt"

	"kkt/internal/congest"
	"kkt/internal/findmin"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// Action describes what a repair operation did.
type Action int

const (
	// NoOp: the change did not affect the maintained forest.
	NoOp Action = iota + 1
	// Reconnected: a replacement edge was found and marked.
	Reconnected
	// Bridge: the deleted edge was a bridge; the component stays split.
	Bridge
	// Added: the inserted edge joined two trees (or beat nothing).
	Added
	// Swapped: the inserted/cheapened edge replaced the heaviest path
	// edge.
	Swapped
	// Kept: the inserted/cheapened edge lost to the existing path.
	Kept
	// Failed: the randomized search gave up (probability ~ n^-c for the
	// Full variants); the forest may be left disconnected.
	Failed
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case NoOp:
		return "no-op"
	case Reconnected:
		return "reconnected"
	case Bridge:
		return "bridge"
	case Added:
		return "added"
	case Swapped:
		return "swapped"
	case Kept:
		return "kept"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Report is the outcome and cost of one repair operation.
type Report struct {
	Action   Action
	Messages uint64
	Bits     uint64
	Time     int64
	// Edge is the replacement/marked edge when Action is Reconnected,
	// Added or Swapped.
	Edge [2]congest.NodeID
	// Stats carries the inner FindMin statistics for delete repairs.
	Stats findmin.Stats
}

// RepairConfig tunes the repair operations.
type RepairConfig struct {
	Seed uint64
	// FindMin is the replacement-search configuration; the paper uses
	// FindMin (Full) for expected-cost repair, FindMin-C for worst-case.
	FindMin findmin.Config
}

// DefaultRepair returns the paper-faithful configuration (FindMin, i.e.
// expected O(n log n / log log n) messages per delete).
func DefaultRepair(seed uint64) RepairConfig {
	return RepairConfig{Seed: seed, FindMin: findmin.Defaults(findmin.Full)}
}

// obsRepairStart/obsRepairDone bracket a repair operation for the attached
// observer (no-ops when none): the round-latency and cost reported are the
// same deltas the returned Report carries.
func obsRepairStart(nw *congest.Network, op string) {
	if o := nw.Obs(); o != nil {
		o.RepairStart(op, nw.Now())
	}
}

func obsRepairDone(nw *congest.Network, op string, rep Report) {
	if o := nw.Obs(); o != nil {
		o.RepairDone(op, rep.Action.String(), nw.Now(), rep.Time, rep.Messages, rep.Bits)
	}
}

// Delete processes the deletion of link {a,b} (paper §3.2 Delete(u,v)):
// the link is removed from the topology; if it was a tree edge, the
// smaller-ID endpoint initiates FindMin over its remaining tree and marks
// the replacement, if any. The network must be idle (impromptu repair is
// between-updates state-free).
func Delete(nw *congest.Network, pr *tree.Protocol, a, b congest.NodeID, cfg RepairConfig) (Report, error) {
	before := nw.Counters()
	beforeTime := nw.Now()
	existed, wasMarked := nw.DeleteLink(a, b)
	if !existed {
		return Report{}, fmt.Errorf("mst: delete of non-existent link {%d,%d}", a, b)
	}
	obsRepairStart(nw, "mst.delete")
	if !wasMarked {
		rep := Report{Action: NoOp}
		obsRepairDone(nw, "mst.delete", rep)
		return rep, nil
	}
	u := a
	if b < u {
		u = b
	}
	var rep Report
	nw.Spawn(fmt.Sprintf("delete-%d-%d", a, b), func(p *congest.Proc) error {
		r := rng.New(cfg.Seed ^ uint64(a)<<32 ^ uint64(b))
		res, err := findmin.Run(p, pr, u, r, cfg.FindMin)
		if err != nil {
			return err
		}
		rep.Stats = res.Stats
		switch res.Reason {
		case findmin.FoundEdge:
			if _, err := pr.BroadcastEcho(p, u, tree.AddEdgeSpec(res.EdgeNum)); err != nil {
				return err
			}
			p.AwaitQuiescence()
			nw.ApplyStaged()
			rep.Action = Reconnected
			rep.Edge = [2]congest.NodeID{res.A, res.B}
		case findmin.EmptyCut:
			rep.Action = Bridge
		case findmin.GaveUp:
			rep.Action = Failed
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		return rep, err
	}
	c := nw.CountersSince(before)
	rep.Messages = c.Messages
	rep.Bits = c.Bits
	rep.Time = nw.Now() - beforeTime
	obsRepairDone(nw, "mst.delete", rep)
	return rep, nil
}

// Insert processes the insertion of link {a,b} with the given raw weight
// (paper §3.2 Insert(u,v)): the smaller-ID endpoint checks whether the
// other endpoint is in its tree and, if so, finds the heaviest edge on the
// tree path between them with one broadcast-and-echo; the new edge
// replaces it if lighter. Deterministic, O(|T|) messages.
func Insert(nw *congest.Network, pr *tree.Protocol, a, b congest.NodeID, raw uint64, cfg RepairConfig) (Report, error) {
	if err := nw.InsertLink(a, b, raw); err != nil {
		return Report{}, err
	}
	return settleUnmarked(nw, pr, a, b, "mst.insert")
}

// settleUnmarked restores the MSF invariant given that the (existing,
// unmarked) link {a,b} may now belong in the forest. op labels the
// enclosing operation for observers.
func settleUnmarked(nw *congest.Network, pr *tree.Protocol, a, b congest.NodeID, op string) (Report, error) {
	before := nw.Counters()
	beforeTime := nw.Now()
	obsRepairStart(nw, op)
	u, v := a, b
	if v < u {
		u, v = v, u
	}
	newComposite := nw.Node(u).EdgeTo(v).Composite
	var rep Report
	nw.Spawn(fmt.Sprintf("insert-%d-%d", a, b), func(p *congest.Proc) error {
		pm, err := runPathMax(p, pr, u, v)
		if err != nil {
			return err
		}
		switch {
		case !pm.Found:
			// v is in a different tree: the new edge joins two trees.
			nw.Node(u).StageMark(v)
			pr.SendMarkX(u, v)
			p.AwaitQuiescence()
			nw.ApplyStaged()
			rep.Action = Added
			rep.Edge = [2]congest.NodeID{u, v}
		case newComposite < pm.MaxComposite:
			// Swap: broadcast "remove heaviest path edge, add {u,v}".
			spec := swapSpec(pm.MaxEdgeNum, nw.Node(u).EdgeTo(v).EdgeNum)
			if _, err := pr.BroadcastEcho(p, u, spec); err != nil {
				return err
			}
			p.AwaitQuiescence()
			nw.ApplyStaged()
			rep.Action = Swapped
			rep.Edge = [2]congest.NodeID{u, v}
		default:
			rep.Action = Kept
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		return rep, err
	}
	c := nw.CountersSince(before)
	rep.Messages = c.Messages
	rep.Bits = c.Bits
	rep.Time = nw.Now() - beforeTime
	obsRepairDone(nw, op, rep)
	return rep, nil
}

// WeightChange processes a weight change on the existing link {a,b}
// (paper Theorem 1.2 treats increases like deletions and decreases like
// insertions).
func WeightChange(nw *congest.Network, pr *tree.Protocol, a, b congest.NodeID, newRaw uint64, cfg RepairConfig) (Report, error) {
	he := nw.Node(a).EdgeTo(b)
	if he == nil {
		return Report{}, fmt.Errorf("mst: weight change on non-existent link {%d,%d}", a, b)
	}
	oldRaw, wasMarked := he.Raw, he.Marked
	if newRaw == oldRaw {
		return Report{Action: NoOp}, nil
	}
	if err := nw.SetRawWeight(a, b, newRaw); err != nil {
		return Report{}, err
	}
	switch {
	case wasMarked && newRaw > oldRaw:
		// Increase on a tree edge: both endpoints observe the change and
		// unmark; then repair exactly like a deletion, except the edge
		// itself stays available as its own (possibly best) replacement.
		nw.Node(a).SetMark(b, false)
		nw.Node(b).SetMark(a, false)
		rep, err := deleteStyleRepair(nw, pr, a, b, cfg)
		return rep, err
	case !wasMarked && newRaw < oldRaw:
		// Decrease on a non-tree edge: like an insertion.
		return settleUnmarked(nw, pr, a, b, "mst.reweight")
	default:
		// Decrease on a tree edge / increase on a non-tree edge: the MSF
		// is unchanged.
		rep := Report{Action: NoOp}
		obsRepairStart(nw, "mst.reweight")
		obsRepairDone(nw, "mst.reweight", rep)
		return rep, nil
	}
}

// deleteStyleRepair runs the FindMin reconnection step of Delete without
// removing the link.
func deleteStyleRepair(nw *congest.Network, pr *tree.Protocol, a, b congest.NodeID, cfg RepairConfig) (Report, error) {
	before := nw.Counters()
	beforeTime := nw.Now()
	obsRepairStart(nw, "mst.reweight")
	u := a
	if b < u {
		u = b
	}
	var rep Report
	nw.Spawn(fmt.Sprintf("reweight-%d-%d", a, b), func(p *congest.Proc) error {
		r := rng.New(cfg.Seed ^ uint64(a)<<32 ^ uint64(b) ^ 0x5851f42d4c957f2d)
		res, err := findmin.Run(p, pr, u, r, cfg.FindMin)
		if err != nil {
			return err
		}
		rep.Stats = res.Stats
		switch res.Reason {
		case findmin.FoundEdge:
			if _, err := pr.BroadcastEcho(p, u, tree.AddEdgeSpec(res.EdgeNum)); err != nil {
				return err
			}
			p.AwaitQuiescence()
			nw.ApplyStaged()
			rep.Action = Reconnected
			rep.Edge = [2]congest.NodeID{res.A, res.B}
		case findmin.EmptyCut:
			rep.Action = Bridge
		case findmin.GaveUp:
			rep.Action = Failed
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		return rep, err
	}
	c := nw.CountersSince(before)
	rep.Messages = c.Messages
	rep.Bits = c.Bits
	rep.Time = nw.Now() - beforeTime
	obsRepairDone(nw, "mst.reweight", rep)
	return rep, nil
}

// pathMaxResult is the aggregate of the Insert broadcast-and-echo.
type pathMaxResult struct {
	// Found: the target node is in the tree.
	Found bool
	// MaxComposite / MaxEdgeNum identify the heaviest edge on the tree
	// path from the root to the target (valid when Found).
	MaxComposite uint64
	MaxEdgeNum   uint64
}

// runPathMax performs the Insert(u,v) broadcast-and-echo: does v lie in
// u's tree, and if so what is the heaviest edge on the path u..v?
func runPathMax(p *congest.Proc, pr *tree.Protocol, root, target congest.NodeID) (pathMaxResult, error) {
	v, err := pr.BroadcastEcho(p, root, pathMaxSpec(target))
	if err != nil {
		return pathMaxResult{}, err
	}
	return v.(pathMaxResult), nil
}

// pathMaxSpec builds the Insert(u,v) broadcast-and-echo spec; shared by the
// blocking driver above and the wave-mode storm machine.
func pathMaxSpec(target congest.NodeID) *tree.Spec {
	return &tree.Spec{
		Down:     target,
		DownBits: 32,
		UpBits:   1 + 64 + 64,
		Local: func(node *congest.NodeState, down any) any {
			return pathMaxResult{Found: node.ID == down.(congest.NodeID)}
		},
		Combine: func(node *congest.NodeState, down, local any, children []tree.ChildEcho) any {
			res := local.(pathMaxResult)
			for _, c := range children {
				cr := c.Value.(pathMaxResult)
				if !cr.Found {
					continue
				}
				// extend the child's path by the connecting tree edge.
				res.Found = true
				res.MaxComposite, res.MaxEdgeNum = cr.MaxComposite, cr.MaxEdgeNum
				if c.Edge.Composite > res.MaxComposite {
					res.MaxComposite, res.MaxEdgeNum = c.Edge.Composite, c.Edge.EdgeNum
				}
			}
			return res
		},
	}
}

// swapSpec broadcasts "unmark removeEdge, mark addEdge": both endpoints
// of each edge are in the tree and stage their own halves.
func swapSpec(removeEdgeNum, addEdgeNum uint64) *tree.Spec {
	return &tree.Spec{
		Down:     [2]uint64{removeEdgeNum, addEdgeNum},
		DownBits: 128,
		UpBits:   1,
		OnDown: func(node *congest.NodeState, down any, emit tree.Emit) {
			d := down.([2]uint64)
			for i := range node.Edges {
				he := &node.Edges[i]
				if he.EdgeNum == d[0] && he.Marked {
					node.StageUnmark(he.Neighbor)
				}
				if he.EdgeNum == d[1] && !he.Marked {
					node.StageMark(he.Neighbor)
				}
			}
		},
		Combine: func(node *congest.NodeState, down, local any, children []tree.ChildEcho) any {
			return nil
		},
	}
}
