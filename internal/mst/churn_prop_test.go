package mst

import (
	"fmt"
	"testing"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/spanning"
	"kkt/internal/tree"
)

// rebuildGraph reconstructs a graph.Graph from the network's live
// topology, which a churn script mutates away from the generated graph.
func rebuildGraph(nw *congest.Network) *graph.Graph {
	g := graph.MustNew(nw.N(), nw.MaxRaw())
	for v := 1; v <= nw.N(); v++ {
		node := nw.Node(congest.NodeID(v))
		for i := range node.Edges {
			he := &node.Edges[i]
			if uint32(he.Neighbor) > uint32(v) {
				g.MustAddEdge(uint32(v), uint32(he.Neighbor), he.Raw)
			}
		}
	}
	return g
}

// forestSet renders marked endpoint pairs as a set for exact comparison.
func forestSet(forest [][2]congest.NodeID) map[[2]congest.NodeID]bool {
	s := make(map[[2]congest.NodeID]bool, len(forest))
	for _, e := range forest {
		s[e] = true
	}
	return s
}

// kruskalSet renders the reference MSF of g as an endpoint-pair set.
func kruskalSet(g *graph.Graph) map[[2]congest.NodeID]bool {
	idx := spanning.Kruskal(g)
	s := make(map[[2]congest.NodeID]bool, len(idx))
	for _, ei := range idx {
		e := g.Edge(ei)
		s[[2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)}] = true
	}
	return s
}

// pickExisting returns a random live link, or ok=false if none remain.
func pickExisting(nw *congest.Network, r *rng.RNG) (congest.NodeID, congest.NodeID, bool) {
	for attempt := 0; attempt < 16*nw.N(); attempt++ {
		v := congest.NodeID(r.Intn(nw.N()) + 1)
		node := nw.Node(v)
		if node.Degree() == 0 {
			continue
		}
		return v, node.Edges[r.Intn(node.Degree())].Neighbor, true
	}
	return 0, 0, false
}

// pickAbsent returns a random absent pair, or ok=false on (near-)complete
// topologies.
func pickAbsent(nw *congest.Network, r *rng.RNG) (congest.NodeID, congest.NodeID, bool) {
	for attempt := 0; attempt < 16*nw.N(); attempt++ {
		a := congest.NodeID(r.Intn(nw.N()) + 1)
		b := congest.NodeID(r.Intn(nw.N()) + 1)
		if a == b || nw.Node(a).EdgeTo(b) != nil {
			continue
		}
		return a, b, true
	}
	return 0, 0, false
}

// TestChurnMatchesKruskalAcrossSeeds is the property test for impromptu
// repair: across many seeded (graph, fault-script) draws, after every
// single Delete/Insert/WeightChange the maintained forest must equal the
// unique composite-weight MSF computed by the Kruskal reference on the
// mutated topology. Seeds alternate between the synchronous and
// asynchronous schedulers.
//
// The paper's Full-variant searches give up with probability ~ n^-c, in
// which case the forest is legitimately left unrepaired; such (seed, op)
// pairs skip the comparison for the rest of the script and are counted,
// with a cap asserting they stay rare.
func TestChurnMatchesKruskalAcrossSeeds(t *testing.T) {
	const (
		seeds  = 56
		nNodes = 24
		nEdges = 52
		maxRaw = 64
		ops    = 16
	)
	gaveUp := 0
	for seed := uint64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rng.New(seed * 0x9e3779b97f4a7c15)
			g := graph.GNM(r, nNodes, nEdges, maxRaw, graph.UniformWeights(r, maxRaw))
			opts := []congest.Option{congest.WithSeed(seed)}
			if seed%2 == 0 {
				opts = append(opts, congest.WithAsync(4))
			}
			nw := congest.NewNetwork(g, opts...)
			pr := tree.Attach(nw)

			ref := spanning.Kruskal(g)
			forest := make([][2]congest.NodeID, len(ref))
			for i, ei := range ref {
				e := g.Edge(ei)
				forest[i] = [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)}
			}
			nw.SetForest(forest)

			for op := 0; op < ops; op++ {
				opSeed := seed ^ uint64(op+1)*0xd6e8feb86659fd93
				var rep Report
				var err error
				var desc string
				switch r.Intn(3) {
				case 0:
					a, b, ok := pickExisting(nw, r)
					if !ok {
						continue
					}
					desc = fmt.Sprintf("Delete{%d,%d}", a, b)
					rep, err = Delete(nw, pr, a, b, DefaultRepair(opSeed))
				case 1:
					a, b, ok := pickAbsent(nw, r)
					if !ok {
						continue
					}
					raw := r.Range(1, maxRaw)
					desc = fmt.Sprintf("Insert{%d,%d,w=%d}", a, b, raw)
					rep, err = Insert(nw, pr, a, b, raw, DefaultRepair(opSeed))
				case 2:
					a, b, ok := pickExisting(nw, r)
					if !ok {
						continue
					}
					raw := r.Range(1, maxRaw)
					desc = fmt.Sprintf("WeightChange{%d,%d,w=%d}", a, b, raw)
					rep, err = WeightChange(nw, pr, a, b, raw, DefaultRepair(opSeed))
				}
				if err != nil {
					t.Fatalf("op %d %s: %v", op, desc, err)
				}
				if rep.Action == Failed {
					// Randomized search gave up: the forest is allowed to
					// be stale from here on.
					gaveUp++
					return
				}
				cur := rebuildGraph(nw)
				got := forestSet(nw.MarkedEdges())
				want := kruskalSet(cur)
				if len(got) != len(want) {
					t.Fatalf("op %d %s: forest has %d edges, Kruskal reference %d", op, desc, len(got), len(want))
				}
				for e := range want {
					if !got[e] {
						t.Fatalf("op %d %s: reference edge {%d,%d} missing from maintained forest", op, desc, e[0], e[1])
					}
				}
			}
		})
	}
	if gaveUp > seeds/10 {
		t.Errorf("randomized repairs gave up in %d/%d scripts — too often for n^-c", gaveUp, seeds)
	}
}
