// Package mst implements the paper's headline algorithms for weighted
// graphs: Build MST (§3.3) — Borůvka phases where every fragment elects a
// leader and runs FindMin-C to pick its minimum outgoing edge — and the
// impromptu repair operations Delete, Insert and WeightChange (§3.2),
// which restore the minimum spanning forest after a single dynamic change
// using FindMin and tree-path searches, with no state kept between
// updates beyond the edge marks themselves.
package mst

import (
	"fmt"
	"math"

	"kkt/internal/congest"
	"kkt/internal/findmin"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// PhasePolicy controls when Build stops running Borůvka phases.
type PhasePolicy int

const (
	// Adaptive stops as soon as a phase ends with every fragment
	// certifying an empty cut (the forest is maximal). The paper's
	// fixed-phase loop is an upper bound; an adaptive stop changes no
	// marks, only skips provably idle phases.
	Adaptive PhasePolicy = iota + 1
	// Fixed runs the paper's full (40c/C)·ceil(lg n) phases regardless,
	// reproducing the worst-case message count of Lemma 3.
	Fixed
)

// String implements fmt.Stringer.
func (p PhasePolicy) String() string {
	switch p {
	case Adaptive:
		return "adaptive"
	case Fixed:
		return "fixed"
	default:
		return fmt.Sprintf("PhasePolicy(%d)", int(p))
	}
}

// findMinSuccessProb is the paper's constant C: a conservative lower bound
// on the probability FindMin-C returns the minimum outgoing edge
// (Lemma 2 gives 2/3 - n^-c).
const findMinSuccessProb = 0.5

// BuildConfig tunes Build. Use DefaultBuild for the paper-faithful setup.
type BuildConfig struct {
	// Seed drives all randomness (hash draws, alpha draws).
	Seed uint64
	// C is the error exponent: Build succeeds with probability 1 - n^-C.
	C int
	// Policy picks the stopping rule.
	Policy PhasePolicy
	// FindMin configures the per-fragment search; the paper uses
	// FindMin-C inside Build MST.
	FindMin findmin.Config
	// Drivers selects the per-fragment driver model. The default
	// (congest.DriverCont) steps pooled FindMin state machines on the
	// engine; congest.DriverGoroutine parks one pooled goroutine per
	// fragment — observably identical, kept as the parity reference.
	Drivers congest.DriverMode
}

// DefaultBuild returns the paper-faithful configuration.
func DefaultBuild(seed uint64) BuildConfig {
	return BuildConfig{
		Seed:    seed,
		C:       2,
		Policy:  Adaptive,
		FindMin: findmin.Defaults(findmin.Capped),
	}
}

// PhaseStat records one Borůvka phase.
type PhaseStat struct {
	// Fragments is the number of fragments at the start of the phase.
	Fragments int
	// Merges is the number of fragments whose FindMin-C found an edge.
	Merges int
	// Empties is the number of fragments that certified maximality.
	Empties int
	// GaveUps counts FindMin-C runs that hit their iteration cap.
	GaveUps int
	// Messages, Bits and Rounds are the phase's cost; Classes breaks it
	// down by kind class (sorted by class name).
	Messages uint64
	Bits     uint64
	Rounds   int64
	Classes  []congest.ClassCost
}

// BuildResult reports a Build run.
type BuildResult struct {
	// Forest is the final properly-marked edge set.
	Forest [][2]congest.NodeID
	// Phases has one entry per executed phase.
	Phases []PhaseStat
	// Messages, Bits and Rounds are the total cost.
	Messages uint64
	Bits     uint64
	Rounds   int64
}

// MaxPhases is the paper's phase budget (40c/C)·ceil(lg n).
func MaxPhases(n, c int) int {
	lg := math.Ceil(math.Log2(float64(n)))
	if lg < 1 {
		lg = 1
	}
	return int(math.Ceil(40 * float64(c) / findMinSuccessProb * lg))
}

// Build constructs the minimum spanning forest on nw (which must carry no
// marks) and returns the per-phase statistics. On success the marked
// forest is w.h.p. the unique MSF under composite weights.
func Build(nw *congest.Network, pr *tree.Protocol, cfg BuildConfig) (BuildResult, error) {
	if cfg.C < 1 {
		cfg.C = 1
	}
	var result BuildResult
	maxPhases := MaxPhases(nw.N(), cfg.C)
	nw.Spawn("boruvka", func(p *congest.Proc) error {
		var scratch congest.FanoutScratch[findmin.Reason]
		var drivers []*fragDriver
		var meter congest.PhaseMeter
		for phase := 1; phase <= maxPhases; phase++ {
			stat, err := runPhase(p, nw, pr, cfg, phase, &meter, &scratch, &drivers)
			if err != nil {
				return err
			}
			result.Phases = append(result.Phases, stat)
			if cfg.Policy == Adaptive && stat.Empties == stat.Fragments {
				return nil // every fragment certified maximality
			}
		}
		if cfg.Policy == Fixed {
			return nil // the paper's budget is exhausted; w.h.p. done
		}
		return fmt.Errorf("mst: phase budget %d exhausted without convergence", maxPhases)
	})
	err := nw.Run()
	if err == nil {
		result.Forest = nw.MarkedEdges()
		c := nw.Counters()
		result.Messages = c.Messages
		result.Bits = c.Bits
		result.Rounds = nw.Now()
	}
	return result, err
}

// fragDriver is the continuation driver of one fragment in one Borůvka
// phase: FindMin-C, then (on success) the Add-Edge broadcast-and-echo. A
// Build reuses its drivers across phases (fragment counts only shrink),
// so the steady-state fan-out allocates neither goroutines nor machines.
type fragDriver struct {
	m       *findmin.Machine
	pr      *tree.Protocol
	leader  congest.NodeID
	outcome *findmin.Reason
	adding  bool // the Add-Edge broadcast is in flight
}

// init arms the driver for one fragment of one phase.
func (d *fragDriver) init(pr *tree.Protocol, leader congest.NodeID, r *rng.RNG, cfg findmin.Config, outcome *findmin.Reason) {
	d.pr, d.leader, d.outcome = pr, leader, outcome
	d.adding = false
	d.m.Reset(pr, leader, r, cfg)
}

// Step implements congest.StepDriver: delegate to the FindMin machine,
// then run the Add-Edge broadcast when it found a cut edge.
func (d *fragDriver) Step(t *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	if d.adding {
		_, err := w.Value()
		return 0, true, err
	}
	next, done, err := d.m.Step(t, w)
	if !done {
		return next, false, nil
	}
	if err != nil {
		return 0, true, err
	}
	res, _ := d.m.Result()
	*d.outcome = res.Reason
	if res.Reason != findmin.FoundEdge {
		return 0, true, nil
	}
	// Paper step (c): broadcast Add Edge; endpoints stage marks applied at
	// the phase barrier (step d).
	d.adding = true
	return d.pr.StartBroadcastEcho(d.leader, tree.AddEdgeSpec(res.EdgeNum)), false, nil
}

// runPhase executes one Borůvka phase: elect leaders, run FindMin-C per
// fragment concurrently, broadcast Add-Edge for the found edges, then
// synchronise and apply the staged marks.
func runPhase(p *congest.Proc, nw *congest.Network, pr *tree.Protocol, cfg BuildConfig, phase int, meter *congest.PhaseMeter, scratch *congest.FanoutScratch[findmin.Reason], drivers *[]*fragDriver) (PhaseStat, error) {
	meter.Begin(nw)

	elect, err := pr.ElectAll(p)
	if err != nil {
		return PhaseStat{}, err
	}
	if len(elect.CycleNodes) > 0 {
		return PhaseStat{}, fmt.Errorf("mst: cycle in marked subgraph at phase %d (nodes %v)", phase, elect.CycleNodes)
	}
	stat := PhaseStat{Fragments: len(elect.Leaders)}
	if o := nw.Obs(); o != nil {
		o.PhaseStart("mst", phase, stat.Fragments, nw.Now())
	}

	outcomes := scratch.Outcomes(len(elect.Leaders))
	if cfg.Drivers == congest.DriverGoroutine {
		procs := scratch.Procs()
		for i, leader := range elect.Leaders {
			i, leader := i, leader
			procs = append(procs, p.GoTagged("findmin", uint64(phase), uint64(leader), func(fp *congest.Proc) error {
				r := fragmentRand(cfg.Seed, phase, leader)
				res, err := findmin.Run(fp, pr, leader, r, cfg.FindMin)
				if err != nil {
					return err
				}
				outcomes[i] = res.Reason
				if res.Reason == findmin.FoundEdge {
					// Paper step (c): broadcast Add Edge; endpoints stage
					// marks applied at the phase barrier (step d).
					if _, err := pr.BroadcastEcho(fp, leader, tree.AddEdgeSpec(res.EdgeNum)); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		scratch.KeepProcs(procs)
		if err := p.WaitAll(procs...); err != nil {
			return stat, err
		}
	} else {
		tasks := scratch.Tasks()
		for i, leader := range elect.Leaders {
			for len(*drivers) <= i {
				*drivers = append(*drivers, &fragDriver{m: findmin.NewMachine()})
			}
			d := (*drivers)[i]
			d.init(pr, leader, fragmentRand(cfg.Seed, phase, leader), cfg.FindMin, &outcomes[i])
			tasks = append(tasks, p.GoStepTagged("findmin", uint64(phase), uint64(leader), d))
		}
		scratch.KeepTasks(tasks)
		if err := p.WaitTasks(tasks...); err != nil {
			return stat, err
		}
	}
	// Phase barrier ("while time < i*maxTime wait"), then the waiting
	// nodes' local mark application.
	p.AwaitQuiescence()
	nw.ApplyStaged()

	for _, o := range outcomes {
		switch o {
		case findmin.FoundEdge:
			stat.Merges++
		case findmin.EmptyCut:
			stat.Empties++
		case findmin.GaveUp:
			stat.GaveUps++
		}
	}
	cost := meter.End()
	stat.Messages, stat.Bits, stat.Rounds = cost.Messages, cost.Bits, cost.Rounds
	stat.Classes = cost.Classes
	if o := nw.Obs(); o != nil {
		o.PhaseEnd("mst", phase, nw.Now(), cost)
	}
	return stat, nil
}

// fragmentRand derives a fragment-leader's private random stream for one
// phase, deterministic in (seed, phase, leader).
func fragmentRand(seed uint64, phase int, leader congest.NodeID) *rng.RNG {
	return rng.New(seed ^ uint64(phase)*0x9e3779b97f4a7c15 ^ uint64(leader)*0xc2b2ae3d27d4eb4f)
}
