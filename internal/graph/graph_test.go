package graph

import (
	"testing"

	"kkt/internal/rng"
)

func TestAddEdgeValidation(t *testing.T) {
	g := MustNew(5, 10)
	if err := g.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		a, b    uint32
		raw     uint64
		wantErr bool
	}{
		{"duplicate", 1, 2, 5, true},
		{"duplicate reversed", 2, 1, 5, true},
		{"self loop", 3, 3, 1, true},
		{"endpoint zero", 0, 1, 1, true},
		{"endpoint too big", 1, 6, 1, true},
		{"weight zero", 3, 4, 0, true},
		{"weight too big", 3, 4, 11, true},
		{"ok", 3, 4, 10, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.a, tt.b, tt.raw); (err != nil) != tt.wantErr {
				t.Errorf("AddEdge(%d,%d,%d) err=%v wantErr=%v", tt.a, tt.b, tt.raw, err, tt.wantErr)
			}
		})
	}
}

func TestEdgeNormalisationAndLookup(t *testing.T) {
	g := MustNew(10, 5)
	g.MustAddEdge(7, 3, 2)
	e := g.Edge(0)
	if e.A != 3 || e.B != 7 {
		t.Errorf("edge not normalised: {%d,%d}", e.A, e.B)
	}
	if !g.HasEdge(3, 7) || !g.HasEdge(7, 3) {
		t.Error("HasEdge should be direction-free")
	}
	if g.HasEdge(3, 4) {
		t.Error("phantom edge")
	}
	if g.EdgeIndex(7, 3) != 0 {
		t.Error("EdgeIndex broken")
	}
	if g.EdgeIndex(1, 2) != -1 {
		t.Error("missing edge should give -1")
	}
}

func TestAdjacencyAndNeighbors(t *testing.T) {
	g := MustNew(4, 5)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(1, 3, 2)
	g.MustAddEdge(2, 3, 3)
	if g.Degree(1) != 2 || g.Degree(4) != 0 {
		t.Errorf("degrees wrong: %d %d", g.Degree(1), g.Degree(4))
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 2 || nb[1] != 3 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
	// adjacency cache invalidation
	g.MustAddEdge(1, 4, 4)
	if g.Degree(1) != 3 {
		t.Error("adjacency not invalidated after AddEdge")
	}
}

func TestCompositeDistinctness(t *testing.T) {
	r := rng.New(4)
	g := GNM(r, 50, 200, 8, UniformWeights(r, 8)) // many raw-weight ties
	seen := make(map[uint64]bool)
	for _, e := range g.Edges() {
		c := g.Composite(e)
		if seen[c] {
			t.Fatalf("composite collision on {%d,%d}", e.A, e.B)
		}
		seen[c] = true
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := MustNew(3, 5)
	g.MustAddEdge(1, 2, 1)
	cp := g.Clone()
	cp.MustAddEdge(2, 3, 2)
	if g.M() != 1 || cp.M() != 2 {
		t.Errorf("clone not independent: %d %d", g.M(), cp.M())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if err := cp.Validate(); err != nil {
		t.Error(err)
	}
}
