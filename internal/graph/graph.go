// Package graph provides the weighted undirected graphs the simulator runs
// on: compact node IDs, the paper's edge numbering (endpoint IDs
// concatenated, smallest first), composite unique weights (raw weight
// concatenated in front of the edge number, §2 "Definitions"), and the
// workload generators used by tests and benchmarks.
package graph

import (
	"fmt"
	"sort"

	"kkt/internal/bitwidth"
)

// Edge is an undirected edge with a raw weight. A < B always holds.
type Edge struct {
	A, B uint32
	Raw  uint64
}

// Graph is a simple undirected weighted graph on nodes 1..N. The zero
// value is not usable; construct with New.
type Graph struct {
	// N is the number of nodes; IDs are 1..N.
	N int
	// MaxRaw is the upper bound u on raw edge weights.
	MaxRaw uint64
	// Layout is the bit-field layout for IDs/edge numbers/composites.
	Layout bitwidth.Layout

	edges  []Edge
	byNum  map[uint64]int // edge number -> index into edges
	adj    [][]int        // node -> indices into edges; nil until built
	adjval bool
}

// New creates an empty graph on n nodes with raw weights bounded by maxRaw.
func New(n int, maxRaw uint64) (*Graph, error) {
	layout, err := bitwidth.New(n, maxRaw)
	if err != nil {
		return nil, err
	}
	return &Graph{
		N:      n,
		MaxRaw: maxRaw,
		Layout: layout,
		byNum:  make(map[uint64]int),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(n int, maxRaw uint64) *Graph {
	g, err := New(n, maxRaw)
	if err != nil {
		panic(err)
	}
	return g
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge slice. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// AddEdge inserts the undirected edge {a,b} with the given raw weight.
// Self-loops, duplicate edges, out-of-range endpoints and out-of-range
// weights are rejected.
func (g *Graph) AddEdge(a, b uint32, raw uint64) error {
	if a == b {
		return fmt.Errorf("graph: self-loop at %d", a)
	}
	if a < 1 || int(a) > g.N || b < 1 || int(b) > g.N {
		return fmt.Errorf("graph: endpoint out of range: {%d,%d} with n=%d", a, b, g.N)
	}
	if raw < 1 || raw > g.MaxRaw {
		return fmt.Errorf("graph: raw weight %d outside [1,%d]", raw, g.MaxRaw)
	}
	if a > b {
		a, b = b, a
	}
	num := g.Layout.EdgeNum(a, b)
	if _, dup := g.byNum[num]; dup {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", a, b)
	}
	g.byNum[num] = len(g.edges)
	g.edges = append(g.edges, Edge{A: a, B: b, Raw: raw})
	g.adjval = false
	return nil
}

// MustAddEdge is AddEdge but panics on error; for generators whose inputs
// are valid by construction.
func (g *Graph) MustAddEdge(a, b uint32, raw uint64) {
	if err := g.AddEdge(a, b, raw); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the undirected edge {a,b} exists.
func (g *Graph) HasEdge(a, b uint32) bool {
	if a == b || a < 1 || b < 1 || int(a) > g.N || int(b) > g.N {
		return false
	}
	_, ok := g.byNum[g.Layout.EdgeNum(a, b)]
	return ok
}

// EdgeIndex returns the index of edge {a,b}, or -1 if absent.
func (g *Graph) EdgeIndex(a, b uint32) int {
	if a == b {
		return -1
	}
	i, ok := g.byNum[g.Layout.EdgeNum(a, b)]
	if !ok {
		return -1
	}
	return i
}

// EdgeNum returns the paper's edge number for edge e.
func (g *Graph) EdgeNum(e Edge) uint64 { return g.Layout.EdgeNum(e.A, e.B) }

// Composite returns the unique composite weight of edge e.
func (g *Graph) Composite(e Edge) uint64 {
	return g.Layout.Composite(e.Raw, g.EdgeNum(e))
}

// Adjacency returns, for each node ID (index 0 unused), the indices of its
// incident edges. The result is cached and invalidated by AddEdge.
func (g *Graph) Adjacency() [][]int {
	if g.adjval {
		return g.adj
	}
	adj := make([][]int, g.N+1)
	for i, e := range g.edges {
		adj[e.A] = append(adj[e.A], i)
		adj[e.B] = append(adj[e.B], i)
	}
	g.adj = adj
	g.adjval = true
	return adj
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v uint32) int { return len(g.Adjacency()[v]) }

// Neighbors returns the neighbour IDs of node v in ascending order.
func (g *Graph) Neighbors(v uint32) []uint32 {
	idx := g.Adjacency()[v]
	out := make([]uint32, 0, len(idx))
	for _, i := range idx {
		e := g.edges[i]
		if e.A == v {
			out = append(out, e.B)
		} else {
			out = append(out, e.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		N:      g.N,
		MaxRaw: g.MaxRaw,
		Layout: g.Layout,
		edges:  append([]Edge(nil), g.edges...),
		byNum:  make(map[uint64]int, len(g.byNum)),
	}
	for k, v := range g.byNum {
		cp.byNum[k] = v
	}
	return cp
}

// Validate checks internal invariants (normalised endpoints, consistent
// index, in-range weights); tests call it after generation.
func (g *Graph) Validate() error {
	if len(g.byNum) != len(g.edges) {
		return fmt.Errorf("graph: index size %d != edge count %d", len(g.byNum), len(g.edges))
	}
	for i, e := range g.edges {
		if e.A >= e.B {
			return fmt.Errorf("graph: edge %d not normalised: {%d,%d}", i, e.A, e.B)
		}
		if e.A < 1 || int(e.B) > g.N {
			return fmt.Errorf("graph: edge %d endpoint out of range", i)
		}
		if e.Raw < 1 || e.Raw > g.MaxRaw {
			return fmt.Errorf("graph: edge %d weight %d outside [1,%d]", i, e.Raw, g.MaxRaw)
		}
		if j := g.byNum[g.EdgeNum(e)]; j != i {
			return fmt.Errorf("graph: edge %d not indexed at itself (got %d)", i, j)
		}
	}
	return nil
}
