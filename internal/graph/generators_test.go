package graph

import (
	"testing"

	"kkt/internal/rng"
)

func isConnected(g *Graph) bool {
	_, n := components(g)
	return n <= 1
}

func TestRandomTree(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{2, 3, 10, 100} {
		g := RandomTree(r, n, 100, UniformWeights(r, 100))
		if g.M() != n-1 {
			t.Fatalf("n=%d: tree has %d edges", n, g.M())
		}
		if !isConnected(g) {
			t.Fatalf("n=%d: tree disconnected", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPathRingStarShapes(t *testing.T) {
	w := UnitWeights()
	p := Path(5, 1, w)
	if p.M() != 4 || p.Degree(1) != 1 || p.Degree(3) != 2 {
		t.Error("path shape wrong")
	}
	rg := Ring(5, 1, w)
	if rg.M() != 5 {
		t.Error("ring edge count wrong")
	}
	for v := uint32(1); v <= 5; v++ {
		if rg.Degree(v) != 2 {
			t.Errorf("ring degree of %d = %d", v, rg.Degree(v))
		}
	}
	s := Star(6, 1, w)
	if s.Degree(1) != 5 || s.Degree(2) != 1 {
		t.Error("star shape wrong")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 7, UnitWeights())
	if g.N != 12 {
		t.Fatalf("grid has %d nodes", g.N)
	}
	// m = rows*(cols-1) + (rows-1)*cols = 3*3 + 2*4 = 17
	if g.M() != 17 {
		t.Fatalf("grid has %d edges, want 17", g.M())
	}
	if !isConnected(g) {
		t.Fatal("grid disconnected")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(7, 10, UnitWeights())
	if g.M() != 21 {
		t.Fatalf("K7 has %d edges", g.M())
	}
	for v := uint32(1); v <= 7; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("K7 degree %d", g.Degree(v))
		}
	}
}

func TestGNM(t *testing.T) {
	r := rng.New(10)
	for _, tc := range []struct{ n, m int }{{10, 9}, {10, 20}, {50, 200}, {4, 6}} {
		g := GNM(r, tc.n, tc.m, 1000, UniformWeights(r, 1000))
		if g.M() != tc.m {
			t.Fatalf("GNM(%d,%d) has %d edges", tc.n, tc.m, g.M())
		}
		if !isConnected(g) {
			t.Fatalf("GNM(%d,%d) disconnected", tc.n, tc.m)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGNMPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GNM with m < n-1 should panic")
		}
	}()
	r := rng.New(1)
	GNM(r, 10, 5, 10, UnitWeights())
}

func TestGNPConnected(t *testing.T) {
	r := rng.New(6)
	for _, p := range []float64{0.0, 0.05, 0.5} {
		g := GNP(r, 40, p, 50, UniformWeights(r, 50))
		if !isConnected(g) {
			t.Fatalf("GNP(p=%v) disconnected", p)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	r := rng.New(12)
	g := PreferentialAttachment(r, 200, 3, 100, UniformWeights(r, 100))
	if !isConnected(g) {
		t.Fatal("PA graph disconnected")
	}
	if g.M() < 200 {
		t.Fatalf("PA graph too sparse: %d edges", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 10, 10, UnitWeights())
	if g.N != 20 {
		t.Fatalf("barbell nodes = %d", g.N)
	}
	// 2 * C(5,2) + path of 11 edges
	if g.M() != 2*10+11 {
		t.Fatalf("barbell edges = %d, want 31", g.M())
	}
	if !isConnected(g) {
		t.Fatal("barbell disconnected")
	}
}

func TestPermutationWeightsDistinct(t *testing.T) {
	r := rng.New(2)
	w := PermutationWeights(r, 10)
	seen := make(map[uint64]bool)
	for k := 0; k < 10; k++ {
		v := w(k)
		if v < 1 || v > 10 || seen[v] {
			t.Fatalf("bad permutation weight %d", v)
		}
		seen[v] = true
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := GNM(rng.New(42), 30, 60, 100, UniformWeights(rng.New(43), 100))
	g2 := GNM(rng.New(42), 30, 60, 100, UniformWeights(rng.New(43), 100))
	if g1.M() != g2.M() {
		t.Fatal("nondeterministic generator")
	}
	for i := range g1.Edges() {
		if g1.Edge(i) != g2.Edge(i) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// fingerprint folds a graph's full edge list (order, endpoints, weight)
// into one FNV-style word, so golden tests can pin a generator's exact
// output across refactors.
func fingerprint(g *Graph) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
	}
	for _, e := range g.Edges() {
		mix(uint64(e.A))
		mix(uint64(e.B))
		mix(e.Raw)
	}
	return h
}

// TestGNMWorkersByteIdentical is the golden gate of the parallel
// generator: at any worker count the edge list matches the sequential
// rejection loop edge for edge, and the candidate RNG stream ends at the
// same position. The size is chosen so the first chord batch (6001
// candidates) exceeds gnmParallelMin and genuinely exercises the
// fan-out/resolve path.
func TestGNMWorkersByteIdentical(t *testing.T) {
	const n, m = 2000, 8000
	gen := func(workers int) (*Graph, uint64) {
		r := rng.New(42)
		g := GNMWorkers(r, n, m, 1000, UniformWeights(rng.New(43), 1000), workers)
		return g, r.Uint64() // the stream position after generation is part of the contract
	}
	want, wantNext := gen(1)
	if err := want.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, gotNext := gen(workers)
		if got.M() != want.M() {
			t.Fatalf("workers=%d: %d edges, want %d", workers, got.M(), want.M())
		}
		for i := range want.Edges() {
			if got.Edge(i) != want.Edge(i) {
				t.Fatalf("workers=%d: edge %d = %+v, want %+v", workers, i, got.Edge(i), want.Edge(i))
			}
		}
		if gotNext != wantNext {
			t.Errorf("workers=%d: RNG stream diverged after generation", workers)
		}
	}
	// And GNM itself must be the workers=1 path.
	seq := GNM(rng.New(42), n, m, 1000, UniformWeights(rng.New(43), 1000))
	if fingerprint(seq) != fingerprint(want) {
		t.Error("GNM and GNMWorkers(1) diverge")
	}
}

// TestGNMFingerprintPinned pins one seeded GNM output outright, so any
// accidental change to the generation algorithm (which would silently
// re-roll every seeded scenario in the suite) fails loudly.
func TestGNMFingerprintPinned(t *testing.T) {
	g := GNM(rng.New(42), 200, 600, 1000, UniformWeights(rng.New(43), 1000))
	const want = 0x5aed7a8e09ea9fe7
	if got := fingerprint(g); got != want {
		t.Fatalf("GNM(42, 200, 600) fingerprint %#x, want %#x — the generator's output changed", got, want)
	}
}

// TestHypercube: exact shape — n·d/2 edges, degree d everywhere,
// connected, valid.
func TestHypercube(t *testing.T) {
	for _, d := range []int{1, 2, 4, 6} {
		g := Hypercube(d, 10, UnitWeights())
		n := 1 << d
		if g.N != n {
			t.Fatalf("d=%d: %d nodes, want %d", d, g.N, n)
		}
		if g.M() != n*d/2 {
			t.Fatalf("d=%d: %d edges, want n·d/2 = %d", d, g.M(), n*d/2)
		}
		for v := uint32(1); v <= uint32(n); v++ {
			if g.Degree(v) != d {
				t.Fatalf("d=%d: degree of %d is %d, want %d", d, v, g.Degree(v), d)
			}
		}
		if !isConnected(g) {
			t.Fatalf("d=%d: hypercube disconnected", d)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHypercubeN(t *testing.T) {
	g := HypercubeN(64, 10, UnitWeights())
	if g.N != 64 || g.M() != 64*6/2 {
		t.Fatalf("HypercubeN(64): n=%d m=%d", g.N, g.M())
	}
	defer func() {
		if recover() == nil {
			t.Error("HypercubeN with a non-power-of-two should panic")
		}
	}()
	HypercubeN(48, 10, UnitWeights())
}

// TestHypercubeFingerprintPinned pins the deterministic edge order and a
// seeded weight stream outright, so the generator's exact output — which
// seeds every hypercube scenario — cannot drift silently.
func TestHypercubeFingerprintPinned(t *testing.T) {
	g := Hypercube(6, 1000, UniformWeights(rng.New(43), 1000))
	const want uint64 = 0x109cd44b625096b6
	if got := fingerprint(g); got != want {
		t.Fatalf("Hypercube(6) fingerprint %#x, want %#x — the generator's output changed", got, want)
	}
}

// TestRandomGeometric: the stitched graph is connected and valid, the
// radius controls density, and the default radius yields the expected
// ~1.5·n·ln n edge-count regime.
func TestRandomGeometric(t *testing.T) {
	r := rng.New(9)
	n := 500
	rad := GeometricRadius(n)
	g := RandomGeometric(r, n, rad, 100, UniformWeights(rng.New(10), 100))
	if !isConnected(g) {
		t.Fatal("geometric graph disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected m ~ 1.5·n·ln n ≈ 4660 at n=500; allow a wide band.
	if g.M() < n || g.M() > 8*n*7 {
		t.Fatalf("geometric edge count %d outside the expected regime", g.M())
	}
	// Geometry sanity: every generated edge spans at most the radius —
	// except stitch edges, so check a denser un-stitched regime instead.
	big := RandomGeometric(rng.New(3), 300, 0.25, 100, UniformWeights(rng.New(4), 100))
	if !isConnected(big) {
		t.Fatal("dense geometric graph disconnected")
	}
}

// TestRandomGeometricWorkersByteIdentical: the parallel pair scan emits
// the same edges in the same order at any worker count, and the RNG
// stream ends at the same position. n exceeds rggParallelMin so the
// fan-out genuinely runs.
func TestRandomGeometricWorkersByteIdentical(t *testing.T) {
	const n = 3000
	rad := GeometricRadius(n)
	gen := func(workers int) (*Graph, uint64) {
		r := rng.New(21)
		g := RandomGeometricWorkers(r, n, rad, 1000, UniformWeights(rng.New(22), 1000), workers)
		return g, r.Uint64()
	}
	want, wantNext := gen(1)
	if err := want.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, gotNext := gen(workers)
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("workers=%d: geometric graph diverges from sequential", workers)
		}
		if gotNext != wantNext {
			t.Errorf("workers=%d: RNG stream diverged after generation", workers)
		}
	}
}

// TestGeometricFingerprintPinned pins one seeded geometric output.
func TestGeometricFingerprintPinned(t *testing.T) {
	g := RandomGeometric(rng.New(21), 400, GeometricRadius(400), 1000, UniformWeights(rng.New(22), 1000))
	const want uint64 = 0xe632100b25379850
	if got := fingerprint(g); got != want {
		t.Fatalf("RandomGeometric(21, 400) fingerprint %#x, want %#x — the generator's output changed", got, want)
	}
}

// TestPowerLawFingerprintPinned pins one seeded preferential-attachment
// output, now that the generator backs a harness family.
func TestPowerLawFingerprintPinned(t *testing.T) {
	g := PreferentialAttachment(rng.New(31), 400, 3, 1000, UniformWeights(rng.New(32), 1000))
	const want uint64 = 0x1d17162dd170f8c0
	if got := fingerprint(g); got != want {
		t.Fatalf("PreferentialAttachment(31, 400, 3) fingerprint %#x, want %#x — the generator's output changed", got, want)
	}
}

// TestPowerLawTailHeavierThanGNM: the degree distribution sanity check
// behind the powerlaw family — at matched n and near-matched m, the
// preferential-attachment maximum degree dwarfs GNM's, and the heavy tail
// (degree ≥ 4× the mean) holds a disproportionate share of endpoints.
func TestPowerLawTailHeavierThanGNM(t *testing.T) {
	const n = 2000
	pa := PreferentialAttachment(rng.New(5), n, 3, 100, UniformWeights(rng.New(6), 100))
	gn := GNM(rng.New(5), n, pa.M(), 100, UniformWeights(rng.New(6), 100))
	maxDeg := func(g *Graph) int {
		best := 0
		for v := uint32(1); v <= uint32(g.N); v++ {
			if d := g.Degree(v); d > best {
				best = d
			}
		}
		return best
	}
	paMax, gnMax := maxDeg(pa), maxDeg(gn)
	if paMax < 2*gnMax {
		t.Fatalf("power-law max degree %d not clearly above GNM's %d", paMax, gnMax)
	}
	tailCut := 4 * 2 * pa.M() / n // 4× the mean degree
	tail := func(g *Graph) int {
		c := 0
		for v := uint32(1); v <= uint32(g.N); v++ {
			if g.Degree(v) >= tailCut {
				c++
			}
		}
		return c
	}
	if paTail, gnTail := tail(pa), tail(gn); paTail <= gnTail {
		t.Fatalf("power-law tail (deg >= %d): %d nodes, GNM: %d — tail not heavier", tailCut, paTail, gnTail)
	}
}

// TestComponentsWorkersMatch: the parallel union-find labelling agrees
// with the sequential one on a graph large enough to cross ufParallelMin
// (so the CAS path really runs, including under -race).
func TestComponentsWorkersMatch(t *testing.T) {
	// Two large GNM blobs plus isolated nodes: several components, ~40k
	// edges.
	w := UniformWeights(rng.New(10), 100)
	g := MustNew(2100, 100)
	blob := func(lo, n, m int) {
		sub := GNM(rng.New(uint64(lo)), n, m, 100, w)
		for _, e := range sub.Edges() {
			g.MustAddEdge(e.A+uint32(lo), e.B+uint32(lo), e.Raw)
		}
	}
	blob(0, 1000, 20000)
	blob(1000, 1000, 20000)
	seqComp, seqN := componentsWorkers(g, 1)
	for _, workers := range []int{2, 4, 7} {
		parComp, parN := componentsWorkers(g, workers)
		if parN != seqN {
			t.Fatalf("workers=%d: %d components, want %d", workers, parN, seqN)
		}
		for v := 1; v <= g.N; v++ {
			if parComp[v] != seqComp[v] {
				t.Fatalf("workers=%d: comp[%d] = %d, want %d", workers, v, parComp[v], seqComp[v])
			}
		}
	}
}

// TestGNPWorkersByteIdentical: connectivity patching with parallel
// labelling stitches exactly the same edges.
func TestGNPWorkersByteIdentical(t *testing.T) {
	gen := func(workers int) *Graph {
		return GNPWorkers(rng.New(6), 300, 0.004, 50, UniformWeights(rng.New(7), 50), workers)
	}
	want := gen(1)
	if !isConnected(want) {
		t.Fatal("GNP not stitched connected")
	}
	for _, workers := range []int{2, 4} {
		got := gen(workers)
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("workers=%d: stitched graph diverges", workers)
		}
	}
}

func TestExpander(t *testing.T) {
	r := rng.New(7)
	g := Expander(r, 64, 4, 100, UniformWeights(rng.New(8), 100))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !isConnected(g) {
		t.Fatal("expander disconnected")
	}
	// ring edges plus at most one chord layer's worth
	if g.M() < 64 || g.M() > 2*64 {
		t.Fatalf("expander edges = %d, want within (64, 128]", g.M())
	}
	maxDeg := 0
	for v := uint32(1); v <= 64; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	// degree 2 from the ring plus at most 2 per chord layer
	if maxDeg > 4 {
		t.Fatalf("expander max degree = %d, want <= 4", maxDeg)
	}
}
