package graph

import (
	"testing"

	"kkt/internal/rng"
)

func isConnected(g *Graph) bool {
	_, n := components(g)
	return n <= 1
}

func TestRandomTree(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{2, 3, 10, 100} {
		g := RandomTree(r, n, 100, UniformWeights(r, 100))
		if g.M() != n-1 {
			t.Fatalf("n=%d: tree has %d edges", n, g.M())
		}
		if !isConnected(g) {
			t.Fatalf("n=%d: tree disconnected", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPathRingStarShapes(t *testing.T) {
	w := UnitWeights()
	p := Path(5, 1, w)
	if p.M() != 4 || p.Degree(1) != 1 || p.Degree(3) != 2 {
		t.Error("path shape wrong")
	}
	rg := Ring(5, 1, w)
	if rg.M() != 5 {
		t.Error("ring edge count wrong")
	}
	for v := uint32(1); v <= 5; v++ {
		if rg.Degree(v) != 2 {
			t.Errorf("ring degree of %d = %d", v, rg.Degree(v))
		}
	}
	s := Star(6, 1, w)
	if s.Degree(1) != 5 || s.Degree(2) != 1 {
		t.Error("star shape wrong")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 7, UnitWeights())
	if g.N != 12 {
		t.Fatalf("grid has %d nodes", g.N)
	}
	// m = rows*(cols-1) + (rows-1)*cols = 3*3 + 2*4 = 17
	if g.M() != 17 {
		t.Fatalf("grid has %d edges, want 17", g.M())
	}
	if !isConnected(g) {
		t.Fatal("grid disconnected")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(7, 10, UnitWeights())
	if g.M() != 21 {
		t.Fatalf("K7 has %d edges", g.M())
	}
	for v := uint32(1); v <= 7; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("K7 degree %d", g.Degree(v))
		}
	}
}

func TestGNM(t *testing.T) {
	r := rng.New(10)
	for _, tc := range []struct{ n, m int }{{10, 9}, {10, 20}, {50, 200}, {4, 6}} {
		g := GNM(r, tc.n, tc.m, 1000, UniformWeights(r, 1000))
		if g.M() != tc.m {
			t.Fatalf("GNM(%d,%d) has %d edges", tc.n, tc.m, g.M())
		}
		if !isConnected(g) {
			t.Fatalf("GNM(%d,%d) disconnected", tc.n, tc.m)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGNMPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GNM with m < n-1 should panic")
		}
	}()
	r := rng.New(1)
	GNM(r, 10, 5, 10, UnitWeights())
}

func TestGNPConnected(t *testing.T) {
	r := rng.New(6)
	for _, p := range []float64{0.0, 0.05, 0.5} {
		g := GNP(r, 40, p, 50, UniformWeights(r, 50))
		if !isConnected(g) {
			t.Fatalf("GNP(p=%v) disconnected", p)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	r := rng.New(12)
	g := PreferentialAttachment(r, 200, 3, 100, UniformWeights(r, 100))
	if !isConnected(g) {
		t.Fatal("PA graph disconnected")
	}
	if g.M() < 200 {
		t.Fatalf("PA graph too sparse: %d edges", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 10, 10, UnitWeights())
	if g.N != 20 {
		t.Fatalf("barbell nodes = %d", g.N)
	}
	// 2 * C(5,2) + path of 11 edges
	if g.M() != 2*10+11 {
		t.Fatalf("barbell edges = %d, want 31", g.M())
	}
	if !isConnected(g) {
		t.Fatal("barbell disconnected")
	}
}

func TestPermutationWeightsDistinct(t *testing.T) {
	r := rng.New(2)
	w := PermutationWeights(r, 10)
	seen := make(map[uint64]bool)
	for k := 0; k < 10; k++ {
		v := w(k)
		if v < 1 || v > 10 || seen[v] {
			t.Fatalf("bad permutation weight %d", v)
		}
		seen[v] = true
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := GNM(rng.New(42), 30, 60, 100, UniformWeights(rng.New(43), 100))
	g2 := GNM(rng.New(42), 30, 60, 100, UniformWeights(rng.New(43), 100))
	if g1.M() != g2.M() {
		t.Fatal("nondeterministic generator")
	}
	for i := range g1.Edges() {
		if g1.Edge(i) != g2.Edge(i) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestExpander(t *testing.T) {
	r := rng.New(7)
	g := Expander(r, 64, 4, 100, UniformWeights(rng.New(8), 100))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !isConnected(g) {
		t.Fatal("expander disconnected")
	}
	// ring edges plus at most one chord layer's worth
	if g.M() < 64 || g.M() > 2*64 {
		t.Fatalf("expander edges = %d, want within (64, 128]", g.M())
	}
	maxDeg := 0
	for v := uint32(1); v <= 64; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	// degree 2 from the ring plus at most 2 per chord layer
	if maxDeg > 4 {
		t.Fatalf("expander max degree = %d, want <= 4", maxDeg)
	}
}
