package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"kkt/internal/rng"
)

// WeightFunc assigns a raw weight to the k-th generated edge. Generators
// call it once per edge in generation order.
type WeightFunc func(k int) uint64

// UniformWeights draws raw weights uniformly from [1, u]. Duplicates are
// allowed; composite weights keep edges distinct, as in the paper.
func UniformWeights(r *rng.RNG, u uint64) WeightFunc {
	return func(int) uint64 { return r.Range(1, u) }
}

// UnitWeights assigns weight 1 to every edge — the unweighted (ST) setting.
func UnitWeights() WeightFunc {
	return func(int) uint64 { return 1 }
}

// PermutationWeights assigns the distinct weights 1..m in random order;
// callers must size u >= m. Useful when tests want raw weights to already
// be unique.
func PermutationWeights(r *rng.RNG, m int) WeightFunc {
	perm := r.Perm(m)
	return func(k int) uint64 { return uint64(perm[k]) + 1 }
}

// RandomTree returns a uniformly random labelled tree on n nodes
// (random-parent construction over a random permutation: each non-root
// attaches to a uniform predecessor, giving a random recursive tree —
// low-diameter, used as connected scaffolding).
func RandomTree(r *rng.RNG, n int, u uint64, w WeightFunc) *Graph {
	g := MustNew(n, u)
	order := r.Perm(n)
	for i := 1; i < n; i++ {
		a := uint32(order[i] + 1)
		b := uint32(order[r.Intn(i)] + 1)
		g.MustAddEdge(a, b, w(i-1))
	}
	return g
}

// Path returns the path 1-2-...-n, the maximum-diameter tree. Worst case
// for broadcast-and-echo round counts.
func Path(n int, u uint64, w WeightFunc) *Graph {
	g := MustNew(n, u)
	for i := 1; i < n; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1), w(i-1))
	}
	return g
}

// Ring returns the n-cycle.
func Ring(n int, u uint64, w WeightFunc) *Graph {
	if n < 3 {
		panic("graph: ring needs n >= 3")
	}
	g := Path(n, u, w)
	g.MustAddEdge(1, uint32(n), w(n-1))
	return g
}

// Star returns the star with centre 1.
func Star(n int, u uint64, w WeightFunc) *Graph {
	g := MustNew(n, u)
	for i := 2; i <= n; i++ {
		g.MustAddEdge(1, uint32(i), w(i-2))
	}
	return g
}

// Grid returns the rows x cols grid graph (n = rows*cols nodes).
func Grid(rows, cols int, u uint64, w WeightFunc) *Graph {
	g := MustNew(rows*cols, u)
	id := func(r, c int) uint32 { return uint32(r*cols + c + 1) }
	k := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), w(k))
				k++
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), w(k))
				k++
			}
		}
	}
	return g
}

// Complete returns K_n. Dense extreme: m = n(n-1)/2, where the o(m)
// separation from GHS/flooding is widest.
func Complete(n int, u uint64, w WeightFunc) *Graph {
	g := MustNew(n, u)
	k := 0
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			g.MustAddEdge(uint32(a), uint32(b), w(k))
			k++
		}
	}
	return g
}

// GNM returns a connected Erdos-Renyi-style G(n,m): a random tree plus
// m-(n-1) distinct random chords. It panics if m < n-1 or m exceeds the
// number of possible edges.
func GNM(r *rng.RNG, n, m int, u uint64, w WeightFunc) *Graph {
	return GNMWorkers(r, n, m, u, w, 1)
}

// gnmParallelMin is the smallest chord batch worth fanning out to check
// workers; below it goroutine handoff costs more than the lookups.
const gnmParallelMin = 4096

// GNMWorkers is GNM with the chord duplicate checks spread over parallel
// workers. The output is byte-identical to GNM at any worker count — the
// candidate and weight RNG streams advance exactly as in the sequential
// rejection loop — so a seeded trial may size workers to its shard count
// freely.
//
// How the equivalence works: the sequential loop draws candidate pairs
// from r one at a time and accepts a pair iff it is not a self-loop, not
// already an edge, and not a duplicate of an earlier accept. While n_acc
// accepts are still needed, the next n_acc draws happen unconditionally
// (each draw yields at most one accept), so the generator may draw them as
// one batch without disturbing the stream. Membership checks against the
// pre-batch graph — the expensive part at millions of edges — then run on
// parallel workers over chunk of the batch; within-batch duplicates are
// resolved sequentially in draw order, reproducing the rejection loop's
// accept sequence exactly. Weights are drawn in accept order, as always.
func GNMWorkers(r *rng.RNG, n, m int, u uint64, w WeightFunc, workers int) *Graph {
	maxM := n * (n - 1) / 2
	if m < n-1 || m > maxM {
		panic(fmt.Sprintf("graph: GNM with m=%d outside [n-1=%d, %d]", m, n-1, maxM))
	}
	g := RandomTree(r, n, u, w)
	k := n - 1

	var cand [][2]uint32
	var taken []bool
	var seen map[uint64]struct{}
	for g.M() < m {
		need := m - g.M()
		if workers < 2 || need < gnmParallelMin {
			// The plain rejection loop; also the reference the batched
			// path must match draw for draw.
			a := uint32(r.Intn(n) + 1)
			b := uint32(r.Intn(n) + 1)
			if a == b || g.HasEdge(a, b) {
				continue
			}
			g.MustAddEdge(a, b, w(k))
			k++
			continue
		}
		// Draw the next `need` candidates of the sequential stream.
		if cap(cand) < need {
			cand = make([][2]uint32, need)
			taken = make([]bool, need)
		}
		cand = cand[:need]
		taken = taken[:need]
		for i := range cand {
			cand[i] = [2]uint32{uint32(r.Intn(n) + 1), uint32(r.Intn(n) + 1)}
		}
		// Parallel phase: mark candidates rejected by the pre-batch graph.
		// Workers only read the graph, so chunks need no coordination
		// beyond the final join.
		var wg sync.WaitGroup
		chunk := (need + workers - 1) / workers
		for lo := 0; lo < need; lo += chunk {
			hi := lo + chunk
			if hi > need {
				hi = need
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					a, b := cand[i][0], cand[i][1]
					taken[i] = a == b || g.HasEdge(a, b)
				}
			}(lo, hi)
		}
		wg.Wait()
		// Sequential resolve in draw order: within-batch duplicates reject
		// exactly as the rejection loop would have.
		if seen == nil {
			seen = make(map[uint64]struct{}, need)
		}
		for i := 0; i < need && g.M() < m; i++ {
			if taken[i] {
				continue
			}
			a, b := cand[i][0], cand[i][1]
			if a > b {
				a, b = b, a
			}
			key := uint64(a)<<32 | uint64(b)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			g.MustAddEdge(a, b, w(k))
			k++
		}
		clear(seen)
	}
	return g
}

// GNP returns G(n,p) conditioned on connectivity: each possible edge is
// present independently with probability p, and a random tree over the
// leftover components stitches the graph connected.
func GNP(r *rng.RNG, n int, p float64, u uint64, w WeightFunc) *Graph {
	return GNPWorkers(r, n, p, u, w, 1)
}

// GNPWorkers is GNP with the connectivity patching's component labelling
// run on parallel workers; byte-identical to GNP at any worker count (the
// edge draws are one sequential Bernoulli stream by definition, and the
// component partition is a function of the graph alone).
func GNPWorkers(r *rng.RNG, n int, p float64, u uint64, w WeightFunc, workers int) *Graph {
	g := MustNew(n, u)
	k := 0
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			if r.Float64() < p {
				g.MustAddEdge(uint32(a), uint32(b), w(k))
				k++
			}
		}
	}
	stitchConnected(r, g, w, &k, workers)
	return g
}

// PreferentialAttachment returns a Barabasi-Albert-style graph: each new
// node attaches to deg attachments chosen proportionally to degree.
// Heavy-tailed degrees stress the per-node aggregation paths.
func PreferentialAttachment(r *rng.RNG, n, deg int, u uint64, w WeightFunc) *Graph {
	if deg < 1 {
		panic("graph: attachment degree must be >= 1")
	}
	g := MustNew(n, u)
	// endpoint multiset: each edge contributes both endpoints, so sampling
	// uniformly from it is degree-proportional sampling.
	endpoints := make([]uint32, 0, 2*n*deg)
	k := 0
	g.MustAddEdge(1, 2, w(k))
	k++
	endpoints = append(endpoints, 1, 2)
	for v := 3; v <= n; v++ {
		vid := uint32(v)
		attached := 0
		for attempts := 0; attached < deg && attempts < 50*deg; attempts++ {
			t := endpoints[r.Intn(len(endpoints))]
			if t == vid || g.HasEdge(vid, t) {
				continue
			}
			g.MustAddEdge(vid, t, w(k))
			k++
			endpoints = append(endpoints, vid, t)
			attached++
		}
		if attached == 0 { // degenerate fallback keeps the graph connected
			t := uint32(r.Intn(v-1) + 1)
			if !g.HasEdge(vid, t) {
				g.MustAddEdge(vid, t, w(k))
				k++
				endpoints = append(endpoints, vid, t)
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on n = 2^d nodes: node
// v (0-based v-1) links to every single-bit flip of itself, giving exactly
// n·d/2 edges. The edge count grows as (n/2)·log₂ n — a superlinear
// density ladder built into the family itself, which is what makes it a
// natural axis for the o(m) scaling sweep. Fully deterministic: the only
// randomness is the caller's weight function.
func Hypercube(d int, u uint64, w WeightFunc) *Graph {
	if d < 1 {
		panic("graph: hypercube needs dimension >= 1")
	}
	n := 1 << d
	g := MustNew(n, u)
	k := 0
	// Canonical edge order: ascending lower endpoint, then ascending bit.
	// Every edge is emitted once, from its smaller endpoint.
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			peer := v ^ (1 << b)
			if peer > v {
				g.MustAddEdge(uint32(v+1), uint32(peer+1), w(k))
				k++
			}
		}
	}
	return g
}

// HypercubeN is Hypercube keyed by node count; n must be a power of two.
func HypercubeN(n int, u uint64, w WeightFunc) *Graph {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("graph: hypercube needs a power-of-two node count, got %d", n))
	}
	d := 0
	for 1<<d < n {
		d++
	}
	return Hypercube(d, u, w)
}

// RandomGeometric returns a random geometric graph conditioned on
// connectivity: n points drawn uniformly in the unit square, an edge
// between every pair within the given radius, plus random stitch edges
// joining any leftover components. With radius ~ sqrt(log n / n) the
// expected edge count grows as n·log n.
func RandomGeometric(r *rng.RNG, n int, radius float64, u uint64, w WeightFunc) *Graph {
	return RandomGeometricWorkers(r, n, radius, u, w, 1)
}

// rggParallelMin is the smallest node count worth fanning the pair checks
// out to workers.
const rggParallelMin = 2048

// RandomGeometricWorkers is RandomGeometric with the radius checks spread
// over parallel workers; the output is byte-identical at any worker count.
//
// How the equivalence works: the point set is one sequential stream of 2n
// uniform draws, fixed before any worker starts. The edge set is then a
// pure function of the points — each worker scans a contiguous range of
// lower endpoints a against the bucket grid and collects {a,b} pairs in
// (a ascending, b ascending) order into its own slice, so concatenating
// the per-worker slices in range order reproduces the sequential scan's
// edge order exactly. Weights are drawn sequentially in that order after
// the join, and connectivity stitching reuses the same seeded path as GNP.
func RandomGeometricWorkers(r *rng.RNG, n int, radius float64, u uint64, w WeightFunc, workers int) *Graph {
	if n < 1 {
		panic("graph: geometric needs n >= 1")
	}
	if radius <= 0 || radius > 1.5 {
		panic(fmt.Sprintf("graph: geometric radius %v outside (0, 1.5]", radius))
	}
	g := MustNew(n, u)
	xs := make([]float64, n+1)
	ys := make([]float64, n+1)
	for v := 1; v <= n; v++ {
		xs[v] = r.Float64()
		ys[v] = r.Float64()
	}
	// Bucket grid with cell side >= radius: all neighbours of a point lie
	// in its own or the eight surrounding cells.
	side := int(1 / radius)
	if side < 1 {
		side = 1
	}
	cell := func(v int) (int, int) {
		cx := int(xs[v] * float64(side))
		cy := int(ys[v] * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	buckets := make([][]int32, side*side)
	for v := 1; v <= n; v++ {
		cx, cy := cell(v)
		buckets[cy*side+cx] = append(buckets[cy*side+cx], int32(v))
	}
	rad2 := radius * radius
	// collect gathers the within-radius pairs {a,b} with a in [lo, hi],
	// b > a, in (a asc, b asc) order.
	collect := func(lo, hi int) [][2]uint32 {
		var out [][2]uint32
		var cand []int32
		for a := lo; a <= hi; a++ {
			cx, cy := cell(a)
			cand = cand[:0]
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := cx+dx, cy+dy
					if nx < 0 || nx >= side || ny < 0 || ny >= side {
						continue
					}
					for _, b := range buckets[ny*side+nx] {
						if int(b) <= a {
							continue
						}
						ddx := xs[a] - xs[b]
						ddy := ys[a] - ys[b]
						if ddx*ddx+ddy*ddy <= rad2 {
							cand = append(cand, b)
						}
					}
				}
			}
			sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
			for _, b := range cand {
				out = append(out, [2]uint32{uint32(a), uint32(b)})
			}
		}
		return out
	}
	var pairs [][2]uint32
	if workers > 1 && n >= rggParallelMin {
		chunks := make([][][2]uint32, workers)
		var wg sync.WaitGroup
		per := (n + workers - 1) / workers
		for wi := 0; wi < workers; wi++ {
			lo := 1 + wi*per
			hi := lo + per - 1
			if hi > n {
				hi = n
			}
			if lo > n {
				break
			}
			wg.Add(1)
			go func(wi, lo, hi int) {
				defer wg.Done()
				chunks[wi] = collect(lo, hi)
			}(wi, lo, hi)
		}
		wg.Wait()
		for _, c := range chunks {
			pairs = append(pairs, c...)
		}
	} else {
		pairs = collect(1, n)
	}
	k := 0
	for _, p := range pairs {
		g.MustAddEdge(p[0], p[1], w(k))
		k++
	}
	stitchConnected(r, g, w, &k, workers)
	return g
}

// GeometricRadius is the default connectivity-scaled radius for
// RandomGeometric: sqrt(3·ln n / (π·n)), giving expected degree ~3·ln n —
// comfortably above the sharp connectivity threshold ln n/π, with the
// edge count growing as ~1.5·n·ln n.
func GeometricRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	r := math.Sqrt(3 * math.Log(float64(n)) / (math.Pi * float64(n)))
	if r > 1 {
		r = 1
	}
	return r
}

// Expander returns a ring plus chords from (deg-2)/2 independent random
// permutations (self-loops and duplicates skipped), the classical
// construction of a near-deg-regular graph that is an expander w.h.p.
// Each permutation layer adds at most 2 to a node's degree, so deg must
// be even for the bound to be exact. Constant degree with logarithmic
// diameter: the opposite stress profile from Ring (constant degree,
// linear diameter) and Complete (dense).
func Expander(r *rng.RNG, n, deg int, u uint64, w WeightFunc) *Graph {
	if deg < 4 || deg%2 != 0 {
		panic("graph: expander needs an even degree >= 4")
	}
	g := Ring(n, u, w)
	k := g.M()
	for layer := 0; layer < (deg-2)/2; layer++ {
		perm := r.Perm(n)
		for i := 0; i < n; i++ {
			a, b := uint32(i+1), uint32(perm[i]+1)
			if a == b || g.HasEdge(a, b) {
				continue
			}
			g.MustAddEdge(a, b, w(k))
			k++
		}
	}
	return g
}

// Barbell returns two cliques of size k joined by a path of n-2k nodes.
// The long path maximises tree diameter while the cliques maximise local
// density — adversarial for both round counts and message counts.
func Barbell(k, pathLen int, u uint64, w WeightFunc) *Graph {
	n := 2*k + pathLen
	g := MustNew(n, u)
	idx := 0
	clique := func(lo int) {
		for a := lo; a < lo+k; a++ {
			for b := a + 1; b < lo+k; b++ {
				g.MustAddEdge(uint32(a), uint32(b), w(idx))
				idx++
			}
		}
	}
	clique(1)
	clique(k + pathLen + 1)
	// path from node k to node k+pathLen+1 through the middle nodes.
	prev := uint32(k)
	for i := 0; i < pathLen; i++ {
		next := uint32(k + 1 + i)
		g.MustAddEdge(prev, next, w(idx))
		idx++
		prev = next
	}
	g.MustAddEdge(prev, uint32(k+pathLen+1), w(idx))
	return g
}

// stitchConnected adds random edges between components until the graph is
// connected. The component labelling (the expensive part at scale) fans
// out over the given worker count.
func stitchConnected(r *rng.RNG, g *Graph, w WeightFunc, k *int, workers int) {
	for {
		comp, ncomp := componentsWorkers(g, workers)
		if ncomp <= 1 {
			return
		}
		// pick one representative per component and chain them randomly.
		reps := make([]uint32, ncomp)
		seen := make([]bool, ncomp)
		for v := 1; v <= g.N; v++ {
			c := comp[v]
			if !seen[c] {
				seen[c] = true
				reps[c] = uint32(v)
			}
		}
		r.Shuffle(len(reps), func(i, j int) { reps[i], reps[j] = reps[j], reps[i] })
		for i := 1; i < len(reps); i++ {
			if !g.HasEdge(reps[i-1], reps[i]) {
				g.MustAddEdge(reps[i-1], reps[i], w(*k))
				*k++
			}
		}
	}
}

// components labels nodes with component indices 0..ncomp-1 (index 0 of the
// returned slice is unused).
func components(g *Graph) (comp []int, ncomp int) {
	return componentsWorkers(g, 1)
}

// ufParallelMin is the smallest edge count worth fanning component unions
// out to workers.
const ufParallelMin = 1 << 15

// componentsWorkers labels components via union-find, unioning edge chunks
// on parallel workers. The lock-free union (CAS only ever retargets a
// root, path halving only ever shortcuts toward an ancestor) computes the
// connectivity partition, which is a function of the edge set alone, so
// the result is independent of worker count and interleaving; labels are
// then canonicalised in first-node order — exactly the numbering the old
// sequential DFS produced.
func componentsWorkers(g *Graph, workers int) (comp []int, ncomp int) {
	n := g.N
	parent := make([]uint32, n+1)
	for i := range parent {
		parent[i] = uint32(i)
	}
	edges := g.Edges()
	if workers > 1 && len(edges) >= ufParallelMin {
		var wg sync.WaitGroup
		chunk := (len(edges) + workers - 1) / workers
		for lo := 0; lo < len(edges); lo += chunk {
			hi := lo + chunk
			if hi > len(edges) {
				hi = len(edges)
			}
			wg.Add(1)
			go func(part []Edge) {
				defer wg.Done()
				for _, e := range part {
					ufUnion(parent, e.A, e.B)
				}
			}(edges[lo:hi])
		}
		wg.Wait()
	} else {
		for _, e := range edges {
			ufUnion(parent, e.A, e.B)
		}
	}
	// Canonical labels: scanning nodes in ascending order, a component is
	// numbered when its first (smallest) node appears — matching the DFS
	// numbering stitchConnected always relied on.
	comp = make([]int, n+1)
	label := make([]int, n+1)
	for i := range label {
		label[i] = -1
	}
	comp[0] = -1
	for v := 1; v <= n; v++ {
		root := int(ufFind(parent, uint32(v)))
		if label[root] < 0 {
			label[root] = ncomp
			ncomp++
		}
		comp[v] = label[root]
	}
	return comp, ncomp
}

// ufFind resolves x's root with path halving; safe under concurrent
// unions (parent pointers only ever move toward an ancestor).
func ufFind(parent []uint32, x uint32) uint32 {
	for {
		p := atomic.LoadUint32(&parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadUint32(&parent[p])
		atomic.CompareAndSwapUint32(&parent[x], p, gp)
		x = gp
	}
}

// ufUnion links the components of a and b, attaching the larger root under
// the smaller; the CAS only succeeds on a current root, so concurrent
// unions retry rather than corrupt the forest.
func ufUnion(parent []uint32, a, b uint32) {
	for {
		ra, rb := ufFind(parent, a), ufFind(parent, b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		if atomic.CompareAndSwapUint32(&parent[rb], rb, ra) {
			return
		}
	}
}
