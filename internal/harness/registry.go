package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Registry holds named scenarios. The zero value is not usable; construct
// with NewRegistry (empty) or Builtin (the standard suite).
type Registry struct {
	specs map[string]Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Register validates the spec and adds it under its name. Duplicate names
// and invalid specs are rejected.
func (r *Registry) Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("harness: duplicate scenario %q", s.Name)
	}
	r.specs[s.Name] = s
	return nil
}

// MustRegister is Register but panics on error; for built-in suites whose
// specs are valid by construction.
func (r *Registry) MustRegister(s Spec) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Get returns the named scenario.
func (r *Registry) Get(name string) (Spec, bool) {
	s, ok := r.specs[name]
	return s, ok
}

// Names returns all scenario names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.specs))
	for n := range r.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Specs returns all scenarios sorted by name.
func (r *Registry) Specs() []Spec {
	names := r.Names()
	out := make([]Spec, len(names))
	for i, n := range names {
		out[i] = r.specs[n]
	}
	return out
}

// Match returns the scenarios whose name contains the given substring
// (all scenarios for the empty string), sorted by name.
func (r *Registry) Match(substr string) []Spec {
	var out []Spec
	for _, s := range r.Specs() {
		if strings.Contains(s.Name, substr) {
			out = append(out, s)
		}
	}
	return out
}

// Suggest returns up to three registered names close to the given unknown
// one, for "did you mean" diagnostics: substring matches first, then
// smallest edit distance (bounded at one third of the query length, so
// wildly different names suggest nothing).
func (r *Registry) Suggest(name string) []string {
	return SuggestNames(r.Names(), name)
}

// SuggestNames is the registry's "did you mean" heuristic over an
// arbitrary vocabulary, for CLI word lists (families, algorithms, knobs):
// up to three entries of vocab close to the unknown name, substring
// matches first, then smallest edit distance.
func SuggestNames(vocab []string, name string) []string {
	type cand struct {
		name string
		dist int
	}
	var cands []cand
	maxDist := len(name) / 3
	if maxDist < 2 {
		maxDist = 2
	}
	for _, n := range vocab {
		if strings.Contains(n, name) || strings.Contains(name, n) {
			cands = append(cands, cand{n, 0})
			continue
		}
		// Whole-name distance, or the best distance to any /-segment:
		// "mst-buld" should surface mst-build/* even though the full
		// names are far away.
		best := editDistance(name, n)
		for _, seg := range strings.Split(n, "/") {
			if d := editDistance(name, seg); d < best {
				best = d
			}
		}
		if best <= maxDist {
			cands = append(cands, cand{n, best})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if len(cands) > 3 {
		cands = cands[:3]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// editDistance is the Levenshtein distance with two rolling rows.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
