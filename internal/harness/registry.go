package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Registry holds named scenarios. The zero value is not usable; construct
// with NewRegistry (empty) or Builtin (the standard suite).
type Registry struct {
	specs map[string]Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Register validates the spec and adds it under its name. Duplicate names
// and invalid specs are rejected.
func (r *Registry) Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("harness: duplicate scenario %q", s.Name)
	}
	r.specs[s.Name] = s
	return nil
}

// MustRegister is Register but panics on error; for built-in suites whose
// specs are valid by construction.
func (r *Registry) MustRegister(s Spec) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Get returns the named scenario.
func (r *Registry) Get(name string) (Spec, bool) {
	s, ok := r.specs[name]
	return s, ok
}

// Names returns all scenario names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.specs))
	for n := range r.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Specs returns all scenarios sorted by name.
func (r *Registry) Specs() []Spec {
	names := r.Names()
	out := make([]Spec, len(names))
	for i, n := range names {
		out[i] = r.specs[n]
	}
	return out
}

// Match returns the scenarios whose name contains the given substring
// (all scenarios for the empty string), sorted by name.
func (r *Registry) Match(substr string) []Spec {
	var out []Spec
	for _, s := range r.Specs() {
		if strings.Contains(s.Name, substr) {
			out = append(out, s)
		}
	}
	return out
}
