package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSummarizeSumsStagedDrops locks in that the per-trial staged-drop
// counts surface in the scenario summary, excluding errored trials like
// every other cost metric.
func TestSummarizeSumsStagedDrops(t *testing.T) {
	trials := []TrialMetrics{
		{Valid: true, StagedDrops: 2},
		{Valid: true, StagedDrops: 3},
		{Error: "boom", StagedDrops: 99},
	}
	s := summarize(trials, nil)
	if s.StagedDrops != 5 {
		t.Errorf("summary staged drops = %d, want 5 (errored trial excluded)", s.StagedDrops)
	}
}

// TestStagedDropsOmittedWhenZero pins the report-compatibility contract:
// trials without drops marshal exactly as before the field existed, so
// unchanged scenarios keep byte-identical BENCH_*.json reports.
func TestStagedDropsOmittedWhenZero(t *testing.T) {
	clean, err := json.Marshal(TrialMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(clean), "staged_drops") {
		t.Errorf("zero staged_drops serialized: %s", clean)
	}
	dropped, err := json.Marshal(TrialMetrics{StagedDrops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dropped), `"staged_drops":1`) {
		t.Errorf("non-zero staged_drops missing: %s", dropped)
	}
}
