package harness

import (
	"os"

	"kkt/internal/faultplan"
)

// Builtin returns the standard scenario suite: every headline path of the
// paper (MST build under both phase policies, the three repair
// operations, ST repair via FindAny, GHS and flooding as baselines)
// across random, ring, grid and expander families, under both schedulers.
// Sizes are chosen so the whole suite runs in seconds; perf PRs scale N
// with dedicated specs.
func Builtin() *Registry {
	reg := NewRegistry()

	// --- MST Build (paper §3.3), adaptive vs fixed phase policy ---
	reg.MustRegister(Spec{
		Name:        "mst-build/gnm/sync",
		Description: "Build MST (adaptive) on connected G(n,3n), synchronous",
		Family:      FamilyGNM, N: 64,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	})
	reg.MustRegister(Spec{
		Name:        "mst-build/gnm/async",
		Description: "Build MST (adaptive) on connected G(n,3n), asynchronous",
		Family:      FamilyGNM, N: 64,
		Sched: SchedAsync,
		Algo:  AlgoMSTBuildAdaptive,
	})
	reg.MustRegister(Spec{
		Name:        "mst-build/grid/sync",
		Description: "Build MST (adaptive) on the 8x8 grid",
		Family:      FamilyGrid, N: 64,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	})
	reg.MustRegister(Spec{
		Name:        "mst-build/expander/sync",
		Description: "Build MST (adaptive) on a degree-4 expander",
		Family:      FamilyExpander, N: 64,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	})
	reg.MustRegister(Spec{
		Name:        "mst-build-fixed/ring/sync",
		Description: "Build MST with the paper's full fixed phase budget (Lemma 3 worst case)",
		Family:      FamilyRing, N: 16,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildFixed,
	})

	// --- Impromptu MSF repair storms (paper §3.2) ---
	reg.MustRegister(Spec{
		Name:        "mst-repair/gnm/async",
		Description: "Delete/Insert/WeightChange storm against a maintained MSF on G(n,3n)",
		Family:      FamilyGNM, N: 48,
		Sched:  SchedAsync,
		Algo:   AlgoMSTRepair,
		Faults: FaultScript{Deletes: 8, Inserts: 8, WeightChanges: 8},
	})
	reg.MustRegister(Spec{
		Name:        "mst-repair/grid/sync",
		Description: "Repair storm on the 7x7 grid, synchronous",
		Family:      FamilyGrid, N: 49,
		Sched:  SchedSync,
		Algo:   AlgoMSTRepair,
		Faults: FaultScript{Deletes: 6, Inserts: 6, WeightChanges: 6},
	})
	reg.MustRegister(Spec{
		Name:        "mst-repair/expander/async",
		Description: "Repair storm on a degree-4 expander, asynchronous",
		Family:      FamilyExpander, N: 48,
		Sched:  SchedAsync,
		Algo:   AlgoMSTRepair,
		Faults: FaultScript{Deletes: 8, Inserts: 8, WeightChanges: 8},
	})

	// --- Concurrent repair storms (fault plans + admission queue) ---
	// The adversarial counterpart of the uniform repair storms above: a
	// compiled fault plan (partition-and-heal, correlated bursts, targeted
	// forest deletes) drains through the admission queue in waves of
	// overlapping repairs. Watchdogs are armed generously — they exist to
	// turn a wedged trial into a structured dump, never to trip a healthy
	// run.
	smallPlan := &faultplan.Plan{
		Partitions: 2, PartitionSize: 6, Heals: 6,
		Bursts: 1, BurstRadius: 1,
		BridgeDeletes: 2, TreeEdgeDeletes: 4, HubDeletes: 2,
		Deletes: 6, Inserts: 6, WeightChanges: 6,
	}
	reg.MustRegister(Spec{
		Name:        "mst-repair/gnm/storm",
		Description: "Adversarial fault plan against a maintained MSF, concurrent repair waves",
		Family:      FamilyGNM, N: 48,
		Sched:    SchedSync,
		Algo:     AlgoMSTRepair,
		Plan:     smallPlan,
		Wave:     8,
		Watchdog: &WatchdogSpec{StallTime: 1 << 20, MaxTime: 1 << 32},
	})
	reg.MustRegister(Spec{
		Name:        "mst-repair/gnm/storm-async",
		Description: "Adversarial fault plan against a maintained MSF, concurrent repair waves under asynchrony",
		Family:      FamilyGNM, N: 48,
		Sched:    SchedAsync,
		Algo:     AlgoMSTRepair,
		Plan:     smallPlan,
		Wave:     8,
		Watchdog: &WatchdogSpec{StallTime: 1 << 20, MaxTime: 1 << 32},
	})
	reg.MustRegister(Spec{
		Name:        "st-repair/gnm/storm",
		Description: "Adversarial fault plan against a maintained spanning forest, concurrent repair waves",
		Family:      FamilyGNM, N: 64,
		Sched: SchedSync,
		Algo:  AlgoSTRepair,
		Plan: &faultplan.Plan{
			Partitions: 2, PartitionSize: 8, Heals: 8,
			Bursts: 1, BurstRadius: 1,
			BridgeDeletes: 2, TreeEdgeDeletes: 6, HubDeletes: 2,
			Deletes: 8, Inserts: 8,
		},
		Wave:     8,
		Watchdog: &WatchdogSpec{StallTime: 1 << 20, MaxTime: 1 << 32},
	})

	// --- ST build and repair (paper §4) ---
	reg.MustRegister(Spec{
		Name:        "st-build/gnm/sync",
		Description: "Build ST via FindAny-C on connected G(n,3n)",
		Family:      FamilyGNM, N: 64,
		Sched: SchedSync,
		Algo:  AlgoSTBuild,
	})
	reg.MustRegister(Spec{
		Name:        "st-repair/gnm/async",
		Description: "Delete/Insert storm against a maintained spanning forest (FindAny)",
		Family:      FamilyGNM, N: 64,
		Sched:  SchedAsync,
		Algo:   AlgoSTRepair,
		Faults: FaultScript{Deletes: 12, Inserts: 12},
	})
	reg.MustRegister(Spec{
		Name:        "st-repair/ring/sync",
		Description: "Delete/Insert storm on the ring: every delete is a bridge or near-bridge",
		Family:      FamilyRing, N: 32,
		Sched:  SchedSync,
		Algo:   AlgoSTRepair,
		Faults: FaultScript{Deletes: 6, Inserts: 6},
	})

	// --- Production-scale stress scenarios ---
	// These prove the zero-alloc core at scale: the whole point of the
	// interned-kind dispatch, pooled messages, calendar queue, and the
	// allocation-free protocol layer (pooled session state, unboxed
	// echoes) is that 100k-node runs are bounded by protocol work, not
	// simulator overhead.
	reg.MustRegister(Spec{
		Name:        "flood/gnm-100k/sync",
		Description: "Theta(m) flood across 100k nodes / 300k edges: raw dispatch throughput",
		Family:      FamilyGNM, N: 100_000,
		Sched: SchedSync,
		Algo:  AlgoFlood,
	})
	reg.MustRegister(Spec{
		Name:        "mst-build/gnm-100k/sync",
		Description: "Build MST (adaptive) on connected G(n,3n) at 100k nodes: the full FindMin-C protocol stack at scale",
		Family:      FamilyGNM, N: 100_000,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	})
	reg.MustRegister(Spec{
		Name:        "st-build/gnm-100k/sync",
		Description: "Build ST via FindAny-C on connected G(n,3n) at 100k nodes",
		Family:      FamilyGNM, N: 100_000,
		Sched: SchedSync,
		Algo:  AlgoSTBuild,
	})
	// The windowed async engine's headline scenarios: same scale as the
	// sync 100k builds, but delivered as asynchronous tick groups — the
	// regime the paper's Theorem 1.2 repair algorithms run in — with
	// --shards parallelizing the groups byte-identically.
	reg.MustRegister(Spec{
		Name:        "mst-build/gnm-100k/async",
		Description: "Build MST (adaptive) on connected G(n,3n) at 100k nodes under the asynchronous scheduler (windowed parallel delivery)",
		Family:      FamilyGNM, N: 100_000,
		Sched: SchedAsync,
		Algo:  AlgoMSTBuildAdaptive,
	})
	reg.MustRegister(Spec{
		Name:        "st-build/gnm-100k/async",
		Description: "Build ST via FindAny-C on connected G(n,3n) at 100k nodes under the asynchronous scheduler",
		Family:      FamilyGNM, N: 100_000,
		Sched: SchedAsync,
		Algo:  AlgoSTBuild,
	})
	reg.MustRegister(Spec{
		Name:        "ghs/expander-50k/sync",
		Description: "GHS baseline on a degree-4 expander at 50k nodes",
		Family:      FamilyExpander, N: 50_000,
		Sched: SchedSync,
		Algo:  AlgoGHS,
	})
	reg.MustRegister(Spec{
		Name:        "ghs/expander-100k/sync",
		Description: "GHS baseline on a degree-4 expander at 100k nodes: the bitmask rejection cache at scale",
		Family:      FamilyExpander, N: 100_000,
		Sched: SchedSync,
		Algo:  AlgoGHS,
	})
	// The 10k-repair adversarial storm at 100k nodes: partitions shatter
	// the graph early (each severs a forest subtree behind a single tree
	// edge, so the expensive-looking bridged-off conclusions stay
	// proportional to the region), after which the targeted and
	// background faults land on a many-component forest and the waves
	// genuinely overlap. The launchers re-orient every repair at
	// admission time toward the smaller live side (admit.SideProber), so
	// searches cost the severed region, not the 100k remainder.
	reg.MustRegister(Spec{
		Name:        "mst-repair/gnm-100k/storm",
		Description: "10k-repair adversarial storm (partition, burst, targeted deletes, heals) on 100k nodes through the admission queue",
		Family:      FamilyGNM, N: 100_000,
		Sched: SchedSync,
		Algo:  AlgoMSTRepair,
		// Delete-heavy on purpose: delete repairs root in the small
		// severed side, while same-component insert-style repairs pay a
		// path probe over the whole component — a few hundred of those
		// against the ~90k-node remainder already dominate the bill, so
		// inserts/weight changes/heals stay in the hundreds.
		Plan: &faultplan.Plan{
			Partitions: 128, PartitionSize: 192, Heals: 160,
			Bursts: 12, BurstRadius: 1,
			BridgeDeletes: 32, TreeEdgeDeletes: 8500, HubDeletes: 128,
			Deletes: 4000, Inserts: 150, WeightChanges: 200,
		},
		Wave:     64,
		Watchdog: &WatchdogSpec{StallTime: 1 << 22, MaxTime: 1 << 36},
	})
	reg.MustRegister(Spec{
		Name:        "mst-build/gnm-1m/sync",
		Description: "Build MST (adaptive) on connected G(n,3n) at 1M nodes: the sharded multi-core engine's headline scenario (run with --shards = cores)",
		Family:      FamilyGNM, N: 1_000_000,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	})

	// --- Scaling-sweep families (powerlaw / geometric / hypercube) ---
	// The degree-skewed and density-growing topologies the `kkt scaling`
	// sweep ladders over, each pinned here at a mid size so the full
	// protocol stack exercises them (and validates the MSF) on every bench
	// run. The sketch/FindAny machinery is most stressed exactly where
	// degree distributions are skewed (powerlaw hubs) or density grows
	// with n (hypercube's m = n·log₂n/2).
	reg.MustRegister(Spec{
		Name:        "mst-build/powerlaw-2k/sync",
		Description: "Build MST (adaptive) on a preferential-attachment graph at 2k nodes: heavy-tailed degrees",
		Family:      FamilyPowerLaw, N: 2000,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	})
	reg.MustRegister(Spec{
		Name:        "mst-build/geometric-2k/sync",
		Description: "Build MST (adaptive) on a random geometric graph at 2k nodes: m ~ n log n, high clustering",
		Family:      FamilyGeometric, N: 2000,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	})
	reg.MustRegister(Spec{
		Name:        "mst-build/hypercube-4k/sync",
		Description: "Build MST (adaptive) on the 12-dimensional hypercube: 4096 nodes, 24576 edges",
		Family:      FamilyHypercube, N: 4096,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	})

	// --- Baseline comparators ---
	reg.MustRegister(Spec{
		Name:        "ghs/gnm/sync",
		Description: "GHS baseline, O(m + n log n) messages, on G(n,3n)",
		Family:      FamilyGNM, N: 64,
		Sched: SchedSync,
		Algo:  AlgoGHS,
	})
	reg.MustRegister(Spec{
		Name:        "ghs/expander/sync",
		Description: "GHS baseline on a degree-4 expander",
		Family:      FamilyExpander, N: 64,
		Sched: SchedSync,
		Algo:  AlgoGHS,
	})
	reg.MustRegister(Spec{
		Name:        "flood/gnm/sync",
		Description: "Flooding micro-benchmark: the Theta(m) folk-theorem floor",
		Family:      FamilyGNM, N: 64,
		Sched: SchedSync,
		Algo:  AlgoFlood,
	})
	reg.MustRegister(Spec{
		Name:        "flood/grid/async",
		Description: "Flooding on the 8x8 grid under asynchrony",
		Family:      FamilyGrid, N: 64,
		Sched: SchedAsync,
		Algo:  AlgoFlood,
	})

	// --- Debug scenarios (env-gated, never in the default listing) ---
	// debug/stall wires a deliberate engine livelock so the watchdog can be
	// exercised end to end: the trial MUST fail, with a structured dump
	// instead of a hang. Gated behind KKT_DEBUG_SCENARIOS=1 so the default
	// suite contains only scenarios that are supposed to pass.
	if os.Getenv("KKT_DEBUG_SCENARIOS") == "1" {
		reg.MustRegister(Spec{
			Name:        "debug/stall",
			Description: "Deliberate livelock; the armed watchdog must fail the trial with a diagnostic dump",
			Family:      FamilyRing, N: 8,
			Sched:    SchedSync,
			Algo:     AlgoDebugStall,
			Watchdog: &WatchdogSpec{StallTime: 4096},
		})
	}

	return reg
}
