package harness

import (
	"bytes"
	"testing"

	"kkt/internal/congest"
	"kkt/internal/obsv"
)

// TestObservedReportsByteIdentical is the observer half of the determinism
// contract: attaching a recorder to every trial must not move a single byte
// of the seeded report, at any shard count. Observation is read-only by
// construction (PhaseCosts come from ledger deltas, never from the
// observer), and this test keeps it that way.
func TestObservedReportsByteIdentical(t *testing.T) {
	specs := smallBuiltinSpecs(t)
	marshal := func(shards int, observe func(Spec, int) congest.Observer) []byte {
		cfg := RunConfig{Trials: 2, Seed: 5, Shards: shards, Observe: observe}
		report := NewReport("obscheck", cfg, RunAll(specs, cfg))
		blob, err := report.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	want := marshal(1, nil)
	for _, shards := range []int{1, 4} {
		got := marshal(shards, func(spec Spec, trial int) congest.Observer {
			return obsv.NewRecorder(spec.Name)
		})
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%d observed: report bytes differ from unobserved run (len %d vs %d)",
				shards, len(got), len(want))
		}
	}
}

// TestObserverSeesBuildTimeline runs one observed MST build and checks the
// recorder captured what the report shows: a phase timeline matching the
// trial's phase count, round samples, and completed sessions.
func TestObserverSeesBuildTimeline(t *testing.T) {
	spec := Spec{
		Name:   "obscheck/gnm-small",
		Family: FamilyGNM, N: 256,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	rec := obsv.NewRecorder(spec.Name)
	m, _, err := RunTrialObserved(spec, 7, 1, congest.DriverCont, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid {
		t.Fatal("observed build failed validation")
	}
	if len(m.PhaseCosts) != m.Phases || m.Phases == 0 {
		t.Fatalf("trial has %d phases but %d phase costs", m.Phases, len(m.PhaseCosts))
	}
	snap := rec.Snapshot()
	if got := len(snap.Phases); got != m.Phases {
		t.Errorf("recorder saw %d phases, trial reports %d", got, m.Phases)
	}
	for i, pa := range snap.Phases {
		if !pa.Done {
			t.Errorf("phase %d never ended", i)
		}
		if pa.Messages != m.PhaseCosts[i].Messages || pa.Bits != m.PhaseCosts[i].Bits {
			t.Errorf("phase %d: recorder cost (%d msgs, %d bits) != report cost (%d msgs, %d bits)",
				i, pa.Messages, pa.Bits, m.PhaseCosts[i].Messages, m.PhaseCosts[i].Bits)
		}
	}
	if len(snap.RoundSamples) == 0 {
		t.Error("no round samples recorded")
	}
	if snap.Messages != m.Messages || snap.Bits != m.Bits {
		t.Errorf("recorder totals (%d msgs, %d bits) != trial totals (%d msgs, %d bits)",
			snap.Messages, snap.Bits, m.Messages, m.Bits)
	}
	if snap.Sessions.Opened == 0 || snap.Sessions.Completed != snap.Sessions.Opened {
		t.Errorf("sessions opened=%d completed=%d — want all opened sessions completed",
			snap.Sessions.Opened, snap.Sessions.Completed)
	}
}
