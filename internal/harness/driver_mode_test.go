package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"kkt/internal/congest"
)

// TestDriverModeReportsIdentical is the continuation-driver determinism
// contract, checked the same way the shard contract is: every small-suite
// scenario produces byte-identical seeded metrics and per-kind traffic
// under goroutine-per-fragment drivers and under continuation tasks. The
// two models must differ only in footprint, never in any observable.
func TestDriverModeReportsIdentical(t *testing.T) {
	for _, spec := range smallBuiltinSpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mG, kG, errG := RunTrialDrivers(spec, 3, 1, congest.DriverGoroutine)
			mC, kC, errC := RunTrialDrivers(spec, 3, 1, congest.DriverCont)
			if (errG == nil) != (errC == nil) {
				t.Fatalf("error divergence: goroutine=%v continuation=%v", errG, errC)
			}
			bG, _ := json.Marshal(mG) // footprint fields are json:"-" by design
			bC, _ := json.Marshal(mC)
			if !bytes.Equal(bG, bC) {
				t.Errorf("metrics diverge:\n goroutine:    %s\n continuation: %s", bG, bC)
			}
			kgB, _ := json.Marshal(kG)
			kcB, _ := json.Marshal(kC)
			if !bytes.Equal(kgB, kcB) {
				t.Errorf("per-kind traffic diverges:\n goroutine:    %s\n continuation: %s", kgB, kcB)
			}
		})
	}
}

// TestContinuationDriversCutPeakGoroutines is the footprint gate of the
// continuation model (the ISSUE's ≥10x criterion, measured in-process on a
// build small enough for a test): the goroutine model parks one driver
// goroutine per first-phase fragment, the continuation model needs only
// the phase controller — the fan-out lives in pooled heap tasks.
func TestContinuationDriversCutPeakGoroutines(t *testing.T) {
	spec := Spec{
		Name:   "drivergate/gnm-512",
		Family: FamilyGNM, N: 512,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	mG, _, err := RunTrialDrivers(spec, 5, 1, congest.DriverGoroutine)
	if err != nil {
		t.Fatal(err)
	}
	mC, _, err := RunTrialDrivers(spec, 5, 1, congest.DriverCont)
	if err != nil {
		t.Fatal(err)
	}
	if !mG.Valid || !mC.Valid {
		t.Fatalf("build invalid: goroutine=%v continuation=%v", mG.Valid, mC.Valid)
	}
	// The goroutine build's first Borůvka phase spawns one driver per node.
	if mG.PeakDriverGoroutines < spec.N {
		t.Fatalf("goroutine baseline peaked at %d driver goroutines, want >= %d", mG.PeakDriverGoroutines, spec.N)
	}
	if mC.PeakDriverGoroutines*10 > mG.PeakDriverGoroutines {
		t.Errorf("continuation build peaked at %d driver goroutines vs %d baseline — less than the 10x reduction gate",
			mC.PeakDriverGoroutines, mG.PeakDriverGoroutines)
	}
	// The fan-out still happened — as tasks, with the same concurrency.
	if mC.PeakDriverTasks < spec.N {
		t.Errorf("continuation build peaked at %d tasks, want >= %d (the phase-1 fan-out)", mC.PeakDriverTasks, spec.N)
	}
	if mC.PeakLiveDrivers < spec.N {
		t.Errorf("continuation build peaked at %d live drivers, want >= %d", mC.PeakLiveDrivers, spec.N)
	}
}
