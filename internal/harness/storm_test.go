package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"kkt/internal/faultplan"
)

// stormVariant is one cell of the storm property sweep.
type stormVariant struct {
	family string
	sched  string
	algo   string
	n      int
	plan   faultplan.Plan
	wave   int
}

// stormVariants crosses families, schedulers, algorithms and plan shapes.
// Weight changes are only legal for the weighted MSF.
func stormVariants() []stormVariant {
	calm := faultplan.Plan{
		TreeEdgeDeletes: 4, Deletes: 4, Inserts: 4,
	}
	storm := faultplan.Plan{
		Partitions: 2, PartitionSize: 6, Heals: 6,
		Bursts: 1, BurstRadius: 1,
		BridgeDeletes: 2, TreeEdgeDeletes: 4, HubDeletes: 2,
		Deletes: 6, Inserts: 6,
	}
	withWeights := storm
	withWeights.WeightChanges = 6

	return []stormVariant{
		{FamilyGNM, SchedSync, AlgoMSTRepair, 32, withWeights, 8},
		{FamilyGNM, SchedAsync, AlgoMSTRepair, 32, withWeights, 8},
		{FamilyExpander, SchedSync, AlgoMSTRepair, 48, calm, 4},
		{FamilyExpander, SchedSync, AlgoMSTRepair, 48, withWeights, 8},
		{FamilyGNM, SchedSync, AlgoSTRepair, 32, storm, 8},
		{FamilyGNM, SchedAsync, AlgoSTRepair, 32, storm, 8},
		{FamilyExpander, SchedSync, AlgoSTRepair, 48, calm, 4},
	}
}

// TestStormPropertyManySeeds is the concurrent-repair correctness sweep:
// across 56 (variant, seed) cells, a generated fault plan — partitions,
// bursts, targeted deletions, heals, overlapping repair waves — must leave
// a structure that validates against a from-scratch reference (Kruskal MSF
// for the weighted algorithms, union-find spanning forest for the
// unweighted ones; the check runs inside the trial). Each cell also runs
// at 1 and 4 shards and the serialized metrics must be byte-identical,
// the report-level determinism contract under concurrent waves.
func TestStormPropertyManySeeds(t *testing.T) {
	const seedsPerVariant = 8
	variants := stormVariants()
	if len(variants)*seedsPerVariant < 50 {
		t.Fatalf("sweep shrank below 50 cells: %d", len(variants)*seedsPerVariant)
	}
	for vi, v := range variants {
		plan := v.plan
		spec := Spec{
			Name:   fmt.Sprintf("prop/%s/%s/%s/%d", v.algo, v.family, v.sched, vi),
			Family: v.family, N: v.n,
			Sched:    v.sched,
			Algo:     v.algo,
			Plan:     &plan,
			Wave:     v.wave,
			Watchdog: &WatchdogSpec{StallTime: 1 << 21, MaxTime: 1 << 33},
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		for s := 0; s < seedsPerVariant; s++ {
			seed := uint64(vi)<<32 | uint64(s+1)*0x9e3779b9
			m1, _, err := RunTrialShards(spec, seed, 1)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec.Name, seed, err)
			}
			if !m1.Valid {
				t.Errorf("%s seed %d: storm left an invalid structure", spec.Name, seed)
				continue
			}
			if m1.Repairs == 0 {
				t.Errorf("%s seed %d: plan launched no repairs — sweep lost its teeth", spec.Name, seed)
			}
			m4, _, err := RunTrialShards(spec, seed, 4)
			if err != nil {
				t.Fatalf("%s seed %d shards=4: %v", spec.Name, seed, err)
			}
			b1, _ := json.Marshal(m1)
			b4, _ := json.Marshal(m4)
			if !bytes.Equal(b1, b4) {
				t.Errorf("%s seed %d: sharded metrics diverge:\n 1: %s\n 4: %s", spec.Name, seed, b1, b4)
			}
		}
	}
}

// TestStormAmortizedAccounting pins the cost-accounting surface the storm
// adds to TrialMetrics: repair counts, wave counts and the per-repair
// amortization are internally consistent.
func TestStormAmortizedAccounting(t *testing.T) {
	spec := Spec{
		Name:   "prop/accounting",
		Family: FamilyGNM, N: 48,
		Sched: SchedSync,
		Algo:  AlgoMSTRepair,
		Plan: &faultplan.Plan{
			Partitions: 2, PartitionSize: 6, Heals: 6,
			TreeEdgeDeletes: 6, Deletes: 6, Inserts: 6, WeightChanges: 6,
		},
		Wave: 8,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	m, _, err := RunTrialShards(spec, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid {
		t.Fatal("storm left an invalid MSF")
	}
	if m.Repairs <= 0 || m.RepairWaves <= 0 {
		t.Fatalf("missing storm accounting: repairs=%d waves=%d", m.Repairs, m.RepairWaves)
	}
	if m.RepairWaves > m.Repairs {
		t.Fatalf("more waves than repairs: %d > %d", m.RepairWaves, m.Repairs)
	}
	if m.MsgsPerRepair <= 0 || m.BitsPerRepair <= 0 {
		t.Fatalf("amortized costs not populated: msgs/repair=%v bits/repair=%v",
			m.MsgsPerRepair, m.BitsPerRepair)
	}
	wantMsgs := float64(m.Messages) / float64(m.Repairs)
	if diff := m.MsgsPerRepair - wantMsgs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("msgs/repair %v inconsistent with messages/repairs = %v", m.MsgsPerRepair, wantMsgs)
	}
}
