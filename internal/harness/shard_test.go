package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// smallBuiltinSpecs returns the builtin suite minus the production-scale
// stress scenarios: the cross-check sweeps every algorithm, family and
// scheduler in the registry without paying 100k-node runtimes per shard
// count.
func smallBuiltinSpecs(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, s := range Builtin().Specs() {
		if s.N <= 1000 {
			specs = append(specs, s)
		}
	}
	if len(specs) < 15 {
		t.Fatalf("only %d small scenarios — registry shrank?", len(specs))
	}
	return specs
}

// TestShardedReportsByteIdentical is the suite-level determinism contract:
// a full seeded sweep serialized through the canonical report marshaller
// produces byte-identical output at shard counts 1, 2 and 4. This is the
// same property `kkt bench --shards N` exposes, checked in-process.
func TestShardedReportsByteIdentical(t *testing.T) {
	specs := smallBuiltinSpecs(t)
	marshal := func(shards int) []byte {
		cfg := RunConfig{Trials: 2, Seed: 3, Shards: shards}
		report := NewReport("crosscheck", cfg, RunAll(specs, cfg))
		blob, err := report.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	want := marshal(1)
	for _, shards := range []int{2, 4} {
		got := marshal(shards)
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%d: report bytes differ from unsharded run (len %d vs %d)",
				shards, len(got), len(want))
		}
	}
}

// TestShardedScaleScenarioValid runs one mid-size sharded build end to end
// with validation — the -race CI scenario (small enough for instrumented
// builds, big enough that every shard owns real protocol work).
func TestShardedScaleScenarioValid(t *testing.T) {
	spec := Spec{
		Name:   "crosscheck/gnm-2k",
		Family: FamilyGNM, N: 2000,
		Sched: SchedSync,
		Algo:  AlgoMSTBuildAdaptive,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	m4, _, err := RunTrialShards(spec, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !m4.Valid {
		t.Fatal("sharded 2k-node MST build failed validation")
	}
	if testing.Short() {
		return
	}
	m1, _, err := RunTrialShards(spec, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(m1)
	b4, _ := json.Marshal(m4)
	if !bytes.Equal(b1, b4) {
		t.Fatalf("sharded metrics diverge:\n 1: %s\n 4: %s", b1, b4)
	}
}

// TestAsyncShardedScaleScenarioValid is TestShardedScaleScenarioValid for
// the windowed async engine: one mid-size asynchronous MST build on 4
// shards, validated and cross-checked byte-for-byte against the
// single-shard run. Also the async -race CI scenario's in-process twin.
func TestAsyncShardedScaleScenarioValid(t *testing.T) {
	spec := Spec{
		Name:   "crosscheck/gnm-2k-async",
		Family: FamilyGNM, N: 2000,
		Sched: SchedAsync,
		Algo:  AlgoMSTBuildAdaptive,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	m4, _, err := RunTrialShards(spec, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !m4.Valid {
		t.Fatal("async sharded 2k-node MST build failed validation")
	}
	if m4.Shards != 4 {
		t.Fatalf("effective shard count %d, want 4 — async trials must not silently fall back", m4.Shards)
	}
	if testing.Short() {
		return
	}
	m1, _, err := RunTrialShards(spec, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(m1)
	b4, _ := json.Marshal(m4)
	if !bytes.Equal(b1, b4) {
		t.Fatalf("async sharded metrics diverge:\n 1: %s\n 4: %s", b1, b4)
	}
}

// TestEffectiveShardCountClamped: TrialMetrics.Shards reports what the
// engine ran on, not what was requested — a request beyond the node count
// clamps, and the clamp must be visible.
func TestEffectiveShardCountClamped(t *testing.T) {
	spec := Spec{
		Name:   "crosscheck/tiny-ring",
		Family: FamilyRing, N: 16,
		Sched: SchedSync,
		Algo:  AlgoFlood,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	m, _, err := RunTrialShards(spec, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 16 {
		t.Fatalf("effective shard count %d, want the node-count clamp 16", m.Shards)
	}
}
