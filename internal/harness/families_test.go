package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestScalingFamilyScenariosShardIdentical runs the three scaling-family
// build scenarios (powerlaw / geometric / hypercube) end to end: each must
// produce a validated MSF, record the generated edge count, and report
// byte-identical metrics at shard counts 1 and 4 — the same contract the
// CLI exposes as `kkt run --shards N`.
func TestScalingFamilyScenariosShardIdentical(t *testing.T) {
	reg := Builtin()
	for _, name := range []string{
		"mst-build/powerlaw-2k/sync",
		"mst-build/geometric-2k/sync",
		"mst-build/hypercube-4k/sync",
	} {
		spec, ok := reg.Get(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		m4, _, err := RunTrialShards(spec, 11, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !m4.Valid {
			t.Errorf("%s: MSF failed validation", name)
		}
		if m4.GraphEdges < spec.N-1 {
			t.Errorf("%s: graph_edges=%d, want >= n-1", name, m4.GraphEdges)
		}
		if spec.Family == FamilyHypercube && m4.GraphEdges != spec.N*12/2 {
			t.Errorf("%s: graph_edges=%d, want exactly n·d/2 = %d", name, m4.GraphEdges, spec.N*12/2)
		}
		if testing.Short() {
			continue
		}
		m1, _, err := RunTrialShards(spec, 11, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b1, _ := json.Marshal(m1)
		b4, _ := json.Marshal(m4)
		if !bytes.Equal(b1, b4) {
			t.Errorf("%s: sharded metrics diverge:\n 1: %s\n 4: %s", name, b1, b4)
		}
	}
}
