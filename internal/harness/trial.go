package harness

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"kkt/internal/congest"
	"kkt/internal/flood"
	"kkt/internal/ghs"
	"kkt/internal/graph"
	"kkt/internal/mst"
	"kkt/internal/rng"
	"kkt/internal/spanning"
	"kkt/internal/st"
	"kkt/internal/tree"
)

// trialSeed derives the seed of one trial from the base seed, the
// scenario name and the trial index (FNV-style mix + splitmix64 finalizer,
// never zero).
func trialSeed(base uint64, name string, trial int) uint64 {
	h := base ^ 0xcbf29ce484222325
	for _, b := range []byte(name) {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	h ^= (uint64(trial) + 1) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 1
	}
	return h
}

// buildGraph constructs the scenario topology from the trial's stream.
// workers parallelizes generation where a generator supports it (GNM's
// chord checks); generated graphs are byte-identical at any worker count,
// so the trial's shard count doubles as the generation fan-out.
func buildGraph(s Spec, r *rng.RNG, workers int) *graph.Graph {
	w := graph.UniformWeights(r.Split(), s.MaxRaw)
	switch s.Family {
	case FamilyGNM:
		return graph.GNMWorkers(r, s.N, s.M, s.MaxRaw, w, workers)
	case FamilyRing:
		return graph.Ring(s.N, s.MaxRaw, w)
	case FamilyGrid:
		side := int(math.Sqrt(float64(s.N)))
		return graph.Grid(side, side, s.MaxRaw, w)
	case FamilyExpander:
		return graph.Expander(r, s.N, s.Degree, s.MaxRaw, w)
	case FamilyComplete:
		return graph.Complete(s.N, s.MaxRaw, w)
	case FamilyTree:
		return graph.RandomTree(r, s.N, s.MaxRaw, w)
	case FamilyPowerLaw:
		// Sequential by construction (each attachment depends on the
		// degrees the previous ones produced), so worker-count identity is
		// trivial.
		return graph.PreferentialAttachment(r, s.N, s.Degree, s.MaxRaw, w)
	case FamilyGeometric:
		return graph.RandomGeometricWorkers(r, s.N, s.Radius, s.MaxRaw, w, workers)
	case FamilyHypercube:
		// Deterministic shape; only the weight stream is seeded.
		return graph.HypercubeN(s.N, s.MaxRaw, w)
	default:
		panic(fmt.Sprintf("harness: unknown family %q", s.Family))
	}
}

// RunTrial executes one single-threaded seeded trial of the scenario; see
// RunTrialShards.
func RunTrial(spec Spec, seed uint64) (TrialMetrics, map[string]congest.KindCount, error) {
	return RunTrialShards(spec, seed, 1)
}

// RunTrialShards executes one seeded trial on the given shard count with
// the default (continuation) driver model; see RunTrialDrivers.
func RunTrialShards(spec Spec, seed uint64, shards int) (TrialMetrics, map[string]congest.KindCount, error) {
	return RunTrialDrivers(spec, seed, shards, congest.DriverCont)
}

// RunTrialDrivers executes one seeded trial of the scenario on the given
// shard count and per-fragment driver model, and returns its metrics plus
// the per-kind traffic breakdown. Shard count and driver model are both
// execution knobs only — the engine's determinism contracts guarantee
// identical metrics at any value of either — so the seed alone still
// identifies the trial. Specs must already be validated (registry
// scenarios are). Protocol panics are converted to errors so one bad
// trial cannot take down a bench sweep.
func RunTrialDrivers(spec Spec, seed uint64, shards int, drivers congest.DriverMode) (TrialMetrics, map[string]congest.KindCount, error) {
	return RunTrialObserved(spec, seed, shards, drivers, nil)
}

// RunTrialObserved is RunTrialDrivers with an optional trace observer
// attached to the trial's network (nil disables observation). The observer
// is passive — metrics and reports are byte-identical with it on or off;
// see congest.Observer.
func RunTrialObserved(spec Spec, seed uint64, shards int, drivers congest.DriverMode, obs congest.Observer) (TrialMetrics, map[string]congest.KindCount, error) {
	return RunTrialContext(nil, spec, seed, shards, drivers, obs)
}

// RunTrialContext is RunTrialObserved with a cancellation context plumbed
// into the trial's engine: once ctx is done, the trial aborts at the next
// delivery batch with a structured congest.WatchdogError instead of
// running to completion. A nil ctx disables cancellation. Cancellation is
// the one wall-clock escape hatch — a cancelled trial reports an error,
// never metrics, so it cannot perturb seeded reports.
func RunTrialContext(ctx context.Context, spec Spec, seed uint64, shards int, drivers congest.DriverMode, obs congest.Observer) (m TrialMetrics, byKind map[string]congest.KindCount, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: trial panicked: %v", r)
		}
	}()
	if shards < 1 {
		shards = 1
	}
	s := spec.withDefaults()
	heapBefore := heapSysNow()
	r := rng.New(seed)
	g := buildGraph(s, r.Split(), shards)

	var opts []congest.Option
	opts = append(opts, congest.WithSeed(seed))
	if s.Sched == SchedAsync {
		opts = append(opts, congest.WithAsync(s.MaxDelay))
	}
	if shards > 1 {
		opts = append(opts, congest.WithShards(shards))
	}
	if obs != nil {
		opts = append(opts, congest.WithObserver(obs))
	}
	if s.Watchdog != nil {
		opts = append(opts, congest.WithWatchdog(congest.Watchdog{
			MaxTime:     s.Watchdog.MaxTime,
			StallTime:   s.Watchdog.StallTime,
			SessionTime: s.Watchdog.SessionTime,
		}))
	}
	if ctx != nil {
		opts = append(opts, congest.WithContext(ctx))
	}
	nw := congest.NewNetwork(g, opts...)
	pr := tree.Attach(nw)

	// Record the shard count the engine actually runs on (the partition
	// clamps to the node count), never the requested one: a fallback must
	// be visible to callers, not silently reported away.
	m = TrialMetrics{Seed: seed, Shards: nw.Lanes(), GraphEdges: g.M()}
	switch s.Algo {
	case AlgoMSTBuildAdaptive, AlgoMSTBuildFixed:
		cfg := mst.DefaultBuild(seed)
		cfg.Drivers = drivers
		if s.Algo == AlgoMSTBuildFixed {
			cfg.Policy = mst.Fixed
			cfg.C = 1 // the fixed budget is already worst-case; keep it affordable
		}
		res, rerr := mst.Build(nw, pr, cfg)
		if rerr != nil {
			return m, nil, rerr
		}
		m.Messages, m.Bits, m.Time = res.Messages, res.Bits, res.Rounds
		m.Phases = len(res.Phases)
		m.PhaseCosts = phaseCostsMST(res.Phases)
		m.ForestEdges = len(res.Forest)
		m.Valid = spanning.IsMSF(g, forestIndices(g, res.Forest)) == nil
	case AlgoGHS:
		gp := ghs.Attach(nw)
		res, rerr := ghs.BuildDrivers(nw, pr, gp, drivers)
		if rerr != nil {
			return m, nil, rerr
		}
		m.Messages, m.Bits, m.Time = res.Messages, res.Bits, res.Rounds
		m.Phases = res.Phases
		m.PhaseCosts = phaseCostsGHS(res.PhaseStats)
		m.ForestEdges = len(res.Forest)
		m.Valid = spanning.IsMSF(g, forestIndices(g, res.Forest)) == nil
	case AlgoSTBuild:
		sp := st.Attach(nw, pr)
		stCfg := st.DefaultBuild(seed)
		stCfg.Drivers = drivers
		res, rerr := st.Build(nw, pr, sp, stCfg)
		if rerr != nil {
			return m, nil, rerr
		}
		m.Messages, m.Bits, m.Time = res.Messages, res.Bits, res.Rounds
		m.Phases = len(res.Phases)
		m.PhaseCosts = phaseCostsST(res.Phases)
		m.ForestEdges = len(res.Forest)
		m.Valid = spanning.IsSpanningForest(g, forestIndices(g, res.Forest)) == nil
	case AlgoFlood:
		fp := flood.Attach(nw)
		res, rerr := fp.Build()
		if rerr != nil {
			return m, nil, rerr
		}
		m.Messages, m.Bits, m.Time = res.Messages, res.Bits, res.Rounds
		m.ForestEdges = len(res.Forest)
		m.Valid = spanning.IsSpanningForest(g, forestIndices(g, res.Forest)) == nil
	case AlgoMSTRepair:
		if s.Plan != nil {
			return runConcurrentStorm(s, nw, pr, g, seed, true, heapBefore)
		}
		return runRepairStorm(s, nw, pr, g, r, seed, shards, true, heapBefore)
	case AlgoSTRepair:
		if s.Plan != nil {
			return runConcurrentStorm(s, nw, pr, g, seed, false, heapBefore)
		}
		return runRepairStorm(s, nw, pr, g, r, seed, shards, false, heapBefore)
	case AlgoDebugStall:
		return m, nil, runDebugStall(nw)
	default:
		return m, nil, fmt.Errorf("harness: unknown algorithm %q", s.Algo)
	}
	m.StagedDrops = nw.StagedDrops()
	m.AsyncConflicts = nw.AsyncConflicts()
	captureFootprint(&m, nw, heapBefore)
	return m, nw.Counters().ByKind, nil
}

// phaseCostsMST/phaseCostsST/phaseCostsGHS map the protocol layers'
// per-phase statistics onto the serialized timeline.
func phaseCostsMST(phases []mst.PhaseStat) []PhaseCost {
	out := make([]PhaseCost, len(phases))
	for i, ps := range phases {
		out[i] = PhaseCost{Phase: i + 1, Fragments: ps.Fragments, Merges: ps.Merges,
			Messages: ps.Messages, Bits: ps.Bits, Rounds: ps.Rounds, Classes: ps.Classes}
	}
	return out
}

func phaseCostsST(phases []st.PhaseStat) []PhaseCost {
	out := make([]PhaseCost, len(phases))
	for i, ps := range phases {
		out[i] = PhaseCost{Phase: i + 1, Fragments: ps.Fragments, Merges: ps.Merges,
			Messages: ps.Messages, Bits: ps.Bits, Rounds: ps.Rounds, Classes: ps.Classes}
	}
	return out
}

func phaseCostsGHS(phases []ghs.PhaseStat) []PhaseCost {
	out := make([]PhaseCost, len(phases))
	for i, ps := range phases {
		out[i] = PhaseCost{Phase: i + 1, Fragments: ps.Fragments, Merges: ps.Merges,
			Messages: ps.Messages, Bits: ps.Bits, Rounds: ps.Rounds, Classes: ps.Classes}
	}
	return out
}

// heapSysNow samples the Go heap footprint (runtime.MemStats.HeapSys).
func heapSysNow() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapSys
}

// captureFootprint records the trial's driver and heap high-water marks —
// the non-serialized TrialMetrics fields gating the continuation driver
// model's memory claim. HeapSysMB is the trial's own heap growth: the
// delta from the before-trial sample, clamped at zero (a shrinking heap —
// scavenged pages returned mid-run — reports 0, not an underflowed value).
func captureFootprint(m *TrialMetrics, nw *congest.Network, heapBefore uint64) {
	ds := nw.DriverStats()
	m.PeakDriverGoroutines = ds.PeakGoroutines
	m.PeakDriverTasks = ds.PeakTasks
	m.PeakLiveDrivers = ds.PeakLive
	if after := heapSysNow(); after > heapBefore {
		m.HeapSysMB = (after - heapBefore) >> 20
	}
}

// runRepairStorm seeds the network with the reference forest (setup is
// uncharged, like the paper's "a spanning forest is maintained"
// precondition), then applies the fault script in seeded random order and
// meters only the repair traffic.
func runRepairStorm(s Spec, nw *congest.Network, pr *tree.Protocol, g *graph.Graph, r *rng.RNG, seed uint64, shards int, weighted bool, heapBefore uint64) (TrialMetrics, map[string]congest.KindCount, error) {
	m := TrialMetrics{Seed: seed, Shards: nw.Lanes(), GraphEdges: g.M(), Actions: make(map[string]int)}

	var refForest []int
	if weighted {
		refForest = spanning.Kruskal(g)
	} else {
		refForest = spanning.BFSForest(g)
	}
	forest := make([][2]congest.NodeID, len(refForest))
	for i, ei := range refForest {
		e := g.Edge(ei)
		forest[i] = [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)}
	}
	nw.SetForest(forest)

	// The measured section starts after setup.
	base := nw.Counters()
	baseTime := nw.Now()

	ops := make([]int, 0, s.Faults.Total())
	const (
		opDelete = iota
		opInsert
		opWeightChange
	)
	for i := 0; i < s.Faults.Deletes; i++ {
		ops = append(ops, opDelete)
	}
	for i := 0; i < s.Faults.Inserts; i++ {
		ops = append(ops, opInsert)
	}
	for i := 0; i < s.Faults.WeightChanges; i++ {
		ops = append(ops, opWeightChange)
	}
	r.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })

	for opIdx, op := range ops {
		opSeed := seed ^ uint64(opIdx+1)*0xd6e8feb86659fd93
		switch op {
		case opDelete:
			a, b, ok := pickLink(nw, r)
			if !ok {
				m.Actions["skipped"]++
				continue
			}
			var rep repairOutcome
			var rerr error
			if weighted {
				rep, rerr = asOutcome(mst.Delete(nw, pr, a, b, mst.DefaultRepair(opSeed)))
			} else {
				rep, rerr = asSTOutcome(st.Delete(nw, pr, a, b, st.DefaultRepair(opSeed)))
			}
			if rerr != nil {
				return m, nil, rerr
			}
			m.Actions[rep.action]++
		case opInsert:
			a, b, ok := pickNonLink(nw, r)
			if !ok {
				m.Actions["skipped"]++
				continue
			}
			var rep repairOutcome
			var rerr error
			if weighted {
				raw := r.Range(1, nw.MaxRaw())
				rep, rerr = asOutcome(mst.Insert(nw, pr, a, b, raw, mst.DefaultRepair(opSeed)))
			} else {
				rep, rerr = asSTOutcome(st.Insert(nw, pr, a, b, st.DefaultRepair(opSeed)))
			}
			if rerr != nil {
				return m, nil, rerr
			}
			m.Actions[rep.action]++
		case opWeightChange:
			a, b, ok := pickLink(nw, r)
			if !ok {
				m.Actions["skipped"]++
				continue
			}
			raw := r.Range(1, nw.MaxRaw())
			rep, rerr := asOutcome(mst.WeightChange(nw, pr, a, b, raw, mst.DefaultRepair(opSeed)))
			if rerr != nil {
				return m, nil, rerr
			}
			m.Actions[rep.action]++
		}
	}

	delta := nw.CountersSince(base)
	m.Messages, m.Bits = delta.Messages, delta.Bits
	m.Time = nw.Now() - baseTime
	m.StagedDrops = nw.StagedDrops()
	m.AsyncConflicts = nw.AsyncConflicts()
	captureFootprint(&m, nw, heapBefore)

	// Reference check against the final (mutated) topology.
	final, marked := graphFromNetwork(nw)
	m.ForestEdges = len(marked)
	idx := forestIndices(final, marked)
	if weighted {
		m.Valid = spanning.IsMSF(final, idx) == nil
	} else {
		m.Valid = spanning.IsSpanningForest(final, idx) == nil
	}
	return m, delta.ByKind, nil
}

// repairOutcome normalizes mst.Report / st.Report for tallying.
type repairOutcome struct{ action string }

func asOutcome(rep mst.Report, err error) (repairOutcome, error) {
	return repairOutcome{action: rep.Action.String()}, err
}

func asSTOutcome(rep st.Report, err error) (repairOutcome, error) {
	return repairOutcome{action: rep.Action.String()}, err
}

// pickLink draws a uniformly random node with at least one link, then a
// uniformly random incident link. It fails only if the network has no
// links left.
func pickLink(nw *congest.Network, r *rng.RNG) (congest.NodeID, congest.NodeID, bool) {
	for attempt := 0; attempt < 16*nw.N(); attempt++ {
		v := congest.NodeID(r.Intn(nw.N()) + 1)
		node := nw.Node(v)
		if node.Degree() == 0 {
			continue
		}
		he := node.Edges[r.Intn(node.Degree())]
		return v, he.Neighbor, true
	}
	return 0, 0, false
}

// pickNonLink draws a uniformly random absent link. It fails on (nearly)
// complete graphs after a bounded number of attempts.
func pickNonLink(nw *congest.Network, r *rng.RNG) (congest.NodeID, congest.NodeID, bool) {
	for attempt := 0; attempt < 16*nw.N(); attempt++ {
		a := congest.NodeID(r.Intn(nw.N()) + 1)
		b := congest.NodeID(r.Intn(nw.N()) + 1)
		if a == b || nw.Node(a).EdgeTo(b) != nil {
			continue
		}
		return a, b, true
	}
	return 0, 0, false
}

// graphFromNetwork reconstructs a graph.Graph from the network's live
// topology (which repair storms mutate away from the generated graph) and
// returns it with the marked forest.
func graphFromNetwork(nw *congest.Network) (*graph.Graph, [][2]congest.NodeID) {
	g := graph.MustNew(nw.N(), nw.MaxRaw())
	for v := 1; v <= nw.N(); v++ {
		node := nw.Node(congest.NodeID(v))
		for i := range node.Edges {
			he := &node.Edges[i]
			if uint32(he.Neighbor) > uint32(v) {
				g.MustAddEdge(uint32(v), uint32(he.Neighbor), he.Raw)
			}
		}
	}
	return g, nw.MarkedEdges()
}

// forestIndices maps endpoint pairs to edge indices in g; unknown edges
// map to -1 (which the spanning checks reject).
func forestIndices(g *graph.Graph, forest [][2]congest.NodeID) []int {
	idx := make([]int, len(forest))
	for i, e := range forest {
		idx[i] = g.EdgeIndex(uint32(e[0]), uint32(e[1]))
	}
	return idx
}
