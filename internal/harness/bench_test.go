package harness

import "testing"

// BenchmarkRepairStorm measures one full repair-storm trial — forest
// setup, a Delete/Insert/WeightChange fault script against the maintained
// MSF under the async scheduler, and the reference check.
func BenchmarkRepairStorm(b *testing.B) {
	spec := Spec{
		Name:   "bench/mst-repair",
		Family: FamilyGNM, N: 48,
		Sched:  SchedAsync,
		Algo:   AlgoMSTRepair,
		Faults: FaultScript{Deletes: 8, Inserts: 8, WeightChanges: 8},
	}
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunTrial(spec, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
