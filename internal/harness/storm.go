package harness

import (
	"kkt/internal/admit"
	"kkt/internal/congest"
	"kkt/internal/faultplan"
	"kkt/internal/graph"
	"kkt/internal/mst"
	"kkt/internal/spanning"
	"kkt/internal/st"
	"kkt/internal/tree"
)

// runConcurrentStorm is the fault-plan counterpart of runRepairStorm: the
// network is seeded with the reference forest (uncharged setup), the plan
// is compiled against the generated graph, and the event list drains
// through the concurrent-repair admission queue in waves. Only repair
// traffic is metered; the amortized per-repair costs divide it by the
// number of launched repair drivers.
func runConcurrentStorm(s Spec, nw *congest.Network, pr *tree.Protocol, g *graph.Graph, seed uint64, weighted bool, heapBefore uint64) (TrialMetrics, map[string]congest.KindCount, error) {
	m := TrialMetrics{Seed: seed, Shards: nw.Lanes(), GraphEdges: g.M()}

	var refForest []int
	if weighted {
		refForest = spanning.Kruskal(g)
	} else {
		refForest = spanning.BFSForest(g)
	}
	forest := make([][2]congest.NodeID, len(refForest))
	for i, ei := range refForest {
		e := g.Edge(ei)
		forest[i] = [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)}
	}
	nw.SetForest(forest)

	events := faultplan.Compile(*s.Plan, g, refForest, seed)

	// The measured section starts after setup and plan compilation.
	base := nw.Counters()
	baseTime := nw.Now()

	cfg := admit.Config{Wave: s.Wave, Seed: seed}
	var (
		stats admit.Stats
		rerr  error
	)
	if weighted {
		stats, rerr = admit.Run(nw, events, mst.NewStormLauncher(nw, pr, mst.DefaultRepair(seed)), cfg)
	} else {
		stats, rerr = admit.Run(nw, events, st.NewStormLauncher(nw, pr, st.DefaultRepair(seed)), cfg)
	}
	if rerr != nil {
		return m, nil, rerr
	}

	delta := nw.CountersSince(base)
	m.Messages, m.Bits = delta.Messages, delta.Bits
	m.Time = nw.Now() - baseTime
	m.Actions = stats.Actions
	m.Repairs = stats.Repairs
	m.RepairWaves = stats.Waves
	m.RepairRetries = stats.Retries
	if stats.Repairs > 0 {
		m.MsgsPerRepair = float64(delta.Messages) / float64(stats.Repairs)
		m.BitsPerRepair = float64(delta.Bits) / float64(stats.Repairs)
	}
	m.StagedDrops = nw.StagedDrops()
	m.AsyncConflicts = nw.AsyncConflicts()
	captureFootprint(&m, nw, heapBefore)

	// Reference check against the final (mutated) topology.
	final, marked := graphFromNetwork(nw)
	m.ForestEdges = len(marked)
	idx := forestIndices(final, marked)
	if weighted {
		m.Valid = spanning.IsMSF(final, idx) == nil
	} else {
		m.Valid = spanning.IsSpanningForest(final, idx) == nil
	}
	return m, delta.ByKind, nil
}

// runDebugStall wires a deliberate livelock — a message bouncing between
// nodes 1 and 2 forever while a driver awaits a session nobody completes —
// and runs it. With the scenario's mandatory watchdog armed, Run fails
// with a structured *congest.WatchdogError; that error is the trial's
// entire point.
func runDebugStall(nw *congest.Network) error {
	kind := congest.Kind("debug.stall")
	nw.RegisterHandler(kind, func(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
		nw.Send(node.ID, msg.From, kind, msg.Session, 8, nil)
	})
	nw.Spawn("debug-stall", func(p *congest.Proc) error {
		sid := nw.NewSession(nil)
		nw.Send(1, 2, kind, sid, 8, nil)
		_, err := p.Await(sid)
		return err
	})
	return nw.Run()
}
