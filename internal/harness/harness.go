package harness

import (
	"fmt"
	"math"

	"kkt/internal/faultplan"
	"kkt/internal/graph"
)

// Graph family names understood by Spec.Family.
const (
	FamilyGNM       = "gnm"       // connected Erdős–Rényi G(n,m), m = 3n by default
	FamilyRing      = "ring"      // the n-cycle: constant degree, linear diameter
	FamilyGrid      = "grid"      // √n × √n grid
	FamilyExpander  = "expander"  // ring + random chords: constant degree, log diameter
	FamilyComplete  = "complete"  // K_n: the dense extreme
	FamilyTree      = "tree"      // uniformly random tree: m = n-1, no slack
	FamilyPowerLaw  = "powerlaw"  // preferential attachment: heavy-tailed degrees
	FamilyGeometric = "geometric" // random geometric in the unit square, m ~ n log n
	FamilyHypercube = "hypercube" // d-dimensional hypercube: n = 2^d, m = n·d/2
)

// Scheduler names understood by Spec.Sched.
const (
	SchedSync  = "sync"  // lockstep rounds
	SchedAsync = "async" // seeded per-message delays, FIFO per link
)

// Algorithm names understood by Spec.Algo.
const (
	AlgoMSTBuildAdaptive = "mst-build"       // Build MST, adaptive stop (paper §3.3)
	AlgoMSTBuildFixed    = "mst-build-fixed" // Build MST, full fixed phase budget
	AlgoMSTRepair        = "mst-repair"      // impromptu MSF repair storm (paper §3.2)
	AlgoSTBuild          = "st-build"        // Build ST via FindAny-C (paper §4.2)
	AlgoSTRepair         = "st-repair"       // impromptu ST repair storm (paper §4.3)
	AlgoGHS              = "ghs"             // Gallager–Humblet–Spira baseline
	AlgoFlood            = "flood"           // Θ(m) flooding baseline
	// AlgoDebugStall wires a deliberate engine livelock; it exists to
	// exercise the watchdog end to end (env-gated, never in the default
	// suite).
	AlgoDebugStall = "debug-stall"
)

// FaultScript is the declarative dynamic workload of a repair scenario:
// how many of each topology change a trial applies, in seeded random
// interleaving, against the maintained forest.
type FaultScript struct {
	Deletes       int `json:"deletes,omitempty"`
	Inserts       int `json:"inserts,omitempty"`
	WeightChanges int `json:"weight_changes,omitempty"`
}

// Total returns the number of operations in the script.
func (f FaultScript) Total() int { return f.Deletes + f.Inserts + f.WeightChanges }

// WatchdogSpec declares the engine watchdog budgets of a scenario, in
// scheduler-clock units (see congest.Watchdog). Zero fields are unbounded.
type WatchdogSpec struct {
	MaxTime     int64 `json:"max_time,omitempty"`
	StallTime   int64 `json:"stall_time,omitempty"`
	SessionTime int64 `json:"session_time,omitempty"`
}

// Spec declares one scenario: everything needed to run a trial except the
// seed. Specs are plain data so they serialize into reports and CLI
// listings.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Family and N pick the topology; MaxRaw bounds raw edge weights
	// (default 1024). M (gnm only) overrides the edge count, default 3n.
	// Degree sets the target degree of the expander (default 4) and the
	// attachment count of the powerlaw family (default 3). Radius
	// (geometric only) sets the connection radius in the unit square,
	// default graph.GeometricRadius(n) ~ sqrt(3·ln n / (π·n)).
	Family string  `json:"family"`
	N      int     `json:"n"`
	MaxRaw uint64  `json:"max_raw,omitempty"`
	M      int     `json:"m,omitempty"`
	Degree int     `json:"degree,omitempty"`
	Radius float64 `json:"radius,omitempty"`

	// Sched picks the timing model; MaxDelay (async only) bounds the
	// per-message delay, default 4.
	Sched    string `json:"sched"`
	MaxDelay int64  `json:"max_delay,omitempty"`

	// Algo picks the protocol under test; Faults is its dynamic workload
	// (repair algorithms only).
	Algo   string      `json:"algo"`
	Faults FaultScript `json:"faults,omitzero"`

	// Plan is the adversarial alternative to Faults: a compiled fault plan
	// (targeted deletes, bursts, partition-and-heal) driven through the
	// concurrent-repair admission queue in waves. Repair algorithms take
	// exactly one of Faults or Plan.
	Plan *faultplan.Plan `json:"plan,omitempty"`
	// Wave caps the concurrent repairs per admission wave (Plan scenarios
	// only; default 64).
	Wave int `json:"wave,omitempty"`

	// Watchdog arms the engine watchdog for every Run of the trial.
	Watchdog *WatchdogSpec `json:"watchdog,omitempty"`
}

// withDefaults returns the spec with unset tunables filled in.
func (s Spec) withDefaults() Spec {
	if s.MaxRaw == 0 {
		s.MaxRaw = 1024
	}
	if s.Family == FamilyGNM && s.M == 0 {
		s.M = 3 * s.N
	}
	if s.Family == FamilyExpander && s.Degree == 0 {
		s.Degree = 4
	}
	if s.Family == FamilyPowerLaw && s.Degree == 0 {
		s.Degree = 3
	}
	if s.Family == FamilyGeometric && s.Radius == 0 {
		s.Radius = graph.GeometricRadius(s.N)
	}
	if s.Sched == SchedAsync && s.MaxDelay == 0 {
		s.MaxDelay = 4
	}
	return s
}

// Validate rejects malformed specs with a descriptive error. It checks
// the spec as a run will see it — with defaults applied — so a validated
// spec never fails on a defaulted tunable (e.g. gnm's default m=3n is out
// of range for n <= 6).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("harness: spec has no name")
	}
	if s.N < 2 {
		return fmt.Errorf("harness: %s: n=%d, want >= 2", s.Name, s.N)
	}
	s = s.withDefaults()
	switch s.Family {
	case FamilyGNM:
		if s.M < s.N-1 || s.M > s.N*(s.N-1)/2 {
			return fmt.Errorf("harness: %s: gnm m=%d outside [n-1, n(n-1)/2]", s.Name, s.M)
		}
	case FamilyRing:
		if s.N < 3 {
			return fmt.Errorf("harness: %s: ring needs n >= 3", s.Name)
		}
	case FamilyGrid:
		r := int(math.Sqrt(float64(s.N)))
		if r*r != s.N {
			return fmt.Errorf("harness: %s: grid needs a square n, got %d", s.Name, s.N)
		}
	case FamilyExpander:
		if s.N < 3 {
			return fmt.Errorf("harness: %s: expander needs n >= 3", s.Name)
		}
		if s.Degree < 4 || s.Degree%2 != 0 {
			return fmt.Errorf("harness: %s: expander degree %d, want even and >= 4", s.Name, s.Degree)
		}
	case FamilyPowerLaw:
		if s.N < 2 {
			return fmt.Errorf("harness: %s: powerlaw needs n >= 2", s.Name)
		}
		if s.Degree < 1 {
			return fmt.Errorf("harness: %s: powerlaw degree %d, want >= 1", s.Name, s.Degree)
		}
	case FamilyGeometric:
		if s.Radius <= 0 || s.Radius > 1.5 {
			return fmt.Errorf("harness: %s: geometric radius %v outside (0, 1.5]", s.Name, s.Radius)
		}
	case FamilyHypercube:
		if s.N&(s.N-1) != 0 {
			return fmt.Errorf("harness: %s: hypercube needs a power-of-two n, got %d", s.Name, s.N)
		}
	case FamilyComplete, FamilyTree:
	default:
		return fmt.Errorf("harness: %s: unknown family %q", s.Name, s.Family)
	}
	switch s.Sched {
	case SchedSync, SchedAsync:
	default:
		return fmt.Errorf("harness: %s: unknown scheduler %q", s.Name, s.Sched)
	}
	if s.Plan != nil {
		if err := s.Plan.Validate(); err != nil {
			return fmt.Errorf("harness: %s: %v", s.Name, err)
		}
	}
	switch s.Algo {
	case AlgoMSTBuildAdaptive, AlgoMSTBuildFixed, AlgoSTBuild, AlgoGHS, AlgoFlood:
		if s.Faults.Total() != 0 || s.Plan != nil {
			return fmt.Errorf("harness: %s: %s takes no fault workload", s.Name, s.Algo)
		}
	case AlgoMSTRepair:
		if err := s.validateFaultWorkload(); err != nil {
			return err
		}
	case AlgoSTRepair:
		if err := s.validateFaultWorkload(); err != nil {
			return err
		}
		if s.Faults.WeightChanges != 0 || (s.Plan != nil && s.Plan.WeightChanges != 0) {
			return fmt.Errorf("harness: %s: st-repair is unweighted, no weight changes", s.Name)
		}
	case AlgoDebugStall:
		if s.Watchdog == nil {
			return fmt.Errorf("harness: %s: debug-stall without a watchdog would hang forever", s.Name)
		}
	default:
		return fmt.Errorf("harness: %s: unknown algorithm %q", s.Name, s.Algo)
	}
	if s.Wave != 0 && s.Plan == nil {
		return fmt.Errorf("harness: %s: wave is a fault-plan knob; set plan", s.Name)
	}
	if s.Wave < 0 {
		return fmt.Errorf("harness: %s: wave=%d, want >= 0", s.Name, s.Wave)
	}
	return nil
}

// validateFaultWorkload enforces the exactly-one-of Faults/Plan rule for
// repair algorithms.
func (s Spec) validateFaultWorkload() error {
	hasScript := s.Faults.Total() != 0
	hasPlan := s.Plan != nil && !s.Plan.Empty()
	switch {
	case hasScript && hasPlan:
		return fmt.Errorf("harness: %s: set faults or plan, not both", s.Name)
	case !hasScript && !hasPlan:
		return fmt.Errorf("harness: %s: repair scenario needs a fault script or plan", s.Name)
	}
	return nil
}
