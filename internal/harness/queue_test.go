package harness

import (
	"encoding/json"
	"reflect"
	"testing"

	"kkt/internal/admit"
	"kkt/internal/congest"
	"kkt/internal/faultplan"
	"kkt/internal/mst"
	"kkt/internal/rng"
	"kkt/internal/spanning"
	"kkt/internal/tree"
)

// stormNetwork builds one seeded (network, protocol, events) triple for
// the queue equivalence tests: a GNM graph with its Kruskal MSF marked and
// a compiled fault plan against it.
func stormNetwork(t *testing.T, seed uint64) (*congest.Network, *tree.Protocol, []faultplan.Event) {
	t.Helper()
	spec := Spec{
		Name:   "queue-test",
		Family: FamilyGNM, N: 40,
		Sched: SchedSync,
		Algo:  AlgoMSTRepair,
	}
	s := spec.withDefaults()
	r := rng.New(seed)
	g := buildGraph(s, r.Split(), 1)
	nw := congest.NewNetwork(g, congest.WithSeed(seed))
	pr := tree.Attach(nw)
	refForest := spanning.Kruskal(g)
	forest := make([][2]congest.NodeID, len(refForest))
	for i, ei := range refForest {
		e := g.Edge(ei)
		forest[i] = [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)}
	}
	nw.SetForest(forest)
	plan := faultplan.Plan{
		Partitions: 1, PartitionSize: 6, Heals: 4,
		TreeEdgeDeletes: 4, Deletes: 4, Inserts: 4, WeightChanges: 4,
	}
	return nw, pr, faultplan.Compile(plan, g, refForest, seed)
}

// TestQueueSuspendResumeEquivalence drives the same compiled event list
// through admit.Run (the reference) and through an admit.Queue that is
// suspended and resumed via its serialized QueueState after every wave.
// Final stats, actions and the marked forest must be identical: the
// suspension record captures the complete admission schedule.
func TestQueueSuspendResumeEquivalence(t *testing.T) {
	const seed = 0x5eed
	cfg := admit.Config{Wave: 4, Seed: seed}

	refNW, refPR, events := stormNetwork(t, seed)
	refStats, err := admit.Run(refNW, events, mst.NewStormLauncher(refNW, refPR, mst.DefaultRepair(seed)), cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	nw, pr, events2 := stormNetwork(t, seed)
	if !reflect.DeepEqual(events, events2) {
		t.Fatal("fault plan compilation is not deterministic")
	}
	l := mst.NewStormLauncher(nw, pr, mst.DefaultRepair(seed))
	q := admit.NewQueue(cfg)
	q.Push(events2...)
	for q.Pending() > 0 {
		if _, err := q.RunWave(nw, l); err != nil {
			t.Fatalf("wave: %v", err)
		}
		// Round-trip the suspension record through JSON — the checkpoint
		// path — and resume from it.
		blob, err := json.Marshal(q.Suspend())
		if err != nil {
			t.Fatalf("marshal queue state: %v", err)
		}
		var st admit.QueueState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatalf("unmarshal queue state: %v", err)
		}
		q = admit.ResumeQueue(cfg, st)
	}

	if got, want := q.Stats(), refStats; !reflect.DeepEqual(got, want) {
		t.Errorf("stats diverged:\n resumed   %+v\n reference %+v", got, want)
	}
	if got, want := nw.MarkedEdges(), refNW.MarkedEdges(); !reflect.DeepEqual(got, want) {
		t.Errorf("marked forest diverged: %d vs %d edges", len(got), len(want))
	}
}
