package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "x", Family: FamilyGNM, N: 16, Sched: SchedSync, Algo: AlgoFlood}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Family: FamilyGNM, N: 16, Sched: SchedSync, Algo: AlgoFlood},                                                      // no name
		{Name: "x", Family: "torus", N: 16, Sched: SchedSync, Algo: AlgoFlood},                                             // bad family
		{Name: "x", Family: FamilyGrid, N: 15, Sched: SchedSync, Algo: AlgoFlood},                                          // non-square grid
		{Name: "x", Family: FamilyGNM, N: 16, Sched: "lockstep", Algo: AlgoFlood},                                          // bad sched
		{Name: "x", Family: FamilyGNM, N: 16, Sched: SchedSync, Algo: "dijkstra"},                                          // bad algo
		{Name: "x", Family: FamilyGNM, N: 16, Sched: SchedSync, Algo: AlgoMSTRepair},                                       // repair without faults
		{Name: "x", Family: FamilyGNM, N: 16, Sched: SchedSync, Algo: AlgoFlood, Faults: FaultScript{Deletes: 1}},          // faults on a build
		{Name: "x", Family: FamilyGNM, N: 16, Sched: SchedSync, Algo: AlgoSTRepair, Faults: FaultScript{WeightChanges: 1}}, // weighted faults on st
		{Name: "x", Family: FamilyExpander, N: 16, Degree: 5, Sched: SchedSync, Algo: AlgoFlood},                           // odd expander degree
		{Name: "x", Family: FamilyGNM, N: 4, Sched: SchedSync, Algo: AlgoFlood},                                            // defaulted m=3n exceeds n(n-1)/2
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, s)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	reg := NewRegistry()
	spec := Spec{Name: "a/b/c", Family: FamilyRing, N: 8, Sched: SchedSync, Algo: AlgoFlood}
	if err := reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(spec); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, ok := reg.Get("a/b/c")
	if !ok || got.Name != "a/b/c" {
		t.Fatalf("lookup failed: %+v ok=%v", got, ok)
	}
	if _, ok := reg.Get("missing"); ok {
		t.Fatal("lookup of missing scenario succeeded")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "a/b/c" {
		t.Fatalf("names = %v", names)
	}
	if m := reg.Match("b/"); len(m) != 1 {
		t.Fatalf("match = %v", m)
	}
	if m := reg.Match("zzz"); len(m) != 0 {
		t.Fatalf("match zzz = %v", m)
	}
}

func TestBuiltinSuiteShape(t *testing.T) {
	reg := Builtin()
	specs := reg.Specs()
	if len(specs) < 12 {
		t.Fatalf("builtin suite has %d scenarios, want >= 12", len(specs))
	}
	families := map[string]bool{}
	scheds := map[string]bool{}
	repair, build, baseline := false, false, false
	for _, s := range specs {
		families[s.Family] = true
		scheds[s.Sched] = true
		switch s.Algo {
		case AlgoMSTRepair, AlgoSTRepair:
			repair = true
		case AlgoMSTBuildAdaptive, AlgoMSTBuildFixed, AlgoSTBuild:
			build = true
		case AlgoGHS, AlgoFlood:
			baseline = true
		}
	}
	if len(families) < 3 {
		t.Errorf("suite covers %d families, want >= 3", len(families))
	}
	if !scheds[SchedSync] || !scheds[SchedAsync] {
		t.Errorf("suite does not cover both schedulers: %v", scheds)
	}
	if !repair || !build || !baseline {
		t.Errorf("suite missing a headline path: repair=%v build=%v baseline=%v", repair, build, baseline)
	}
}

// TestSameSeedSameMetrics runs a mixed slate of scenarios twice with the
// same seed at different worker counts and demands identical metrics.
// Under -race this also proves the pool is race-free.
func TestSameSeedSameMetrics(t *testing.T) {
	reg := Builtin()
	names := []string{
		"mst-build/gnm/sync",
		"mst-repair/gnm/async",
		"st-repair/ring/sync",
		"flood/grid/async",
	}
	a, err := RunNamed(reg, names, RunConfig{Trials: 3, Seed: 99, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNamed(reg, names, RunConfig{Trials: 3, Seed: 99, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the serialized form: that is the determinism contract.
	// Footprint fields (HeapSysMB and friends) are json:"-" precisely
	// because they reflect process state, not the simulated protocol.
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed, different metrics:\n%s\nvs\n%s", aj, bj)
	}
	for _, res := range a {
		for _, tr := range res.Trials {
			if tr.Error != "" {
				t.Errorf("%s trial %d: %s", res.Spec.Name, tr.Trial, tr.Error)
			}
			if !tr.Valid {
				t.Errorf("%s trial %d (seed %d): reference check failed", res.Spec.Name, tr.Trial, tr.Seed)
			}
		}
	}
}

func TestAggregate(t *testing.T) {
	agg := aggregate([]uint64{30, 10, 20, 40})
	if agg.Mean != 25 || agg.Min != 10 || agg.Max != 40 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.P50 != 20 {
		t.Errorf("p50 = %d, want 20", agg.P50)
	}
	if agg.P99 != 40 {
		t.Errorf("p99 = %d, want 40", agg.P99)
	}
	if z := aggregate(nil); z != (Aggregate{}) {
		t.Errorf("empty aggregate = %+v", z)
	}
}

// TestBenchReportGolden pins the BENCH_*.json schema: a tiny suite run
// with a fixed seed must marshal to exactly the checked-in bytes. Run
// with -update to regenerate after an intentional schema change.
func TestBenchReportGolden(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Spec{
		Name:        "flood/ring/sync",
		Description: "golden: flooding on a tiny ring",
		Family:      FamilyRing, N: 8,
		Sched: SchedSync,
		Algo:  AlgoFlood,
	})
	reg.MustRegister(Spec{
		Name:        "mst-repair/gnm/sync",
		Description: "golden: small repair storm",
		Family:      FamilyGNM, N: 12, M: 20,
		Sched:  SchedSync,
		Algo:   AlgoMSTRepair,
		Faults: FaultScript{Deletes: 2, Inserts: 2, WeightChanges: 1},
	})
	cfg := RunConfig{Trials: 2, Seed: 7, Workers: 2}
	results := RunAll(reg.Specs(), cfg)
	report := NewReport("golden", cfg, results)
	got, err := report.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "bench_golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test ./internal/harness -update' to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("bench report deviates from golden file %s;\ngot:\n%s\nrun with -update if the schema change is intentional", path, got)
	}
}
