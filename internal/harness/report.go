package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// ReportSchema identifies the bench report format; bump on incompatible
// changes so downstream tooling can dispatch.
const ReportSchema = "kkt/bench/v1"

// Report is the top-level bench artifact (the BENCH_*.json payload). It
// contains only seed-determined data: identical seeds marshal to
// byte-identical reports regardless of worker count or wall time.
type Report struct {
	Schema  string   `json:"schema"`
	Suite   string   `json:"suite"`
	Seed    uint64   `json:"seed"`
	Trials  int      `json:"trials"`
	Results []Result `json:"results"`
}

// NewReport assembles a report from a finished run.
func NewReport(suite string, cfg RunConfig, results []Result) Report {
	cfg = cfg.Normalized()
	return Report{
		Schema:  ReportSchema,
		Suite:   suite,
		Seed:    cfg.Seed,
		Trials:  cfg.Trials,
		Results: results,
	}
}

// MarshalIndent renders the canonical JSON form (two-space indent,
// trailing newline). Map keys sort, so the bytes are deterministic.
func (r Report) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteTable renders the human-readable summary table.
func WriteTable(w io.Writer, results []Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SCENARIO\tN\tSCHED\tTRIALS\tVALID\tMSGS(MEAN)\tMSGS(P50)\tMSGS(P99)\tBITS(MEAN)\tTIME(P50)")
	for _, res := range results {
		s := res.Summary
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d/%d\t%.1f\t%d\t%d\t%.1f\t%d\n",
			res.Spec.Name, res.Spec.N, res.Spec.Sched,
			len(res.Trials), s.Valid, len(res.Trials),
			s.Messages.Mean, s.Messages.P50, s.Messages.P99,
			s.Bits.Mean, s.Time.P50)
	}
	return tw.Flush()
}
