package harness

import (
	"sort"

	"kkt/internal/congest"
)

// TrialMetrics is the measured cost of one seeded trial.
type TrialMetrics struct {
	Trial int    `json:"trial"`
	Seed  uint64 `json:"seed"`
	// Shards is the *effective* shard count the trial executed on — what
	// the engine reports after clamping (congest.Network.Lanes), not what
	// the caller requested, so fallback paths are visible. Deliberately
	// excluded from serialization: the sharded engine is observably
	// identical to the single-threaded one, and the byte-identity of
	// seeded reports across shard counts is a contract the cross-check
	// tests enforce — a serialized knob would break it trivially.
	Shards int `json:"-"`

	// Driver/memory footprint of the trial's network — the gate for the
	// continuation driver model (a goroutine-per-fragment build peaks at
	// ~fragment-count goroutines, a continuation build at a handful).
	// Excluded from serialization like Shards: footprint is an execution
	// knob, not an observable of the simulated protocol, and seeded
	// reports must stay byte-identical across driver models.
	PeakDriverGoroutines int `json:"-"`
	// PeakDriverTasks is the continuation-task high-water mark.
	PeakDriverTasks int `json:"-"`
	// PeakLiveDrivers is the peak of concurrently-unfinished drivers of
	// both models (the fragment fan-out width).
	PeakLiveDrivers int `json:"-"`
	// HeapSysMB is the growth of the Go heap footprint
	// (runtime.MemStats.HeapSys) across the trial, in MiB: the after-trial
	// sample minus the before-trial sample, clamped at zero. A delta rather
	// than a process-global level, so multi-trial runs report a meaningful
	// per-trial figure (later trials reusing warmed allocations report ~0).
	HeapSysMB uint64 `json:"-"`

	// GraphEdges is the edge count m of the *generated* topology the trial
	// started from — the x-axis of the o(m) scaling sweeps. For repair
	// scenarios this is the pre-storm graph, not the mutated final
	// topology. Seed-determined (byte-identical at any shard/worker
	// count), so it serializes.
	GraphEdges int `json:"graph_edges,omitempty"`

	// Messages/Bits are the congest counters over the measured section
	// (the whole run for builds; the fault script for repairs — forest
	// setup is free). Time is rounds (sync) or virtual time (async).
	Messages uint64 `json:"messages"`
	Bits     uint64 `json:"bits"`
	Time     int64  `json:"time"`

	// Phases is the number of Borůvka phases (build algorithms only).
	Phases int `json:"phases,omitempty"`
	// PhaseCosts is the per-phase cost timeline (build algorithms only):
	// messages/bits/rounds per phase, broken down by kind class. Computed
	// unconditionally from ledger deltas at phase boundaries — never from
	// an observer — so reports stay byte-identical with observation on or
	// off.
	PhaseCosts []PhaseCost `json:"phase_costs,omitempty"`
	// ForestEdges is the size of the final maintained forest.
	ForestEdges int `json:"forest_edges"`
	// Valid reports the reference check: exact MSF (weighted) or maximal
	// spanning forest (unweighted) of the final topology.
	Valid bool `json:"valid"`
	// Actions tallies repair outcomes by name (repair scenarios only).
	Actions map[string]int `json:"actions,omitempty"`
	// Repairs/RepairWaves/RepairRetries account the concurrent-repair
	// admission queue (fault-plan scenarios only): launched repair drivers,
	// executed waves, and admission conflicts (claim failures plus
	// same-edge ordering blocks).
	Repairs       int `json:"repairs,omitempty"`
	RepairWaves   int `json:"repair_waves,omitempty"`
	RepairRetries int `json:"repair_retries,omitempty"`
	// MsgsPerRepair/BitsPerRepair are the amortized per-repair costs: the
	// measured section's traffic divided by launched repairs.
	MsgsPerRepair float64 `json:"msgs_per_repair,omitempty"`
	BitsPerRepair float64 `json:"bits_per_repair,omitempty"`
	// AsyncConflicts counts emissions that landed inside an open async
	// delivery window and were routed back to their reference position
	// (async trials only; see congest.Network.AsyncConflicts).
	AsyncConflicts uint64 `json:"async_conflicts,omitempty"`
	// StagedDrops counts staged mark changes dropped at a barrier because
	// their edge was deleted while the instruction was in flight. Non-zero
	// only when dynamic deletions race repairs; surfaced so the drop path
	// is observable instead of silent.
	StagedDrops uint64 `json:"staged_drops,omitempty"`
	// Error is set when the trial failed outright.
	Error string `json:"error,omitempty"`
}

// PhaseCost is one entry of a trial's per-phase cost timeline.
type PhaseCost struct {
	Phase     int                 `json:"phase"`
	Fragments int                 `json:"fragments"`
	Merges    int                 `json:"merges"`
	Messages  uint64              `json:"messages"`
	Bits      uint64              `json:"bits"`
	Rounds    int64               `json:"rounds"`
	Classes   []congest.ClassCost `json:"classes,omitempty"`
}

// Aggregate summarizes one metric across trials. Percentiles are
// nearest-rank over the successful trials.
type Aggregate struct {
	Mean float64 `json:"mean"`
	P50  uint64  `json:"p50"`
	P99  uint64  `json:"p99"`
	Min  uint64  `json:"min"`
	Max  uint64  `json:"max"`
}

// aggregate computes the summary of one metric; zero-valued on no input.
func aggregate(vals []uint64) Aggregate {
	if len(vals) == 0 {
		return Aggregate{}
	}
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum uint64
	for _, v := range sorted {
		sum += v
	}
	rank := func(p float64) uint64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return Aggregate{
		Mean: float64(sum) / float64(len(sorted)),
		P50:  rank(0.50),
		P99:  rank(0.99),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
	}
}

// Summary is the deterministic aggregation of a scenario's trials.
type Summary struct {
	Messages Aggregate `json:"messages"`
	Bits     Aggregate `json:"bits"`
	Time     Aggregate `json:"time"`
	// Valid/Failed count trials that passed the reference check / errored.
	Valid  int `json:"valid"`
	Failed int `json:"failed"`
	// Actions sums the per-trial repair tallies.
	Actions map[string]int `json:"actions,omitempty"`
	// Repairs/RepairWaves/RepairRetries sum the admission-queue accounting
	// across successful trials (fault-plan scenarios only).
	Repairs       int `json:"repairs,omitempty"`
	RepairWaves   int `json:"repair_waves,omitempty"`
	RepairRetries int `json:"repair_retries,omitempty"`
	// AsyncConflicts sums the per-trial async window-conflict counts.
	AsyncConflicts uint64 `json:"async_conflicts,omitempty"`
	// StagedDrops sums the per-trial staged-mark drop counts.
	StagedDrops uint64 `json:"staged_drops,omitempty"`
	// ByKind sums message traffic per kind across successful trials.
	ByKind map[string]congest.KindCount `json:"by_kind,omitempty"`
	// PhaseCosts sums the per-phase timelines across successful trials,
	// element-wise by phase index (trials of one scenario run the same
	// algorithm, so phase i means the same thing in each).
	PhaseCosts []PhaseCost `json:"phase_costs,omitempty"`
}

// summarize aggregates trials in index order (deterministic for a fixed
// trial slice). Errored trials count as Failed and are excluded from the
// cost aggregates.
func summarize(trials []TrialMetrics, byKind []map[string]congest.KindCount) Summary {
	var sum Summary
	var msgs, bits, times []uint64
	for i, t := range trials {
		if t.Error != "" {
			sum.Failed++
			continue
		}
		if t.Valid {
			sum.Valid++
		}
		msgs = append(msgs, t.Messages)
		bits = append(bits, t.Bits)
		times = append(times, uint64(t.Time))
		sum.StagedDrops += t.StagedDrops
		sum.Repairs += t.Repairs
		sum.RepairWaves += t.RepairWaves
		sum.RepairRetries += t.RepairRetries
		sum.AsyncConflicts += t.AsyncConflicts
		for k, v := range t.Actions {
			if sum.Actions == nil {
				sum.Actions = make(map[string]int)
			}
			sum.Actions[k] += v
		}
		if i < len(byKind) {
			for k, kc := range byKind[i] {
				if sum.ByKind == nil {
					sum.ByKind = make(map[string]congest.KindCount)
				}
				agg := sum.ByKind[k]
				agg.Messages += kc.Messages
				agg.Bits += kc.Bits
				sum.ByKind[k] = agg
			}
		}
		sum.PhaseCosts = addPhaseCosts(sum.PhaseCosts, t.PhaseCosts)
	}
	sum.Messages = aggregate(msgs)
	sum.Bits = aggregate(bits)
	sum.Time = aggregate(times)
	return sum
}

// addPhaseCosts folds one trial's timeline into the running sum,
// element-wise by phase index; class breakdowns merge by class name and
// stay sorted.
func addPhaseCosts(sum, trial []PhaseCost) []PhaseCost {
	for i, pc := range trial {
		for len(sum) <= i {
			sum = append(sum, PhaseCost{Phase: len(sum) + 1})
		}
		s := &sum[i]
		s.Fragments += pc.Fragments
		s.Merges += pc.Merges
		s.Messages += pc.Messages
		s.Bits += pc.Bits
		s.Rounds += pc.Rounds
		s.Classes = mergeClassCosts(s.Classes, pc.Classes)
	}
	return sum
}

// mergeClassCosts adds the per-class tallies of b into a (both sorted by
// class name) and returns the sorted union.
func mergeClassCosts(a, b []congest.ClassCost) []congest.ClassCost {
	for _, cc := range b {
		i := sort.Search(len(a), func(i int) bool { return a[i].Class >= cc.Class })
		if i < len(a) && a[i].Class == cc.Class {
			a[i].Messages += cc.Messages
			a[i].Bits += cc.Bits
			continue
		}
		a = append(a, congest.ClassCost{})
		copy(a[i+1:], a[i:])
		a[i] = cc
	}
	return a
}
