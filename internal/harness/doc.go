// Package harness is the experiment engine over the CONGEST simulator: a
// registry of declarative scenarios (graph family × size × scheduler ×
// algorithm × fault script), a parallel runner executing many seeded
// trials on a bounded worker pool, and deterministic aggregation of the
// per-trial cost metrics (messages, bits, time, repair actions) into
// mean/p50/p99 summaries. The cmd/kkt CLI is a thin shell over this
// package.
//
// # Invariants
//
// Seed identity. A trial is identified by (scenario, seed) alone.
// Worker count, shard count (RunConfig.Shards) and driver model
// (RunTrialDrivers) are execution knobs: identical seeds produce
// byte-identical serialized reports at any value of any of them. The
// cross-checks in shard_test.go and driver_mode_test.go enforce this over
// the whole small suite, and CI diffs full bench reports at --shards 1
// vs 4.
//
// Isolation. The runner builds one private Network per trial; trials
// share no state, which is why they parallelize freely and why a trial
// panic (converted to a TrialMetrics.Error) cannot poison a sweep.
//
// Serialization. TrialMetrics fields describing execution footprint
// (Shards, PeakDriverGoroutines, PeakDriverTasks, PeakLiveDrivers,
// HeapSysMB) carry json:"-": they are observations about the process,
// not the simulated protocol, and serializing them would trivially break
// the report byte-identity contract. Report ordering is deterministic —
// scenarios sort by name, trials by index — so byte comparison of
// reports is meaningful.
package harness
