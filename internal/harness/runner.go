package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"kkt/internal/congest"
)

// RunConfig tunes a runner invocation.
type RunConfig struct {
	// Trials is the number of seeded trials per scenario (default 4).
	Trials int
	// Seed is the base seed; per-trial seeds derive from it, the scenario
	// name and the trial index, so runs are reproducible end to end.
	Seed uint64
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Shards is the per-trial shard count handed to the simulator
	// (default 1 = single-threaded trials). Sharding is a wall-clock knob
	// only: the sharded engine is observably identical to the
	// single-threaded one, so reports stay byte-identical at any value.
	// Intra-trial parallelism composes with the trial-level pool — total
	// concurrency is roughly Workers × Shards, so large sweeps should
	// lower Workers when raising Shards.
	Shards int
	// Timeout bounds each trial's wall-clock time (0 = unbounded). A timed-
	// out trial aborts at the next delivery batch with a structured
	// congest.WatchdogError and counts as Failed; successful trials are
	// untouched, so seeded reports stay byte-identical with or without a
	// (generous) timeout.
	Timeout time.Duration
	// OnTrialDone, if set, is called after every finished trial (from
	// worker goroutines; must be safe for concurrent use). For progress
	// reporting.
	OnTrialDone func(spec Spec, trial int)
	// Observe, if set, supplies a trace observer per trial (called from
	// worker goroutines before the trial starts; must be safe for
	// concurrent use). Observers are passive: reports stay byte-identical
	// whether Observe is set or not. Return nil to leave a trial
	// unobserved.
	Observe func(spec Spec, trial int) congest.Observer
}

// Normalized returns the config with unset or out-of-range fields
// replaced by their defaults — the exact values a run will use, so
// callers (e.g. progress displays) can rely on Trials and Workers.
func (c RunConfig) Normalized() RunConfig {
	if c.Trials <= 0 {
		c.Trials = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// Result is one scenario's outcome: the per-trial metrics in trial order
// and their deterministic aggregation.
type Result struct {
	Spec    Spec           `json:"spec"`
	Trials  []TrialMetrics `json:"trials"`
	Summary Summary        `json:"summary"`
}

// Run executes one scenario.
func Run(spec Spec, cfg RunConfig) Result {
	return RunAll([]Spec{spec}, cfg)[0]
}

// RunAll executes every (scenario, trial) pair on a bounded worker pool.
// Each trial runs on a private network, so trials parallelize freely; the
// results land in preassigned slots, making the output independent of
// completion order — identical seeds give identical results at any worker
// count.
func RunAll(specs []Spec, cfg RunConfig) []Result {
	cfg = cfg.Normalized()
	results := make([]Result, len(specs))
	byKind := make([][]map[string]congest.KindCount, len(specs))
	for i, s := range specs {
		results[i] = Result{Spec: s, Trials: make([]TrialMetrics, cfg.Trials)}
		byKind[i] = make([]map[string]congest.KindCount, cfg.Trials)
	}

	type job struct{ si, ti int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec := specs[j.si]
				seed := trialSeed(cfg.Seed, spec.Name, j.ti)
				var obs congest.Observer
				if cfg.Observe != nil {
					obs = cfg.Observe(spec, j.ti)
				}
				var ctx context.Context
				cancel := func() {}
				if cfg.Timeout > 0 {
					ctx, cancel = context.WithTimeout(context.Background(), cfg.Timeout)
				}
				m, kinds, err := RunTrialContext(ctx, spec, seed, cfg.Shards, congest.DriverCont, obs)
				cancel()
				m.Trial = j.ti
				m.Seed = seed
				if err != nil {
					m.Error = err.Error()
				}
				results[j.si].Trials[j.ti] = m
				byKind[j.si][j.ti] = kinds
				if cfg.OnTrialDone != nil {
					cfg.OnTrialDone(spec, j.ti)
				}
			}
		}()
	}
	for si := range specs {
		for ti := 0; ti < cfg.Trials; ti++ {
			jobs <- job{si, ti}
		}
	}
	close(jobs)
	wg.Wait()

	for i := range results {
		results[i].Summary = summarize(results[i].Trials, byKind[i])
	}
	return results
}

// RunNamed looks scenarios up in the registry and runs them. Unknown
// names error before any work starts.
func RunNamed(reg *Registry, names []string, cfg RunConfig) ([]Result, error) {
	specs := make([]Spec, len(names))
	for i, n := range names {
		s, ok := reg.Get(n)
		if !ok {
			return nil, fmt.Errorf("harness: unknown scenario %q", n)
		}
		specs[i] = s
	}
	return RunAll(specs, cfg), nil
}
