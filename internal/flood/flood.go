// Package flood is the Theta(m) baseline for spanning-tree construction:
// an initiator floods a join message; every node adopts the first sender
// as its parent, notifies it, and forwards the flood on all other links
// (see e.g. [32]). Every edge carries at least one message, which is
// exactly the Omega(m) "folk theorem" cost the paper's ST algorithm
// beats.
package flood

import (
	"kkt/internal/congest"
)

// Message kinds, interned once at package init.
var (
	KindJoin   = congest.Kind("flood.join")   // flood wave
	KindParent = congest.Kind("flood.parent") // child -> parent notification
)

// Protocol is the per-network flooding instance.
type Protocol struct {
	nw      *congest.Network
	visited []bool
}

// Attach registers the flooding handlers. Call once per network.
func Attach(nw *congest.Network) *Protocol {
	f := &Protocol{nw: nw, visited: make([]bool, nw.N()+1)}
	nw.RegisterHandler(KindJoin, f.onJoin)
	nw.RegisterHandler(KindParent, f.onParent)
	return f
}

// BuildResult reports a flooding run.
type BuildResult struct {
	Forest   [][2]congest.NodeID
	Messages uint64
	Bits     uint64
	Rounds   int64
}

// Build floods from the smallest node of each connected component and
// marks the resulting broadcast forest. Under the synchronous scheduler
// the result is a BFS forest.
func (f *Protocol) Build() (BuildResult, error) {
	nw := f.nw
	var result BuildResult
	nw.Spawn("flood", func(p *congest.Proc) error {
		for v := 1; v <= nw.N(); v++ {
			if f.visited[v] {
				continue
			}
			// initiator of this component
			start := congest.NodeID(v)
			f.visited[v] = true
			node := nw.Node(start)
			for i := range node.Edges {
				nw.Send(start, node.Edges[i].Neighbor, KindJoin, 0, 8, nil)
			}
			p.AwaitQuiescence()
			nw.ApplyStaged()
		}
		return nil
	})
	err := nw.Run()
	if err == nil {
		result.Forest = nw.MarkedEdges()
		c := nw.Counters()
		result.Messages = c.Messages
		result.Bits = c.Bits
		result.Rounds = nw.Now()
	}
	return result, err
}

func (f *Protocol) onJoin(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	if f.visited[node.ID] {
		return // duplicate wave; ignore (the message is still counted)
	}
	f.visited[node.ID] = true
	// adopt the first sender as parent: both sides stage the mark.
	node.StageMark(msg.From)
	nw.Send(node.ID, msg.From, KindParent, 0, 8, nil)
	for i := range node.Edges {
		if nb := node.Edges[i].Neighbor; nb != msg.From {
			nw.Send(node.ID, nb, KindJoin, 0, 8, nil)
		}
	}
}

func (f *Protocol) onParent(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	node.StageMark(msg.From)
}
