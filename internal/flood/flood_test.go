package flood

import (
	"sort"
	"testing"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/spanning"
)

func buildAndCheck(t *testing.T, g *graph.Graph) BuildResult {
	t.Helper()
	nw := congest.NewNetwork(g)
	f := Attach(nw)
	res, err := f.Build()
	if err != nil {
		t.Fatalf("flood Build: %v", err)
	}
	idx := make([]int, 0, len(res.Forest))
	for _, e := range res.Forest {
		i := g.EdgeIndex(uint32(e[0]), uint32(e[1]))
		if i < 0 {
			t.Fatalf("marked edge not in graph")
		}
		idx = append(idx, i)
	}
	sort.Ints(idx)
	if err := spanning.IsSpanningForest(g, idx); err != nil {
		t.Fatalf("flood result invalid: %v", err)
	}
	return res
}

func TestFloodShapes(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"two nodes", graph.Path(2, 1, graph.UnitWeights())},
		{"path", graph.Path(10, 1, graph.UnitWeights())},
		{"ring", graph.Ring(9, 1, graph.UnitWeights())},
		{"K7", graph.Complete(7, 1, graph.UnitWeights())},
		{"grid", graph.Grid(5, 5, 1, graph.UnitWeights())},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buildAndCheck(t, tt.g)
		})
	}
}

func TestFloodRandom(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 10; trial++ {
		n := 10 + r.Intn(40)
		maxM := n * (n - 1) / 2
		m := n - 1 + r.Intn(maxM-n+2)
		g := graph.GNM(r, n, m, 1, graph.UnitWeights())
		buildAndCheck(t, g)
	}
}

func TestFloodDisconnected(t *testing.T) {
	g := graph.MustNew(6, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(4, 5, 1)
	res := buildAndCheck(t, g)
	if len(res.Forest) != 3 {
		t.Errorf("forest edges = %d, want 3", len(res.Forest))
	}
}

func TestFloodCostsThetaM(t *testing.T) {
	// join messages ~ 2m - (n-1) + initiator degree bookkeeping; parent
	// messages = n-1. Total within [m, 2m + n].
	g := graph.Complete(30, 1, graph.UnitWeights()) // m = 435
	res := buildAndCheck(t, g)
	m := uint64(g.M())
	n := uint64(g.N)
	if res.Messages < m {
		t.Errorf("flooding used %d messages, below m=%d — impossible for flooding", res.Messages, m)
	}
	if res.Messages > 2*m+n {
		t.Errorf("flooding used %d messages, above 2m+n=%d", res.Messages, 2*m+n)
	}
}

func TestFloodBFSDepth(t *testing.T) {
	// On a path flooded from node 1 the tree is the path itself; rounds
	// ~ diameter.
	g := graph.Path(20, 1, graph.UnitWeights())
	res := buildAndCheck(t, g)
	if len(res.Forest) != 19 {
		t.Fatalf("path forest edges = %d", len(res.Forest))
	}
	if res.Rounds < 19 || res.Rounds > 45 {
		t.Errorf("rounds = %d, want ~diameter", res.Rounds)
	}
}
