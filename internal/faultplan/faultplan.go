package faultplan

import (
	"fmt"
	"sort"

	"kkt/internal/graph"
	"kkt/internal/rng"
)

// Op is the kind of one compiled fault event.
type Op uint8

const (
	// OpDelete removes the link {A,B}.
	OpDelete Op = iota + 1
	// OpInsert adds the link {A,B} with raw weight Raw.
	OpInsert
	// OpWeightChange sets the raw weight of the existing link {A,B} to Raw.
	OpWeightChange
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpDelete:
		return "delete"
	case OpInsert:
		return "insert"
	case OpWeightChange:
		return "weight-change"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Event is one compiled topology change. Events carry everything needed to
// replay them: any failure minimizes to (seed, plan prefix) — replay the
// compiled list up to the failing index and the trial reproduces exactly.
//
// A is the repair initiator: targeted stages orient A toward the smaller
// side of the faulted edge (the partition region, the burst ball, the
// lighter forest subtree), and the wave-mode repair drivers root their
// searches at A — tree traversal cost then scales with the small side, not
// the 100k-node remainder. Orientation is a performance hint only;
// correctness never depends on it.
type Event struct {
	Op   Op     `json:"op"`
	A    uint32 `json:"a"`
	B    uint32 `json:"b"`
	Raw  uint64 `json:"raw,omitempty"` // insert weight / new weight
	// Stage names the plan stage that emitted the event ("partition",
	// "burst", "bridge", "tree", "hub", "random", "heal") — the handle for
	// minimizing a failure to a plan prefix.
	Stage string `json:"stage"`
}

// Plan is the declarative adversarial workload of a repair scenario: how
// many faults of each targeting strategy to compile. A Plan plus a seed
// and a topology determines a reproducible event list (see Compile); the
// legacy FaultScript's uniform deletes/inserts/weight changes live on as
// the Deletes/Inserts/WeightChanges background block.
//
// Stages compile in a fixed order chosen to maximize stress: partitions
// first (they shatter the forest into regions the later faults land in),
// then correlated bursts, then the targeted single-edge deletes, then the
// shuffled uniform background block, and heals last (re-inserting
// partition cut edges so the forest must knit the regions back together).
type Plan struct {
	// Partitions cuts a forest subtree of ≤PartitionSize nodes (the small
	// side of a sampled tree edge) off the rest of the graph: every cut
	// edge is deleted, non-forest edges first so the final delete — the
	// region's single boundary tree edge — faces an emptied cut and its
	// repair must conclude the region is bridged off.
	Partitions    int `json:"partitions,omitempty"`
	PartitionSize int `json:"partition_size,omitempty"` // default max(n/8, 2)

	// Bursts deletes every edge incident to a random ball of radius
	// BurstRadius (default 1) — the correlated-failure workload.
	Bursts      int `json:"bursts,omitempty"`
	BurstRadius int `json:"burst_radius,omitempty"`

	// BridgeDeletes targets bridges of the current topology (repairs must
	// conclude Bridge, the most expensive verdict: an exhausted search).
	BridgeDeletes int `json:"bridge_deletes,omitempty"`
	// TreeEdgeDeletes targets edges of the maintained forest, so every
	// delete forces a real repair instead of a cheap no-op.
	TreeEdgeDeletes int `json:"tree_edge_deletes,omitempty"`
	// HubDeletes targets forest edges incident to the highest-degree nodes
	// (where the sketch machinery is most stressed).
	HubDeletes int `json:"hub_deletes,omitempty"`

	// Deletes/Inserts/WeightChanges are the uniform background block,
	// compiled in seeded shuffled interleaving (the legacy FaultScript
	// semantics).
	Deletes       int `json:"deletes,omitempty"`
	Inserts       int `json:"inserts,omitempty"`
	WeightChanges int `json:"weight_changes,omitempty"`

	// Heals re-inserts edges deleted by the partition/burst stages (with
	// their original weights), forcing the repair layer to re-join regions
	// it earlier concluded were bridged apart.
	Heals int `json:"heals,omitempty"`
}

// Empty reports whether the plan compiles to no events.
func (p Plan) Empty() bool {
	return p.Partitions == 0 && p.Bursts == 0 && p.BridgeDeletes == 0 &&
		p.TreeEdgeDeletes == 0 && p.HubDeletes == 0 &&
		p.Deletes == 0 && p.Inserts == 0 && p.WeightChanges == 0 && p.Heals == 0
}

// Approx returns a rough op count for listings (partition/burst/heal
// stages expand to a topology-dependent number of events).
func (p Plan) Approx() int {
	return p.Partitions + p.Bursts + p.BridgeDeletes + p.TreeEdgeDeletes +
		p.HubDeletes + p.Deletes + p.Inserts + p.WeightChanges + p.Heals
}

// Validate rejects malformed plans.
func (p Plan) Validate() error {
	for _, c := range []struct {
		name string
		v    int
	}{
		{"partitions", p.Partitions}, {"partition_size", p.PartitionSize},
		{"bursts", p.Bursts}, {"burst_radius", p.BurstRadius},
		{"bridge_deletes", p.BridgeDeletes}, {"tree_edge_deletes", p.TreeEdgeDeletes},
		{"hub_deletes", p.HubDeletes}, {"deletes", p.Deletes},
		{"inserts", p.Inserts}, {"weight_changes", p.WeightChanges}, {"heals", p.Heals},
	} {
		if c.v < 0 {
			return fmt.Errorf("faultplan: negative %s (%d)", c.name, c.v)
		}
	}
	return nil
}

// half is one directed adjacency entry of the compiler's topology model.
type half struct {
	to  uint32
	raw uint64
}

// model is the compiler's mutable view of the topology: sorted adjacency
// slices (mirroring congest.NodeState) plus the maintained-forest
// approximation. The forest model is best-effort targeting, not ground
// truth: it starts as the reference forest and only shrinks on deletion —
// repairs will re-mark replacement edges the compiler cannot predict, so
// "tree edge" targeting degrades gracefully to "former tree edge" late in
// a plan. That is fine: targeting guides the adversary, correctness never
// depends on it.
type model struct {
	n      int
	maxRaw uint64
	adj    [][]half        // 1-based
	tree   map[uint64]bool // packed lo<<32|hi keys of modelled forest edges
	events []Event
	r      *rng.RNG

	// healPool records partition/burst deletions (with original weights)
	// for the heal stage, in deletion order.
	healPool []Event

	// scratch for BFS stages.
	visited []bool
	queue   []uint32
}

func edgeKey(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// Compile turns a plan into its reproducible event list for the given
// topology, maintained forest (edge indices into g) and seed. Identical
// inputs produce identical lists; the compiler never emits an invalid
// event (deleting an absent edge, inserting a present one) against its own
// model of the evolving topology.
func Compile(p Plan, g *graph.Graph, forest []int, seed uint64) []Event {
	m := &model{
		n:       g.N,
		maxRaw:  g.MaxRaw,
		adj:     make([][]half, g.N+1),
		tree:    make(map[uint64]bool, len(forest)),
		r:       rng.New(seed ^ 0xa0761d6478bd642f),
		visited: make([]bool, g.N+1),
	}
	deg := make([]int, g.N+1)
	for _, e := range g.Edges() {
		deg[e.A]++
		deg[e.B]++
	}
	for v := 1; v <= g.N; v++ {
		if deg[v] > 0 {
			m.adj[v] = make([]half, 0, deg[v])
		}
	}
	for _, e := range g.Edges() {
		m.adj[e.A] = append(m.adj[e.A], half{to: e.B, raw: e.Raw})
		m.adj[e.B] = append(m.adj[e.B], half{to: e.A, raw: e.Raw})
	}
	for v := 1; v <= g.N; v++ {
		a := m.adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i].to < a[j].to })
	}
	for _, ei := range forest {
		e := g.Edge(ei)
		m.tree[edgeKey(e.A, e.B)] = true
	}

	m.partitions(p)
	m.bursts(p)
	m.bridges(p)
	m.treeDeletes(p)
	m.hubDeletes(p)
	m.background(p)
	m.heals(p)
	return m.events
}

// --- model mutation (keeps adjacency + forest approximation in sync) ---

func (m *model) hasEdge(a, b uint32) bool {
	adj := m.adj[a]
	i := sort.Search(len(adj), func(i int) bool { return adj[i].to >= b })
	return i < len(adj) && adj[i].to == b
}

func (m *model) rawOf(a, b uint32) (uint64, bool) {
	adj := m.adj[a]
	i := sort.Search(len(adj), func(i int) bool { return adj[i].to >= b })
	if i < len(adj) && adj[i].to == b {
		return adj[i].raw, true
	}
	return 0, false
}

func (m *model) removeHalf(a, b uint32) {
	adj := m.adj[a]
	i := sort.Search(len(adj), func(i int) bool { return adj[i].to >= b })
	if i < len(adj) && adj[i].to == b {
		m.adj[a] = append(adj[:i], adj[i+1:]...)
	}
}

func (m *model) addHalf(a, b uint32, raw uint64) {
	adj := m.adj[a]
	i := sort.Search(len(adj), func(i int) bool { return adj[i].to >= b })
	m.adj[a] = append(adj, half{})
	copy(m.adj[a][i+1:], m.adj[a][i:])
	m.adj[a][i] = half{to: b, raw: raw}
}

// del emits a delete event for the existing edge {a,b}; pool records it
// for the heal stage. Returns false if the edge is already gone.
func (m *model) del(a, b uint32, stage string, pool bool) bool {
	raw, ok := m.rawOf(a, b)
	if !ok {
		return false
	}
	m.removeHalf(a, b)
	m.removeHalf(b, a)
	delete(m.tree, edgeKey(a, b))
	ev := Event{Op: OpDelete, A: a, B: b, Raw: raw, Stage: stage}
	m.events = append(m.events, ev)
	if pool {
		m.healPool = append(m.healPool, ev)
	}
	return true
}

// ins emits an insert event for the absent edge {a,b}.
func (m *model) ins(a, b uint32, raw uint64, stage string) bool {
	if a == b || m.hasEdge(a, b) {
		return false
	}
	m.addHalf(a, b, raw)
	m.addHalf(b, a, raw)
	m.events = append(m.events, Event{Op: OpInsert, A: a, B: b, Raw: raw, Stage: stage})
	return true
}

// --- stages ---

// region grows a BFS ball from start to at most size nodes (or radius
// hops, when radius >= 0) and returns the member node IDs. Uses and resets
// the shared visited scratch.
func (m *model) region(start uint32, size, radius int) []uint32 {
	m.queue = m.queue[:0]
	m.queue = append(m.queue, start)
	m.visited[start] = true
	dist := map[uint32]int{start: 0}
	for qi := 0; qi < len(m.queue) && len(m.queue) < size; qi++ {
		v := m.queue[qi]
		if radius >= 0 && dist[v] >= radius {
			continue
		}
		for _, h := range m.adj[v] {
			if m.visited[h.to] {
				continue
			}
			m.visited[h.to] = true
			dist[h.to] = dist[v] + 1
			m.queue = append(m.queue, h.to)
			if len(m.queue) >= size {
				break
			}
		}
	}
	out := append([]uint32(nil), m.queue...)
	for _, v := range out {
		m.visited[v] = false
	}
	return out
}

// partitions severs Partitions forest subtrees from the rest of the
// graph. Each region is the small side of a sampled modelled tree edge
// (at most PartitionSize nodes; the largest qualifying side among a fixed
// sample wins, so regions trend toward the requested size). Every edge
// leaving the region is deleted — non-forest cut edges first, the single
// boundary tree edge last — so the tree edge's repair faces an
// already-emptied cut: it must scan it and conclude the region is bridged
// off. Making the region a full subtree (exactly one boundary tree edge)
// is what keeps a plan with hundreds of partitions feasible: every
// repair the stage triggers stays rooted in a ≤PartitionSize side,
// instead of the earlier BFS-ball regions whose many boundary tree edges
// each forced a search over the whole remaining graph.
func (m *model) partitions(p Plan) {
	if p.Partitions == 0 {
		return
	}
	size := p.PartitionSize
	if size <= 0 {
		size = m.n / 8
	}
	if size < 2 {
		size = 2
	}
	cand := m.treeEdgeList()
	const samples = 32
	for i := 0; i < p.Partitions; i++ {
		// Sample tree edges; keep the one with the largest small side
		// still under the region budget. Earlier regions delete tree
		// edges, so stale candidates are re-checked against m.tree.
		var ra, rb uint32
		best := 0
		for s := 0; s < samples && len(cand) > 0; s++ {
			e := cand[m.r.Intn(len(cand))]
			if !m.tree[edgeKey(e[0], e[1])] {
				continue
			}
			a, b := e[0], e[1]
			sa := m.sideSize(a, b, size+1)
			if sa > size {
				a, b = b, a
				sa = m.sideSize(a, b, size+1)
				if sa > size {
					continue
				}
			}
			if sa > best {
				best, ra, rb = sa, a, b
			}
		}
		if best == 0 {
			continue
		}
		reg := m.treeSide(ra, rb, size+1)
		in := make(map[uint32]bool, len(reg))
		for _, v := range reg {
			in[v] = true
		}
		var plain [][2]uint32
		for _, v := range reg {
			for _, h := range m.adj[v] {
				if in[h.to] {
					continue // internal edge: only cut edges are deleted
				}
				if v == ra && h.to == rb {
					continue // the boundary tree edge goes last
				}
				plain = append(plain, [2]uint32{v, h.to})
			}
		}
		for _, e := range plain {
			m.del(e[0], e[1], "partition", true)
		}
		m.del(ra, rb, "partition", true)
	}
}

// treeSide collects the nodes on a's side of the modelled forest edge
// {a,b}, stopping at limit (the sideSize walk, keeping the nodes).
func (m *model) treeSide(a, b uint32, limit int) []uint32 {
	m.queue = m.queue[:0]
	m.queue = append(m.queue, a)
	m.visited[a] = true
	for qi := 0; qi < len(m.queue) && len(m.queue) < limit; qi++ {
		v := m.queue[qi]
		for _, h := range m.adj[v] {
			if m.visited[h.to] || !m.tree[edgeKey(v, h.to)] {
				continue
			}
			if v == a && h.to == b {
				continue // do not cross the boundary edge itself
			}
			m.visited[h.to] = true
			m.queue = append(m.queue, h.to)
			if len(m.queue) >= limit {
				break
			}
		}
	}
	out := append([]uint32(nil), m.queue...)
	for _, v := range out {
		m.visited[v] = false
	}
	return out
}

// bursts deletes every edge incident to a random ball of BurstRadius hops
// — the correlated-failure workload (all links of a region die together).
func (m *model) bursts(p Plan) {
	radius := p.BurstRadius
	if radius <= 0 {
		radius = 1
	}
	for i := 0; i < p.Bursts; i++ {
		center := uint32(m.r.Intn(m.n) + 1)
		reg := m.region(center, m.n+1, radius)
		for _, v := range reg {
			// Snapshot the incident edges: del mutates adj[v].
			inc := make([][2]uint32, 0, len(m.adj[v]))
			for _, h := range m.adj[v] {
				inc = append(inc, [2]uint32{v, h.to})
			}
			// Non-forest edges first, forest edges last, so the repairs for
			// the tree edges face the already-thinned cut.
			for _, e := range inc {
				if !m.tree[edgeKey(e[0], e[1])] {
					m.del(e[0], e[1], "burst", true)
				}
			}
			for _, e := range inc {
				m.del(e[0], e[1], "burst", true)
			}
		}
	}
}

// bridgeEdges finds all bridges of the current model topology (iterative
// Tarjan lowpoint DFS — no recursion, the model may hold 100k+ nodes).
func (m *model) bridgeEdges() [][2]uint32 {
	disc := make([]int32, m.n+1)
	low := make([]int32, m.n+1)
	parent := make([]uint32, m.n+1)
	var out [][2]uint32
	timer := int32(0)
	type frame struct {
		v  uint32
		ei int
	}
	var stack []frame
	for s := uint32(1); int(s) <= m.n; s++ {
		if disc[s] != 0 {
			continue
		}
		timer++
		disc[s], low[s] = timer, timer
		stack = append(stack[:0], frame{v: s})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(m.adj[f.v]) {
				to := m.adj[f.v][f.ei].to
				f.ei++
				if disc[to] == 0 {
					parent[to] = f.v
					timer++
					disc[to], low[to] = timer, timer
					stack = append(stack, frame{v: to})
				} else if to != parent[f.v] {
					if disc[to] < low[f.v] {
						low[f.v] = disc[to]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				pv := stack[len(stack)-1].v
				if low[f.v] < low[pv] {
					low[pv] = low[f.v]
				}
				if low[f.v] > disc[pv] {
					out = append(out, [2]uint32{pv, f.v})
				}
			}
		}
	}
	return out
}

// bridges deletes up to BridgeDeletes randomly chosen bridges of the
// current topology. Deleting one bridge can create or destroy others, but
// the set is computed once per stage — adversarial targeting, not an
// exhaustive cut enumeration.
func (m *model) bridges(p Plan) {
	if p.BridgeDeletes == 0 {
		return
	}
	cand := m.bridgeEdges()
	m.r.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	done := 0
	for _, e := range cand {
		if done >= p.BridgeDeletes {
			break
		}
		a, b := m.orientSmall(e[0], e[1])
		if m.del(a, b, "bridge", false) {
			done++
		}
	}
}

// treeDeletes deletes TreeEdgeDeletes randomly chosen modelled forest
// edges — every one forces a real repair.
func (m *model) treeDeletes(p Plan) {
	if p.TreeEdgeDeletes == 0 {
		return
	}
	cand := m.treeEdgeList()
	m.r.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	for i := 0; i < len(cand) && i < p.TreeEdgeDeletes; i++ {
		a, b := m.orientSmall(cand[i][0], cand[i][1])
		m.del(a, b, "tree", false)
	}
}

// treeEdgeList returns the modelled forest edges in deterministic
// (sorted-key) order — the tree map must never be ranged directly.
func (m *model) treeEdgeList() [][2]uint32 {
	keys := make([]uint64, 0, len(m.tree))
	for k := range m.tree {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([][2]uint32, len(keys))
	for i, k := range keys {
		out[i] = [2]uint32{uint32(k >> 32), uint32(k)}
	}
	return out
}

// hubDeletes deletes one forest edge incident to each of the
// highest-degree nodes (ties broken by ID for determinism).
func (m *model) hubDeletes(p Plan) {
	if p.HubDeletes == 0 {
		return
	}
	hubs := make([]uint32, m.n)
	for v := 1; v <= m.n; v++ {
		hubs[v-1] = uint32(v)
	}
	sort.Slice(hubs, func(i, j int) bool {
		di, dj := len(m.adj[hubs[i]]), len(m.adj[hubs[j]])
		if di != dj {
			return di > dj
		}
		return hubs[i] < hubs[j]
	})
	done := 0
	for _, v := range hubs {
		if done >= p.HubDeletes {
			break
		}
		for _, h := range m.adj[v] {
			if m.tree[edgeKey(v, h.to)] {
				a, b := m.orientSmall(v, h.to)
				m.del(a, b, "hub", false)
				done++
				break
			}
		}
	}
}

// background compiles the uniform random block (the legacy FaultScript
// workload) in seeded shuffled interleaving.
func (m *model) background(p Plan) {
	ops := make([]Op, 0, p.Deletes+p.Inserts+p.WeightChanges)
	for i := 0; i < p.Deletes; i++ {
		ops = append(ops, OpDelete)
	}
	for i := 0; i < p.Inserts; i++ {
		ops = append(ops, OpInsert)
	}
	for i := 0; i < p.WeightChanges; i++ {
		ops = append(ops, OpWeightChange)
	}
	m.r.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	for _, op := range ops {
		switch op {
		case OpDelete:
			if a, b, ok := m.pickEdge(); ok {
				a, b = m.orientSmall(a, b)
				m.del(a, b, "random", false)
			}
		case OpInsert:
			if a, b, ok := m.pickNonEdge(); ok {
				a, b = m.orientSmallComp(a, b)
				m.ins(a, b, m.r.Range(1, m.maxRaw), "random")
			}
		case OpWeightChange:
			if a, b, ok := m.pickEdge(); ok {
				a, b = m.orientSmall(a, b)
				raw := m.r.Range(1, m.maxRaw)
				m.setRaw(a, b, raw)
				m.events = append(m.events, Event{Op: OpWeightChange, A: a, B: b, Raw: raw, Stage: "random"})
			}
		}
	}
}

func (m *model) setRaw(a, b uint32, raw uint64) {
	for _, v := range [2][2]uint32{{a, b}, {b, a}} {
		adj := m.adj[v[0]]
		i := sort.Search(len(adj), func(i int) bool { return adj[i].to >= v[1] })
		if i < len(adj) && adj[i].to == v[1] {
			adj[i].raw = raw
		}
	}
}

// pickEdge draws a uniformly random surviving edge (via a random node with
// degree > 0), mirroring the harness's legacy pickLink.
func (m *model) pickEdge() (uint32, uint32, bool) {
	for attempt := 0; attempt < 16*m.n; attempt++ {
		v := uint32(m.r.Intn(m.n) + 1)
		if len(m.adj[v]) == 0 {
			continue
		}
		h := m.adj[v][m.r.Intn(len(m.adj[v]))]
		return v, h.to, true
	}
	return 0, 0, false
}

// sideSize counts the nodes reachable from a over modelled forest edges
// without crossing {a,b}, stopping at limit. Uses the shared BFS scratch.
func (m *model) sideSize(a, b uint32, limit int) int {
	m.queue = m.queue[:0]
	m.queue = append(m.queue, a)
	m.visited[a] = true
	for qi := 0; qi < len(m.queue) && len(m.queue) < limit; qi++ {
		v := m.queue[qi]
		for _, h := range m.adj[v] {
			if m.visited[h.to] || !m.tree[edgeKey(v, h.to)] {
				continue
			}
			if v == a && h.to == b {
				continue // do not cross the faulted edge itself
			}
			m.visited[h.to] = true
			m.queue = append(m.queue, h.to)
			if len(m.queue) >= limit {
				break
			}
		}
	}
	size := len(m.queue)
	for _, v := range m.queue {
		m.visited[v] = false
	}
	return size
}

// orientSideCap bounds the orientation probes: a side this large counts as
// "big", and probing stops.
const orientSideCap = 4096

// orientSmall orders a forest edge so the smaller side (up to the probe
// cap) comes first — the Event.A initiator contract.
func (m *model) orientSmall(a, b uint32) (uint32, uint32) {
	sa := m.sideSize(a, b, orientSideCap)
	if sa < orientSideCap {
		sb := m.sideSize(b, a, orientSideCap)
		if sb < sa {
			return b, a
		}
		return a, b
	}
	if m.sideSize(b, a, orientSideCap) < orientSideCap {
		return b, a
	}
	return a, b
}

// orientSmallComp orders an insert's endpoints so the one in the smaller
// modelled forest component (up to the probe cap) comes first: when the
// insert joins two trees, the repair's path probe then covers the small
// tree. Passing 0 as the excluded neighbor makes sideSize walk the whole
// component (node IDs are 1-based).
func (m *model) orientSmallComp(a, b uint32) (uint32, uint32) {
	sa := m.sideSize(a, 0, orientSideCap)
	if sa < orientSideCap {
		sb := m.sideSize(b, 0, orientSideCap)
		if sb < sa {
			return b, a
		}
		return a, b
	}
	if m.sideSize(b, 0, orientSideCap) < orientSideCap {
		return b, a
	}
	return a, b
}

// pickNonEdge draws a uniformly random absent edge.
func (m *model) pickNonEdge() (uint32, uint32, bool) {
	for attempt := 0; attempt < 16*m.n; attempt++ {
		a := uint32(m.r.Intn(m.n) + 1)
		b := uint32(m.r.Intn(m.n) + 1)
		if a == b || m.hasEdge(a, b) {
			continue
		}
		return a, b, true
	}
	return 0, 0, false
}

// heals re-inserts up to Heals edges from the partition/burst pool (with
// their original weights), in seeded shuffled order, skipping edges the
// background block already re-created.
func (m *model) heals(p Plan) {
	if p.Heals == 0 || len(m.healPool) == 0 {
		return
	}
	pool := append([]Event(nil), m.healPool...)
	m.r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	done := 0
	for _, ev := range pool {
		if done >= p.Heals {
			break
		}
		// Re-orient at emission time: earlier heals re-merge regions, so
		// the original region-side endpoint may sit in a huge component by
		// now.
		a, b := m.orientSmallComp(ev.A, ev.B)
		if m.ins(a, b, ev.Raw, "heal") {
			done++
		}
	}
}
