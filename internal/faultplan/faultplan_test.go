package faultplan

import (
	"reflect"
	"testing"

	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/spanning"
)

func testGraph(t *testing.T, seed uint64, n int) (*graph.Graph, []int) {
	t.Helper()
	r := rng.New(seed)
	g := graph.GNM(r, n, 3*n, 1024, graph.UniformWeights(r.Split(), 1024))
	return g, spanning.Kruskal(g)
}

func fullPlan() Plan {
	return Plan{
		Partitions: 2, PartitionSize: 6, Heals: 4,
		Bursts: 1, BurstRadius: 1,
		BridgeDeletes: 2, TreeEdgeDeletes: 4, HubDeletes: 2,
		Deletes: 6, Inserts: 6, WeightChanges: 6,
	}
}

func TestCompileDeterministic(t *testing.T) {
	g, forest := testGraph(t, 7, 48)
	a := Compile(fullPlan(), g, forest, 99)
	b := Compile(fullPlan(), g, forest, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (plan, graph, forest, seed) compiled to different event lists")
	}
	c := Compile(fullPlan(), g, forest, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds compiled to identical event lists (suspicious)")
	}
	if len(a) == 0 {
		t.Fatal("full plan compiled to no events")
	}
}

// TestCompileEventsValid replays the compiled list against an independent
// topology model and checks every event is applicable in order: deletes
// hit live edges, inserts hit absent pairs with in-range weights, weight
// changes hit live edges.
func TestCompileEventsValid(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g, forest := testGraph(t, seed, 40)
		events := Compile(fullPlan(), g, forest, seed*13)
		live := make(map[uint64]bool)
		for _, e := range g.Edges() {
			live[edgeKey(e.A, e.B)] = true
		}
		for i, ev := range events {
			k := edgeKey(ev.A, ev.B)
			switch ev.Op {
			case OpDelete:
				if !live[k] {
					t.Fatalf("seed %d event %d: delete of absent edge {%d,%d}", seed, i, ev.A, ev.B)
				}
				delete(live, k)
			case OpInsert:
				if live[k] {
					t.Fatalf("seed %d event %d: insert of present edge {%d,%d}", seed, i, ev.A, ev.B)
				}
				if ev.A == ev.B || ev.Raw < 1 || ev.Raw > g.MaxRaw {
					t.Fatalf("seed %d event %d: bad insert %+v", seed, i, ev)
				}
				live[k] = true
			case OpWeightChange:
				if !live[k] {
					t.Fatalf("seed %d event %d: weight change on absent edge {%d,%d}", seed, i, ev.A, ev.B)
				}
				if ev.Raw < 1 || ev.Raw > g.MaxRaw {
					t.Fatalf("seed %d event %d: weight %d out of range", seed, i, ev.Raw)
				}
			default:
				t.Fatalf("seed %d event %d: unknown op %v", seed, i, ev.Op)
			}
			if ev.Stage == "" {
				t.Fatalf("seed %d event %d: empty stage", seed, i)
			}
		}
	}
}

// TestStageSemantics checks the stages do what they claim: partition cut
// edges reappear in heals, bridge deletes hit actual bridges, tree deletes
// hit forest edges, and the stage order is the documented one.
func TestStageSemantics(t *testing.T) {
	g, forest := testGraph(t, 3, 48)
	events := Compile(fullPlan(), g, forest, 42)

	order := map[string]int{"partition": 0, "burst": 1, "bridge": 2, "tree": 3, "hub": 4, "random": 5, "heal": 6}
	last := -1
	stageSeen := map[string]bool{}
	inForest := make(map[uint64]bool)
	for _, ei := range forest {
		e := g.Edge(ei)
		inForest[edgeKey(e.A, e.B)] = true
	}
	deleted := map[uint64]Event{}
	for i, ev := range events {
		rank, ok := order[ev.Stage]
		if !ok {
			t.Fatalf("event %d: unknown stage %q", i, ev.Stage)
		}
		if rank < last {
			t.Fatalf("event %d: stage %q after a later stage", i, ev.Stage)
		}
		last = rank
		stageSeen[ev.Stage] = true
		if ev.Op == OpDelete && (ev.Stage == "partition" || ev.Stage == "burst") {
			deleted[edgeKey(ev.A, ev.B)] = ev
		}
		switch ev.Stage {
		case "tree", "hub":
			if !inForest[edgeKey(ev.A, ev.B)] {
				t.Fatalf("event %d: %s delete of non-forest edge {%d,%d}", i, ev.Stage, ev.A, ev.B)
			}
		case "heal":
			dev, ok := deleted[edgeKey(ev.A, ev.B)]
			if !ok {
				t.Fatalf("event %d: heal of edge {%d,%d} that no partition/burst deleted", i, ev.A, ev.B)
			}
			if dev.Raw != ev.Raw {
				t.Fatalf("event %d: heal weight %d != original %d", i, ev.Raw, dev.Raw)
			}
		}
	}
	for _, st := range []string{"partition", "tree", "hub", "random", "heal"} {
		if !stageSeen[st] {
			t.Fatalf("full plan emitted no %q events", st)
		}
	}
}

// TestBridgeTargeting compiles a bridge-only plan on a graph with a known
// bridge and checks it is found.
func TestBridgeTargeting(t *testing.T) {
	// Two triangles joined by a single edge (the bridge).
	g := graph.MustNew(6, 64)
	for _, e := range [][2]uint32{{1, 2}, {2, 3}, {1, 3}, {4, 5}, {5, 6}, {4, 6}, {3, 4}} {
		g.MustAddEdge(e[0], e[1], 1)
	}
	forest := spanning.Kruskal(g)
	events := Compile(Plan{BridgeDeletes: 1}, g, forest, 5)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Op != OpDelete || ev.Stage != "bridge" {
		t.Fatalf("unexpected event %+v", ev)
	}
	if !(ev.A == 3 && ev.B == 4 || ev.A == 4 && ev.B == 3) {
		t.Fatalf("bridge delete hit {%d,%d}, want {3,4}", ev.A, ev.B)
	}
}

func TestValidateAndEmpty(t *testing.T) {
	if err := (Plan{Deletes: -1}).Validate(); err == nil {
		t.Fatal("negative count validated")
	}
	if err := fullPlan().Validate(); err != nil {
		t.Fatalf("full plan rejected: %v", err)
	}
	if !(Plan{}).Empty() {
		t.Fatal("zero plan not Empty")
	}
	if fullPlan().Empty() {
		t.Fatal("full plan Empty")
	}
}
