// Package faultplan compiles declarative adversarial fault plans into
// reproducible topology-event lists for the repair harness.
//
// A Plan names targeting strategies (partition-and-heal, correlated
// bursts, bridge/tree-edge/hub deletes, a uniform background block);
// Compile expands it against a concrete topology and seed into a flat
// []Event the harness feeds to the repair admission queue.
//
// Invariants:
//
//   - Determinism: Compile(plan, g, forest, seed) is a pure function of
//     its arguments — same inputs, byte-identical event list. All
//     randomness comes from the seed; map iteration never leaks into
//     ordering (the forest model is walked in sorted-key order).
//   - Self-consistency: the compiler maintains its own mutable model of
//     the evolving topology and never emits an event that is invalid
//     against that model — no delete of an absent edge, no insert of a
//     present one, weight changes only on surviving edges. (The admission
//     queue still tolerates invalid events defensively, because the
//     model's forest approximation is best-effort — see below.)
//   - Best-effort targeting: the model's forest starts as the reference
//     forest and only shrinks on deletion. Real repairs re-mark
//     replacement edges the compiler cannot predict, so "tree edge"
//     targeting degrades to "former tree edge" late in a plan. Targeting
//     guides the adversary; correctness never depends on it.
//   - Minimization: every event records its Stage, so a failing trial
//     reduces to (seed, plan prefix): replay the compiled list up to the
//     failing index to reproduce exactly.
package faultplan
