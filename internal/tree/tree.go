package tree

import (
	"fmt"

	"kkt/internal/congest"
	"kkt/internal/rng"
)

// Message kinds registered by Attach, interned once at package init.
var (
	KindDown  = congest.Kind("tree.down")  // broadcast phase of broadcast-and-echo
	KindUp    = congest.Kind("tree.up")    // echo phase of broadcast-and-echo
	KindToken = congest.Kind("tree.token") // leader-election token
	KindMarkX = congest.Kind("tree.markx") // cross-edge mark request (add-edge forwarding)
)

// Protocol is the per-network instance holding session specs, the state
// pools that keep the per-message path allocation-free, and the protocol
// RNG stream (used only for node-local random choices).
type Protocol struct {
	nw *congest.Network
	// specs binds live broadcast-and-echo sessions to their Spec, indexed
	// by the engine's recycled session slot and validated by the full
	// session ID — no map on the per-message path. Drivers write entries
	// between rounds; handlers only read (and clear, at the root — a
	// session's root is one node, so one shard) their own slots, which
	// keeps the table shard-safe without locks.
	specs []specSlot
	// beFree recycles per-node broadcast-and-echo automaton states, one
	// free list per execution lane so shard workers never contend.
	beFree [][]*beState
	// electBuf is the reusable per-node election state array; electSid is
	// the session currently borrowing it (0 = free). A second concurrent
	// wave — which never happens in the paper's algorithms — falls back to
	// a fresh allocation.
	electBuf []electState
	electSid congest.SessionID
	r        *rng.RNG
}

// specSlot is one entry of the slot-indexed session->spec table.
type specSlot struct {
	sid  congest.SessionID
	spec *Spec
}

// Attach registers the tree protocol handlers on nw and returns the
// instance. Call exactly once per network.
func Attach(nw *congest.Network) *Protocol {
	pr := &Protocol{
		nw:     nw,
		beFree: make([][]*beState, nw.Lanes()),
		r:      nw.Rand(),
	}
	nw.RegisterHandler(KindDown, pr.onDown)
	nw.RegisterHandler(KindUp, pr.onUp)
	nw.RegisterHandler(KindToken, pr.onToken)
	nw.RegisterHandler(KindMarkX, pr.onMarkX)
	return pr
}

// Network returns the attached network.
func (pr *Protocol) Network() *congest.Network { return pr.nw }

// NodeRand returns a deterministic node-local RNG for a given session —
// the node's private coin flips (e.g. the cycle-breaking choice in
// Build-ST). The session's creation serial (not the packed ID) seeds the
// stream, so the draws are independent of session-slot recycling and
// identical to the historical monotonic-ID seeding.
func (pr *Protocol) NodeRand(node congest.NodeID, sid congest.SessionID) *rng.RNG {
	return rng.New(uint64(node)*0x9e3779b97f4a7c15 ^ sid.Serial()*0xbf58476d1ce4e5b9 ^ 0xc2b2ae3d27d4eb4f)
}

// SendMarkX asks the node across the (existing, typically unmarked) link
// {from,to} to mark its half of the edge at the next barrier. Used by
// drivers acting as the in-tree endpoint of a newly selected edge.
func (pr *Protocol) SendMarkX(from, to congest.NodeID) {
	pr.nw.Send(from, to, KindMarkX, 0, 16, nil)
}

func (pr *Protocol) onMarkX(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	if node.EdgeTo(msg.From) == nil {
		panic(fmt.Sprintf("tree: markx for missing edge {%d,%d}", msg.From, node.ID))
	}
	node.StageMark(msg.From)
}

// AddEdgeSpec returns the broadcast-and-echo spec of the paper's "Add
// Edge" instruction: the broadcast carries the selected edge's number;
// the in-tree endpoint(s) stage a mark on it and forward a markx across
// it so the other endpoint (possibly outside the tree) also stages one.
// All marks take effect at the next barrier (ApplyStaged).
func AddEdgeSpec(edgeNum uint64) *Spec {
	return &Spec{
		Down:     edgeNum,
		DownBits: 64,
		UpBits:   1,
		OnDown: func(node *congest.NodeState, down any, emit Emit) {
			en := down.(uint64)
			for i := range node.Edges {
				he := &node.Edges[i]
				if he.EdgeNum == en && !he.Marked {
					node.StageMark(he.Neighbor)
					emit(he.Neighbor, KindMarkX, 16, nil)
				}
			}
		},
		Combine: func(node *congest.NodeState, down, local any, children []ChildEcho) any {
			return nil
		},
	}
}
