package tree

import (
	"testing"

	"kkt/internal/congest"
	"kkt/internal/graph"
)

// pathNet builds a network over a path 1-..-n with all edges marked.
func pathNet(t *testing.T, n int, opts ...congest.Option) (*congest.Network, *Protocol) {
	t.Helper()
	g := graph.Path(n, 1000, func(k int) uint64 { return uint64(k + 1) })
	nw := congest.NewNetwork(g, opts...)
	var forest [][2]congest.NodeID
	for i := 1; i < n; i++ {
		forest = append(forest, [2]congest.NodeID{congest.NodeID(i), congest.NodeID(i + 1)})
	}
	nw.SetForest(forest)
	return nw, Attach(nw)
}

// sumSpec aggregates the sum of node IDs over the tree.
func sumSpec() *Spec {
	return &Spec{
		DownBits: 8,
		UpBits:   32,
		Local: func(node *congest.NodeState, down any) any {
			return uint64(node.ID)
		},
		Combine: func(node *congest.NodeState, down any, local any, children []ChildEcho) any {
			total := local.(uint64)
			for _, c := range children {
				total += c.Value.(uint64)
			}
			return total
		},
	}
}

func TestBroadcastEchoSum(t *testing.T) {
	for _, n := range []int{2, 5, 17} {
		for _, root := range []congest.NodeID{1, congest.NodeID((n + 1) / 2), congest.NodeID(n)} {
			nw, pr := pathNet(t, n)
			var got uint64
			nw.Spawn("be", func(p *congest.Proc) error {
				v, err := pr.BroadcastEcho(p, root, sumSpec())
				if err != nil {
					return err
				}
				got = v.(uint64)
				return nil
			})
			if err := nw.Run(); err != nil {
				t.Fatal(err)
			}
			want := uint64(n*(n+1)) / 2
			if got != want {
				t.Errorf("n=%d root=%d: sum = %d, want %d", n, root, got, want)
			}
			// exactly one down + one up per tree edge.
			if c := nw.Counters(); c.Messages != uint64(2*(n-1)) {
				t.Errorf("n=%d root=%d: messages = %d, want %d", n, root, c.Messages, 2*(n-1))
			}
		}
	}
}

func TestBroadcastEchoSingleton(t *testing.T) {
	g := graph.Path(3, 1, graph.UnitWeights())
	nw := congest.NewNetwork(g)
	// nothing marked: node 2 is a singleton fragment.
	pr := Attach(nw)
	var got uint64
	nw.Spawn("be", func(p *congest.Proc) error {
		v, err := pr.BroadcastEcho(p, 2, sumSpec())
		if err != nil {
			return err
		}
		got = v.(uint64)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("singleton sum = %d, want 2", got)
	}
	if c := nw.Counters(); c.Messages != 0 {
		t.Errorf("singleton broadcast used %d messages", c.Messages)
	}
}

func TestBroadcastEchoRounds(t *testing.T) {
	// From an end of a path, B&E takes 2*(n-1) rounds: n-1 down, n-1 up.
	const n = 8
	nw, pr := pathNet(t, n)
	nw.Spawn("be", func(p *congest.Proc) error {
		_, err := pr.BroadcastEcho(p, 1, sumSpec())
		return err
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.Now() != 2*(n-1) {
		t.Errorf("rounds = %d, want %d", nw.Now(), 2*(n-1))
	}
}

func TestBroadcastEchoAsync(t *testing.T) {
	const n = 9
	nw, pr := pathNet(t, n, congest.WithAsync(12), congest.WithSeed(7))
	var got uint64
	nw.Spawn("be", func(p *congest.Proc) error {
		v, err := pr.BroadcastEcho(p, 4, sumSpec())
		if err != nil {
			return err
		}
		got = v.(uint64)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if want := uint64(n*(n+1)) / 2; got != want {
		t.Errorf("async sum = %d, want %d", got, want)
	}
}

func TestBroadcastEchoChildEdgeValues(t *testing.T) {
	// Max edge weight on the path from each node up to the root: at the
	// root this is the max weight in the tree. Exercises ChildEcho.Edge.
	const n = 6
	nw, pr := pathNet(t, n) // weights 1..n-1 along the path
	spec := &Spec{
		DownBits: 8,
		UpBits:   64,
		Combine: func(node *congest.NodeState, down, local any, children []ChildEcho) any {
			var best uint64
			for _, c := range children {
				if c.Edge.Raw > best {
					best = c.Edge.Raw
				}
				if v := c.Value.(uint64); v > best {
					best = v
				}
			}
			return best
		},
	}
	var got uint64
	nw.Spawn("be", func(p *congest.Proc) error {
		v, err := pr.BroadcastEcho(p, 1, spec)
		if err != nil {
			return err
		}
		got = v.(uint64)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got != uint64(n-1) {
		t.Errorf("max edge weight = %d, want %d", got, n-1)
	}
}

func TestBroadcastEchoOnDownEmit(t *testing.T) {
	// Node 3 forwards a markx across the unmarked chord {3,5} when the
	// broadcast reaches it — the add-edge forwarding pattern.
	g := graph.Path(5, 10, graph.UnitWeights())
	g.MustAddEdge(3, 5, 7)
	nw := congest.NewNetwork(g)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {2, 3}, {3, 4}})
	pr := Attach(nw)
	spec := sumSpec()
	spec.OnDown = func(node *congest.NodeState, down any, emit Emit) {
		if node.ID == 3 {
			node.StageMark(5)
			emit(5, KindMarkX, 16, nil)
		}
	}
	nw.Spawn("be", func(p *congest.Proc) error {
		if _, err := pr.BroadcastEcho(p, 1, spec); err != nil {
			return err
		}
		p.AwaitQuiescence()
		nw.ApplyStaged()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if !nw.Node(5).EdgeTo(3).Marked || !nw.Node(3).EdgeTo(5).Marked {
		t.Error("cross-edge mark did not propagate to both halves")
	}
	// invariant check runs inside MarkedEdges
	if got := len(nw.MarkedEdges()); got != 4 {
		t.Errorf("marked edges = %d, want 4", got)
	}
}

func TestBroadcastEchoPanicsOnCycle(t *testing.T) {
	g := graph.Ring(4, 1, graph.UnitWeights())
	nw := congest.NewNetwork(g)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {2, 3}, {3, 4}, {1, 4}})
	pr := Attach(nw)
	nw.Spawn("be", func(p *congest.Proc) error {
		_, err := pr.BroadcastEcho(p, 1, sumSpec())
		return err
	})
	defer func() {
		if recover() == nil {
			t.Error("B&E over a cycle should panic")
		}
	}()
	_ = nw.Run()
}

func electOn(t *testing.T, nw *congest.Network, pr *Protocol) ElectResult {
	t.Helper()
	var res ElectResult
	nw.Spawn("elect", func(p *congest.Proc) error {
		r, err := pr.ElectAll(p)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestElectPathOdd(t *testing.T) {
	// The election guarantees a unique leader per fragment (one median,
	// or the higher of two adjacent medians when tokens cross) — the
	// exact node depends on message timing.
	nw, pr := pathNet(t, 5)
	res := electOn(t, nw, pr)
	if len(res.Leaders) != 1 || res.Leaders[0] < 1 || res.Leaders[0] > 5 {
		t.Errorf("leaders = %v, want exactly one in 1..5", res.Leaders)
	}
	if len(res.CycleNodes) != 0 {
		t.Errorf("unexpected cycle nodes: %v", res.CycleNodes)
	}
}

func TestElectPathEven(t *testing.T) {
	nw, pr := pathNet(t, 4)
	res := electOn(t, nw, pr)
	// medians 2 and 3; higher ID wins.
	if len(res.Leaders) != 1 || res.Leaders[0] != 3 {
		t.Errorf("leaders = %v, want [3]", res.Leaders)
	}
}

func TestElectTwoNodes(t *testing.T) {
	nw, pr := pathNet(t, 2)
	res := electOn(t, nw, pr)
	if len(res.Leaders) != 1 || res.Leaders[0] != 2 {
		t.Errorf("leaders = %v, want [2]", res.Leaders)
	}
}

func TestElectStar(t *testing.T) {
	g := graph.Star(6, 1, graph.UnitWeights())
	nw := congest.NewNetwork(g)
	var forest [][2]congest.NodeID
	for i := 2; i <= 6; i++ {
		forest = append(forest, [2]congest.NodeID{1, congest.NodeID(i)})
	}
	nw.SetForest(forest)
	pr := Attach(nw)
	res := electOn(t, nw, pr)
	if len(res.Leaders) != 1 {
		t.Errorf("leaders = %v, want exactly one", res.Leaders)
	}
}

func TestElectAllSingletons(t *testing.T) {
	g := graph.Path(4, 1, graph.UnitWeights())
	nw := congest.NewNetwork(g) // nothing marked
	pr := Attach(nw)
	res := electOn(t, nw, pr)
	if len(res.Leaders) != 4 {
		t.Errorf("leaders = %v, want all four singletons", res.Leaders)
	}
	if nw.Counters().Messages != 0 {
		t.Error("singleton election should cost nothing")
	}
}

func TestElectMultipleFragments(t *testing.T) {
	g := graph.Path(7, 1, graph.UnitWeights())
	nw := congest.NewNetwork(g)
	// fragments {1,2,3}, {4}, {5,6,7}
	nw.SetForest([][2]congest.NodeID{{1, 2}, {2, 3}, {5, 6}, {6, 7}})
	pr := Attach(nw)
	res := electOn(t, nw, pr)
	if len(res.Leaders) != 3 {
		t.Fatalf("leaders = %v, want one per fragment", res.Leaders)
	}
	fragments := [][2]congest.NodeID{{1, 3}, {4, 4}, {5, 7}}
	for i, f := range fragments {
		if res.Leaders[i] < f[0] || res.Leaders[i] > f[1] {
			t.Errorf("leader %d = %d, want in [%d,%d]", i, res.Leaders[i], f[0], f[1])
		}
	}
}

func TestElectDetectsCycle(t *testing.T) {
	// triangle 1-2-3 with a tail 3-4-5: the triangle nodes are stuck.
	g := graph.MustNew(5, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	nw := congest.NewNetwork(g)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {4, 5}})
	pr := Attach(nw)
	res := electOn(t, nw, pr)
	if len(res.Leaders) != 0 {
		t.Errorf("leaders on cyclic fragment: %v", res.Leaders)
	}
	if len(res.CycleNodes) != 3 {
		t.Fatalf("cycle nodes = %v, want the triangle", res.CycleNodes)
	}
	for i, want := range []congest.NodeID{1, 2, 3} {
		if res.CycleNodes[i].Node != want {
			t.Errorf("cycle node %d = %d, want %d", i, res.CycleNodes[i].Node, want)
		}
	}
	// each triangle node's cycle neighbours are the other two.
	cn := res.CycleNodes[0]
	if cn.Left != 2 || cn.Right != 3 {
		t.Errorf("node 1 cycle neighbours = %d,%d, want 2,3", cn.Left, cn.Right)
	}
}

func TestElectFullRing(t *testing.T) {
	g := graph.Ring(6, 1, graph.UnitWeights())
	nw := congest.NewNetwork(g)
	var forest [][2]congest.NodeID
	for i := 1; i < 6; i++ {
		forest = append(forest, [2]congest.NodeID{congest.NodeID(i), congest.NodeID(i + 1)})
	}
	forest = append(forest, [2]congest.NodeID{1, 6})
	nw.SetForest(forest)
	pr := Attach(nw)
	res := electOn(t, nw, pr)
	if len(res.CycleNodes) != 6 {
		t.Errorf("cycle nodes = %d, want 6", len(res.CycleNodes))
	}
	if len(res.Leaders) != 0 {
		t.Errorf("leaders = %v, want none", res.Leaders)
	}
}

func TestElectMessageCountLinear(t *testing.T) {
	// Election messages are at most one per tree edge plus one crossing.
	const n = 50
	nw, pr := pathNet(t, n)
	electOn(t, nw, pr)
	c := nw.Counters()
	if c.Messages > uint64(n) {
		t.Errorf("election used %d messages on a %d-path", c.Messages, n)
	}
}

func TestElectConcurrentWithSecondWave(t *testing.T) {
	// two consecutive waves on the same network must both work (state
	// cleanup between sessions).
	nw, pr := pathNet(t, 5)
	nw.Spawn("double", func(p *congest.Proc) error {
		r1, err := pr.ElectAll(p)
		if err != nil {
			return err
		}
		r2, err := pr.ElectAll(p)
		if err != nil {
			return err
		}
		if len(r1.Leaders) != 1 || len(r2.Leaders) != 1 || r1.Leaders[0] != r2.Leaders[0] {
			t.Errorf("waves disagree: %v vs %v", r1.Leaders, r2.Leaders)
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}
