package tree

import (
	"fmt"
	"sort"

	"kkt/internal/congest"
)

// CycleNode reports a node that detected (by timeout) that it lies on a
// cycle of marked edges: it heard from all marked neighbours except the
// two given ones, which are its neighbours along the cycle. (Paper §4.2:
// "the nodes on the cycle will be exactly the set of nodes which fail to
// hear from all but two of their neighbors.")
type CycleNode struct {
	Node        congest.NodeID
	Left, Right congest.NodeID
}

// ElectResult is the outcome of one global election wave.
type ElectResult struct {
	// Leaders holds the elected leader of every acyclic fragment
	// (including singleton nodes), in ascending ID order.
	Leaders []congest.NodeID
	// CycleNodes lists the nodes that detected they are on a cycle, in
	// ascending ID order. Empty when the marked subgraph is a forest.
	CycleNodes []CycleNode
}

// electState is the per-node automaton state of one election wave. Token
// receipts are a bitmask over the node's sorted edge slice (index =
// position in NodeState.Edges) instead of a neighbour-ID map: recvLow
// covers the first 64 incident edges inline, recvHigh spills lazily for
// high-degree nodes. States live in the Protocol's reusable per-node
// buffer, so a warm wave allocates nothing.
//
// Invariant: the topology must not mutate while a wave is in flight —
// edge positions are the receipt keys, so an insert/delete would shift
// them. The paper's algorithms only run elections on a quiescent
// topology; onToken panics if a token arrives over a vanished edge.
type electState struct {
	recvLow  uint64
	recvHigh []uint64
	sentTo   congest.NodeID
	decided  bool
	isLeader bool
}

// reset clears a state for a new wave, keeping spill capacity.
func (st *electState) reset() {
	for i := range st.recvHigh {
		st.recvHigh[i] = 0
	}
	st.recvLow = 0
	st.sentTo = 0
	st.decided = false
	st.isLeader = false
}

// markReceived records a token received over the i-th incident edge.
func (st *electState) markReceived(i int) {
	if i < 64 {
		st.recvLow |= 1 << uint(i)
		return
	}
	w := (i - 64) >> 6
	for len(st.recvHigh) <= w {
		st.recvHigh = append(st.recvHigh, 0)
	}
	st.recvHigh[w] |= 1 << uint((i-64)&63)
}

// received reports whether a token arrived over the i-th incident edge.
func (st *electState) received(i int) bool {
	if i < 64 {
		return st.recvLow&(1<<uint(i)) != 0
	}
	w := (i - 64) >> 6
	if w >= len(st.recvHigh) {
		return false
	}
	return st.recvHigh[w]&(1<<uint((i-64)&63)) != 0
}

// StartElectAll begins a synchronised election wave across all nodes: a
// leader per marked fragment, by the leaf-initiated median convergence of
// §3.3. All nodes start simultaneously (the network is synchronous and
// every node knows when an iteration begins). The session completes at
// quiescence — the simulator's "after the maximum time needed for leader
// election" — with an ElectResult.
func (pr *Protocol) StartElectAll() congest.SessionID {
	if o := pr.nw.Obs(); o != nil {
		o.Count("tree.elect", 1)
	}
	var sid congest.SessionID
	sid = pr.nw.NewSession(func() (any, error) { return pr.collectElection(sid) })
	n := pr.nw.N()
	var states []electState
	if pr.electSid == 0 {
		if cap(pr.electBuf) < n+1 {
			pr.electBuf = make([]electState, n+1)
		}
		pr.electBuf = pr.electBuf[:n+1]
		pr.electSid = sid
		states = pr.electBuf
	} else {
		states = make([]electState, n+1) // concurrent wave: rare, correct, slower
	}
	for v := 1; v <= n; v++ {
		node := pr.nw.Node(congest.NodeID(v))
		st := &states[v]
		st.reset()
		node.SetSessionState(sid, st)
		pr.electMaybeAct(pr.nw, node, sid, st)
	}
	return sid
}

// ElectAll is the blocking driver helper for StartElectAll.
func (pr *Protocol) ElectAll(p *congest.Proc) (ElectResult, error) {
	res, err := p.Await(pr.StartElectAll())
	if err != nil {
		return ElectResult{}, err
	}
	return res.(ElectResult), nil
}

// electMaybeAct applies the election rules at a node:
//   - no marked neighbours: the node is a singleton fragment and its own
//     leader;
//   - heard from all marked neighbours: the node is a median; if its own
//     earlier token crossed with the last sender's, the higher ID of the
//     two adjacent medians wins;
//   - heard from all but one and not yet sent: send the token that way.
func (pr *Protocol) electMaybeAct(nw *congest.Network, node *congest.NodeState, sid congest.SessionID, st *electState) {
	if st.decided {
		return
	}
	// Inline walk over the sorted edge slice: this runs once per received
	// token, so it must not allocate a neighbour list.
	marked, pending := 0, 0
	var firstPending congest.NodeID
	for i := range node.Edges {
		he := &node.Edges[i]
		if !he.Marked {
			continue
		}
		marked++
		if !st.received(i) {
			pending++
			if pending == 1 {
				firstPending = he.Neighbor
			}
		}
	}
	if marked == 0 {
		st.decided = true
		st.isLeader = true
		return
	}
	switch pending {
	case 0:
		st.decided = true
		if st.sentTo == 0 {
			st.isLeader = true // sole median
		} else {
			st.isLeader = node.ID > st.sentTo // two adjacent medians
		}
	case 1:
		if st.sentTo == 0 {
			st.sentTo = firstPending
			nw.Send(node.ID, firstPending, KindToken, sid, 8, nil)
		}
	}
}

func (pr *Protocol) onToken(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	raw := node.SessionState(msg.Session)
	st, ok := raw.(*electState)
	if !ok {
		panic(fmt.Sprintf("tree: node %d got election token without state in session %d", node.ID, msg.Session))
	}
	i := node.EdgeIndex(msg.From)
	if i < 0 {
		panic(fmt.Sprintf("tree: node %d got election token over vanished edge from %d — topology mutated mid-wave", node.ID, msg.From))
	}
	st.markReceived(i)
	pr.electMaybeAct(nw, node, msg.Session, st)
}

// collectElection is the quiescence callback: gather leaders and stuck
// (cycle) nodes, clean up all per-node state, and release the wave buffer.
func (pr *Protocol) collectElection(sid congest.SessionID) (any, error) {
	var res ElectResult
	for v := 1; v <= pr.nw.N(); v++ {
		node := pr.nw.Node(congest.NodeID(v))
		raw := node.SessionState(sid)
		st, ok := raw.(*electState)
		if !ok {
			continue
		}
		if st.decided && st.isLeader {
			res.Leaders = append(res.Leaders, node.ID)
		}
		if !st.decided {
			// Count pending neighbours without building a list: most
			// undecided nodes are interior path nodes with exactly one
			// pending edge, and this sweep visits every node.
			pending := 0
			var left, right congest.NodeID
			for i := range node.Edges {
				if node.Edges[i].Marked && !st.received(i) {
					switch pending {
					case 0:
						left = node.Edges[i].Neighbor
					case 1:
						right = node.Edges[i].Neighbor
					}
					pending++
				}
			}
			if pending == 2 {
				res.CycleNodes = append(res.CycleNodes, CycleNode{Node: node.ID, Left: left, Right: right})
			}
		}
		node.SetSessionState(sid, nil)
	}
	if pr.electSid == sid {
		pr.electSid = 0
	}
	sort.Slice(res.Leaders, func(i, j int) bool { return res.Leaders[i] < res.Leaders[j] })
	sort.Slice(res.CycleNodes, func(i, j int) bool { return res.CycleNodes[i].Node < res.CycleNodes[j].Node })
	return res, nil
}
