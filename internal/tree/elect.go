package tree

import (
	"fmt"
	"sort"

	"kkt/internal/congest"
)

// CycleNode reports a node that detected (by timeout) that it lies on a
// cycle of marked edges: it heard from all marked neighbours except the
// two given ones, which are its neighbours along the cycle. (Paper §4.2:
// "the nodes on the cycle will be exactly the set of nodes which fail to
// hear from all but two of their neighbors.")
type CycleNode struct {
	Node        congest.NodeID
	Left, Right congest.NodeID
}

// ElectResult is the outcome of one global election wave.
type ElectResult struct {
	// Leaders holds the elected leader of every acyclic fragment
	// (including singleton nodes), in ascending ID order.
	Leaders []congest.NodeID
	// CycleNodes lists the nodes that detected they are on a cycle, in
	// ascending ID order. Empty when the marked subgraph is a forest.
	CycleNodes []CycleNode
}

// electState is the per-node automaton state of one election wave.
type electState struct {
	received map[congest.NodeID]bool
	sentTo   congest.NodeID
	decided  bool
	isLeader bool
}

// StartElectAll begins a synchronised election wave across all nodes: a
// leader per marked fragment, by the leaf-initiated median convergence of
// §3.3. All nodes start simultaneously (the network is synchronous and
// every node knows when an iteration begins). The session completes at
// quiescence — the simulator's "after the maximum time needed for leader
// election" — with an ElectResult.
func (pr *Protocol) StartElectAll() congest.SessionID {
	var sid congest.SessionID
	sid = pr.nw.NewSession(func() (any, error) { return pr.collectElection(sid) })
	for v := 1; v <= pr.nw.N(); v++ {
		node := pr.nw.Node(congest.NodeID(v))
		st := &electState{received: make(map[congest.NodeID]bool)}
		node.SetSessionState(sid, st)
		pr.electMaybeAct(node, sid, st)
	}
	return sid
}

// ElectAll is the blocking driver helper for StartElectAll.
func (pr *Protocol) ElectAll(p *congest.Proc) (ElectResult, error) {
	res, err := p.Await(pr.StartElectAll())
	if err != nil {
		return ElectResult{}, err
	}
	return res.(ElectResult), nil
}

// electMaybeAct applies the election rules at a node:
//   - no marked neighbours: the node is a singleton fragment and its own
//     leader;
//   - heard from all marked neighbours: the node is a median; if its own
//     earlier token crossed with the last sender's, the higher ID of the
//     two adjacent medians wins;
//   - heard from all but one and not yet sent: send the token that way.
func (pr *Protocol) electMaybeAct(node *congest.NodeState, sid congest.SessionID, st *electState) {
	if st.decided {
		return
	}
	// Inline walk over the sorted edge slice: this runs once per received
	// token, so it must not allocate a neighbour list.
	marked, pending := 0, 0
	var firstPending congest.NodeID
	for i := range node.Edges {
		he := &node.Edges[i]
		if !he.Marked {
			continue
		}
		marked++
		if !st.received[he.Neighbor] {
			pending++
			if pending == 1 {
				firstPending = he.Neighbor
			}
		}
	}
	if marked == 0 {
		st.decided = true
		st.isLeader = true
		return
	}
	switch pending {
	case 0:
		st.decided = true
		if st.sentTo == 0 {
			st.isLeader = true // sole median
		} else {
			st.isLeader = node.ID > st.sentTo // two adjacent medians
		}
	case 1:
		if st.sentTo == 0 {
			st.sentTo = firstPending
			pr.nw.Send(node.ID, firstPending, KindToken, sid, 8, nil)
		}
	}
}

func (pr *Protocol) onToken(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	raw := node.SessionState(msg.Session)
	st, ok := raw.(*electState)
	if !ok {
		panic(fmt.Sprintf("tree: node %d got election token without state in session %d", node.ID, msg.Session))
	}
	st.received[msg.From] = true
	pr.electMaybeAct(node, msg.Session, st)
}

// collectElection is the quiescence callback: gather leaders and stuck
// (cycle) nodes, and clean up all per-node state.
func (pr *Protocol) collectElection(sid congest.SessionID) (any, error) {
	var res ElectResult
	for v := 1; v <= pr.nw.N(); v++ {
		node := pr.nw.Node(congest.NodeID(v))
		raw := node.SessionState(sid)
		st, ok := raw.(*electState)
		if !ok {
			continue
		}
		if st.decided && st.isLeader {
			res.Leaders = append(res.Leaders, node.ID)
		}
		if !st.decided {
			var pending []congest.NodeID
			for _, nb := range node.MarkedNeighbors() {
				if !st.received[nb] {
					pending = append(pending, nb)
				}
			}
			if len(pending) == 2 {
				res.CycleNodes = append(res.CycleNodes, CycleNode{Node: node.ID, Left: pending[0], Right: pending[1]})
			}
		}
		node.SetSessionState(sid, nil)
	}
	sort.Slice(res.Leaders, func(i, j int) bool { return res.Leaders[i] < res.Leaders[j] })
	sort.Slice(res.CycleNodes, func(i, j int) bool { return res.CycleNodes[i].Node < res.CycleNodes[j].Node })
	return res, nil
}
