package tree

import (
	"testing"

	"kkt/internal/race"

	"kkt/internal/congest"
)

// TestElectionWaveAllocs pins one global election wave on a 256-node
// marked path at constant allocations: per-node election states live in
// the protocol's reusable buffer, token receipts are edge-index bitmasks,
// and the session machinery recycles slots. The budget covers the driver
// spawn and the ElectResult assembly; per-node or per-token churn on a
// 256-node path would exceed it by an order of magnitude.
func TestElectionWaveAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	const n = 256
	nw, pr := pathNet(t, n)
	wave := func() {
		nw.Spawn("elect", func(p *congest.Proc) error {
			res, err := pr.ElectAll(p)
			if err != nil {
				return err
			}
			if len(res.Leaders) != 1 {
				t.Errorf("leaders = %v, want one", res.Leaders)
			}
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave() // warm the election buffer and session slots
	avg := testing.AllocsPerRun(5, wave)
	if avg > 48 {
		t.Errorf("election wave on %d nodes: %.1f allocs, budget 48 — per-node churn reintroduced?", n, avg)
	}
}

// TestUnboxedBroadcastEchoAllocs pins an unboxed-lane broadcast-and-echo
// (the TestOut shape: XOR-folded words) on a 256-node marked path at
// constant allocations: pooled beStates, slot-indexed specs, unboxed
// echoes in Message.U, and CompleteSessionU/AwaitU end to end.
func TestUnboxedBroadcastEchoAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	const n = 256
	nw, pr := pathNet(t, n)
	spec := &Spec{
		DownBits: 8,
		UpBits:   64,
		LocalU: func(node *congest.NodeState, down any) uint64 {
			return uint64(node.ID)
		},
		CombineU: func(node *congest.NodeState, down any, acc, child uint64) uint64 {
			return acc + child
		},
	}
	wave := func() {
		nw.Spawn("be", func(p *congest.Proc) error {
			got, err := pr.BroadcastEchoU(p, 1, spec)
			if err != nil {
				return err
			}
			if want := uint64(n*(n+1)) / 2; got != want {
				t.Errorf("sum = %d, want %d", got, want)
			}
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave() // warm the beState pool and message free list
	avg := testing.AllocsPerRun(5, wave)
	if avg > 32 {
		t.Errorf("unboxed B&E on %d nodes: %.1f allocs, budget 32 — per-node churn reintroduced?", n, avg)
	}
}
