package tree

import (
	"fmt"

	"kkt/internal/congest"
)

// ChildEcho is one child's aggregated echo, tagged with the connecting
// half-edge so Combine can use the edge's weight (e.g. tree-path maxima).
type ChildEcho struct {
	Edge  congest.HalfEdge
	Value any
}

// Emit lets OnDown side effects send extra protocol messages from the
// receiving node (e.g. forwarding an add-edge instruction across the new
// edge).
type Emit func(to congest.NodeID, kind congest.KindID, bits int, payload any)

// Spec describes one broadcast-and-echo: what the root broadcasts, what
// each node computes locally, and how echoes aggregate. The functions are
// shared protocol code — identical at every node — and must only read the
// *NodeState they are handed plus the broadcast value.
type Spec struct {
	// Down is the broadcast payload, forwarded unchanged down the tree.
	Down any
	// DownBits / UpBits declare the message sizes for cost accounting
	// and budget checking.
	DownBits int
	UpBits   int
	// Local computes the node's own contribution upon receiving the
	// broadcast. May be nil (treated as contributing nil).
	Local func(node *congest.NodeState, down any) any
	// Combine folds the node's local value with its children's echoes
	// into the value echoed to the parent (and, at the root, into the
	// session result). Required.
	Combine func(node *congest.NodeState, down any, local any, children []ChildEcho) any
	// OnDown, if non-nil, runs at every node when the broadcast arrives
	// (including the root at start) and may mutate local state and emit
	// extra messages. Used for marking instructions.
	OnDown func(node *congest.NodeState, down any, emit Emit)
}

// beState is the per-node automaton state of one broadcast-and-echo.
type beState struct {
	parent   congest.NodeID // 0 at the root
	expected int            // children still to echo
	children []ChildEcho
	local    any
}

// StartBroadcastEcho begins a broadcast-and-echo rooted at root over the
// marked edges. The returned session completes (at the initiating driver)
// with Combine's value at the root. The marked subgraph containing root
// must be a tree, otherwise the run panics — cycles are a protocol error
// here (Build-ST handles cycles via elections, never via B&E).
func (pr *Protocol) StartBroadcastEcho(root congest.NodeID, spec *Spec) congest.SessionID {
	if spec.Combine == nil {
		panic("tree: Spec.Combine is required")
	}
	sid := pr.nw.NewSession(nil)
	pr.specs[sid] = spec
	node := pr.nw.Node(root)
	st := &beState{parent: 0}
	pr.runDownAt(node, sid, spec, st)
	return sid
}

// BroadcastEcho is the blocking driver helper: start, await, return.
func (pr *Protocol) BroadcastEcho(p *congest.Proc, root congest.NodeID, spec *Spec) (any, error) {
	sid := pr.StartBroadcastEcho(root, spec)
	return p.Await(sid)
}

// runDownAt performs the on-broadcast work at a node: side effects, local
// compute, forwarding, and the immediate echo when the node is a leaf.
func (pr *Protocol) runDownAt(node *congest.NodeState, sid congest.SessionID, spec *Spec, st *beState) {
	if spec.OnDown != nil {
		spec.OnDown(node, spec.Down, func(to congest.NodeID, kind congest.KindID, bits int, payload any) {
			pr.nw.Send(node.ID, to, kind, sid, bits, payload)
		})
	}
	if spec.Local != nil {
		st.local = spec.Local(node, spec.Down)
	}
	for i := range node.Edges {
		he := &node.Edges[i]
		if he.Marked && he.Neighbor != st.parent {
			st.expected++
			pr.nw.Send(node.ID, he.Neighbor, KindDown, sid, spec.DownBits, spec.Down)
		}
	}
	if st.expected == 0 {
		pr.echoUp(node, sid, spec, st)
		return
	}
	node.SetSessionState(sid, st)
}

// echoUp finishes a node: aggregates and either completes the session (at
// the root) or echoes to the parent.
func (pr *Protocol) echoUp(node *congest.NodeState, sid congest.SessionID, spec *Spec, st *beState) {
	val := spec.Combine(node, spec.Down, st.local, st.children)
	node.SetSessionState(sid, nil)
	if st.parent == 0 {
		delete(pr.specs, sid)
		pr.nw.CompleteSession(sid, val, nil)
		return
	}
	pr.nw.Send(node.ID, st.parent, KindUp, sid, spec.UpBits, val)
}

func (pr *Protocol) onDown(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	spec, ok := pr.specs[msg.Session]
	if !ok {
		panic(fmt.Sprintf("tree: down message for unknown session %d", msg.Session))
	}
	if node.SessionState(msg.Session) != nil {
		panic(fmt.Sprintf("tree: node %d got a second broadcast in session %d — marked subgraph is not a tree", node.ID, msg.Session))
	}
	st := &beState{parent: msg.From}
	pr.runDownAt(node, msg.Session, spec, st)
}

func (pr *Protocol) onUp(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	spec, ok := pr.specs[msg.Session]
	if !ok {
		panic(fmt.Sprintf("tree: up message for unknown session %d", msg.Session))
	}
	raw := node.SessionState(msg.Session)
	st, ok := raw.(*beState)
	if !ok {
		panic(fmt.Sprintf("tree: node %d got echo without broadcast state in session %d", node.ID, msg.Session))
	}
	he := node.EdgeTo(msg.From)
	st.children = append(st.children, ChildEcho{Edge: *he, Value: msg.Payload})
	st.expected--
	if st.expected == 0 {
		pr.echoUp(node, msg.Session, spec, st)
	}
}
