package tree

import (
	"fmt"

	"kkt/internal/congest"
)

// ChildEcho is one child's aggregated echo, tagged with the connecting
// half-edge so Combine can use the edge's weight (e.g. tree-path maxima).
type ChildEcho struct {
	Edge  congest.HalfEdge
	Value any
}

// Emit lets OnDown side effects send extra protocol messages from the
// receiving node (e.g. forwarding an add-edge instruction across the new
// edge).
type Emit func(to congest.NodeID, kind congest.KindID, bits int, payload any)

// Spec describes one broadcast-and-echo: what the root broadcasts, what
// each node computes locally, and how echoes aggregate. The functions are
// shared protocol code — identical at every node — and must only read the
// *NodeState they are handed plus the broadcast value.
//
// A spec uses exactly one of two echo lanes:
//
//   - the boxed lane (Local/Combine): echo values are `any`; children's
//     echoes are collected into a ChildEcho slice and folded at once.
//     General, but every echo boxes its value.
//
//   - the unboxed lane (LocalU/CombineU): echo values are single uint64
//     words (parities, XORs, small counters — the dominant case in the
//     paper's sketches). Words travel in Message.U, fold into a per-node
//     accumulator as they arrive, and complete the session via
//     CompleteSessionU — no interface allocation anywhere on the path.
type Spec struct {
	// Down is the broadcast payload, forwarded unchanged down the tree.
	Down any
	// DownBits / UpBits declare the message sizes for cost accounting
	// and budget checking.
	DownBits int
	UpBits   int
	// Local computes the node's own contribution upon receiving the
	// broadcast (boxed lane). May be nil (treated as contributing nil).
	Local func(node *congest.NodeState, down any) any
	// Combine folds the node's local value with its children's echoes
	// into the value echoed to the parent (and, at the root, into the
	// session result). Required on the boxed lane.
	Combine func(node *congest.NodeState, down any, local any, children []ChildEcho) any
	// LocalU, when non-nil, selects the unboxed lane and computes the
	// node's own word. Local and Combine must be nil then.
	LocalU func(node *congest.NodeState, down any) uint64
	// CombineU folds one child's echo word into the accumulator (unboxed
	// lane). The fold must be commutative and associative, since echoes
	// fold in arrival order. nil means XOR.
	CombineU func(node *congest.NodeState, down any, acc, child uint64) uint64
	// OnDown, if non-nil, runs at every node when the broadcast arrives
	// (including the root at start) and may mutate local state and emit
	// extra messages. Used for marking instructions.
	OnDown func(node *congest.NodeState, down any, emit Emit)
}

// unboxed reports which echo lane the spec uses.
func (s *Spec) unboxed() bool { return s.LocalU != nil }

// beState is the per-node automaton state of one broadcast-and-echo.
// States are recycled through the Protocol's free list; children keeps its
// backing array across sessions, so a warm protocol performs whole
// broadcast-and-echoes without allocating.
type beState struct {
	parent   congest.NodeID // 0 at the root
	expected int            // children still to echo
	children []ChildEcho    // boxed lane only
	local    any            // boxed lane
	acc      uint64         // unboxed lane accumulator
}

// getBE pops a recycled beState (or allocates) and initialises it. The
// lane index keys the per-shard free list: handlers pass the lane of the
// network view they were handed, so workers only ever touch their own
// list.
func (pr *Protocol) getBE(lane int, parent congest.NodeID) *beState {
	free := pr.beFree[lane]
	if n := len(free); n > 0 {
		st := free[n-1]
		free[n-1] = nil
		pr.beFree[lane] = free[:n-1]
		st.parent = parent
		return st
	}
	return &beState{parent: parent}
}

// putBE recycles a finished beState, dropping value references for GC but
// keeping slice capacity.
func (pr *Protocol) putBE(lane int, st *beState) {
	for i := range st.children {
		st.children[i] = ChildEcho{}
	}
	st.children = st.children[:0]
	*st = beState{children: st.children}
	pr.beFree[lane] = append(pr.beFree[lane], st)
}

// setSpec binds a session to its spec in the slot-indexed table (no map
// ops: the session slot is recycled by the engine, the full ID validates).
func (pr *Protocol) setSpec(sid congest.SessionID, spec *Spec) {
	slot := sid.Slot()
	for slot >= len(pr.specs) {
		pr.specs = append(pr.specs, specSlot{})
	}
	pr.specs[slot] = specSlot{sid: sid, spec: spec}
}

// specFor resolves a session's spec, or nil for an unknown session.
func (pr *Protocol) specFor(sid congest.SessionID) *Spec {
	slot := sid.Slot()
	if slot >= len(pr.specs) || pr.specs[slot].sid != sid {
		return nil
	}
	return pr.specs[slot].spec
}

// clearSpec unbinds a completed session's spec.
func (pr *Protocol) clearSpec(sid congest.SessionID) {
	slot := sid.Slot()
	if slot < len(pr.specs) && pr.specs[slot].sid == sid {
		pr.specs[slot] = specSlot{}
	}
}

// StartBroadcastEcho begins a broadcast-and-echo rooted at root over the
// marked edges. The returned session completes (at the initiating driver)
// with Combine's value at the root — CombineU's word, via AwaitU, on the
// unboxed lane. The marked subgraph containing root must be a tree,
// otherwise the run panics — cycles are a protocol error here (Build-ST
// handles cycles via elections, never via B&E).
func (pr *Protocol) StartBroadcastEcho(root congest.NodeID, spec *Spec) congest.SessionID {
	if spec.unboxed() {
		if spec.Local != nil || spec.Combine != nil {
			panic("tree: Spec mixes the unboxed (LocalU) and boxed (Local/Combine) lanes")
		}
	} else if spec.Combine == nil {
		panic("tree: Spec.Combine is required")
	}
	if o := pr.nw.Obs(); o != nil {
		o.Count("tree.bcast_echo", 1)
	}
	sid := pr.nw.NewSession(nil)
	pr.setSpec(sid, spec)
	node := pr.nw.Node(root)
	st := pr.getBE(pr.nw.LaneID(), 0)
	pr.runDownAt(pr.nw, node, sid, spec, st)
	return sid
}

// BroadcastEcho is the blocking driver helper: start, await, return.
func (pr *Protocol) BroadcastEcho(p *congest.Proc, root congest.NodeID, spec *Spec) (any, error) {
	sid := pr.StartBroadcastEcho(root, spec)
	return p.Await(sid)
}

// BroadcastEchoU is BroadcastEcho for unboxed-lane specs: the root's word
// comes back without ever being boxed.
func (pr *Protocol) BroadcastEchoU(p *congest.Proc, root congest.NodeID, spec *Spec) (uint64, error) {
	sid := pr.StartBroadcastEcho(root, spec)
	return p.AwaitU(sid)
}

// runDownAt performs the on-broadcast work at a node: side effects, local
// compute, forwarding, and the immediate echo when the node is a leaf.
// All engine calls go through nw — the network view the caller was handed
// — so a shard worker's sends and completions land in its own lane.
func (pr *Protocol) runDownAt(nw *congest.Network, node *congest.NodeState, sid congest.SessionID, spec *Spec, st *beState) {
	if spec.OnDown != nil {
		spec.OnDown(node, spec.Down, func(to congest.NodeID, kind congest.KindID, bits int, payload any) {
			nw.Send(node.ID, to, kind, sid, bits, payload)
		})
	}
	if spec.unboxed() {
		st.acc = spec.LocalU(node, spec.Down)
	} else if spec.Local != nil {
		st.local = spec.Local(node, spec.Down)
	}
	for i := range node.Edges {
		he := &node.Edges[i]
		if he.Marked && he.Neighbor != st.parent {
			st.expected++
			nw.Send(node.ID, he.Neighbor, KindDown, sid, spec.DownBits, spec.Down)
		}
	}
	if st.expected == 0 {
		pr.echoUp(nw, node, sid, spec, st)
		return
	}
	node.SetSessionState(sid, st)
}

// echoUp finishes a node: aggregates and either completes the session (at
// the root) or echoes to the parent.
func (pr *Protocol) echoUp(nw *congest.Network, node *congest.NodeState, sid congest.SessionID, spec *Spec, st *beState) {
	parent := st.parent
	lane := nw.LaneID()
	if spec.unboxed() {
		val := st.acc
		node.SetSessionState(sid, nil)
		pr.putBE(lane, st)
		if parent == 0 {
			pr.clearSpec(sid)
			nw.CompleteSessionU(sid, val, nil)
			return
		}
		nw.SendU(node.ID, parent, KindUp, sid, spec.UpBits, val)
		return
	}
	val := spec.Combine(node, spec.Down, st.local, st.children)
	node.SetSessionState(sid, nil)
	pr.putBE(lane, st)
	if parent == 0 {
		pr.clearSpec(sid)
		nw.CompleteSession(sid, val, nil)
		return
	}
	nw.Send(node.ID, parent, KindUp, sid, spec.UpBits, val)
}

func (pr *Protocol) onDown(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	spec := pr.specFor(msg.Session)
	if spec == nil {
		panic(fmt.Sprintf("tree: down message for unknown session %d", msg.Session))
	}
	if node.SessionState(msg.Session) != nil {
		panic(fmt.Sprintf("tree: node %d got a second broadcast in session %d — marked subgraph is not a tree", node.ID, msg.Session))
	}
	st := pr.getBE(nw.LaneID(), msg.From)
	pr.runDownAt(nw, node, msg.Session, spec, st)
}

func (pr *Protocol) onUp(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	spec := pr.specFor(msg.Session)
	if spec == nil {
		panic(fmt.Sprintf("tree: up message for unknown session %d", msg.Session))
	}
	raw := node.SessionState(msg.Session)
	st, ok := raw.(*beState)
	if !ok {
		panic(fmt.Sprintf("tree: node %d got echo without broadcast state in session %d", node.ID, msg.Session))
	}
	if spec.unboxed() {
		if spec.CombineU != nil {
			st.acc = spec.CombineU(node, spec.Down, st.acc, msg.U)
		} else {
			st.acc ^= msg.U
		}
	} else {
		he := node.EdgeTo(msg.From)
		st.children = append(st.children, ChildEcho{Edge: *he, Value: msg.Payload})
	}
	st.expected--
	if st.expected == 0 {
		pr.echoUp(nw, node, msg.Session, spec, st)
	}
}
