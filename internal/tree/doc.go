// Package tree implements the distributed primitives every algorithm in
// the paper is built from, as message-level automata over the marked
// (tree) edges of a congest.Network:
//
//   - broadcast-and-echo (paper §1, [13]): the root broadcasts a message
//     down its tree; echoes aggregate values from the leaves back up.
//     All of TestOut, HP-TestOut, FindMin and FindAny are one or more of
//     these with different local-compute/aggregate functions.
//
//   - leader election by median finding (paper §3.3, ideas of [18]):
//     leaves start echoes; tokens converge to one median or two adjacent
//     medians (higher ID wins). On a fragment that is not a tree (the
//     Build-ST cycle case, §4.2) the nodes on the cycle never finish and
//     detect this on timeout — modelled as engine quiescence.
//
// One Protocol instance is attached to a network and registers the message
// kinds once; sessions keep concurrent executions independent.
//
// # Invariants
//
// Zero-alloc steady state. A warm Protocol performs whole
// broadcast-and-echoes and election waves without allocating: per-node
// automaton states (beState) recycle through lane-indexed free lists,
// session→spec bindings live in a slot-indexed table keyed by the
// engine's recycled session slots (validated by the full packed ID, so a
// recycled slot never aliases), election receipts are bitmasks over each
// node's sorted edge slice in a reusable buffer, and single-word echoes
// travel unboxed (Spec.LocalU/CombineU over Message.U).
//
// Shard safety. Handlers route every engine call through the *Network
// view they are handed, so sends and completions land in the correct
// shard lane; per-lane beState free lists mean workers never contend.
// Drivers write spec-table entries between rounds; a handler only reads
// them, and only the root node's handler (one node, hence one shard)
// clears a session's entry — the table needs no locks.
//
// Derived randomness. Node-local random choices (NodeRand) are seeded by
// the session's creation serial, never the packed ID or any engine
// state, so draws are identical across slot-recycling orders, shard
// counts and driver models.
//
// Tree discipline. A broadcast-and-echo must run on a marked subgraph
// that is a tree: a second broadcast arriving at a node in the same
// session panics (a cycle), and Build-ST handles cycles via elections,
// never via broadcast-and-echo.
package tree
