package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(124)
	same := 0
	a = New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds nearly identical: %d matches", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(9)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(77)
	const buckets = 10
	const trials = 100000
	counts := make([]int, buckets)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(trials) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ~%.0f", b, c, want)
		}
	}
}

func TestRangeInclusive(t *testing.T) {
	r := New(3)
	sawLo, sawHi := false, false
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("Range(5,8) = %d", v)
		}
		if v == 5 {
			sawLo = true
		}
		if v == 8 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Error("Range never produced an endpoint")
	}
	if r.Range(7, 7) != 7 {
		t.Error("degenerate range broken")
	}
}

func TestOddUint64(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if r.OddUint64()&1 == 0 {
			t.Fatal("OddUint64 returned even")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(5)
	s := r.Split()
	// The split stream must not equal the parent stream going forward.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("split stream tracks parent: %d matches", same)
	}
}

func TestPanicsOnDegenerateArgs(t *testing.T) {
	r := New(1)
	assertPanics(t, "Uint64n(0)", func() { r.Uint64n(0) })
	assertPanics(t, "Intn(0)", func() { r.Intn(0) })
	assertPanics(t, "Range(9,3)", func() { r.Range(9, 3) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
