// Package rng provides a small, fast, deterministic pseudo-random number
// generator used everywhere in the simulator. Determinism across runs and
// Go versions matters: the engine's async scheduler, the hash draws of
// TestOut/FindAny and the workload generators must replay identically for a
// given seed so that tests and benchmarks are reproducible.
//
// The generator is SplitMix64 (Steele, Lea & Flood), which passes BigCrush
// and is trivially seedable; it is not cryptographic, matching the paper's
// Monte Carlo setting.
package rng

// RNG is a deterministic pseudo-random generator. Not safe for concurrent
// use; the engine is single-threaded-equivalent so this is never an issue.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is independent of the
// receiver's future output; used to give each subsystem its own stream.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Range returns a uniform value in [lo, hi] inclusive. Requires lo <= hi.
func (r *RNG) Range(lo, hi uint64) uint64 {
	if lo > hi {
		panic("rng: Range with lo > hi")
	}
	return lo + r.Uint64n(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// OddUint64 returns a uniform odd 64-bit value (the multiplier of the odd
// hash function must be odd).
func (r *RNG) OddUint64() uint64 { return r.Uint64() | 1 }

// Perm returns a uniform permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
