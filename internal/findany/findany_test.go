package findany

import (
	"testing"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/spanning"
	"kkt/internal/tree"
)

// fragmentNet marks a spanning tree of the induced subgraph on frag and
// returns the network plus the set of true cut edges.
func fragmentNet(t *testing.T, g *graph.Graph, frag []uint32) (*congest.Network, *tree.Protocol, map[uint64]bool) {
	t.Helper()
	inT := make([]bool, g.N+1)
	for _, v := range frag {
		inT[v] = true
	}
	var treeEdges [][2]congest.NodeID
	uf := spanning.NewUnionFind(g.N)
	for _, e := range g.Edges() {
		if inT[e.A] && inT[e.B] && uf.Union(e.A, e.B) {
			treeEdges = append(treeEdges, [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)})
		}
	}
	if len(treeEdges) != len(frag)-1 {
		t.Fatalf("fragment %v not connected", frag)
	}
	nw := congest.NewNetwork(g)
	nw.SetForest(treeEdges)
	cut := make(map[uint64]bool)
	for _, ei := range spanning.CutEdges(g, inT) {
		cut[g.EdgeNum(g.Edge(ei))] = true
	}
	return nw, tree.Attach(nw), cut
}

func runFindAny(t *testing.T, nw *congest.Network, pr *tree.Protocol, root congest.NodeID, seed uint64, cfg Config) Result {
	t.Helper()
	var res Result
	nw.Spawn("findany", func(p *congest.Proc) error {
		r, err := Run(p, pr, root, rng.New(seed), cfg)
		res = r
		return err
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func growFragment(r *rng.RNG, g *graph.Graph, size int) []uint32 {
	start := uint32(r.Intn(g.N) + 1)
	seen := map[uint32]bool{start: true}
	frontier := []uint32{start}
	out := []uint32{start}
	for len(out) < size && len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		for _, nb := range g.Neighbors(v) {
			if !seen[nb] && len(out) < size {
				seen[nb] = true
				out = append(out, nb)
				frontier = append(frontier, nb)
			}
		}
	}
	return out
}

func TestFindAnyReturnsACutEdge(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		g := graph.GNM(r, 24, 60, 100, graph.UniformWeights(r, 100))
		frag := growFragment(r, g, 2+r.Intn(12))
		nw, pr, cut := fragmentNet(t, g, frag)
		res := runFindAny(t, nw, pr, congest.NodeID(frag[0]), uint64(trial)*3+1, Defaults(Full))
		if len(cut) == 0 {
			if res.Reason != EmptyCut {
				t.Fatalf("trial %d: want empty cut, got %v", trial, res.Reason)
			}
			continue
		}
		if res.Reason != FoundEdge {
			t.Fatalf("trial %d: reason = %v, want found (w.h.p.)", trial, res.Reason)
		}
		if !cut[res.EdgeNum] {
			t.Fatalf("trial %d: returned edge {%d,%d} does not leave the tree", trial, res.A, res.B)
		}
	}
}

func TestFindAnyEmptyCutWholeGraph(t *testing.T) {
	r := rng.New(5)
	g := graph.GNM(r, 20, 50, 10, graph.UniformWeights(r, 10))
	frag := make([]uint32, g.N)
	for i := range frag {
		frag[i] = uint32(i + 1)
	}
	nw, pr, cut := fragmentNet(t, g, frag)
	if len(cut) != 0 {
		t.Fatal("whole graph should have no cut edges")
	}
	res := runFindAny(t, nw, pr, 7, 9, Defaults(Full))
	if res.Reason != EmptyCut {
		t.Fatalf("reason = %v, want empty", res.Reason)
	}
}

func TestFindAnySingleton(t *testing.T) {
	g := graph.MustNew(2, 5)
	g.MustAddEdge(1, 2, 3)
	nw := congest.NewNetwork(g)
	pr := tree.Attach(nw)
	res := runFindAny(t, nw, pr, 1, 4, Defaults(Full))
	if res.Reason != FoundEdge || res.A != 1 || res.B != 2 {
		t.Fatalf("got %v {%d,%d}, want found {1,2}", res.Reason, res.A, res.B)
	}
}

func TestFindAnySingleCutEdge(t *testing.T) {
	// A bridge between two cliques; T = one clique: exactly one cut edge.
	g := graph.Barbell(4, 0, 10, graph.UnitWeights())
	frag := []uint32{1, 2, 3, 4}
	nw, pr, cut := fragmentNet(t, g, frag)
	if len(cut) != 1 {
		t.Fatalf("want exactly 1 cut edge, have %d", len(cut))
	}
	res := runFindAny(t, nw, pr, 1, 21, Defaults(Full))
	if res.Reason != FoundEdge || !cut[res.EdgeNum] {
		t.Fatalf("failed to find the bridge: %v", res.Reason)
	}
}

func TestFindAnyCappedNeverWrong(t *testing.T) {
	r := rng.New(23)
	succ, trials := 0, 60
	for trial := 0; trial < trials; trial++ {
		g := graph.GNM(r, 16, 36, 50, graph.UniformWeights(r, 50))
		frag := growFragment(r, g, 6)
		nw, pr, cut := fragmentNet(t, g, frag)
		if len(cut) == 0 {
			trials--
			continue
		}
		res := runFindAny(t, nw, pr, congest.NodeID(frag[0]), uint64(trial)*13+5, Defaults(Capped))
		switch res.Reason {
		case FoundEdge:
			if !cut[res.EdgeNum] {
				t.Fatalf("trial %d: Capped returned a non-cut edge", trial)
			}
			succ++
		case GaveUp:
			// allowed with probability <= 15/16 per attempt
		case EmptyCut:
			t.Fatalf("trial %d: false empty (prob ~ n^-c)", trial)
		}
	}
	// Lemma 5: success probability >= 1/16; observed rate is far higher
	// in practice. Require at least 1/16 over the trials.
	if float64(succ) < float64(trials)/16 {
		t.Errorf("FindAny-C succeeded %d/%d times, below 1/16", succ, trials)
	}
}

func TestFindAnyConstantBroadcasts(t *testing.T) {
	// FindAny uses an expected O(1) number of B&Es: assert the attempt
	// counter stays small across seeds on a fixed instance.
	r := rng.New(31)
	g := graph.GNM(r, 40, 120, 100, graph.UniformWeights(r, 100))
	frag := growFragment(r, g, 20)
	totalAttempts := 0
	const runs = 20
	for i := 0; i < runs; i++ {
		nw, pr, cut := fragmentNet(t, g, frag)
		if len(cut) == 0 {
			t.Skip("fragment spans graph")
		}
		res := runFindAny(t, nw, pr, congest.NodeID(frag[0]), uint64(i)+400, Defaults(Full))
		if res.Reason != FoundEdge {
			t.Fatalf("run %d failed: %v", i, res.Reason)
		}
		totalAttempts += res.Stats.Attempts
	}
	if avg := float64(totalAttempts) / runs; avg > 16 {
		t.Errorf("average attempts %.1f exceeds the expected-16 bound", avg)
	}
}

func TestFindAnyMessageLinearInTree(t *testing.T) {
	r := rng.New(41)
	g := graph.GNM(r, 60, 180, 100, graph.UniformWeights(r, 100))
	frag := growFragment(r, g, 30)
	nw, pr, _ := fragmentNet(t, g, frag)
	res := runFindAny(t, nw, pr, congest.NodeID(frag[0]), 51, Defaults(Full))
	if res.Reason != FoundEdge {
		t.Fatalf("findany failed: %v", res.Reason)
	}
	c := nw.Counters()
	// B&Es: 1 survey + HP tests + 3 per attempt, each 2 msgs per tree edge.
	bes := 1 + res.Stats.HPTests + 3*res.Stats.Attempts
	bound := uint64(bes * 2 * (len(frag) - 1))
	if c.Messages > bound {
		t.Errorf("messages = %d, bound %d", c.Messages, bound)
	}
}
