// Package findany implements the paper's FindAny and FindAny-C (§4.1):
// find *some* edge leaving the tree containing a given root, in an
// expected constant number of broadcast-and-echoes — a log n / log log n
// factor cheaper than FindMin, which is what makes the unweighted (ST)
// results cheaper than the MST ones.
//
// One attempt: broadcast a pairwise-independent hash h into [2^l]; every
// node echoes, for each level i <= l, the parity of its incident edges
// with h(edgeNum) < 2^i. Tree-internal edges cancel, so level i's
// aggregate is the parity of cut edges hashing below 2^i. By Lemma 4,
// with probability >= 1/16 some level isolates exactly one cut edge; the
// XOR of edge numbers at the smallest firing level is then that edge's
// number, which a final counting broadcast verifies (Sum of in-tree
// endpoints == 1).
package findany

import (
	"fmt"
	"math"
	"math/bits"

	"kkt/internal/congest"
	"kkt/internal/hashing"
	"kkt/internal/rng"
	"kkt/internal/sketch"
	"kkt/internal/tree"
)

// Variant selects between the expected-cost and single-shot algorithms.
type Variant int

const (
	// Full is FindAny: repeat attempts until one verifies, up to the
	// 16·ln(1/eps) high-probability budget.
	Full Variant = iota + 1
	// Capped is FindAny-C: a single attempt after the HP-TestOut gate;
	// succeeds with probability >= 1/16 - n^-c, otherwise returns
	// EmptyResult ("no answer", never a wrong edge).
	Capped
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Full:
		return "FindAny"
	case Capped:
		return "FindAny-C"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Reason explains a Result.
type Reason int

const (
	// FoundEdge: a cut edge was found and verified.
	FoundEdge Reason = iota + 1
	// EmptyCut: HP-TestOut certified (w.h.p.) there is no cut edge.
	EmptyCut
	// GaveUp: attempts exhausted without a verified edge.
	GaveUp
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case FoundEdge:
		return "found"
	case EmptyCut:
		return "empty-cut"
	case GaveUp:
		return "gave-up"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Config tunes a run.
type Config struct {
	// Variant selects FindAny or FindAny-C.
	Variant Variant
	// C is the error exponent: failure probability n^-C for Full.
	C int
}

// Defaults returns the paper-faithful configuration.
func Defaults(v Variant) Config { return Config{Variant: v, C: 2} }

// Stats counts the work one run performed.
type Stats struct {
	Attempts int // isolation attempts (3 broadcast-and-echoes each)
	HPTests  int
}

// Result is the outcome of FindAny.
type Result struct {
	Reason  Reason
	EdgeNum uint64
	A, B    congest.NodeID
	Stats   Stats
}

// levelVecDown is the broadcast payload of the level-parity echo.
type levelVecDown struct {
	Hash hashing.PairwiseHash
}

// xorDown asks for the XOR of edge numbers hashing below 2^Min.
type xorDown struct {
	Hash hashing.PairwiseHash
	Min  int
}

// countDown asks how many in-tree endpoints carry the candidate edge.
type countDown struct {
	EdgeNum uint64
}

// Run executes FindAny (or FindAny-C) from root over the marked tree
// containing it. If it returns an edge, the edge certainly leaves the
// tree (the counting test is exact); EmptyCut is w.h.p. correct.
func Run(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, r *rng.RNG, cfg Config) (Result, error) {
	if cfg.C < 1 {
		cfg.C = 1
	}
	nw := p.Network()
	n := float64(nw.N())

	sv, err := sketch.RunSurvey(p, pr, root)
	if err != nil {
		return Result{}, err
	}
	var res Result
	if sv.UnmarkedDegreeSum == 0 {
		res.Reason = EmptyCut
		return res, nil
	}

	// Step 2: HP-TestOut gate with error parameter eps(n) < 1/(2n^c).
	eps := math.Pow(n, -float64(cfg.C)) / 2
	reps := sketch.NumReps(eps, sv.DegreeSum)
	full := sketch.Interval{Lo: 1, Hi: sv.MaxComposite}
	res.Stats.HPTests++
	leaving, err := sketch.HPTestOut(p, pr, root, sketch.DrawAlphas(r, reps), full)
	if err != nil {
		return res, err
	}
	if !leaving {
		res.Reason = EmptyCut
		return res, nil
	}

	// Hash range [2^l]: r_range a power of two strictly greater than
	// twice the degree sum, so |W| <= DegreeSum < 2^(l-1) as Lemma 4
	// requires.
	l := bits.Len(uint(2 * sv.DegreeSum))
	if l < 2 {
		l = 2
	}
	if l > 63 {
		l = 63
	}

	maxAttempts := 1
	if cfg.Variant == Full {
		maxAttempts = int(math.Ceil(16 * math.Log(1/eps)))
		if maxAttempts < 1 {
			maxAttempts = 1
		}
	}

	for res.Stats.Attempts < maxAttempts {
		res.Stats.Attempts++
		h := hashing.NewPairwiseHash(r, l)
		// Step 3b/c: level-parity vector.
		vecAny, err := pr.BroadcastEcho(p, root, levelVecSpec(h, l))
		if err != nil {
			return res, err
		}
		vec := vecAny.(uint64)
		if vec == 0 {
			continue // no level has odd parity; resample
		}
		min := bits.TrailingZeros64(vec)
		// Step 3d: XOR of edge numbers below 2^min.
		wAny, err := pr.BroadcastEcho(p, root, xorSpec(h, min))
		if err != nil {
			return res, err
		}
		w := wAny.(uint64)
		if w == 0 {
			continue
		}
		// Step 4: Test — count in-tree endpoints of the candidate.
		sumAny, err := pr.BroadcastEcho(p, root, countSpec(w))
		if err != nil {
			return res, err
		}
		if sumAny.(int) != 1 {
			continue
		}
		a, b := nw.Layout().SplitEdgeNum(w)
		res.Reason = FoundEdge
		res.EdgeNum = w
		res.A, res.B = congest.NodeID(a), congest.NodeID(b)
		return res, nil
	}
	res.Reason = GaveUp
	return res, nil
}

// levelVecSpec: echo bit i (0 <= i <= l) is the XOR over incident edges of
// [h(edgeNum) < 2^i].
func levelVecSpec(h hashing.PairwiseHash, l int) *tree.Spec {
	down := levelVecDown{Hash: h}
	return &tree.Spec{
		Down:     down,
		DownBits: h.Bits(),
		UpBits:   l + 1,
		Local: func(node *congest.NodeState, downAny any) any {
			d := downAny.(levelVecDown)
			var vec uint64
			for i := range node.Edges {
				level := d.Hash.PrefixLevel(node.Edges[i].EdgeNum)
				// edge contributes to every bit at or above its level:
				// [h(e) < 2^i] holds for all i >= level.
				vec ^= ^uint64(0) << uint(level)
			}
			return vec & (uint64(1)<<uint(l+1) - 1)
		},
		Combine: func(node *congest.NodeState, down, local any, children []tree.ChildEcho) any {
			vec := local.(uint64)
			for _, c := range children {
				vec ^= c.Value.(uint64)
			}
			return vec
		},
	}
}

// xorSpec: echo is the XOR of incident edge numbers with h(e) < 2^min.
func xorSpec(h hashing.PairwiseHash, min int) *tree.Spec {
	down := xorDown{Hash: h, Min: min}
	return &tree.Spec{
		Down:     down,
		DownBits: h.Bits() + 8,
		UpBits:   64,
		Local: func(node *congest.NodeState, downAny any) any {
			d := downAny.(xorDown)
			bound := uint64(1) << uint(d.Min)
			var x uint64
			for i := range node.Edges {
				if d.Hash.Hash(node.Edges[i].EdgeNum) < bound {
					x ^= node.Edges[i].EdgeNum
				}
			}
			return x
		},
		Combine: func(node *congest.NodeState, down, local any, children []tree.ChildEcho) any {
			x := local.(uint64)
			for _, c := range children {
				x ^= c.Value.(uint64)
			}
			return x
		},
	}
}

// countSpec: echo sums, over in-tree nodes, whether the node carries an
// incident edge with the candidate number (capped at 3 — only ==1
// matters).
func countSpec(edgeNum uint64) *tree.Spec {
	down := countDown{EdgeNum: edgeNum}
	return &tree.Spec{
		Down:     down,
		DownBits: 64,
		UpBits:   2,
		Local: func(node *congest.NodeState, downAny any) any {
			d := downAny.(countDown)
			for i := range node.Edges {
				if node.Edges[i].EdgeNum == d.EdgeNum {
					return 1
				}
			}
			return 0
		},
		Combine: func(node *congest.NodeState, down, local any, children []tree.ChildEcho) any {
			sum := local.(int)
			for _, c := range children {
				sum += c.Value.(int)
			}
			if sum > 3 {
				sum = 3
			}
			return sum
		},
	}
}
