// Package findany implements the paper's FindAny and FindAny-C (§4.1):
// find *some* edge leaving the tree containing a given root, in an
// expected constant number of broadcast-and-echoes — a log n / log log n
// factor cheaper than FindMin, which is what makes the unweighted (ST)
// results cheaper than the MST ones.
//
// One attempt: broadcast a pairwise-independent hash h into [2^l]; every
// node echoes, for each level i <= l, the parity of its incident edges
// with h(edgeNum) < 2^i. Tree-internal edges cancel, so level i's
// aggregate is the parity of cut edges hashing below 2^i. By Lemma 4,
// with probability >= 1/16 some level isolates exactly one cut edge; the
// XOR of edge numbers at the smallest firing level is then that edge's
// number, which a final counting broadcast verifies (Sum of in-tree
// endpoints == 1).
package findany

import (
	"fmt"

	"kkt/internal/congest"
	"kkt/internal/hashing"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// Variant selects between the expected-cost and single-shot algorithms.
type Variant int

const (
	// Full is FindAny: repeat attempts until one verifies, up to the
	// 16·ln(1/eps) high-probability budget.
	Full Variant = iota + 1
	// Capped is FindAny-C: a single attempt after the HP-TestOut gate;
	// succeeds with probability >= 1/16 - n^-c, otherwise returns
	// EmptyResult ("no answer", never a wrong edge).
	Capped
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Full:
		return "FindAny"
	case Capped:
		return "FindAny-C"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Reason explains a Result.
type Reason int

const (
	// FoundEdge: a cut edge was found and verified.
	FoundEdge Reason = iota + 1
	// EmptyCut: HP-TestOut certified (w.h.p.) there is no cut edge.
	EmptyCut
	// GaveUp: attempts exhausted without a verified edge.
	GaveUp
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case FoundEdge:
		return "found"
	case EmptyCut:
		return "empty-cut"
	case GaveUp:
		return "gave-up"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Config tunes a run.
type Config struct {
	// Variant selects FindAny or FindAny-C.
	Variant Variant
	// C is the error exponent: failure probability n^-C for Full.
	C int
}

// Defaults returns the paper-faithful configuration.
func Defaults(v Variant) Config { return Config{Variant: v, C: 2} }

// Stats counts the work one run performed.
type Stats struct {
	Attempts int // isolation attempts (3 broadcast-and-echoes each)
	HPTests  int
}

// Result is the outcome of FindAny.
type Result struct {
	Reason  Reason
	EdgeNum uint64
	A, B    congest.NodeID
	Stats   Stats
}

// levelVecDown is the broadcast payload of the level-parity echo.
type levelVecDown struct {
	Hash hashing.PairwiseHash
	L    int
}

// xorDown asks for the XOR of edge numbers hashing below 2^Min.
type xorDown struct {
	Hash hashing.PairwiseHash
	Min  int
}

// countDown asks how many in-tree endpoints carry the candidate edge.
type countDown struct {
	EdgeNum uint64
}

// probes bundles the three reusable broadcast-and-echo specs one FindAny
// run cycles through. All three echo single words on the unboxed lane;
// payloads refresh in place per attempt, so the attempt loop allocates
// nothing.
type probes struct {
	levelDown levelVecDown
	levelSpec tree.Spec
	xorDown   xorDown
	xorSpec   tree.Spec
	countDown countDown
	countSpec tree.Spec
}

func newProbes() *probes {
	pb := &probes{}
	// echo bit i (0 <= i <= l) is the XOR over incident edges of
	// [h(edgeNum) < 2^i].
	pb.levelSpec = tree.Spec{Down: &pb.levelDown, LocalU: levelVecLocal}
	// echo is the XOR of incident edge numbers with h(e) < 2^min.
	pb.xorSpec = tree.Spec{Down: &pb.xorDown, UpBits: 64, LocalU: xorLocal}
	// echo sums, over in-tree nodes, whether the node carries an incident
	// edge with the candidate number (capped at 3 — only ==1 matters).
	pb.countSpec = tree.Spec{Down: &pb.countDown, DownBits: 64, UpBits: 2, LocalU: countLocal, CombineU: countFold}
	return pb
}

func levelVecLocal(node *congest.NodeState, downAny any) uint64 {
	d := downAny.(*levelVecDown)
	var vec uint64
	for i := range node.Edges {
		level := d.Hash.PrefixLevel(node.Edges[i].EdgeNum)
		// edge contributes to every bit at or above its level:
		// [h(e) < 2^i] holds for all i >= level.
		vec ^= ^uint64(0) << uint(level)
	}
	return vec & (uint64(1)<<uint(d.L+1) - 1)
}

func xorLocal(node *congest.NodeState, downAny any) uint64 {
	d := downAny.(*xorDown)
	bound := uint64(1) << uint(d.Min)
	var x uint64
	for i := range node.Edges {
		if d.Hash.Hash(node.Edges[i].EdgeNum) < bound {
			x ^= node.Edges[i].EdgeNum
		}
	}
	return x
}

func countLocal(node *congest.NodeState, downAny any) uint64 {
	d := downAny.(*countDown)
	for i := range node.Edges {
		if node.Edges[i].EdgeNum == d.EdgeNum {
			return 1
		}
	}
	return 0
}

// countFold sums child counters with the same saturation the old
// slice-fold applied after summing: values stay in [0,3], and min(3, .)
// per fold equals one cap at the end for non-negative addends.
func countFold(node *congest.NodeState, down any, acc, child uint64) uint64 {
	sum := acc + child
	if sum > 3 {
		sum = 3
	}
	return sum
}

// Run executes FindAny (or FindAny-C) from root over the marked tree
// containing it. If it returns an edge, the edge certainly leaves the
// tree (the counting test is exact); EmptyCut is w.h.p. correct.
func Run(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, r *rng.RNG, cfg Config) (Result, error) {
	// One implementation for both driver models: the blocking form drives
	// the state machine in place (see Machine), so a goroutine driver and
	// a continuation task perform the identical operation sequence.
	m := NewMachine()
	m.Reset(pr, root, r, cfg)
	return m.Drive(p)
}
