package findany

import (
	"fmt"
	"math"
	"math/bits"

	"kkt/internal/congest"
	"kkt/internal/hashing"
	"kkt/internal/rng"
	"kkt/internal/sketch"
	"kkt/internal/tree"
)

// machineState is the explicit program counter of a FindAny Machine: one
// value per await point of the attempt loop.
type machineState uint8

const (
	msIdle   machineState = iota
	msSurvey              // awaiting the bookkeeping survey (step 3a precondition)
	msGate                // awaiting the HP-TestOut emptiness gate (step 2)
	msLevel               // awaiting the level-parity vector (steps 3b/c)
	msXor                 // awaiting the XOR of edge numbers below 2^min (step 3d)
	msCount               // awaiting the endpoint count of the candidate (step 4)
	msDone
)

// Machine is FindAny (or FindAny-C) as an explicit state machine, the
// continuation counterpart of Run: the Borůvka-style fan-out in
// internal/st wraps Machines in continuation tasks instead of parking one
// goroutine per fragment. Reset re-arms a Machine in place; the embedded
// probe specs and alpha buffer are reused, so a warm phase allocates
// nothing per fragment. Run is a Drive loop over the same Step, keeping
// the two driver models observably identical.
type Machine struct {
	pr   *tree.Protocol
	root congest.NodeID
	r    *rng.RNG
	cfg  Config

	res Result
	err error
	st  machineState

	n           float64
	reps        int
	l           int
	maxAttempts int
	h           hashing.PairwiseHash
	cand        uint64 // candidate edge number between msXor and msCount

	pb       *probes
	hpRun    *sketch.HPRunner
	alphaBuf [sketch.MaxReps]uint64
}

// NewMachine returns a reusable FindAny machine; arm it with Reset.
func NewMachine() *Machine {
	return &Machine{pb: newProbes(), hpRun: sketch.NewHPRunner()}
}

// Reset arms the machine for one run from root over the marked tree
// containing it, reusing the probe specs and buffers.
func (m *Machine) Reset(pr *tree.Protocol, root congest.NodeID, r *rng.RNG, cfg Config) {
	m.pr, m.root, m.r, m.cfg = pr, root, r, cfg
	m.res, m.err = Result{}, nil
	m.st = msIdle
}

// Result returns the outcome; valid once Step reported done.
func (m *Machine) Result() (Result, error) { return m.res, m.err }

// Step advances the machine: see congest.StepDriver for the contract.
func (m *Machine) Step(_ *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	if m.st != msIdle {
		if err := w.Err(); err != nil {
			return m.fail(err)
		}
	}
	switch m.st {
	case msIdle:
		if m.cfg.C < 1 {
			m.cfg.C = 1
		}
		m.n = float64(m.pr.Network().N())
		m.st = msSurvey
		return sketch.StartSurvey(m.pr, m.root), false, nil

	case msSurvey:
		v, _ := w.Value()
		sv := sketch.ConsumeSurvey(v)
		if sv.UnmarkedDegreeSum == 0 {
			m.res.Reason = EmptyCut
			return m.done()
		}
		// Step 2: HP-TestOut gate with error parameter eps(n) < 1/(2n^c).
		eps := math.Pow(m.n, -float64(m.cfg.C)) / 2
		m.reps = sketch.NumReps(eps, sv.DegreeSum)
		// Hash range [2^l]: a power of two strictly greater than twice the
		// degree sum, so |W| <= DegreeSum < 2^(l-1) as Lemma 4 requires.
		m.l = bits.Len(uint(2 * sv.DegreeSum))
		if m.l < 2 {
			m.l = 2
		}
		if m.l > 63 {
			m.l = 63
		}
		m.maxAttempts = 1
		if m.cfg.Variant == Full {
			m.maxAttempts = int(math.Ceil(16 * math.Log(1/eps)))
			if m.maxAttempts < 1 {
				m.maxAttempts = 1
			}
		}
		m.res.Stats.HPTests++
		sketch.DrawAlphasInto(m.r, m.alphaBuf[:m.reps])
		m.st = msGate
		full := sketch.Interval{Lo: 1, Hi: sv.MaxComposite}
		return m.hpRun.Start(m.pr, m.root, m.alphaBuf[:m.reps], full), false, nil

	case msGate:
		v, _ := w.Value()
		if !sketch.ConsumeHP(v) {
			m.res.Reason = EmptyCut
			return m.done()
		}
		return m.attempt()

	case msLevel:
		vec, err := w.U()
		if err != nil {
			return m.fail(err)
		}
		if vec == 0 {
			return m.attempt() // no level has odd parity; resample
		}
		min := bits.TrailingZeros64(vec)
		// Step 3d: XOR of edge numbers below 2^min.
		m.pb.xorDown = xorDown{Hash: m.h, Min: min}
		m.pb.xorSpec.DownBits = m.h.Bits() + 8
		m.st = msXor
		return m.pr.StartBroadcastEcho(m.root, &m.pb.xorSpec), false, nil

	case msXor:
		x, err := w.U()
		if err != nil {
			return m.fail(err)
		}
		if x == 0 {
			return m.attempt()
		}
		// Step 4: Test — count in-tree endpoints of the candidate.
		m.cand = x
		m.pb.countDown = countDown{EdgeNum: x}
		m.st = msCount
		return m.pr.StartBroadcastEcho(m.root, &m.pb.countSpec), false, nil

	case msCount:
		sum, err := w.U()
		if err != nil {
			return m.fail(err)
		}
		if sum != 1 {
			return m.attempt()
		}
		a, b := m.pr.Network().Layout().SplitEdgeNum(m.cand)
		m.res.Reason = FoundEdge
		m.res.EdgeNum = m.cand
		m.res.A, m.res.B = congest.NodeID(a), congest.NodeID(b)
		return m.done()
	}
	return m.fail(fmt.Errorf("findany: Step in state %d", m.st))
}

// attempt starts the next isolation attempt (steps 3b/c), or gives up when
// the budget is spent.
func (m *Machine) attempt() (congest.SessionID, bool, error) {
	if m.res.Stats.Attempts >= m.maxAttempts {
		m.res.Reason = GaveUp
		return m.done()
	}
	m.res.Stats.Attempts++
	m.h = hashing.NewPairwiseHash(m.r, m.l)
	m.pb.levelDown = levelVecDown{Hash: m.h, L: m.l}
	m.pb.levelSpec.DownBits = m.h.Bits()
	m.pb.levelSpec.UpBits = m.l + 1
	m.st = msLevel
	return m.pr.StartBroadcastEcho(m.root, &m.pb.levelSpec), false, nil
}

func (m *Machine) done() (congest.SessionID, bool, error) {
	m.st = msDone
	// Machines step in driver context, so the lifecycle tally is emitted on
	// the engine goroutine in deterministic order.
	if o := m.pr.Network().Obs(); o != nil {
		o.Count("findany."+m.res.Reason.String(), 1)
	}
	return 0, true, m.err
}

func (m *Machine) fail(err error) (congest.SessionID, bool, error) {
	m.err = err
	m.st = msDone
	if o := m.pr.Network().Obs(); o != nil {
		o.Count("findany.error", 1)
	}
	return 0, true, err
}

// Drive runs the machine to completion on a blocking goroutine driver; see
// findmin.Machine.Drive for why the two driver models stay identical.
func (m *Machine) Drive(p *congest.Proc) (Result, error) {
	next, done, _ := m.Step(nil, congest.Wake{})
	for !done {
		w, err := p.AwaitWake(next)
		if err != nil {
			return m.res, err
		}
		next, done, _ = m.Step(nil, w)
	}
	return m.Result()
}
