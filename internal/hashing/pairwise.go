package hashing

import (
	"math/bits"

	"kkt/internal/rng"
)

// PairwiseHash is a 2-wise independent hash function from 64-bit keys into
// [2^L], implemented with Dietzfelbinger's multiply-add-shift scheme
// "h(x) = ((a*x + b) mod 2^(2w)) div 2^(2w-L)" with w = 64, i.e. 128-bit
// intermediate arithmetic (paper reference [9]: universal hashing via
// integer arithmetic without primes).
//
// FindAny broadcasts one of these (four machine words) and each node hashes
// its incident edge numbers.
type PairwiseHash struct {
	// AHi, ALo form the 128-bit multiplier a.
	AHi, ALo uint64
	// BHi, BLo form the 128-bit additive term b.
	BHi, BLo uint64
	// L is the output width: values land in [0, 2^L). 1 <= L <= 64.
	L int
}

// NewPairwiseHash draws a fresh 2-independent function into [2^l].
func NewPairwiseHash(r *rng.RNG, l int) PairwiseHash {
	if l < 1 || l > 64 {
		panic("hashing: pairwise output width out of range [1,64]")
	}
	return PairwiseHash{
		AHi: r.Uint64(), ALo: r.Uint64(),
		BHi: r.Uint64(), BLo: r.Uint64(),
		L: l,
	}
}

// Hash maps x into [0, 2^L): the top L bits of (a*x + b) mod 2^128.
func (h PairwiseHash) Hash(x uint64) uint64 {
	// low 128 bits of a*x.
	hi, lo := bits.Mul64(h.ALo, x)
	hi += h.AHi * x // contribution of the high multiplier word, mod 2^64
	// add b, 128-bit; only the carry into the high word affects the output.
	_, carry := bits.Add64(lo, h.BLo, 0)
	hi += h.BHi + carry
	// top L bits of the 128-bit value (hi:lo): shift right by 128-L.
	if h.L == 64 {
		return hi
	}
	return hi >> uint(64-h.L)
}

// Bits returns the transmission size of the function: four machine words
// plus the width parameter.
func (h PairwiseHash) Bits() int { return 4*64 + 8 }

// PrefixLevel returns the largest i in [0, L] such that Hash(x) < 2^i is
// false for all i' < i ... more plainly: it returns the smallest i such
// that Hash(x) < 2^i, i.e. floor(log2(Hash(x)))+1, with 0 when Hash(x)==0.
// FindAny's level vectors need, for each level i, the parity of elements
// with Hash(x) < 2^i; PrefixLevel lets a node bucket each edge once.
func (h PairwiseHash) PrefixLevel(x uint64) int {
	v := h.Hash(x)
	level := 0
	for v != 0 {
		v >>= 1
		level++
	}
	return level
}
