package hashing

import (
	"math"
	"testing"

	"kkt/internal/rng"
)

// TestOddHashIsOdd verifies the defining (1/8)-odd property (paper eq. 1):
// for a fixed non-empty set S, over random draws of h, the parity of
// |{x in S : h(x)=1}| is odd with probability >= 1/8. This is the entire
// correctness foundation of TestOut.
func TestOddHashIsOdd(t *testing.T) {
	r := rng.New(42)
	sets := [][]uint64{
		{7},
		{1, 2},
		{3, 1 << 40, 977},
		manyElements(1, 100),
		manyElements(1<<50, 1000),
	}
	const trials = 20000
	for si, s := range sets {
		odd := 0
		for i := 0; i < trials; i++ {
			h := NewOddHash(r)
			if h.ParityOver(s)&1 == 1 {
				odd++
			}
		}
		frac := float64(odd) / trials
		// 1/8 guaranteed; allow generous sampling noise on the lower
		// side (5 sigma below 0.125 at 20k trials is ~0.113).
		if frac < 0.11 {
			t.Errorf("set %d (size %d): odd fraction %.4f < 0.11", si, len(s), frac)
		}
	}
}

// TestOddHashEmptySetAlwaysEven: parity over the empty set is always 0 —
// the one-sidedness of TestOut (a positive answer is always correct).
func TestOddHashEmptySetAlwaysEven(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		h := NewOddHash(r)
		if h.ParityOver(nil) != 0 {
			t.Fatal("empty set hashed to odd parity")
		}
	}
}

// TestOddHashSingletonProbability: for |S| = 1 the parity is odd iff
// h(x)=1, which happens with probability ~ E[t]/2^64 ~ 1/2.
func TestOddHashSingletonProbability(t *testing.T) {
	r := rng.New(99)
	const trials = 20000
	ones := 0
	for i := 0; i < trials; i++ {
		h := NewOddHash(r)
		ones += int(h.Bit(123456789))
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("singleton hash probability %.4f, want ~0.5", frac)
	}
}

func TestOddHashDeterministicGivenDraw(t *testing.T) {
	h := OddHash{A: 12345 | 1, T: 1 << 60}
	for _, x := range []uint64{0, 1, 42, 1 << 63} {
		if h.Bit(x) != h.Bit(x) {
			t.Fatal("hash not deterministic")
		}
	}
}

// TestPairwiseUniformity: each output value of the 2-independent family
// should be roughly uniform over [2^l].
func TestPairwiseUniformity(t *testing.T) {
	r := rng.New(5)
	const l = 4 // 16 buckets
	const trials = 32000
	counts := make([]int, 1<<l)
	for i := 0; i < trials; i++ {
		h := NewPairwiseHash(r, l)
		counts[h.Hash(0xdeadbeef)]++
	}
	want := float64(trials) / (1 << l)
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ~%.0f", b, c, want)
		}
	}
}

// TestPairwiseIndependencePairs: for two fixed distinct keys, the joint
// distribution over a small output range should factorise (approximately):
// Pr[h(x)=a and h(y)=b] ~ 1/|range|^2 for all a,b.
func TestPairwiseIndependencePairs(t *testing.T) {
	r := rng.New(17)
	const l = 2 // 4 buckets -> 16 joint cells
	const trials = 64000
	joint := make([][]int, 1<<l)
	for i := range joint {
		joint[i] = make([]int, 1<<l)
	}
	x, y := uint64(3), uint64(1<<55+17)
	for i := 0; i < trials; i++ {
		h := NewPairwiseHash(r, l)
		joint[h.Hash(x)][h.Hash(y)]++
	}
	want := float64(trials) / float64((1<<l)*(1<<l))
	for a := range joint {
		for b := range joint[a] {
			got := float64(joint[a][b])
			if math.Abs(got-want) > 7*math.Sqrt(want) {
				t.Errorf("joint[%d][%d] = %.0f, want ~%.0f", a, b, got, want)
			}
		}
	}
}

// TestIsolationProbability reproduces Lemma 4 empirically: for a set W
// with 0 < |W| < 2^(l-1), with probability >= 1/16 there is a level j such
// that exactly one element of W hashes below 2^j.
func TestIsolationProbability(t *testing.T) {
	r := rng.New(2024)
	for _, setSize := range []int{1, 2, 5, 17, 100} {
		w := manyElements(1000, setSize)
		const trials = 8000
		isolated := 0
		for i := 0; i < trials; i++ {
			h := NewPairwiseHash(r, 20)
			if hasIsolatingLevel(h, w, 20) {
				isolated++
			}
		}
		frac := float64(isolated) / trials
		if frac < 1.0/16 {
			t.Errorf("|W|=%d: isolation probability %.4f < 1/16", setSize, frac)
		}
	}
}

func hasIsolatingLevel(h PairwiseHash, w []uint64, l int) bool {
	for j := 0; j <= l; j++ {
		count := 0
		bound := uint64(1) << uint(j)
		for _, x := range w {
			if h.Hash(x) < bound {
				count++
			}
		}
		if count == 1 {
			return true
		}
	}
	return false
}

// TestPrefixLevelConsistency: PrefixLevel(x) is the smallest i with
// Hash(x) < 2^i.
func TestPrefixLevelConsistency(t *testing.T) {
	r := rng.New(31)
	for i := 0; i < 200; i++ {
		h := NewPairwiseHash(r, 16)
		x := r.Uint64()
		lvl := h.PrefixLevel(x)
		v := h.Hash(x)
		if lvl > 0 && v < uint64(1)<<uint(lvl-1) {
			t.Fatalf("level %d not minimal for value %d", lvl, v)
		}
		if v >= uint64(1)<<uint(lvl) {
			t.Fatalf("value %d not below 2^%d", v, lvl)
		}
	}
}

func manyElements(start uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)*2654435761
	}
	return out
}
