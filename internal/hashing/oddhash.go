// Package hashing implements the two hash families the paper's sketches are
// built on:
//
//   - OddHash — Thorup's "sample(x) = (a*x <= t)" distinguisher
//     (arXiv:1411.4982), an (1/8)-odd hash family: for every non-empty set
//     S, the number of elements of S hashing to 1 is odd with probability
//     at least 1/8. TestOut (paper §2.1) XORs these bits over all edges
//     incident to a tree to detect a cut edge.
//
//   - PairwiseHash — a 2-independent hash into [2^l] via Dietzfelbinger's
//     multiplicative scheme over 128-bit arithmetic (paper reference [9]).
//     FindAny (paper §4.1) uses it to isolate a single cut edge with
//     probability >= 1/16 (Lemma 4).
package hashing

import "kkt/internal/rng"

// OddHash is Thorup's distinguisher h(x) = 1 iff (a*x mod 2^64) <= t with a
// a uniform odd multiplier and t a uniform threshold. It is an (1/8)-odd
// hash function. The struct is the exact O(w)-bit object broadcast down the
// tree in TestOut.
type OddHash struct {
	// A is the odd multiplier, uniform over odd 64-bit values.
	A uint64
	// T is the threshold, uniform over all 64-bit values.
	T uint64
}

// NewOddHash draws a fresh hash function from the family.
func NewOddHash(r *rng.RNG) OddHash {
	return OddHash{A: r.OddUint64(), T: r.Uint64()}
}

// Bit returns h(x) in {0,1}. The mod-2^64 comes free with uint64 overflow,
// exactly as the paper remarks for word-size arithmetic.
func (h OddHash) Bit(x uint64) uint64 {
	if h.A*x <= h.T {
		return 1
	}
	return 0
}

// Bits returns the number of bits needed to transmit the function: two
// machine words.
func (h OddHash) Bits() int { return 128 }

// ParityOver returns the parity (mod 2) of the number of elements of xs
// that hash to 1 — the quantity each node computes locally in TestOut.
func (h OddHash) ParityOver(xs []uint64) uint64 {
	var parity uint64
	for _, x := range xs {
		parity ^= h.Bit(x)
	}
	return parity
}
