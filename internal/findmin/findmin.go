// Package findmin implements the paper's FindMin and FindMin-C (§3.1):
// find the minimum-weight edge leaving the tree containing a given root,
// by w-ary search over the composite-weight range. Each iteration is one
// TestOut broadcast-and-echo probing w sub-intervals in parallel (the
// echo is one w-bit word), plus two HP-TestOut verifications when a lane
// fires. Expected O(log n / log log n) broadcast-and-echoes; FindMin-C
// caps the iteration count at twice the expectation, trading a constant
// failure probability for a worst-case bound (Lemma 2).
package findmin

import (
	"fmt"
	"math"

	"kkt/internal/congest"
	"kkt/internal/rng"
	"kkt/internal/sketch"
	"kkt/internal/tree"
)

// q is the paper's lower bound on TestOut's success probability (the odd
// hash family is 1/8-odd).
const q = 1.0 / 8

// Variant selects between the expected-cost and capped algorithms.
type Variant int

const (
	// Full is FindMin: iterates until the search terminates or the
	// high-probability budget (c/q)(lg n + lg maxWt / lg w) is exhausted.
	Full Variant = iota + 1
	// Capped is FindMin-C: at most (2c/q) lg maxWt / lg w iterations —
	// worst-case cost matching FindMin's expected cost, succeeding with
	// constant probability (>= 2/3 - n^-c).
	Capped
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Full:
		return "FindMin"
	case Capped:
		return "FindMin-C"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Reason explains a Result without an edge.
type Reason int

const (
	// FoundEdge: the minimum cut edge was identified.
	FoundEdge Reason = iota + 1
	// EmptyCut: HP-TestOut certified (w.h.p.) that no edge leaves the
	// tree.
	EmptyCut
	// GaveUp: the iteration budget ran out (FindMin-C's constant-
	// probability failure mode; returns "no answer", never a wrong edge
	// beyond HP-TestOut's n^-c).
	GaveUp
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case FoundEdge:
		return "found"
	case EmptyCut:
		return "empty-cut"
	case GaveUp:
		return "gave-up"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Config tunes a run. The zero value is not valid; use Defaults.
type Config struct {
	// Variant selects FindMin or FindMin-C.
	Variant Variant
	// C is the error exponent: failure probability n^-C.
	C int
	// Lanes is the w of the w-ary search; the paper uses the word size
	// (64). Smaller values (e.g. 2 = binary search) are ablations.
	Lanes int
	// VerifyNarrowing controls the HP-TestOut checks before narrowing.
	// Disabling it is an ablation that shows why unverified narrowing
	// breaks: a missed lighter lane below the fired lane is never
	// recovered.
	VerifyNarrowing bool
}

// Defaults returns the paper-faithful configuration.
func Defaults(v Variant) Config {
	return Config{Variant: v, C: 2, Lanes: sketch.Lanes, VerifyNarrowing: true}
}

// Stats counts the work one run performed.
type Stats struct {
	Iterations int // TestOut broadcast-and-echoes
	HPTests    int // HP-TestOut broadcast-and-echoes
	Narrowings int // successful range reductions
}

// Result is the outcome of FindMin.
type Result struct {
	Reason Reason
	// Composite is the unique composite weight of the found edge
	// (valid when Reason == FoundEdge).
	Composite uint64
	// EdgeNum is the found edge's number; A, B its endpoints (A < B).
	EdgeNum uint64
	A, B    congest.NodeID
	Stats   Stats
}

// Run executes FindMin (or FindMin-C) from root over the marked tree
// containing it. r supplies the initiator's randomness. The returned edge,
// when present, is w.h.p. the minimum-composite-weight edge leaving the
// tree; EmptyCut is w.h.p. correct; FindMin never returns a non-cut edge
// (TestOut's positives are certain and the final value is a concrete
// incident edge weight).
func Run(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, r *rng.RNG, cfg Config) (Result, error) {
	// One implementation for both driver models: the blocking form drives
	// the state machine in place (see Machine), so a goroutine driver and
	// a continuation task perform the identical operation sequence.
	m := NewMachine()
	m.Reset(pr, root, r, cfg)
	return m.Drive(p)
}

// iterationBudget computes the Count bound of FindMin step 8.
func iterationBudget(cfg Config, n, maxWt float64) int {
	lgMaxWt := math.Log2(maxWt + 1)
	lgLanes := math.Log2(float64(cfg.Lanes))
	c := float64(cfg.C)
	var budget float64
	if cfg.Variant == Capped {
		budget = (2 * c / q) * lgMaxWt / lgLanes
	} else {
		budget = (c/q)*math.Log2(n) + (c/q)*lgMaxWt/lgLanes
	}
	b := int(math.Ceil(budget))
	if b < 4 {
		b = 4
	}
	return b
}
