// Package findmin implements the paper's FindMin and FindMin-C (§3.1):
// find the minimum-weight edge leaving the tree containing a given root,
// by w-ary search over the composite-weight range. Each iteration is one
// TestOut broadcast-and-echo probing w sub-intervals in parallel (the
// echo is one w-bit word), plus two HP-TestOut verifications when a lane
// fires. Expected O(log n / log log n) broadcast-and-echoes; FindMin-C
// caps the iteration count at twice the expectation, trading a constant
// failure probability for a worst-case bound (Lemma 2).
package findmin

import (
	"fmt"
	"math"
	"math/bits"

	"kkt/internal/congest"
	"kkt/internal/hashing"
	"kkt/internal/rng"
	"kkt/internal/sketch"
	"kkt/internal/tree"
)

// q is the paper's lower bound on TestOut's success probability (the odd
// hash family is 1/8-odd).
const q = 1.0 / 8

// Variant selects between the expected-cost and capped algorithms.
type Variant int

const (
	// Full is FindMin: iterates until the search terminates or the
	// high-probability budget (c/q)(lg n + lg maxWt / lg w) is exhausted.
	Full Variant = iota + 1
	// Capped is FindMin-C: at most (2c/q) lg maxWt / lg w iterations —
	// worst-case cost matching FindMin's expected cost, succeeding with
	// constant probability (>= 2/3 - n^-c).
	Capped
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Full:
		return "FindMin"
	case Capped:
		return "FindMin-C"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Reason explains a Result without an edge.
type Reason int

const (
	// FoundEdge: the minimum cut edge was identified.
	FoundEdge Reason = iota + 1
	// EmptyCut: HP-TestOut certified (w.h.p.) that no edge leaves the
	// tree.
	EmptyCut
	// GaveUp: the iteration budget ran out (FindMin-C's constant-
	// probability failure mode; returns "no answer", never a wrong edge
	// beyond HP-TestOut's n^-c).
	GaveUp
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case FoundEdge:
		return "found"
	case EmptyCut:
		return "empty-cut"
	case GaveUp:
		return "gave-up"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Config tunes a run. The zero value is not valid; use Defaults.
type Config struct {
	// Variant selects FindMin or FindMin-C.
	Variant Variant
	// C is the error exponent: failure probability n^-C.
	C int
	// Lanes is the w of the w-ary search; the paper uses the word size
	// (64). Smaller values (e.g. 2 = binary search) are ablations.
	Lanes int
	// VerifyNarrowing controls the HP-TestOut checks before narrowing.
	// Disabling it is an ablation that shows why unverified narrowing
	// breaks: a missed lighter lane below the fired lane is never
	// recovered.
	VerifyNarrowing bool
}

// Defaults returns the paper-faithful configuration.
func Defaults(v Variant) Config {
	return Config{Variant: v, C: 2, Lanes: sketch.Lanes, VerifyNarrowing: true}
}

// Stats counts the work one run performed.
type Stats struct {
	Iterations int // TestOut broadcast-and-echoes
	HPTests    int // HP-TestOut broadcast-and-echoes
	Narrowings int // successful range reductions
}

// Result is the outcome of FindMin.
type Result struct {
	Reason Reason
	// Composite is the unique composite weight of the found edge
	// (valid when Reason == FoundEdge).
	Composite uint64
	// EdgeNum is the found edge's number; A, B its endpoints (A < B).
	EdgeNum uint64
	A, B    congest.NodeID
	Stats   Stats
}

// Run executes FindMin (or FindMin-C) from root over the marked tree
// containing it. r supplies the initiator's randomness. The returned edge,
// when present, is w.h.p. the minimum-composite-weight edge leaving the
// tree; EmptyCut is w.h.p. correct; FindMin never returns a non-cut edge
// (TestOut's positives are certain and the final value is a concrete
// incident edge weight).
func Run(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, r *rng.RNG, cfg Config) (Result, error) {
	if cfg.Lanes < 2 {
		return Result{}, fmt.Errorf("findmin: need at least 2 lanes, got %d", cfg.Lanes)
	}
	if cfg.C < 1 {
		cfg.C = 1
	}
	nw := p.Network()
	n := float64(nw.N())

	// Step 2: survey the tree for maxWt, maxEdgeNum, degree sums.
	sv, err := sketch.RunSurvey(p, pr, root)
	if err != nil {
		return Result{}, err
	}
	var res Result
	if sv.UnmarkedDegreeSum == 0 {
		// No candidate edges at all: certainly empty, no search needed.
		res.Reason = EmptyCut
		return res, nil
	}
	eps := math.Pow(n, -float64(cfg.C+1))
	reps := sketch.NumReps(eps, sv.DegreeSum)

	// Reusable probe runners: the narrowing loop performs dozens of
	// broadcast-and-echoes per call, all through these two specs refreshed
	// in place — no per-iteration spec or payload allocation.
	testOut := sketch.NewTestOutRunner()
	hpRun := sketch.NewHPRunner()
	var alphaBuf [sketch.MaxReps]uint64
	hp := func(iv sketch.Interval) (bool, error) {
		res.Stats.HPTests++
		sketch.DrawAlphasInto(r, alphaBuf[:reps])
		return hpRun.Run(p, pr, root, alphaBuf[:reps], iv)
	}

	// Step 3: the search range covers every candidate composite weight.
	rangeIv := sketch.Interval{Lo: 1, Hi: sv.MaxComposite}
	maxIter := iterationBudget(cfg, n, float64(sv.MaxComposite))

	for res.Stats.Iterations < maxIter {
		res.Stats.Iterations++
		// Steps 4-5: one broadcast carries a fresh odd hash; the echo
		// carries one TestOut bit per lane.
		h := hashing.NewOddHash(r)
		word, err := testOut.Lanes(p, pr, root, h, rangeIv, cfg.Lanes)
		if err != nil {
			return res, err
		}
		if word == 0 {
			// No lane fired: either the cut (within range) is empty or
			// TestOut failed everywhere. Distinguish w.h.p.
			leaving, err := hp(rangeIv)
			if err != nil {
				return res, err
			}
			if !leaving {
				res.Reason = EmptyCut
				return res, nil
			}
			continue
		}
		// Step 6: smallest fired lane, by stride arithmetic over the range.
		minIdx := bits.TrailingZeros64(word)
		if numLanes := rangeIv.NumLanes(cfg.Lanes); minIdx >= numLanes {
			return res, fmt.Errorf("findmin: fired lane %d beyond %d lanes", minIdx, numLanes)
		}
		lane := rangeIv.Lane(cfg.Lanes, minIdx)
		if cfg.VerifyNarrowing {
			// Step 6: TestLow — is there a lighter cut edge below the
			// fired lane that TestOut missed?
			if lane.Lo > rangeIv.Lo {
				low, err := hp(sketch.Interval{Lo: rangeIv.Lo, Hi: lane.Lo - 1})
				if err != nil {
					return res, err
				}
				if low {
					continue // paper step 8: repeat without narrowing
				}
			}
			// TestInterval — confirm the fired lane (guards against the
			// vanishing chance HP-TestOut contradicts a certain positive;
			// also the paper's step 6 second check).
			in, err := hp(lane)
			if err != nil {
				return res, err
			}
			if !in {
				continue
			}
		}
		// Step 7(a): narrow.
		res.Stats.Narrowings++
		rangeIv = lane
		if rangeIv.Lo == rangeIv.Hi {
			comp := rangeIv.Lo
			_, edgeNum := nw.Layout().SplitComposite(comp)
			a, b := nw.Layout().SplitEdgeNum(edgeNum)
			res.Reason = FoundEdge
			res.Composite = comp
			res.EdgeNum = edgeNum
			res.A, res.B = congest.NodeID(a), congest.NodeID(b)
			return res, nil
		}
	}
	res.Reason = GaveUp
	return res, nil
}

// iterationBudget computes the Count bound of FindMin step 8.
func iterationBudget(cfg Config, n, maxWt float64) int {
	lgMaxWt := math.Log2(maxWt + 1)
	lgLanes := math.Log2(float64(cfg.Lanes))
	c := float64(cfg.C)
	var budget float64
	if cfg.Variant == Capped {
		budget = (2 * c / q) * lgMaxWt / lgLanes
	} else {
		budget = (c/q)*math.Log2(n) + (c/q)*lgMaxWt/lgLanes
	}
	b := int(math.Ceil(budget))
	if b < 4 {
		b = 4
	}
	return b
}
