package findmin

import (
	"fmt"
	"math"
	"math/bits"

	"kkt/internal/congest"
	"kkt/internal/hashing"
	"kkt/internal/rng"
	"kkt/internal/sketch"
	"kkt/internal/tree"
)

// machineState is the explicit program counter of a FindMin Machine: one
// value per await point of the narrowing loop.
type machineState uint8

const (
	msIdle    machineState = iota
	msSurvey               // awaiting the bookkeeping survey (step 2)
	msLanes                // awaiting the w-lane TestOut parity word (steps 4-5)
	msHPEmpty              // awaiting HP-TestOut over the whole range (empty-cut check)
	msHPLow                // awaiting HP-TestOut below the fired lane (TestLow, step 6)
	msHPLane               // awaiting HP-TestOut over the fired lane (TestInterval, step 6)
	msDone
)

// Machine is FindMin (or FindMin-C) as an explicit state machine: the same
// narrowing loop as Run, with each broadcast-and-echo await turned into a
// state. One Machine drives one fragment; the Borůvka fan-out in
// internal/mst wraps Machines in continuation tasks so a million-fragment
// phase costs heap objects, not parked goroutine stacks. Reset re-arms a
// Machine in place — the embedded probe runners and alpha buffer are
// reused, so a warm phase allocates nothing per fragment.
//
// Machine implements the body of congest.StepDriver; the blocking Run is a
// Drive loop over the same Step, so both driver models execute the
// identical sequence of engine operations (sessions, sends, RNG draws) and
// produce byte-identical seeded reports.
type Machine struct {
	pr   *tree.Protocol
	root congest.NodeID
	r    *rng.RNG
	cfg  Config

	res Result
	err error
	st  machineState

	n       float64
	reps    int
	maxIter int
	rangeIv sketch.Interval
	lane    sketch.Interval // fired lane under verification

	testOut  *sketch.TestOutRunner
	hpRun    *sketch.HPRunner
	alphaBuf [sketch.MaxReps]uint64
}

// NewMachine returns a reusable FindMin machine; arm it with Reset.
func NewMachine() *Machine {
	return &Machine{
		testOut: sketch.NewTestOutRunner(),
		hpRun:   sketch.NewHPRunner(),
	}
}

// Reset arms the machine for one run from root over the marked tree
// containing it, reusing the probe runners and buffers.
func (m *Machine) Reset(pr *tree.Protocol, root congest.NodeID, r *rng.RNG, cfg Config) {
	m.pr, m.root, m.r, m.cfg = pr, root, r, cfg
	m.res, m.err = Result{}, nil
	m.st = msIdle
}

// Result returns the outcome; valid once Step reported done.
func (m *Machine) Result() (Result, error) { return m.res, m.err }

// Step advances the machine: see congest.StepDriver for the contract. The
// first call (zero Wake) starts the survey; each later call consumes the
// awaited broadcast-and-echo and starts the next one.
func (m *Machine) Step(_ *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	if m.st != msIdle {
		if err := w.Err(); err != nil {
			return m.fail(err)
		}
	}
	switch m.st {
	case msIdle:
		if m.cfg.Lanes < 2 {
			return m.fail(fmt.Errorf("findmin: need at least 2 lanes, got %d", m.cfg.Lanes))
		}
		if m.cfg.C < 1 {
			m.cfg.C = 1
		}
		m.n = float64(m.pr.Network().N())
		m.st = msSurvey
		return sketch.StartSurvey(m.pr, m.root), false, nil

	case msSurvey:
		v, _ := w.Value()
		sv := sketch.ConsumeSurvey(v)
		if sv.UnmarkedDegreeSum == 0 {
			// No candidate edges at all: certainly empty, no search needed.
			m.res.Reason = EmptyCut
			return m.done()
		}
		eps := math.Pow(m.n, -float64(m.cfg.C+1))
		m.reps = sketch.NumReps(eps, sv.DegreeSum)
		// Step 3: the search range covers every candidate composite weight.
		m.rangeIv = sketch.Interval{Lo: 1, Hi: sv.MaxComposite}
		m.maxIter = iterationBudget(m.cfg, m.n, float64(sv.MaxComposite))
		return m.iterate()

	case msLanes:
		word, err := w.U()
		if err != nil {
			return m.fail(err)
		}
		if word == 0 {
			// No lane fired: either the cut (within range) is empty or
			// TestOut failed everywhere. Distinguish w.h.p.
			return m.startHP(m.rangeIv, msHPEmpty)
		}
		// Step 6: smallest fired lane, by stride arithmetic over the range.
		minIdx := bits.TrailingZeros64(word)
		if numLanes := m.rangeIv.NumLanes(m.cfg.Lanes); minIdx >= numLanes {
			return m.fail(fmt.Errorf("findmin: fired lane %d beyond %d lanes", minIdx, numLanes))
		}
		m.lane = m.rangeIv.Lane(m.cfg.Lanes, minIdx)
		if m.cfg.VerifyNarrowing {
			if m.lane.Lo > m.rangeIv.Lo {
				// Step 6: TestLow — is there a lighter cut edge below the
				// fired lane that TestOut missed?
				return m.startHP(sketch.Interval{Lo: m.rangeIv.Lo, Hi: m.lane.Lo - 1}, msHPLow)
			}
			return m.startHP(m.lane, msHPLane)
		}
		return m.narrow()

	case msHPEmpty:
		v, _ := w.Value()
		if !sketch.ConsumeHP(v) {
			m.res.Reason = EmptyCut
			return m.done()
		}
		return m.iterate()

	case msHPLow:
		v, _ := w.Value()
		if sketch.ConsumeHP(v) {
			return m.iterate() // paper step 8: repeat without narrowing
		}
		// TestInterval — confirm the fired lane (guards against the
		// vanishing chance HP-TestOut contradicts a certain positive).
		return m.startHP(m.lane, msHPLane)

	case msHPLane:
		v, _ := w.Value()
		if !sketch.ConsumeHP(v) {
			return m.iterate()
		}
		return m.narrow()
	}
	return m.fail(fmt.Errorf("findmin: Step in state %d", m.st))
}

// iterate starts the next narrowing iteration, or gives up when the budget
// is spent (FindMin-C's constant-probability failure mode).
func (m *Machine) iterate() (congest.SessionID, bool, error) {
	if m.res.Stats.Iterations >= m.maxIter {
		m.res.Reason = GaveUp
		return m.done()
	}
	m.res.Stats.Iterations++
	// Steps 4-5: one broadcast carries a fresh odd hash; the echo carries
	// one TestOut bit per lane.
	h := hashing.NewOddHash(m.r)
	m.st = msLanes
	return m.testOut.Start(m.pr, m.root, h, m.rangeIv, m.cfg.Lanes), false, nil
}

// startHP begins one HP-TestOut over iv and parks in the given state.
func (m *Machine) startHP(iv sketch.Interval, next machineState) (congest.SessionID, bool, error) {
	m.res.Stats.HPTests++
	sketch.DrawAlphasInto(m.r, m.alphaBuf[:m.reps])
	m.st = next
	return m.hpRun.Start(m.pr, m.root, m.alphaBuf[:m.reps], iv), false, nil
}

// narrow commits to the verified fired lane (step 7a) and finishes when it
// has shrunk to a single composite weight.
func (m *Machine) narrow() (congest.SessionID, bool, error) {
	m.res.Stats.Narrowings++
	m.rangeIv = m.lane
	if m.rangeIv.Lo == m.rangeIv.Hi {
		comp := m.rangeIv.Lo
		layout := m.pr.Network().Layout()
		_, edgeNum := layout.SplitComposite(comp)
		a, b := layout.SplitEdgeNum(edgeNum)
		m.res.Reason = FoundEdge
		m.res.Composite = comp
		m.res.EdgeNum = edgeNum
		m.res.A, m.res.B = congest.NodeID(a), congest.NodeID(b)
		return m.done()
	}
	return m.iterate()
}

func (m *Machine) done() (congest.SessionID, bool, error) {
	m.st = msDone
	// Machines step in driver context, so the lifecycle tally is emitted on
	// the engine goroutine in deterministic order.
	if o := m.pr.Network().Obs(); o != nil {
		o.Count("findmin."+m.res.Reason.String(), 1)
	}
	return 0, true, m.err
}

func (m *Machine) fail(err error) (congest.SessionID, bool, error) {
	m.err = err
	m.st = msDone
	if o := m.pr.Network().Obs(); o != nil {
		o.Count("findmin.error", 1)
	}
	return 0, true, err
}

// Drive runs the machine to completion on a blocking goroutine driver,
// awaiting each step's session in place. Because Drive and a continuation
// task execute the very same Step sequence, the two driver models are
// observably identical.
func (m *Machine) Drive(p *congest.Proc) (Result, error) {
	next, done, _ := m.Step(nil, congest.Wake{})
	for !done {
		w, err := p.AwaitWake(next)
		if err != nil {
			return m.res, err
		}
		next, done, _ = m.Step(nil, w)
	}
	return m.Result()
}
