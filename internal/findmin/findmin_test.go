package findmin

import (
	"testing"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/spanning"
	"kkt/internal/tree"
)

// buildFragmentNet marks the MSF edges of g restricted to the node set
// frag (given as a sorted list) and returns the network plus the expected
// minimum cut edge (or -1).
func fragmentNet(t *testing.T, g *graph.Graph, frag []uint32) (*congest.Network, *tree.Protocol, int) {
	t.Helper()
	inT := make([]bool, g.N+1)
	for _, v := range frag {
		inT[v] = true
	}
	// spanning tree of the induced subgraph (greedy over induced edges)
	var treeEdges [][2]congest.NodeID
	uf := spanning.NewUnionFind(g.N)
	for _, e := range g.Edges() {
		if inT[e.A] && inT[e.B] && uf.Union(e.A, e.B) {
			treeEdges = append(treeEdges, [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)})
		}
	}
	if len(treeEdges) != len(frag)-1 {
		t.Fatalf("fragment %v not connected in g", frag)
	}
	nw := congest.NewNetwork(g)
	nw.SetForest(treeEdges)
	return nw, tree.Attach(nw), spanning.MinCutEdge(g, inT)
}

func runFindMin(t *testing.T, nw *congest.Network, pr *tree.Protocol, root congest.NodeID, seed uint64, cfg Config) Result {
	t.Helper()
	var res Result
	nw.Spawn("findmin", func(p *congest.Proc) error {
		r, err := Run(p, pr, root, rng.New(seed), cfg)
		res = r
		return err
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFindMinOnRandomFragments(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		g := graph.GNM(r, 24, 60, 1000, graph.UniformWeights(r, 1000))
		// random fragment of size 2..12 grown from a random node
		frag := growFragment(r, g, 2+r.Intn(11))
		nw, pr, wantIdx := fragmentNet(t, g, frag)
		res := runFindMin(t, nw, pr, congest.NodeID(frag[0]), uint64(trial)+100, Defaults(Full))
		if wantIdx < 0 {
			if res.Reason != EmptyCut {
				t.Fatalf("trial %d: want empty cut, got %v", trial, res.Reason)
			}
			continue
		}
		want := g.Edge(wantIdx)
		if res.Reason != FoundEdge {
			t.Fatalf("trial %d: reason = %v, want found (w.h.p.)", trial, res.Reason)
		}
		if res.A != congest.NodeID(want.A) || res.B != congest.NodeID(want.B) {
			t.Fatalf("trial %d: found {%d,%d}, want {%d,%d}", trial, res.A, res.B, want.A, want.B)
		}
		if res.Composite != g.Composite(want) {
			t.Fatalf("trial %d: composite mismatch", trial)
		}
	}
}

// growFragment BFS-grows a connected node set of the requested size.
func growFragment(r *rng.RNG, g *graph.Graph, size int) []uint32 {
	start := uint32(r.Intn(g.N) + 1)
	seen := map[uint32]bool{start: true}
	frontier := []uint32{start}
	out := []uint32{start}
	for len(out) < size && len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		for _, nb := range g.Neighbors(v) {
			if !seen[nb] && len(out) < size {
				seen[nb] = true
				out = append(out, nb)
				frontier = append(frontier, nb)
			}
		}
	}
	return out
}

func TestFindMinWholeGraphTreeIsEmpty(t *testing.T) {
	r := rng.New(3)
	g := graph.GNM(r, 15, 40, 100, graph.UniformWeights(r, 100))
	frag := make([]uint32, g.N)
	for i := range frag {
		frag[i] = uint32(i + 1)
	}
	nw, pr, wantIdx := fragmentNet(t, g, frag)
	if wantIdx != -1 {
		t.Fatal("whole graph should have an empty cut")
	}
	res := runFindMin(t, nw, pr, 1, 9, Defaults(Full))
	if res.Reason != EmptyCut {
		t.Fatalf("reason = %v, want empty", res.Reason)
	}
}

func TestFindMinSingletonFragment(t *testing.T) {
	g := graph.MustNew(3, 10)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(1, 3, 7)
	nw := congest.NewNetwork(g)
	pr := tree.Attach(nw) // nothing marked: {2} alone
	res := runFindMin(t, nw, pr, 2, 5, Defaults(Full))
	if res.Reason != FoundEdge {
		t.Fatalf("reason = %v", res.Reason)
	}
	// lightest edge at node 2 is {2,3} w=2
	if res.A != 2 || res.B != 3 {
		t.Errorf("found {%d,%d}, want {2,3}", res.A, res.B)
	}
}

func TestFindMinTieBreaksOnEdgeNumber(t *testing.T) {
	// all candidate weights equal: composite order decides; the minimum
	// is the smallest edge number = {1,3} (vs {2,4} and {2,3}... check).
	g := graph.MustNew(4, 10)
	g.MustAddEdge(1, 2, 1) // tree edge
	g.MustAddEdge(1, 3, 5)
	g.MustAddEdge(2, 3, 5)
	g.MustAddEdge(2, 4, 5)
	nw := congest.NewNetwork(g)
	nw.SetForest([][2]congest.NodeID{{1, 2}})
	pr := tree.Attach(nw)
	res := runFindMin(t, nw, pr, 1, 11, Defaults(Full))
	if res.Reason != FoundEdge || res.A != 1 || res.B != 3 {
		t.Errorf("got %v {%d,%d}, want found {1,3}", res.Reason, res.A, res.B)
	}
}

func TestFindMinCappedUsuallySucceeds(t *testing.T) {
	r := rng.New(13)
	succ, trials := 0, 40
	for trial := 0; trial < trials; trial++ {
		g := graph.GNM(r, 16, 40, 200, graph.UniformWeights(r, 200))
		frag := growFragment(r, g, 5)
		nw, pr, wantIdx := fragmentNet(t, g, frag)
		if wantIdx < 0 {
			trials--
			continue
		}
		res := runFindMin(t, nw, pr, congest.NodeID(frag[0]), uint64(trial)*7+1, Defaults(Capped))
		switch res.Reason {
		case FoundEdge:
			want := g.Edge(wantIdx)
			if res.A != congest.NodeID(want.A) || res.B != congest.NodeID(want.B) {
				t.Fatalf("trial %d: Capped returned a non-minimum edge {%d,%d}, want {%d,%d}",
					trial, res.A, res.B, want.A, want.B)
			}
			succ++
		case GaveUp:
			// allowed with probability <= 1/3
		case EmptyCut:
			t.Fatalf("trial %d: false empty-cut (prob ~ n^-c)", trial)
		}
	}
	// Lemma 2: success probability >= 2/3 - n^-c. Require > 1/2 over 40.
	if float64(succ) < 0.5*float64(trials) {
		t.Errorf("FindMin-C succeeded only %d/%d times", succ, trials)
	}
}

func TestFindMinBinaryLanesAblation(t *testing.T) {
	// 2 lanes = binary search: still correct, just more iterations.
	r := rng.New(23)
	g := graph.GNM(r, 20, 50, 500, graph.UniformWeights(r, 500))
	frag := growFragment(r, g, 8)
	nw, pr, wantIdx := fragmentNet(t, g, frag)
	if wantIdx < 0 {
		t.Skip("no cut edge in this draw")
	}
	cfg := Defaults(Full)
	cfg.Lanes = 2
	res := runFindMin(t, nw, pr, congest.NodeID(frag[0]), 77, cfg)
	want := g.Edge(wantIdx)
	if res.Reason != FoundEdge || res.A != congest.NodeID(want.A) || res.B != congest.NodeID(want.B) {
		t.Fatalf("binary-lane FindMin wrong: %v {%d,%d}", res.Reason, res.A, res.B)
	}
}

func TestFindMinMessageScaling(t *testing.T) {
	// On a fragment of size s, one FindMin costs O(s log n / log log n)
	// messages; check messages stay well below s * lg(maxWt) * 2 ... i.e.
	// sanity-check the per-broadcast accounting rather than constants:
	// messages should be ~ (2 msgs per tree edge) * (#B&Es).
	r := rng.New(29)
	g := graph.GNM(r, 64, 200, 1000, graph.UniformWeights(r, 1000))
	frag := growFragment(r, g, 32)
	nw, pr, wantIdx := fragmentNet(t, nwGraph(g), frag)
	_ = wantIdx
	before := nw.Counters()
	res := runFindMin(t, nw, pr, congest.NodeID(frag[0]), 31, Defaults(Full))
	diff := nw.Counters().Sub(before)
	bes := res.Stats.Iterations + res.Stats.HPTests + 1 // +1 survey
	maxPerBE := uint64(2 * (len(frag) - 1))
	if diff.Messages > uint64(bes)*maxPerBE {
		t.Errorf("messages %d exceed %d B&Es x %d", diff.Messages, bes, maxPerBE)
	}
	if res.Reason == GaveUp {
		t.Error("FindMin gave up (prob ~ n^-c)")
	}
}

// nwGraph is an identity helper kept for readability at call sites.
func nwGraph(g *graph.Graph) *graph.Graph { return g }

func TestIterationBudgets(t *testing.T) {
	full := iterationBudget(Config{Variant: Full, C: 2, Lanes: 64}, 1024, 1<<30)
	capped := iterationBudget(Config{Variant: Capped, C: 2, Lanes: 64}, 1024, 1<<30)
	if full <= 0 || capped <= 0 {
		t.Fatal("non-positive budgets")
	}
	// Full's budget includes the (c/q) lg n term; Capped's does not.
	if capped >= full {
		t.Errorf("capped budget %d >= full budget %d", capped, full)
	}
	// Budget grows when lanes shrink (binary search does more rounds).
	bin := iterationBudget(Config{Variant: Capped, C: 2, Lanes: 2}, 1024, 1<<30)
	if bin <= capped {
		t.Errorf("binary budget %d should exceed 64-lane budget %d", bin, capped)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	g := graph.Path(2, 5, graph.UnitWeights())
	nw := congest.NewNetwork(g)
	pr := tree.Attach(nw)
	nw.Spawn("bad", func(p *congest.Proc) error {
		_, err := Run(p, pr, 1, rng.New(1), Config{Variant: Full, Lanes: 1})
		if err == nil {
			t.Error("lanes=1 accepted")
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}
