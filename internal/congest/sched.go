package congest

import (
	"container/heap"

	"kkt/internal/rng"
)

// scheduler abstracts the two timing models. schedule queues a sent
// message, with fifo pointing at the sending half-edge's per-directed-link
// FIFO cell (HalfEdge.lastSched; the synchronous scheduler ignores it);
// nextBatch removes and returns the next messages to deliver (one
// synchronous round's worth, or one asynchronous tick group — every event
// sharing the earliest pending deliverAt); empty reports whether anything
// is still in flight; now is the clock.
//
// The slice returned by nextBatch is owned by the scheduler and is only
// valid until the next call — the engine consumes it immediately and nils
// the entries, so buffers recycle without allocation.
type scheduler interface {
	schedule(m *Message, fifo *int64)
	nextBatch() []*Message
	empty() bool
	now() int64
}

// syncScheduler delivers in lockstep rounds: everything sent during round
// r is delivered together at round r+1, in send order (deterministic).
// Two buffers ping-pong between "accumulating" and "being delivered", so
// steady-state rounds allocate nothing.
type syncScheduler struct {
	round   int64
	pending []*Message
	spare   []*Message // last delivered batch, recycled next round
}

func newSyncScheduler() *syncScheduler { return &syncScheduler{} }

func (s *syncScheduler) schedule(m *Message, _ *int64) {
	m.deliverAt = s.round + 1
	s.pending = append(s.pending, m)
}

func (s *syncScheduler) nextBatch() []*Message {
	if len(s.pending) == 0 {
		return nil
	}
	s.round++
	batch := s.pending
	s.pending = s.spare[:0]
	s.spare = batch
	return batch
}

func (s *syncScheduler) empty() bool { return len(s.pending) == 0 }
func (s *syncScheduler) now() int64  { return s.round }

// asyncScheduler orders deliveries by a virtual deliver time = send time +
// uniform delay in [1, maxDelay], with FIFO order preserved per directed
// link (messages on one link never overtake). The per-link FIFO state
// lives in the sending half-edge (the fifo cell handed to schedule), not
// in a map — the send path does no hashing. Ties break by send sequence,
// so runs are deterministic per seed.
//
// The priority queue is a bucketed calendar queue: a ring of width-1 time
// buckets covering the window (clock, clock+span), plus a small binary
// heap for the tail of far-future events (per-link FIFO bumping can push
// deliveries arbitrarily far ahead). Near-term events — the common case,
// since delays are bounded by maxDelay — are appended to their bucket and
// popped in O(1) amortized, with no heap sift and no allocation in steady
// state. Bucket append order equals (deliverAt, seq) order: direct inserts
// happen in send order, and overflow events drain into the ring (in heap
// order) before any later send can share their bucket.
//
// Delivery is windowed: nextBatch extracts up to asyncWindowTicks occupied
// ticks from the calendar in one forward scan and then hands them to the
// engine one tick group at a time — every message of a group shares one
// deliverAt, so a group is the async analogue of a synchronous round and
// shards cleanly by destination. Emissions that land at a tick the open
// window already covers (at <= win.end) are conflicts: winInsert routes
// them to their exact (deliverAt, seq) reference position among the
// not-yet-delivered groups, so the delivery sequence is identical to a
// one-event-at-a-time replay. Conflicts always target ticks strictly after
// the group being delivered (delays are >= 1), never an in-flight batch.
type asyncScheduler struct {
	clock    int64
	maxDelay int64
	r        *rng.RNG

	ring     [][]*Message // len is a power of two; one deliverAt per bucket
	mask     int64
	span     int64 // window length; ring entries satisfy deliverAt - clock < span
	inRing   int
	overflow messageHeap

	win asyncWindow
	// spares recycles group/bucket backing slices: extraction swaps a
	// spare into each emptied bucket, delivered groups return here.
	spares [][]*Message
	// lastBatch is the group handed out by the previous nextBatch call; it
	// is recycled at the next call, honouring the scheduler interface's
	// "valid until the next call" batch contract.
	lastBatch []*Message
	// conflicts counts window-conflicting emissions routed by winInsert;
	// exposed through Network.AsyncConflicts for tests and observability.
	conflicts uint64
}

// asyncWindow is the bounded run of tick groups most recently extracted
// from the calendar: times[i] is the deliverAt shared by every message in
// groups[i], strictly increasing; head indexes the next group to deliver;
// end is the last covered tick — the conflict horizon. Events scheduled at
// or before end while the window is open belong inside it.
type asyncWindow struct {
	times  []int64
	groups [][]*Message
	head   int
	end    int64
}

// asyncWindowTicks bounds how many occupied ticks one extraction pulls out
// of the calendar. A var so tests can shrink it to force frequent
// extraction/quiet-stretch interleavings.
var asyncWindowTicks = 16

func newAsyncScheduler(r *rng.RNG, maxDelay int64) *asyncScheduler {
	span := int64(16)
	for span < 4*maxDelay {
		span *= 2
	}
	const maxSpan = 1 << 12
	if span > maxSpan {
		span = maxSpan
	}
	return &asyncScheduler{
		maxDelay: maxDelay,
		r:        r,
		ring:     make([][]*Message, span),
		mask:     span - 1,
		span:     span,
	}
}

func linkKey(from, to NodeID) uint64 { return uint64(from)<<32 | uint64(to) }

func (s *asyncScheduler) schedule(m *Message, fifo *int64) {
	// Drain first: an overflow event whose time has entered the window
	// must reach its bucket before any later send that could share it,
	// or the bucket's append order would no longer be (deliverAt, seq).
	if len(s.overflow) > 0 {
		s.drainOverflow()
	}
	delay := 1 + int64(s.r.Uint64n(uint64(s.maxDelay)))
	at := s.clock + delay
	// FIFO per directed link: never schedule at or before the previous
	// message on this link. A zero cell (no prior traffic) never triggers,
	// since at >= clock+1 >= 1.
	if at <= *fifo {
		at = *fifo + 1
	}
	*fifo = at
	m.deliverAt = at
	// Conflict: the emission lands at a tick the open delivery window
	// already covers. Route it to its reference position inside the window
	// instead of the ring, so windowed delivery stays byte-identical to a
	// one-event-at-a-time replay. at > clock always (delay >= 1), so a
	// conflict never mutates the group currently being delivered.
	if s.win.head < len(s.win.groups) && at <= s.win.end {
		s.winInsert(m)
		return
	}
	s.push(m)
}

// winInsert files a conflicting emission into the open window at its
// (deliverAt, seq) reference position: appended to its tick's group (its
// seq is larger than everything already there — extraction preceded it and
// seqs are monotone), or as a new group spliced in at the sorted spot.
func (s *asyncScheduler) winInsert(m *Message) {
	s.conflicts++
	w := &s.win
	lo, hi := w.head, len(w.times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w.times[mid] < m.deliverAt {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(w.times) && w.times[lo] == m.deliverAt {
		w.groups[lo] = append(w.groups[lo], m)
		return
	}
	w.times = append(w.times, 0)
	copy(w.times[lo+1:], w.times[lo:])
	w.times[lo] = m.deliverAt
	w.groups = append(w.groups, nil)
	copy(w.groups[lo+1:], w.groups[lo:])
	w.groups[lo] = append(s.takeSpare(), m)
}

// push files a message into the ring if it lands inside the current
// span, else into the overflow heap.
func (s *asyncScheduler) push(m *Message) {
	if m.deliverAt-s.clock < s.span {
		s.ring[m.deliverAt&s.mask] = append(s.ring[m.deliverAt&s.mask], m)
		s.inRing++
		return
	}
	heap.Push(&s.overflow, m)
}

// drainOverflow moves overflow events that have entered the span into
// their ring buckets, preserving (deliverAt, seq) order. Drained events
// never conflict with an open window: after any drain at clock c the heap
// holds only deliverAt >= c+span, while win.end < c+span — so by the time
// an event drains, the window it could have landed in has been fully
// extracted and closed.
func (s *asyncScheduler) drainOverflow() {
	for len(s.overflow) > 0 && s.overflow[0].deliverAt-s.clock < s.span {
		s.push(heap.Pop(&s.overflow).(*Message))
	}
}

// takeSpare pops a recycled backing slice (length 0) for a bucket or a
// window group, or returns nil (append will allocate once; the slice then
// stays in circulation).
func (s *asyncScheduler) takeSpare() []*Message {
	if n := len(s.spares); n > 0 {
		sp := s.spares[n-1]
		s.spares[n-1] = nil
		s.spares = s.spares[:n-1]
		return sp
	}
	return nil
}

func (s *asyncScheduler) nextBatch() []*Message {
	if s.lastBatch != nil {
		// The engine is done with the previous group (and nil'd its
		// entries); its backing slice goes back into circulation.
		s.spares = append(s.spares, s.lastBatch[:0])
		s.lastBatch = nil
	}
	if s.win.head == len(s.win.groups) {
		// Window exhausted: extract the next one from the calendar.
		s.win.times = s.win.times[:0]
		s.win.groups = s.win.groups[:0]
		s.win.head = 0
		for {
			s.drainOverflow()
			if s.inRing > 0 {
				break
			}
			if len(s.overflow) == 0 {
				return nil
			}
			// Quiet stretch: jump the span to the earliest far event. The
			// clock is observable only after a delivery, which will set it
			// to that event's time anyway.
			s.clock = s.overflow[0].deliverAt - 1
		}
		// Scan forward from the clock. Every live ring event is at a tick
		// in (clock, clock+span) and each bucket holds exactly one
		// deliverAt at a time, so consecutive occupied buckets are the
		// globally earliest ticks in order.
		t := s.clock + 1
		for s.inRing > 0 && len(s.win.times) < asyncWindowTicks {
			if g := s.ring[t&s.mask]; len(g) > 0 {
				s.inRing -= len(g)
				s.ring[t&s.mask] = s.takeSpare()
				s.win.times = append(s.win.times, t)
				s.win.groups = append(s.win.groups, g)
			}
			t++
		}
		s.win.end = s.win.times[len(s.win.times)-1]
	}
	g := s.win.groups[s.win.head]
	s.clock = s.win.times[s.win.head]
	s.win.groups[s.win.head] = nil
	s.win.head++
	s.lastBatch = g
	return g
}

func (s *asyncScheduler) empty() bool {
	return s.inRing == 0 && len(s.overflow) == 0 && s.win.head == len(s.win.groups)
}
func (s *asyncScheduler) now() int64 { return s.clock }

// messageHeap orders by (deliverAt, seq); it backs the calendar queue's
// far-future overflow.
type messageHeap []*Message

func (h messageHeap) Len() int { return len(h) }
func (h messageHeap) Less(i, j int) bool {
	if h[i].deliverAt != h[j].deliverAt {
		return h[i].deliverAt < h[j].deliverAt
	}
	return h[i].seq < h[j].seq
}
func (h messageHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *messageHeap) Push(x any)   { *h = append(*h, x.(*Message)) }
func (h *messageHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return m
}
