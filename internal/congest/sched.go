package congest

import (
	"container/heap"

	"kkt/internal/rng"
)

// scheduler abstracts the two timing models. schedule queues a sent
// message, with fifo pointing at the sending half-edge's per-directed-link
// FIFO cell (HalfEdge.lastSched; the synchronous scheduler ignores it);
// nextBatch removes and returns the next messages to deliver (one
// synchronous round's worth, or a single asynchronous event); empty
// reports whether anything is still in flight; now is the clock.
//
// The slice returned by nextBatch is owned by the scheduler and is only
// valid until the next call — the engine consumes it immediately and nils
// the entries, so buffers recycle without allocation.
type scheduler interface {
	schedule(m *Message, fifo *int64)
	nextBatch() []*Message
	empty() bool
	now() int64
}

// syncScheduler delivers in lockstep rounds: everything sent during round
// r is delivered together at round r+1, in send order (deterministic).
// Two buffers ping-pong between "accumulating" and "being delivered", so
// steady-state rounds allocate nothing.
type syncScheduler struct {
	round   int64
	pending []*Message
	spare   []*Message // last delivered batch, recycled next round
}

func newSyncScheduler() *syncScheduler { return &syncScheduler{} }

func (s *syncScheduler) schedule(m *Message, _ *int64) {
	m.deliverAt = s.round + 1
	s.pending = append(s.pending, m)
}

func (s *syncScheduler) nextBatch() []*Message {
	if len(s.pending) == 0 {
		return nil
	}
	s.round++
	batch := s.pending
	s.pending = s.spare[:0]
	s.spare = batch
	return batch
}

func (s *syncScheduler) empty() bool { return len(s.pending) == 0 }
func (s *syncScheduler) now() int64  { return s.round }

// asyncScheduler delivers one message at a time, ordered by a virtual
// deliver time = send time + uniform delay in [1, maxDelay], with FIFO
// order preserved per directed link (messages on one link never overtake).
// The per-link FIFO state lives in the sending half-edge (the fifo cell
// handed to schedule), not in a map — the send path does no hashing.
// Ties break by send sequence, so runs are deterministic per seed.
//
// The priority queue is a bucketed calendar queue: a ring of width-1 time
// buckets covering the window (clock, clock+span), plus a small binary
// heap for the tail of far-future events (per-link FIFO bumping can push
// deliveries arbitrarily far ahead). Near-term events — the common case,
// since delays are bounded by maxDelay — are appended to their bucket and
// popped in O(1) amortized, with no heap sift and no allocation in steady
// state. Bucket append order equals (deliverAt, seq) order: direct inserts
// happen in send order, and overflow events drain into the ring (in heap
// order) before any later send can share their bucket.
type asyncScheduler struct {
	clock    int64
	maxDelay int64
	r        *rng.RNG

	ring     []calBucket // len is a power of two
	mask     int64
	span     int64 // window length; ring entries satisfy deliverAt - clock < span
	inRing   int
	overflow messageHeap
	out      [1]*Message // reusable single-message batch
}

// calBucket is one calendar-queue time slot: a slice consumed front to
// back. head indexes the next undelivered entry; once drained the slice
// resets to its full backing array, so buckets stop allocating once warm.
type calBucket struct {
	head int
	msgs []*Message
}

func newAsyncScheduler(r *rng.RNG, maxDelay int64) *asyncScheduler {
	span := int64(16)
	for span < 4*maxDelay {
		span *= 2
	}
	const maxSpan = 1 << 12
	if span > maxSpan {
		span = maxSpan
	}
	return &asyncScheduler{
		maxDelay: maxDelay,
		r:        r,
		ring:     make([]calBucket, span),
		mask:     span - 1,
		span:     span,
	}
}

func linkKey(from, to NodeID) uint64 { return uint64(from)<<32 | uint64(to) }

func (s *asyncScheduler) schedule(m *Message, fifo *int64) {
	// Drain first: an overflow event whose time has entered the window
	// must reach its bucket before any later send that could share it,
	// or the bucket's append order would no longer be (deliverAt, seq).
	if len(s.overflow) > 0 {
		s.drainOverflow()
	}
	delay := 1 + int64(s.r.Uint64n(uint64(s.maxDelay)))
	at := s.clock + delay
	// FIFO per directed link: never schedule at or before the previous
	// message on this link. A zero cell (no prior traffic) never triggers,
	// since at >= clock+1 >= 1.
	if at <= *fifo {
		at = *fifo + 1
	}
	*fifo = at
	m.deliverAt = at
	s.push(m)
}

// push files a message into the ring if it lands inside the current
// window, else into the overflow heap.
func (s *asyncScheduler) push(m *Message) {
	if m.deliverAt-s.clock < s.span {
		b := &s.ring[m.deliverAt&s.mask]
		b.msgs = append(b.msgs, m)
		s.inRing++
		return
	}
	heap.Push(&s.overflow, m)
}

// drainOverflow moves overflow events that have entered the window into
// their ring buckets, preserving (deliverAt, seq) order.
func (s *asyncScheduler) drainOverflow() {
	for len(s.overflow) > 0 && s.overflow[0].deliverAt-s.clock < s.span {
		s.push(heap.Pop(&s.overflow).(*Message))
	}
}

func (s *asyncScheduler) nextBatch() []*Message {
	for {
		s.drainOverflow()
		if s.inRing > 0 {
			break
		}
		if len(s.overflow) == 0 {
			return nil
		}
		// Quiet stretch: jump the window to the earliest far event. The
		// clock is observable only after a delivery, which will set it to
		// that event's time anyway.
		s.clock = s.overflow[0].deliverAt - 1
	}
	// Scan forward from the clock (leftover same-tick entries first). Each
	// bucket holds exactly one deliverAt at a time, so the first non-empty
	// bucket is the global minimum.
	t := s.clock
	for {
		b := &s.ring[t&s.mask]
		if b.head < len(b.msgs) {
			m := b.msgs[b.head]
			b.msgs[b.head] = nil
			b.head++
			if b.head == len(b.msgs) {
				b.msgs = b.msgs[:0]
				b.head = 0
			}
			s.inRing--
			if m.deliverAt > s.clock {
				s.clock = m.deliverAt
			}
			s.out[0] = m
			return s.out[:1]
		}
		t++
	}
}

func (s *asyncScheduler) empty() bool { return s.inRing == 0 && len(s.overflow) == 0 }
func (s *asyncScheduler) now() int64  { return s.clock }

// messageHeap orders by (deliverAt, seq); it backs the calendar queue's
// far-future overflow.
type messageHeap []*Message

func (h messageHeap) Len() int { return len(h) }
func (h messageHeap) Less(i, j int) bool {
	if h[i].deliverAt != h[j].deliverAt {
		return h[i].deliverAt < h[j].deliverAt
	}
	return h[i].seq < h[j].seq
}
func (h messageHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *messageHeap) Push(x any)   { *h = append(*h, x.(*Message)) }
func (h *messageHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return m
}
