package congest

import (
	"container/heap"

	"kkt/internal/rng"
)

// scheduler abstracts the two timing models. schedule queues a sent
// message; nextBatch removes and returns the next messages to deliver
// (one synchronous round's worth, or a single asynchronous event);
// empty reports whether anything is still in flight; now is the clock.
type scheduler interface {
	schedule(m *Message)
	nextBatch() []*Message
	empty() bool
	now() int64
}

// syncScheduler delivers in lockstep rounds: everything sent during round
// r is delivered together at round r+1, in send order (deterministic).
type syncScheduler struct {
	round   int64
	pending []*Message
}

func newSyncScheduler() *syncScheduler { return &syncScheduler{} }

func (s *syncScheduler) schedule(m *Message) {
	m.deliverAt = s.round + 1
	s.pending = append(s.pending, m)
}

func (s *syncScheduler) nextBatch() []*Message {
	if len(s.pending) == 0 {
		return nil
	}
	s.round++
	batch := s.pending
	s.pending = nil
	return batch
}

func (s *syncScheduler) empty() bool { return len(s.pending) == 0 }
func (s *syncScheduler) now() int64  { return s.round }

// asyncScheduler delivers one message at a time, ordered by a virtual
// deliver time = send time + uniform delay in [1, maxDelay], with FIFO
// order preserved per directed link (messages on one link never overtake).
// Ties break by send sequence, so runs are deterministic per seed.
type asyncScheduler struct {
	clock    int64
	maxDelay int64
	r        *rng.RNG
	q        messageHeap
	lastOn   map[uint64]int64 // directed link key -> last scheduled deliverAt
}

func newAsyncScheduler(r *rng.RNG, maxDelay int64) *asyncScheduler {
	return &asyncScheduler{maxDelay: maxDelay, r: r, lastOn: make(map[uint64]int64)}
}

func linkKey(from, to NodeID) uint64 { return uint64(from)<<32 | uint64(to) }

func (s *asyncScheduler) schedule(m *Message) {
	delay := 1 + int64(s.r.Uint64n(uint64(s.maxDelay)))
	at := s.clock + delay
	key := linkKey(m.From, m.To)
	if last, ok := s.lastOn[key]; ok && at <= last {
		at = last + 1 // FIFO per link
	}
	s.lastOn[key] = at
	m.deliverAt = at
	heap.Push(&s.q, m)
}

func (s *asyncScheduler) nextBatch() []*Message {
	if s.q.Len() == 0 {
		return nil
	}
	m := heap.Pop(&s.q).(*Message)
	if m.deliverAt > s.clock {
		s.clock = m.deliverAt
	}
	return []*Message{m}
}

func (s *asyncScheduler) empty() bool { return s.q.Len() == 0 }
func (s *asyncScheduler) now() int64  { return s.clock }

// messageHeap orders by (deliverAt, seq).
type messageHeap []*Message

func (h messageHeap) Len() int { return len(h) }
func (h messageHeap) Less(i, j int) bool {
	if h[i].deliverAt != h[j].deliverAt {
		return h[i].deliverAt < h[j].deliverAt
	}
	return h[i].seq < h[j].seq
}
func (h messageHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *messageHeap) Push(x any)   { *h = append(*h, x.(*Message)) }
func (h *messageHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return m
}
