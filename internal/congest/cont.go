package congest

import (
	"fmt"
)

// This file is the continuation-style driver runtime: the second of the
// engine's two driver models.
//
// A goroutine driver (Proc) is a sequential function parked on a channel
// at every await — convenient to write, but a parked goroutine costs a
// stack. At one driver per fragment per Borůvka phase that is the memory
// wall at scale: ~1M parked stacks for the first phase of a 1M-node
// build. A continuation driver is the same program written as an explicit
// state machine (StepDriver) wrapped in a pooled Task: tens of bytes of
// heap instead of kilobytes of stack, stepped directly on the engine
// goroutine with no channel handoff.
//
// Scheduling is shared with goroutine drivers: spawns and session
// completions append to the one run queue, which the engine drains in
// order. A task therefore runs exactly where the equivalent goroutine
// driver would have been resumed — same network-call order, same session
// serials, same derived randomness — which is what lets seeded reports
// stay byte-identical across the two models (and, unchanged from before,
// across shard counts).

// StepDriver is the state-machine body of a continuation driver. The
// engine calls Step once when the task starts (with a zero Wake) and once
// more each time the awaited session completes (with that completion).
//
// Step advances the machine as far as it can without blocking and then
// either returns the next session to await (done == false) or finishes
// (done == true, with the driver's terminal error). A resumed Step must
// check w.Err() first and finish with that error — forced completions
// (deadlock unwinding) propagate through machines this way, exactly as a
// goroutine driver's Await error unwinds its call stack.
//
// Step runs on the engine goroutine in driver context: it may freely call
// NewSession, Send, CompleteSession, topology mutation — everything a
// goroutine driver may do between awaits. It must not block.
type StepDriver interface {
	Step(t *Task, w Wake) (next SessionID, done bool, err error)
}

// Task is one continuation driver: a pooled handle binding a StepDriver to
// the engine. Tasks recycle through a per-Run free list exactly like
// goroutine Procs do, so a warm Borůvka phase spawns its whole fan-out
// without allocating.
type Task struct {
	nw *Network
	d  StepDriver

	// Tagged diagnostic name, formatted only on demand (same contract as
	// Proc.GoTagged): the per-fragment spawn path never builds strings.
	prefix     string
	tagA, tagB uint64

	doneSession SessionID
	awaiting    SessionID // 0 when not parked; diagnostic only
	finished    bool
	pooled      bool
	err         error
}

// Name returns the task's diagnostic name, formatted on demand.
func (t *Task) Name() string {
	return fmt.Sprintf("%s-p%d-f%d", t.prefix, t.tagA, t.tagB)
}

// Network returns the network the task runs on.
func (t *Task) Network() *Network { return t.nw }

// Err returns the task's terminal error; valid once the task finished.
func (t *Task) Err() error { return t.err }

// getTask pops a pooled task or allocates a fresh one.
func (nw *Network) getTask() *Task {
	if n := len(nw.taskFree); n > 0 {
		t := nw.taskFree[n-1]
		nw.taskFree[n-1] = nil
		nw.taskFree = nw.taskFree[:n-1]
		t.pooled = false
		return t
	}
	t := &Task{nw: nw}
	nw.allTasks = append(nw.allTasks, t)
	if len(nw.allTasks) > nw.peakTasks {
		nw.peakTasks = len(nw.allTasks)
	}
	return t
}

// spawnTask registers a continuation driver. Mirrors spawn: the done
// session is allocated here, at spawn time, so session serials line up
// exactly with the goroutine model's.
func (nw *Network) spawnTask(prefix string, a, b uint64, d StepDriver) *Task {
	t := nw.getTask()
	t.prefix, t.tagA, t.tagB = prefix, a, b
	t.d = d
	t.finished, t.err, t.awaiting = false, nil, 0
	t.doneSession = nw.NewSession(nil)
	nw.noteLive()
	nw.runq = append(nw.runq, wakeup{t: t})
	return t
}

// SpawnStep registers a continuation driver before Run, the StepDriver
// counterpart of Spawn. Fan-outs from within a running driver use
// (*Proc).GoStepTagged instead.
func (nw *Network) SpawnStep(name string, d StepDriver) *Task {
	if nw.running {
		panic("congest: SpawnStep called during Run; use (*Proc).GoStepTagged from a driver")
	}
	return nw.spawnTask(name, 0, 0, d)
}

// GoStepTagged spawns a continuation child driver named
// "<prefix>-p<a>-f<b>" (formatted lazily). It is the continuation
// equivalent of GoTagged: the child starts at the next scheduling
// opportunity, in run-queue order.
func (p *Proc) GoStepTagged(prefix string, a, b uint64, d StepDriver) *Task {
	return p.nw.spawnTask(prefix, a, b, d)
}

// WaitTasks is WaitAll for continuation children: it blocks until every
// given task has finished, returns the first non-nil error among them
// (all are joined regardless), and releases the joined tasks to the spawn
// pool.
func (p *Proc) WaitTasks(tasks ...*Task) error {
	var first error
	for _, t := range tasks {
		_, err := p.Await(t.doneSession)
		if err != nil && first == nil {
			first = err
		}
		p.nw.releaseTask(t)
	}
	return first
}

// releaseTask parks a joined task in the pool. As with releaseProc, only
// the consumer of the done session may release — anyone else could still
// await the recycled session of a re-spawned task.
func (nw *Network) releaseTask(t *Task) {
	if !t.finished || t.pooled {
		return
	}
	t.pooled = true
	nw.taskFree = append(nw.taskFree, t)
}

// stepTask advances a task on the engine goroutine until it parks on an
// incomplete session or finishes. Awaiting an already-completed session
// consumes it and continues stepping inline — the continuation analogue of
// Await returning immediately.
func (nw *Network) stepTask(t *Task, w Wake) {
	for {
		next, done, err := t.d.Step(t, w)
		if done {
			t.finished, t.err = true, err
			t.awaiting = 0
			t.d = nil
			nw.live--
			nw.CompleteSession(t.doneSession, nil, err)
			return
		}
		s := nw.lookupSession(next)
		if s == nil {
			nw.failTask(t, fmt.Errorf("congest: %s awaits unknown session %d", t.Name(), next))
			return
		}
		if s.completed {
			w = Wake{result: s.result, u: s.resultU, unboxed: s.unboxed, err: s.err}
			nw.freeSession(s)
			continue
		}
		if s.waiter != nil || s.twaiter != nil {
			nw.failTask(t, fmt.Errorf("congest: session %d already has a waiter", next))
			return
		}
		s.twaiter = t
		t.awaiting = next
		return
	}
}

// failTask finishes a task with an engine-detected error (bad await).
func (nw *Network) failTask(t *Task, err error) {
	t.finished, t.err = true, err
	t.awaiting = 0
	t.d = nil
	nw.live--
	nw.CompleteSession(t.doneSession, nil, err)
}

// drainTaskPool drops every task at Run end, mirroring drainProcPool.
// Tasks hold no goroutines, so draining is just forgetting them — except
// that a task parked mid-await (the state a panic exit leaves it in) must
// unbind itself from its session first, or the stale waiter pointer would
// corrupt a later Run on the same network. The machines tasks wrapped
// belong to their protocol packages.
func (nw *Network) drainTaskPool() {
	for _, t := range nw.allTasks {
		if t.finished || t.awaiting == 0 {
			continue
		}
		if s := nw.lookupSession(t.awaiting); s != nil && s.twaiter == t {
			s.twaiter = nil
		}
	}
	for i := range nw.allTasks {
		nw.allTasks[i] = nil
	}
	nw.allTasks = nw.allTasks[:0]
	for i := range nw.taskFree {
		nw.taskFree[i] = nil
	}
	nw.taskFree = nw.taskFree[:0]
}

// DriverMode selects how protocol fan-outs drive their per-fragment
// work. The zero value is the continuation model — the default
// everywhere; the goroutine model remains for tests, small scenarios and
// as the reference the parity tests diff against.
type DriverMode uint8

const (
	// DriverCont runs per-fragment drivers as pooled continuation state
	// machines stepped by the engine (no goroutine per fragment).
	DriverCont DriverMode = iota
	// DriverGoroutine runs one pooled goroutine per fragment driver — the
	// pre-continuation model.
	DriverGoroutine
)

// String implements fmt.Stringer.
func (m DriverMode) String() string {
	switch m {
	case DriverCont:
		return "continuation"
	case DriverGoroutine:
		return "goroutine"
	default:
		return fmt.Sprintf("DriverMode(%d)", uint8(m))
	}
}

// DriverStats reports the engine's driver high-water marks, the footprint
// gate for the continuation model: a goroutine-per-fragment build shows
// PeakGoroutines on the order of the fragment count (each one a parked
// stack), a continuation build shows a handful (the phase controllers)
// with the fan-out in PeakTasks (plain heap objects). Marks are monotone
// across Runs on the same network.
type DriverStats struct {
	// PeakGoroutines is the most driver goroutines ever created (the
	// allProcs high-water mark, each backed by a parked OS-thread stack).
	PeakGoroutines int
	// PeakTasks is the most continuation tasks ever created.
	PeakTasks int
	// PeakLive is the most concurrently-unfinished drivers of both models.
	PeakLive int
}

// DriverStats returns the driver high-water marks.
func (nw *Network) DriverStats() DriverStats {
	return DriverStats{
		PeakGoroutines: nw.peakProcs,
		PeakTasks:      nw.peakTasks,
		PeakLive:       nw.peakLive,
	}
}
