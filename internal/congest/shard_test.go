package congest

import (
	"fmt"
	"reflect"
	"testing"

	"kkt/internal/graph"
	"kkt/internal/race"
	"kkt/internal/rng"
)

// shardTestNet builds a moderately dense random network for executor
// tests: enough nodes that several shards get real work, enough edges that
// rounds carry cross-shard traffic in both directions.
func shardTestNet(t testing.TB, n int, opts ...Option) *Network {
	t.Helper()
	r := rng.New(99)
	g := graph.MustNew(n, 64)
	for v := 2; v <= n; v++ {
		g.MustAddEdge(uint32(v), uint32(r.Intn(v-1)+1), uint64(r.Intn(64)+1))
	}
	for i := 0; i < 2*n; i++ {
		a := uint32(r.Intn(n) + 1)
		b := uint32(r.Intn(n) + 1)
		if a != b && g.EdgeIndex(a, b) < 0 {
			g.MustAddEdge(a, b, uint64(r.Intn(64)+1))
		}
	}
	return NewNetwork(g, opts...)
}

// shardTrace is one run's observable record: per-node receipt logs (value,
// round) in delivery order, session results in await order, and the final
// counters and clock.
type shardTrace struct {
	receipts [][][2]uint64
	results  []uint64
	counters Counters
	now      int64
}

// runShardWorkload drives a fan-out + chain workload on s shards and
// returns the trace. Handlers fan messages out across shard boundaries,
// reply to senders, and complete driver sessions — every effect class the
// sharded merge must keep in single-threaded order.
func runShardWorkload(t *testing.T, shards int) shardTrace {
	t.Helper()
	// Force even tiny rounds through the workers: the chain wave's
	// one-message rounds must exercise the deferred-completion merge, not
	// the inline fallback.
	defer func(min int) { shardMinBatch = min }(shardMinBatch)
	shardMinBatch = 0
	const n = 61 // prime-ish: uneven shard ranges
	nw := shardTestNet(t, n, WithSeed(5), WithShards(shards))
	tr := shardTrace{receipts: make([][][2]uint64, n+1)}

	gossip := Kind("shardtest.gossip")
	chain := Kind("shardtest.chain")
	nw.RegisterHandler(gossip, func(nw *Network, node *NodeState, msg *Message) {
		tr.receipts[node.ID] = append(tr.receipts[node.ID], [2]uint64{msg.U, uint64(nw.Now())})
		if msg.U == 0 {
			return
		}
		for i := range node.Edges {
			nb := node.Edges[i].Neighbor
			if (uint64(nb)+msg.U)%3 != 0 {
				nw.SendU(node.ID, nb, gossip, msg.Session, 16, msg.U-1)
			}
		}
	})
	nw.RegisterHandler(chain, func(nw *Network, node *NodeState, msg *Message) {
		tr.receipts[node.ID] = append(tr.receipts[node.ID], [2]uint64{1 << 32, msg.U})
		if msg.U == 0 {
			nw.CompleteSessionU(msg.Session, uint64(node.ID), nil)
			return
		}
		// forward along one deterministic edge: the chain completes exactly
		// once, at a node the TTL picks.
		next := node.Edges[int(msg.U)%len(node.Edges)].Neighbor
		nw.SendU(node.ID, next, chain, msg.Session, 16, msg.U-1)
	})

	nw.Spawn("driver", func(p *Proc) error {
		// Wave 1: bounded gossip flood from three roots.
		for _, root := range []NodeID{1, NodeID(n / 2), NodeID(n)} {
			node := nw.Node(root)
			for i := range node.Edges {
				nw.SendU(root, node.Edges[i].Neighbor, gossip, 0, 16, 3)
			}
		}
		p.AwaitQuiescence()
		// Wave 2: eight session chains with staggered TTLs; their
		// completion order exercises the deferred-completion merge.
		var sids []SessionID
		for i := 0; i < 8; i++ {
			sid := nw.NewSession(nil)
			sids = append(sids, sid)
			start := NodeID(i*7 + 1)
			nw.SendU(start, nw.Node(start).Edges[0].Neighbor, chain, sid, 16, uint64(2+i%5))
		}
		for _, sid := range sids {
			u, err := p.AwaitU(sid)
			if err != nil {
				return err
			}
			tr.results = append(tr.results, u)
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	tr.counters = nw.Counters()
	tr.now = nw.Now()
	return tr
}

// TestShardedDeliveryMatchesSingleThreaded is the executor's determinism
// contract at message level: per-node delivery logs (with round stamps),
// session completion results, cost counters and the clock are identical to
// the single-threaded engine at every shard count.
func TestShardedDeliveryMatchesSingleThreaded(t *testing.T) {
	want := runShardWorkload(t, 1)
	if want.counters.Messages == 0 || len(want.results) != 8 {
		t.Fatalf("workload degenerate: %+v", want.counters)
	}
	for _, shards := range []int{2, 3, 4, 8} {
		got := runShardWorkload(t, shards)
		if !reflect.DeepEqual(got.receipts, want.receipts) {
			t.Errorf("shards=%d: per-node receipt logs differ", shards)
		}
		if !reflect.DeepEqual(got.results, want.results) {
			t.Errorf("shards=%d: session results %v, want %v", shards, got.results, want.results)
		}
		if !reflect.DeepEqual(got.counters, want.counters) {
			t.Errorf("shards=%d: counters differ:\n got %v\nwant %v", shards, got.counters, want.counters)
		}
		if got.now != want.now {
			t.Errorf("shards=%d: clock %d, want %d", shards, got.now, want.now)
		}
	}
}

// runShardWorkloadAsync is runShardWorkload under the asynchronous
// scheduler: the same fan-out + chain traffic, but delivered as windowed
// tick groups with seeded delays and per-link FIFO. Every effect class the
// async merge must keep in reference order is exercised — staged sends
// whose FIFO cells bump at the merge, deferred completions, and emissions
// that conflict with the open delivery window.
func runShardWorkloadAsync(t *testing.T, shards int) (shardTrace, uint64) {
	t.Helper()
	defer func(min int) { shardMinBatch = min }(shardMinBatch)
	shardMinBatch = 0 // sparse async groups must still reach the workers
	const n = 61
	nw := shardTestNet(t, n, WithSeed(5), WithShards(shards), WithAsync(4))
	tr := shardTrace{receipts: make([][][2]uint64, n+1)}

	gossip := Kind("shardtest.agossip")
	chain := Kind("shardtest.achain")
	nw.RegisterHandler(gossip, func(nw *Network, node *NodeState, msg *Message) {
		tr.receipts[node.ID] = append(tr.receipts[node.ID], [2]uint64{msg.U, uint64(nw.Now())})
		if msg.U == 0 {
			return
		}
		for i := range node.Edges {
			nb := node.Edges[i].Neighbor
			if (uint64(nb)+msg.U)%3 != 0 {
				nw.SendU(node.ID, nb, gossip, msg.Session, 16, msg.U-1)
			}
		}
	})
	nw.RegisterHandler(chain, func(nw *Network, node *NodeState, msg *Message) {
		tr.receipts[node.ID] = append(tr.receipts[node.ID], [2]uint64{1 << 32, msg.U})
		if msg.U == 0 {
			nw.CompleteSessionU(msg.Session, uint64(node.ID), nil)
			return
		}
		next := node.Edges[int(msg.U)%len(node.Edges)].Neighbor
		nw.SendU(node.ID, next, chain, msg.Session, 16, msg.U-1)
	})

	nw.Spawn("driver", func(p *Proc) error {
		for _, root := range []NodeID{1, NodeID(n / 2), NodeID(n)} {
			node := nw.Node(root)
			for i := range node.Edges {
				nw.SendU(root, node.Edges[i].Neighbor, gossip, 0, 16, 3)
			}
		}
		p.AwaitQuiescence()
		var sids []SessionID
		for i := 0; i < 8; i++ {
			sid := nw.NewSession(nil)
			sids = append(sids, sid)
			start := NodeID(i*7 + 1)
			nw.SendU(start, nw.Node(start).Edges[0].Neighbor, chain, sid, 16, uint64(2+i%5))
		}
		for _, sid := range sids {
			u, err := p.AwaitU(sid)
			if err != nil {
				return err
			}
			tr.results = append(tr.results, u)
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatalf("async shards=%d: %v", shards, err)
	}
	tr.counters = nw.Counters()
	tr.now = nw.Now()
	return tr, nw.AsyncConflicts()
}

// TestAsyncShardedDeliveryMatchesSingleThreaded is the windowed async
// executor's determinism contract at message level: per-node delivery logs
// (with tick stamps), session completion results, cost counters, the
// virtual clock and even the window-conflict count are identical to the
// single-threaded engine at every shard count.
func TestAsyncShardedDeliveryMatchesSingleThreaded(t *testing.T) {
	want, wantConflicts := runShardWorkloadAsync(t, 1)
	if want.counters.Messages == 0 || len(want.results) != 8 {
		t.Fatalf("workload degenerate: %+v", want.counters)
	}
	if wantConflicts == 0 {
		t.Fatal("workload never conflicted with the open window; the contract is untested")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		got, gotConflicts := runShardWorkloadAsync(t, shards)
		if !reflect.DeepEqual(got.receipts, want.receipts) {
			t.Errorf("async shards=%d: per-node receipt logs differ", shards)
		}
		if !reflect.DeepEqual(got.results, want.results) {
			t.Errorf("async shards=%d: session results %v, want %v", shards, got.results, want.results)
		}
		if !reflect.DeepEqual(got.counters, want.counters) {
			t.Errorf("async shards=%d: counters differ:\n got %v\nwant %v", shards, got.counters, want.counters)
		}
		if got.now != want.now {
			t.Errorf("async shards=%d: clock %d, want %d", shards, got.now, want.now)
		}
		if gotConflicts != wantConflicts {
			t.Errorf("async shards=%d: %d window conflicts, want %d", shards, gotConflicts, wantConflicts)
		}
	}
}

// TestManyShardsBeyondByteRange: shard counts past 256 must not truncate
// the per-batch owner table (regression: owners were stored as uint8).
func TestManyShardsBeyondByteRange(t *testing.T) {
	const n = 400
	nw := shardTestNet(t, n, WithSeed(3), WithShards(400))
	kind := Kind("shardtest.wide")
	nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
		if msg.U > 0 {
			for i := range node.Edges {
				nw.SendU(node.ID, node.Edges[i].Neighbor, kind, 0, 8, msg.U-1)
			}
		}
	})
	var total uint64
	nw.Spawn("driver", func(p *Proc) error {
		for v := 1; v <= n; v++ {
			node := nw.Node(NodeID(v))
			nw.SendU(NodeID(v), node.Edges[0].Neighbor, kind, 0, 8, 2)
		}
		p.AwaitQuiescence()
		total = nw.Counters().Messages
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no traffic")
	}
}

// TestShardedHandlerPanicDeterministic: a handler panic surfaces with the
// value of the globally first panicking delivery, regardless of shard
// count or which worker hit it.
func TestShardedHandlerPanicDeterministic(t *testing.T) {
	defer func(min int) { shardMinBatch = min }(shardMinBatch)
	shardMinBatch = 0 // the 3-message poison round must reach the workers
	run := func(shards int) (val any) {
		nw := shardTestNet(t, 40, WithShards(shards))
		boom := Kind("shardtest.boom")
		nw.RegisterHandler(boom, func(nw *Network, node *NodeState, msg *Message) {
			if msg.U == 1 {
				panic(fmt.Sprintf("boom at %d", node.ID))
			}
		})
		nw.Spawn("driver", func(p *Proc) error {
			// Several poisoned messages in one round; the lowest batch
			// index (the first send) must win deterministically.
			for _, v := range []NodeID{40, 7, 23} {
				node := nw.Node(v)
				nw.SendU(v, node.Edges[0].Neighbor, boom, 0, 8, 1)
			}
			p.AwaitQuiescence()
			return nil
		})
		defer func() { val = recover() }()
		_ = nw.Run()
		return nil
	}
	want := run(1)
	if want == nil {
		t.Fatal("single-threaded run did not panic")
	}
	for _, shards := range []int{2, 4, 7} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d: panic %v, want %v", shards, got, want)
		}
	}
}

// TestShardViewGuards: operations that would break determinism if called
// from a handler fail loudly on the shard view.
func TestShardViewGuards(t *testing.T) {
	defer func(min int) { shardMinBatch = min }(shardMinBatch)
	shardMinBatch = 0 // force even a one-message round through the workers
	nw := shardTestNet(t, 16, WithShards(4))
	kind := Kind("shardtest.guard")
	var guarded any
	nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
		defer func() { guarded = recover() }()
		nw.NewSession(nil) // must panic on a shard view
	})
	nw.Spawn("driver", func(p *Proc) error {
		nw.SendU(1, nw.Node(1).Edges[0].Neighbor, kind, 0, 8, 0)
		p.AwaitQuiescence()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if guarded == nil {
		t.Fatal("NewSession on a shard view did not panic")
	}
}

// waitAllFanout spawns children drivers through the pool and joins them —
// the per-phase fan-out shape of the Borůvka drivers.
func waitAllFanout(t testing.TB, nw *Network, scratch *FanoutScratch[int], children int) {
	nw.Spawn("parent", func(p *Proc) error {
		procs := scratch.Procs()
		for i := 0; i < children; i++ {
			procs = append(procs, p.GoTagged("child", 1, uint64(i), procNop))
		}
		scratch.KeepProcs(procs)
		return p.WaitAll(procs...)
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

// procNop is deliberately a package function: the spawn-path gate must
// measure the engine, not a capturing closure at the call site.
func procNop(p *Proc) error { return nil }

// TestPooledDriverSpawnAllocs pins the pooled driver path: after a warm-up
// wave, spawning and joining 64 tagged children per wave must not allocate
// goroutines, channels or names — within one Run the pool recycles
// everything, so a wave costs only constant engine bookkeeping.
func TestPooledDriverSpawnAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	var scratch FanoutScratch[int]
	wave := func() {
		nw.Spawn("outer", func(p *Proc) error {
			// Two fan-out phases inside one Run: the second must reuse the
			// first phase's driver goroutines via the pool.
			for phase := 0; phase < 2; phase++ {
				procs := scratch.Procs()
				for i := 0; i < 64; i++ {
					procs = append(procs, p.GoTagged("child", uint64(phase), uint64(i), procNop))
				}
				scratch.KeepProcs(procs)
				if err := p.WaitAll(procs...); err != nil {
					return err
				}
			}
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave()
	avg := testing.AllocsPerRun(5, wave)
	// Budget: the first phase's 65 fresh goroutines + channels are paid
	// once per Run (the pool drains at Run end); the second phase must be
	// free. ~6 allocs per fresh driver, plus slack.
	allocBudget(t, "pooled driver fan-out (2 phases x 64 children)", avg, 65*8)
}

// TestPooledDriverReuseWithinRun proves the second phase allocates no new
// driver goroutines: the pool must satisfy it entirely.
func TestPooledDriverReuseWithinRun(t *testing.T) {
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	created := func() int { return len(nw.allProcs) }
	nw.Spawn("outer", func(p *Proc) error {
		var scratch FanoutScratch[int]
		base := created()
		for phase := 0; phase < 3; phase++ {
			procs := scratch.Procs()
			for i := 0; i < 32; i++ {
				procs = append(procs, p.GoTagged("child", uint64(phase), uint64(i), procNop))
			}
			scratch.KeepProcs(procs)
			if err := p.WaitAll(procs...); err != nil {
				return err
			}
			if phase == 0 {
				base = created()
			} else if got := created(); got != base {
				return fmt.Errorf("phase %d created %d new drivers, want 0", phase, got-base)
			}
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nw.allProcs) != 0 {
		t.Fatalf("pool not drained at Run end: %d procs retained", len(nw.allProcs))
	}
}

// TestTaggedProcName: lazy names format correctly when diagnostics ask.
func TestTaggedProcName(t *testing.T) {
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	var name string
	nw.Spawn("outer", func(p *Proc) error {
		c := p.GoTagged("findmin", 3, 17, procNop)
		name = c.Name()
		return p.WaitAll(c)
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if name != "findmin-p3-f17" {
		t.Fatalf("tagged name %q, want findmin-p3-f17", name)
	}
}
