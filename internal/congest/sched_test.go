package congest

import (
	"fmt"
	"testing"

	"kkt/internal/graph"
	"kkt/internal/rng"
)

// traceEntry records one delivery as observed by a handler.
type traceEntry struct {
	From, To NodeID
	Payload  int
	At       int64
}

// runAsyncTraffic drives a deterministic pseudo-random traffic pattern
// over a ring under the async scheduler and returns the full delivery
// trace. Each handler re-sends to a seeded random neighbour until the
// hop budget is exhausted, so traffic covers many links with interleaved
// sessions.
func runAsyncTraffic(t *testing.T, seed uint64, maxDelay int64, hops int) []traceEntry {
	t.Helper()
	g := graph.Ring(12, 1, graph.UnitWeights())
	nw := NewNetwork(g, WithAsync(maxDelay), WithSeed(seed))
	var trace []traceEntry
	kind := Kind("sched.traffic")
	r := rng.New(seed ^ 0xabcdef)
	left := hops
	nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
		trace = append(trace, traceEntry{From: msg.From, To: node.ID, Payload: msg.Payload.(int), At: nw.Now()})
		for f := 0; f < 1+int(r.Uint64n(2)); f++ {
			if left <= 0 {
				return
			}
			left--
			nb := node.Edges[r.Intn(node.Degree())].Neighbor
			nw.Send(node.ID, nb, kind, msg.Session, 8, left)
		}
	})
	nw.Spawn("driver", func(p *Proc) error {
		sid := nw.NewSession(nil)
		for i := 0; i < 4; i++ {
			left--
			nw.Send(NodeID(i+1), NodeID(i+2), kind, sid, 8, left)
		}
		p.AwaitQuiescence()
		nw.CompleteSession(sid, nil, nil)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestAsyncTraceDeterministicAcrossRuns locks in full trace determinism:
// for a fixed seed, repeated runs deliver exactly the same messages in
// exactly the same order at exactly the same virtual times, regardless of
// internal queue implementation.
func TestAsyncTraceDeterministicAcrossRuns(t *testing.T) {
	for _, maxDelay := range []int64{1, 4, 16, 100} {
		t.Run(fmt.Sprintf("maxDelay=%d", maxDelay), func(t *testing.T) {
			a := runAsyncTraffic(t, 42, maxDelay, 400)
			b := runAsyncTraffic(t, 42, maxDelay, 400)
			if len(a) == 0 {
				t.Fatal("empty trace")
			}
			if len(a) != len(b) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trace diverges at %d: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestAsyncTraceChangesWithSeed is the determinism test's counterpart: a
// different seed must (for this traffic) produce a different schedule, so
// the determinism test cannot pass vacuously.
func TestAsyncTraceChangesWithSeed(t *testing.T) {
	a := runAsyncTraffic(t, 42, 8, 400)
	b := runAsyncTraffic(t, 43, 8, 400)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

// TestAsyncPerLinkFIFO checks the FIFO invariant on every directed link:
// messages sent on one link are delivered in send order, under delay
// regimes that exercise both the calendar-queue ring (small delays) and
// the overflow heap (deep per-link queues, far-future FIFO bumps).
func TestAsyncPerLinkFIFO(t *testing.T) {
	for _, tc := range []struct {
		name     string
		maxDelay int64
		burst    int
	}{
		{"ring-path", 4, 8},
		{"overflow-path", 4, 4096}, // burst >> window span forces the heap
		{"long-delays", 3000, 64},  // delays beyond the capped ring span
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := graph.Ring(6, 1, graph.UnitWeights())
			nw := NewNetwork(g, WithAsync(tc.maxDelay), WithSeed(7))
			kind := Kind("sched.fifo")
			sent := make(map[uint64]int)     // directed link -> messages sent
			received := make(map[uint64]int) // directed link -> next expected
			nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
				key := linkKey(msg.From, node.ID)
				if msg.Payload.(int) != received[key] {
					t.Fatalf("link %d->%d: got message %d, expected %d (FIFO violated)",
						msg.From, node.ID, msg.Payload.(int), received[key])
				}
				received[key]++
			})
			nw.Spawn("driver", func(p *Proc) error {
				r := rng.New(99)
				// Interleave bursts on every directed ring link.
				for round := 0; round < tc.burst; round++ {
					for v := 1; v <= nw.N(); v++ {
						from := NodeID(v)
						node := nw.Node(from)
						to := node.Edges[r.Intn(node.Degree())].Neighbor
						key := linkKey(from, to)
						nw.Send(from, to, kind, 0, 8, sent[key])
						sent[key]++
					}
				}
				p.AwaitQuiescence()
				return nil
			})
			if err := nw.Run(); err != nil {
				t.Fatal(err)
			}
			for key, n := range sent {
				if received[key] != n {
					t.Errorf("link %d: received %d of %d messages", key, received[key], n)
				}
			}
		})
	}
}

// TestAsyncCalendarMatchesReferenceHeap replays an identical schedule
// through the calendar queue and a plain reference heap and asserts the
// pop order agrees — the calendar queue is an optimisation, never a
// semantic change.
//
// The calendar side stores per-link FIFO state the way the Network does —
// in per-half-edge cells that are dropped to a tombstone on link deletion
// and restored on re-insert — while the reference keeps the historical
// persistent lastOn map that never forgets a link. Random delete/reinsert
// events are interleaved with the traffic, so the test also pins down
// that the half-edge + tombstone scheme preserves the old map's exact
// delete/reinsert semantics.
func TestAsyncCalendarMatchesReferenceHeap(t *testing.T) {
	mk := func() *asyncScheduler { return newAsyncScheduler(rng.New(5), 6) }
	cal := mk()

	// Calendar-side FIFO cells, managed like HalfEdge.lastSched: live
	// cells for existing links, a tombstone map for deleted ones.
	cells := make(map[uint64]*int64)
	tombs := make(map[uint64]int64)
	cell := func(key uint64) *int64 {
		c, ok := cells[key]
		if !ok {
			c = new(int64)
			if last, found := tombs[key]; found {
				*c = last
				delete(tombs, key)
			}
			cells[key] = c
		}
		return c
	}
	dropLink := func(key uint64) { // Network.removeHalf's bookkeeping
		if c, ok := cells[key]; ok {
			if *c != 0 {
				tombs[key] = *c
			}
			delete(cells, key)
		}
	}

	// Reference: same delay stream, same FIFO bumping, but a flat sorted
	// pop using the messageHeap ordering and a persistent per-link map.
	type refSched struct {
		*asyncScheduler
		lastOn map[uint64]int64
		q      messageHeap
	}
	ref := &refSched{asyncScheduler: mk(), lastOn: make(map[uint64]int64)}

	var calOut, refOut []uint64
	seq := uint64(0)
	send := func(from, to NodeID) {
		seq++
		key := linkKey(from, to)
		cal.schedule(&Message{From: from, To: to, seq: seq}, cell(key))
		// mirror into the reference using the same arrival computation
		m := &Message{From: from, To: to, seq: seq}
		delay := 1 + int64(ref.r.Uint64n(uint64(ref.maxDelay)))
		at := ref.clock + delay
		if last, ok := ref.lastOn[key]; ok && at <= last {
			at = last + 1
		}
		ref.lastOn[key] = at
		m.deliverAt = at
		ref.q = append(ref.q, m)
	}
	popRef := func() *Message {
		best := 0
		for i := range ref.q {
			if ref.q.Less(i, best) {
				best = i
			}
		}
		m := ref.q[best]
		ref.q = append(ref.q[:best], ref.q[best+1:]...)
		if m.deliverAt > ref.clock {
			ref.clock = m.deliverAt
		}
		return m
	}
	// nextBatch hands out whole tick groups; buffer one and pop singly so
	// sends interleave with deliveries mid-group — exactly the engine's
	// shape (handlers emit while the group's tick is the clock), and the
	// regime that exercises window-conflict routing against the reference.
	var calBuf []*Message
	popCal := func() *Message {
		if len(calBuf) == 0 {
			calBuf = append(calBuf, cal.nextBatch()...)
		}
		m := calBuf[0]
		calBuf = calBuf[1:]
		return m
	}

	r := rng.New(777)
	pendingCal, pendingRef := 0, 0
	for step := 0; step < 5000; step++ {
		if r.Uint64n(16) == 0 {
			// Delete a random directed link's FIFO cell; the next send on
			// it re-creates the cell from the tombstone, exactly like a
			// link delete followed by a re-insert. The reference map is
			// untouched — that IS the old semantics.
			from := NodeID(1 + r.Intn(4))
			dropLink(linkKey(from, from%4+1))
		}
		if pendingCal == 0 || r.Uint64n(3) > 0 {
			from := NodeID(1 + r.Intn(4))
			to := from%4 + 1
			send(from, to)
			pendingCal++
			pendingRef++
			continue
		}
		calOut = append(calOut, popCal().seq)
		refOut = append(refOut, popRef().seq)
		pendingCal--
		pendingRef--
	}
	for pendingCal > 0 {
		calOut = append(calOut, popCal().seq)
		refOut = append(refOut, popRef().seq)
		pendingCal--
	}
	for i := range calOut {
		if calOut[i] != refOut[i] {
			t.Fatalf("pop order diverges at %d: calendar seq %d, reference seq %d", i, calOut[i], refOut[i])
		}
	}
	if !cal.empty() {
		t.Error("calendar queue not empty after drain")
	}
}

// TestAsyncWindowOverflowProperty cross-checks the windowed calendar
// against a flat (deliverAt, seq) reference under overflow-heavy regimes:
// long send bursts on a handful of directed links FIFO-bump deliveries far
// past the ring span, so most events route through the overflow heap and
// full drains force quiet-stretch clock jumps right before windowed
// extraction. Sends interleave with mid-group pops, so emissions landing
// inside the open window exercise the conflict-routing path against the
// reference order. Sweeps window sizes down to one tick.
func TestAsyncWindowOverflowProperty(t *testing.T) {
	defer func(w int) { asyncWindowTicks = w }(asyncWindowTicks)
	var totalConflicts, totalOverflowed uint64
	for _, tc := range []struct {
		seed     uint64
		maxDelay int64
		ticks    int
	}{
		{1, 1, 2},
		{2, 3, 4},
		{3, 6, 16},
		{4, 50, 3},
		{5, 6, 1},
	} {
		t.Run(fmt.Sprintf("seed=%d,maxDelay=%d,winTicks=%d", tc.seed, tc.maxDelay, tc.ticks), func(t *testing.T) {
			asyncWindowTicks = tc.ticks
			cal := newAsyncScheduler(rng.New(tc.seed), tc.maxDelay)
			refR := rng.New(tc.seed) // mirrors cal's delay stream draw for draw

			cells := make(map[uint64]*int64)
			cell := func(key uint64) *int64 {
				c, ok := cells[key]
				if !ok {
					c = new(int64)
					cells[key] = c
				}
				return c
			}
			lastOn := make(map[uint64]int64)
			var q messageHeap
			var refClock int64

			var calOut, refOut []uint64
			seq := uint64(0)
			send := func(from, to NodeID) {
				seq++
				key := linkKey(from, to)
				cal.schedule(&Message{From: from, To: to, seq: seq}, cell(key))
				m := &Message{From: from, To: to, seq: seq}
				at := refClock + 1 + int64(refR.Uint64n(uint64(tc.maxDelay)))
				if at <= lastOn[key] {
					at = lastOn[key] + 1
				}
				lastOn[key] = at
				m.deliverAt = at
				q = append(q, m)
			}
			popRef := func() *Message {
				best := 0
				for i := range q {
					if q.Less(i, best) {
						best = i
					}
				}
				m := q[best]
				q = append(q[:best], q[best+1:]...)
				if m.deliverAt > refClock {
					refClock = m.deliverAt
				}
				return m
			}
			var calBuf []*Message
			popBoth := func() {
				if len(calBuf) == 0 {
					calBuf = append(calBuf, cal.nextBatch()...)
				}
				calOut = append(calOut, calBuf[0].seq)
				calBuf = calBuf[1:]
				refOut = append(refOut, popRef().seq)
			}

			r := rng.New(tc.seed ^ 0xfeed)
			pending := 0
			for step := 0; step < 4000; step++ {
				if len(cal.overflow) > 0 {
					totalOverflowed++
				}
				switch {
				case r.Uint64n(40) == 0:
					// Burst: hammer one directed link so FIFO bumping runs
					// the tail far past the ring span, deep into the heap.
					from := NodeID(1 + r.Intn(3))
					for i := 0; i < 200; i++ {
						send(from, 9)
						pending++
					}
				case r.Uint64n(20) == 0:
					// Full drain: the next sends start from a quiet queue, so
					// far-future burst tails force quiet-stretch jumps.
					for pending > 0 {
						popBoth()
						pending--
					}
				case pending == 0 || r.Uint64n(3) > 0:
					from := NodeID(1 + r.Intn(4))
					send(from, from%4+1)
					pending++
				default:
					popBoth()
					pending--
				}
			}
			for pending > 0 {
				popBoth()
				pending--
			}
			for i := range calOut {
				if calOut[i] != refOut[i] {
					t.Fatalf("pop order diverges at %d: calendar seq %d, reference seq %d (window ticks %d)",
						i, calOut[i], refOut[i], tc.ticks)
				}
			}
			if !cal.empty() {
				t.Error("calendar queue not empty after drain")
			}
			totalConflicts += cal.conflicts
		})
	}
	if totalConflicts == 0 {
		t.Error("no send ever landed inside an open window; conflict routing untested")
	}
	if totalOverflowed == 0 {
		t.Error("overflow heap never engaged; the regime is not overflow-heavy")
	}
}
