package congest

import (
	"testing"

	"kkt/internal/graph"
)

// twoNodeNetwork builds a 1-2 network with a no-op handler installed.
func twoNodeNetwork(t *testing.T) *Network {
	t.Helper()
	g := graph.MustNew(2, 4)
	g.MustAddEdge(1, 2, 1)
	nw := NewNetwork(g)
	nw.RegisterHandler(Kind("noop"), func(*Network, *NodeState, *Message) {})
	return nw
}

func TestCountersSince(t *testing.T) {
	nw := twoNodeNetwork(t)
	nw.Send(1, 2, Kind("noop"), 0, 8, nil)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	snap := nw.Counters()
	if snap.Messages != 1 {
		t.Fatalf("messages = %d, want 1", snap.Messages)
	}

	nw.Send(2, 1, Kind("noop"), 0, 16, nil)
	nw.Send(1, 2, Kind("noop"), 0, 16, nil)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	d := nw.CountersSince(snap)
	if d.Messages != 2 {
		t.Errorf("delta messages = %d, want 2", d.Messages)
	}
	if want := uint64(2 * (16 + FramingBits)); d.Bits != want {
		t.Errorf("delta bits = %d, want %d", d.Bits, want)
	}
	if kc := d.ByKind["noop"]; kc.Messages != 2 {
		t.Errorf("delta by-kind messages = %d, want 2", kc.Messages)
	}
	// The snapshot is independent of the live ledger.
	if snap.Messages != 1 {
		t.Errorf("snapshot mutated: messages = %d", snap.Messages)
	}
}

func TestResetCounters(t *testing.T) {
	nw := twoNodeNetwork(t)
	nw.Send(1, 2, Kind("noop"), 0, 8, nil)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	nw.ResetCounters()
	c := nw.Counters()
	if c.Messages != 0 || c.Bits != 0 || len(c.ByKind) != 0 {
		t.Fatalf("counters not zeroed: %+v", c)
	}
	// The ledger still charges after a reset.
	nw.Send(1, 2, Kind("noop"), 0, 8, nil)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got := nw.Counters().Messages; got != 1 {
		t.Fatalf("messages after reset = %d, want 1", got)
	}
}
