package congest

import (
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Run when drivers are blocked, no messages are
// in flight and no quiescence-completing session can fire — a protocol bug.
var ErrDeadlock = errors.New("congest: deadlock: drivers blocked with no messages in flight")

// Proc is the context of one driver: the sequential program an initiating
// node runs (e.g. FindMin's narrowing loop, or the global Borůvka phase
// controller). Its methods may only be called from within the driver's own
// function; the engine guarantees that while they run, nothing else does.
//
// Procs are pooled: the goroutine and its channels persist across spawns
// within one Run, parked between assignments. At scale (one driver per
// fragment per Borůvka phase) this is what keeps driver fan-out from being
// the residual allocator — a warm phase reuses the previous phase's
// goroutines instead of spawning fresh ones.
type Proc struct {
	nw *Network
	// name is the diagnostic name (Spawn); tagged drivers (GoTagged) store
	// prefix and tags instead and format only when Name is called, so the
	// per-fragment fan-out never builds strings.
	name       string
	prefix     string
	tagA, tagB uint64
	tagged     bool

	fn func(*Proc) error

	resume chan Wake
	yield  chan struct{}

	doneSession SessionID
	finished    bool
	pooled      bool
	err         error
	panicVal    any       // recovered driver panic, re-raised by the engine
	awaiting    SessionID // 0 when not blocked; diagnostic only
}

// Spawn registers a new driver. The function starts running at the next
// scheduling opportunity inside Run. It must not be called while another
// driver is active (spawn children with (*Proc).Go instead).
func (nw *Network) Spawn(name string, fn func(*Proc) error) *Proc {
	if nw.running {
		panic("congest: Spawn called during Run; use (*Proc).Go from a driver")
	}
	return nw.spawn(name, fn)
}

// getProc pops a parked driver goroutine from the pool or starts a new
// one. A fresh proc's goroutine loops: park on resume, run the assigned
// function, park again — so reuse costs two channel operations and zero
// allocations.
func (nw *Network) getProc() *Proc {
	if n := len(nw.procFree); n > 0 {
		p := nw.procFree[n-1]
		nw.procFree[n-1] = nil
		nw.procFree = nw.procFree[:n-1]
		p.pooled = false
		return p
	}
	p := &Proc{
		nw:     nw,
		resume: make(chan Wake),
		yield:  make(chan struct{}),
	}
	nw.allProcs = append(nw.allProcs, p)
	if len(nw.allProcs) > nw.peakProcs {
		nw.peakProcs = len(nw.allProcs)
	}
	go p.loop()
	return p
}

// loop is the persistent driver goroutine: one assignment per wakeup, a
// nil fn is the shutdown poison (sent by the Run teardown; no yield
// follows it, the sender does not wait).
func (p *Proc) loop() {
	for {
		<-p.resume // activation by the engine
		fn := p.fn
		if fn == nil {
			return
		}
		err := p.call(fn)
		// Still the active driver here: safe to touch the network.
		p.finished = true
		p.err = err
		p.nw.live--
		if p.panicVal == nil {
			p.nw.CompleteSession(p.doneSession, nil, err)
		}
		p.fn = nil
		p.yield <- struct{}{}
	}
}

// call runs the driver function, trapping a panic so the engine goroutine
// can re-raise it out of Run — the same surface a panicking continuation
// driver (stepped directly on the engine goroutine) has. On panic the done
// session is left open; Run is unwinding, nobody will await it.
func (p *Proc) call(fn func(*Proc) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panicVal = r
		}
	}()
	return fn(p)
}

func (nw *Network) spawn(name string, fn func(*Proc) error) *Proc {
	p := nw.getProc()
	p.name, p.tagged = name, false
	p.fn = fn
	p.finished, p.err, p.awaiting, p.panicVal = false, nil, 0, nil
	p.doneSession = nw.NewSession(nil)
	nw.noteLive()
	nw.runq = append(nw.runq, wakeup{p: p})
	return p
}

// noteLive counts one freshly spawned driver and updates the live
// high-water mark.
func (nw *Network) noteLive() {
	nw.live++
	if nw.live > nw.peakLive {
		nw.peakLive = nw.live
	}
}

// releaseProc parks a joined driver in the pool for reuse. Only callers
// that have consumed the proc's done session may release it — anyone else
// could still await the (now recycled) session of a re-spawned proc.
func (nw *Network) releaseProc(p *Proc) {
	if !p.finished || p.pooled {
		return
	}
	p.pooled = true
	nw.procFree = append(nw.procFree, p)
}

// ErrRunAborted is the error drivers parked mid-await observe when a Run
// unwinds abnormally (a driver or handler panic re-raised by the engine):
// their pending Awaits return it so the goroutines can exit with the Run.
var ErrRunAborted = errors.New("congest: run aborted")

// drainProcPool tears down every driver goroutine at Run end so an
// abandoned network never pins stacks. Drivers parked mid-await — the
// state a panic exit leaves a fan-out in — are woken with ErrRunAborted
// until they finish (an unwinding driver may park again, e.g. WaitAll
// moving to its next child, so iterate to a fixed point); spawned-but-
// never-started drivers and finished ones are poisoned out of their
// loops. The run queue is discarded: wakeups enqueued during the unwind
// have no engine loop left to deliver them.
func (nw *Network) drainProcPool() {
	for pass := 0; pass < maxDeadlockResolutions; pass++ {
		woke := false
		for _, p := range nw.allProcs {
			if p.finished || p.awaiting == 0 {
				continue
			}
			// Unbind the session's waiter first: the driver re-parks or
			// finishes without consuming it, and a stale pointer would
			// corrupt a later Run on the same network.
			if s := nw.lookupSession(p.awaiting); s != nil && s.waiter == p {
				s.waiter = nil
			}
			p.resume <- Wake{err: ErrRunAborted}
			<-p.yield
			woke = true
		}
		if !woke {
			break
		}
	}
	for _, p := range nw.allProcs {
		if !p.finished && p.fn != nil && p.awaiting == 0 {
			// Spawned but never scheduled (the panic hit before its runq
			// entry drained): parked at its loop top. Poison without
			// running the assignment.
			p.fn = nil
			p.resume <- Wake{}
			continue
		}
		if p.finished && p.fn == nil {
			p.resume <- Wake{} // nil fn: the loop exits without yielding
		}
	}
	for i := range nw.runq {
		nw.runq[i] = wakeup{}
	}
	nw.runq = nw.runq[:0]
	nw.allProcs = nw.allProcs[:0]
	nw.procFree = nw.procFree[:0]
	nw.live = 0
}

// Name returns the driver's diagnostic name. Tagged drivers format it on
// demand — the hot spawn path never builds it.
func (p *Proc) Name() string {
	if p.tagged {
		return fmt.Sprintf("%s-p%d-f%d", p.prefix, p.tagA, p.tagB)
	}
	return p.name
}

// Network returns the network the driver runs on.
func (p *Proc) Network() *Network { return p.nw }

// Await blocks the driver until the session completes and returns its
// result. If the session is already complete it returns immediately.
// Consuming a completed session recycles its slot: a session's result can
// be awaited once.
func (p *Proc) Await(sid SessionID) (any, error) {
	w, err := p.await(sid)
	if err != nil {
		return nil, err
	}
	return w.Value()
}

// AwaitU is Await for sessions completed with CompleteSessionU: the
// single-word result stays unboxed end to end. Awaiting a boxed session
// whose result is not a uint64 is an error — a silent zero would mask a
// boxed/unboxed lane mismatch at the call site.
func (p *Proc) AwaitU(sid SessionID) (uint64, error) {
	w, err := p.await(sid)
	if err != nil {
		return 0, err
	}
	return w.U()
}

// AwaitWake is the raw await: it parks the driver until the session
// completes and returns the completion itself. Blocking drive loops that
// step a continuation machine (see StepDriver) use it to hand the machine
// exactly the Wake the engine would have delivered.
func (p *Proc) AwaitWake(sid SessionID) (Wake, error) {
	return p.await(sid)
}

func (p *Proc) await(sid SessionID) (Wake, error) {
	s := p.nw.lookupSession(sid)
	if s == nil {
		return Wake{}, fmt.Errorf("congest: await on unknown session %d", sid)
	}
	if s.completed {
		w := Wake{result: s.result, u: s.resultU, unboxed: s.unboxed, err: s.err}
		p.nw.freeSession(s)
		return w, nil
	}
	if s.waiter != nil || s.twaiter != nil {
		return Wake{}, fmt.Errorf("congest: session %d already has a waiter", sid)
	}
	s.waiter = p
	p.awaiting = sid
	p.yield <- struct{}{} // hand control back to the engine
	w := <-p.resume       // engine wakes us with the completion
	p.awaiting = 0
	return w, nil
}

// Go spawns a child driver. The child starts at the next scheduling
// opportunity; the parent keeps running until it blocks or finishes.
func (p *Proc) Go(name string, fn func(*Proc) error) *Proc {
	return p.nw.spawn(name, fn)
}

// GoTagged spawns a child driver named "<prefix>-p<a>-f<b>" without
// building the string: per-fragment fan-outs (one driver per fragment per
// phase) use it so driver naming costs nothing unless a diagnostic
// actually prints it.
func (p *Proc) GoTagged(prefix string, a, b uint64, fn func(*Proc) error) *Proc {
	c := p.nw.spawn("", fn)
	c.prefix, c.tagA, c.tagB, c.tagged = prefix, a, b, true
	return c
}

// WaitAll blocks until every given driver has finished and returns the
// first non-nil error among them (all are joined regardless). Joined
// drivers return to the spawn pool: their goroutines and channels are
// reused by later spawns in the same Run.
func (p *Proc) WaitAll(children ...*Proc) error {
	var first error
	for _, c := range children {
		_, err := p.Await(c.doneSession)
		if err != nil && first == nil {
			first = err
		}
		p.nw.releaseProc(c)
	}
	return first
}

// AwaitQuiescence blocks the driver until no messages are in flight and no
// other driver can make progress. It models the paper's synchronised
// "while time < i*maxTime(n) wait" phase barrier: in a synchronous network
// every node knows a worst-case bound on a phase's duration, so waiting it
// out costs no messages. The simulator waits for actual quiescence instead
// of a round count, which is the same barrier without the slack.
func (p *Proc) AwaitQuiescence() {
	sid := p.nw.NewSession(func() (any, error) { return nil, nil })
	_, _ = p.Await(sid)
}

// Err returns the driver's final error; valid after Run returns.
func (p *Proc) Err() error { return p.err }

// Run executes the network until all drivers have finished and no messages
// remain. It returns the first driver error, or ErrDeadlock if progress
// stops while drivers are still blocked.
func (nw *Network) Run() error {
	if nw.running {
		panic("congest: Run is not reentrant")
	}
	nw.running = true
	defer func() { nw.running = false }()
	if nw.wdArmed {
		// Re-baseline the stall detector: the clock persists across Runs on
		// one network (repair storms Run per wave), and a fresh Run must
		// not inherit the idle gap since the last one.
		nw.wdSeen = nw.completions
		nw.wdLastProgress = nw.sched.now()
	}

	// The sharded executor engages for any multi-shard network — sync
	// rounds and async tick groups batch the same way; its worker
	// goroutines live exactly as long as this Run.
	var se *shardEngine
	if nw.shards > 1 {
		se = nw.ensureShardEngine()
		defer nw.closeShardEngine(se)
	}
	// Drain the driver pools on every exit path: parked goroutines and
	// pooled tasks must not outlive the Run that created them. LIFO defer
	// order makes drainProcPool run first — unwinding drivers may still
	// release tasks.
	defer nw.drainTaskPool()
	defer nw.drainProcPool()

	var deadlockErr error
	for {
		// 1. Run every runnable driver to its next block/finish. Drain by
		// index — drivers may append new wakeups while running — then
		// truncate in place, so the queue's backing array recycles instead
		// of losing capacity off the front. Goroutine drivers resume via
		// their channels; continuation tasks are stepped right here on the
		// engine goroutine, in the same queue order.
		for i := 0; i < len(nw.runq); i++ {
			wu := nw.runq[i]
			nw.runq[i] = wakeup{}
			if wu.t != nil {
				nw.stepTask(wu.t, wu.w)
				continue
			}
			wu.p.resume <- wu.w
			<-wu.p.yield
			if pv := wu.p.panicVal; pv != nil {
				// Driver panics surface from Run on the engine goroutine,
				// for both driver models alike.
				panic(pv)
			}
		}
		nw.runq = nw.runq[:0]
		// 2. Deliver the next batch of messages. Batch slices are owned by
		// the scheduler and recycled; delivered messages go back to the
		// free list, so steady-state delivery allocates nothing.
		if batch := nw.sched.nextBatch(); batch != nil {
			// Near-empty rounds (election-token convergence, probe tails)
			// don't amortize the worker barrier's two channel ops per
			// shard; deliver them inline. The inline path IS the
			// single-threaded reference order, so the choice is invisible
			// to the determinism contract.
			if se != nil && len(batch) >= shardMinBatch {
				nw.deliverSharded(se, batch)
			} else {
				for i, m := range batch {
					h := nw.handlers[m.Kind] // non-nil: Send checks registration
					node := nw.nodes[m.To]
					if node.edgePos(m.From) >= 0 {
						h(nw, node, m)
					}
					// else: the link vanished while the message was in flight
					// (dynamic deletion). The model drops it.
					nw.putMessage(m)
					batch[i] = nil
				}
			}
			if nw.obs != nil {
				// The batch is fully applied (sharded rounds: lanes merged
				// and counter blocks folded), so the observer sees the exact
				// single-threaded ledger values.
				var load []uint64
				if se != nil {
					load = se.load
				}
				nw.observeRound(load)
			}
			if nw.wdArmed || nw.ctx != nil {
				// Watchdog/cancellation check, once per delivery batch: a
				// trip returns the structured *WatchdogError through the
				// normal error path, so the deferred pool drains unwind the
				// parked drivers exactly as a deadlock return would.
				if werr := nw.watchdogCheck(); werr != nil {
					return werr
				}
			}
			continue
		}
		// 3. Quiescent: fire any quiescence-completing sessions (in
		// creation order) — the simulator's notion of "after maxTime".
		// Only pending-callback sessions are on the list; the buffers
		// ping-pong so callbacks may create new quiescence sessions
		// (appended to the fresh list) while the old one is swept.
		fired := false
		pending := nw.quiescent
		nw.quiescent = nw.quiescentSpare[:0]
		for _, sid := range pending {
			s := nw.lookupSession(sid)
			if s == nil || s.completed || s.onQuiescence == nil {
				continue // completed (and possibly recycled) another way
			}
			f := s.onQuiescence
			s.onQuiescence = nil
			// f may grow the slot table; use only sid from here on.
			res, err := f()
			nw.CompleteSession(sid, res, err)
			fired = true
		}
		nw.quiescentSpare = pending[:0]
		if fired {
			continue
		}
		// 4. Done or deadlocked?
		if nw.live == 0 {
			if deadlockErr != nil {
				return deadlockErr
			}
			for _, p := range nw.allProcs {
				if p.err != nil {
					return p.err
				}
			}
			for _, tk := range nw.allTasks {
				if tk.err != nil {
					return tk.err
				}
			}
			return nil
		}
		// Deadlock: wake every blocked driver with an error so its
		// goroutine can unwind, remember the diagnosis, and keep
		// scheduling until everything exits.
		nw.deadlockResolutions++
		if nw.deadlockResolutions > maxDeadlockResolutions {
			return fmt.Errorf("%w: drivers refused to unwind", ErrDeadlock)
		}
		var blocked []string
		for _, p := range nw.allProcs {
			if p.finished || p.awaiting == 0 {
				continue
			}
			blocked = append(blocked, fmt.Sprintf("%s (awaiting session %d)", p.Name(), p.awaiting))
			nw.CompleteSession(p.awaiting, nil, ErrDeadlock)
		}
		for _, tk := range nw.allTasks {
			if tk.finished || tk.awaiting == 0 {
				continue
			}
			blocked = append(blocked, fmt.Sprintf("%s (awaiting session %d)", tk.Name(), tk.awaiting))
			nw.CompleteSession(tk.awaiting, nil, ErrDeadlock)
		}
		if deadlockErr == nil {
			deadlockErr = fmt.Errorf("%w: %v", ErrDeadlock, blocked)
		}
		if len(blocked) == 0 {
			// Unwakeable drivers (blocked outside Await) — impossible by
			// construction, but do not spin.
			return deadlockErr
		}
	}
}

// maxDeadlockResolutions bounds the unwind loop after a deadlock diagnosis.
const maxDeadlockResolutions = 1 << 16

// shardMinBatch is the smallest delivery batch (synchronous round or async
// tick group) worth dispatching to the shard workers. Below it the barrier
// overhead (two channel operations per worker plus the ordered merge)
// exceeds the handler work, so the batch is delivered inline on the engine
// goroutine — which is the reference order the sharded merge reproduces
// anyway, so the threshold cannot affect any observable. Sized so a batch
// must carry at least a few dozen messages per expected worker before
// fan-out pays. A var only so tests can force the sharded path for tiny
// batches.
var shardMinBatch = 128
