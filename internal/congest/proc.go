package congest

import (
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Run when drivers are blocked, no messages are
// in flight and no quiescence-completing session can fire — a protocol bug.
var ErrDeadlock = errors.New("congest: deadlock: drivers blocked with no messages in flight")

// Proc is the context of one driver: the sequential program an initiating
// node runs (e.g. FindMin's narrowing loop, or the global Borůvka phase
// controller). Its methods may only be called from within the driver's own
// function; the engine guarantees that while they run, nothing else does.
//
// Procs are pooled: the goroutine and its channels persist across spawns
// within one Run, parked between assignments. At scale (one driver per
// fragment per Borůvka phase) this is what keeps driver fan-out from being
// the residual allocator — a warm phase reuses the previous phase's
// goroutines instead of spawning fresh ones.
type Proc struct {
	nw *Network
	// name is the diagnostic name (Spawn); tagged drivers (GoTagged) store
	// prefix and tags instead and format only when Name is called, so the
	// per-fragment fan-out never builds strings.
	name       string
	prefix     string
	tagA, tagB uint64
	tagged     bool

	fn func(*Proc) error

	resume chan wake
	yield  chan struct{}

	doneSession SessionID
	finished    bool
	pooled      bool
	err         error
	awaiting    SessionID // 0 when not blocked; diagnostic only
}

// Spawn registers a new driver. The function starts running at the next
// scheduling opportunity inside Run. It must not be called while another
// driver is active (spawn children with (*Proc).Go instead).
func (nw *Network) Spawn(name string, fn func(*Proc) error) *Proc {
	if nw.running {
		panic("congest: Spawn called during Run; use (*Proc).Go from a driver")
	}
	return nw.spawn(name, fn)
}

// getProc pops a parked driver goroutine from the pool or starts a new
// one. A fresh proc's goroutine loops: park on resume, run the assigned
// function, park again — so reuse costs two channel operations and zero
// allocations.
func (nw *Network) getProc() *Proc {
	if n := len(nw.procFree); n > 0 {
		p := nw.procFree[n-1]
		nw.procFree[n-1] = nil
		nw.procFree = nw.procFree[:n-1]
		p.pooled = false
		return p
	}
	p := &Proc{
		nw:     nw,
		resume: make(chan wake),
		yield:  make(chan struct{}),
	}
	nw.allProcs = append(nw.allProcs, p)
	go p.loop()
	return p
}

// loop is the persistent driver goroutine: one assignment per wakeup, a
// nil fn is the shutdown poison (sent by the Run teardown; no yield
// follows it, the sender does not wait).
func (p *Proc) loop() {
	for {
		<-p.resume // activation by the engine
		fn := p.fn
		if fn == nil {
			return
		}
		err := fn(p)
		// Still the active driver here: safe to touch the network.
		p.finished = true
		p.err = err
		p.nw.live--
		p.nw.CompleteSession(p.doneSession, nil, err)
		p.fn = nil
		p.yield <- struct{}{}
	}
}

func (nw *Network) spawn(name string, fn func(*Proc) error) *Proc {
	p := nw.getProc()
	p.name, p.tagged = name, false
	p.fn = fn
	p.finished, p.err, p.awaiting = false, nil, 0
	p.doneSession = nw.NewSession(nil)
	nw.live++
	nw.runq = append(nw.runq, wakeup{p: p})
	return p
}

// releaseProc parks a joined driver in the pool for reuse. Only callers
// that have consumed the proc's done session may release it — anyone else
// could still await the (now recycled) session of a re-spawned proc.
func (nw *Network) releaseProc(p *Proc) {
	if !p.finished || p.pooled {
		return
	}
	p.pooled = true
	nw.procFree = append(nw.procFree, p)
}

// drainProcPool poisons every parked driver goroutine at Run end: pooled
// procs and finished-but-unjoined ones alike exit their loops, so an
// abandoned network never pins goroutines. Blocked drivers (only possible
// after an unresolved deadlock) are left alone, exactly as before pooling.
func (nw *Network) drainProcPool() {
	for _, p := range nw.allProcs {
		if p.finished && p.fn == nil {
			p.resume <- wake{} // nil fn: the loop exits without yielding
		}
	}
	nw.allProcs = nw.allProcs[:0]
	nw.procFree = nw.procFree[:0]
	nw.live = 0
}

// Name returns the driver's diagnostic name. Tagged drivers format it on
// demand — the hot spawn path never builds it.
func (p *Proc) Name() string {
	if p.tagged {
		return fmt.Sprintf("%s-p%d-f%d", p.prefix, p.tagA, p.tagB)
	}
	return p.name
}

// Network returns the network the driver runs on.
func (p *Proc) Network() *Network { return p.nw }

// Await blocks the driver until the session completes and returns its
// result. If the session is already complete it returns immediately.
// Consuming a completed session recycles its slot: a session's result can
// be awaited once.
func (p *Proc) Await(sid SessionID) (any, error) {
	w, err := p.await(sid)
	if err != nil {
		return nil, err
	}
	if w.unboxed {
		return w.u, w.err
	}
	return w.result, w.err
}

// AwaitU is Await for sessions completed with CompleteSessionU: the
// single-word result stays unboxed end to end. Awaiting a boxed session
// whose result is not a uint64 is an error — a silent zero would mask a
// boxed/unboxed lane mismatch at the call site.
func (p *Proc) AwaitU(sid SessionID) (uint64, error) {
	w, err := p.await(sid)
	if err != nil {
		return 0, err
	}
	if w.unboxed {
		return w.u, w.err
	}
	if w.err != nil {
		return 0, w.err
	}
	if u, ok := w.result.(uint64); ok {
		return u, nil
	}
	return 0, fmt.Errorf("congest: AwaitU on session %d completed with boxed %T, not uint64", sid, w.result)
}

func (p *Proc) await(sid SessionID) (wake, error) {
	s := p.nw.lookupSession(sid)
	if s == nil {
		return wake{}, fmt.Errorf("congest: await on unknown session %d", sid)
	}
	if s.completed {
		w := wake{result: s.result, u: s.resultU, unboxed: s.unboxed, err: s.err}
		p.nw.freeSession(s)
		return w, nil
	}
	if s.waiter != nil {
		return wake{}, fmt.Errorf("congest: session %d already has a waiter", sid)
	}
	s.waiter = p
	p.awaiting = sid
	p.yield <- struct{}{} // hand control back to the engine
	w := <-p.resume       // engine wakes us with the completion
	p.awaiting = 0
	return w, nil
}

// Go spawns a child driver. The child starts at the next scheduling
// opportunity; the parent keeps running until it blocks or finishes.
func (p *Proc) Go(name string, fn func(*Proc) error) *Proc {
	return p.nw.spawn(name, fn)
}

// GoTagged spawns a child driver named "<prefix>-p<a>-f<b>" without
// building the string: per-fragment fan-outs (one driver per fragment per
// phase) use it so driver naming costs nothing unless a diagnostic
// actually prints it.
func (p *Proc) GoTagged(prefix string, a, b uint64, fn func(*Proc) error) *Proc {
	c := p.nw.spawn("", fn)
	c.prefix, c.tagA, c.tagB, c.tagged = prefix, a, b, true
	return c
}

// WaitAll blocks until every given driver has finished and returns the
// first non-nil error among them (all are joined regardless). Joined
// drivers return to the spawn pool: their goroutines and channels are
// reused by later spawns in the same Run.
func (p *Proc) WaitAll(children ...*Proc) error {
	var first error
	for _, c := range children {
		_, err := p.Await(c.doneSession)
		if err != nil && first == nil {
			first = err
		}
		p.nw.releaseProc(c)
	}
	return first
}

// AwaitQuiescence blocks the driver until no messages are in flight and no
// other driver can make progress. It models the paper's synchronised
// "while time < i*maxTime(n) wait" phase barrier: in a synchronous network
// every node knows a worst-case bound on a phase's duration, so waiting it
// out costs no messages. The simulator waits for actual quiescence instead
// of a round count, which is the same barrier without the slack.
func (p *Proc) AwaitQuiescence() {
	sid := p.nw.NewSession(func() (any, error) { return nil, nil })
	_, _ = p.Await(sid)
}

// Err returns the driver's final error; valid after Run returns.
func (p *Proc) Err() error { return p.err }

// Run executes the network until all drivers have finished and no messages
// remain. It returns the first driver error, or ErrDeadlock if progress
// stops while drivers are still blocked.
func (nw *Network) Run() error {
	if nw.running {
		panic("congest: Run is not reentrant")
	}
	nw.running = true
	defer func() { nw.running = false }()

	// The sharded executor engages only for multi-shard synchronous
	// networks; its worker goroutines live exactly as long as this Run.
	var se *shardEngine
	if nw.shards > 1 {
		se = nw.ensureShardEngine()
		defer nw.closeShardEngine(se)
	}
	// Drain the driver pool on every exit path: parked goroutines must not
	// outlive the Run that created them.
	defer nw.drainProcPool()

	var deadlockErr error
	for {
		// 1. Run every runnable driver to its next block/finish. Drain by
		// index — drivers may append new wakeups while running — then
		// truncate in place, so the queue's backing array recycles instead
		// of losing capacity off the front.
		for i := 0; i < len(nw.runq); i++ {
			wu := nw.runq[i]
			nw.runq[i] = wakeup{}
			wu.p.resume <- wu.w
			<-wu.p.yield
		}
		nw.runq = nw.runq[:0]
		// 2. Deliver the next batch of messages. Batch slices are owned by
		// the scheduler and recycled; delivered messages go back to the
		// free list, so steady-state delivery allocates nothing.
		if batch := nw.sched.nextBatch(); batch != nil {
			if se != nil {
				nw.deliverSharded(se, batch)
				continue
			}
			for i, m := range batch {
				h := nw.handlers[m.Kind] // non-nil: Send checks registration
				node := nw.nodes[m.To]
				if node.edgePos(m.From) >= 0 {
					h(nw, node, m)
				}
				// else: the link vanished while the message was in flight
				// (dynamic deletion). The model drops it.
				nw.putMessage(m)
				batch[i] = nil
			}
			continue
		}
		// 3. Quiescent: fire any quiescence-completing sessions (in
		// creation order) — the simulator's notion of "after maxTime".
		// Only pending-callback sessions are on the list; the buffers
		// ping-pong so callbacks may create new quiescence sessions
		// (appended to the fresh list) while the old one is swept.
		fired := false
		pending := nw.quiescent
		nw.quiescent = nw.quiescentSpare[:0]
		for _, sid := range pending {
			s := nw.lookupSession(sid)
			if s == nil || s.completed || s.onQuiescence == nil {
				continue // completed (and possibly recycled) another way
			}
			f := s.onQuiescence
			s.onQuiescence = nil
			// f may grow the slot table; use only sid from here on.
			res, err := f()
			nw.CompleteSession(sid, res, err)
			fired = true
		}
		nw.quiescentSpare = pending[:0]
		if fired {
			continue
		}
		// 4. Done or deadlocked?
		if nw.live == 0 {
			if deadlockErr != nil {
				return deadlockErr
			}
			for _, p := range nw.allProcs {
				if p.err != nil {
					return p.err
				}
			}
			return nil
		}
		// Deadlock: wake every blocked driver with an error so its
		// goroutine can unwind, remember the diagnosis, and keep
		// scheduling until everything exits.
		nw.deadlockResolutions++
		if nw.deadlockResolutions > maxDeadlockResolutions {
			return fmt.Errorf("%w: drivers refused to unwind", ErrDeadlock)
		}
		var blocked []string
		for _, p := range nw.allProcs {
			if p.finished || p.awaiting == 0 {
				continue
			}
			blocked = append(blocked, fmt.Sprintf("%s (awaiting session %d)", p.Name(), p.awaiting))
			nw.CompleteSession(p.awaiting, nil, ErrDeadlock)
		}
		if deadlockErr == nil {
			deadlockErr = fmt.Errorf("%w: %v", ErrDeadlock, blocked)
		}
		if len(blocked) == 0 {
			// Unwakeable drivers (blocked outside Await) — impossible by
			// construction, but do not spin.
			return deadlockErr
		}
	}
}

// maxDeadlockResolutions bounds the unwind loop after a deadlock diagnosis.
const maxDeadlockResolutions = 1 << 16
