package congest

import (
	"testing"

	"kkt/internal/graph"
)

// benchNoop is the interned no-op kind shared by the send benchmarks.
var benchNoop = Kind("bench.noop")

// BenchmarkSend measures the Send -> schedule -> deliver cycle on the
// synchronous scheduler: the per-message hot path of every protocol run.
func BenchmarkSend(b *testing.B) {
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	nw.RegisterHandler(benchNoop, func(*Network, *NodeState, *Message) {})
	nw.Spawn("sender", func(p *Proc) error {
		for i := 0; i < b.N; i++ {
			nw.Send(1, 2, benchNoop, 0, 8, nil)
			if i%1024 == 1023 {
				p.AwaitQuiescence()
			}
		}
		p.AwaitQuiescence()
		return nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := nw.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSendAsync is BenchmarkSend under the asynchronous scheduler:
// it additionally exercises the delay draw, per-link FIFO bookkeeping and
// the priority queue.
func BenchmarkSendAsync(b *testing.B) {
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g, WithAsync(4), WithSeed(7))
	nw.RegisterHandler(benchNoop, func(*Network, *NodeState, *Message) {})
	nw.Spawn("sender", func(p *Proc) error {
		for i := 0; i < b.N; i++ {
			nw.Send(1, 2, benchNoop, 0, 8, nil)
			if i%1024 == 1023 {
				p.AwaitQuiescence()
			}
		}
		p.AwaitQuiescence()
		return nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := nw.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNewNetwork measures network construction, dominated by the
// per-node neighbour index build.
func BenchmarkNewNetwork(b *testing.B) {
	g := graph.Complete(96, 1024, graph.UnitWeights())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewNetwork(g)
	}
}
