package congest

import (
	"fmt"
	"sync"
)

// KindID is an interned message-kind identifier. Kinds are interned
// process-wide by Kind, so protocol packages declare them once at init
// (`var KindFoo = congest.Kind("pkg.foo")`) and every hot-path structure —
// handler dispatch, cost counters — indexes by the small integer instead
// of hashing the name. Human-readable names reappear only at snapshot
// boundaries (Counters.ByKind, panics, reports).
type KindID int32

// kindReg is the process-wide intern table. Interning happens at package
// init and test setup, never on the per-message hot path, so a mutex is
// fine.
var kindReg = struct {
	sync.RWMutex
	names []string
	index map[string]KindID
}{index: make(map[string]KindID)}

// Kind interns a message-kind name and returns its stable ID. Repeated
// calls with the same name return the same ID. Names must be non-empty.
func Kind(name string) KindID {
	if name == "" {
		panic("congest: empty kind name")
	}
	kindReg.RLock()
	id, ok := kindReg.index[name]
	kindReg.RUnlock()
	if ok {
		return id
	}
	kindReg.Lock()
	defer kindReg.Unlock()
	if id, ok := kindReg.index[name]; ok {
		return id
	}
	id = KindID(len(kindReg.names))
	kindReg.names = append(kindReg.names, name)
	kindReg.index[name] = id
	return id
}

// String returns the interned name, implementing fmt.Stringer.
func (k KindID) String() string {
	kindReg.RLock()
	defer kindReg.RUnlock()
	if k < 0 || int(k) >= len(kindReg.names) {
		return fmt.Sprintf("KindID(%d)", int32(k))
	}
	return kindReg.names[k]
}

// NumKinds returns the number of interned kinds.
func NumKinds() int {
	kindReg.RLock()
	defer kindReg.RUnlock()
	return len(kindReg.names)
}
