package congest

import (
	"fmt"
	"strings"
	"sync"
)

// KindID is an interned message-kind identifier. Kinds are interned
// process-wide by Kind, so protocol packages declare them once at init
// (`var KindFoo = congest.Kind("pkg.foo")`) and every hot-path structure —
// handler dispatch, cost counters — indexes by the small integer instead
// of hashing the name. Human-readable names reappear only at snapshot
// boundaries (Counters.ByKind, panics, reports).
type KindID int32

// kindReg is the process-wide intern table. Interning happens at package
// init and test setup, never on the per-message hot path, so a mutex is
// fine. Alongside each kind it interns the kind's class — the name's
// dot-prefix ("tree.up" -> "tree"), the granularity phase timelines report
// at — so class lookup is an array index, never string slicing, at
// observation time.
var kindReg = struct {
	sync.RWMutex
	names      []string
	index      map[string]KindID
	classOf    []int32 // per KindID: index into classNames
	classNames []string
	classIndex map[string]int32
}{index: make(map[string]KindID), classIndex: make(map[string]int32)}

// Kind interns a message-kind name and returns its stable ID. Repeated
// calls with the same name return the same ID. Names must be non-empty.
func Kind(name string) KindID {
	if name == "" {
		panic("congest: empty kind name")
	}
	kindReg.RLock()
	id, ok := kindReg.index[name]
	kindReg.RUnlock()
	if ok {
		return id
	}
	kindReg.Lock()
	defer kindReg.Unlock()
	if id, ok := kindReg.index[name]; ok {
		return id
	}
	id = KindID(len(kindReg.names))
	kindReg.names = append(kindReg.names, name)
	kindReg.index[name] = id
	class := name
	if dot := strings.IndexByte(name, '.'); dot > 0 {
		class = name[:dot]
	}
	cid, ok := kindReg.classIndex[class]
	if !ok {
		cid = int32(len(kindReg.classNames))
		kindReg.classNames = append(kindReg.classNames, class)
		kindReg.classIndex[class] = cid
	}
	kindReg.classOf = append(kindReg.classOf, cid)
	return id
}

// kindClassTable returns the class index (per KindID) and the class names.
// The returned slices are intern-table snapshots: existing elements are
// write-once, so reading them without the lock held is safe even if later
// Kind calls append.
func kindClassTable() (classOf []int32, classNames []string) {
	kindReg.RLock()
	defer kindReg.RUnlock()
	return kindReg.classOf, kindReg.classNames
}

// KindClassName returns the class name (dot-prefix) of an interned kind.
func KindClassName(k KindID) string {
	kindReg.RLock()
	defer kindReg.RUnlock()
	if k < 0 || int(k) >= len(kindReg.classOf) {
		return fmt.Sprintf("KindID(%d)", int32(k))
	}
	return kindReg.classNames[kindReg.classOf[k]]
}

// String returns the interned name, implementing fmt.Stringer.
func (k KindID) String() string {
	kindReg.RLock()
	defer kindReg.RUnlock()
	if k < 0 || int(k) >= len(kindReg.names) {
		return fmt.Sprintf("KindID(%d)", int32(k))
	}
	return kindReg.names[k]
}

// NumKinds returns the number of interned kinds.
func NumKinds() int {
	kindReg.RLock()
	defer kindReg.RUnlock()
	return len(kindReg.names)
}
