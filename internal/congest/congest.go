// Package congest is the communications substrate: a message-level
// simulator of the CONGEST model the paper runs in.
//
// A Network holds one NodeState per processor. Processors exchange
// Messages only along existing links; every message is counted (count and
// bits) and must fit the O(log(n+u)) budget — with the model word fixed at
// w = 64 bits, a message is at most a constant number of words.
//
// Protocol logic comes in two forms:
//
//   - handlers: per-message automaton steps registered by Kind. A handler
//     may read/write only the local state of the receiving node and send
//     further messages. This is where broadcast-and-echo, leader election,
//     probes etc. live (package tree and friends).
//
//   - drivers (Proc): the sequential program an initiating node runs, e.g.
//     FindMin's narrowing loop. Drivers are goroutines scheduled
//     cooperatively: at any instant either the engine or exactly one
//     driver executes, so runs are deterministic for a fixed seed and free
//     of data races by construction.
//
// Two schedulers implement the paper's two timing models: the synchronous
// scheduler delivers in lockstep rounds (messages sent in round r arrive
// in round r+1); the asynchronous scheduler delivers one message at a time
// with seeded pseudo-random delays and per-link FIFO order.
package congest

import (
	"fmt"
	"sort"

	"kkt/internal/bitwidth"
	"kkt/internal/graph"
	"kkt/internal/rng"
)

// NodeID identifies a processor; IDs are 1..n (compact, post-fingerprint).
type NodeID uint32

// SessionID identifies one protocol execution (one broadcast-and-echo, one
// election wave, ...). Messages carry it so concurrent executions on
// overlapping trees do not interfere.
type SessionID uint64

// FramingBits is charged on top of each message's declared payload for the
// kind tag and session identifier: O(log n) bits, well within one word.
const FramingBits = 48

// Message is a single CONGEST message in flight.
type Message struct {
	From, To NodeID
	Kind     string
	Session  SessionID
	// Bits is the payload size; FramingBits is added when charging.
	Bits    int
	Payload any

	seq       uint64 // global send order, for deterministic tie-breaks
	deliverAt int64  // async delivery time (sync: round number)
}

// HalfEdge is one endpoint's local view of an incident link: everything a
// node knows under KT1 — the neighbour's ID, the weights, and its own mark.
type HalfEdge struct {
	Neighbor  NodeID
	Raw       uint64 // raw weight in [1,u]
	Composite uint64 // unique composite weight (raw . edgeNum)
	EdgeNum   uint64 // paper's edge number (IDs concatenated, smallest first)
	Marked    bool   // does this endpoint consider the edge a tree edge?
}

// NodeState is the entire local state of one processor. Protocol code
// receives a *NodeState and must treat it as the only state it can touch —
// that is the locality discipline of the model.
type NodeState struct {
	ID NodeID
	// Edges lists incident links sorted by neighbour ID.
	Edges []HalfEdge

	index    map[NodeID]int    // neighbour -> position in Edges
	sessions map[SessionID]any // per-protocol automaton state
	staged   []stagedMark      // mark changes deferred to the next barrier
}

// stagedMark is a deferred mark change, applied at a synchronisation
// barrier — the paper's "while waiting [for the phase to end], if any Add
// Edge message is received over an edge, mark that edge" (Build MST step
// d). Deferring keeps tree membership stable while other fragments'
// broadcast-and-echoes are still in flight.
type stagedMark struct {
	neighbor NodeID
	marked   bool
}

// EdgeTo returns the half-edge toward the given neighbour, or nil.
func (ns *NodeState) EdgeTo(neighbor NodeID) *HalfEdge {
	i, ok := ns.index[neighbor]
	if !ok {
		return nil
	}
	return &ns.Edges[i]
}

// SetMark sets this endpoint's mark on the edge toward neighbor. It
// reports whether the edge exists.
func (ns *NodeState) SetMark(neighbor NodeID, marked bool) bool {
	he := ns.EdgeTo(neighbor)
	if he == nil {
		return false
	}
	he.Marked = marked
	return true
}

// StageMark defers marking the edge toward neighbor until the next
// barrier (ApplyStaged). The edge must exist when the change is applied;
// staging for a vanished edge is dropped silently (the link was deleted
// while the instruction was in flight).
func (ns *NodeState) StageMark(neighbor NodeID) {
	ns.staged = append(ns.staged, stagedMark{neighbor: neighbor, marked: true})
}

// StageUnmark defers unmarking the edge toward neighbor.
func (ns *NodeState) StageUnmark(neighbor NodeID) {
	ns.staged = append(ns.staged, stagedMark{neighbor: neighbor, marked: false})
}

// ApplyStaged applies this node's deferred mark changes in order.
func (ns *NodeState) ApplyStaged() {
	for _, s := range ns.staged {
		if he := ns.EdgeTo(s.neighbor); he != nil {
			he.Marked = s.marked
		}
	}
	ns.staged = nil
}

// MarkedNeighbors returns the IDs of neighbours joined by marked (tree)
// edges, in ascending order.
func (ns *NodeState) MarkedNeighbors() []NodeID {
	var out []NodeID
	for i := range ns.Edges {
		if ns.Edges[i].Marked {
			out = append(out, ns.Edges[i].Neighbor)
		}
	}
	return out
}

// Degree returns the number of incident links.
func (ns *NodeState) Degree() int { return len(ns.Edges) }

// SessionState returns the automaton state stored under sid, or nil.
func (ns *NodeState) SessionState(sid SessionID) any { return ns.sessions[sid] }

// SetSessionState stores automaton state under sid; nil deletes it.
func (ns *NodeState) SetSessionState(sid SessionID, st any) {
	if st == nil {
		delete(ns.sessions, sid)
		return
	}
	ns.sessions[sid] = st
}

// Handler processes one delivered message at the receiving node. It may
// mutate the node's local state, send messages via nw.Send, and complete
// sessions via nw.CompleteSession.
type Handler func(nw *Network, node *NodeState, msg *Message)

// session tracks one protocol execution and the driver (if any) waiting on
// its completion.
type session struct {
	id        SessionID
	completed bool
	result    any
	err       error
	waiter    *Proc
	// onQuiescence, if set, lets the session complete when the network
	// goes quiescent (no messages in flight, no runnable drivers) — this
	// is how "wait until maxTime" timeouts are modelled without wall
	// clocks. It returns the result to complete with.
	onQuiescence func() (any, error)
}

// Network is the simulator: topology, schedulers, counters, sessions and
// drivers.
type Network struct {
	nodes  []*NodeState // index 1..n; index 0 nil
	layout bitwidth.Layout
	maxRaw uint64

	sched    scheduler
	counters Counters
	handlers map[string]Handler

	sessions    map[SessionID]*session
	sessionIDs  []SessionID // insertion-ordered, for deterministic sweeps
	nextSession SessionID
	nextSeq     uint64

	procs  []*Proc
	runq   []wakeup
	rng    *rng.RNG
	budget int

	running             bool
	deadlockResolutions int
}

type wakeup struct {
	p *Proc
	w wake
}

type wake struct {
	result any
	err    error
}

// Option configures a Network.
type Option func(*config)

type config struct {
	seed     uint64
	async    bool
	maxDelay int64
}

// WithSeed sets the engine's random seed (async delays; protocols draw
// their own randomness from driver-visible RNGs).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithAsync switches to the asynchronous scheduler with per-message delays
// uniform in [1, maxDelay] (FIFO per link). The paper's repair algorithms
// (Theorem 1.2) run in this mode.
func WithAsync(maxDelay int64) Option {
	return func(c *config) {
		c.async = true
		if maxDelay < 1 {
			maxDelay = 1
		}
		c.maxDelay = maxDelay
	}
}

// NewNetwork builds a network with one node per graph vertex and one link
// per graph edge. No edges are marked; use SetForest or protocol runs to
// mark.
func NewNetwork(g *graph.Graph, opts ...Option) *Network {
	cfg := config{seed: 1, maxDelay: 8}
	for _, o := range opts {
		o(&cfg)
	}
	nw := &Network{
		nodes:    make([]*NodeState, g.N+1),
		layout:   g.Layout,
		maxRaw:   g.MaxRaw,
		handlers: make(map[string]Handler),
		sessions: make(map[SessionID]*session),
		rng:      rng.New(cfg.seed),
		budget:   g.Layout.MessageBudget,
	}
	nw.counters.ByKind = make(map[string]KindCount)
	for v := 1; v <= g.N; v++ {
		nw.nodes[v] = &NodeState{
			ID:       NodeID(v),
			index:    make(map[NodeID]int),
			sessions: make(map[SessionID]any),
		}
	}
	for _, e := range g.Edges() {
		nw.addHalf(NodeID(e.A), NodeID(e.B), e.Raw)
		nw.addHalf(NodeID(e.B), NodeID(e.A), e.Raw)
	}
	if cfg.async {
		nw.sched = newAsyncScheduler(nw.rng.Split(), cfg.maxDelay)
	} else {
		nw.sched = newSyncScheduler()
	}
	return nw
}

func (nw *Network) addHalf(at, to NodeID, raw uint64) {
	ns := nw.nodes[at]
	num := nw.layout.EdgeNum(uint32(at), uint32(to))
	he := HalfEdge{
		Neighbor:  to,
		Raw:       raw,
		Composite: nw.layout.Composite(raw, num),
		EdgeNum:   num,
	}
	// keep Edges sorted by neighbour ID.
	pos := sort.Search(len(ns.Edges), func(i int) bool { return ns.Edges[i].Neighbor >= to })
	ns.Edges = append(ns.Edges, HalfEdge{})
	copy(ns.Edges[pos+1:], ns.Edges[pos:])
	ns.Edges[pos] = he
	ns.index = make(map[NodeID]int, len(ns.Edges))
	for i := range ns.Edges {
		ns.index[ns.Edges[i].Neighbor] = i
	}
}

func (nw *Network) removeHalf(at, to NodeID) bool {
	ns := nw.nodes[at]
	i, ok := ns.index[to]
	if !ok {
		return false
	}
	ns.Edges = append(ns.Edges[:i], ns.Edges[i+1:]...)
	ns.index = make(map[NodeID]int, len(ns.Edges))
	for j := range ns.Edges {
		ns.index[ns.Edges[j].Neighbor] = j
	}
	return true
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.nodes) - 1 }

// Layout returns the bit-field layout shared by all nodes.
func (nw *Network) Layout() bitwidth.Layout { return nw.layout }

// MaxRaw returns the raw-weight bound u.
func (nw *Network) MaxRaw() uint64 { return nw.maxRaw }

// Node returns the state of node v (1-based). Protocol code should only
// use this for the node a handler or driver is acting as.
func (nw *Network) Node(v NodeID) *NodeState { return nw.nodes[v] }

// RegisterHandler installs the automaton step for a message kind. Kinds
// are registered once at startup by each protocol package.
func (nw *Network) RegisterHandler(kind string, h Handler) {
	if _, dup := nw.handlers[kind]; dup {
		panic(fmt.Sprintf("congest: duplicate handler for kind %q", kind))
	}
	nw.handlers[kind] = h
}

// HasHandler reports whether a handler for kind is installed.
func (nw *Network) HasHandler(kind string) bool {
	_, ok := nw.handlers[kind]
	return ok
}

// Send queues a message from one node to a neighbouring node. It enforces
// the model: the link must exist and the payload must fit the budget.
// Every send is charged to the counters.
func (nw *Network) Send(from, to NodeID, kind string, sid SessionID, bits int, payload any) {
	if nw.nodes[from].EdgeTo(to) == nil {
		panic(fmt.Sprintf("congest: %d -> %d: no such link (kind %q)", from, to, kind))
	}
	total := bits + FramingBits
	if total > nw.budget {
		panic(fmt.Sprintf("congest: message kind %q carries %d bits, budget is %d", kind, total, nw.budget))
	}
	if _, ok := nw.handlers[kind]; !ok {
		panic(fmt.Sprintf("congest: no handler registered for kind %q", kind))
	}
	nw.nextSeq++
	m := &Message{
		From: from, To: to, Kind: kind, Session: sid,
		Bits: bits, Payload: payload, seq: nw.nextSeq,
	}
	nw.counters.charge(kind, total)
	nw.sched.schedule(m)
}

// NewSession allocates a session. onQuiescence may be nil.
func (nw *Network) NewSession(onQuiescence func() (any, error)) SessionID {
	nw.nextSession++
	sid := nw.nextSession
	nw.sessions[sid] = &session{id: sid, onQuiescence: onQuiescence}
	nw.sessionIDs = append(nw.sessionIDs, sid)
	return sid
}

// CompleteSession finishes a session with a result; the waiting driver (if
// any) becomes runnable. Completing an already-complete session panics —
// that is always a protocol bug.
func (nw *Network) CompleteSession(sid SessionID, result any, err error) {
	s, ok := nw.sessions[sid]
	if !ok {
		panic(fmt.Sprintf("congest: completing unknown session %d", sid))
	}
	if s.completed {
		panic(fmt.Sprintf("congest: session %d completed twice", sid))
	}
	s.completed = true
	s.result = result
	s.err = err
	s.onQuiescence = nil
	if s.waiter != nil {
		nw.runq = append(nw.runq, wakeup{p: s.waiter, w: wake{result: result, err: err}})
		s.waiter = nil
	}
}

// Counters returns a snapshot of the cost counters.
func (nw *Network) Counters() Counters { return nw.counters.snapshot() }

// CountersSince returns the costs accumulated since the earlier snapshot
// (taken from Counters on this network). It lets callers meter a phase or
// a single operation without resetting the global ledger.
func (nw *Network) CountersSince(earlier Counters) Counters {
	return nw.counters.snapshot().Sub(earlier)
}

// ResetCounters zeroes the cost ledger. Trial harnesses call it between
// independent measurements on a reused network; protocol code never
// should.
func (nw *Network) ResetCounters() {
	nw.counters = Counters{ByKind: make(map[string]KindCount)}
}

// Now returns the scheduler clock: the round number (sync) or virtual time
// (async).
func (nw *Network) Now() int64 { return nw.sched.now() }

// Rand returns a sub-RNG for protocol use, split off the engine stream.
func (nw *Network) Rand() *rng.RNG { return nw.rng.Split() }

// --- topology mutation (the "environment": uncharged) ---

// SetForest marks exactly the given edges (pairs of endpoints) on both
// sides and unmarks everything else. Setup helper for tests/benchmarks;
// models a network that already maintains a forest.
func (nw *Network) SetForest(edges [][2]NodeID) {
	for v := 1; v <= nw.N(); v++ {
		ns := nw.nodes[v]
		for i := range ns.Edges {
			ns.Edges[i].Marked = false
		}
	}
	for _, e := range edges {
		if !nw.nodes[e[0]].SetMark(e[1], true) || !nw.nodes[e[1]].SetMark(e[0], true) {
			panic(fmt.Sprintf("congest: SetForest: edge {%d,%d} does not exist", e[0], e[1]))
		}
	}
}

// MarkedEdges returns all properly marked edges as endpoint pairs (lower
// ID first), asserting the both-endpoint invariant.
func (nw *Network) MarkedEdges() [][2]NodeID {
	var out [][2]NodeID
	for v := 1; v <= nw.N(); v++ {
		ns := nw.nodes[v]
		for i := range ns.Edges {
			he := &ns.Edges[i]
			if he.Neighbor > ns.ID {
				other := nw.nodes[he.Neighbor].EdgeTo(ns.ID)
				if he.Marked != other.Marked {
					panic(fmt.Sprintf("congest: edge {%d,%d} improperly marked (%v vs %v)",
						ns.ID, he.Neighbor, he.Marked, other.Marked))
				}
				if he.Marked {
					out = append(out, [2]NodeID{ns.ID, he.Neighbor})
				}
			}
		}
	}
	return out
}

// ApplyStaged applies every node's deferred mark changes. Drivers call it
// right after a barrier: the change is each node's local timeout action
// and costs no messages.
func (nw *Network) ApplyStaged() {
	for v := 1; v <= nw.N(); v++ {
		nw.nodes[v].ApplyStaged()
	}
}

// DeleteLink removes the link {a,b} from both endpoints (an adversarial
// topology change; not charged). It reports whether the link existed and
// whether it was marked.
func (nw *Network) DeleteLink(a, b NodeID) (existed, wasMarked bool) {
	he := nw.nodes[a].EdgeTo(b)
	if he == nil {
		return false, false
	}
	wasMarked = he.Marked
	nw.removeHalf(a, b)
	nw.removeHalf(b, a)
	return true, wasMarked
}

// InsertLink adds the link {a,b} with the given raw weight (unmarked).
func (nw *Network) InsertLink(a, b NodeID, raw uint64) error {
	if a == b {
		return fmt.Errorf("congest: self-loop at %d", a)
	}
	if nw.nodes[a] == nil || nw.nodes[b] == nil {
		return fmt.Errorf("congest: no such node in {%d,%d}", a, b)
	}
	if nw.nodes[a].EdgeTo(b) != nil {
		return fmt.Errorf("congest: link {%d,%d} already exists", a, b)
	}
	if raw < 1 || raw > nw.maxRaw {
		return fmt.Errorf("congest: raw weight %d outside [1,%d]", raw, nw.maxRaw)
	}
	nw.addHalf(a, b, raw)
	nw.addHalf(b, a, raw)
	return nil
}

// SetRawWeight changes the weight of link {a,b} at both endpoints.
func (nw *Network) SetRawWeight(a, b NodeID, raw uint64) error {
	if raw < 1 || raw > nw.maxRaw {
		return fmt.Errorf("congest: raw weight %d outside [1,%d]", raw, nw.maxRaw)
	}
	ha, hb := nw.nodes[a].EdgeTo(b), nw.nodes[b].EdgeTo(a)
	if ha == nil || hb == nil {
		return fmt.Errorf("congest: link {%d,%d} does not exist", a, b)
	}
	ha.Raw, hb.Raw = raw, raw
	comp := nw.layout.Composite(raw, ha.EdgeNum)
	ha.Composite, hb.Composite = comp, comp
	return nil
}
