package congest

import (
	"context"
	"fmt"
	"sort"

	"kkt/internal/bitwidth"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/shard"
)

// NodeID identifies a processor; IDs are 1..n (compact, post-fingerprint).
type NodeID uint32

// SessionID identifies one protocol execution (one broadcast-and-echo, one
// election wave, ...). Messages carry it so concurrent executions on
// overlapping trees do not interfere.
//
// The ID packs a recycled slot index (low bits) with a monotonically
// increasing serial (high bits). The slot indexes the engine's flat
// session table — no map on the hot path — and the serial acts as the
// slot's generation stamp: a stale ID whose slot has been reused fails the
// stamp check and resolves to "unknown session".
type SessionID uint64

// sessSlotBits is the width of the slot field in a SessionID: up to ~4M
// concurrent sessions, leaving 42 bits of serial (never wraps in practice).
const (
	sessSlotBits = 22
	sessSlotMask = 1<<sessSlotBits - 1
)

// Slot returns the session's slot index in the engine's session table.
// Protocol layers use it to key their own slot-indexed side tables.
func (sid SessionID) Slot() int { return int(sid & sessSlotMask) }

// Serial returns the session's creation serial: the n-th NewSession call
// on a network returns serial n. Serials are what deterministic derived
// randomness (e.g. tree.Protocol.NodeRand) should hash, since they do not
// depend on slot recycling order.
func (sid SessionID) Serial() uint64 { return uint64(sid >> sessSlotBits) }

// FramingBits is charged on top of each message's declared payload for the
// kind tag and session identifier: O(log n) bits, well within one word.
const FramingBits = 48

// Message is a single CONGEST message in flight. The engine owns the
// struct and recycles it through a free list after the handler returns:
// handlers must not retain a *Message (copy the fields they need).
type Message struct {
	From, To NodeID
	Kind     KindID
	Session  SessionID
	// Bits is the payload size; FramingBits is added when charging.
	Bits    int
	Payload any
	// U is the unboxed single-word payload lane (SendU): protocol words
	// (parities, XORs, counters) travel here without interface boxing.
	// Valid only for messages sent with SendU; Payload is nil then.
	U uint64

	seq       uint64 // global send order, for deterministic tie-breaks
	deliverAt int64  // async delivery time (sync: round number)
}

// HalfEdge is one endpoint's local view of an incident link: everything a
// node knows under KT1 — the neighbour's ID, the weights, and its own mark.
type HalfEdge struct {
	Neighbor  NodeID
	Raw       uint64 // raw weight in [1,u]
	Composite uint64 // unique composite weight (raw . edgeNum)
	EdgeNum   uint64 // paper's edge number (IDs concatenated, smallest first)
	Marked    bool   // does this endpoint consider the edge a tree edge?

	// lastSched is the async scheduler's per-directed-link FIFO state: the
	// deliverAt of the last message scheduled from this endpoint to
	// Neighbor. Folding it into the half-edge removes the last map from the
	// async hot path; deleted links stash the value in Network.fifoTomb so
	// a delete/reinsert keeps the exact FIFO semantics of the old map.
	lastSched int64
}

// NodeState is the entire local state of one processor. Protocol code
// receives a *NodeState and must treat it as the only state it can touch —
// that is the locality discipline of the model.
type NodeState struct {
	ID NodeID
	// Edges lists incident links sorted by neighbour ID. The sorted slice
	// is also the neighbour index: lookups binary-search it, so there is
	// no side map to rebuild on topology changes.
	Edges []HalfEdge

	// sess holds per-protocol automaton state keyed by session ID: a tiny
	// linear-scanned vector instead of a map, because a node participates
	// in at most a handful of sessions at once (its fragment's
	// broadcast-and-echo plus a global election). The full packed ID —
	// slot plus generation serial — is compared, so a recycled slot can
	// never alias a stale entry. Entry capacity is retained across
	// sessions, so steady-state stores allocate nothing.
	sess   []sessEntry
	staged []stagedMark // mark changes deferred to the next barrier
}

// sessEntry is one node-local (session, automaton state) binding.
type sessEntry struct {
	sid   SessionID
	state any
}

// stagedMark is a deferred mark change, applied at a synchronisation
// barrier — the paper's "while waiting [for the phase to end], if any Add
// Edge message is received over an edge, mark that edge" (Build MST step
// d). Deferring keeps tree membership stable while other fragments'
// broadcast-and-echoes are still in flight.
type stagedMark struct {
	neighbor NodeID
	marked   bool
}

// edgePos returns the position of the half-edge toward neighbor in the
// sorted Edges slice, or -1. Hand-rolled binary search: this is the
// innermost loop of every Send and delivery.
func (ns *NodeState) edgePos(neighbor NodeID) int {
	lo, hi := 0, len(ns.Edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ns.Edges[mid].Neighbor < neighbor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ns.Edges) && ns.Edges[lo].Neighbor == neighbor {
		return lo
	}
	return -1
}

// EdgeTo returns the half-edge toward the given neighbour, or nil.
func (ns *NodeState) EdgeTo(neighbor NodeID) *HalfEdge {
	i := ns.edgePos(neighbor)
	if i < 0 {
		return nil
	}
	return &ns.Edges[i]
}

// EdgeIndex returns the position of the half-edge toward neighbor in the
// sorted Edges slice, or -1. Protocol code uses it to key per-edge bitmask
// state (e.g. election receipt bits) by edge position instead of by a
// neighbour-ID map.
func (ns *NodeState) EdgeIndex(neighbor NodeID) int { return ns.edgePos(neighbor) }

// SetMark sets this endpoint's mark on the edge toward neighbor. It
// reports whether the edge exists.
func (ns *NodeState) SetMark(neighbor NodeID, marked bool) bool {
	he := ns.EdgeTo(neighbor)
	if he == nil {
		return false
	}
	he.Marked = marked
	return true
}

// StageMark defers marking the edge toward neighbor until the next
// barrier (ApplyStaged). The edge must exist when the change is applied;
// staging for a vanished edge is dropped at the barrier (the link was
// deleted while the instruction was in flight) and counted.
func (ns *NodeState) StageMark(neighbor NodeID) {
	ns.staged = append(ns.staged, stagedMark{neighbor: neighbor, marked: true})
}

// StageUnmark defers unmarking the edge toward neighbor.
func (ns *NodeState) StageUnmark(neighbor NodeID) {
	ns.staged = append(ns.staged, stagedMark{neighbor: neighbor, marked: false})
}

// ApplyStaged applies this node's deferred mark changes in order and
// returns the number of changes dropped because their edge vanished while
// the instruction was in flight.
func (ns *NodeState) ApplyStaged() (dropped int) {
	for _, s := range ns.staged {
		if he := ns.EdgeTo(s.neighbor); he != nil {
			he.Marked = s.marked
		} else {
			dropped++
		}
	}
	ns.staged = ns.staged[:0]
	return dropped
}

// MarkedNeighbors returns the IDs of neighbours joined by marked (tree)
// edges, in ascending order.
func (ns *NodeState) MarkedNeighbors() []NodeID {
	var out []NodeID
	for i := range ns.Edges {
		if ns.Edges[i].Marked {
			out = append(out, ns.Edges[i].Neighbor)
		}
	}
	return out
}

// Degree returns the number of incident links.
func (ns *NodeState) Degree() int { return len(ns.Edges) }

// SessionState returns the automaton state stored under sid, or nil.
func (ns *NodeState) SessionState(sid SessionID) any {
	for i := range ns.sess {
		if ns.sess[i].sid == sid {
			return ns.sess[i].state
		}
	}
	return nil
}

// SetSessionState stores automaton state under sid; nil deletes it. The
// backing vector's capacity is retained, so the steady state (one
// broadcast-and-echo or election wave after another) never allocates.
func (ns *NodeState) SetSessionState(sid SessionID, st any) {
	for i := range ns.sess {
		if ns.sess[i].sid == sid {
			if st == nil {
				last := len(ns.sess) - 1
				ns.sess[i] = ns.sess[last]
				ns.sess[last] = sessEntry{}
				ns.sess = ns.sess[:last]
				return
			}
			ns.sess[i].state = st
			return
		}
	}
	if st != nil {
		ns.sess = append(ns.sess, sessEntry{sid: sid, state: st})
	}
}

// Handler processes one delivered message at the receiving node. It may
// mutate the node's local state, send messages via nw.Send, and complete
// sessions via nw.CompleteSession. The *Message is only valid for the
// duration of the call — the engine recycles it afterwards.
type Handler func(nw *Network, node *NodeState, msg *Message)

// session tracks one protocol execution and the driver (if any) waiting on
// its completion. Sessions live by value in the engine's slot table
// (Network.slots); id == 0 marks a free slot. A slot is recycled as soon
// as its result has been handed to a driver — at completion when a waiter
// is already parked, otherwise when a later Await consumes the stored
// result — so the table stays as small as the peak number of concurrent
// sessions.
type session struct {
	id        SessionID // 0 = free slot; otherwise the full packed ID
	completed bool
	unboxed   bool // result is resultU, not result (CompleteSessionU)
	resultU   uint64
	result    any
	err       error
	waiter    *Proc
	// twaiter is the continuation-task counterpart of waiter: at most one
	// of the two is set. A parked task is resumed by the engine's run
	// queue exactly where a parked goroutine driver would have been.
	twaiter *Task
	// onQuiescence, if set, lets the session complete when the network
	// goes quiescent (no messages in flight, no runnable drivers) — this
	// is how "wait until maxTime" timeouts are modelled without wall
	// clocks. It returns the result to complete with.
	onQuiescence func() (any, error)
	// openedAt is the scheduler clock at NewSession, stamped only when the
	// watchdog is armed (per-session budgets and dump ages).
	openedAt int64
}

// Network is the simulator: topology, schedulers, counters, sessions and
// drivers.
type Network struct {
	nodes  []*NodeState // index 1..n; index 0 nil
	states []NodeState  // backing array for nodes, one allocation
	layout bitwidth.Layout
	maxRaw uint64

	sched    scheduler
	counters ledger
	handlers []Handler // indexed by KindID; nil = not registered here

	// obs is the attached trace observer; nil (the default) disables every
	// hook behind a single nil check per round. See Observer in observer.go
	// for the callback contract and why the hooks preserve determinism.
	obs Observer

	// slots is the flat session table, indexed by SessionID.Slot() and
	// validated by the full packed ID (the serial is the generation
	// stamp). freeSlots recycles slot indices; serial counts NewSession
	// calls, matching the monotonic numbering of the old map keys.
	slots     []session
	freeSlots []int32
	serial    uint64
	// quiescent lists (in creation order) the sessions created with an
	// onQuiescence callback and not yet fired. The engine's quiescence
	// sweep walks only this list instead of every session ever created.
	quiescent      []SessionID
	quiescentSpare []SessionID
	nextSeq        uint64

	// fifoTomb preserves per-directed-link FIFO state (HalfEdge.lastSched)
	// across a link delete/reinsert, so the fold of the old lastOn map
	// into half-edge state keeps its exact semantics. Touched only on
	// topology mutation, never on the send path. Lazily built.
	fifoTomb map[uint64]int64

	runq   []wakeup
	rng    *rng.RNG
	budget int

	msgFree []*Message // recycled Message structs

	stagedDrops uint64 // staged mark changes dropped on vanished edges

	// shards is the configured shard count (1 = single-threaded); see
	// shard.go for the engine and the determinism contract. asyncMode
	// records the scheduler choice so the sharded merge knows whether
	// re-scheduling a staged send needs the per-link FIFO cell.
	asyncMode bool
	shards    int
	shardEng  *shardEngine
	// lane is non-nil only on a per-shard view of the network: the engine
	// hands handlers a view whose mutating operations (sends, completions,
	// message recycling, counter charges) divert into the shard's ordered
	// lane instead of touching shared state. The root network's lane is
	// nil and all operations apply directly.
	lane *shardLane

	// procFree recycles parked driver goroutines (with their channels)
	// across spawns within one Run; allProcs lists every driver goroutine
	// created since the pool was last drained, live counts the unfinished
	// drivers of both models. See proc.go.
	procFree []*Proc
	allProcs []*Proc
	live     int

	// taskFree recycles finished continuation tasks across spawns within
	// one Run; allTasks lists every live-or-parked task for deadlock
	// diagnostics. Tasks are plain heap objects — no goroutine, no
	// channels — which is what keeps a million-fragment fan-out at tens of
	// bytes per driver instead of a parked stack. See cont.go.
	taskFree []*Task
	allTasks []*Task

	// Driver high-water marks (see DriverStats): peakProcs tracks driver
	// goroutines ever created, peakTasks continuation tasks ever created,
	// peakLive the maximum concurrently-unfinished drivers of both models.
	// Monotone across Runs so a trial reports its true peak.
	peakProcs int
	peakTasks int
	peakLive  int

	running             bool
	deadlockResolutions int

	// Watchdog state (see watchdog.go). completions counts every session
	// completion unconditionally — the one-word cost of the disabled
	// watchdog; everything else is touched only when armed. wdArmed caches
	// wd.enabled() so the Run loop's guard is a single flag test.
	wd             Watchdog
	wdArmed        bool
	ctx            context.Context
	completions    uint64
	wdSeen         uint64
	wdLastProgress int64
	wdChecks       uint64
}

// wakeup is one runnable-driver entry on the engine's run queue: exactly
// one of p (goroutine driver) or t (continuation task) is set. The queue
// is drained strictly in append order, which is what makes driver
// scheduling — and with it session serials and every derived random draw —
// identical across shard counts and across the two driver models.
type wakeup struct {
	p *Proc
	t *Task
	w Wake
}

// Wake is the completion of an awaited session as delivered to a driver:
// the result (boxed or unboxed) plus the session error. Goroutine drivers
// consume it through Await/AwaitU; continuation drivers receive it as the
// argument of their next Step.
type Wake struct {
	result  any
	u       uint64 // unboxed result lane (CompleteSessionU)
	unboxed bool
	err     error
}

// Err returns the session error carried by the wake. Continuation drivers
// must check it first in every resumed Step and finish with the error —
// that is how deadlock unwinding (and any other forced completion)
// propagates through state machines, mirroring how a goroutine driver's
// Await returns the error up its call stack.
func (w Wake) Err() error { return w.err }

// Value returns the boxed result, with exactly Proc.Await's semantics: an
// unboxed completion comes back as a boxed uint64.
func (w Wake) Value() (any, error) {
	if w.unboxed {
		return w.u, w.err
	}
	return w.result, w.err
}

// U returns the unboxed single-word result, with exactly Proc.AwaitU's
// semantics: a boxed completion whose result is not a uint64 is an error,
// never a silent zero.
func (w Wake) U() (uint64, error) {
	if w.unboxed {
		return w.u, w.err
	}
	if w.err != nil {
		return 0, w.err
	}
	if u, ok := w.result.(uint64); ok {
		return u, nil
	}
	return 0, fmt.Errorf("congest: unboxed read of session completed with boxed %T, not uint64", w.result)
}

// Option configures a Network.
type Option func(*config)

type config struct {
	seed     uint64
	async    bool
	maxDelay int64
	shards   int
	obs      Observer
	wd       Watchdog
	ctx      context.Context
}

// WithSeed sets the engine's random seed (async delays; protocols draw
// their own randomness from driver-visible RNGs).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithShards partitions the nodes into s shards whose delivery batches —
// synchronous rounds, or asynchronous same-tick groups — execute on
// parallel workers. The sharded engine is observably identical to the
// single-threaded one — delivery order, driver scheduling, session
// serials, derived random draws and every counter are byte-for-byte the
// same at any shard count — so s is purely a wall-clock knob. s <= 1
// keeps the single-threaded path.
func WithShards(s int) Option { return func(c *config) { c.shards = s } }

// WithAsync switches to the asynchronous scheduler with per-message delays
// uniform in [1, maxDelay] (FIFO per link). The paper's repair algorithms
// (Theorem 1.2) run in this mode.
func WithAsync(maxDelay int64) Option {
	return func(c *config) {
		c.async = true
		if maxDelay < 1 {
			maxDelay = 1
		}
		c.maxDelay = maxDelay
	}
}

// halfEdgesByNeighbor sorts a node's incident links by neighbour ID.
type halfEdgesByNeighbor []HalfEdge

func (h halfEdgesByNeighbor) Len() int           { return len(h) }
func (h halfEdgesByNeighbor) Less(i, j int) bool { return h[i].Neighbor < h[j].Neighbor }
func (h halfEdgesByNeighbor) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

// NewNetwork builds a network with one node per graph vertex and one link
// per graph edge. No edges are marked; use SetForest or protocol runs to
// mark. Construction is bulk: per-node edge slices are sized up front,
// filled, and sorted once — O(deg log deg) per node instead of the O(deg²)
// of repeated sorted inserts.
func NewNetwork(g *graph.Graph, opts ...Option) *Network {
	cfg := config{seed: 1, maxDelay: 8}
	for _, o := range opts {
		o(&cfg)
	}
	nw := &Network{
		nodes:   make([]*NodeState, g.N+1),
		states:  make([]NodeState, g.N+1),
		layout:  g.Layout,
		maxRaw:  g.MaxRaw,
		rng:     rng.New(cfg.seed),
		budget:  g.Layout.MessageBudget,
		obs:     cfg.obs,
		wd:      cfg.wd,
		wdArmed: cfg.wd.enabled(),
		ctx:     cfg.ctx,
	}
	deg := make([]int, g.N+1)
	for _, e := range g.Edges() {
		deg[e.A]++
		deg[e.B]++
	}
	for v := 1; v <= g.N; v++ {
		ns := &nw.states[v]
		ns.ID = NodeID(v)
		if deg[v] > 0 {
			ns.Edges = make([]HalfEdge, 0, deg[v])
		}
		nw.nodes[v] = ns
	}
	for _, e := range g.Edges() {
		nw.appendHalf(NodeID(e.A), NodeID(e.B), e.Raw)
		nw.appendHalf(NodeID(e.B), NodeID(e.A), e.Raw)
	}
	for v := 1; v <= g.N; v++ {
		sort.Sort(halfEdgesByNeighbor(nw.nodes[v].Edges))
	}
	if cfg.async {
		nw.asyncMode = true
		nw.sched = newAsyncScheduler(nw.rng.Split(), cfg.maxDelay)
	} else {
		nw.sched = newSyncScheduler()
	}
	if cfg.shards > 1 {
		nw.shards = shard.NewPartition(g.N, cfg.shards).Shards()
	}
	if nw.shards < 1 {
		nw.shards = 1
	}
	return nw
}

// makeHalf builds the local view of the link at -> to.
func (nw *Network) makeHalf(at, to NodeID, raw uint64) HalfEdge {
	num := nw.layout.EdgeNum(uint32(at), uint32(to))
	return HalfEdge{
		Neighbor:  to,
		Raw:       raw,
		Composite: nw.layout.Composite(raw, num),
		EdgeNum:   num,
	}
}

// appendHalf adds a half-edge without maintaining sort order; used only by
// bulk construction, which sorts once at the end.
func (nw *Network) appendHalf(at, to NodeID, raw uint64) {
	ns := nw.nodes[at]
	ns.Edges = append(ns.Edges, nw.makeHalf(at, to, raw))
}

// addHalf inserts a half-edge into the sorted Edges slice in place: one
// binary search plus one memmove, no index rebuild. If the directed link
// was deleted earlier with FIFO state pending, that state is restored from
// the tombstone so re-inserted links keep the exact per-link FIFO
// constraint relative to messages scheduled before the deletion.
func (nw *Network) addHalf(at, to NodeID, raw uint64) {
	ns := nw.nodes[at]
	he := nw.makeHalf(at, to, raw)
	if last, ok := nw.fifoTomb[linkKey(at, to)]; ok {
		he.lastSched = last
		delete(nw.fifoTomb, linkKey(at, to))
	}
	pos := sort.Search(len(ns.Edges), func(i int) bool { return ns.Edges[i].Neighbor >= to })
	ns.Edges = append(ns.Edges, HalfEdge{})
	copy(ns.Edges[pos+1:], ns.Edges[pos:])
	ns.Edges[pos] = he
}

// removeHalf deletes a half-edge in place, preserving sort order. Pending
// FIFO state moves to the tombstone map (cold path) so a later re-insert
// behaves exactly as the old persistent per-link map did.
func (nw *Network) removeHalf(at, to NodeID) bool {
	ns := nw.nodes[at]
	i := ns.edgePos(to)
	if i < 0 {
		return false
	}
	if last := ns.Edges[i].lastSched; last != 0 {
		if nw.fifoTomb == nil {
			nw.fifoTomb = make(map[uint64]int64)
		}
		nw.fifoTomb[linkKey(at, to)] = last
	}
	ns.Edges = append(ns.Edges[:i], ns.Edges[i+1:]...)
	return true
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.nodes) - 1 }

// Layout returns the bit-field layout shared by all nodes.
func (nw *Network) Layout() bitwidth.Layout { return nw.layout }

// MaxRaw returns the raw-weight bound u.
func (nw *Network) MaxRaw() uint64 { return nw.maxRaw }

// Node returns the state of node v (1-based). Protocol code should only
// use this for the node a handler or driver is acting as.
func (nw *Network) Node(v NodeID) *NodeState { return nw.nodes[v] }

// RegisterHandler installs the automaton step for a message kind. Kinds
// are interned with Kind and registered once at startup by each protocol
// package.
func (nw *Network) RegisterHandler(kind KindID, h Handler) {
	if kind < 0 || int(kind) >= NumKinds() {
		panic(fmt.Sprintf("congest: RegisterHandler of uninterned kind %d", int32(kind)))
	}
	if h == nil {
		panic(fmt.Sprintf("congest: nil handler for kind %q", kind))
	}
	for int(kind) >= len(nw.handlers) {
		nw.handlers = append(nw.handlers, nil)
	}
	if nw.handlers[kind] != nil {
		panic(fmt.Sprintf("congest: duplicate handler for kind %q", kind))
	}
	nw.handlers[kind] = h
	nw.counters.ensure(len(nw.handlers))
}

// HasHandler reports whether a handler for kind is installed.
func (nw *Network) HasHandler(kind KindID) bool {
	return kind >= 0 && int(kind) < len(nw.handlers) && nw.handlers[kind] != nil
}

// getMessage pops a recycled Message or allocates a fresh one. On a shard
// view the shard's private free list is used, so workers never contend.
func (nw *Network) getMessage() *Message {
	free := &nw.msgFree
	if nw.lane != nil {
		free = &nw.lane.msgFree
	}
	if n := len(*free); n > 0 {
		m := (*free)[n-1]
		(*free)[n-1] = nil
		*free = (*free)[:n-1]
		return m
	}
	return &Message{}
}

// putMessage returns a delivered (or dropped) Message to the free list.
func (nw *Network) putMessage(m *Message) {
	m.Payload = nil // release the reference for GC
	if nw.lane != nil {
		nw.lane.msgFree = append(nw.lane.msgFree, m)
		return
	}
	nw.msgFree = append(nw.msgFree, m)
}

// Send queues a message from one node to a neighbouring node. It enforces
// the model: the link must exist and the payload must fit the budget.
// Every send is charged to the counters.
func (nw *Network) Send(from, to NodeID, kind KindID, sid SessionID, bits int, payload any) {
	nw.send(from, to, kind, sid, bits, payload, 0)
}

// SendU is Send with an unboxed single-word payload: the word travels in
// Message.U, so protocol words (parities, XORs, counters) never allocate.
func (nw *Network) SendU(from, to NodeID, kind KindID, sid SessionID, bits int, u uint64) {
	nw.send(from, to, kind, sid, bits, nil, u)
}

func (nw *Network) send(from, to NodeID, kind KindID, sid SessionID, bits int, payload any, u uint64) {
	ns := nw.nodes[from]
	ei := ns.edgePos(to)
	if ei < 0 {
		panic(fmt.Sprintf("congest: %d -> %d: no such link (kind %q)", from, to, kind))
	}
	total := bits + FramingBits
	if total > nw.budget {
		panic(fmt.Sprintf("congest: message kind %q carries %d bits, budget is %d", kind, total, nw.budget))
	}
	if !nw.HasHandler(kind) {
		panic(fmt.Sprintf("congest: no handler registered for kind %q", kind))
	}
	if l := nw.lane; l != nil {
		// Sharded delivery in flight: stage the send in the shard's ordered
		// lane. The global sequence number is assigned at the deterministic
		// merge, in exactly the order a single-threaded round would have.
		m := nw.getMessage()
		m.From, m.To, m.Kind, m.Session = from, to, kind, sid
		m.Bits, m.Payload, m.U, m.seq = bits, payload, u, 0
		l.counters.charge(kind, total)
		l.out.Push(l.id, l.parent, laneOp{m: m})
		return
	}
	nw.nextSeq++
	m := nw.getMessage()
	m.From, m.To, m.Kind, m.Session = from, to, kind, sid
	m.Bits, m.Payload, m.U, m.seq = bits, payload, u, nw.nextSeq
	nw.counters.charge(kind, total)
	nw.sched.schedule(m, &ns.Edges[ei].lastSched)
}

// fifoCell returns the per-directed-link FIFO cell the async scheduler
// needs when a lane-staged send is re-scheduled at the merge, or nil under
// the synchronous scheduler (which ignores it). The link is guaranteed to
// exist: send validated it when staging, and topology only mutates from
// drivers, strictly between batches.
func (nw *Network) fifoCell(from, to NodeID) *int64 {
	if !nw.asyncMode {
		return nil
	}
	ns := nw.nodes[from]
	return &ns.Edges[ns.edgePos(to)].lastSched
}

// AsyncConflicts returns how many emissions landed inside an open async
// delivery window and were routed back to their reference position (see
// asyncScheduler.winInsert). Zero under the synchronous scheduler.
// Deterministic per seed, and identical at any shard count.
func (nw *Network) AsyncConflicts() uint64 {
	if s, ok := nw.sched.(*asyncScheduler); ok {
		return s.conflicts
	}
	return 0
}

// lookupSession resolves a SessionID against the slot table, or nil for a
// freed/unknown session. The returned pointer is only valid until the next
// NewSession call (the table may grow); never retain it.
func (nw *Network) lookupSession(sid SessionID) *session {
	slot := sid.Slot()
	if slot >= len(nw.slots) || nw.slots[slot].id != sid {
		return nil
	}
	return &nw.slots[slot]
}

// freeSession clears a slot and returns it to the free list.
func (nw *Network) freeSession(s *session) {
	slot := s.id.Slot()
	*s = session{}
	nw.freeSlots = append(nw.freeSlots, int32(slot))
}

// NewSession allocates a session. onQuiescence may be nil. Sessions are a
// driver-side concept: creating one from a message handler would make the
// serial order (and with it all derived randomness) depend on delivery
// interleaving, so it is rejected outright on a shard view.
func (nw *Network) NewSession(onQuiescence func() (any, error)) SessionID {
	if nw.lane != nil {
		panic("congest: NewSession from a message handler — sessions are created by drivers")
	}
	var slot int
	if n := len(nw.freeSlots); n > 0 {
		slot = int(nw.freeSlots[n-1])
		nw.freeSlots = nw.freeSlots[:n-1]
	} else {
		slot = len(nw.slots)
		if slot > sessSlotMask {
			panic(fmt.Sprintf("congest: more than %d concurrent sessions", sessSlotMask))
		}
		nw.slots = append(nw.slots, session{})
	}
	nw.serial++
	sid := SessionID(nw.serial)<<sessSlotBits | SessionID(slot)
	nw.slots[slot] = session{id: sid, onQuiescence: onQuiescence}
	if nw.wdArmed {
		// openedAt feeds the per-session budget sweep and the dump's
		// oldest-session list; stamped only when armed so the disabled
		// watchdog never touches the scheduler clock here.
		nw.slots[slot].openedAt = nw.sched.now()
	}
	if onQuiescence != nil {
		nw.quiescent = append(nw.quiescent, sid)
	}
	if nw.obs != nil {
		nw.obs.SessionOpen(nw.serial, nw.sched.now())
	}
	return sid
}

// CompleteSession finishes a session with a result; the waiting driver (if
// any) becomes runnable. Completing an already-complete session panics —
// that is always a protocol bug.
func (nw *Network) CompleteSession(sid SessionID, result any, err error) {
	nw.completeSession(sid, Wake{result: result, err: err})
}

// CompleteSessionU finishes a session with an unboxed single-word result
// (consumed via Proc.AwaitU) — the completion counterpart of SendU.
func (nw *Network) CompleteSessionU(sid SessionID, u uint64, err error) {
	nw.completeSession(sid, Wake{u: u, unboxed: true, err: err})
}

func (nw *Network) completeSession(sid SessionID, w Wake) {
	if l := nw.lane; l != nil {
		// Sharded delivery in flight: defer the completion into the lane.
		// It applies (slot mutation, waiter wakeup, double-complete checks
		// and all) at the deterministic merge, interleaved with the
		// handler's sends in emission order.
		l.out.Push(l.id, l.parent, laneOp{sid: sid, w: w, complete: true})
		return
	}
	s := nw.lookupSession(sid)
	if s == nil {
		panic(fmt.Sprintf("congest: completing unknown session %d", sid))
	}
	if s.completed {
		panic(fmt.Sprintf("congest: session %d completed twice", sid))
	}
	// The watchdog's progress signal: completions advancing means the run
	// is not stalled. One unconditional increment — the entire disabled
	// cost on this path.
	nw.completions++
	if nw.obs != nil {
		// Lane-deferred completions reached this root path via the ordered
		// merge, so the hook fires on the engine goroutine in
		// single-threaded order at any shard count.
		nw.obs.SessionDone(sid.Serial(), nw.sched.now(), w.err != nil)
	}
	if s.waiter != nil {
		// The parked driver receives the result directly through its
		// wakeup; nothing will look the session up again, so the slot
		// recycles immediately.
		nw.runq = append(nw.runq, wakeup{p: s.waiter, w: w})
		nw.freeSession(s)
		return
	}
	if s.twaiter != nil {
		// Same for a parked continuation task: it joins the run queue in
		// completion order, so task scheduling interleaves with goroutine
		// drivers exactly as the completion stream dictates.
		nw.runq = append(nw.runq, wakeup{t: s.twaiter, w: w})
		nw.freeSession(s)
		return
	}
	s.completed = true
	s.result, s.resultU, s.unboxed = w.result, w.u, w.unboxed
	s.err = w.err
	s.onQuiescence = nil
}

// Counters returns a snapshot of the cost counters.
func (nw *Network) Counters() Counters { return nw.counters.snapshot() }

// CountersSince returns the costs accumulated since the earlier snapshot
// (taken from Counters on this network). It lets callers meter a phase or
// a single operation without resetting the global ledger.
func (nw *Network) CountersSince(earlier Counters) Counters {
	return nw.counters.snapshot().Sub(earlier)
}

// ResetCounters zeroes the cost ledger. Trial harnesses call it between
// independent measurements on a reused network; protocol code never
// should.
func (nw *Network) ResetCounters() { nw.counters.reset() }

// Now returns the scheduler clock: the round number (sync) or virtual time
// (async).
func (nw *Network) Now() int64 { return nw.sched.now() }

// Rand returns a sub-RNG for protocol use, split off the engine stream.
// Driver-side only: a handler drawing from the shared stream would tie the
// draws to delivery interleaving, so shard views reject it.
func (nw *Network) Rand() *rng.RNG {
	if nw.lane != nil {
		panic("congest: Rand from a message handler — use deterministic per-node randomness instead")
	}
	return nw.rng.Split()
}

// Lanes returns the number of execution lanes protocol state pools should
// be provisioned for: the shard count (1 when unsharded). Lane-indexed
// pools are how protocol layers keep their free lists contention-free
// under the sharded engine.
func (nw *Network) Lanes() int { return nw.shards }

// LaneID identifies the execution lane of this network value: shard
// workers see their shard index, everything driver-side sees 0. Drivers
// and shard 0 share lane 0 — they never run concurrently, so sharing its
// pools is safe.
func (nw *Network) LaneID() int {
	if nw.lane != nil {
		return nw.lane.id
	}
	return 0
}

// --- topology mutation (the "environment": uncharged) ---

// SetForest marks exactly the given edges (pairs of endpoints) on both
// sides and unmarks everything else. Setup helper for tests/benchmarks;
// models a network that already maintains a forest.
func (nw *Network) SetForest(edges [][2]NodeID) {
	for v := 1; v <= nw.N(); v++ {
		ns := nw.nodes[v]
		for i := range ns.Edges {
			ns.Edges[i].Marked = false
		}
	}
	for _, e := range edges {
		if !nw.nodes[e[0]].SetMark(e[1], true) || !nw.nodes[e[1]].SetMark(e[0], true) {
			panic(fmt.Sprintf("congest: SetForest: edge {%d,%d} does not exist", e[0], e[1]))
		}
	}
}

// MarkedEdges returns all properly marked edges as endpoint pairs (lower
// ID first), asserting the both-endpoint invariant.
func (nw *Network) MarkedEdges() [][2]NodeID {
	var out [][2]NodeID
	for v := 1; v <= nw.N(); v++ {
		ns := nw.nodes[v]
		for i := range ns.Edges {
			he := &ns.Edges[i]
			if he.Neighbor > ns.ID {
				other := nw.nodes[he.Neighbor].EdgeTo(ns.ID)
				if he.Marked != other.Marked {
					panic(fmt.Sprintf("congest: edge {%d,%d} improperly marked (%v vs %v)",
						ns.ID, he.Neighbor, he.Marked, other.Marked))
				}
				if he.Marked {
					out = append(out, [2]NodeID{ns.ID, he.Neighbor})
				}
			}
		}
	}
	return out
}

// ApplyStaged applies every node's deferred mark changes. Drivers call it
// right after a barrier: the change is each node's local timeout action
// and costs no messages. Changes whose edge vanished in flight are
// dropped and tallied; see StagedDrops.
func (nw *Network) ApplyStaged() {
	for v := 1; v <= nw.N(); v++ {
		nw.stagedDrops += uint64(nw.nodes[v].ApplyStaged())
	}
}

// StagedDrops returns the number of staged mark changes that were dropped
// at a barrier because their edge had been deleted while the instruction
// was in flight. A non-zero value is not an error — dynamic deletions race
// repairs by design — but harnesses surface it so silent drops are
// observable.
func (nw *Network) StagedDrops() uint64 { return nw.stagedDrops }

// DeleteLink removes the link {a,b} from both endpoints (an adversarial
// topology change; not charged). It reports whether the link existed and
// whether it was marked.
func (nw *Network) DeleteLink(a, b NodeID) (existed, wasMarked bool) {
	he := nw.nodes[a].EdgeTo(b)
	if he == nil {
		return false, false
	}
	wasMarked = he.Marked
	nw.removeHalf(a, b)
	nw.removeHalf(b, a)
	return true, wasMarked
}

// InsertLink adds the link {a,b} with the given raw weight (unmarked).
func (nw *Network) InsertLink(a, b NodeID, raw uint64) error {
	if a == b {
		return fmt.Errorf("congest: self-loop at %d", a)
	}
	if int(a) >= len(nw.nodes) || int(b) >= len(nw.nodes) || a == 0 || b == 0 {
		return fmt.Errorf("congest: no such node in {%d,%d}", a, b)
	}
	if nw.nodes[a].EdgeTo(b) != nil {
		return fmt.Errorf("congest: link {%d,%d} already exists", a, b)
	}
	if raw < 1 || raw > nw.maxRaw {
		return fmt.Errorf("congest: raw weight %d outside [1,%d]", raw, nw.maxRaw)
	}
	nw.addHalf(a, b, raw)
	nw.addHalf(b, a, raw)
	return nil
}

// SetRawWeight changes the weight of link {a,b} at both endpoints.
func (nw *Network) SetRawWeight(a, b NodeID, raw uint64) error {
	if raw < 1 || raw > nw.maxRaw {
		return fmt.Errorf("congest: raw weight %d outside [1,%d]", raw, nw.maxRaw)
	}
	ha, hb := nw.nodes[a].EdgeTo(b), nw.nodes[b].EdgeTo(a)
	if ha == nil || hb == nil {
		return fmt.Errorf("congest: link {%d,%d} does not exist", a, b)
	}
	ha.Raw, hb.Raw = raw, raw
	comp := nw.layout.Composite(raw, ha.EdgeNum)
	ha.Composite, hb.Composite = comp, comp
	return nil
}
