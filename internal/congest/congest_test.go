package congest

import (
	"errors"
	"testing"

	"kkt/internal/graph"
)

// buildNet returns a network over a path 1-2-...-n with unit weights.
func buildNet(t *testing.T, n int, opts ...Option) *Network {
	t.Helper()
	g := graph.Path(n, 1, graph.UnitWeights())
	return NewNetwork(g, opts...)
}

func TestPingPong(t *testing.T) {
	nw := buildNet(t, 2)
	var sid SessionID
	nw.RegisterHandler(Kind("ping"), func(nw *Network, node *NodeState, msg *Message) {
		nw.Send(node.ID, msg.From, Kind("pong"), msg.Session, 8, "hi back")
	})
	nw.RegisterHandler(Kind("pong"), func(nw *Network, node *NodeState, msg *Message) {
		nw.CompleteSession(msg.Session, msg.Payload, nil)
	})
	var result any
	nw.Spawn("pinger", func(p *Proc) error {
		sid = nw.NewSession(nil)
		nw.Send(1, 2, Kind("ping"), sid, 8, "hi")
		r, err := p.Await(sid)
		result = r
		return err
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if result != "hi back" {
		t.Errorf("result = %v", result)
	}
	c := nw.Counters()
	if c.Messages != 2 {
		t.Errorf("messages = %d, want 2", c.Messages)
	}
	if c.ByKind["ping"].Messages != 1 || c.ByKind["pong"].Messages != 1 {
		t.Errorf("per-kind counts wrong: %v", c.ByKind)
	}
	if c.Bits != 2*(8+FramingBits) {
		t.Errorf("bits = %d, want %d", c.Bits, 2*(8+FramingBits))
	}
	if nw.Now() != 2 { // ping delivered round 1, pong round 2
		t.Errorf("rounds = %d, want 2", nw.Now())
	}
}

func TestSyncChainTakesOneRoundPerHop(t *testing.T) {
	const n = 10
	nw := buildNet(t, n)
	nw.RegisterHandler(Kind("fwd"), func(nw *Network, node *NodeState, msg *Message) {
		next := node.ID + 1
		if int(next) > nw.N() {
			nw.CompleteSession(msg.Session, nil, nil)
			return
		}
		nw.Send(node.ID, next, Kind("fwd"), msg.Session, 8, nil)
	})
	nw.Spawn("chain", func(p *Proc) error {
		sid := nw.NewSession(nil)
		nw.Send(1, 2, Kind("fwd"), sid, 8, nil)
		_, err := p.Await(sid)
		return err
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.Now() != n-1 {
		t.Errorf("rounds = %d, want %d", nw.Now(), n-1)
	}
	if got := nw.Counters().Messages; got != n-1 {
		t.Errorf("messages = %d, want %d", got, n-1)
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	nw := buildNet(t, 3)
	nw.RegisterHandler(Kind("x"), func(*Network, *NodeState, *Message) {})
	defer func() {
		if recover() == nil {
			t.Error("send 1->3 on a path should panic")
		}
	}()
	nw.Send(1, 3, Kind("x"), 0, 8, nil)
}

func TestBudgetViolationPanics(t *testing.T) {
	nw := buildNet(t, 2)
	nw.RegisterHandler(Kind("fat"), func(*Network, *NodeState, *Message) {})
	defer func() {
		if recover() == nil {
			t.Error("oversized message should panic")
		}
	}()
	nw.Send(1, 2, Kind("fat"), 0, 100000, nil)
}

func TestUnregisteredKindPanics(t *testing.T) {
	nw := buildNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("send of unregistered kind should panic")
		}
	}()
	nw.Send(1, 2, Kind("nope"), 0, 8, nil)
}

func TestDuplicateHandlerPanics(t *testing.T) {
	nw := buildNet(t, 2)
	nw.RegisterHandler(Kind("k"), func(*Network, *NodeState, *Message) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate handler should panic")
		}
	}()
	nw.RegisterHandler(Kind("k"), func(*Network, *NodeState, *Message) {})
}

func TestDeadlockDetectedAndUnwound(t *testing.T) {
	nw := buildNet(t, 2)
	var sawErr error
	nw.Spawn("stuck", func(p *Proc) error {
		sid := nw.NewSession(nil) // nobody will complete this
		_, err := p.Await(sid)
		sawErr = err
		return err
	})
	err := nw.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run error = %v, want deadlock", err)
	}
	if !errors.Is(sawErr, ErrDeadlock) {
		t.Fatalf("driver did not observe deadlock: %v", sawErr)
	}
}

func TestChildProcsAndWaitAll(t *testing.T) {
	nw := buildNet(t, 4)
	nw.RegisterHandler(Kind("echo2"), func(nw *Network, node *NodeState, msg *Message) {
		nw.CompleteSession(msg.Session, int(node.ID), nil)
	})
	total := 0
	nw.Spawn("parent", func(p *Proc) error {
		var kids []*Proc
		for i := 1; i <= 3; i++ {
			from := NodeID(i)
			to := NodeID(i + 1)
			kids = append(kids, p.Go("kid", func(p *Proc) error {
				sid := nw.NewSession(nil)
				nw.Send(from, to, Kind("echo2"), sid, 8, nil)
				v, err := p.Await(sid)
				if err != nil {
					return err
				}
				total += v.(int)
				return nil
			}))
		}
		return p.WaitAll(kids...)
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 2+3+4 {
		t.Errorf("total = %d, want 9", total)
	}
}

func TestAwaitQuiescenceBarriers(t *testing.T) {
	nw := buildNet(t, 3)
	delivered := 0
	nw.RegisterHandler(Kind("slow"), func(nw *Network, node *NodeState, msg *Message) {
		delivered++
		if n := node.ID + 1; int(n) <= nw.N() {
			nw.Send(node.ID, n, Kind("slow"), msg.Session, 8, nil)
		}
	})
	nw.Spawn("driver", func(p *Proc) error {
		sid := nw.NewSession(nil)
		nw.Send(1, 2, Kind("slow"), sid, 8, nil)
		p.AwaitQuiescence()
		if delivered != 2 {
			t.Errorf("barrier released early: delivered = %d", delivered)
		}
		// the fire-and-forget session is still open; complete it so Run
		// does not call it a leak... sessions without waiters are fine.
		nw.CompleteSession(sid, nil, nil)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncDeliversEverythingFIFO(t *testing.T) {
	nw := buildNet(t, 2, WithAsync(16), WithSeed(99))
	var got []int
	nw.RegisterHandler(Kind("seq"), func(nw *Network, node *NodeState, msg *Message) {
		got = append(got, msg.Payload.(int))
		if len(got) == 10 {
			nw.CompleteSession(msg.Session, nil, nil)
		}
	})
	nw.Spawn("sender", func(p *Proc) error {
		sid := nw.NewSession(nil)
		for i := 0; i < 10; i++ {
			nw.Send(1, 2, Kind("seq"), sid, 8, i)
		}
		_, err := p.Await(sid)
		return err
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
	if nw.Now() <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestAsyncDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) int64 {
		g := graph.Ring(8, 1, graph.UnitWeights())
		nw := NewNetwork(g, WithAsync(10), WithSeed(seed))
		count := 0
		nw.RegisterHandler(Kind("gossip"), func(nw *Network, node *NodeState, msg *Message) {
			count++
			if count >= 30 {
				if count == 30 {
					nw.CompleteSession(msg.Session, nil, nil)
				}
				return
			}
			for _, he := range node.Edges {
				nw.Send(node.ID, he.Neighbor, Kind("gossip"), msg.Session, 8, nil)
			}
		})
		nw.Spawn("g", func(p *Proc) error {
			sid := nw.NewSession(nil)
			nw.Send(1, 2, Kind("gossip"), sid, 8, nil)
			_, err := p.Await(sid)
			return err
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		return nw.Now()
	}
	if run(5) != run(5) {
		t.Error("same seed, different virtual time")
	}
}

func TestDeleteLinkDropsInFlight(t *testing.T) {
	nw := buildNet(t, 2)
	delivered := false
	nw.RegisterHandler(Kind("d"), func(nw *Network, node *NodeState, msg *Message) {
		delivered = true
	})
	nw.Spawn("driver", func(p *Proc) error {
		sid := nw.NewSession(nil)
		nw.Send(1, 2, Kind("d"), sid, 8, nil)
		nw.DeleteLink(1, 2) // deleted while in flight
		p.AwaitQuiescence()
		nw.CompleteSession(sid, nil, nil)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("message delivered over deleted link")
	}
}

func TestApplyStagedCountsDropsOnVanishedEdges(t *testing.T) {
	nw := buildNet(t, 3)
	// Stage marks on {1,2}, then delete the link before the barrier: both
	// halves must be dropped and counted, not silently discarded.
	nw.Node(1).StageMark(2)
	nw.Node(2).StageMark(1)
	nw.DeleteLink(1, 2)
	nw.ApplyStaged()
	if got := nw.StagedDrops(); got != 2 {
		t.Errorf("StagedDrops = %d, want 2", got)
	}
	if len(nw.MarkedEdges()) != 0 {
		t.Errorf("vanished-edge stage left marks: %v", nw.MarkedEdges())
	}
	// A surviving stage still applies, and does not bump the counter.
	nw.Node(2).StageMark(3)
	nw.Node(3).StageMark(2)
	nw.ApplyStaged()
	if got := nw.StagedDrops(); got != 2 {
		t.Errorf("StagedDrops after clean barrier = %d, want 2", got)
	}
	if me := nw.MarkedEdges(); len(me) != 1 || me[0] != [2]NodeID{2, 3} {
		t.Errorf("marked edges = %v, want [[2 3]]", me)
	}
}

func TestTopologyMutation(t *testing.T) {
	nw := buildNet(t, 3)
	if err := nw.InsertLink(1, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.InsertLink(1, 3, 1); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := nw.InsertLink(2, 2, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if nw.Node(1).EdgeTo(3) == nil || nw.Node(3).EdgeTo(1) == nil {
		t.Fatal("insert did not create both halves")
	}
	existed, marked := nw.DeleteLink(1, 3)
	if !existed || marked {
		t.Errorf("delete: existed=%v marked=%v", existed, marked)
	}
	if existed, _ := nw.DeleteLink(1, 3); existed {
		t.Error("double delete reported existing")
	}
}

func TestSetRawWeightUpdatesComposite(t *testing.T) {
	g := graph.Path(2, 100, func(int) uint64 { return 10 })
	nw := NewNetwork(g)
	before := nw.Node(1).EdgeTo(2).Composite
	if err := nw.SetRawWeight(1, 2, 99); err != nil {
		t.Fatal(err)
	}
	he1, he2 := nw.Node(1).EdgeTo(2), nw.Node(2).EdgeTo(1)
	if he1.Raw != 99 || he2.Raw != 99 {
		t.Error("raw weight not updated on both halves")
	}
	if he1.Composite == before || he1.Composite != he2.Composite {
		t.Error("composite not updated consistently")
	}
	if err := nw.SetRawWeight(1, 2, 1000); err == nil {
		t.Error("out-of-range weight accepted")
	}
}

func TestMarkedEdgesInvariant(t *testing.T) {
	nw := buildNet(t, 4)
	nw.SetForest([][2]NodeID{{1, 2}, {3, 4}})
	me := nw.MarkedEdges()
	if len(me) != 2 {
		t.Fatalf("marked edges = %v", me)
	}
	// break the invariant deliberately: one-sided mark must panic.
	nw.Node(2).SetMark(3, true)
	defer func() {
		if recover() == nil {
			t.Error("one-sided mark not caught")
		}
	}()
	nw.MarkedEdges()
}

func TestSessionCompletionTwicePanics(t *testing.T) {
	nw := buildNet(t, 2)
	sid := nw.NewSession(nil)
	nw.CompleteSession(sid, nil, nil)
	defer func() {
		if recover() == nil {
			t.Error("double completion should panic")
		}
	}()
	nw.CompleteSession(sid, nil, nil)
}

func TestCountersSub(t *testing.T) {
	nw := buildNet(t, 2)
	nw.RegisterHandler(Kind("a"), func(*Network, *NodeState, *Message) {})
	nw.Spawn("d", func(p *Proc) error {
		sid := nw.NewSession(nil)
		nw.Send(1, 2, Kind("a"), sid, 8, nil)
		before := nw.Counters()
		nw.Send(1, 2, Kind("a"), sid, 8, nil)
		nw.Send(2, 1, Kind("a"), sid, 8, nil)
		diff := nw.Counters().Sub(before)
		if diff.Messages != 2 {
			t.Errorf("diff messages = %d, want 2", diff.Messages)
		}
		p.AwaitQuiescence()
		nw.CompleteSession(sid, nil, nil)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}
