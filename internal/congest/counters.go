package congest

import (
	"fmt"
	"sort"
	"strings"
)

// KindCount is the message/bit tally for one message kind.
type KindCount struct {
	Messages uint64
	Bits     uint64
}

// ledger is the internal cost accumulator: totals plus a per-kind array
// indexed by KindID. Charging is two adds and two array increments — no
// map hashing on the per-message hot path. Human-readable maps are built
// only at snapshot time.
type ledger struct {
	messages uint64
	bits     uint64
	byKind   []KindCount
}

// ensure grows the per-kind array to cover n kinds; called from
// RegisterHandler so charge can index unconditionally.
func (l *ledger) ensure(n int) {
	for len(l.byKind) < n {
		l.byKind = append(l.byKind, KindCount{})
	}
}

func (l *ledger) charge(kind KindID, bits int) {
	l.messages++
	l.bits += uint64(bits)
	kc := &l.byKind[kind]
	kc.Messages++
	kc.Bits += uint64(bits)
}

// merge adds another ledger's tallies into this one. Addition is exact and
// commutative, so the sharded engine's per-shard blocks fold into totals
// identical to single-threaded charging regardless of shard count.
func (l *ledger) merge(other *ledger) {
	l.messages += other.messages
	l.bits += other.bits
	l.ensure(len(other.byKind))
	for i := range other.byKind {
		l.byKind[i].Messages += other.byKind[i].Messages
		l.byKind[i].Bits += other.byKind[i].Bits
	}
}

func (l *ledger) reset() {
	l.messages, l.bits = 0, 0
	for i := range l.byKind {
		l.byKind[i] = KindCount{}
	}
}

// snapshot renders the ledger as a public Counters value, resolving
// KindIDs back to names. Kinds with no traffic are omitted, matching the
// map-based ledger of old.
func (l *ledger) snapshot() Counters {
	out := Counters{
		Messages: l.messages,
		Bits:     l.bits,
		ByKind:   make(map[string]KindCount),
	}
	for id, kc := range l.byKind {
		if kc.Messages != 0 || kc.Bits != 0 {
			out.ByKind[KindID(id).String()] = kc
		}
	}
	return out
}

// Counters is the cost ledger of a run: total messages and bits, broken
// down by message kind. Time (rounds or virtual time) is read separately
// from Network.Now, since it is a property of the schedule, not the
// traffic.
type Counters struct {
	Messages uint64
	Bits     uint64
	ByKind   map[string]KindCount
}

// Sub returns the counters accumulated since the earlier snapshot.
func (c Counters) Sub(earlier Counters) Counters {
	out := Counters{
		Messages: c.Messages - earlier.Messages,
		Bits:     c.Bits - earlier.Bits,
		ByKind:   make(map[string]KindCount, len(c.ByKind)),
	}
	for k, v := range c.ByKind {
		e := earlier.ByKind[k]
		d := KindCount{Messages: v.Messages - e.Messages, Bits: v.Bits - e.Bits}
		if d.Messages != 0 || d.Bits != 0 {
			out.ByKind[k] = d
		}
	}
	return out
}

// String renders a sorted per-kind breakdown, largest message count first.
func (c Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "messages=%d bits=%d", c.Messages, c.Bits)
	kinds := make([]string, 0, len(c.ByKind))
	for k := range c.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		ci, cj := c.ByKind[kinds[i]], c.ByKind[kinds[j]]
		if ci.Messages != cj.Messages {
			return ci.Messages > cj.Messages
		}
		return kinds[i] < kinds[j]
	})
	for _, k := range kinds {
		kc := c.ByKind[k]
		fmt.Fprintf(&b, "\n  %-18s msgs=%-10d bits=%d", k, kc.Messages, kc.Bits)
	}
	return b.String()
}
