package congest

import (
	"fmt"
	"sort"
	"strings"
)

// KindCount is the message/bit tally for one message kind.
type KindCount struct {
	Messages uint64
	Bits     uint64
}

// Counters is the cost ledger of a run: total messages and bits, broken
// down by message kind. Time (rounds or virtual time) is read separately
// from Network.Now, since it is a property of the schedule, not the
// traffic.
type Counters struct {
	Messages uint64
	Bits     uint64
	ByKind   map[string]KindCount
}

func (c *Counters) charge(kind string, bits int) {
	c.Messages++
	c.Bits += uint64(bits)
	kc := c.ByKind[kind]
	kc.Messages++
	kc.Bits += uint64(bits)
	c.ByKind[kind] = kc
}

func (c *Counters) snapshot() Counters {
	out := Counters{
		Messages: c.Messages,
		Bits:     c.Bits,
		ByKind:   make(map[string]KindCount, len(c.ByKind)),
	}
	for k, v := range c.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// Sub returns the counters accumulated since the earlier snapshot.
func (c Counters) Sub(earlier Counters) Counters {
	out := Counters{
		Messages: c.Messages - earlier.Messages,
		Bits:     c.Bits - earlier.Bits,
		ByKind:   make(map[string]KindCount, len(c.ByKind)),
	}
	for k, v := range c.ByKind {
		e := earlier.ByKind[k]
		d := KindCount{Messages: v.Messages - e.Messages, Bits: v.Bits - e.Bits}
		if d.Messages != 0 || d.Bits != 0 {
			out.ByKind[k] = d
		}
	}
	return out
}

// String renders a sorted per-kind breakdown, largest message count first.
func (c Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "messages=%d bits=%d", c.Messages, c.Bits)
	kinds := make([]string, 0, len(c.ByKind))
	for k := range c.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		ci, cj := c.ByKind[kinds[i]], c.ByKind[kinds[j]]
		if ci.Messages != cj.Messages {
			return ci.Messages > cj.Messages
		}
		return kinds[i] < kinds[j]
	})
	for _, k := range kinds {
		kc := c.ByKind[k]
		fmt.Fprintf(&b, "\n  %-18s msgs=%-10d bits=%d", k, kc.Messages, kc.Bits)
	}
	return b.String()
}
