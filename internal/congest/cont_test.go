package congest

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"kkt/internal/graph"
	"kkt/internal/race"
)

// stepEcho is a minimal two-state continuation driver: send one unboxed
// message, await the session it completes, record the echoed word.
type stepEcho struct {
	nw       *Network
	from, to NodeID
	kind     KindID
	out      *uint64
	started  bool
}

func (d *stepEcho) Step(t *Task, w Wake) (SessionID, bool, error) {
	if !d.started {
		d.started = true
		sid := d.nw.NewSession(nil)
		d.nw.SendU(d.from, d.to, d.kind, sid, 8, uint64(d.from))
		return sid, false, nil
	}
	u, err := w.U()
	if err != nil {
		return 0, true, err
	}
	*d.out = u
	return 0, true, nil
}

// echoNet returns a path network with a kind whose handler echoes the
// message word back through the session, unboxed.
func echoNet(t *testing.T, n int) (*Network, KindID) {
	t.Helper()
	nw := buildNet(t, n)
	kind := Kind("cont.echo")
	if !nw.HasHandler(kind) {
		nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
			nw.CompleteSessionU(msg.Session, msg.U+100, nil)
		})
	}
	return nw, kind
}

func TestTaskDriverBasic(t *testing.T) {
	nw, kind := echoNet(t, 2)
	var got uint64
	nw.SpawnStep("echo", &stepEcho{nw: nw, from: 1, to: 2, kind: kind, out: &got})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 101 {
		t.Errorf("echoed word = %d, want 101", got)
	}
}

func TestTaskFanoutWaitTasks(t *testing.T) {
	nw, kind := echoNet(t, 4)
	got := make([]uint64, 3)
	nw.Spawn("parent", func(p *Proc) error {
		var tasks []*Task
		for i := 0; i < 3; i++ {
			d := &stepEcho{nw: nw, from: NodeID(i + 1), to: NodeID(i + 2), kind: kind, out: &got[i]}
			tasks = append(tasks, p.GoStepTagged("echo", 1, uint64(i), d))
		}
		return p.WaitTasks(tasks...)
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if want := uint64(i + 101); g != want {
			t.Errorf("task %d echoed %d, want %d", i, g, want)
		}
	}
}

// stepAwaitCompleted awaits a session that is already complete when Step
// returns it: the engine must consume it inline and keep stepping.
type stepAwaitCompleted struct {
	nw    *Network
	out   *uint64
	state int
}

func (d *stepAwaitCompleted) Step(t *Task, w Wake) (SessionID, bool, error) {
	switch d.state {
	case 0:
		d.state = 1
		sid := d.nw.NewSession(nil)
		d.nw.CompleteSessionU(sid, 7, nil) // complete before awaiting
		return sid, false, nil
	case 1:
		u, err := w.U()
		if err != nil {
			return 0, true, err
		}
		*d.out = u
		return 0, true, nil
	}
	return 0, true, fmt.Errorf("unexpected state %d", d.state)
}

func TestTaskAwaitsCompletedSessionInline(t *testing.T) {
	nw := buildNet(t, 2)
	var got uint64
	nw.SpawnStep("inline", &stepAwaitCompleted{nw: nw, out: &got})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("inline-consumed result = %d, want 7", got)
	}
}

// stepNop finishes on its first step; the task-pool gates spawn it.
type stepNop struct{}

func (stepNop) Step(*Task, Wake) (SessionID, bool, error) { return 0, true, nil }

var nopDriver stepNop

// TestTaskPoolReuseWithinRun is the continuation counterpart of
// TestPooledDriverReuseWithinRun: a second fan-out phase inside one Run
// must reuse the first phase's Task objects entirely.
func TestTaskPoolReuseWithinRun(t *testing.T) {
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	created := func() int { return len(nw.allTasks) }
	nw.Spawn("outer", func(p *Proc) error {
		var scratch FanoutScratch[int]
		base := 0
		for phase := 0; phase < 3; phase++ {
			tasks := scratch.Tasks()
			for i := 0; i < 32; i++ {
				tasks = append(tasks, p.GoStepTagged("child", uint64(phase), uint64(i), nopDriver))
			}
			scratch.KeepTasks(tasks)
			if err := p.WaitTasks(tasks...); err != nil {
				return err
			}
			if phase == 0 {
				base = created()
			} else if got := created(); got != base {
				return fmt.Errorf("phase %d created %d new tasks, want 0", phase, got-base)
			}
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nw.allTasks) != 0 || len(nw.taskFree) != 0 {
		t.Fatalf("task pool not drained at Run end: %d tasks, %d free", len(nw.allTasks), len(nw.taskFree))
	}
}

// TestTaskSpawnAllocs pins the continuation spawn path: after a warm-up
// wave, a 2-phase fan-out of 64 tasks per phase costs only the first
// phase's Task objects per Run (the pool drains at Run end) — far below
// goroutine+channel costs, and the second phase must be free.
func TestTaskSpawnAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	var scratch FanoutScratch[int]
	wave := func() {
		nw.Spawn("outer", func(p *Proc) error {
			for phase := 0; phase < 2; phase++ {
				tasks := scratch.Tasks()
				for i := 0; i < 64; i++ {
					tasks = append(tasks, p.GoStepTagged("child", uint64(phase), uint64(i), nopDriver))
				}
				scratch.KeepTasks(tasks)
				if err := p.WaitTasks(tasks...); err != nil {
					return err
				}
			}
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave()
	avg := testing.AllocsPerRun(5, wave)
	// Budget: 64 fresh Tasks in phase 1 (one small struct each, no
	// goroutines, no channels), phase 2 free, plus constant slack.
	allocBudget(t, "continuation fan-out (2 phases x 64 tasks)", avg, 64+32)
}

// stepPanic panics mid-step with a recognizable value.
type stepPanic struct{ val string }

func (d stepPanic) Step(*Task, Wake) (SessionID, bool, error) { panic(d.val) }

// TestDriverPanicParity: a panicking driver surfaces out of Run with the
// original panic value under both driver models.
func TestDriverPanicParity(t *testing.T) {
	catch := func(spawn func(nw *Network)) (val any) {
		nw := buildNet(t, 2)
		spawn(nw)
		defer func() { val = recover() }()
		_ = nw.Run()
		return nil
	}
	fromTask := catch(func(nw *Network) {
		nw.SpawnStep("boom", stepPanic{val: "driver exploded"})
	})
	fromProc := catch(func(nw *Network) {
		nw.Spawn("boom", func(p *Proc) error { panic("driver exploded") })
	})
	if fromTask != "driver exploded" {
		t.Errorf("task panic surfaced as %v", fromTask)
	}
	if fromProc != "driver exploded" {
		t.Errorf("proc panic surfaced as %v", fromProc)
	}
	if fromTask != fromProc {
		t.Errorf("panic parity broken: task %v vs proc %v", fromTask, fromProc)
	}
}

// TestDriverPanicUnwindsBlockedDrivers: when a panic aborts a Run
// mid-fan-out, every other parked driver goroutine must exit with the Run
// (pending Awaits return ErrRunAborted) and the network must stay usable
// for a fresh Run — no leaked stacks, no stale waiter pointers.
func TestDriverPanicUnwindsBlockedDrivers(t *testing.T) {
	nw, kind := echoNet(t, 8)
	var blockedErr error
	run := func() (val any) {
		defer func() { val = recover() }()
		nw.Spawn("parent", func(p *Proc) error {
			// One child parks on a session nobody completes (the
			// quiescence barrier guarantees it reached its Await), one
			// never gets scheduled (the panic fires while it waits in the
			// run queue), then the parent panics.
			p.Go("blocked", func(cp *Proc) error {
				sid := nw.NewSession(nil)
				_, err := cp.Await(sid)
				blockedErr = err
				return err
			})
			p.AwaitQuiescence()
			p.Go("unstarted", procNop)
			panic("abort mid-fanout")
		})
		_ = nw.Run()
		return nil
	}
	before := runtime.NumGoroutine()
	if got := run(); got != "abort mid-fanout" {
		t.Fatalf("panic surfaced as %v", got)
	}
	if !errors.Is(blockedErr, ErrRunAborted) {
		t.Fatalf("blocked driver unwound with %v, want ErrRunAborted", blockedErr)
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond) // let poisoned loops exit
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across panicked Run: %d -> %d", before, after)
	}
	// The same network must run cleanly afterwards.
	var got uint64
	nw.SpawnStep("echo", &stepEcho{nw: nw, from: 1, to: 2, kind: kind, out: &got})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 101 {
		t.Errorf("post-panic run echoed %d, want 101", got)
	}
}

// stepStuck awaits a session nobody completes and records the error it is
// unwound with.
type stepStuck struct {
	nw      *Network
	sawErr  *error
	started bool
}

func (d *stepStuck) Step(t *Task, w Wake) (SessionID, bool, error) {
	if !d.started {
		d.started = true
		return d.nw.NewSession(nil), false, nil
	}
	*d.sawErr = w.Err()
	return 0, true, w.Err()
}

// TestTaskDeadlockDetectedAndUnwound mirrors the goroutine-driver deadlock
// test: a blocked task is diagnosed, woken with ErrDeadlock, and unwinds.
func TestTaskDeadlockDetectedAndUnwound(t *testing.T) {
	nw := buildNet(t, 2)
	var sawErr error
	nw.SpawnStep("stuck", &stepStuck{nw: nw, sawErr: &sawErr})
	err := nw.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run error = %v, want deadlock", err)
	}
	if !errors.Is(sawErr, ErrDeadlock) {
		t.Fatalf("task did not observe deadlock: %v", sawErr)
	}
}

// TestTaggedTaskName: lazy task names format like tagged proc names.
func TestTaggedTaskName(t *testing.T) {
	nw := buildNet(t, 2)
	var name string
	nw.Spawn("outer", func(p *Proc) error {
		tk := p.GoStepTagged("findmin", 3, 17, nopDriver)
		name = tk.Name()
		return p.WaitTasks(tk)
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if name != "findmin-p3-f17" {
		t.Fatalf("tagged task name %q, want findmin-p3-f17", name)
	}
}
