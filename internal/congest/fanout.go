package congest

// FanoutScratch recycles the per-phase buffers of a fan-out driver: one
// outcome slot and one child driver per fragment, reused across phases.
// At scale the first Borůvka phase spawns one driver per node (100k at
// 100k nodes), so both the slices and the subtle stale-tail clearing —
// finished drivers must not stay reachable through the backing array —
// are worth keeping in one place. R is the per-fragment outcome type.
type FanoutScratch[R any] struct {
	outcomes []R
	procs    []*Proc
	tasks    []*Task
}

// Outcomes returns a zeroed outcome slice of length n, reusing capacity.
func (s *FanoutScratch[R]) Outcomes(n int) []R {
	if cap(s.outcomes) < n {
		s.outcomes = make([]R, n)
	}
	s.outcomes = s.outcomes[:n]
	var zero R
	for i := range s.outcomes {
		s.outcomes[i] = zero
	}
	return s.outcomes
}

// Procs returns the reusable driver slice, truncated to length zero.
func (s *FanoutScratch[R]) Procs() []*Proc { return s.procs[:0] }

// KeepProcs stores the appended driver slice back into the scratch,
// clearing any stale tail left over from a larger earlier phase so
// finished drivers are not pinned in memory.
func (s *FanoutScratch[R]) KeepProcs(procs []*Proc) {
	for i := len(procs); i < len(s.procs); i++ {
		s.procs[i] = nil
	}
	s.procs = procs
}

// Tasks returns the reusable continuation-task slice, truncated to length
// zero — the Task counterpart of Procs.
func (s *FanoutScratch[R]) Tasks() []*Task { return s.tasks[:0] }

// KeepTasks stores the appended task slice back into the scratch, clearing
// any stale tail so finished tasks are not pinned in memory.
func (s *FanoutScratch[R]) KeepTasks(tasks []*Task) {
	for i := len(tasks); i < len(s.tasks); i++ {
		s.tasks[i] = nil
	}
	s.tasks = tasks
}
