package congest

import (
	"context"
	"errors"
	"strings"
	"testing"

	"kkt/internal/graph"
)

// spawnLivelock wires a handler that bounces a message between nodes 1 and
// 2 forever, plus a driver awaiting a session nobody completes: the clock
// advances but no session ever finishes — the stall a lost wakeup causes.
func spawnLivelock(nw *Network, kind KindID) {
	nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
		nw.Send(node.ID, msg.From, kind, msg.Session, 8, nil)
	})
	nw.Spawn("wedged", func(p *Proc) error {
		sid := nw.NewSession(nil)
		nw.Send(1, 2, kind, sid, 8, nil)
		_, err := p.Await(sid)
		return err
	})
}

func TestWatchdogTripsOnStall(t *testing.T) {
	nw := buildNet(t, 2, WithWatchdog(Watchdog{StallTime: 64}))
	spawnLivelock(nw, Kind("wd.bounce"))
	err := nw.Run()
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("Run returned %v, want *WatchdogError", err)
	}
	if we.Reason != "quiescence stall" {
		t.Errorf("reason = %q", we.Reason)
	}
	if we.LiveDrivers != 1 {
		t.Errorf("live drivers = %d, want 1", we.LiveDrivers)
	}
	if len(we.Stuck) != 1 || we.Stuck[0].Name != "wedged" {
		t.Errorf("stuck drivers = %+v, want the wedged driver", we.Stuck)
	}
	if len(we.StuckSessions) == 0 {
		t.Errorf("dump has no stuck sessions")
	}
	if we.Now-we.LastProgress <= 64 {
		t.Errorf("trip at clock %d with last progress %d: stall budget not exceeded", we.Now, we.LastProgress)
	}
	msg := err.Error()
	for _, want := range []string{"watchdog:", "quiescence stall", "stuck drivers:", "wedged"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// The trip must unwind cleanly: Run stays callable (no wedged pool
	// state, no panic). The livelock traffic is still in flight — aborting
	// does not rewrite the network — so the second Run trips again rather
	// than hanging, which is exactly the watchdog's job.
	nw.Spawn("after", func(p *Proc) error { return nil })
	err = nw.Run()
	if !errors.As(err, &we) {
		t.Fatalf("second Run returned %v, want another *WatchdogError", err)
	}
}

func TestWatchdogTripsOnMaxTime(t *testing.T) {
	nw := buildNet(t, 2, WithWatchdog(Watchdog{MaxTime: 32}))
	spawnLivelock(nw, Kind("wd.bounce2"))
	err := nw.Run()
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("Run returned %v, want *WatchdogError", err)
	}
	if we.Reason != "round budget exceeded" {
		t.Errorf("reason = %q", we.Reason)
	}
	if we.Now <= 32 {
		t.Errorf("tripped at clock %d, before the budget", we.Now)
	}
}

func TestWatchdogTripsOnSessionBudget(t *testing.T) {
	// A healthy-looking run where sessions keep completing, but one session
	// is never finished: a chain of bounced generations each completing a
	// fresh session, driven by a relay driver. Stall detection stays quiet
	// (completions advance); only the per-session budget catches it.
	nw := buildNet(t, 2, WithWatchdog(Watchdog{SessionTime: 128}))
	kind := Kind("wd.relay")
	nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
		nw.CompleteSession(msg.Session, nil, nil)
	})
	nw.Spawn("relay", func(p *Proc) error {
		stuck := nw.NewSession(nil) // never completed
		_ = stuck
		for {
			sid := nw.NewSession(nil)
			nw.Send(1, 2, kind, sid, 8, nil)
			if _, err := p.Await(sid); err != nil {
				return err
			}
		}
	})
	err := nw.Run()
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("Run returned %v, want *WatchdogError", err)
	}
	if we.Reason != "session budget exceeded" {
		t.Errorf("reason = %q", we.Reason)
	}
}

func TestContextCancelAbortsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	nw := buildNet(t, 2, WithContext(ctx))
	kind := Kind("wd.cancel")
	nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
		nw.Send(node.ID, msg.From, kind, msg.Session, 8, nil)
	})
	nw.Spawn("looper", func(p *Proc) error {
		sid := nw.NewSession(nil)
		nw.Send(1, 2, kind, sid, 8, nil)
		_, err := p.Await(sid)
		return err
	})
	cancel() // cancelled before Run: the first batch check aborts
	err := nw.Run()
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("Run returned %v, want *WatchdogError", err)
	}
	if !strings.HasPrefix(we.Reason, "cancelled: ") {
		t.Errorf("reason = %q", we.Reason)
	}
}

// TestWatchdogByteIdentity is the passivity contract: an armed watchdog
// that does not trip changes nothing observable — counters, clock, session
// serials and results are identical with the watchdog on or off.
func TestWatchdogByteIdentity(t *testing.T) {
	run := func(opts ...Option) (Counters, int64, uint64) {
		g := graph.Path(8, 1, graph.UnitWeights())
		nw := NewNetwork(g, append([]Option{WithSeed(11)}, opts...)...)
		kind := Kind("wd.chain")
		nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
			next := node.ID + 1
			if int(next) > nw.N() {
				nw.CompleteSession(msg.Session, msg.U, nil)
				return
			}
			nw.SendU(node.ID, next, kind, msg.Session, 8, msg.U+1)
		})
		nw.Spawn("chain", func(p *Proc) error {
			for i := 0; i < 4; i++ {
				sid := nw.NewSession(nil)
				nw.SendU(1, 2, kind, sid, 8, 0)
				if _, err := p.AwaitU(sid); err != nil {
					return err
				}
			}
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		lastSerial := nw.NewSession(nil).Serial()
		return nw.Counters(), nw.Now(), lastSerial
	}
	cOff, nowOff, serOff := run()
	cOn, nowOn, serOn := run(WithWatchdog(Watchdog{MaxTime: 1 << 40, StallTime: 1 << 30, SessionTime: 1 << 30}))
	if cOff.Messages != cOn.Messages || cOff.Bits != cOn.Bits {
		t.Errorf("counters differ: off %+v on %+v", cOff, cOn)
	}
	if nowOff != nowOn {
		t.Errorf("clock differs: off %d on %d", nowOff, nowOn)
	}
	if serOff != serOn {
		t.Errorf("session serials differ: off %d on %d", serOff, serOn)
	}
}
