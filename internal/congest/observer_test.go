package congest

import (
	"testing"

	"kkt/internal/race"

	"kkt/internal/graph"
)

// recObserver records every hook invocation for assertions.
type recObserver struct {
	rounds    int
	messages  uint64
	bits      uint64
	kinds     int
	opened    int
	done      int
	failed    int
	phases    []PhaseCosts
	counts    map[string]uint64
	shardLoad uint64
}

func (r *recObserver) RoundEnd(now int64, messages, bits uint64, byKind []KindCount, shardLoad []uint64) {
	r.rounds++
	r.messages = messages
	r.bits = bits
	r.kinds = len(byKind)
	r.shardLoad = 0
	for _, l := range shardLoad {
		r.shardLoad += l
	}
}
func (r *recObserver) SessionOpen(serial uint64, now int64) { r.opened++ }
func (r *recObserver) SessionDone(serial uint64, now int64, failed bool) {
	r.done++
	if failed {
		r.failed++
	}
}
func (r *recObserver) PhaseStart(proto string, phase, fragments int, now int64) {}
func (r *recObserver) PhaseEnd(proto string, phase int, now int64, cost PhaseCosts) {
	r.phases = append(r.phases, cost)
}
func (r *recObserver) RepairStart(op string, now int64) {}
func (r *recObserver) RepairDone(op, action string, now int64, rounds int64, messages, bits uint64) {
}
func (r *recObserver) Count(name string, delta uint64) {
	if r.counts == nil {
		r.counts = make(map[string]uint64)
	}
	r.counts[name] += delta
}

// TestNilObserverDeliverAllocs pins the disabled-observer contract: with no
// observer attached (the default), the delivery loop's only observability
// cost is a nil check, so a warm 512-message wave stays within the same
// constant budget as the plain delivery tests.
func TestNilObserverDeliverAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	const msgs = 512
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	if nw.obs != nil {
		t.Fatal("network has an observer by default")
	}
	kind := Kind("alloc.obsnil")
	nw.RegisterHandler(kind, func(*Network, *NodeState, *Message) {})
	wave := func() {
		nw.Spawn("sender", func(p *Proc) error {
			for i := 0; i < msgs; i++ {
				nw.Send(1, 2, kind, 0, 8, nil)
			}
			p.AwaitQuiescence()
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave()
	avg := testing.AllocsPerRun(5, wave)
	allocBudget(t, "nil-observer deliver wave (512 messages)", avg, 32)
}

// TestObserverRoundEndExact checks that RoundEnd reports the engine's exact
// cumulative counters — equal to the network totals after the run — and
// that session open/done events pair up.
func TestObserverRoundEndExact(t *testing.T) {
	rec := &recObserver{}
	g := graph.Path(4, 1, graph.UnitWeights())
	nw := NewNetwork(g, WithObserver(rec))
	kind := Kind("obs.fwd")
	nw.RegisterHandler(kind, func(nw *Network, node *NodeState, m *Message) {
		if node.ID < 4 {
			nw.Send(node.ID, node.ID+1, kind, 0, 16, nil)
		}
	})
	nw.Spawn("kick", func(p *Proc) error {
		nw.Send(1, 2, kind, 0, 16, nil)
		p.AwaitQuiescence()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.rounds == 0 {
		t.Fatal("RoundEnd never fired")
	}
	if rec.messages != nw.counters.messages || rec.bits != nw.counters.bits {
		t.Errorf("last RoundEnd saw (%d msgs, %d bits), network totals (%d, %d)",
			rec.messages, rec.bits, nw.counters.messages, nw.counters.bits)
	}
	if rec.opened == 0 || rec.opened != rec.done {
		t.Errorf("sessions opened=%d done=%d — want equal and nonzero", rec.opened, rec.done)
	}
	if rec.failed != 0 {
		t.Errorf("%d sessions reported failed", rec.failed)
	}
}

// TestPhaseMeterDeltas checks PhaseMeter's ledger-delta arithmetic: two
// consecutive phases of known traffic produce exact per-phase costs with
// class breakdowns sorted by class name.
func TestPhaseMeterDeltas(t *testing.T) {
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	ka := Kind("pma.x")
	kb := Kind("pmb.y")
	noop := func(*Network, *NodeState, *Message) {}
	nw.RegisterHandler(ka, noop)
	nw.RegisterHandler(kb, noop)
	send := func(kind KindID, n int, bits int) {
		nw.Spawn("sender", func(p *Proc) error {
			for i := 0; i < n; i++ {
				nw.Send(1, 2, kind, 0, bits, nil)
			}
			p.AwaitQuiescence()
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	var meter PhaseMeter
	meter.Begin(nw)
	send(ka, 3, 8)
	costA := meter.End()
	meter.Begin(nw)
	send(ka, 1, 8)
	send(kb, 2, 32)
	costB := meter.End()

	wantA := uint64(3 * (8 + FramingBits))
	if costA.Messages != 3 || costA.Bits != wantA {
		t.Errorf("phase A cost = (%d msgs, %d bits), want (3, %d)", costA.Messages, costA.Bits, wantA)
	}
	if len(costA.Classes) != 1 || costA.Classes[0].Class != "pma" || costA.Classes[0].Messages != 3 {
		t.Errorf("phase A classes = %+v, want one pma class with 3 messages", costA.Classes)
	}
	wantB := uint64(1*(8+FramingBits) + 2*(32+FramingBits))
	if costB.Messages != 3 || costB.Bits != wantB {
		t.Errorf("phase B cost = (%d msgs, %d bits), want (3, %d)", costB.Messages, costB.Bits, wantB)
	}
	if len(costB.Classes) != 2 || costB.Classes[0].Class != "pma" || costB.Classes[1].Class != "pmb" {
		t.Errorf("phase B classes = %+v, want pma then pmb (sorted by name)", costB.Classes)
	}
	if costB.Classes[0].Messages != 1 || costB.Classes[1].Messages != 2 {
		t.Errorf("phase B class counts = %+v, want pma=1 pmb=2", costB.Classes)
	}
}
