package congest

import (
	"context"
	"fmt"
	"strings"
)

// Watchdog bounds a Run's progress in scheduler time. All budgets are in
// clock units (rounds under the synchronous scheduler, virtual time under
// the asynchronous one) — never wall clock, so an armed watchdog that does
// not trip changes nothing observable: seeded reports stay byte-identical
// with the watchdog on or off, mirroring the Observer's passivity
// contract. The disabled path (no WithWatchdog option) costs one counter
// increment per session completion and one nil-flag check per delivery
// batch; no allocations.
type Watchdog struct {
	// MaxTime fails the Run once the clock passes it (0 = unbounded). The
	// whole-run budget: a trial that should finish in ~10k rounds with a
	// MaxTime of 1M only trips if something is genuinely wrong.
	MaxTime int64
	// StallTime fails the Run when the clock advances this far with no
	// session completing (0 = no stall detection). Sessions complete on
	// every driver finish and every protocol echo, so a healthy run
	// completes sessions constantly; a livelock (messages bouncing forever
	// with no driver progress) is exactly a clock that advances without
	// completions.
	StallTime int64
	// SessionTime fails the Run when any single open session outlives this
	// many clock units (0 = no per-session budget). Swept periodically —
	// a trip is detected within wdSweepEvery delivery batches of the
	// budget being exceeded, not at the exact round.
	SessionTime int64
}

func (w Watchdog) enabled() bool {
	return w.MaxTime > 0 || w.StallTime > 0 || w.SessionTime > 0
}

// WithWatchdog arms the engine watchdog for every Run on the network.
func WithWatchdog(w Watchdog) Option { return func(c *config) { c.wd = w } }

// WithContext attaches a cancellation context: Run fails with a
// *WatchdogError (Reason "cancelled") at the first delivery batch after
// ctx is done. This is the one wall-clock hole in the determinism story,
// by design — a cancelled trial reports an error, never metrics, so
// cancellation cannot perturb a successful report.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// StuckDriver identifies one parked driver in a watchdog dump.
type StuckDriver struct {
	Name    string // diagnostic driver name
	Session uint64 // serial of the session it awaits
}

// StuckSession identifies one over-budget (or oldest-open) session in a
// watchdog dump.
type StuckSession struct {
	Serial uint64
	Age    int64 // clock units since the session opened
}

// WatchdogError is the structured diagnostic a tripped watchdog (or a
// cancelled context) fails the Run with: enough engine state to see what
// wedged without attaching a debugger to a hung process.
type WatchdogError struct {
	Reason            string // "round budget exceeded", "quiescence stall", "session budget exceeded", "cancelled: ..."
	Now               int64  // scheduler clock at the trip
	LastProgress      int64  // clock of the last session completion
	Completions       uint64 // sessions completed so far
	RunQueue          int    // pending run-queue entries (runnable drivers)
	LiveDrivers       int    // unfinished drivers (both models)
	OpenSessions      int    // allocated session slots
	PendingQuiescence int    // sessions waiting on a quiescence callback
	// Stuck lists up to maxStuckReported parked drivers; StuckMore counts
	// the rest. StuckSessions lists the oldest open sessions.
	Stuck         []StuckDriver
	StuckMore     int
	StuckSessions []StuckSession
}

// maxStuckReported bounds the dump so a million-driver fan-out cannot turn
// a diagnostic into a memory spike.
const maxStuckReported = 8

// wdSweepEvery is how many watchdog checks (one per delivery batch) pass
// between per-session budget sweeps; the sweep walks the whole slot table,
// so it must not run every batch.
const wdSweepEvery = 256

// Error renders the dump: a one-line summary followed by the stuck lists,
// stable enough to grep ("watchdog:", "stuck") in CI gates.
func (e *WatchdogError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "congest: watchdog: %s (clock %d, last progress %d, %d completions, runq %d, live drivers %d, open sessions %d, pending quiescence %d)",
		e.Reason, e.Now, e.LastProgress, e.Completions, e.RunQueue, e.LiveDrivers, e.OpenSessions, e.PendingQuiescence)
	if len(e.Stuck) > 0 {
		b.WriteString("; stuck drivers:")
		for _, s := range e.Stuck {
			fmt.Fprintf(&b, " %s(awaiting session %d)", s.Name, s.Session)
		}
		if e.StuckMore > 0 {
			fmt.Fprintf(&b, " +%d more", e.StuckMore)
		}
	}
	if len(e.StuckSessions) > 0 {
		b.WriteString("; oldest sessions:")
		for _, s := range e.StuckSessions {
			fmt.Fprintf(&b, " %d(age %d)", s.Serial, s.Age)
		}
	}
	return b.String()
}

// watchdogCheck runs once per delivery batch when a watchdog or context is
// attached. It returns the structured failure to abort the Run with, or
// nil.
func (nw *Network) watchdogCheck() error {
	if nw.ctx != nil {
		if err := nw.ctx.Err(); err != nil {
			return nw.watchdogTrip("cancelled: " + err.Error())
		}
	}
	if !nw.wdArmed {
		return nil
	}
	now := nw.sched.now()
	if nw.completions != nw.wdSeen {
		nw.wdSeen = nw.completions
		nw.wdLastProgress = now
	}
	if nw.wd.MaxTime > 0 && now > nw.wd.MaxTime {
		return nw.watchdogTrip("round budget exceeded")
	}
	if nw.wd.StallTime > 0 && now-nw.wdLastProgress > nw.wd.StallTime {
		return nw.watchdogTrip("quiescence stall")
	}
	if nw.wd.SessionTime > 0 {
		nw.wdChecks++
		if nw.wdChecks%wdSweepEvery == 0 {
			for i := range nw.slots {
				s := &nw.slots[i]
				if s.id != 0 && !s.completed && now-s.openedAt > nw.wd.SessionTime {
					return nw.watchdogTrip("session budget exceeded")
				}
			}
		}
	}
	return nil
}

// watchdogTrip assembles the diagnostic dump from live engine state.
func (nw *Network) watchdogTrip(reason string) *WatchdogError {
	now := nw.sched.now()
	e := &WatchdogError{
		Reason:            reason,
		Now:               now,
		LastProgress:      nw.wdLastProgress,
		Completions:       nw.completions,
		RunQueue:          len(nw.runq),
		LiveDrivers:       nw.live,
		PendingQuiescence: len(nw.quiescent),
	}
	for i := range nw.slots {
		s := &nw.slots[i]
		if s.id != 0 {
			e.OpenSessions++
		}
	}
	addStuck := func(name string, awaiting SessionID) {
		if len(e.Stuck) < maxStuckReported {
			e.Stuck = append(e.Stuck, StuckDriver{Name: name, Session: awaiting.Serial()})
		} else {
			e.StuckMore++
		}
	}
	for _, p := range nw.allProcs {
		if !p.finished && p.awaiting != 0 {
			addStuck(p.Name(), p.awaiting)
		}
	}
	for _, t := range nw.allTasks {
		if !t.finished && t.awaiting != 0 {
			addStuck(t.Name(), t.awaiting)
		}
	}
	// The oldest open sessions, by age (only meaningful when the watchdog
	// is armed: openedAt is stamped then). A bounded selection pass, not a
	// sort — the slot table can be large.
	if nw.wdArmed {
		for i := range nw.slots {
			s := &nw.slots[i]
			if s.id == 0 || s.completed {
				continue
			}
			age := now - s.openedAt
			if len(e.StuckSessions) < maxStuckReported {
				e.StuckSessions = append(e.StuckSessions, StuckSession{Serial: s.id.Serial(), Age: age})
				continue
			}
			// Replace the youngest reported session if this one is older.
			youngest := 0
			for j := 1; j < len(e.StuckSessions); j++ {
				if e.StuckSessions[j].Age < e.StuckSessions[youngest].Age {
					youngest = j
				}
			}
			if age > e.StuckSessions[youngest].Age {
				e.StuckSessions[youngest] = StuckSession{Serial: s.id.Serial(), Age: age}
			}
		}
	}
	return e
}
