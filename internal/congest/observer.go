package congest

import "sort"

// Observer receives engine trace events. The engine drives it only at its
// natural barriers — never from inside a shard worker — so every callback
// runs on the engine goroutine, in an order that is identical across shard
// counts and driver models:
//
//   - RoundEnd fires after a delivery batch has fully applied (for sharded
//     rounds: after the ordered merge folded every lane's counter block into
//     the root ledger), so the totals it carries are the exact
//     single-threaded values.
//   - SessionOpen fires from NewSession, which is driver-context-only by
//     construction.
//   - SessionDone fires on the root path of session completion. A completion
//     issued inside a sharded handler is deferred into the shard's ordered
//     lane and replayed at the merge, so the hook still fires on the engine
//     goroutine in single-threaded order.
//   - PhaseStart/PhaseEnd/RepairStart/RepairDone/Count are protocol-layer
//     annotations, called from drivers between rounds.
//
// Observers must treat every slice argument as read-only and must not retain
// it past the call — the engine reuses the backing arrays. Observer state
// must never feed back into engine or protocol decisions: the determinism
// contract is that a run's outputs are byte-identical with the observer on
// or off.
//
// The disabled path is a nil check on the per-round (not per-message) hooks
// and costs no allocations, which is what keeps the committed AllocsPerRun
// and benchcheck gates unmoved.
type Observer interface {
	// RoundEnd reports the cost ledger after one delivery batch: the
	// scheduler clock, cumulative totals, the per-kind breakdown indexed by
	// KindID, and — under the sharded engine — the cumulative number of
	// messages each shard worker has handled (nil when unsharded).
	RoundEnd(now int64, messages, bits uint64, byKind []KindCount, shardLoad []uint64)
	// SessionOpen reports a session's creation serial.
	SessionOpen(serial uint64, now int64)
	// SessionDone reports a session completion; failed is true when it
	// completed with an error.
	SessionDone(serial uint64, now int64, failed bool)
	// PhaseStart reports a protocol phase boundary (e.g. one Borůvka phase)
	// with the fragment count the phase starts from.
	PhaseStart(proto string, phase, fragments int, now int64)
	// PhaseEnd reports the finished phase's cost.
	PhaseEnd(proto string, phase int, now int64, cost PhaseCosts)
	// RepairStart reports the beginning of a repair operation (op names the
	// operation, e.g. "mst.delete").
	RepairStart(op string, now int64)
	// RepairDone reports a finished repair: its outcome label, round
	// latency, and message/bit cost.
	RepairDone(op, action string, now int64, rounds int64, messages, bits uint64)
	// Count bumps a named protocol lifecycle counter (e.g. FindMin
	// terminations by reason).
	Count(name string, delta uint64)
}

// WithObserver attaches an observer to the network. Pass a non-nil observer
// only — the option exists so the enabled path is opt-in and the default
// remains a nil field checked once per round.
func WithObserver(o Observer) Option { return func(c *config) { c.obs = o } }

// Obs returns the attached observer (nil when disabled). Protocol layers
// call it from driver context to emit phase and lifecycle annotations:
//
//	if o := nw.Obs(); o != nil { o.PhaseStart("mst", phase, frags, nw.Now()) }
func (nw *Network) Obs() Observer { return nw.obs }

// observeRound emits the RoundEnd hook; the caller checks nw.obs != nil.
func (nw *Network) observeRound(shardLoad []uint64) {
	nw.obs.RoundEnd(nw.sched.now(), nw.counters.messages, nw.counters.bits, nw.counters.byKind, shardLoad)
}

// ClassCost is the message/bit tally of one kind class (the dot-prefix of
// the kind name: "tree.up" and "tree.down" both fold into class "tree").
// Serialized into per-phase timelines, so the fields carry JSON tags.
type ClassCost struct {
	Class    string `json:"class"`
	Messages uint64 `json:"messages"`
	Bits     uint64 `json:"bits"`
}

// PhaseCosts is the cost of one metered protocol phase: totals plus the
// per-class breakdown, sorted by class name so serialized timelines are
// stable across binaries regardless of kind-interning order.
type PhaseCosts struct {
	Messages uint64      `json:"messages"`
	Bits     uint64      `json:"bits"`
	Rounds   int64       `json:"rounds"`
	Classes  []ClassCost `json:"classes,omitempty"`
}

// PhaseMeter measures one protocol phase against the network's cost ledger
// without snapshotting it into maps: Begin copies the per-kind array into a
// reused scratch buffer, End folds the deltas into per-class sums. The only
// steady-state allocation is the returned Classes slice (one small slice
// per phase). Driver-context only, like the ledger reads it wraps.
type PhaseMeter struct {
	nw            *Network
	startMessages uint64
	startBits     uint64
	startRounds   int64
	startKinds    []KindCount
	classScratch  []KindCount
}

// Begin marks the start of a phase.
func (pm *PhaseMeter) Begin(nw *Network) {
	pm.nw = nw
	pm.startMessages = nw.counters.messages
	pm.startBits = nw.counters.bits
	pm.startRounds = nw.sched.now()
	pm.startKinds = append(pm.startKinds[:0], nw.counters.byKind...)
}

// End returns the cost accumulated since Begin.
func (pm *PhaseMeter) End() PhaseCosts {
	nw := pm.nw
	cost := PhaseCosts{
		Messages: nw.counters.messages - pm.startMessages,
		Bits:     nw.counters.bits - pm.startBits,
		Rounds:   nw.sched.now() - pm.startRounds,
	}
	classOf, classNames := kindClassTable()
	if cap(pm.classScratch) < len(classNames) {
		pm.classScratch = make([]KindCount, len(classNames))
	}
	scratch := pm.classScratch[:len(classNames)]
	for i := range scratch {
		scratch[i] = KindCount{}
	}
	active := 0
	for k := range nw.counters.byKind {
		d := nw.counters.byKind[k]
		if k < len(pm.startKinds) {
			d.Messages -= pm.startKinds[k].Messages
			d.Bits -= pm.startKinds[k].Bits
		}
		if d.Messages == 0 && d.Bits == 0 {
			continue
		}
		c := &scratch[classOf[k]]
		if c.Messages == 0 && c.Bits == 0 {
			active++
		}
		c.Messages += d.Messages
		c.Bits += d.Bits
	}
	if active > 0 {
		classes := make([]ClassCost, 0, active)
		for c := range scratch {
			if kc := scratch[c]; kc.Messages != 0 || kc.Bits != 0 {
				classes = append(classes, ClassCost{Class: classNames[c], Messages: kc.Messages, Bits: kc.Bits})
			}
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i].Class < classes[j].Class })
		cost.Classes = classes
	}
	return cost
}
