package congest

import (
	"kkt/internal/shard"
)

// This file is the sharded executor: the engine hooks that let one
// delivery batch — a synchronous round, or an asynchronous same-tick
// group — run on parallel workers while staying observably identical to
// the single-threaded engine.
//
// How the equivalence works. The single-threaded engine delivers a batch
// in order 0..len-1; each handler's side effects (sends, session
// completions) apply immediately, so later deliveries see the
// concatenation of every handler's emissions in batch order. The sharded
// engine splits the batch by destination shard (each message's handler
// touches only the destination node, so shards never share node state),
// runs the shards concurrently, and has every side effect divert into the
// shard's ordered lane keyed by the triggering message's global batch
// index. The merge then replays the lanes in (batch index, emission
// order) — exactly the single-threaded order — assigning global sequence
// numbers, scheduling sends and applying completions on the engine
// goroutine. Counter deltas accumulate per shard and sum at the barrier;
// uint64 addition is exact and commutative, so totals match to the bit.
//
// Under the asynchronous scheduler the same argument carries over because
// a batch is one tick group: every message shares one deliverAt, so the
// clock a merged send observes — and with it the delay draw, the FIFO
// bump (the merge hands schedule the sender's half-edge cell) and any
// window-conflict routing — is exactly what the inline replay would have
// computed, in the same RNG stream order.
//
// Everything drivers do (sessions, spawns, topology mutation, staged-mark
// barriers) happens strictly between rounds on the engine goroutine and
// needs no changes. The round barrier itself is the only synchronization:
// workers own disjoint node state during a round, the engine owns
// everything between rounds.

// laneOp is one deferred side effect of a sharded handler: a staged send
// (m != nil) or a session completion.
type laneOp struct {
	m        *Message
	sid      SessionID
	w        Wake
	complete bool
}

// shardLane is one shard's execution context during a round: the ordered
// effect stream, the shard-private message free list and counter block,
// and the batch index of the message currently being handled (the parent
// key of every effect it emits).
type shardLane struct {
	id       int
	parent   int32
	counters ledger
	msgFree  []*Message
	out      *shard.Outbox[laneOp]
	// handled counts the messages this shard's handlers processed during
	// the round; folded into shardEngine.load at the barrier so observers
	// see per-shard work attribution without touching worker state.
	handled  uint64
	panicked bool
	panicVal any
}

// subMsg is one batch entry routed to a shard: the message plus its global
// batch index.
type subMsg struct {
	m   *Message
	idx int32
}

// shardEngine is the per-network sharded executor. The views, lanes and
// buffers persist across rounds and Runs (so free lists stay warm); only
// the worker goroutines are created per Run and torn down with it, keeping
// abandoned networks free of parked goroutines.
type shardEngine struct {
	part    shard.Partition
	views   []*Network
	lanes   []*shardLane
	out     shard.Outbox[laneOp]
	workers *shard.Workers
	// roundFn is the hoisted worker closure: one allocation per engine,
	// not one per round.
	roundFn func(s int)
	sub     [][]subMsg
	// owner is the destination shard per batch index this round; uint16
	// covers the partition's 1024-shard cap.
	owner []uint16
	// load is the cumulative handled-message count per shard, folded from
	// the lanes at each barrier alongside the counter blocks.
	load []uint64
}

// ensureShardEngine builds (or refreshes) the sharded executor at Run
// start. Views are shallow copies of the root network taken after all
// handlers are registered; they share every immutable structure and differ
// only in their lane pointer, which diverts the mutating operations.
func (nw *Network) ensureShardEngine() *shardEngine {
	se := nw.shardEng
	if se == nil {
		se = &shardEngine{
			part:  shard.NewPartition(nw.N(), nw.shards),
			views: make([]*Network, nw.shards),
			lanes: make([]*shardLane, nw.shards),
			sub:   make([][]subMsg, nw.shards),
			load:  make([]uint64, nw.shards),
		}
		for s := 0; s < nw.shards; s++ {
			se.lanes[s] = &shardLane{id: s, out: &se.out}
			se.views[s] = &Network{}
		}
		se.roundFn = func(s int) { se.runShard(s) }
		nw.shardEng = se
	}
	for s, v := range se.views {
		l := se.lanes[s]
		*v = *nw // refresh: handlers registered since the last Run
		v.lane = l
		l.counters.ensure(len(nw.handlers))
	}
	se.workers = shard.NewWorkers(nw.shards)
	return se
}

// deliverSharded delivers one batch (a synchronous round or an async tick
// group) on the shard workers and merges the deferred effects
// deterministically.
func (nw *Network) deliverSharded(se *shardEngine, batch []*Message) {
	// Split by destination shard, remembering each batch index's owner —
	// the merge cannot consult the messages themselves, since workers
	// recycle (and later sends reuse) them mid-round.
	se.owner = se.owner[:0]
	for i, m := range batch {
		s := se.part.Of(int(m.To))
		se.owner = append(se.owner, uint16(s))
		se.sub[s] = append(se.sub[s], subMsg{m: m, idx: int32(i)})
	}
	se.out.Reset(len(se.lanes))
	se.workers.Round(se.roundFn)
	for i := range batch {
		batch[i] = nil // the scheduler recycles the batch slice
	}
	// A handler panic must surface exactly as in the single-threaded run:
	// the panic of the lowest batch index wins (each lane stops at its
	// first, and lanes process ascending indices, so the minimum over
	// lanes is the globally first one).
	var panicVal any
	panicAt := int32(-1)
	for _, l := range se.lanes {
		if l.panicked && (panicAt < 0 || l.parent < panicAt) {
			panicAt, panicVal = l.parent, l.panicVal
		}
		l.panicked, l.panicVal = false, nil
	}
	if panicAt >= 0 {
		panic(panicVal)
	}
	// Merge: replay effects in single-threaded order, then fold the
	// shard counter blocks into the root ledger.
	se.out.Merge(len(batch), func(parent int32) int { return int(se.owner[parent]) }, func(op laneOp) {
		if op.complete {
			nw.completeSession(op.sid, op.w)
			return
		}
		nw.nextSeq++
		op.m.seq = nw.nextSeq
		nw.sched.schedule(op.m, nw.fifoCell(op.m.From, op.m.To))
	})
	for i, l := range se.lanes {
		nw.counters.merge(&l.counters)
		l.counters.reset()
		se.load[i] += l.handled
		l.handled = 0
	}
	// Message structs flow one way by default: driver sends draw from the
	// root free list, deliveries recycle into lane lists. Top the root
	// list back up at the barrier so session-starting drivers stay
	// allocation-free instead of slowly draining into the lanes.
	const rootFreeTarget = 256
	for _, l := range se.lanes {
		for len(l.msgFree) > 0 && len(nw.msgFree) < rootFreeTarget {
			n := len(l.msgFree) - 1
			nw.msgFree = append(nw.msgFree, l.msgFree[n])
			l.msgFree[n] = nil
			l.msgFree = l.msgFree[:n]
		}
		if len(nw.msgFree) >= rootFreeTarget {
			break
		}
	}
}

// runShard processes one shard's slice of the round on its worker: run
// each handler against the shard view, recycle the message into the
// shard's free list, and trap the first panic for deterministic rethrow.
func (se *shardEngine) runShard(s int) {
	v := se.views[s]
	l := v.lane
	sub := se.sub[s]
	defer func() {
		se.sub[s] = sub[:0]
		if r := recover(); r != nil {
			l.panicked, l.panicVal = true, r
		}
	}()
	for _, sm := range sub {
		m := sm.m
		l.parent = sm.idx
		h := v.handlers[m.Kind] // non-nil: Send checks registration
		node := v.nodes[m.To]
		if node.edgePos(m.From) >= 0 {
			h(v, node, m)
			l.handled++
		}
		// else: the link vanished while the message was in flight.
		v.putMessage(m)
	}
}

// closeShardEngine parks the executor at Run end: worker goroutines exit,
// everything else (views, lanes, warm free lists) stays for the next Run.
func (nw *Network) closeShardEngine(se *shardEngine) {
	se.workers.Close()
	se.workers = nil
}
