package congest

import (
	"testing"

	"kkt/internal/race"

	"kkt/internal/graph"
)

// allocBudget fails the test when avg exceeds budget. The budgets are
// small constants sized to cover driver spawning (goroutine, channels)
// plus slack — far below the message or node counts involved — so any
// reintroduced per-message or per-node churn trips them loudly.
func allocBudget(t *testing.T, what string, avg, budget float64) {
	t.Helper()
	if avg > budget {
		t.Errorf("%s: %.1f allocs, budget %.1f — per-message/per-node churn reintroduced?", what, avg, budget)
	}
}

// TestAsyncDeliverPathAllocs pins the asynchronous send->schedule->deliver
// cycle at zero steady-state allocations: after one warm-up wave the
// Message free list, calendar buckets and per-link FIFO cells are all
// recycled, so 512 deliveries must cost no more than the constant driver
// setup.
func TestAsyncDeliverPathAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	const msgs = 512
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g, WithAsync(4), WithSeed(7))
	kind := Kind("alloc.async")
	nw.RegisterHandler(kind, func(*Network, *NodeState, *Message) {})
	wave := func() {
		nw.Spawn("sender", func(p *Proc) error {
			for i := 0; i < msgs; i++ {
				nw.Send(1, 2, kind, 0, 8, nil)
			}
			p.AwaitQuiescence()
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave() // warm the free list and calendar buckets
	avg := testing.AllocsPerRun(5, wave)
	allocBudget(t, "async deliver wave (512 messages)", avg, 32)
}

// TestSyncDeliverPathAllocs is the synchronous-scheduler counterpart.
func TestSyncDeliverPathAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	const msgs = 512
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	kind := Kind("alloc.sync")
	nw.RegisterHandler(kind, func(*Network, *NodeState, *Message) {})
	wave := func() {
		nw.Spawn("sender", func(p *Proc) error {
			for i := 0; i < msgs; i++ {
				nw.Send(1, 2, kind, 0, 8, nil)
			}
			p.AwaitQuiescence()
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave()
	avg := testing.AllocsPerRun(5, wave)
	allocBudget(t, "sync deliver wave (512 messages)", avg, 32)
}

// TestSessionLifecycleAllocs pins the session slot table: creating,
// completing and awaiting sessions recycles slots instead of allocating
// session records or map entries.
func TestSessionLifecycleAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	const sessions = 256
	g := graph.Path(2, 1, graph.UnitWeights())
	nw := NewNetwork(g)
	kind := Kind("alloc.sess")
	nw.RegisterHandler(kind, func(nw *Network, node *NodeState, msg *Message) {
		nw.CompleteSessionU(msg.Session, msg.U, nil)
	})
	wave := func() {
		nw.Spawn("driver", func(p *Proc) error {
			for i := 0; i < sessions; i++ {
				sid := nw.NewSession(nil)
				nw.SendU(1, 2, kind, sid, 8, uint64(i))
				if u, err := p.AwaitU(sid); err != nil || u != uint64(i) {
					t.Errorf("session %d: u=%d err=%v", i, u, err)
				}
			}
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave()
	avg := testing.AllocsPerRun(5, wave)
	allocBudget(t, "session lifecycle (256 unboxed sessions)", avg, 32)
}
