// Package congest is the communications substrate: a message-level
// simulator of the CONGEST model the paper runs in.
//
// A Network holds one NodeState per processor. Processors exchange
// Messages only along existing links; every message is counted (count and
// bits) and must fit the O(log(n+u)) budget — with the model word fixed at
// w = 64 bits, a message is at most a constant number of words.
//
// Protocol logic comes in three forms:
//
//   - handlers: per-message automaton steps registered by Kind. A handler
//     may read/write only the local state of the receiving node and send
//     further messages. This is where broadcast-and-echo, leader election,
//     probes etc. live (package tree and friends).
//
//   - goroutine drivers (Proc): the sequential program an initiating node
//     runs, e.g. FindMin's narrowing loop, written as an ordinary Go
//     function that parks on Await. Drivers are goroutines scheduled
//     cooperatively: at any instant either the engine or exactly one
//     driver executes, so runs are deterministic for a fixed seed and free
//     of data races by construction.
//
//   - continuation drivers (Task wrapping a StepDriver): the same driver
//     programs as explicit state machines stepped by the engine with no
//     goroutine, no channels and no parked stack. Wide fan-outs (one
//     driver per fragment per Borůvka phase — a million at 1M nodes) use
//     these; the Proc API remains for tests, controllers and the blocking
//     repair paths. Both models share one run queue and one scheduling
//     order, so they are observably identical.
//
// Two schedulers implement the paper's two timing models: the synchronous
// scheduler delivers in lockstep rounds (messages sent in round r arrive
// in round r+1); the asynchronous scheduler delivers tick groups — all
// messages sharing the earliest pending virtual time, extracted in bounded
// windows from a calendar queue — with seeded pseudo-random delays and
// per-link FIFO order. Emissions landing inside the open window are routed
// to their exact reference position, so windowed (and sharded) async
// delivery is byte-identical to a one-event-at-a-time replay.
//
// # Invariants
//
// Zero-alloc hot paths. Steady-state message delivery allocates nothing:
// message kinds are interned to small integer KindIDs (dispatch via
// slice, counters via array), Message structs are recycled through free
// lists, each node's neighbour index is the sorted Edges slice itself
// (binary search, no side map), and the async scheduler is a bucketed
// calendar queue instead of a global binary heap. Driver fan-out is
// pooled in both models: Proc goroutines+channels and Task objects
// recycle within one Run (WaitAll/WaitTasks release; Run teardown
// drains), and tagged names format lazily. testing.AllocsPerRun gates in
// this package pin all of it.
//
// Session slot recycling. A SessionID packs a recycled slot index with a
// monotonically increasing creation serial; the slot indexes the engine's
// flat session table and the serial is the slot's generation stamp, so a
// stale ID can never alias a reused slot. A session's result is consumed
// exactly once (completion hands it straight to a parked waiter, or a
// later Await/Step pops it), which is what lets the slot recycle
// immediately. Serials are what deterministic derived randomness hashes
// (tree.Protocol.NodeRand): they never depend on recycling order, shard
// count or driver model.
//
// Determinism. For a fixed seed, every run is byte-identical in all
// observables — delivery order, driver scheduling, session serials,
// derived random draws, every counter — regardless of shard count
// (WithShards) and regardless of driver model. Spawns and completions
// append to one run queue drained in order; the sharded round barrier
// replays worker effects in single-threaded order before the queue is
// drained again (see shard.go and the shard-view restrictions below).
//
// Shard views. During a sharded round, handlers run on per-shard *Network
// views whose mutating operations divert into an ordered per-shard lane;
// operations that would tie global state to delivery interleaving
// (NewSession, Rand) panic on a view. Handlers must route every engine
// call through the *Network they are handed, never a captured root
// network. Near-empty rounds are delivered inline on the engine goroutine
// (the reference order) rather than paying the worker barrier.
package congest
