package primes

import (
	"testing"
	"testing/quick"
)

func TestIsPrimeSmall(t *testing.T) {
	// Sieve up to 10000 and compare exhaustively.
	const n = 10000
	composite := make([]bool, n+1)
	for i := 2; i*i <= n; i++ {
		if !composite[i] {
			for j := i * i; j <= n; j += i {
				composite[j] = true
			}
		}
	}
	for i := uint64(0); i <= n; i++ {
		want := i >= 2 && !composite[i]
		if got := IsPrime(i); got != want {
			t.Fatalf("IsPrime(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestIsPrimeKnownLarge(t *testing.T) {
	tests := []struct {
		n    uint64
		want bool
	}{
		{MersennePrime61, true},
		{MersennePrime61 - 1, false},
		{18446744073709551557, true},  // largest uint64 prime
		{18446744073709551615, false}, // 2^64-1 = 3*5*17*257*641*65537*6700417
		{1<<62 - 57, true},
		{4611686018427387904, false}, // 2^62
		{2147483647, true},           // 2^31-1 Mersenne
		{3215031751, false},          // strong pseudoprime to bases 2,3,5,7
		{3825123056546413051, false}, // strong pseudoprime to bases 2..23
	}
	for _, tt := range tests {
		if got := IsPrime(tt.n); got != tt.want {
			t.Errorf("IsPrime(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	tests := []struct{ in, want uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {20, 23},
		{1 << 20, 1048583},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.in); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestNextPrimeIsPrimeAndMinimal(t *testing.T) {
	f := func(x uint32) bool {
		n := uint64(x)
		p := NextPrime(n)
		if p < n || !IsPrime(p) {
			return false
		}
		for q := n; q < p; q++ {
			if IsPrime(q) {
				return false // skipped a prime
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMulModAgainstBigIntSemantics(t *testing.T) {
	f := func(a, b uint64, m uint64) bool {
		if m == 0 {
			m = 1
		}
		got := MulMod(a, b, m)
		// check via 128-bit decomposition: (a*b) mod m computed with
		// schoolbook splitting into 32-bit halves.
		want := slowMulMod(a, b, m)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// slowMulMod is an independent reference: double-and-add.
func slowMulMod(a, b, m uint64) uint64 {
	a %= m
	var acc uint64
	for b > 0 {
		if b&1 == 1 {
			// acc = (acc + a) mod m without 64-bit overflow
			if acc >= m-a && a > 0 {
				acc -= m - a
			} else {
				acc += a
			}
		}
		// a = 2a mod m without overflow
		if a >= m-a {
			a = a - (m - a)
		} else {
			a = a + a
		}
		b >>= 1
	}
	return acc
}

func TestPowMod(t *testing.T) {
	tests := []struct{ a, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{3, 0, 7, 1},
		{5, 1, 7, 5},
		{7, 100, 13, PowModNaive(7, 100, 13)},
		{0, 0, 5, 1},
		{10, 5, 1, 0},
	}
	for _, tt := range tests {
		if got := PowMod(tt.a, tt.e, tt.m); got != tt.want {
			t.Errorf("PowMod(%d,%d,%d) = %d, want %d", tt.a, tt.e, tt.m, got, tt.want)
		}
	}
}

// PowModNaive is an independent O(e) reference for small exponents.
func PowModNaive(a, e, m uint64) uint64 {
	r := uint64(1) % m
	for i := uint64(0); i < e; i++ {
		r = (r * a) % m
	}
	return r
}

func TestFermatOnMersenne61(t *testing.T) {
	// a^(p-1) = 1 mod p for prime p: spot-check the default modulus.
	p := MersennePrime61
	for _, a := range []uint64{2, 3, 12345678901234567, p - 2} {
		if got := PowMod(a, p-1, p); got != 1 {
			t.Errorf("Fermat failed for a=%d: got %d", a, got)
		}
	}
}
