// Package primes provides deterministic primality testing and prime search
// for 64-bit integers. HP-TestOut (paper §2.2) needs a prime
// p > max{maxEdgeNum(T), B/eps(n)} to drive Schwartz-Zippel polynomial
// identity testing over Z_p; this package supplies it.
package primes

import "math/bits"

// MersennePrime61 is 2^61 - 1, the Mersenne prime used as the default
// modulus for HP-TestOut. The paper notes (§2.2) that when the word size w
// is known to all nodes, p may be a predetermined value with |p| < w;
// 2^61-1 exceeds every edge number the layout can produce (< 2^60) and
// keeps mulmod within uint64 intermediate range.
const MersennePrime61 = uint64(1)<<61 - 1

// mrBases is a deterministic witness set: testing against these seven bases
// is known to be correct for all n < 3.4e24, which covers uint64.
var mrBases = [...]uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022}

// IsPrime reports whether n is prime, deterministically for all uint64.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 = d * 2^r with d odd.
	d := n - 1
	r := uint(bits.TrailingZeros64(d))
	d >>= r
	for _, a := range mrBases {
		a %= n
		if a == 0 {
			continue
		}
		if !millerRabinWitness(n, a, d, r) {
			return false
		}
	}
	return true
}

// millerRabinWitness returns false if a proves n composite.
func millerRabinWitness(n, a, d uint64, r uint) bool {
	x := PowMod(a, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := uint(1); i < r; i++ {
		x = MulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

// NextPrime returns the smallest prime >= n. It panics if no prime >= n
// fits in a uint64 (n > 18446744073709551557).
func NextPrime(n uint64) uint64 {
	const largestUint64Prime = 18446744073709551557
	if n > largestUint64Prime {
		panic("primes: no prime >= n fits in uint64")
	}
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// MulMod returns a*b mod m using a 128-bit intermediate, valid for all
// uint64 inputs with m > 0.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// PowMod returns a^e mod m by square-and-multiply, valid for all uint64
// inputs with m > 0.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, a, m)
		}
		a = MulMod(a, a, m)
		e >>= 1
	}
	return result
}
