// Package admit is the concurrent-repair admission queue: it turns a
// compiled fault-plan event list into waves of overlapping repair drivers,
// with deterministic conflict detection on fragment overlap and bounded,
// seeded retry backoff. See doc.go for the safety argument.
package admit

import (
	"kkt/internal/congest"
	"kkt/internal/faultplan"
)

// Skipped is the inline action for events whose target vanished (the edge
// to delete no longer exists, the pair to insert is already linked). The
// fault-plan compiler never emits such events against its own model, but
// the queue tolerates them defensively — a hand-written plan may race
// itself.
const Skipped = "skipped"

// Claim acquires the wave-start components of the given nodes. It is a
// single-pass check-and-acquire: either every component is free (all are
// acquired, returns true) or none is taken (returns false). A Launcher
// must call it at most once per Admit and must not mutate topology before
// a successful claim.
type Claim func(nodes ...congest.NodeID) bool

// Repair is one wave-mode repair in flight: a continuation-task driver
// plus the outcome label, valid once the task finished.
type Repair interface {
	congest.StepDriver
	Action() string
}

// Decision is a Launcher's verdict on one event.
type Decision struct {
	// Deferred: the claim failed; the event stays pending and retries in a
	// later wave. No topology was mutated.
	Deferred bool
	// Inline: the event was fully resolved at admission (no-op or skipped)
	// with no driver to run. Action carries the outcome label.
	Inline bool
	// Action is the outcome label for inline decisions (e.g. "no-op",
	// Skipped).
	Action string
	// Op is the observer operation label ("mst.delete", "st.insert", ...);
	// set for every non-deferred decision.
	Op string
	// Driver is the repair to launch in the current wave (nil for
	// inline/deferred decisions). The launcher has already applied the
	// event's topology mutation under the granted claim.
	Driver Repair
}

// Launcher adapts one maintained structure (weighted MSF, spanning forest)
// to the queue. Admit inspects an event against live topology and either
// resolves it inline, defers it (claim conflict), or — after acquiring the
// needed components via claim and applying the topology mutation — returns
// a driver for the wave. Release returns a finished driver to the
// launcher's pool.
type Launcher interface {
	Admit(ev faultplan.Event, opSeed uint64, claim Claim) Decision
	Release(r Repair)
}

// Config tunes the queue.
type Config struct {
	// Wave caps how many repair drivers run concurrently in one wave
	// (default 64).
	Wave int
	// MaxRetries bounds backoff growth: after this many conflicts an event
	// retries every wave (delay 0) until admitted (default 8).
	MaxRetries int
	// MaxBackoff bounds the seeded backoff delay, in waves (default 4).
	MaxBackoff int
	// Seed feeds the per-event operation seeds and the backoff hash.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Wave <= 0 {
		c.Wave = 64
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 4
	}
	return c
}

// Stats is the queue's cost accounting.
type Stats struct {
	// Repairs counts launched repair drivers; the amortization denominator.
	Repairs int
	// Inline counts events resolved at admission with no driver (includes
	// Skipped).
	Inline int
	// Skipped counts inline events whose target had vanished.
	Skipped int
	// Waves counts executed (non-empty) waves.
	Waves int
	// Retries counts admission conflicts (claim failures and same-edge
	// ordering blocks).
	Retries int
	// Actions tallies outcome labels across inline and driver repairs.
	Actions map[string]int
}

// item is one pending event.
type item struct {
	idx     int // index in the original event list (stable op seed)
	ev      faultplan.Event
	delay   int // waves to sit out before the next admission attempt
	retries int
}

// launchItem is one admitted driver awaiting its wave.
type launchItem struct {
	idx    int
	op     string
	driver Repair
	task   *congest.Task
}

// opSeedPrime matches the sequential storm harness's per-op seed mixing.
const opSeedPrime = 0xd6e8feb86659fd93

// backoffDelay is the seeded, deterministic retry delay in waves: a pure
// hash of (seed, event index, retry count), so reports stay byte-identical
// at any shard count.
func backoffDelay(seed uint64, idx, retries, maxBackoff int) int {
	h := seed ^ uint64(idx+1)*0x9e3779b97f4a7c15 ^ uint64(retries)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return 1 + int(h%uint64(maxBackoff))
}

// edgeOf is the order key: events on the same unordered pair must admit in
// list order (a heal insert must not overtake the partition delete that
// freed its slot).
func edgeOf(ev faultplan.Event) uint64 {
	a, b := uint64(ev.A), uint64(ev.B)
	if a > b {
		a, b = b, a
	}
	return a<<32 | b
}

// Queue is the drainable, suspendable form of the admission loop: events
// are Pushed in batches (a serving daemon feeds it one ingest epoch at a
// time), waves run one at a time via RunWave or to exhaustion via Drain,
// and Suspend captures the pending backlog so a checkpointed daemon can
// resume the exact admission schedule. Event indices are assigned at Push
// and grow monotonically across batches: an event's operation seed is a
// pure function of (Config.Seed, index), so a resumed queue derives the
// same per-op seeds as an uninterrupted one.
type Queue struct {
	cfg   Config
	stats Stats

	pending []*item
	nextIdx int

	// per-wave scratch, reused across waves
	uf      *unionFind
	claimed map[int32]bool
	blocked map[uint64]bool
	wave    []launchItem
}

// NewQueue returns an empty queue with the given (defaulted) config.
func NewQueue(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	return &Queue{
		cfg:     cfg,
		stats:   Stats{Actions: make(map[string]int)},
		uf:      newUnionFind(),
		claimed: make(map[int32]bool),
		blocked: make(map[uint64]bool),
		wave:    make([]launchItem, 0, cfg.Wave),
	}
}

// Push appends events to the pending backlog, assigning each the next
// monotone index.
func (q *Queue) Push(events ...faultplan.Event) {
	for _, ev := range events {
		q.pending = append(q.pending, &item{idx: q.nextIdx, ev: ev})
		q.nextIdx++
	}
}

// Pending returns the number of events not yet resolved (admitted inline,
// or launched and finished).
func (q *Queue) Pending() int { return len(q.pending) }

// Stats returns the queue's cumulative accounting. The Actions map is
// shared with the queue; callers must not mutate it while draining.
func (q *Queue) Stats() Stats { return q.stats }

// RunWave executes one admission scan and, if any drivers were admitted,
// one engine wave: recompute wave-start component labels from the marked
// forest, admit pending events in order under the claims discipline, run
// all admitted drivers concurrently as continuation tasks on one engine
// Run, then apply staged marks. An all-backoff scan launches nothing but
// still makes progress (delays decrement; the head of the queue admits at
// delay 0). Returns the number of drivers launched.
func (q *Queue) RunWave(nw *congest.Network, l Launcher) (int, error) {
	if len(q.pending) == 0 {
		return 0, nil
	}
	cfg := q.cfg
	obs := nw.Obs()

	// Wave-start labels: components of the currently-marked forest.
	q.uf.reset(nw)
	for k := range q.claimed {
		delete(q.claimed, k)
	}
	for k := range q.blocked {
		delete(q.blocked, k)
	}
	wave := q.wave[:0]

	claim := func(nodes ...congest.NodeID) bool {
		for _, v := range nodes {
			if q.claimed[q.uf.find(int32(v))] {
				return false
			}
		}
		for _, v := range nodes {
			q.claimed[q.uf.find(int32(v))] = true
		}
		return true
	}

	next := q.pending[:0]
	truncated := false
	for _, it := range q.pending {
		if truncated || len(wave) >= cfg.Wave {
			// Over the cap: stop admitting; order among the rest is
			// untouched, so no edge blocking is needed either.
			truncated = true
			next = append(next, it)
			continue
		}
		k := edgeOf(it.ev)
		if it.delay > 0 {
			it.delay--
			q.blocked[k] = true
			next = append(next, it)
			continue
		}
		if q.blocked[k] {
			// A not-yet-admitted earlier event touches the same edge:
			// admitting now would reorder same-edge operations.
			it.retries++
			q.stats.Retries++
			it.delay = retryDelay(cfg, it)
			next = append(next, it)
			continue
		}
		dec := l.Admit(it.ev, cfg.Seed^uint64(it.idx+1)*opSeedPrime, claim)
		switch {
		case dec.Deferred:
			it.retries++
			q.stats.Retries++
			it.delay = retryDelay(cfg, it)
			q.blocked[k] = true
			next = append(next, it)
		case dec.Inline:
			q.stats.Inline++
			q.stats.Actions[dec.Action]++
			if dec.Action == Skipped {
				q.stats.Skipped++
			} else if obs != nil {
				// Zero-cost bracket, mirroring the sequential no-op
				// paths.
				obs.RepairStart(dec.Op, nw.Now())
				obs.RepairDone(dec.Op, dec.Action, nw.Now(), 0, 0, 0)
			}
		default:
			q.stats.Repairs++
			// Block the admitted event's edge for the rest of the scan:
			// a later same-wave event on this pair (even an
			// inline-eligible one, e.g. an unmarked delete of a
			// just-inserted edge) must not mutate the edge the driver
			// is about to repair.
			q.blocked[k] = true
			wave = append(wave, launchItem{idx: it.idx, op: dec.Op, driver: dec.Driver})
		}
	}
	q.pending = next
	q.wave = wave[:0] // retain capacity; entries are cleared below
	if len(wave) == 0 {
		// Every pending event is sitting out a backoff delay; the scan
		// above already decremented them, and the head of the queue
		// always admits at delay 0, so this terminates.
		return 0, nil
	}

	base := nw.Counters()
	baseTime := nw.Now()
	if obs != nil {
		for i := range wave {
			obs.RepairStart(wave[i].op, baseTime)
		}
	}
	waveNo := uint64(q.stats.Waves)
	q.stats.Waves++
	nw.Spawn("repair-wave", func(p *congest.Proc) error {
		for i := range wave {
			wave[i].task = p.GoStepTagged("repair", waveNo, uint64(wave[i].idx), wave[i].driver)
		}
		tasks := make([]*congest.Task, len(wave))
		for i := range wave {
			tasks[i] = wave[i].task
		}
		return p.WaitTasks(tasks...)
	})
	if err := nw.Run(); err != nil {
		return len(wave), err
	}
	// Run returning implies full quiescence: every repair's staged
	// marks (including far-half markx) are in flight no longer.
	nw.ApplyStaged()

	delta := nw.CountersSince(base)
	dt := nw.Now() - baseTime
	perMsgs := delta.Messages / uint64(len(wave))
	perBits := delta.Bits / uint64(len(wave))
	doneTime := nw.Now()
	for i := range wave {
		action := wave[i].driver.Action()
		q.stats.Actions[action]++
		if obs != nil {
			// Wave-amortized cost: the engine interleaves the wave's
			// repairs, so per-repair attribution is the even split.
			obs.RepairDone(wave[i].op, action, doneTime, dt, perMsgs, perBits)
		}
		l.Release(wave[i].driver)
		wave[i].driver = nil
		wave[i].task = nil
	}
	return len(wave), nil
}

// Drain runs waves until the pending backlog is empty.
func (q *Queue) Drain(nw *congest.Network, l Launcher) error {
	for len(q.pending) > 0 {
		if _, err := q.RunWave(nw, l); err != nil {
			return err
		}
	}
	return nil
}

// PendingEvent is one suspended backlog entry.
type PendingEvent struct {
	Idx     int             `json:"idx"`
	Event   faultplan.Event `json:"event"`
	Delay   int             `json:"delay"`
	Retries int             `json:"retries"`
}

// QueueState is a queue's serializable suspension record: the pending
// backlog with its backoff schedule, the next event index, and the
// cumulative accounting. Together with Config it reconstructs the queue
// exactly (see ResumeQueue) — a daemon checkpoint embeds one.
type QueueState struct {
	NextIdx int            `json:"next_idx"`
	Pending []PendingEvent `json:"pending,omitempty"`
	Stats   Stats          `json:"stats"`
}

// Suspend captures the queue's current state. The queue remains usable;
// the returned state deep-copies everything it shares with it.
func (q *Queue) Suspend() QueueState {
	st := QueueState{NextIdx: q.nextIdx, Stats: q.stats}
	st.Stats.Actions = make(map[string]int, len(q.stats.Actions))
	for k, v := range q.stats.Actions {
		st.Stats.Actions[k] = v
	}
	for _, it := range q.pending {
		st.Pending = append(st.Pending, PendingEvent{Idx: it.idx, Event: it.ev, Delay: it.delay, Retries: it.retries})
	}
	return st
}

// ResumeQueue reconstructs a suspended queue. The config must match the
// one the state was captured under (the backoff hash and op seeds depend
// on it); the caller owns that contract.
func ResumeQueue(cfg Config, st QueueState) *Queue {
	q := NewQueue(cfg)
	q.nextIdx = st.NextIdx
	if st.Stats.Actions != nil {
		q.stats = st.Stats
		q.stats.Actions = make(map[string]int, len(st.Stats.Actions))
		for k, v := range st.Stats.Actions {
			q.stats.Actions[k] = v
		}
	}
	for _, pe := range st.Pending {
		q.pending = append(q.pending, &item{idx: pe.Idx, ev: pe.Event, delay: pe.Delay, retries: pe.Retries})
	}
	return q
}

// Run drains the event list through the launcher in waves (see
// Queue.RunWave for the wave discipline). Returns the accounting and the
// first driver/engine error.
func Run(nw *congest.Network, events []faultplan.Event, l Launcher, cfg Config) (Stats, error) {
	q := NewQueue(cfg)
	q.Push(events...)
	err := q.Drain(nw, l)
	return q.stats, err
}

func retryDelay(cfg Config, it *item) int {
	if it.retries > cfg.MaxRetries {
		// Past the backoff budget: retry head-of-line every wave.
		return 0
	}
	return backoffDelay(cfg.Seed, it.idx, it.retries, cfg.MaxBackoff)
}

// unionFind labels the components of the marked forest at wave start. The
// scratch is reused across waves.
type unionFind struct {
	parent []int32
}

func newUnionFind() *unionFind { return &unionFind{} }

func (u *unionFind) reset(nw *congest.Network) {
	n := nw.N()
	if cap(u.parent) < n+1 {
		u.parent = make([]int32, n+1)
	}
	u.parent = u.parent[:n+1]
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	for v := 1; v <= n; v++ {
		ns := nw.Node(congest.NodeID(v))
		for i := range ns.Edges {
			he := &ns.Edges[i]
			if he.Marked && he.Neighbor > ns.ID {
				u.union(int32(v), int32(he.Neighbor))
			}
		}
	}
}

// find with path halving; deterministic.
func (u *unionFind) find(v int32) int32 {
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

// union attaches the larger root under the smaller: labels are canonical
// smallest-member IDs, independent of union order.
func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		u.parent[rb] = ra
	} else {
		u.parent[ra] = rb
	}
}
