package admit

import "kkt/internal/congest"

// SideCap bounds the launcher-side orientation probes, mirroring the fault
// compiler's compile-time cap (faultplan's orientSideCap): a marked-forest
// side this large counts as "big" and the walk stops. The probe is cheap
// relative to a launched repair — a repair's broadcast-and-echoes cost at
// least one message per side node, so a capped BFS is a rounding error —
// and it is what keeps adversarial storms feasible: by admission time the
// compiler's modelled forest has drifted (every repair re-marks a
// replacement edge the model cannot predict), so only a probe of the live
// forest can still find the genuinely small side.
const SideCap = 4096

// SideProber orients a repair at admission time: it orders the two
// endpoints of a faulted edge so the one whose side of the *live* marked
// forest is smaller comes first. Launchers call it after applying the
// admission-time topology mutation (DeleteLink / unmark / InsertLink), so
// a plain component walk from each endpoint measures exactly the tree the
// repair's broadcasts will cover — the deleted or unmarked edge is no
// longer part of the forest, and a just-inserted edge is not yet marked.
//
// The walk is centralized controller work, like the wave-start union-find:
// it sends no messages and costs no rounds. It is deterministic at any
// shard count because NodeState.Edges is sorted by neighbour ID.
//
// The scratch is reused across calls; a prober is not safe for concurrent
// use (launchers run admission scans single-threaded).
type SideProber struct {
	seen  []bool
	queue []congest.NodeID
}

// NewSideProber returns an empty prober; scratch grows on first use.
func NewSideProber() *SideProber { return &SideProber{} }

// Smaller returns the endpoints ordered so the first one's marked-forest
// component is no larger than the second's, as far as a walk capped at
// SideCap nodes can tell. When both sides reach the cap the original
// order is kept.
func (p *SideProber) Smaller(nw *congest.Network, a, b congest.NodeID) (congest.NodeID, congest.NodeID) {
	sa := p.compSize(nw, a)
	if sa < SideCap {
		if sb := p.compSize(nw, b); sb < sa {
			return b, a
		}
		return a, b
	}
	if p.compSize(nw, b) < SideCap {
		return b, a
	}
	return a, b
}

// compSize counts the nodes reachable from start over marked edges,
// stopping at SideCap.
func (p *SideProber) compSize(nw *congest.Network, start congest.NodeID) int {
	if n := nw.N(); cap(p.seen) < n+1 {
		p.seen = make([]bool, n+1)
	} else {
		p.seen = p.seen[:n+1]
	}
	p.queue = p.queue[:0]
	p.queue = append(p.queue, start)
	p.seen[start] = true
	for qi := 0; qi < len(p.queue) && len(p.queue) < SideCap; qi++ {
		ns := nw.Node(p.queue[qi])
		for i := range ns.Edges {
			he := &ns.Edges[i]
			if !he.Marked || p.seen[he.Neighbor] {
				continue
			}
			p.seen[he.Neighbor] = true
			p.queue = append(p.queue, he.Neighbor)
			if len(p.queue) >= SideCap {
				break
			}
		}
	}
	size := len(p.queue)
	for _, v := range p.queue {
		p.seen[v] = false
	}
	return size
}
