// Wave safety
//
// The queue guarantees that the repairs of one wave cannot observe each
// other, so running them concurrently on one engine Run produces a valid
// forest — the same invariant each repair restores in isolation.
//
// The claims discipline: before a wave runs, component labels are computed
// once by union-find over the marked edges (the wave-start forest). A
// delete of a marked edge claims the component containing it; an insert
// (and its weight-change analogue) claims both endpoints' components; a
// weight increase on a marked edge claims its component. Claims are
// exclusive — a second repair needing a claimed label defers to a later
// wave.
//
// Each event's topology mutation (DeleteLink, InsertLink, SetRawWeight,
// unmark) is applied at admission, before the wave's engine Run starts, so
// every repair in the wave executes against one fixed post-admission
// topology. During the Run, a repair only traverses marked edges of its
// claimed components (FindMin/FindAny surveys, path-max and swap
// broadcast-and-echoes all walk the tree from an endpoint of the repaired
// edge), and the marks it produces are staged, not applied: a delete's
// replacement edge reconnects the two claimed halves of its own
// component, an insert's mark joins its two claimed components. Staged
// marks therefore land entirely inside claimed territory, and no two
// repairs share a claim — so no repair can see another's traversal or
// staged marks. One ApplyStaged at wave end commits them all, and the next
// wave's labels are recomputed from the result.
//
// Inline admissions (delete of an unmarked edge, no-op weight changes) may
// touch unclaimed components, but they only add or remove NON-tree edges
// or reweight edges in no-op directions before the Run starts; a
// concurrent repair's search then sees the post-admission candidate edge
// set, which equals the final topology, and its optimality check
// (minimum cut edge, path-max comparison) is exactly the forest invariant
// with respect to those final weights.
//
// Ordering: events on the same unordered node pair must apply in list
// order (the compiler emits heal inserts for earlier partition deletes).
// During a wave scan, any event that is not admitted marks its edge
// blocked, and later same-edge events defer; admitted events serialize
// same-edge successors automatically, because the mutated pair's
// components are claimed.
//
// Determinism: admission order is scan order; backoff delays are a pure
// hash of (seed, event index, retry count); wave drivers are spawned as
// continuation tasks in admission order on one deterministic engine Run.
// Reports are therefore byte-identical at any shard count, and a failure
// minimizes to (seed, plan prefix).
package admit
