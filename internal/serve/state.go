// Package serve turns the batch simulator into a long-lived
// topology-maintenance daemon: an update-stream ingester feeding the
// admission queue against a live engine, a checkpoint/resume layer that
// makes multi-hour churn runs survive restarts, and a WebSocket push
// layer streaming obsv snapshot deltas to subscribers.
//
// The daemon's determinism story is epoch-based. Engine state (graph +
// marked forest) is only durable at epoch boundaries, where every
// admission wave has drained and all staged marks are applied; each epoch
// rebuilds a fresh engine from that state with a seed mixed from (daemon
// seed, epoch index), and generated churn is a pure function of (state,
// seed, epoch). A daemon resumed from any epoch-boundary checkpoint
// therefore replays the remaining epochs event-for-event identically to
// an uninterrupted run — the digest-equivalence contract the serve tests
// and the CI smoke gate enforce.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"kkt/internal/congest"
	"kkt/internal/graph"
)

// EdgeState is one live edge in a serialized engine state. A < B always.
type EdgeState struct {
	A      uint32 `json:"a"`
	B      uint32 `json:"b"`
	Raw    uint64 `json:"raw"`
	Marked bool   `json:"marked,omitempty"`
}

// State is the durable topology state of the daemon: everything needed to
// rebuild an equivalent engine. Sessions, staged marks and in-flight
// waves are deliberately absent — State is only captured at epoch
// boundaries, where none exist.
type State struct {
	N      int         `json:"n"`
	MaxRaw uint64      `json:"max_raw"`
	Edges  []EdgeState `json:"edges"`
}

// CaptureState serializes the network's live topology and marked forest
// in canonical (sorted-edge) order.
func CaptureState(nw *congest.Network) State {
	st := State{N: nw.N(), MaxRaw: nw.MaxRaw()}
	for v := 1; v <= st.N; v++ {
		node := nw.Node(congest.NodeID(v))
		for i := range node.Edges {
			he := &node.Edges[i]
			if uint32(he.Neighbor) > uint32(v) {
				st.Edges = append(st.Edges, EdgeState{
					A: uint32(v), B: uint32(he.Neighbor), Raw: he.Raw, Marked: he.Marked,
				})
			}
		}
	}
	sort.Slice(st.Edges, func(i, j int) bool {
		if st.Edges[i].A != st.Edges[j].A {
			return st.Edges[i].A < st.Edges[j].A
		}
		return st.Edges[i].B < st.Edges[j].B
	})
	return st
}

// StateOf serializes a generated graph with the given forest edges (by
// index into g) marked — the daemon's epoch-zero state.
func StateOf(g *graph.Graph, forest []int) State {
	marked := make(map[int]bool, len(forest))
	for _, ei := range forest {
		marked[ei] = true
	}
	st := State{N: g.N, MaxRaw: g.MaxRaw}
	for i, e := range g.Edges() {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		st.Edges = append(st.Edges, EdgeState{A: a, B: b, Raw: e.Raw, Marked: marked[i]})
	}
	sort.Slice(st.Edges, func(i, j int) bool {
		if st.Edges[i].A != st.Edges[j].A {
			return st.Edges[i].A < st.Edges[j].A
		}
		return st.Edges[i].B < st.Edges[j].B
	})
	return st
}

// Graph rebuilds the topology as a graph.Graph (marks are not a graph
// property; see MarkedPairs).
func (st State) Graph() *graph.Graph {
	g := graph.MustNew(st.N, st.MaxRaw)
	for _, e := range st.Edges {
		g.MustAddEdge(e.A, e.B, e.Raw)
	}
	return g
}

// MarkedPairs returns the marked forest as endpoint pairs, in canonical
// order, for congest.Network.SetForest.
func (st State) MarkedPairs() [][2]congest.NodeID {
	var out [][2]congest.NodeID
	for _, e := range st.Edges {
		if e.Marked {
			out = append(out, [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)})
		}
	}
	return out
}

// MarkedIndices returns the marked forest as edge indices into g, which
// must be the graph st.Graph() built (faultplan.Compile's forest input).
func (st State) MarkedIndices(g *graph.Graph) []int {
	var out []int
	for _, e := range st.Edges {
		if e.Marked {
			out = append(out, g.EdgeIndex(e.A, e.B))
		}
	}
	return out
}

// Digest is the canonical sha256 over the state: node count, weight
// bound, and every (a, b, raw, marked) tuple in sorted order. Two daemons
// whose digests agree hold identical topologies and identical maintained
// forests.
func (st State) Digest() string {
	h := sha256.New()
	var buf [21]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(st.N))
	binary.LittleEndian.PutUint64(buf[8:16], st.MaxRaw)
	h.Write(buf[:16])
	for _, e := range st.Edges {
		binary.LittleEndian.PutUint32(buf[0:4], e.A)
		binary.LittleEndian.PutUint32(buf[4:8], e.B)
		binary.LittleEndian.PutUint64(buf[8:16], e.Raw)
		buf[16] = 0
		if e.Marked {
			buf[16] = 1
		}
		h.Write(buf[:17])
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// GraphDigest is the mark-free digest of a generated graph — the trace
// header's integrity check, independent of which forest the maintaining
// algorithm marks.
func GraphDigest(g *graph.Graph) string {
	return StateOf(g, nil).Digest()
}
