package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kkt/internal/faultplan"
	"kkt/internal/obsv"
	"kkt/internal/race"
)

// TestWSAcceptKey pins the RFC 6455 §1.3 worked example.
func TestWSAcceptKey(t *testing.T) {
	if got, want := wsAcceptKey("dGhlIHNhbXBsZSBub25jZQ=="), "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="; got != want {
		t.Errorf("accept key = %q, want %q", got, want)
	}
}

// TestHubStream subscribes a real dialed client to a hub and checks the
// full-then-delta protocol: first message carries a full snapshot, later
// ones deltas, and applying the deltas tracks the publisher's recorder.
func TestHubStream(t *testing.T) {
	hub := NewHub()
	rec := obsv.NewRecorder("ws-test")
	pub := NewPublisher(hub, rec)
	srv := httptest.NewServer(hub)
	defer srv.Close()

	c, err := DialWS(strings.Replace(srv.URL, "http://", "ws://", 1)+"/stream", 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < 100 && hub.Subscribers() == 0; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if hub.Subscribers() != 1 {
		t.Fatal("subscriber never registered")
	}

	var byKind []congestKindCounts
	_ = byKind
	kinds := makeKindScratch()
	for i := 0; i < 30; i++ {
		driveStepServe(rec, i, kinds)
		pub.Publish(ServeStats{Epoch: i / 10, EventsDone: i, EventsTotal: 30, QueueDepth: 30 - i})
	}

	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var state obsv.Snapshot
	var got int
	var sawDelta bool
	for got < 5 {
		raw, err := c.ReadMessage()
		if err != nil {
			t.Fatalf("read message %d: %v", got, err)
		}
		var msg PushMsg
		if err := json.Unmarshal(raw, &msg); err != nil {
			t.Fatalf("bad push message: %v", err)
		}
		switch {
		case msg.Full != nil:
			state = *msg.Full
		case msg.Delta != nil:
			if got == 0 {
				t.Fatal("first message was a delta, want full snapshot")
			}
			sawDelta = true
			state = obsv.Apply(state, *msg.Delta)
		default:
			t.Fatal("push message with neither full nor delta")
		}
		if msg.Serve.EventsTotal != 30 {
			t.Errorf("serve stats missing: %+v", msg.Serve)
		}
		got++
	}
	if !sawDelta {
		t.Error("stream never switched to deltas")
	}
	if state.Repairs.Finished == 0 && state.Messages == 0 {
		t.Error("reconstructed snapshot is empty")
	}
}

// TestHubSlowClientResync overflows a subscriber's bounded buffer (a
// registered client whose channel nobody drains — the slow-reader case),
// then drains it and checks the next delivery is a full-snapshot resync
// carrying the drop count. Uses the hub's internals directly so the
// overflow is deterministic rather than at the mercy of socket buffers.
func TestHubSlowClientResync(t *testing.T) {
	hub := NewHub()
	rec := obsv.NewRecorder("slow-test")
	pub := NewPublisher(hub, rec)

	c := &hubClient{ch: make(chan []byte, hubClientBuffer), closed: make(chan struct{})}
	c.needFull.Store(true)
	hub.mu.Lock()
	hub.clients[c] = struct{}{}
	hub.mu.Unlock()
	hub.subs.Add(1)

	// Publish past the buffer capacity without draining: the overflow
	// must be counted and flagged, never block the publisher.
	kinds := makeKindScratch()
	for i := 0; i < hubClientBuffer*2; i++ {
		driveStepServe(rec, i, kinds)
		pub.Publish(ServeStats{EventsDone: i})
	}
	if c.drops.Load() == 0 {
		t.Fatal("overflowed client counted no drops")
	}
	if !c.needFull.Load() {
		t.Fatal("overflowed client not flagged for resync")
	}

	// Drain, then publish once more: the delivery after a gap must be a
	// full snapshot reporting the gap size.
	for len(c.ch) > 0 {
		<-c.ch
	}
	wantDrops := c.drops.Load()
	driveStepServe(rec, 999, kinds)
	pub.Publish(ServeStats{EventsDone: 999})
	var msg PushMsg
	if err := json.Unmarshal(<-c.ch, &msg); err != nil {
		t.Fatal(err)
	}
	if msg.Full == nil {
		t.Error("resync after drops did not carry a full snapshot")
	}
	if msg.Drops != wantDrops {
		t.Errorf("resync reports %d drops, want %d", msg.Drops, wantDrops)
	}
}

// TestPublishDisabledAllocs is the acceptance gate on the disabled path:
// with zero subscribers, Publish must not allocate (or snapshot, or
// diff) at all.
func TestPublishDisabledAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	hub := NewHub()
	rec := obsv.NewRecorder("idle")
	kinds := makeKindScratch()
	for i := 0; i < 100; i++ {
		driveStepServe(rec, i, kinds)
	}
	pub := NewPublisher(hub, rec)
	ss := ServeStats{Epoch: 1, EventsDone: 50, EventsTotal: 100}
	if allocs := testing.AllocsPerRun(1000, func() { pub.Publish(ss) }); allocs != 0 {
		t.Errorf("Publish with no subscribers allocates %.1f per call, want 0", allocs)
	}
}

// TestServeWSEndToEnd runs a real (small) daemon with a hub wired into
// its wave callbacks and asserts a subscriber sees live repair deltas —
// the in-process version of the CI smoke gate.
func TestServeWSEndToEnd(t *testing.T) {
	hub := NewHub()
	rec := obsv.NewRecorder("e2e")
	pub := NewPublisher(hub, rec)
	srv := httptest.NewServer(hub)
	defer srv.Close()

	c, err := DialWS(srv.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100 && hub.Subscribers() == 0; i++ {
		time.Sleep(10 * time.Millisecond)
	}

	cfg := Config{
		Spec:        GraphSpec{Family: "gnm", N: 40, M: 120, Seed: 3},
		Algo:        "mst",
		Seed:        21,
		Wave:        4,
		EpochEvents: 8,
		Events:      32,
		Churn:       faultplan.Plan{TreeEdgeDeletes: 3, Deletes: 2, Inserts: 2, WeightChanges: 1},
		Observer:    rec,
	}
	cfg.OnWave = func(wi WaveInfo) {
		pub.Publish(ServeStats{
			Epoch: wi.Epoch, EventsDone: wi.Stats.Repairs + wi.Stats.Inline, EventsTotal: cfg.Events,
			QueueDepth: wi.Pending, Repairs: wi.Stats.Repairs, Waves: wi.Stats.Waves, Retries: wi.Stats.Retries,
		})
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var state obsv.Snapshot
	sawRepair := false
	for i := 0; i < 200 && !sawRepair; i++ {
		raw, err := c.ReadMessage()
		if err != nil {
			break // stream drained
		}
		var msg PushMsg
		if err := json.Unmarshal(raw, &msg); err != nil {
			t.Fatal(err)
		}
		if msg.Full != nil {
			state = *msg.Full
		} else if msg.Delta != nil {
			state = obsv.Apply(state, *msg.Delta)
		}
		if state.Repairs.Finished > 0 {
			sawRepair = true
		}
	}
	if !sawRepair {
		t.Error("subscriber never saw a finished repair in the live stream")
	}
}

// --- test helpers -----------------------------------------------------

type congestKindCounts = struct{ Messages, Bits uint64 }

func makeKindScratch() []congestKindCounts {
	return make([]congestKindCounts, 8)
}

// driveStepServe mirrors the obsv package's test driver: one scripted
// engine step of observer traffic.
func driveStepServe(r *obsv.Recorder, i int, kinds []congestKindCounts) {
	kinds[0].Messages += uint64(i%5 + 1)
	kinds[0].Bits += uint64(i % 31)
	r.RoundEnd(int64(i+1), uint64(7*i), uint64(120*i), nil, nil)
	switch i % 3 {
	case 0:
		r.RepairStart("mst.delete", int64(i+1))
		r.RepairDone("mst.delete", "replace", int64(i+1), int64(i%9+1), uint64(i), uint64(2*i))
	case 1:
		r.Count("wave.launched", 1)
	}
}
