package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kkt/internal/faultplan"
)

// Trace file format (see ARCHITECTURE.md "Serving & checkpointing"):
//
//	#kkt-trace v1 {"spec":{...GraphSpec...},"digest":"sha256:..."}
//	d 17 43 0 partition
//	i 9 12 811 heal
//	w 3 77 402 random
//
// The header's JSON carries the seeded GraphSpec of the initial topology
// plus its mark-free GraphDigest, so a replaying daemon rebuilds the
// identical graph and refuses a mismatched one. Each following line is
// one topology event: op (d=delete, i=insert, w=reweight), endpoints a b,
// raw weight (0 for deletes), and the emitting plan stage (provenance
// only; any single token). Blank lines and #-comments are skipped.

const traceMagic = "#kkt-trace v1 "

// TraceHeader identifies the initial topology a trace applies to.
type TraceHeader struct {
	Spec   GraphSpec `json:"spec"`
	Digest string    `json:"digest"`
}

// WriteTrace serializes a header and event list in the trace format.
func WriteTrace(w io.Writer, hdr TraceHeader, events []faultplan.Event) error {
	bw := bufio.NewWriter(w)
	blob, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "%s%s\n", traceMagic, blob)
	for _, ev := range events {
		var op byte
		switch ev.Op {
		case faultplan.OpDelete:
			op = 'd'
		case faultplan.OpInsert:
			op = 'i'
		case faultplan.OpWeightChange:
			op = 'w'
		default:
			return fmt.Errorf("serve: trace: unknown op %v", ev.Op)
		}
		stage := ev.Stage
		if stage == "" {
			stage = "-"
		}
		fmt.Fprintf(bw, "%c %d %d %d %s\n", op, ev.A, ev.B, ev.Raw, stage)
	}
	return bw.Flush()
}

// ReadTrace parses a trace file: header first, then the event list.
func ReadTrace(r io.Reader) (TraceHeader, []faultplan.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var hdr TraceHeader
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, err
		}
		return hdr, nil, fmt.Errorf("serve: trace: empty file")
	}
	first := sc.Text()
	if !strings.HasPrefix(first, traceMagic) {
		return hdr, nil, fmt.Errorf("serve: trace: missing %q header", strings.TrimSpace(traceMagic))
	}
	if err := json.Unmarshal([]byte(first[len(traceMagic):]), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("serve: trace: bad header: %w", err)
	}
	var events []faultplan.Event
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseTraceLine(line)
		if err != nil {
			return hdr, nil, fmt.Errorf("serve: trace line %d: %w", lineNo, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	return hdr, events, nil
}

func parseTraceLine(line string) (faultplan.Event, error) {
	var ev faultplan.Event
	fields := strings.Fields(line)
	if len(fields) != 4 && len(fields) != 5 {
		return ev, fmt.Errorf("want 'op a b raw [stage]', got %d fields", len(fields))
	}
	switch fields[0] {
	case "d":
		ev.Op = faultplan.OpDelete
	case "i":
		ev.Op = faultplan.OpInsert
	case "w":
		ev.Op = faultplan.OpWeightChange
	default:
		return ev, fmt.Errorf("unknown op %q (want d, i or w)", fields[0])
	}
	a, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return ev, fmt.Errorf("bad endpoint a: %w", err)
	}
	b, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return ev, fmt.Errorf("bad endpoint b: %w", err)
	}
	raw, err := strconv.ParseUint(fields[3], 10, 64)
	if err != nil {
		return ev, fmt.Errorf("bad raw weight: %w", err)
	}
	if a == 0 || b == 0 || a == b {
		return ev, fmt.Errorf("bad endpoints (%d, %d)", a, b)
	}
	if ev.Op != faultplan.OpDelete && raw == 0 {
		return ev, fmt.Errorf("%s needs a raw weight >= 1", fields[0])
	}
	ev.A, ev.B, ev.Raw = uint32(a), uint32(b), raw
	if len(fields) == 5 && fields[4] != "-" {
		ev.Stage = fields[4]
	}
	return ev, nil
}
