package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kkt/internal/obsv"
)

// Hub is the WebSocket push fan-out: any number of subscribers, each with
// a bounded buffer a slow reader can only overflow for itself. The
// publish path never blocks on a client — an overflowing client's
// messages are counted dropped and its next delivered message is a full
// snapshot resync (a delta stream with a gap is unrecoverable; see the
// obsv delta contract).
//
// The engine-side cost contract: with zero subscribers the per-wave
// publish path is a single atomic load and a branch — no snapshot, no
// diff, no marshal, no allocation (gated by TestPublishDisabledAllocs).
type Hub struct {
	subs atomic.Int64

	mu      sync.Mutex
	clients map[*hubClient]struct{}
}

type hubClient struct {
	ch       chan []byte
	needFull atomic.Bool
	drops    atomic.Uint64
	closed   chan struct{}
}

// hubClientBuffer bounds each subscriber's in-flight messages.
const hubClientBuffer = 64

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{clients: make(map[*hubClient]struct{})}
}

// Subscribers returns the live subscriber count (the publish fast path).
func (h *Hub) Subscribers() int { return int(h.subs.Load()) }

// ServeHTTP upgrades the request and streams push messages until the
// client disconnects or the daemon shuts the hub down.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	conn, brw := upgradeWS(w, r)
	if conn == nil {
		return
	}
	defer conn.Close()
	c := &hubClient{ch: make(chan []byte, hubClientBuffer), closed: make(chan struct{})}
	c.needFull.Store(true) // first delivery is always a full snapshot
	h.mu.Lock()
	h.clients[c] = struct{}{}
	h.mu.Unlock()
	h.subs.Add(1)
	defer func() {
		h.mu.Lock()
		delete(h.clients, c)
		h.mu.Unlock()
		h.subs.Add(-1)
	}()

	// Both loops write to conn (text frames here, pong/close echoes from
	// the reader goroutine); wmu keeps their frames from interleaving.
	var wmu sync.Mutex

	// Reader: drain client frames (answer pings, detect close/EOF) and
	// signal the writer loop to stop.
	go func() {
		defer close(c.closed)
		for {
			_, _, err := readMessage(brw.Reader, func(op byte, payload []byte) error {
				wmu.Lock()
				defer wmu.Unlock()
				return writeFrame(conn, op, false, payload)
			})
			if err != nil {
				return
			}
		}
	}()

	for {
		select {
		case msg := <-c.ch:
			conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			wmu.Lock()
			err := writeFrame(conn, opText, false, msg)
			wmu.Unlock()
			if err != nil {
				return
			}
		case <-c.closed:
			return
		}
	}
}

// Broadcast fans one marshaled delta message out to every subscriber.
// full is called lazily (at most once) to build the resync message for
// clients that dropped or just connected. A client whose buffer is full
// drops the message, counts it, and is flagged for resync.
func (h *Hub) Broadcast(delta []byte, full func(drops uint64) []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for c := range h.clients {
		msg := delta
		if c.needFull.Load() {
			msg = full(c.drops.Load())
		}
		if msg == nil {
			continue
		}
		select {
		case c.ch <- msg:
			c.needFull.Store(false)
		default:
			c.drops.Add(1)
			c.needFull.Store(true)
		}
	}
}

// PushMsg is one WebSocket stream message. Exactly one of Full or Delta
// is set: Full on first contact and after a drop gap (Drops then reports
// how many messages that client missed in total), Delta otherwise.
type PushMsg struct {
	Seq   uint64         `json:"seq"`
	Full  *obsv.Snapshot `json:"full,omitempty"`
	Delta *obsv.Delta    `json:"delta,omitempty"`
	Serve ServeStats     `json:"serve"`
	Drops uint64         `json:"drops,omitempty"`
}

// ServeStats is the daemon-level progress block attached to every push
// message: stream position, queue depth, and cumulative repair counters.
type ServeStats struct {
	Epoch       int    `json:"epoch"`
	EventsDone  int    `json:"events_done"`
	EventsTotal int    `json:"events_total"`
	QueueDepth  int    `json:"queue_depth"`
	IngestLag   int    `json:"ingest_lag"` // events ingested but not yet resolved + not yet ingested
	Repairs     int    `json:"repairs"`
	Waves       int    `json:"waves"`
	Retries     int    `json:"retries"`
	Digest      string `json:"digest,omitempty"` // epoch boundaries only
}

// Publisher drives the hub from the daemon's wave/epoch callbacks: it
// owns the previous-snapshot state for delta computation and skips all of
// it — snapshot, diff, marshal — when nobody is subscribed.
type Publisher struct {
	hub  *Hub
	rec  *obsv.Recorder
	prev obsv.Snapshot
	seq  uint64
	sent bool // prev is valid (at least one publish since last idle reset)
}

// NewPublisher couples a hub to the daemon's recorder.
func NewPublisher(hub *Hub, rec *obsv.Recorder) *Publisher {
	return &Publisher{hub: hub, rec: rec}
}

// Publish pushes the current observability state to all subscribers.
// With zero subscribers this is one atomic load — the disabled path the
// allocation gate pins at zero allocs.
func (p *Publisher) Publish(ss ServeStats) {
	if p.hub.Subscribers() == 0 {
		// Invalidate prev: a client connecting later starts from a full
		// snapshot anyway, so skipping diffs entirely while idle is safe.
		p.sent = false
		return
	}
	cur := p.rec.Snapshot()
	p.seq++
	var deltaMsg []byte
	if p.sent {
		d := obsv.Diff(p.prev, cur)
		deltaMsg, _ = json.Marshal(PushMsg{Seq: p.seq, Delta: &d, Serve: ss})
	}
	// The zero-drops resync (a fresh subscriber) is cached and shared;
	// resyncs after drops carry that client's own gap count, so they are
	// marshaled per client.
	var fullMsg []byte
	full := func(drops uint64) []byte {
		if drops != 0 {
			b, _ := json.Marshal(PushMsg{Seq: p.seq, Full: &cur, Serve: ss, Drops: drops})
			return b
		}
		if fullMsg == nil {
			fullMsg, _ = json.Marshal(PushMsg{Seq: p.seq, Full: &cur, Serve: ss})
		}
		return fullMsg
	}
	if deltaMsg == nil {
		// No valid prev: everyone gets the full snapshot.
		p.hub.Broadcast(nil, full)
	} else {
		p.hub.Broadcast(deltaMsg, full)
	}
	p.prev = cur
	p.sent = true
}
