package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"kkt/internal/admit"
	"kkt/internal/faultplan"
	"kkt/internal/obsv"
)

// checkpointVersion gates the on-disk format; bump on incompatible change.
const checkpointVersion = 1

// Fingerprint pins every input that determines the daemon's event
// sequence. Resume refuses a checkpoint whose fingerprint differs from
// the daemon's configuration — continuing under different knobs would
// silently produce a run no uninterrupted daemon could reproduce.
type Fingerprint struct {
	Spec        GraphSpec      `json:"spec"`
	Algo        string         `json:"algo"`
	Seed        uint64         `json:"seed"`
	Wave        int            `json:"wave,omitempty"`
	EpochEvents int            `json:"epoch_events"`
	Churn       faultplan.Plan `json:"churn,omitempty"`
	TraceDigest string         `json:"trace_digest,omitempty"`
}

// ObsShift is the serialized observability offset: the cumulative
// timeline a resumed daemon's recorder continues from, keyed by kind
// name (kind IDs are process-interned and do not survive restarts).
type ObsShift struct {
	Now      int64            `json:"now"`
	Messages uint64           `json:"messages"`
	Bits     uint64           `json:"bits"`
	ByKind   []obsv.KindTotal `json:"by_kind,omitempty"`
}

// Checkpoint is the daemon's durable snapshot, written atomically at
// epoch boundaries. Digest is the embedded State's digest, recomputed and
// verified on load so a truncated or hand-edited file is rejected before
// it can silently fork the run.
type Checkpoint struct {
	Version     int              `json:"version"`
	Fingerprint Fingerprint      `json:"fingerprint"`
	Epoch       int              `json:"epoch"`
	EventsDone  int              `json:"events_done"`
	State       State            `json:"state"`
	Queue       admit.QueueState `json:"queue"`
	Obs         ObsShift         `json:"obs"`
	Digest      string           `json:"digest"`
}

// WriteCheckpoint serializes the checkpoint to path atomically
// (temp file + rename), stamping version and state digest.
func WriteCheckpoint(path string, cp Checkpoint) error {
	cp.Version = checkpointVersion
	cp.Digest = cp.State.Digest()
	blob, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".kkt-checkpoint-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ReadCheckpoint loads and integrity-checks a checkpoint.
func ReadCheckpoint(path string) (Checkpoint, error) {
	var cp Checkpoint
	blob, err := os.ReadFile(path)
	if err != nil {
		return cp, err
	}
	if err := json.Unmarshal(blob, &cp); err != nil {
		return cp, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return cp, fmt.Errorf("serve: checkpoint %s: version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if got := cp.State.Digest(); got != cp.Digest {
		return cp, fmt.Errorf("serve: checkpoint %s: state digest mismatch (file corrupt?)", path)
	}
	return cp, nil
}
