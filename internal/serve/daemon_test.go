package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kkt/internal/faultplan"
	"kkt/internal/obsv"
)

func testConfig(dir string) Config {
	return Config{
		Spec: GraphSpec{Family: "gnm", N: 48, M: 144, Seed: 11},
		Algo: "mst",
		Seed: 0xdaeb0,
		Wave: 4,
		Churn: faultplan.Plan{
			TreeEdgeDeletes: 3, Deletes: 3, Inserts: 3, WeightChanges: 3,
		},
		EpochEvents:    8,
		Events:         64,
		CheckpointPath: filepath.Join(dir, "serve.ckpt"),
	}
}

// TestResumeDigestEquivalence is the tentpole acceptance gate: a churn
// run interrupted at an epoch boundary and resumed from its checkpoint
// must reach the same topology-state digest as the identical run executed
// without interruption.
func TestResumeDigestEquivalence(t *testing.T) {
	// Reference: uninterrupted run, no checkpointing.
	refCfg := testConfig(t.TempDir())
	refCfg.CheckpointPath = ""
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refSum, err := ref.Run(context.Background())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted: stop at the half-way epoch boundary, then resume from
	// the written checkpoint and finish.
	cfg := testConfig(t.TempDir())
	half := cfg
	half.Events = cfg.Events / 2
	d, err := New(half)
	if err != nil {
		t.Fatal(err)
	}
	halfSum, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("first half: %v", err)
	}
	if halfSum.Digest == refSum.Digest {
		t.Fatal("half-way digest already equals the final digest; churn too weak to prove anything")
	}

	cp, err := ReadCheckpoint(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	if cp.EventsDone != half.Events {
		t.Fatalf("checkpoint at %d events, want %d", cp.EventsDone, half.Events)
	}
	resumed, err := Resume(cfg, cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	resSum, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	if resSum.Digest != refSum.Digest {
		t.Errorf("digest diverged after resume:\n resumed   %s\n reference %s", resSum.Digest, refSum.Digest)
	}
	if !reflect.DeepEqual(resSum.Stats, refSum.Stats) {
		t.Errorf("stats diverged after resume:\n resumed   %+v\n reference %+v", resSum.Stats, refSum.Stats)
	}
	if resSum.Epochs != refSum.Epochs || resSum.EventsDone != refSum.EventsDone {
		t.Errorf("progress diverged: resumed %d/%d, reference %d/%d",
			resSum.Epochs, resSum.EventsDone, refSum.Epochs, refSum.EventsDone)
	}
}

// TestCancelThenResume interrupts a run with context cancellation — the
// daemon's SIGINT path, a stand-in for kill -9 at an arbitrary moment —
// and resumes from whatever checkpoint survived. The resumed run must
// still converge to the uninterrupted digest.
func TestCancelThenResume(t *testing.T) {
	refCfg := testConfig(t.TempDir())
	refCfg.CheckpointPath = ""
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refSum, err := ref.Run(context.Background())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cfg := testConfig(t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	cfg.OnEpoch = func(ei EpochInfo) {
		if ei.Epoch == 3 {
			cancel()
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(ctx); err == nil {
		t.Fatal("cancelled run reported no error")
	}

	cfg.OnEpoch = nil
	cp, err := ReadCheckpoint(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	resumed, err := Resume(cfg, cp)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	resSum, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resSum.Digest != refSum.Digest {
		t.Errorf("digest diverged after cancel+resume:\n resumed   %s\n reference %s", resSum.Digest, refSum.Digest)
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint must not resume under
// a configuration that would fork the event sequence.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.Events = 16
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed++
	if _, err := Resume(bad, cp); err == nil {
		t.Error("resume accepted a checkpoint with a different seed")
	}
	bad = cfg
	bad.EpochEvents = 16
	if _, err := Resume(bad, cp); err == nil {
		t.Error("resume accepted a checkpoint with a different epoch size")
	}
}

// TestCheckpointRejectsCorruption: a bit-flipped state must fail the
// digest check on load.
func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	cp := Checkpoint{
		Fingerprint: Fingerprint{Algo: "mst"},
		State:       State{N: 3, MaxRaw: 8, Edges: []EdgeState{{A: 1, B: 2, Raw: 5, Marked: true}}},
	}
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	good, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("clean checkpoint rejected: %v", err)
	}
	good.State.Edges[0].Raw = 6 // corrupt after digest was stamped
	blob := good
	blob.Digest = cp.State.Digest() // stale digest from pre-corruption state
	// Re-serialize by hand to bypass WriteCheckpoint's re-stamping.
	if err := writeRaw(path, blob); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Error("corrupted checkpoint accepted")
	}
}

// TestTraceRoundTrip: a compiled fault plan survives trace-file export
// and re-import byte-identically, header included.
func TestTraceRoundTrip(t *testing.T) {
	spec := GraphSpec{Family: "gnm", N: 32, M: 96, Seed: 5}.WithDefaults()
	g := spec.Build(1)
	plan := faultplan.Plan{Partitions: 1, PartitionSize: 4, Heals: 2, Deletes: 3, Inserts: 3, WeightChanges: 3}
	events := faultplan.Compile(plan, g, nil, 99)
	if len(events) == 0 {
		t.Fatal("plan compiled to zero events")
	}
	hdr := TraceHeader{Spec: spec, Digest: GraphDigest(g)}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, hdr, events); err != nil {
		t.Fatal(err)
	}
	gotHdr, gotEvents, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHdr, hdr) {
		t.Errorf("header changed in round trip:\n got  %+v\n want %+v", gotHdr, hdr)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Errorf("events changed in round trip (%d vs %d)", len(gotEvents), len(events))
	}
	if got := GraphDigest(spec.Build(4)); got != hdr.Digest {
		t.Errorf("spec rebuild digest %s != header digest %s (generation not worker-independent?)", got, hdr.Digest)
	}
}

// TestTraceReplayDeterminism: replaying the same trace through two fresh
// daemons yields identical digests, and the daemon's observer sees a
// continuous (strictly monotone) timeline across epoch rebuilds.
func TestTraceReplayDeterminism(t *testing.T) {
	spec := GraphSpec{Family: "gnm", N: 32, M: 96, Seed: 5}.WithDefaults()
	g := spec.Build(1)
	plan := faultplan.Plan{TreeEdgeDeletes: 4, Deletes: 4, Inserts: 4, WeightChanges: 4}
	events := faultplan.Compile(plan, g, nil, 99)

	run := func(shards int) (Summary, obsv.Snapshot) {
		rec := obsv.NewRecorder("trace-replay")
		d, err := New(Config{
			Spec: spec, Algo: "mst", Seed: 7, Wave: 4, Shards: shards,
			Trace: events, TraceDigest: GraphDigest(g),
			EpochEvents: 5, Observer: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return sum, rec.Snapshot()
	}
	sum1, snap1 := run(1)
	sum2, _ := run(2)
	if sum1.Digest != sum2.Digest {
		t.Errorf("trace replay digest differs across shard counts:\n shards=1 %s\n shards=2 %s", sum1.Digest, sum2.Digest)
	}
	if !reflect.DeepEqual(sum1.Stats, sum2.Stats) {
		t.Errorf("trace replay stats differ across shard counts")
	}
	var prev int64 = -1
	for _, rs := range snap1.RoundSamples {
		if rs.Now < prev {
			t.Fatalf("observer timeline went backwards across epochs: %d after %d", rs.Now, prev)
		}
		prev = rs.Now
	}
	if snap1.Repairs.Finished == 0 {
		t.Error("observer saw no finished repairs across the replay")
	}
}

func writeRaw(path string, cp Checkpoint) error {
	blob, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}
