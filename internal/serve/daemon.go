package serve

import (
	"context"
	"fmt"
	"reflect"

	"kkt/internal/admit"
	"kkt/internal/congest"
	"kkt/internal/faultplan"
	"kkt/internal/mst"
	"kkt/internal/obsv"
	"kkt/internal/spanning"
	"kkt/internal/st"
	"kkt/internal/tree"
)

// Config is the daemon's full configuration. Every field that determines
// the event sequence is folded into the checkpoint fingerprint; the rest
// (shards, callbacks, checkpoint cadence) are execution knobs the
// determinism contracts make invisible to the run's outcome.
type Config struct {
	Spec GraphSpec
	Algo string // "mst" (weighted, default) | "st" (unweighted)
	Seed uint64

	// Wave caps concurrent repair drivers per admission wave (admit's
	// default applies at 0).
	Wave int
	// Shards is the engine lane count (execution knob only).
	Shards int

	// EpochEvents bounds how many events one epoch ingests (default 64).
	// Smaller epochs mean finer-grained checkpoints and fresher WS deltas;
	// larger epochs amortize engine rebuilds.
	EpochEvents int
	// Events is the total to process. Required with a churn generator;
	// defaults to the full trace length when replaying.
	Events int

	// Churn is the per-epoch generator plan, recompiled against the live
	// topology each epoch (pure function of state + seed + epoch — the
	// resume-determinism keystone). Ignored when Trace is set.
	Churn faultplan.Plan
	// Trace replays a fixed event list instead of generating churn.
	Trace []faultplan.Event
	// TraceDigest pins the trace's initial-graph digest into the
	// checkpoint fingerprint when replaying.
	TraceDigest string

	// CheckpointPath enables checkpointing ("" disables); CheckpointEvery
	// is the epoch cadence (default 1).
	CheckpointPath  string
	CheckpointEvery int

	// Observer receives the engine's observer hooks across all epochs on
	// one continuous timeline (per-epoch engine clocks and counters are
	// offset by the preceding epochs' totals). Typically an
	// *obsv.Recorder. Nil disables observation at zero cost.
	Observer congest.Observer

	// OnWave fires after every admission wave; OnEpoch after every epoch
	// (durable-state boundary). Both run on the daemon goroutine between
	// engine runs — keep them short; a WS hub publish is the intended use.
	OnWave  func(WaveInfo)
	OnEpoch func(EpochInfo)
}

// WaveInfo is the per-wave progress report.
type WaveInfo struct {
	Epoch    int         `json:"epoch"`
	Launched int         `json:"launched"`
	Pending  int         `json:"pending"` // queue depth after the wave
	Stats    admit.Stats `json:"stats"`   // cumulative
}

// EpochInfo is the per-epoch progress report.
type EpochInfo struct {
	Epoch        int    `json:"epoch"` // epochs completed
	EventsDone   int    `json:"events_done"`
	EventsTotal  int    `json:"events_total"`
	Digest       string `json:"digest"`
	Checkpointed bool   `json:"checkpointed"`
}

// Summary is the daemon's final report.
type Summary struct {
	Epochs     int         `json:"epochs"`
	EventsDone int         `json:"events_done"`
	Stats      admit.Stats `json:"stats"`
	Digest     string      `json:"digest"`
}

func (c Config) withDefaults() Config {
	c.Spec = c.Spec.WithDefaults()
	if c.Algo == "" {
		c.Algo = "mst"
	}
	if c.EpochEvents == 0 {
		c.EpochEvents = 64
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Trace != nil && c.Events == 0 {
		c.Events = len(c.Trace)
	}
	return c
}

func (c Config) validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Algo != "mst" && c.Algo != "st" {
		return fmt.Errorf("serve: unknown algo %q (want mst or st)", c.Algo)
	}
	if c.Trace == nil && c.Churn.Empty() {
		return fmt.Errorf("serve: no update stream: need a trace or a churn plan")
	}
	if c.Trace == nil {
		if err := c.Churn.Validate(); err != nil {
			return err
		}
	}
	if c.Events <= 0 {
		return fmt.Errorf("serve: events=%d, want > 0", c.Events)
	}
	if c.Trace != nil && c.Events > len(c.Trace) {
		return fmt.Errorf("serve: events=%d exceeds trace length %d", c.Events, len(c.Trace))
	}
	return nil
}

// fingerprint pins the sequence-determining configuration.
func (c Config) fingerprint() Fingerprint {
	return Fingerprint{
		Spec: c.Spec, Algo: c.Algo, Seed: c.Seed, Wave: c.Wave,
		EpochEvents: c.EpochEvents, Churn: c.Churn, TraceDigest: c.TraceDigest,
	}
}

// Daemon is the live topology-maintenance service; construct with New or
// Resume, then Run. Not safe for concurrent use — Run owns it.
type Daemon struct {
	cfg        Config
	state      State
	epoch      int
	eventsDone int
	queue      admit.QueueState
	shift      *shiftObs
}

// New creates a fresh daemon: builds the seeded initial graph, marks its
// reference forest (MSF for mst, BFS forest for st — uncharged setup,
// like the paper's maintained-forest precondition), and positions the
// update stream at event zero.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := cfg.Spec.Build(cfg.Shards)
	if cfg.Trace != nil && cfg.TraceDigest != "" {
		if got := GraphDigest(g); got != cfg.TraceDigest {
			return nil, fmt.Errorf("serve: trace was recorded against a different initial graph: built %s, trace %s", got, cfg.TraceDigest)
		}
	}
	var forest []int
	if cfg.Algo == "mst" {
		forest = spanning.Kruskal(g)
	} else {
		forest = spanning.BFSForest(g)
	}
	return &Daemon{
		cfg:   cfg,
		state: StateOf(g, forest),
		shift: newShiftObs(cfg.Observer),
	}, nil
}

// Resume reconstructs a daemon from a checkpoint. The configuration's
// fingerprint must match the checkpoint's exactly.
func Resume(cfg Config, cp Checkpoint) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if fp := cfg.fingerprint(); !reflect.DeepEqual(fp, cp.Fingerprint) {
		return nil, fmt.Errorf("serve: checkpoint fingerprint mismatch:\n  config     %+v\n  checkpoint %+v", fp, cp.Fingerprint)
	}
	d := &Daemon{
		cfg:        cfg,
		state:      cp.State,
		epoch:      cp.Epoch,
		eventsDone: cp.EventsDone,
		queue:      cp.Queue,
		shift:      newShiftObs(cfg.Observer),
	}
	d.shift.load(cp.Obs)
	return d, nil
}

// Digest returns the current topology-state digest.
func (d *Daemon) Digest() string { return d.state.Digest() }

// State returns the daemon's durable state (epoch-boundary topology).
func (d *Daemon) State() State { return d.state }

// Run processes the update stream to completion (or ctx cancellation),
// epoch by epoch. Each epoch: rebuild a fresh engine from durable state
// with seed mix(seed, epoch), generate or slice that epoch's events,
// drain them through the admission queue in waves, capture the resulting
// state, and checkpoint on cadence. Returns the final summary; on error
// or cancellation the last completed epoch's checkpoint (if any) remains
// the resume point.
func (d *Daemon) Run(ctx context.Context) (Summary, error) {
	cfg := d.cfg
	for d.eventsDone < cfg.Events {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return d.summary(), err
			}
		}
		epochSeed := mixSeed(cfg.Seed, d.epoch)
		g := d.state.Graph()

		var events []faultplan.Event
		if cfg.Trace != nil {
			events = cfg.Trace[d.eventsDone:min(d.eventsDone+cfg.EpochEvents, cfg.Events)]
		} else {
			compiled := faultplan.Compile(cfg.Churn, g, d.state.MarkedIndices(g), epochSeed)
			if len(compiled) == 0 {
				return d.summary(), fmt.Errorf("serve: churn plan compiled to zero events at epoch %d", d.epoch)
			}
			events = compiled[:min(cfg.EpochEvents, cfg.Events-d.eventsDone, len(compiled))]
		}

		opts := []congest.Option{congest.WithSeed(epochSeed)}
		if cfg.Shards > 1 {
			opts = append(opts, congest.WithShards(cfg.Shards))
		}
		if d.shift.inner != nil {
			opts = append(opts, congest.WithObserver(d.shift))
		}
		if ctx != nil {
			opts = append(opts, congest.WithContext(ctx))
		}
		nw := congest.NewNetwork(g, opts...)
		pr := tree.Attach(nw)
		nw.SetForest(d.state.MarkedPairs())

		var l admit.Launcher
		if cfg.Algo == "mst" {
			l = mst.NewStormLauncher(nw, pr, mst.DefaultRepair(cfg.Seed))
		} else {
			l = st.NewStormLauncher(nw, pr, st.DefaultRepair(cfg.Seed))
		}

		// The queue's suspension record carries the global event index (op
		// seeds depend on it) and cumulative stats across epochs.
		q := admit.ResumeQueue(admit.Config{Wave: cfg.Wave, Seed: cfg.Seed}, d.queue)
		q.Push(events...)
		for q.Pending() > 0 {
			launched, err := q.RunWave(nw, l)
			if err != nil {
				return d.summary(), err
			}
			if cfg.OnWave != nil {
				cfg.OnWave(WaveInfo{Epoch: d.epoch, Launched: launched, Pending: q.Pending(), Stats: q.Stats()})
			}
		}

		d.queue = q.Suspend()
		d.state = CaptureState(nw)
		d.shift.advance(nw)
		d.epoch++
		d.eventsDone += len(events)

		checkpointed := false
		if cfg.CheckpointPath != "" && (d.epoch%cfg.CheckpointEvery == 0 || d.eventsDone >= cfg.Events) {
			if err := WriteCheckpoint(cfg.CheckpointPath, d.checkpoint()); err != nil {
				return d.summary(), fmt.Errorf("serve: checkpoint: %w", err)
			}
			checkpointed = true
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(EpochInfo{
				Epoch: d.epoch, EventsDone: d.eventsDone, EventsTotal: cfg.Events,
				Digest: d.state.Digest(), Checkpointed: checkpointed,
			})
		}
	}
	return d.summary(), nil
}

func (d *Daemon) checkpoint() Checkpoint {
	return Checkpoint{
		Fingerprint: d.cfg.fingerprint(),
		Epoch:       d.epoch,
		EventsDone:  d.eventsDone,
		State:       d.state,
		Queue:       d.queue,
		Obs:         d.shift.save(),
	}
}

func (d *Daemon) summary() Summary {
	return Summary{
		Epochs:     d.epoch,
		EventsDone: d.eventsDone,
		Stats:      d.queue.Stats,
		Digest:     d.state.Digest(),
	}
}

// mixSeed derives one epoch's engine seed (splitmix64 finalizer over the
// daemon seed and epoch index, never zero).
func mixSeed(seed uint64, epoch int) uint64 {
	z := seed ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// shiftObs re-bases a per-epoch engine's observer stream onto the
// daemon's continuous timeline: each fresh engine starts its clock and
// counters at zero, so the wrapper adds the totals of all completed
// epochs before forwarding to the inner observer. Kind IDs are
// process-interned and shared across engines, so the per-kind base is
// indexable by KindID directly; checkpoints persist it by name (save /
// load) since IDs do not survive restarts.
type shiftObs struct {
	inner   congest.Observer
	dNow    int64
	dMsgs   uint64
	dBits   uint64
	base    []congest.KindCount // indexed by KindID
	scratch []congest.KindCount
}

func newShiftObs(inner congest.Observer) *shiftObs { return &shiftObs{inner: inner} }

func (o *shiftObs) RoundEnd(now int64, messages, bits uint64, byKind []congest.KindCount, shardLoad []uint64) {
	n := max(len(byKind), len(o.base))
	if cap(o.scratch) < n {
		o.scratch = make([]congest.KindCount, n)
	}
	s := o.scratch[:n]
	for i := range s {
		var kc congest.KindCount
		if i < len(o.base) {
			kc = o.base[i]
		}
		if i < len(byKind) {
			kc.Messages += byKind[i].Messages
			kc.Bits += byKind[i].Bits
		}
		s[i] = kc
	}
	o.inner.RoundEnd(now+o.dNow, messages+o.dMsgs, bits+o.dBits, s, shardLoad)
}

func (o *shiftObs) SessionOpen(serial uint64, now int64) { o.inner.SessionOpen(serial, now+o.dNow) }
func (o *shiftObs) SessionDone(serial uint64, now int64, failed bool) {
	o.inner.SessionDone(serial, now+o.dNow, failed)
}
func (o *shiftObs) PhaseStart(proto string, phase, fragments int, now int64) {
	o.inner.PhaseStart(proto, phase, fragments, now+o.dNow)
}
func (o *shiftObs) PhaseEnd(proto string, phase int, now int64, cost congest.PhaseCosts) {
	o.inner.PhaseEnd(proto, phase, now+o.dNow, cost)
}
func (o *shiftObs) RepairStart(op string, now int64) { o.inner.RepairStart(op, now+o.dNow) }
func (o *shiftObs) RepairDone(op, action string, now int64, rounds int64, messages, bits uint64) {
	o.inner.RepairDone(op, action, now+o.dNow, rounds, messages, bits)
}
func (o *shiftObs) Count(name string, delta uint64) { o.inner.Count(name, delta) }

// advance folds a finished epoch's engine totals into the offsets.
func (o *shiftObs) advance(nw *congest.Network) {
	o.dNow += nw.Now()
	c := nw.Counters()
	o.dMsgs += c.Messages
	o.dBits += c.Bits
	for name, kc := range c.ByKind {
		id := int(congest.Kind(name))
		for id >= len(o.base) {
			o.base = append(o.base, congest.KindCount{})
		}
		o.base[id].Messages += kc.Messages
		o.base[id].Bits += kc.Bits
	}
}

// save/load serialize the offsets for checkpoints, keyed by kind name.
func (o *shiftObs) save() ObsShift {
	sh := ObsShift{Now: o.dNow, Messages: o.dMsgs, Bits: o.dBits}
	for id, kc := range o.base {
		if kc.Messages != 0 || kc.Bits != 0 {
			sh.ByKind = append(sh.ByKind, obsv.KindTotal{
				Kind: congest.KindID(id).String(), Messages: kc.Messages, Bits: kc.Bits,
			})
		}
	}
	return sh
}

func (o *shiftObs) load(sh ObsShift) {
	o.dNow, o.dMsgs, o.dBits = sh.Now, sh.Messages, sh.Bits
	for _, kt := range sh.ByKind {
		id := int(congest.Kind(kt.Kind))
		for id >= len(o.base) {
			o.base = append(o.base, congest.KindCount{})
		}
		o.base[id] = congest.KindCount{Messages: kt.Messages, Bits: kt.Bits}
	}
}
