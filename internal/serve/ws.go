package serve

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Minimal RFC 6455 WebSocket support — handshake, frame codec, and a
// dial-side client — hand-rolled on the stdlib so the daemon stays
// dependency-free. Only what the push layer needs: single-frame text
// messages (with continuation-frame reassembly on read for robustness),
// ping/pong, and clean close. Server frames are unmasked, client frames
// masked, per the RFC.

const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// wsMaxMessage bounds reassembled message size (full snapshots of a
// 100k-node run stay well under this).
const wsMaxMessage = 64 << 20

// ErrClosed is returned by reads once the peer sends a close frame — the
// clean end-of-stream signal for `kkt ws` and tests.
var ErrClosed = errors.New("serve: websocket closed")

func wsAcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// upgradeWS performs the server side of the opening handshake and hijacks
// the connection. On failure it writes the HTTP error itself and returns
// a nil conn.
func upgradeWS(w http.ResponseWriter, r *http.Request) (net.Conn, *bufio.ReadWriter) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: GET required", http.StatusMethodNotAllowed)
		return nil, nil
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket: upgrade headers missing", http.StatusBadRequest)
		return nil, nil
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		http.Error(w, "websocket: version 13 required", http.StatusBadRequest)
		return nil, nil
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: Sec-WebSocket-Key missing", http.StatusBadRequest)
		return nil, nil
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: hijacking unsupported", http.StatusInternalServerError)
		return nil, nil
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "websocket: hijack failed", http.StatusInternalServerError)
		return nil, nil
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		conn.Close()
		return nil, nil
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return nil, nil
	}
	return conn, brw
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// writeFrame emits one frame (FIN always set; we never fragment writes).
func writeFrame(w io.Writer, op byte, masked bool, payload []byte) error {
	var hdr [14]byte
	hdr[0] = 0x80 | op
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	if !masked {
		if _, err := w.Write(hdr[:n]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	}
	hdr[1] |= 0x80
	var mask [4]byte
	if _, err := rand.Read(mask[:]); err != nil {
		return err
	}
	copy(hdr[n:n+4], mask[:])
	n += 4
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	body := make([]byte, len(payload))
	for i, b := range payload {
		body[i] = b ^ mask[i&3]
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one raw frame, unmasking if needed.
func readFrame(r *bufio.Reader) (fin bool, op byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	fin = hdr[0]&0x80 != 0
	op = hdr[0] & 0x0f
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(r, ext[:]); err != nil {
			return
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(r, ext[:]); err != nil {
			return
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > wsMaxMessage {
		err = fmt.Errorf("serve: websocket frame of %d bytes exceeds limit", length)
		return
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(r, mask[:]); err != nil {
			return
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(r, payload); err != nil {
		return
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return
}

// readMessage reassembles one data message, transparently answering pings
// and returning ErrClosed on a close frame. answer writes control
// responses (pong/close echo); it may be nil to drop them.
func readMessage(r *bufio.Reader, answer func(op byte, payload []byte) error) (byte, []byte, error) {
	var (
		msgOp  byte
		msg    []byte
		inProg bool
	)
	for {
		fin, op, payload, err := readFrame(r)
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case opPing:
			if answer != nil {
				if err := answer(opPong, payload); err != nil {
					return 0, nil, err
				}
			}
			continue
		case opPong:
			continue
		case opClose:
			if answer != nil {
				answer(opClose, payload)
			}
			return 0, nil, ErrClosed
		case opContinuation:
			if !inProg {
				return 0, nil, errors.New("serve: websocket continuation without start")
			}
		case opText, opBinary:
			if inProg {
				return 0, nil, errors.New("serve: websocket interleaved data frames")
			}
			msgOp, inProg = op, true
		default:
			return 0, nil, fmt.Errorf("serve: websocket reserved opcode %#x", op)
		}
		if len(msg)+len(payload) > wsMaxMessage {
			return 0, nil, errors.New("serve: websocket message exceeds size limit")
		}
		msg = append(msg, payload...)
		if fin {
			return msgOp, msg, nil
		}
	}
}

// WSConn is a dialed client connection — what `kkt ws` and the smoke
// tests read the push stream with.
type WSConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// DialWS connects and performs the client handshake. Accepts ws:// or
// http:// URLs (a bare host:port/path works too).
func DialWS(rawURL string, timeout time.Duration) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	switch u.Scheme {
	case "ws", "http", "":
	default:
		return nil, fmt.Errorf("serve: unsupported websocket scheme %q", u.Scheme)
	}
	host := u.Host
	if host == "" {
		host = u.Path // bare "host:port"
		u.Path = "/"
	}
	if u.Path == "" {
		u.Path = "/"
	}
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, err
	}
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n",
		u.RequestURI(), host, key)
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("serve: websocket handshake refused: %s", resp.Status)
	}
	if got, want := resp.Header.Get("Sec-WebSocket-Accept"), wsAcceptKey(key); got != want {
		conn.Close()
		return nil, fmt.Errorf("serve: websocket accept key mismatch")
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	return &WSConn{conn: conn, br: br}, nil
}

// SetReadDeadline bounds the next ReadMessage.
func (c *WSConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// ReadMessage returns the next data message's payload, answering pings
// and returning an error once the server closes.
func (c *WSConn) ReadMessage() ([]byte, error) {
	_, msg, err := readMessage(c.br, func(op byte, payload []byte) error {
		return writeFrame(c.conn, op, true, payload)
	})
	return msg, err
}

// WriteMessage sends one masked text message.
func (c *WSConn) WriteMessage(payload []byte) error {
	return writeFrame(c.conn, opText, true, payload)
}

// Close sends a close frame and tears down the connection.
func (c *WSConn) Close() error {
	writeFrame(c.conn, opClose, true, nil)
	return c.conn.Close()
}
