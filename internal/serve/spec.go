package serve

import (
	"fmt"
	"math"

	"kkt/internal/graph"
	"kkt/internal/rng"
)

// GraphSpec names a seeded generated topology: the daemon's (and a trace
// file's) self-contained description of its initial graph. Build is a
// pure function of the spec, so any process holding the spec reconstructs
// the byte-identical topology — the trace header's digest verifies it.
type GraphSpec struct {
	Family string `json:"family"` // gnm | ring | grid | expander | complete | tree
	N      int    `json:"n"`
	M      int    `json:"m,omitempty"`       // gnm edge count (default 3n)
	Degree int    `json:"degree,omitempty"`  // expander degree (default 4)
	MaxRaw uint64 `json:"max_raw,omitempty"` // weight bound (default 1024)
	Seed   uint64 `json:"seed"`
}

// WithDefaults fills the zero-value tunables, mirroring the harness
// registry's defaults.
func (s GraphSpec) WithDefaults() GraphSpec {
	if s.MaxRaw == 0 {
		s.MaxRaw = 1024
	}
	if s.Family == "gnm" && s.M == 0 {
		s.M = 3 * s.N
	}
	if s.Family == "expander" && s.Degree == 0 {
		s.Degree = 4
	}
	return s
}

// Validate rejects malformed specs, checked with defaults applied.
func (s GraphSpec) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("serve: graph n=%d, want >= 2", s.N)
	}
	s = s.WithDefaults()
	switch s.Family {
	case "gnm":
		if s.M < s.N-1 || s.M > s.N*(s.N-1)/2 {
			return fmt.Errorf("serve: gnm m=%d out of range for n=%d", s.M, s.N)
		}
	case "grid":
		if side := int(math.Sqrt(float64(s.N))); side*side != s.N {
			return fmt.Errorf("serve: grid n=%d is not a perfect square", s.N)
		}
	case "expander":
		if s.Degree < 3 || s.Degree >= s.N {
			return fmt.Errorf("serve: expander degree=%d out of range for n=%d", s.Degree, s.N)
		}
	case "ring", "complete", "tree":
	default:
		return fmt.Errorf("serve: unknown graph family %q", s.Family)
	}
	return nil
}

// Build generates the topology. workers parallelizes generation where the
// family supports it; generated graphs are byte-identical at any worker
// count.
func (s GraphSpec) Build(workers int) *graph.Graph {
	s = s.WithDefaults()
	if workers < 1 {
		workers = 1
	}
	r := rng.New(s.Seed)
	w := graph.UniformWeights(r.Split(), s.MaxRaw)
	switch s.Family {
	case "gnm":
		return graph.GNMWorkers(r, s.N, s.M, s.MaxRaw, w, workers)
	case "ring":
		return graph.Ring(s.N, s.MaxRaw, w)
	case "grid":
		side := int(math.Sqrt(float64(s.N)))
		return graph.Grid(side, side, s.MaxRaw, w)
	case "expander":
		return graph.Expander(r, s.N, s.Degree, s.MaxRaw, w)
	case "complete":
		return graph.Complete(s.N, s.MaxRaw, w)
	case "tree":
		return graph.RandomTree(r, s.N, s.MaxRaw, w)
	default:
		panic(fmt.Sprintf("serve: unknown family %q", s.Family))
	}
}
