// Package idspace maps node identities from a huge (up to exponential) ID
// space into a polynomial range, the reduction the paper invokes in §1:
// "using the classic Karp-Rabin fingerprinting, w.h.p., we can easily map n
// ID's in exponential ID space to distinct ID's in polynomial ID space."
//
// Each raw identity is fingerprinted as rawID mod p for a random prime p of
// Theta(log n) bits; two distinct 64-bit identities collide for at most 64
// of the primes in any window, so drawing p from a window with poly(n)
// primes makes all pairs distinct w.h.p. The mapping is position-free: a
// node computes its fingerprint knowing only its own raw ID and the shared
// random prime, so it also applies to the neighbour IDs known under KT1.
package idspace

import (
	"fmt"
	"sort"

	"kkt/internal/primes"
	"kkt/internal/rng"
)

// Mapper fingerprints raw 64-bit identities into a compact space.
type Mapper struct {
	p uint64
}

// NewMapper draws a random fingerprinting prime suitable for n nodes with
// failure probability <= n^-c. The prime is drawn uniformly from primes in
// [L, 2L) where L = n^(c+2)·64·ln(L): by the prime number theorem the
// window holds ~L/ln(L) primes, while each of the <= n^2/2 colliding pairs
// rules out at most 64 of them.
func NewMapper(r *rng.RNG, n int, c int) Mapper {
	if n < 1 {
		panic("idspace: n must be positive")
	}
	if c < 1 {
		c = 1
	}
	// L = n^(c+2) * 2^12 caps collision probability well under n^-c for
	// all n >= 2 while keeping fingerprints well inside 62 bits for the
	// sizes the simulator supports.
	l := uint64(1)
	for i := 0; i < c+2; i++ {
		next := l * uint64(n)
		if next/uint64(n) != l || next > 1<<48 {
			l = 1 << 48 // saturate; still poly-bounded in spirit
			break
		}
		l = next
	}
	l <<= 12
	p := primes.NextPrime(l + r.Uint64n(l))
	return Mapper{p: p}
}

// NewMapperWithPrime builds a mapper with an explicit prime, for tests.
func NewMapperWithPrime(p uint64) (Mapper, error) {
	if !primes.IsPrime(p) {
		return Mapper{}, fmt.Errorf("idspace: %d is not prime", p)
	}
	return Mapper{p: p}, nil
}

// Prime returns the fingerprinting prime.
func (m Mapper) Prime() uint64 { return m.p }

// Fingerprint maps a raw identity into [1, p]: rawID mod p, with 0 shifted
// to p so that fingerprints are positive as the paper's ID range [1, n^c]
// requires.
func (m Mapper) Fingerprint(rawID uint64) uint64 {
	f := rawID % m.p
	if f == 0 {
		return m.p
	}
	return f
}

// Distinct reports whether the fingerprints of all raw IDs are pairwise
// distinct (the w.h.p. event). Build-time setup uses it to validate a drawn
// prime and redraw in the negligible failure case.
func (m Mapper) Distinct(rawIDs []uint64) bool {
	fps := make([]uint64, len(rawIDs))
	for i, id := range rawIDs {
		fps[i] = m.Fingerprint(id)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for i := 1; i < len(fps); i++ {
		if fps[i] == fps[i-1] {
			return false
		}
	}
	return true
}

// CompactMap fingerprints all raw IDs and then rank-compresses the result
// into dense IDs 1..n (rank in fingerprint order). Rank compression is a
// simulator convenience for indexing; algorithms only ever compare IDs, and
// fingerprinting preserves distinctness, so ranks preserve the KT1
// semantics. It returns an error if the drawn prime collides (probability
// <= n^-c; callers redraw).
func (m Mapper) CompactMap(rawIDs []uint64) (map[uint64]uint32, error) {
	type pair struct {
		fp  uint64
		raw uint64
	}
	pairs := make([]pair, len(rawIDs))
	for i, id := range rawIDs {
		pairs[i] = pair{fp: m.Fingerprint(id), raw: id}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].fp < pairs[j].fp })
	out := make(map[uint64]uint32, len(pairs))
	for i, pr := range pairs {
		if i > 0 && pr.fp == pairs[i-1].fp {
			return nil, fmt.Errorf("idspace: fingerprint collision under prime %d", m.p)
		}
		out[pr.raw] = uint32(i + 1)
	}
	return out, nil
}
