package idspace

import (
	"testing"

	"kkt/internal/rng"
)

func TestFingerprintPositiveAndStable(t *testing.T) {
	m, err := NewMapperWithPrime(101)
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range []uint64{0, 1, 100, 101, 202, 1 << 60} {
		f := m.Fingerprint(raw)
		if f < 1 || f > 101 {
			t.Errorf("Fingerprint(%d) = %d outside [1,101]", raw, f)
		}
		if f != m.Fingerprint(raw) {
			t.Error("fingerprint not deterministic")
		}
	}
	// multiples of p map to p, not 0
	if m.Fingerprint(202) != 101 {
		t.Errorf("Fingerprint(202) = %d, want 101", m.Fingerprint(202))
	}
}

func TestNewMapperDistinctWHP(t *testing.T) {
	r := rng.New(8)
	// 1000 exponential-space IDs; a random poly-range prime must keep
	// them distinct (failure probability is negligible).
	raws := make([]uint64, 1000)
	for i := range raws {
		raws[i] = r.Uint64()
	}
	m := NewMapper(r, len(raws), 2)
	if !m.Distinct(raws) {
		t.Fatalf("collision with prime %d (probability ~ n^-2)", m.Prime())
	}
}

func TestDistinctDetectsCollision(t *testing.T) {
	m, err := NewMapperWithPrime(97)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distinct([]uint64{5, 5 + 97}) {
		t.Error("failed to detect forced collision")
	}
	if !m.Distinct([]uint64{1, 2, 3}) {
		t.Error("false collision")
	}
}

func TestCompactMapDense(t *testing.T) {
	r := rng.New(3)
	raws := make([]uint64, 500)
	for i := range raws {
		raws[i] = r.Uint64() | 1<<63 // huge IDs
	}
	m := NewMapper(r, len(raws), 2)
	cm, err := m.CompactMap(raws)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm) != len(raws) {
		t.Fatalf("mapped %d of %d", len(cm), len(raws))
	}
	seen := make([]bool, len(raws)+1)
	for _, compact := range cm {
		if compact < 1 || int(compact) > len(raws) {
			t.Fatalf("compact ID %d out of range", compact)
		}
		if seen[compact] {
			t.Fatalf("duplicate compact ID %d", compact)
		}
		seen[compact] = true
	}
}

func TestCompactMapOrderPreservesFingerprints(t *testing.T) {
	// rank compression must order by fingerprint value
	m, err := NewMapperWithPrime(1009)
	if err != nil {
		t.Fatal(err)
	}
	raws := []uint64{10, 20, 30}
	cm, err := m.CompactMap(raws)
	if err != nil {
		t.Fatal(err)
	}
	// fingerprints are 10, 20, 30 themselves (below p): ranks 1,2,3
	if cm[10] != 1 || cm[20] != 2 || cm[30] != 3 {
		t.Errorf("unexpected ranks: %v", cm)
	}
}

func TestCompactMapReportsCollision(t *testing.T) {
	m, err := NewMapperWithPrime(97)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CompactMap([]uint64{3, 3 + 97}); err == nil {
		t.Error("collision not reported")
	}
}
