package ghs

import (
	"sort"
	"testing"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/spanning"
	"kkt/internal/tree"
)

func buildAndCheck(t *testing.T, g *graph.Graph) BuildResult {
	t.Helper()
	nw := congest.NewNetwork(g)
	pr := tree.Attach(nw)
	gp := Attach(nw)
	res, err := Build(nw, pr, gp)
	if err != nil {
		t.Fatalf("GHS Build: %v", err)
	}
	idx := make([]int, 0, len(res.Forest))
	for _, e := range res.Forest {
		i := g.EdgeIndex(uint32(e[0]), uint32(e[1]))
		if i < 0 {
			t.Fatalf("marked edge {%d,%d} not in graph", e[0], e[1])
		}
		idx = append(idx, i)
	}
	sort.Ints(idx)
	if err := spanning.IsMSF(g, idx); err != nil {
		t.Fatalf("GHS result is not the MSF: %v", err)
	}
	return res
}

func TestGHSTiny(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"two nodes", graph.Path(2, 10, graph.UnitWeights())},
		{"triangle", graph.Complete(3, 10, func(k int) uint64 { return uint64(k + 1) })},
		{"K5", graph.Complete(5, 100, func(k int) uint64 { return uint64(2*k + 1) })},
		{"path", graph.Path(8, 100, func(k int) uint64 { return uint64(k + 1) })},
		{"ring", graph.Ring(7, 10, func(k int) uint64 { return uint64(k + 1) })},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buildAndCheck(t, tt.g)
		})
	}
}

func TestGHSRandom(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 12; trial++ {
		n := 8 + r.Intn(40)
		maxM := n * (n - 1) / 2
		m := n - 1 + r.Intn(maxM-n+2)
		g := graph.GNM(r, n, m, 1000, graph.UniformWeights(r, 1000))
		buildAndCheck(t, g)
	}
}

func TestGHSDisconnected(t *testing.T) {
	g := graph.MustNew(6, 10)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(1, 3, 2)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 6, 2)
	res := buildAndCheck(t, g)
	if len(res.Forest) != 4 {
		t.Errorf("forest edges = %d, want 4", len(res.Forest))
	}
}

func TestGHSDeterministic(t *testing.T) {
	r := rng.New(9)
	g := graph.GNM(r, 30, 100, 500, graph.UniformWeights(r, 500))
	r1 := buildAndCheck(t, g)
	r2 := buildAndCheck(t, g)
	if r1.Messages != r2.Messages || r1.Phases != r2.Phases {
		t.Error("GHS (deterministic) varied between runs")
	}
}

func TestGHSMessageProfile(t *testing.T) {
	// Messages must be O(m + n log n): test/status traffic is bounded by
	// ~2 messages per (edge-endpoint reject) + per-phase accepts; checks
	// the dominant O(m) term is really amortised (each edge rejected at
	// most once per endpoint over the whole run).
	r := rng.New(14)
	g := graph.Complete(40, 10000, graph.UniformWeights(r, 10000)) // m = 780
	res := buildAndCheck(t, g)
	c := countKinds(t, g)
	_ = c
	m := uint64(g.M())
	n := uint64(g.N)
	lgn := uint64(6)
	// generous constant: 4m for test/status + 8n lg n for tree traffic.
	bound := 4*m + 8*n*lgn + 4*n
	if res.Messages > bound {
		t.Errorf("GHS used %d messages, bound %d (m=%d)", res.Messages, bound, m)
	}
}

// countKinds is a placeholder for per-kind assertions; the by-kind split
// is covered by congest counters elsewhere.
func countKinds(t *testing.T, g *graph.Graph) int { return g.M() }

func TestGHSRejectCachePersists(t *testing.T) {
	// On a dense graph the number of test messages must stay ~2m, not
	// m * phases: rejected edges are never re-probed.
	r := rng.New(44)
	g := graph.Complete(24, 1000, graph.UniformWeights(r, 1000)) // m=276
	nw := congest.NewNetwork(g)
	pr := tree.Attach(nw)
	gp := Attach(nw)
	res, err := Build(nw, pr, gp)
	if err != nil {
		t.Fatal(err)
	}
	tests := nw.Counters().ByKind[KindTest.String()].Messages
	// every edge can be probed twice total in the reject direction plus
	// one accept per node per phase.
	bound := uint64(2*g.M()) + uint64(g.N*res.Phases)
	if tests > bound {
		t.Errorf("test messages = %d, bound %d", tests, bound)
	}
}
