// Package ghs is the classical baseline the paper improves on: a
// synchronous Borůvka/GHS-style MST construction with the Gallager-
// Humblet-Spira message profile O(m + n log n) [13].
//
// Each phase, every fragment broadcasts its identity down its tree; every
// node then probes its cheapest incident candidate edges one at a time
// ("test"), and the probed neighbour answers accept (different fragment)
// or reject (same fragment). A rejected edge is internal forever
// (fragments only merge), so both endpoints cache the rejection and never
// test it again — that cache is why GHS is *not* impromptu: it keeps
// O(deg) bits of state per node between operations, which is exactly the
// contrast the paper draws. Each edge is rejected at most once over the
// whole run, giving the O(m) term; the per-phase tree traffic gives the
// O(n log n) term.
package ghs

import (
	"fmt"
	"math"
	"sort"

	"kkt/internal/congest"
	"kkt/internal/tree"
)

// Message kinds, interned once at package init.
var (
	KindFrag   = congest.Kind("ghs.frag")   // fragment-identity broadcast
	KindTest   = congest.Kind("ghs.test")   // edge probe
	KindStatus = congest.Kind("ghs.status") // accept/reject reply
	KindReport = congest.Kind("ghs.report") // convergecast of the minimum candidate
)

// candidate is a minimum-outgoing-edge candidate.
type candidate struct {
	composite uint64
	edgeNum   uint64
	valid     bool
}

// nodeState is one node's GHS automaton state. The rejection cache
// persists across phases (the non-impromptu O(deg) state the paper
// contrasts with); the rest is per-phase. Rejections are a bitmask over
// the node's sorted edge slice (index = position in NodeState.Edges):
// rejLow covers the first 64 incident edges inline, rejHigh spills lazily
// for high-degree nodes — no per-node map, and re-entering a phase
// allocates nothing once warm.
//
// Invariant: the topology must not mutate during a build — edge positions
// key the cache, so an insert/delete would shift them. GHS only runs as a
// build on a static topology (repairs never use it).
type nodeState struct {
	rejLow  uint64
	rejHigh []uint64

	phase      int
	fragID     congest.NodeID
	parent     congest.NodeID
	expected   int       // children reports still missing
	ownBest    candidate // the node's own accepted candidate
	childBest  candidate // minimum over children's reports
	ownDone    bool      // this node's probing finished
	probeIdx   int       // position in the sorted candidate list
	probing    bool      // a test is in flight
	reported   bool      // report went up (or completed, at the root)
	probes     []int32   // candidate edge indices into NodeState.Edges
	probeComps []uint64
	deferred   []deferredTest    // tests from the next phase, answered on entry
	session    congest.SessionID // root only: fragment session to complete
}

// reject caches that the i-th incident edge is internal forever.
func (st *nodeState) reject(i int) {
	if i < 64 {
		st.rejLow |= 1 << uint(i)
		return
	}
	w := (i - 64) >> 6
	for len(st.rejHigh) <= w {
		st.rejHigh = append(st.rejHigh, 0)
	}
	st.rejHigh[w] |= 1 << uint((i-64)&63)
}

// isRejected reports whether the i-th incident edge is cached as internal.
func (st *nodeState) isRejected(i int) bool {
	if i < 64 {
		return st.rejLow&(1<<uint(i)) != 0
	}
	w := (i - 64) >> 6
	if w >= len(st.rejHigh) {
		return false
	}
	return st.rejHigh[w]&(1<<uint((i-64)&63)) != 0
}

// sort.Interface over the parallel probe buffers, cheapest first; *nodeState
// implements it directly so sort.Sort gets a pointer and allocates nothing.
func (st *nodeState) Len() int           { return len(st.probes) }
func (st *nodeState) Less(i, j int) bool { return st.probeComps[i] < st.probeComps[j] }
func (st *nodeState) Swap(i, j int) {
	st.probes[i], st.probes[j] = st.probes[j], st.probes[i]
	st.probeComps[i], st.probeComps[j] = st.probeComps[j], st.probeComps[i]
}

// Protocol is the per-network GHS instance.
type Protocol struct {
	nw    *congest.Network
	state []nodeState
}

// Attach registers the GHS handlers. Call once per network, after
// tree.Attach (Build reuses tree's broadcast-and-echo for Add-Edge).
func Attach(nw *congest.Network) *Protocol {
	g := &Protocol{nw: nw, state: make([]nodeState, nw.N()+1)}
	nw.RegisterHandler(KindFrag, g.onFrag)
	nw.RegisterHandler(KindTest, g.onTest)
	nw.RegisterHandler(KindStatus, g.onStatus)
	nw.RegisterHandler(KindReport, g.onReport)
	return g
}

// PhaseStat records one GHS phase.
type PhaseStat struct {
	// Fragments is the number of fragments at the start of the phase;
	// Merges the number whose minimum-outgoing-edge search succeeded.
	Fragments int
	Merges    int
	// Messages, Bits and Rounds are the phase's cost; Classes breaks it
	// down by kind class (sorted by class name).
	Messages uint64
	Bits     uint64
	Rounds   int64
	Classes  []congest.ClassCost
}

// BuildResult reports a GHS run.
type BuildResult struct {
	Forest [][2]congest.NodeID
	Phases int
	// PhaseStats has one entry per executed phase (len == Phases).
	PhaseStats []PhaseStat
	Messages   uint64
	Bits       uint64
	Rounds     int64
}

// Build constructs the minimum spanning forest deterministically, driving
// fragments with continuation tasks (the default model).
func Build(nw *congest.Network, pr *tree.Protocol, g *Protocol) (BuildResult, error) {
	return BuildDrivers(nw, pr, g, congest.DriverCont)
}

// BuildDrivers is Build with an explicit per-fragment driver model; the
// goroutine model remains as the parity reference.
func BuildDrivers(nw *congest.Network, pr *tree.Protocol, g *Protocol, mode congest.DriverMode) (BuildResult, error) {
	var result BuildResult
	maxPhases := int(math.Ceil(math.Log2(float64(nw.N())))) + 2
	nw.Spawn("ghs", func(p *congest.Proc) error {
		var scratch congest.FanoutScratch[bool]
		var drivers []*fragDriver
		var meter congest.PhaseMeter
		for phase := 1; ; phase++ {
			if phase > maxPhases {
				return fmt.Errorf("ghs: exceeded %d phases — not converging", maxPhases)
			}
			meter.Begin(nw)
			elect, err := pr.ElectAll(p)
			if err != nil {
				return err
			}
			if len(elect.CycleNodes) > 0 {
				return fmt.Errorf("ghs: cycle in marked subgraph at phase %d", phase)
			}
			result.Phases = phase
			stat := PhaseStat{Fragments: len(elect.Leaders)}
			if o := nw.Obs(); o != nil {
				o.PhaseStart("ghs", phase, stat.Fragments, nw.Now())
			}
			merged := scratch.Outcomes(len(elect.Leaders))
			if mode == congest.DriverGoroutine {
				procs := scratch.Procs()
				for i, leader := range elect.Leaders {
					i, leader := i, leader
					procs = append(procs, p.GoTagged("ghs", uint64(phase), uint64(leader), func(fp *congest.Proc) error {
						cand, err := g.runFragment(fp, leader, phase)
						if err != nil {
							return err
						}
						if !cand.valid {
							return nil
						}
						merged[i] = true
						_, err = pr.BroadcastEcho(fp, leader, tree.AddEdgeSpec(cand.edgeNum))
						return err
					}))
				}
				scratch.KeepProcs(procs)
				if err := p.WaitAll(procs...); err != nil {
					return err
				}
			} else {
				tasks := scratch.Tasks()
				for i, leader := range elect.Leaders {
					for len(drivers) <= i {
						drivers = append(drivers, &fragDriver{})
					}
					d := drivers[i]
					d.init(g, pr, leader, phase, &merged[i])
					tasks = append(tasks, p.GoStepTagged("ghs", uint64(phase), uint64(leader), d))
				}
				scratch.KeepTasks(tasks)
				if err := p.WaitTasks(tasks...); err != nil {
					return err
				}
			}
			p.AwaitQuiescence()
			nw.ApplyStaged()
			merges := 0
			for _, m := range merged {
				if m {
					merges++
				}
			}
			stat.Merges = merges
			cost := meter.End()
			stat.Messages, stat.Bits, stat.Rounds = cost.Messages, cost.Bits, cost.Rounds
			stat.Classes = cost.Classes
			result.PhaseStats = append(result.PhaseStats, stat)
			if o := nw.Obs(); o != nil {
				o.PhaseEnd("ghs", phase, nw.Now(), cost)
			}
			if merges == 0 {
				return nil // every fragment is maximal: done, deterministically
			}
		}
	})
	err := nw.Run()
	if err == nil {
		result.Forest = nw.MarkedEdges()
		c := nw.Counters()
		result.Messages = c.Messages
		result.Bits = c.Bits
		result.Rounds = nw.Now()
	}
	return result, err
}

// fragDriver is the continuation driver of one GHS fragment for one
// phase: enter the phase at the leader, await the convergecast report,
// then (when a candidate was accepted) run the Add-Edge broadcast.
type fragDriver struct {
	g       *Protocol
	pr      *tree.Protocol
	leader  congest.NodeID
	phase   int
	merged  *bool
	started bool // the fragment session is in flight
	adding  bool // the Add-Edge broadcast is in flight
}

// init arms the driver for one fragment of one phase.
func (d *fragDriver) init(g *Protocol, pr *tree.Protocol, leader congest.NodeID, phase int, merged *bool) {
	d.g, d.pr, d.leader, d.phase, d.merged = g, pr, leader, phase, merged
	d.started, d.adding = false, false
}

// Step implements congest.StepDriver: the continuation form of
// runFragment plus the Add-Edge broadcast.
func (d *fragDriver) Step(t *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	nw := d.g.nw
	if !d.started {
		// First step: enter the phase at the leader (which broadcasts the
		// fragment identity); the fragment session completes with the
		// convergecast report of the minimum outgoing candidate.
		d.started = true
		sid := nw.NewSession(nil)
		node := nw.Node(d.leader)
		st := &d.g.state[d.leader]
		st.session = sid
		d.g.enterPhase(nw, node, st, d.phase, d.leader, 0)
		return sid, false, nil
	}
	if err := w.Err(); err != nil {
		return 0, true, err
	}
	if d.adding {
		return 0, true, nil
	}
	v, _ := w.Value()
	cand := v.(candidate)
	if !cand.valid {
		return 0, true, nil
	}
	*d.merged = true
	d.adding = true
	return d.pr.StartBroadcastEcho(d.leader, tree.AddEdgeSpec(cand.edgeNum)), false, nil
}

// runFragment drives one fragment through one phase: enter the phase at
// the leader (which broadcasts the fragment identity), then await the
// convergecast report of the minimum outgoing candidate.
func (g *Protocol) runFragment(p *congest.Proc, leader congest.NodeID, phase int) (candidate, error) {
	sid := g.nw.NewSession(nil)
	node := g.nw.Node(leader)
	st := &g.state[leader]
	st.session = sid
	g.enterPhase(g.nw, node, st, phase, leader, 0)
	v, err := p.Await(sid)
	if err != nil {
		return candidate{}, err
	}
	return v.(candidate), nil
}

// enterPhase initialises a node's per-phase state, forwards the fragment
// broadcast to its tree children, answers deferred probes and starts its
// own probing. nw is the network view of the calling context (the shard
// view inside handlers), so every send lands in the right lane.
func (g *Protocol) enterPhase(nw *congest.Network, node *congest.NodeState, st *nodeState, phase int, fragID, parent congest.NodeID) {
	st.phase = phase
	st.fragID = fragID
	st.parent = parent
	st.ownBest = candidate{}
	st.childBest = candidate{}
	st.ownDone = false
	st.probeIdx = 0
	st.probing = false
	st.reported = false
	st.expected = 0
	for i := range node.Edges {
		he := &node.Edges[i]
		if he.Marked && he.Neighbor != parent {
			st.expected++
			nw.SendU(node.ID, he.Neighbor, KindFrag, 0, 64, packPhaseFrag(phase, fragID))
		}
	}
	// candidate edges: unmarked, not rejected, cheapest first (composites
	// are unique, so the order is deterministic). The parallel buffers
	// recycle across phases.
	st.probes = st.probes[:0]
	st.probeComps = st.probeComps[:0]
	for i := range node.Edges {
		he := &node.Edges[i]
		if !he.Marked && !st.isRejected(i) {
			st.probes = append(st.probes, int32(i))
			st.probeComps = append(st.probeComps, he.Composite)
		}
	}
	sort.Sort(st)
	// answer probes that arrived before we entered the phase.
	deferred := st.deferred
	st.deferred = nil
	for _, d := range deferred {
		g.answerTest(nw, node, d.from, d.tm)
	}
	g.advanceProbe(nw, node, st)
}

// deferredTest is a probe that arrived ahead of its phase; the payload is
// copied out of the Message, which the engine recycles after the handler
// returns.
type deferredTest struct {
	from congest.NodeID
	tm   testMsg
}

type testMsg struct {
	Phase  int
	FragID congest.NodeID
}

// Frag and test messages carry (phase, fragment ID) — two small fields
// packed into the unboxed message word so the per-phase tree broadcast and
// the edge probes never box a payload.
func packPhaseFrag(phase int, fragID congest.NodeID) uint64 {
	return uint64(phase)<<32 | uint64(fragID)
}

func unpackPhaseFrag(u uint64) (phase int, fragID congest.NodeID) {
	return int(u >> 32), congest.NodeID(u & 0xffffffff)
}

// advanceProbe sends the next test, or finishes the node's local part.
// A node always completes its own probing: a child's report must not
// suppress a possibly lighter local candidate.
func (g *Protocol) advanceProbe(nw *congest.Network, node *congest.NodeState, st *nodeState) {
	if st.probing || st.ownDone {
		g.maybeReport(nw, node, st)
		return
	}
	for st.probeIdx < len(st.probes) {
		ei := int(st.probes[st.probeIdx])
		if st.isRejected(ei) { // rejected by the other side mid-phase
			st.probeIdx++
			continue
		}
		st.probing = true
		nw.SendU(node.ID, node.Edges[ei].Neighbor, KindTest, 0, 64, packPhaseFrag(st.phase, st.fragID))
		return
	}
	st.ownDone = true
	g.maybeReport(nw, node, st)
}

// maybeReport sends the report up once probing is done and all children
// reported.
func (g *Protocol) maybeReport(nw *congest.Network, node *congest.NodeState, st *nodeState) {
	if st.probing || !st.ownDone || st.expected > 0 || st.reported {
		return
	}
	st.reported = true
	best := st.ownBest
	if st.childBest.valid && (!best.valid || st.childBest.composite < best.composite) {
		best = st.childBest
	}
	if st.parent == 0 {
		nw.CompleteSession(st.session, best, nil)
		return
	}
	nw.Send(node.ID, st.parent, KindReport, 0, 129, best)
}

func (g *Protocol) onFrag(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	phase, fragID := unpackPhaseFrag(msg.U)
	g.enterPhase(nw, node, &g.state[node.ID], phase, fragID, msg.From)
}

func (g *Protocol) onTest(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	phase, fragID := unpackPhaseFrag(msg.U)
	g.answerTest(nw, node, msg.From, testMsg{Phase: phase, FragID: fragID})
}

func (g *Protocol) answerTest(nw *congest.Network, node *congest.NodeState, from congest.NodeID, tm testMsg) {
	st := &g.state[node.ID]
	if tm.Phase > st.phase {
		st.deferred = append(st.deferred, deferredTest{from: from, tm: tm})
		return
	}
	accept := st.fragID != tm.FragID
	if !accept {
		// internal forever: cache the rejection on this side too.
		st.reject(node.EdgeIndex(from))
	}
	var word uint64
	if accept {
		word = 1
	}
	nw.SendU(node.ID, from, KindStatus, 0, 8, word)
}

func (g *Protocol) onStatus(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	st := &g.state[node.ID]
	st.probing = false
	if msg.U != 0 {
		// probing in increasing weight order: the first accept is the
		// node's minimum outgoing edge.
		he := node.EdgeTo(msg.From)
		st.ownBest = candidate{composite: he.Composite, edgeNum: he.EdgeNum, valid: true}
		st.ownDone = true
	} else {
		st.reject(node.EdgeIndex(msg.From))
		st.probeIdx++
	}
	g.advanceProbe(nw, node, st)
}

func (g *Protocol) onReport(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	st := &g.state[node.ID]
	c := msg.Payload.(candidate)
	if c.valid && (!st.childBest.valid || c.composite < st.childBest.composite) {
		st.childBest = c
	}
	st.expected--
	g.maybeReport(nw, node, st)
}
