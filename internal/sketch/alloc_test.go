package sketch

import (
	"testing"

	"kkt/internal/race"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/hashing"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// markedPath builds a 256-node path network with every edge marked: one
// long tree, so any per-node churn in a broadcast-and-echo multiplies by
// 256 and trips the constant budgets below.
func markedPath(t *testing.T, n int) (*congest.Network, *tree.Protocol) {
	t.Helper()
	g := graph.Path(n, 1<<20, func(k int) uint64 { return uint64(k + 1) })
	nw := congest.NewNetwork(g)
	forest := make([][2]congest.NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		forest = append(forest, [2]congest.NodeID{congest.NodeID(i), congest.NodeID(i + 1)})
	}
	nw.SetForest(forest)
	return nw, tree.Attach(nw)
}

// TestTestOutBroadcastAllocs pins one full TestOut broadcast-and-echo —
// 64 lanes, stride lane lookup, unboxed parity-word echoes — at constant
// allocations over a 256-node tree.
func TestTestOutBroadcastAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	const n = 256
	nw, pr := markedPath(t, n)
	runner := NewTestOutRunner()
	h := hashing.NewOddHash(rng.New(11))
	iv := Interval{Lo: 1, Hi: 1 << 40}
	wave := func() {
		nw.Spawn("testout", func(p *congest.Proc) error {
			_, err := runner.Lanes(p, pr, 1, h, iv, Lanes)
			return err
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave() // warm pools
	avg := testing.AllocsPerRun(5, wave)
	if avg > 32 {
		t.Errorf("TestOut B&E on %d nodes: %.1f allocs, budget 32 — per-node churn reintroduced?", n, avg)
	}
}

// TestHPTestOutBroadcastAllocs pins one HP-TestOut broadcast-and-echo at
// constant allocations: pooled hpEval echoes circulate through the tree
// instead of one pair-slice allocation per node.
func TestHPTestOutBroadcastAllocs(t *testing.T) {
	race.SkipAllocTest(t)
	const n = 256
	nw, pr := markedPath(t, n)
	runner := NewHPRunner()
	alphas := DrawAlphas(rng.New(13), MaxReps)
	iv := Interval{Lo: 1, Hi: 1 << 40}
	wave := func() {
		nw.Spawn("hp", func(p *congest.Proc) error {
			_, err := runner.Run(p, pr, 1, alphas, iv)
			return err
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	wave()
	avg := testing.AllocsPerRun(5, wave)
	if avg > 48 {
		t.Errorf("HP-TestOut B&E on %d nodes: %.1f allocs, budget 48 — per-node churn reintroduced?", n, avg)
	}
}

// TestStrideLaneMatchesSplit cross-checks the O(1) stride lane lookup
// against the materialised Split intervals: every value in the range maps
// to the unique lane that contains it, for adversarial range/lane shapes.
func TestStrideLaneMatchesSplit(t *testing.T) {
	ivs := []Interval{
		{Lo: 1, Hi: 1},
		{Lo: 1, Hi: 63},
		{Lo: 1, Hi: 64},
		{Lo: 1, Hi: 65},
		{Lo: 5, Hi: 4096},
		{Lo: 100, Hi: 101},
		{Lo: 7, Hi: 7 + 630},
	}
	for _, iv := range ivs {
		for _, n := range []int{1, 2, 63, 64} {
			lanes := iv.Split(n)
			if got := iv.NumLanes(n); got != len(lanes) {
				t.Fatalf("%+v n=%d: NumLanes=%d, Split produced %d", iv, n, got, len(lanes))
			}
			stride := iv.Stride(n)
			for v := iv.Lo; v <= iv.Hi; v++ {
				li := int((v - iv.Lo) / stride)
				if li >= len(lanes) || v < lanes[li].Lo || v > lanes[li].Hi {
					t.Fatalf("%+v n=%d: value %d -> lane %d, not contained (lanes %v)", iv, n, v, li, lanes)
				}
				if got := iv.Lane(n, li); got != lanes[li] {
					t.Fatalf("%+v n=%d: Lane(%d)=%+v, Split[%d]=%+v", iv, n, li, got, li, lanes[li])
				}
			}
		}
	}
}
