package sketch

import (
	"kkt/internal/congest"
	"kkt/internal/hashing"
	"kkt/internal/tree"
)

// Lanes is the w of the paper's w-wise search (§3.1): the number of
// sub-intervals one TestOut broadcast probes in parallel. It equals the
// word size so the echo is a single word of per-lane parity bits.
const Lanes = 64

// Interval is an inclusive composite-weight interval.
type Interval struct {
	Lo, Hi uint64
}

// Empty reports whether the interval contains nothing (Lo > Hi).
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Split partitions [iv.Lo, iv.Hi] into at most n equal-stride
// sub-intervals (paper step 5: j_i = j + i*ceil((k-j)/w)). The last
// sub-interval is clipped to Hi; trailing empty lanes are dropped.
func (iv Interval) Split(n int) []Interval {
	if iv.Empty() || n < 1 {
		return nil
	}
	span := iv.Hi - iv.Lo + 1
	stride := span / uint64(n)
	if span%uint64(n) != 0 {
		stride++
	}
	var out []Interval
	for lo := iv.Lo; lo <= iv.Hi; lo += stride {
		hi := lo + stride - 1
		if hi > iv.Hi || hi < lo { // clip and guard overflow
			hi = iv.Hi
		}
		out = append(out, Interval{Lo: lo, Hi: hi})
		if hi == iv.Hi {
			break
		}
	}
	return out
}

// testOutDown is the broadcast payload of one TestOut: the odd hash and
// the lane intervals' base parameters (the lanes themselves are recomputed
// locally from Lo/Hi/NLanes, so the message stays O(1) words).
type testOutDown struct {
	Hash   hashing.OddHash
	Range  Interval
	NLanes int
}

// testOutDownBits: hash (2 words) + interval (2 words) + lane count.
const testOutDownBits = 2*64 + 2*64 + 8

// TestOutSpec builds the broadcast-and-echo computing, for each lane
// sub-interval of rng, the parity of odd-hashed incident edge numbers with
// composite weight in the lane (§2.1, §3.1). Tree-internal edges cancel
// (counted at both endpoints), so each lane's aggregate bit is the parity
// over that lane's cut edges: 1 proves a cut edge, 0 is inconclusive with
// probability <= 7/8.
func TestOutSpec(h hashing.OddHash, rng Interval, nLanes int) *tree.Spec {
	down := testOutDown{Hash: h, Range: rng, NLanes: nLanes}
	return &tree.Spec{
		Down:     down,
		DownBits: testOutDownBits,
		UpBits:   Lanes,
		Local: func(node *congest.NodeState, downAny any) any {
			d := downAny.(testOutDown)
			lanes := d.Range.Split(d.NLanes)
			var word uint64
			for i := range node.Edges {
				he := &node.Edges[i]
				if he.Composite < d.Range.Lo || he.Composite > d.Range.Hi {
					continue
				}
				bit := d.Hash.Bit(he.EdgeNum)
				if bit == 0 {
					continue
				}
				for li, lane := range lanes {
					if he.Composite >= lane.Lo && he.Composite <= lane.Hi {
						word ^= uint64(1) << uint(li)
						break
					}
				}
			}
			return word
		},
		Combine: func(node *congest.NodeState, downAny, local any, children []tree.ChildEcho) any {
			word := local.(uint64)
			for _, c := range children {
				word ^= c.Value.(uint64)
			}
			return word
		},
	}
}

// TestOutLanes runs one TestOut broadcast-and-echo from root over the lane
// split of rng and returns the parity word: bit i set means lane i
// certainly contains an edge leaving the tree. Zero bits are inconclusive.
func TestOutLanes(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, h hashing.OddHash, rng Interval, nLanes int) (uint64, error) {
	v, err := pr.BroadcastEcho(p, root, TestOutSpec(h, rng, nLanes))
	if err != nil {
		return 0, err
	}
	return v.(uint64), nil
}

// TestOut is the single-interval form of the paper's TestOut(x, j, k): it
// reports whether an edge with composite weight in rng leaves the tree
// containing root. True is always correct; false is wrong with probability
// at most 7/8 when the cut is non-empty.
func TestOut(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, h hashing.OddHash, rng Interval) (bool, error) {
	word, err := TestOutLanes(p, pr, root, h, rng, 1)
	return word != 0, err
}
