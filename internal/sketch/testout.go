package sketch

import (
	"kkt/internal/congest"
	"kkt/internal/hashing"
	"kkt/internal/tree"
)

// Lanes is the w of the paper's w-wise search (§3.1): the number of
// sub-intervals one TestOut broadcast probes in parallel. It equals the
// word size so the echo is a single word of per-lane parity bits.
const Lanes = 64

// Interval is an inclusive composite-weight interval.
type Interval struct {
	Lo, Hi uint64
}

// Empty reports whether the interval contains nothing (Lo > Hi).
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Stride returns the width of each of the at-most-n equal sub-intervals
// of [iv.Lo, iv.Hi] (paper step 5: j_i = j + i*ceil((k-j)/w)). A value v
// in the interval lies in lane (v - iv.Lo) / stride — the O(1) lane
// lookup every TestOut local computation uses instead of scanning lanes.
func (iv Interval) Stride(n int) uint64 {
	if n < 1 {
		n = 1 // a degenerate lane count behaves like a single lane
	}
	span := iv.Hi - iv.Lo + 1
	stride := span / uint64(n)
	if span%uint64(n) != 0 {
		stride++
	}
	return stride
}

// NumLanes returns how many non-empty lanes the split actually produces
// (trailing lanes past Hi are dropped, matching Split).
func (iv Interval) NumLanes(n int) int {
	if iv.Empty() || n < 1 {
		return 0
	}
	stride := iv.Stride(n)
	span := iv.Hi - iv.Lo + 1
	lanes := span / stride
	if span%stride != 0 {
		lanes++
	}
	return int(lanes)
}

// Lane returns the i-th lane of the n-way split: equal stride, with the
// last lane clipped to Hi.
func (iv Interval) Lane(n, i int) Interval {
	stride := iv.Stride(n)
	lo := iv.Lo + uint64(i)*stride
	hi := lo + stride - 1
	if hi > iv.Hi || hi < lo { // clip and guard overflow
		hi = iv.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Split partitions [iv.Lo, iv.Hi] into at most n equal-stride
// sub-intervals. Hot paths use Stride/NumLanes/Lane arithmetic instead of
// materialising the slice; Split remains for tests and one-off callers.
func (iv Interval) Split(n int) []Interval {
	count := iv.NumLanes(n)
	if count == 0 {
		return nil
	}
	out := make([]Interval, count)
	for i := range out {
		out[i] = iv.Lane(n, i)
	}
	return out
}

// testOutDown is the broadcast payload of one TestOut: the odd hash and
// the lane intervals' base parameters. The stride is the precomputed lane
// table — computed once per broadcast at the initiator, not once per node
// — and is derived from Range/NLanes, so the message still carries only
// O(1) words.
type testOutDown struct {
	Hash   hashing.OddHash
	Range  Interval
	NLanes int
	stride uint64
}

// testOutDownBits: hash (2 words) + interval (2 words) + lane count.
const testOutDownBits = 2*64 + 2*64 + 8

// testOutLocalU computes one node's TestOut contribution: for each
// incident edge in range whose odd-hash bit is set, flip the parity bit of
// the edge's lane. The lane index is stride arithmetic — no per-node lane
// slice, no per-edge lane scan.
func testOutLocalU(node *congest.NodeState, downAny any) uint64 {
	d := downAny.(*testOutDown)
	var word uint64
	for i := range node.Edges {
		he := &node.Edges[i]
		if he.Composite < d.Range.Lo || he.Composite > d.Range.Hi {
			continue
		}
		if d.Hash.Bit(he.EdgeNum) == 0 {
			continue
		}
		word ^= uint64(1) << uint((he.Composite-d.Range.Lo)/d.stride)
	}
	return word
}

// TestOutRunner is a reusable TestOut broadcast-and-echo: the spec, its
// payload and the lane table are owned by the runner and refreshed in
// place per call, so repeated probes (FindMin's narrowing loop) allocate
// nothing. A runner belongs to one driver; echoes are XOR-folded words on
// the unboxed lane.
type TestOutRunner struct {
	down testOutDown
	spec tree.Spec
}

// NewTestOutRunner returns a runner ready for repeated probes.
func NewTestOutRunner() *TestOutRunner {
	t := &TestOutRunner{}
	t.spec = tree.Spec{
		Down:     &t.down,
		DownBits: testOutDownBits,
		UpBits:   Lanes,
		LocalU:   testOutLocalU,
		// CombineU nil: parity words XOR-fold.
	}
	return t
}

// Start begins one TestOut broadcast-and-echo from root over the lane
// split of rng; the session completes (unboxed) with the parity word.
// Continuation drivers await the returned session through the engine;
// blocking drivers use Lanes.
func (t *TestOutRunner) Start(pr *tree.Protocol, root congest.NodeID, h hashing.OddHash, rng Interval, nLanes int) congest.SessionID {
	t.down = testOutDown{Hash: h, Range: rng, NLanes: nLanes, stride: rng.Stride(nLanes)}
	return pr.StartBroadcastEcho(root, &t.spec)
}

// Lanes runs one TestOut broadcast-and-echo from root over the lane split
// of rng and returns the parity word: bit i set means lane i certainly
// contains an edge leaving the tree. Zero bits are inconclusive.
func (t *TestOutRunner) Lanes(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, h hashing.OddHash, rng Interval, nLanes int) (uint64, error) {
	return p.AwaitU(t.Start(pr, root, h, rng, nLanes))
}

// TestOutLanes is the one-shot form of TestOutRunner.Lanes.
func TestOutLanes(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, h hashing.OddHash, rng Interval, nLanes int) (uint64, error) {
	return NewTestOutRunner().Lanes(p, pr, root, h, rng, nLanes)
}

// TestOut is the single-interval form of the paper's TestOut(x, j, k): it
// reports whether an edge with composite weight in rng leaves the tree
// containing root. True is always correct; false is wrong with probability
// at most 7/8 when the cut is non-empty.
func TestOut(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, h hashing.OddHash, rng Interval) (bool, error) {
	word, err := TestOutLanes(p, pr, root, h, rng, 1)
	return word != 0, err
}
