package sketch

import (
	"testing"
	"testing/quick"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/hashing"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// fixture: path 1-2-3-4-5-6 (weights 10,20,30,40,50) with chords
// {1,4} w=5 and {2,5} w=25; fragment T = {1,2,3} (marked 1-2, 2-3).
// Cut(T, V\T): path edge {3,4} w=30, chord {1,4} w=5, chord {2,5} w=25.
func fixture(t *testing.T) (*congest.Network, *tree.Protocol, *graph.Graph) {
	t.Helper()
	g := graph.MustNew(6, 100)
	for i := 1; i < 6; i++ {
		g.MustAddEdge(uint32(i), uint32(i+1), uint64(10*i))
	}
	g.MustAddEdge(1, 4, 5)
	g.MustAddEdge(2, 5, 25)
	nw := congest.NewNetwork(g)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {2, 3}})
	return nw, tree.Attach(nw), g
}

func runDriver(t *testing.T, nw *congest.Network, fn func(p *congest.Proc) error) {
	t.Helper()
	nw.Spawn("test", fn)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

func comp(g *graph.Graph, a, b uint32) uint64 {
	return g.Edge(g.EdgeIndex(a, b)).Raw<<uint(g.Layout.EdgeNumBits) | g.Layout.EdgeNum(a, b)
}

func TestSurvey(t *testing.T) {
	nw, pr, g := fixture(t)
	var s Survey
	runDriver(t, nw, func(p *congest.Proc) error {
		got, err := RunSurvey(p, pr, 1)
		s = got
		return err
	})
	if s.Size != 3 {
		t.Errorf("Size = %d, want 3", s.Size)
	}
	// degrees within T: node1: {2},{4} = 2; node2: {1},{3},{5} = 3;
	// node3: {2},{4} = 2 -> 7 total, 3 unmarked... node1 unmarked: {1,4};
	// node2 unmarked: {2,5}; node3 unmarked: {3,4} -> 3.
	if s.DegreeSum != 7 {
		t.Errorf("DegreeSum = %d, want 7", s.DegreeSum)
	}
	if s.UnmarkedDegreeSum != 3 {
		t.Errorf("UnmarkedDegreeSum = %d, want 3", s.UnmarkedDegreeSum)
	}
	if want := comp(g, 3, 4); s.MaxComposite != want {
		t.Errorf("MaxComposite = %d, want %d (edge {3,4})", s.MaxComposite, want)
	}
	// incident edge numbers of T: the largest is {3,4} (3 in the high bits).
	wantEdgeNum := g.Layout.EdgeNum(3, 4)
	if s.MaxEdgeNum != wantEdgeNum {
		t.Errorf("MaxEdgeNum = %d, want %d", s.MaxEdgeNum, wantEdgeNum)
	}
}

func TestIntervalSplitProperties(t *testing.T) {
	f := func(lo, span uint32, n uint8) bool {
		iv := Interval{Lo: uint64(lo), Hi: uint64(lo) + uint64(span)}
		nn := int(n%64) + 1
		parts := iv.Split(nn)
		if len(parts) == 0 || len(parts) > nn {
			return false
		}
		// contiguous cover of [Lo,Hi]
		if parts[0].Lo != iv.Lo || parts[len(parts)-1].Hi != iv.Hi {
			return false
		}
		for i := 1; i < len(parts); i++ {
			if parts[i].Lo != parts[i-1].Hi+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalSplitDegenerate(t *testing.T) {
	if got := (Interval{Lo: 5, Hi: 4}).Split(8); got != nil {
		t.Errorf("empty interval split = %v", got)
	}
	parts := (Interval{Lo: 7, Hi: 7}).Split(64)
	if len(parts) != 1 || parts[0] != (Interval{Lo: 7, Hi: 7}) {
		t.Errorf("singleton split = %v", parts)
	}
}

func TestTestOutEmptyCutNeverFires(t *testing.T) {
	// Mark the whole path: T spans everything, the cut is empty; chords
	// are internal and must cancel.
	g := graph.MustNew(4, 100)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(2, 3, 20)
	g.MustAddEdge(3, 4, 30)
	g.MustAddEdge(1, 3, 40)
	g.MustAddEdge(2, 4, 50)
	nw := congest.NewNetwork(g)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {2, 3}, {3, 4}})
	pr := tree.Attach(nw)
	r := rng.New(11)
	runDriver(t, nw, func(p *congest.Proc) error {
		full := Interval{Lo: 0, Hi: ^uint64(0) >> 1}
		for i := 0; i < 100; i++ {
			h := hashing.NewOddHash(r)
			got, err := TestOut(p, pr, 2, h, full)
			if err != nil {
				return err
			}
			if got {
				t.Fatal("TestOut fired on an empty cut")
			}
		}
		return nil
	})
}

func TestTestOutDetectsCut(t *testing.T) {
	nw, pr, _ := fixture(t)
	r := rng.New(21)
	fires := 0
	const trials = 400
	runDriver(t, nw, func(p *congest.Proc) error {
		full := Interval{Lo: 0, Hi: ^uint64(0) >> 1}
		for i := 0; i < trials; i++ {
			h := hashing.NewOddHash(r)
			got, err := TestOut(p, pr, 1, h, full)
			if err != nil {
				return err
			}
			if got {
				fires++
			}
		}
		return nil
	})
	if frac := float64(fires) / trials; frac < 1.0/8 {
		t.Errorf("TestOut success rate %.3f < 1/8 on non-empty cut", frac)
	}
}

func TestTestOutIntervalFilter(t *testing.T) {
	nw, pr, g := fixture(t)
	r := rng.New(31)
	// interval covering only composite weights strictly between the cut
	// edges {1,4} (raw 5) and {2,5} (raw 25): probe raw range [6,24]
	// where only internal/tree edges (10, 20) live -> never fires.
	lo := comp(g, 1, 4) + 1
	hi := comp(g, 2, 5) - 1
	runDriver(t, nw, func(p *congest.Proc) error {
		for i := 0; i < 200; i++ {
			h := hashing.NewOddHash(r)
			got, err := TestOut(p, pr, 1, h, Interval{Lo: lo, Hi: hi})
			if err != nil {
				return err
			}
			if got {
				t.Fatal("TestOut fired on an interval with no cut edges")
			}
		}
		return nil
	})
}

func TestTestOutLanesLocaliseCutEdges(t *testing.T) {
	nw, pr, g := fixture(t)
	r := rng.New(41)
	// Probe [comp(1,4), comp(3,4)] — spans all three cut edges — with 64
	// lanes; record which lanes ever fire and check they are exactly the
	// lanes holding cut-edge composites (eventually, over many draws).
	lo, hi := comp(g, 1, 4), comp(g, 3, 4)
	rngIv := Interval{Lo: lo, Hi: hi}
	lanes := rngIv.Split(Lanes)
	cutComposites := []uint64{comp(g, 1, 4), comp(g, 2, 5), comp(g, 3, 4)}
	wantLanes := make(map[int]bool)
	for _, c := range cutComposites {
		for li, lane := range lanes {
			if c >= lane.Lo && c <= lane.Hi {
				wantLanes[li] = true
			}
		}
	}
	gotLanes := make(map[int]bool)
	runDriver(t, nw, func(p *congest.Proc) error {
		for i := 0; i < 600; i++ {
			h := hashing.NewOddHash(r)
			word, err := TestOutLanes(p, pr, 1, h, rngIv, Lanes)
			if err != nil {
				return err
			}
			for li := 0; li < Lanes; li++ {
				if word&(1<<uint(li)) != 0 {
					gotLanes[li] = true
				}
			}
		}
		return nil
	})
	for li := range gotLanes {
		if !wantLanes[li] {
			t.Errorf("lane %d fired but holds no cut edge", li)
		}
	}
	for li := range wantLanes {
		if !gotLanes[li] {
			t.Errorf("lane %d holds a cut edge but never fired in 600 draws", li)
		}
	}
}

func TestHPTestOutAlwaysRight(t *testing.T) {
	nw, pr, g := fixture(t)
	r := rng.New(51)
	full := Interval{Lo: 0, Hi: ^uint64(0) >> 1}
	noCut := Interval{Lo: comp(g, 1, 4) + 1, Hi: comp(g, 2, 5) - 1}
	onlyLight := Interval{Lo: 0, Hi: comp(g, 1, 4)} // exactly the lightest cut edge
	runDriver(t, nw, func(p *congest.Proc) error {
		for i := 0; i < 100; i++ {
			alphas := DrawAlphas(r, 2)
			got, err := HPTestOut(p, pr, 1, alphas, full)
			if err != nil {
				return err
			}
			if !got {
				t.Fatal("HP-TestOut missed a non-empty cut (prob ~2^-80)")
			}
			got, err = HPTestOut(p, pr, 1, alphas, noCut)
			if err != nil {
				return err
			}
			if got {
				t.Fatal("HP-TestOut fired on an empty cut interval")
			}
			got, err = HPTestOut(p, pr, 1, alphas, onlyLight)
			if err != nil {
				return err
			}
			if !got {
				t.Fatal("HP-TestOut missed the lightest cut edge")
			}
		}
		return nil
	})
}

func TestHPTestOutWholeTreeEmptyCut(t *testing.T) {
	// spanning tree of the whole graph: no cut edges at all.
	g := graph.MustNew(5, 50)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(3, 4, 3)
	g.MustAddEdge(4, 5, 4)
	g.MustAddEdge(1, 5, 5)
	g.MustAddEdge(2, 4, 6)
	nw := congest.NewNetwork(g)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {2, 3}, {3, 4}, {4, 5}})
	pr := tree.Attach(nw)
	r := rng.New(61)
	runDriver(t, nw, func(p *congest.Proc) error {
		for i := 0; i < 50; i++ {
			got, err := HPTestOut(p, pr, 3, DrawAlphas(r, 1), Interval{Lo: 0, Hi: ^uint64(0) >> 1})
			if err != nil {
				return err
			}
			if got {
				t.Fatal("HP-TestOut fired with no cut edges")
			}
		}
		return nil
	})
}

func TestNumReps(t *testing.T) {
	if r := NumReps(1e-9, 1000); r != 1 {
		t.Errorf("tiny B: reps = %d, want 1", r) // (1000/2^61)^1 ~ 4e-16 < 1e-9
	}
	if r := NumReps(1e-30, 1<<40); r < 2 {
		t.Errorf("want >= 2 reps for eps=1e-30 with B=2^40, got %d", r)
	}
	if r := NumReps(0, 10); r != 1 {
		t.Errorf("degenerate eps: reps = %d", r)
	}
	if r := NumReps(1e-300, 1<<40); r != MaxReps {
		t.Errorf("reps should clamp at %d, got %d", MaxReps, r)
	}
}

func TestTestOutMessageCost(t *testing.T) {
	// One TestOut = one broadcast-and-echo = 2 messages per tree edge.
	nw, pr, _ := fixture(t)
	r := rng.New(71)
	runDriver(t, nw, func(p *congest.Proc) error {
		before := nw.Counters()
		_, err := TestOut(p, pr, 1, hashing.NewOddHash(r), Interval{Lo: 0, Hi: 1 << 40})
		if err != nil {
			return err
		}
		diff := nw.Counters().Sub(before)
		if diff.Messages != 4 { // tree {1,2,3} has 2 edges
			t.Errorf("TestOut cost %d messages, want 4", diff.Messages)
		}
		return nil
	})
}
