// Package sketch implements the paper's cut-detection primitives as
// broadcast-and-echo aggregations:
//
//   - Survey: the bookkeeping broadcast-and-echo FindMin/FindAny start
//     with (paper FindMin step 2, FindAny step 3a precondition): tree
//     size, degree sums, maxWt(T), maxEdgeNum(T).
//
//   - TestOut (§2.1): does any edge with weight in [j,k] leave the tree?
//     One-sided, succeeds with probability >= 1/8 via an odd hash of edge
//     numbers; w parallel sub-intervals share one broadcast and return one
//     echo bit each (§3.1).
//
//   - HP-TestOut (§2.2): the same question w.h.p., via Schwartz-Zippel
//     multiset equality of the up-edge and down-edge sets over Z_p.
//
// All functions run on the marked tree containing the given root and touch
// only node-local state inside their Local/Combine callbacks.
package sketch

import (
	"sync"

	"kkt/internal/congest"
	"kkt/internal/tree"
)

// Survey is the aggregate a survey broadcast-and-echo returns.
type Survey struct {
	// Size is |T|, the number of nodes in the tree.
	Size int
	// DegreeSum is the total number of edge endpoints incident to T
	// (every incident edge counted at each in-tree endpoint, tree edges
	// included) — the B of HP-TestOut's error parameter and the bound
	// FindAny's hash range must exceed.
	DegreeSum int
	// UnmarkedDegreeSum counts only non-tree incident edge endpoints —
	// the candidate replacement edges.
	UnmarkedDegreeSum int
	// MaxComposite is the maximum composite weight over unmarked
	// incident edges (0 when there are none): the paper's maxWt(T)
	// restricted to candidate edges.
	MaxComposite uint64
	// MaxEdgeNum is the maximum edge number over all incident edges:
	// the paper's maxEdgeNum(T).
	MaxEdgeNum uint64
}

// surveyBits: echo carries five words.
const surveyBits = 5 * 64

// surveyPool recycles echo values: parents return their children's
// surveys as they fold them, so one broadcast-and-echo circulates a
// handful of *Survey instead of boxing one per node.
var surveyPool = sync.Pool{New: func() any { return new(Survey) }}

func surveyLocal(node *congest.NodeState, down any) any {
	s := surveyPool.Get().(*Survey)
	*s = Survey{Size: 1, DegreeSum: node.Degree()}
	for i := range node.Edges {
		he := &node.Edges[i]
		if he.EdgeNum > s.MaxEdgeNum {
			s.MaxEdgeNum = he.EdgeNum
		}
		if !he.Marked {
			s.UnmarkedDegreeSum++
			if he.Composite > s.MaxComposite {
				s.MaxComposite = he.Composite
			}
		}
	}
	return s
}

func surveyCombine(node *congest.NodeState, down, local any, children []tree.ChildEcho) any {
	s := local.(*Survey)
	for _, c := range children {
		cs := c.Value.(*Survey)
		s.Size += cs.Size
		s.DegreeSum += cs.DegreeSum
		s.UnmarkedDegreeSum += cs.UnmarkedDegreeSum
		if cs.MaxComposite > s.MaxComposite {
			s.MaxComposite = cs.MaxComposite
		}
		if cs.MaxEdgeNum > s.MaxEdgeNum {
			s.MaxEdgeNum = cs.MaxEdgeNum
		}
		surveyPool.Put(cs)
	}
	return s
}

// surveySpec is the shared, stateless broadcast-and-echo spec computing
// Survey; echo values are pooled *Survey.
var surveySpec = tree.Spec{
	DownBits: 8,
	UpBits:   surveyBits,
	Local:    surveyLocal,
	Combine:  surveyCombine,
}

// SurveySpec returns the broadcast-and-echo spec computing Survey. The
// spec is shared and must not be mutated; echo values are pooled *Survey
// (RunSurvey copies the aggregate out).
func SurveySpec() *tree.Spec { return &surveySpec }

// StartSurvey begins the survey broadcast-and-echo from root; the session
// completes with a pooled *Survey to be consumed with ConsumeSurvey.
// Continuation drivers pair Start/Consume; blocking drivers use RunSurvey.
func StartSurvey(pr *tree.Protocol, root congest.NodeID) congest.SessionID {
	return pr.StartBroadcastEcho(root, &surveySpec)
}

// ConsumeSurvey copies the aggregate out of a completed survey session's
// value and recycles the pooled carrier.
func ConsumeSurvey(v any) Survey {
	sp := v.(*Survey)
	s := *sp
	surveyPool.Put(sp)
	return s
}

// RunSurvey performs the survey broadcast-and-echo from root.
func RunSurvey(p *congest.Proc, pr *tree.Protocol, root congest.NodeID) (Survey, error) {
	v, err := p.Await(StartSurvey(pr, root))
	if err != nil {
		return Survey{}, err
	}
	return ConsumeSurvey(v), nil
}
