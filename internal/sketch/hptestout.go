package sketch

import (
	"math"
	"sync"

	"kkt/internal/congest"
	"kkt/internal/modring"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// MaxReps bounds the number of parallel Schwartz-Zippel repetitions so
// that one echo (2 Z_p values per repetition) stays within the message
// budget. With p = 2^61-1 and degree sums < 2^40, three repetitions push
// the error below 2^-60 — far below any n^-c the simulator can exercise.
const MaxReps = 3

// hpDown is the broadcast payload: the evaluation points and the weight
// interval under test. The alphas live inline (reps <= MaxReps), so the
// payload is a single pointer with no per-call slice.
type hpDown struct {
	Alphas [MaxReps]uint64
	Reps   int
	Range  Interval
}

// hpPair is one repetition's pair of polynomial evaluations.
type hpPair struct {
	Up, Down uint64
}

// hpEval is one node's echo value: the per-repetition evaluation pairs,
// inline. Evals are recycled through a pool — parents return their
// children's evals as they fold them — so a broadcast-and-echo reuses a
// handful of evals instead of allocating one per node.
type hpEval struct {
	pairs [MaxReps]hpPair
	reps  int
}

var hpEvalPool = sync.Pool{New: func() any { return new(hpEval) }}

// NumReps returns how many parallel repetitions are needed to push the
// one-sided error below eps given that at most degreeBound edge endpoints
// are incident to the tree (the polynomial degree bound B of §2.2).
func NumReps(eps float64, degreeBound int) int {
	if eps <= 0 || degreeBound < 1 {
		return 1
	}
	ring := modring.Default()
	perRep := float64(degreeBound) / float64(ring.P())
	if perRep >= 1 {
		return MaxReps
	}
	r := int(math.Ceil(math.Log(eps) / math.Log(perRep)))
	if r < 1 {
		r = 1
	}
	if r > MaxReps {
		r = MaxReps
	}
	return r
}

// DrawAlphasInto fills dst with evaluation points from Z_p.
func DrawAlphasInto(r *rng.RNG, dst []uint64) {
	ring := modring.Default()
	for i := range dst {
		dst[i] = r.Uint64n(ring.P())
	}
}

// DrawAlphas draws reps evaluation points from Z_p.
func DrawAlphas(r *rng.RNG, reps int) []uint64 {
	out := make([]uint64, reps)
	DrawAlphasInto(r, out)
	return out
}

// hpLocal evaluates P(E-up(y))(alpha) and P(E-down(y))(alpha) over the
// node's incident edges with composite weight in range, where E-up(y)
// holds the edges on which y is the smaller endpoint and E-down(y) those
// on which it is the larger.
func hpLocal(node *congest.NodeState, downAny any) any {
	d := downAny.(*hpDown)
	ring := modring.Default()
	ev := hpEvalPool.Get().(*hpEval)
	ev.reps = d.Reps
	for i := 0; i < d.Reps; i++ {
		ev.pairs[i] = hpPair{Up: 1, Down: 1}
	}
	for ei := range node.Edges {
		he := &node.Edges[ei]
		if he.Composite < d.Range.Lo || he.Composite > d.Range.Hi {
			continue
		}
		root := ring.Reduce(he.EdgeNum)
		isUp := node.ID < he.Neighbor
		for i := 0; i < d.Reps; i++ {
			factor := ring.Sub(ring.Reduce(d.Alphas[i]), root)
			if isUp {
				ev.pairs[i].Up = ring.Mul(ev.pairs[i].Up, factor)
			} else {
				ev.pairs[i].Down = ring.Mul(ev.pairs[i].Down, factor)
			}
		}
	}
	return ev
}

// hpCombine multiplies children's products into the node's own and
// recycles the children's evals.
func hpCombine(node *congest.NodeState, downAny, local any, children []tree.ChildEcho) any {
	ev := local.(*hpEval)
	ring := modring.Default()
	for _, c := range children {
		cev := c.Value.(*hpEval)
		for i := 0; i < ev.reps; i++ {
			ev.pairs[i].Up = ring.Mul(ev.pairs[i].Up, cev.pairs[i].Up)
			ev.pairs[i].Down = ring.Mul(ev.pairs[i].Down, cev.pairs[i].Down)
		}
		hpEvalPool.Put(cev)
	}
	return ev
}

// HPRunner is a reusable HP-TestOut broadcast-and-echo (§2.2): multiset
// equality of the up-edge and down-edge sets over Z_p via Schwartz-Zippel.
// Products are multiplied up the tree; at the root the two multiset
// fingerprints agree for every alpha iff (w.h.p.) no edge leaves the
// tree: every tree-internal edge contributes the same factor to both
// sides (once from each endpoint), while a cut edge contributes to exactly
// one side. The spec and payload refresh in place per call.
type HPRunner struct {
	down hpDown
	spec tree.Spec
}

// NewHPRunner returns a runner ready for repeated HP tests.
func NewHPRunner() *HPRunner {
	h := &HPRunner{}
	h.spec = tree.Spec{
		Down:    &h.down,
		Local:   hpLocal,
		Combine: hpCombine,
	}
	return h
}

// Start begins HP-TestOut(root, rng) with the given evaluation points; the
// session completes with a pooled *hpEval to be consumed with ConsumeHP.
// Continuation drivers pair Start/ConsumeHP; blocking drivers use Run.
func (h *HPRunner) Start(pr *tree.Protocol, root congest.NodeID, alphas []uint64, rng Interval) congest.SessionID {
	if len(alphas) == 0 || len(alphas) > MaxReps {
		panic("sketch: HPTestOut needs 1..MaxReps alphas")
	}
	ring := modring.Default()
	reps := copy(h.down.Alphas[:], alphas)
	h.down.Reps = reps
	h.down.Range = rng
	h.spec.DownBits = reps*ring.Bits() + 2*64 + 8
	h.spec.UpBits = reps * 2 * ring.Bits()
	return pr.StartBroadcastEcho(root, &h.spec)
}

// ConsumeHP folds a completed HP-TestOut session's value into the verdict
// — does an edge in range leave the tree? — and recycles the pooled eval.
func ConsumeHP(v any) bool {
	ev := v.(*hpEval)
	leaving := false
	for i := 0; i < ev.reps; i++ {
		if ev.pairs[i].Up != ev.pairs[i].Down {
			leaving = true
			break
		}
	}
	hpEvalPool.Put(ev)
	return leaving
}

// Run performs HP-TestOut(root, rng) with the given evaluation points and
// reports whether an edge with composite weight in rng leaves the tree
// containing root. A false answer is wrong with probability at most
// (B/p)^len(alphas); a true answer is always correct.
func (h *HPRunner) Run(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, alphas []uint64, rng Interval) (bool, error) {
	v, err := p.Await(h.Start(pr, root, alphas, rng))
	if err != nil {
		return false, err
	}
	return ConsumeHP(v), nil
}

// HPTestOut is the one-shot form of HPRunner.Run.
func HPTestOut(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, alphas []uint64, rng Interval) (bool, error) {
	return NewHPRunner().Run(p, pr, root, alphas, rng)
}
