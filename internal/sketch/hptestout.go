package sketch

import (
	"math"

	"kkt/internal/congest"
	"kkt/internal/modring"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// MaxReps bounds the number of parallel Schwartz-Zippel repetitions so
// that one echo (2 Z_p values per repetition) stays within the message
// budget. With p = 2^61-1 and degree sums < 2^40, three repetitions push
// the error below 2^-60 — far below any n^-c the simulator can exercise.
const MaxReps = 3

// hpDown is the broadcast payload: the evaluation points and the weight
// interval under test.
type hpDown struct {
	Alphas []uint64
	Range  Interval
}

// hpPair is one repetition's pair of polynomial evaluations.
type hpPair struct {
	Up, Down uint64
}

// NumReps returns how many parallel repetitions are needed to push the
// one-sided error below eps given that at most degreeBound edge endpoints
// are incident to the tree (the polynomial degree bound B of §2.2).
func NumReps(eps float64, degreeBound int) int {
	if eps <= 0 || degreeBound < 1 {
		return 1
	}
	ring := modring.Default()
	perRep := float64(degreeBound) / float64(ring.P())
	if perRep >= 1 {
		return MaxReps
	}
	r := int(math.Ceil(math.Log(eps) / math.Log(perRep)))
	if r < 1 {
		r = 1
	}
	if r > MaxReps {
		r = MaxReps
	}
	return r
}

// DrawAlphas draws reps evaluation points from Z_p.
func DrawAlphas(r *rng.RNG, reps int) []uint64 {
	ring := modring.Default()
	out := make([]uint64, reps)
	for i := range out {
		out[i] = r.Uint64n(ring.P())
	}
	return out
}

// HPTestOutSpec builds the broadcast-and-echo of HP-TestOut(x, j, k): each
// node evaluates P(E-up(y))(alpha) and P(E-down(y))(alpha) over its
// incident edges with composite weight in rng, where E-up(y) holds the
// edges on which y is the smaller endpoint and E-down(y) those on which it
// is the larger. Products are multiplied up the tree; at the root the two
// multiset fingerprints agree for every alpha iff (w.h.p.) no edge leaves
// the tree: every tree-internal edge contributes the same factor to both
// sides (once from each endpoint), while a cut edge contributes to exactly
// one side.
func HPTestOutSpec(alphas []uint64, rng Interval) *tree.Spec {
	if len(alphas) == 0 || len(alphas) > MaxReps {
		panic("sketch: HPTestOut needs 1..MaxReps alphas")
	}
	ring := modring.Default()
	down := hpDown{Alphas: alphas, Range: rng}
	reps := len(alphas)
	return &tree.Spec{
		Down:     down,
		DownBits: reps*ring.Bits() + 2*64 + 8,
		UpBits:   reps * 2 * ring.Bits(),
		Local: func(node *congest.NodeState, downAny any) any {
			d := downAny.(hpDown)
			pairs := make([]hpPair, len(d.Alphas))
			for i := range pairs {
				pairs[i] = hpPair{Up: 1, Down: 1}
			}
			for ei := range node.Edges {
				he := &node.Edges[ei]
				if he.Composite < d.Range.Lo || he.Composite > d.Range.Hi {
					continue
				}
				root := ring.Reduce(he.EdgeNum)
				isUp := node.ID < he.Neighbor
				for i, alpha := range d.Alphas {
					factor := ring.Sub(ring.Reduce(alpha), root)
					if isUp {
						pairs[i].Up = ring.Mul(pairs[i].Up, factor)
					} else {
						pairs[i].Down = ring.Mul(pairs[i].Down, factor)
					}
				}
			}
			return pairs
		},
		Combine: func(node *congest.NodeState, downAny, local any, children []tree.ChildEcho) any {
			pairs := local.([]hpPair)
			for _, c := range children {
				cp := c.Value.([]hpPair)
				for i := range pairs {
					pairs[i].Up = ring.Mul(pairs[i].Up, cp[i].Up)
					pairs[i].Down = ring.Mul(pairs[i].Down, cp[i].Down)
				}
			}
			return pairs
		},
	}
}

// HPTestOut runs HP-TestOut(root, rng) with the given evaluation points
// and reports whether an edge with composite weight in rng leaves the tree
// containing root. A false answer is wrong with probability at most
// (B/p)^len(alphas); a true answer is always correct.
func HPTestOut(p *congest.Proc, pr *tree.Protocol, root congest.NodeID, alphas []uint64, rng Interval) (bool, error) {
	v, err := pr.BroadcastEcho(p, root, HPTestOutSpec(alphas, rng))
	if err != nil {
		return false, err
	}
	for _, pair := range v.([]hpPair) {
		if pair.Up != pair.Down {
			return true, nil
		}
	}
	return false, nil
}
