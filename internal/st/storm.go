package st

import (
	"kkt/internal/admit"
	"kkt/internal/congest"
	"kkt/internal/faultplan"
	"kkt/internal/findany"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// stormRepair is the wave-mode form of the ST repair drivers in repair.go:
// FindAny reconnection for deletes, a membership broadcast-and-echo for
// inserts, as an explicit continuation state machine. Quiescence and
// staged-mark application are the wave controller's job (see
// internal/admit).
type stormRepair struct {
	nw *congest.Network
	pr *tree.Protocol
	fa *findany.Machine

	deleteStyle bool
	// root is the repair initiator — the endpoint the launcher's
	// admission-time probe put on the smaller side of the live marked
	// forest (see admit.SideProber); peer is the other endpoint.
	root, peer congest.NodeID
	seed       uint64
	cfg        findany.Config

	st     uint8
	action Action
}

const (
	ssStart uint8 = iota
	ssFindAny
	ssAddEdge
	ssContains
)

func (sr *stormRepair) reset(deleteStyle bool, a, b congest.NodeID, seed uint64, cfg findany.Config) {
	sr.deleteStyle, sr.root, sr.peer = deleteStyle, a, b
	sr.seed, sr.cfg = seed, cfg
	sr.st = ssStart
	sr.action = 0
}

// Action implements admit.Repair; valid once the task finished.
func (sr *stormRepair) Action() string { return sr.action.String() }

// Step implements congest.StepDriver.
func (sr *stormRepair) Step(t *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	switch sr.st {
	case ssStart:
		if sr.deleteStyle {
			sr.fa.Reset(sr.pr, sr.root, rng.New(sr.seed), sr.cfg)
			sr.st = ssFindAny
			return sr.stepFindAny(t, congest.Wake{})
		}
		sr.st = ssContains
		return sr.pr.StartBroadcastEcho(sr.root, containsSpec(sr.peer)), false, nil

	case ssFindAny:
		return sr.stepFindAny(t, w)

	case ssAddEdge:
		if err := w.Err(); err != nil {
			return 0, true, err
		}
		sr.action = Reconnected
		return 0, true, nil

	case ssContains:
		v, err := w.Value()
		if err != nil {
			return 0, true, err
		}
		if v.(bool) {
			sr.action = NoOp // same tree: a spanning forest ignores it
			return 0, true, nil
		}
		sr.nw.Node(sr.root).StageMark(sr.peer)
		sr.pr.SendMarkX(sr.root, sr.peer)
		sr.action = Added
		return 0, true, nil
	}
	panic("st: stormRepair stepped after done")
}

func (sr *stormRepair) stepFindAny(t *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	next, done, err := sr.fa.Step(t, w)
	if !done {
		return next, false, err
	}
	if err != nil {
		return 0, true, err
	}
	res, _ := sr.fa.Result()
	switch res.Reason {
	case findany.FoundEdge:
		sr.st = ssAddEdge
		return sr.pr.StartBroadcastEcho(sr.root, tree.AddEdgeSpec(res.EdgeNum)), false, nil
	case findany.EmptyCut:
		sr.action = Bridge
	default:
		sr.action = Failed
	}
	return 0, true, nil
}

// StormLauncher implements admit.Launcher for a maintained spanning
// forest. Weight-change events are invalid for the unweighted structure
// and are skipped defensively (Spec validation rejects such plans).
type StormLauncher struct {
	nw    *congest.Network
	pr    *tree.Protocol
	cfg   RepairConfig
	probe *admit.SideProber
	free  []*stormRepair
}

// NewStormLauncher returns a launcher maintaining the spanning forest on
// nw/pr.
func NewStormLauncher(nw *congest.Network, pr *tree.Protocol, cfg RepairConfig) *StormLauncher {
	return &StormLauncher{nw: nw, pr: pr, cfg: cfg, probe: admit.NewSideProber()}
}

func (l *StormLauncher) get() *stormRepair {
	if n := len(l.free); n > 0 {
		sr := l.free[n-1]
		l.free = l.free[:n-1]
		return sr
	}
	return &stormRepair{nw: l.nw, pr: l.pr, fa: findany.NewMachine()}
}

// Release implements admit.Launcher.
func (l *StormLauncher) Release(r admit.Repair) {
	l.free = append(l.free, r.(*stormRepair))
}

// Admit implements admit.Launcher.
func (l *StormLauncher) Admit(ev faultplan.Event, opSeed uint64, claim admit.Claim) admit.Decision {
	a, b := congest.NodeID(ev.A), congest.NodeID(ev.B)
	switch ev.Op {
	case faultplan.OpDelete:
		he := l.nw.Node(a).EdgeTo(b)
		if he == nil {
			return admit.Decision{Inline: true, Action: admit.Skipped, Op: "st.delete"}
		}
		if !he.Marked {
			l.nw.DeleteLink(a, b)
			return admit.Decision{Inline: true, Action: NoOp.String(), Op: "st.delete"}
		}
		if !claim(a) {
			return admit.Decision{Deferred: true}
		}
		l.nw.DeleteLink(a, b)
		root, peer := l.probe.Smaller(l.nw, a, b)
		sr := l.get()
		sr.reset(true, root, peer, l.cfg.Seed^uint64(a)<<32^uint64(b), l.cfg.FindAny)
		return admit.Decision{Op: "st.delete", Driver: sr}

	case faultplan.OpInsert:
		if a == b || l.nw.Node(a).EdgeTo(b) != nil {
			return admit.Decision{Inline: true, Action: admit.Skipped, Op: "st.insert"}
		}
		if !claim(a, b) {
			return admit.Decision{Deferred: true}
		}
		if err := l.nw.InsertLink(a, b, 1); err != nil {
			return admit.Decision{Inline: true, Action: admit.Skipped, Op: "st.insert"}
		}
		// The new edge is unmarked, so when the insert joins two trees the
		// probe still sees them separately — root in the smaller one.
		root, peer := l.probe.Smaller(l.nw, a, b)
		sr := l.get()
		sr.reset(false, root, peer, 0, l.cfg.FindAny)
		return admit.Decision{Op: "st.insert", Driver: sr}
	}
	return admit.Decision{Inline: true, Action: admit.Skipped, Op: "st.unknown"}
}
