package st

import (
	"testing"

	"kkt/internal/congest"
	"kkt/internal/graph"
	"kkt/internal/rng"
	"kkt/internal/spanning"
	"kkt/internal/tree"
)

func forestIndices(t *testing.T, g *graph.Graph, forest [][2]congest.NodeID) []int {
	t.Helper()
	out := make([]int, 0, len(forest))
	for _, e := range forest {
		i := g.EdgeIndex(uint32(e[0]), uint32(e[1]))
		if i < 0 {
			t.Fatalf("marked edge {%d,%d} not in graph", e[0], e[1])
		}
		out = append(out, i)
	}
	return out
}

func buildAndCheck(t *testing.T, g *graph.Graph, seed uint64) BuildResult {
	t.Helper()
	nw := congest.NewNetwork(g)
	pr := tree.Attach(nw)
	sp := Attach(nw, pr)
	res, err := Build(nw, pr, sp, DefaultBuild(seed))
	if err != nil {
		t.Fatalf("Build ST: %v", err)
	}
	if err := spanning.IsSpanningForest(g, forestIndices(t, g, res.Forest)); err != nil {
		t.Fatalf("Build ST result invalid: %v", err)
	}
	return res
}

func TestBuildSTTiny(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"two nodes", graph.Path(2, 1, graph.UnitWeights())},
		{"triangle", graph.Complete(3, 1, graph.UnitWeights())},
		{"square", graph.Ring(4, 1, graph.UnitWeights())},
		{"K6", graph.Complete(6, 1, graph.UnitWeights())},
		{"star", graph.Star(8, 1, graph.UnitWeights())},
		{"path", graph.Path(9, 1, graph.UnitWeights())},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buildAndCheck(t, tt.g, 17)
		})
	}
}

func TestBuildSTRandom(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 12; trial++ {
		n := 8 + r.Intn(40)
		maxM := n * (n - 1) / 2
		m := n - 1 + r.Intn(maxM-n+2)
		g := graph.GNM(r, n, m, 1, graph.UnitWeights())
		buildAndCheck(t, g, uint64(trial)*29+1)
	}
}

func TestBuildSTDisconnected(t *testing.T) {
	g := graph.MustNew(8, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(6, 7, 1)
	g.MustAddEdge(7, 8, 1)
	g.MustAddEdge(6, 8, 1)
	res := buildAndCheck(t, g, 23)
	if len(res.Forest) != 5 { // 8 nodes - 3 components
		t.Errorf("forest has %d edges, want 5", len(res.Forest))
	}
}

func TestBuildSTGridAndRing(t *testing.T) {
	buildAndCheck(t, graph.Grid(7, 7, 1, graph.UnitWeights()), 31)
	buildAndCheck(t, graph.Ring(33, 1, graph.UnitWeights()), 37)
}

func TestBuildSTSeesAndSurvivesCycles(t *testing.T) {
	// Run many seeds on cycle-prone graphs (rings force fragments into
	// long chains whose arbitrary picks often close cycles); at least one
	// run should report cycle handling, and all must converge.
	sawCycle := false
	for seed := uint64(1); seed <= 12; seed++ {
		g := graph.Ring(24, 1, graph.UnitWeights())
		res := buildAndCheck(t, g, seed)
		for _, ph := range res.Phases {
			if ph.CycleNodes > 0 {
				sawCycle = true
			}
		}
	}
	if !sawCycle {
		t.Log("note: no cycle arose in any seed (unusual but not wrong)")
	}
}

func TestBuildSTDeterministic(t *testing.T) {
	r := rng.New(3)
	g := graph.GNM(r, 30, 90, 1, graph.UnitWeights())
	r1 := buildAndCheck(t, g, 4)
	r2 := buildAndCheck(t, g, 4)
	if r1.Messages != r2.Messages {
		t.Errorf("same seed, different messages: %d vs %d", r1.Messages, r2.Messages)
	}
}

// --- repair ---

func repairSetup(t *testing.T, seed uint64, n, m int) (*graph.Graph, *congest.Network, *tree.Protocol) {
	t.Helper()
	r := rng.New(seed)
	g := graph.GNM(r, n, m, 1, graph.UnitWeights())
	nw := congest.NewNetwork(g, congest.WithAsync(8), congest.WithSeed(seed))
	pr := tree.Attach(nw)
	var forest [][2]congest.NodeID
	for _, ei := range spanning.BFSForest(g) {
		e := g.Edge(ei)
		forest = append(forest, [2]congest.NodeID{congest.NodeID(e.A), congest.NodeID(e.B)})
	}
	nw.SetForest(forest)
	return g, nw, pr
}

func rebuildWithout(t *testing.T, g *graph.Graph, victim graph.Edge) *graph.Graph {
	t.Helper()
	g2 := graph.MustNew(g.N, g.MaxRaw)
	for _, e := range g.Edges() {
		if e == victim {
			continue
		}
		g2.MustAddEdge(e.A, e.B, e.Raw)
	}
	return g2
}

func checkForest(t *testing.T, nw *congest.Network, g *graph.Graph) {
	t.Helper()
	if err := spanning.IsSpanningForest(g, forestIndices(t, g, nw.MarkedEdges())); err != nil {
		t.Fatalf("maintained forest invalid: %v", err)
	}
}

func TestSTDeleteTreeEdge(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g, nw, pr := repairSetup(t, uint64(trial)+1, 20, 55)
		var victim graph.Edge
		for _, e := range nw.MarkedEdges() {
			victim = g.Edge(g.EdgeIndex(uint32(e[0]), uint32(e[1])))
			break
		}
		rep, err := Delete(nw, pr, congest.NodeID(victim.A), congest.NodeID(victim.B), DefaultRepair(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Action != Reconnected && rep.Action != Bridge {
			t.Fatalf("trial %d: action = %v", trial, rep.Action)
		}
		checkForest(t, nw, rebuildWithout(t, g, victim))
	}
}

func TestSTDeleteNonTreeEdgeFree(t *testing.T) {
	g, nw, pr := repairSetup(t, 41, 15, 45)
	marked := make(map[int]bool)
	for _, e := range nw.MarkedEdges() {
		marked[g.EdgeIndex(uint32(e[0]), uint32(e[1]))] = true
	}
	var victim graph.Edge
	for i := range g.Edges() {
		if !marked[i] {
			victim = g.Edge(i)
			break
		}
	}
	rep, err := Delete(nw, pr, congest.NodeID(victim.A), congest.NodeID(victim.B), DefaultRepair(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != NoOp || rep.Messages != 0 {
		t.Errorf("action=%v messages=%d, want no-op/0", rep.Action, rep.Messages)
	}
	checkForest(t, nw, rebuildWithout(t, g, victim))
}

func TestSTInsertAcrossTrees(t *testing.T) {
	g := graph.MustNew(5, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(4, 5, 1)
	nw := congest.NewNetwork(g, congest.WithAsync(4))
	pr := tree.Attach(nw)
	nw.SetForest([][2]congest.NodeID{{1, 2}, {4, 5}})
	rep, err := Insert(nw, pr, 2, 4, DefaultRepair(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != Added {
		t.Fatalf("action = %v, want added", rep.Action)
	}
	g.MustAddEdge(2, 4, 1)
	checkForest(t, nw, g)
}

func TestSTInsertSameTreeIgnored(t *testing.T) {
	g, nw, pr := repairSetup(t, 7, 12, 20)
	r := rng.New(8)
	var a, b uint32
	for {
		a = uint32(r.Intn(g.N) + 1)
		b = uint32(r.Intn(g.N) + 1)
		if a != b && !g.HasEdge(a, b) {
			break
		}
	}
	rep, err := Insert(nw, pr, congest.NodeID(a), congest.NodeID(b), DefaultRepair(4))
	if err != nil {
		t.Fatal(err)
	}
	// GNM graphs are connected: same tree, so the edge is ignored.
	if rep.Action != NoOp {
		t.Fatalf("action = %v, want no-op", rep.Action)
	}
	g.MustAddEdge(a, b, 1)
	checkForest(t, nw, g)
}

func TestSTRepairStream(t *testing.T) {
	g, nw, pr := repairSetup(t, 99, 22, 60)
	r := rng.New(1001)
	for step := 0; step < 30; step++ {
		if r.Bool() && g.M() > g.N {
			ei := r.Intn(g.M())
			e := g.Edge(ei)
			if _, err := Delete(nw, pr, congest.NodeID(e.A), congest.NodeID(e.B), DefaultRepair(uint64(step))); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			g = rebuildWithout(t, g, e)
		} else {
			var a, b uint32
			for tries := 0; ; tries++ {
				a = uint32(r.Intn(g.N) + 1)
				b = uint32(r.Intn(g.N) + 1)
				if a != b && !g.HasEdge(a, b) {
					break
				}
				if tries > 200 {
					a = 0
					break
				}
			}
			if a == 0 {
				continue
			}
			if _, err := Insert(nw, pr, congest.NodeID(a), congest.NodeID(b), DefaultRepair(uint64(step))); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			g.MustAddEdge(a, b, 1)
		}
		checkForest(t, nw, g)
	}
}

func TestCountCycles(t *testing.T) {
	mk := func(n, l, r congest.NodeID) tree.CycleNode {
		return tree.CycleNode{Node: n, Left: l, Right: r}
	}
	// two disjoint triangles
	nodes := []tree.CycleNode{
		mk(1, 2, 3), mk(2, 1, 3), mk(3, 1, 2),
		mk(7, 8, 9), mk(8, 7, 9), mk(9, 7, 8),
	}
	if got := countCycles(nodes); got != 2 {
		t.Errorf("countCycles = %d, want 2", got)
	}
	if got := countCycles(nil); got != 0 {
		t.Errorf("countCycles(nil) = %d", got)
	}
}
