package st

import (
	"fmt"

	"kkt/internal/congest"
	"kkt/internal/findany"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// Action describes what an ST repair did.
type Action int

const (
	// NoOp: the change did not affect the maintained forest.
	NoOp Action = iota + 1
	// Reconnected: a replacement edge was found and marked.
	Reconnected
	// Bridge: the deleted edge was a bridge.
	Bridge
	// Added: the inserted edge joined two trees.
	Added
	// Failed: FindAny gave up (probability ~ n^-c for the Full variant).
	Failed
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case NoOp:
		return "no-op"
	case Reconnected:
		return "reconnected"
	case Bridge:
		return "bridge"
	case Added:
		return "added"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Report is the outcome and cost of one ST repair.
type Report struct {
	Action   Action
	Messages uint64
	Bits     uint64
	Time     int64
	Edge     [2]congest.NodeID
	Stats    findany.Stats
}

// RepairConfig tunes ST repair.
type RepairConfig struct {
	Seed    uint64
	FindAny findany.Config
}

// DefaultRepair returns the paper-faithful configuration (FindAny, i.e.
// expected O(n) messages per delete).
func DefaultRepair(seed uint64) RepairConfig {
	return RepairConfig{Seed: seed, FindAny: findany.Defaults(findany.Full)}
}

// obsRepairStart/obsRepairDone bracket a repair operation for the attached
// observer (no-ops when none).
func obsRepairStart(nw *congest.Network, op string) {
	if o := nw.Obs(); o != nil {
		o.RepairStart(op, nw.Now())
	}
}

func obsRepairDone(nw *congest.Network, op string, rep Report) {
	if o := nw.Obs(); o != nil {
		o.RepairDone(op, rep.Action.String(), nw.Now(), rep.Time, rep.Messages, rep.Bits)
	}
}

// Delete processes the deletion of link {a,b} for a maintained spanning
// forest (paper §4.3): if it was a tree edge, the smaller-ID endpoint
// finds any replacement with FindAny. Expected O(n) messages.
func Delete(nw *congest.Network, pr *tree.Protocol, a, b congest.NodeID, cfg RepairConfig) (Report, error) {
	before := nw.Counters()
	beforeTime := nw.Now()
	existed, wasMarked := nw.DeleteLink(a, b)
	if !existed {
		return Report{}, fmt.Errorf("st: delete of non-existent link {%d,%d}", a, b)
	}
	obsRepairStart(nw, "st.delete")
	if !wasMarked {
		rep := Report{Action: NoOp}
		obsRepairDone(nw, "st.delete", rep)
		return rep, nil
	}
	u := a
	if b < u {
		u = b
	}
	var rep Report
	nw.Spawn(fmt.Sprintf("st-delete-%d-%d", a, b), func(p *congest.Proc) error {
		r := rng.New(cfg.Seed ^ uint64(a)<<32 ^ uint64(b))
		res, err := findany.Run(p, pr, u, r, cfg.FindAny)
		if err != nil {
			return err
		}
		rep.Stats = res.Stats
		switch res.Reason {
		case findany.FoundEdge:
			if _, err := pr.BroadcastEcho(p, u, tree.AddEdgeSpec(res.EdgeNum)); err != nil {
				return err
			}
			p.AwaitQuiescence()
			nw.ApplyStaged()
			rep.Action = Reconnected
			rep.Edge = [2]congest.NodeID{res.A, res.B}
		case findany.EmptyCut:
			rep.Action = Bridge
		case findany.GaveUp:
			rep.Action = Failed
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		return rep, err
	}
	c := nw.CountersSince(before)
	rep.Messages = c.Messages
	rep.Bits = c.Bits
	rep.Time = nw.Now() - beforeTime
	obsRepairDone(nw, "st.delete", rep)
	return rep, nil
}

// Insert processes the insertion of link {a,b}: for an unweighted
// spanning forest the edge matters only if it joins two trees, which one
// broadcast-and-echo from the smaller endpoint decides. Deterministic,
// O(|T|) messages.
func Insert(nw *congest.Network, pr *tree.Protocol, a, b congest.NodeID, cfg RepairConfig) (Report, error) {
	if err := nw.InsertLink(a, b, 1); err != nil {
		return Report{}, err
	}
	before := nw.Counters()
	beforeTime := nw.Now()
	obsRepairStart(nw, "st.insert")
	u, v := a, b
	if v < u {
		u, v = v, u
	}
	var rep Report
	nw.Spawn(fmt.Sprintf("st-insert-%d-%d", a, b), func(p *congest.Proc) error {
		found, err := runContains(p, pr, u, v)
		if err != nil {
			return err
		}
		if found {
			rep.Action = NoOp // same tree: a spanning forest ignores it
			return nil
		}
		nw.Node(u).StageMark(v)
		pr.SendMarkX(u, v)
		p.AwaitQuiescence()
		nw.ApplyStaged()
		rep.Action = Added
		rep.Edge = [2]congest.NodeID{u, v}
		return nil
	})
	if err := nw.Run(); err != nil {
		return rep, err
	}
	c := nw.CountersSince(before)
	rep.Messages = c.Messages
	rep.Bits = c.Bits
	rep.Time = nw.Now() - beforeTime
	obsRepairDone(nw, "st.insert", rep)
	return rep, nil
}

// runContains asks, with one broadcast-and-echo, whether target is in
// root's tree.
func runContains(p *congest.Proc, pr *tree.Protocol, root, target congest.NodeID) (bool, error) {
	v, err := pr.BroadcastEcho(p, root, containsSpec(target))
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}

// containsSpec builds the membership broadcast-and-echo spec; shared by the
// blocking driver above and the wave-mode storm machine.
func containsSpec(target congest.NodeID) *tree.Spec {
	return &tree.Spec{
		Down:     target,
		DownBits: 32,
		UpBits:   1,
		Local: func(node *congest.NodeState, down any) any {
			return node.ID == down.(congest.NodeID)
		},
		Combine: func(node *congest.NodeState, down, local any, children []tree.ChildEcho) any {
			found := local.(bool)
			for _, c := range children {
				found = found || c.Value.(bool)
			}
			return found
		},
	}
}
