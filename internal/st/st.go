// Package st implements the paper's unweighted results: Build ST (§4.2) —
// Borůvka-style phases using FindAny-C instead of FindMin-C, a
// log n / log log n cheaper — and impromptu ST repair (§4.3).
//
// Unlike the MST case, fragments picking arbitrary outgoing edges can
// close a cycle (at most one per merged component). Cycles are detected
// by the leader election timing out (§4.2): the stuck nodes know they are
// on a cycle and know their two cycle neighbours. Each picks one of its
// two cycle edges uniformly at random and sends an "exclude" along it; an
// edge picked from both ends is unmarked, breaking the cycle with
// probability >= 1 - 2^-(k-1) while unmarking at most half the cycle. If
// a second election still finds the cycle, all its edges are unmarked.
package st

import (
	"fmt"
	"math"

	"kkt/internal/congest"
	"kkt/internal/findany"
	"kkt/internal/rng"
	"kkt/internal/tree"
)

// KindExclude is the cycle-breaking message kind, interned at package init.
var KindExclude = congest.Kind("st.exclude")

// Protocol carries the ST-specific handler state: each cycle-breaking
// session's node picks (each node's pick is node-local knowledge — its
// random choice between its two cycle neighbours — held here because the
// per-node election state has already been cleaned up).
type Protocol struct {
	nw    *congest.Network
	tr    *tree.Protocol
	picks map[congest.SessionID]map[congest.NodeID]congest.NodeID
}

// Attach registers the ST handlers. Call once per network, after
// tree.Attach.
func Attach(nw *congest.Network, tr *tree.Protocol) *Protocol {
	sp := &Protocol{
		nw:    nw,
		tr:    tr,
		picks: make(map[congest.SessionID]map[congest.NodeID]congest.NodeID),
	}
	nw.RegisterHandler(KindExclude, sp.onExclude)
	return sp
}

// onExclude: the node across the picked edge unmarks it iff it picked the
// same edge (paper: "If some edge is picked by both its neighbors, then
// this edge is unmarked"). Both endpoints detect the coincidence
// independently and stage their own halves.
func (sp *Protocol) onExclude(nw *congest.Network, node *congest.NodeState, msg *congest.Message) {
	picks, ok := sp.picks[msg.Session]
	if !ok {
		panic(fmt.Sprintf("st: exclude for unknown session %d", msg.Session))
	}
	if mine, ok := picks[node.ID]; ok && mine == msg.From {
		node.StageUnmark(msg.From)
	}
}

// BuildConfig tunes Build.
type BuildConfig struct {
	Seed uint64
	// C is the error exponent.
	C int
	// FindAny configures the per-fragment search; the paper uses
	// FindAny-C inside Build ST.
	FindAny findany.Config
	// Drivers selects the per-fragment driver model (continuation state
	// machines by default; goroutines as the parity reference).
	Drivers congest.DriverMode
}

// DefaultBuild returns the paper-faithful configuration.
func DefaultBuild(seed uint64) BuildConfig {
	return BuildConfig{Seed: seed, C: 2, FindAny: findany.Defaults(findany.Capped)}
}

// PhaseStat records one Build-ST phase.
type PhaseStat struct {
	Fragments    int
	Merges       int
	Empties      int
	GaveUps      int
	CycleNodes   int // nodes found on cycles at the start of the phase
	CyclesBroken int // cycles broken by the random-exclusion round
	CyclesWiped  int // cycles whose every edge was unmarked
	Messages     uint64
	Bits         uint64
	Rounds       int64
	Classes      []congest.ClassCost // per-kind-class cost breakdown
}

// BuildResult reports a Build run.
type BuildResult struct {
	Forest   [][2]congest.NodeID
	Phases   []PhaseStat
	Messages uint64
	Bits     uint64
	Rounds   int64
}

// MaxPhases is the phase budget, O(log n) as in Appendix B.
func MaxPhases(n, c int) int {
	lg := math.Ceil(math.Log2(float64(n)))
	if lg < 1 {
		lg = 1
	}
	return int(math.Ceil(80 * float64(c) * lg))
}

// Build constructs a spanning forest on nw (which must carry no marks).
func Build(nw *congest.Network, pr *tree.Protocol, sp *Protocol, cfg BuildConfig) (BuildResult, error) {
	if cfg.C < 1 {
		cfg.C = 1
	}
	var result BuildResult
	maxPhases := MaxPhases(nw.N(), cfg.C)
	nw.Spawn("boruvka-st", func(p *congest.Proc) error {
		var scratch congest.FanoutScratch[findany.Reason]
		var drivers []*fragDriver
		var meter congest.PhaseMeter
		for phase := 1; phase <= maxPhases; phase++ {
			stat, err := sp.runPhase(p, pr, cfg, phase, &meter, &scratch, &drivers)
			if err != nil {
				return err
			}
			result.Phases = append(result.Phases, stat)
			if stat.CycleNodes == 0 && stat.Empties == stat.Fragments {
				return nil
			}
		}
		return fmt.Errorf("st: phase budget %d exhausted without convergence", maxPhases)
	})
	err := nw.Run()
	if err == nil {
		result.Forest = nw.MarkedEdges()
		c := nw.Counters()
		result.Messages = c.Messages
		result.Bits = c.Bits
		result.Rounds = nw.Now()
	}
	return result, err
}

// fragDriver is the continuation driver of one fragment in one Build-ST
// phase: FindAny-C, then (on success) the Add-Edge broadcast-and-echo.
// Drivers are reused across phases; see mst's fragDriver for the model.
type fragDriver struct {
	m       *findany.Machine
	pr      *tree.Protocol
	leader  congest.NodeID
	outcome *findany.Reason
	adding  bool
}

// init arms the driver for one fragment of one phase.
func (d *fragDriver) init(pr *tree.Protocol, leader congest.NodeID, r *rng.RNG, cfg findany.Config, outcome *findany.Reason) {
	d.pr, d.leader, d.outcome = pr, leader, outcome
	d.adding = false
	d.m.Reset(pr, leader, r, cfg)
}

// Step implements congest.StepDriver.
func (d *fragDriver) Step(t *congest.Task, w congest.Wake) (congest.SessionID, bool, error) {
	if d.adding {
		_, err := w.Value()
		return 0, true, err
	}
	next, done, err := d.m.Step(t, w)
	if !done {
		return next, false, nil
	}
	if err != nil {
		return 0, true, err
	}
	res, _ := d.m.Result()
	*d.outcome = res.Reason
	if res.Reason != findany.FoundEdge {
		return 0, true, nil
	}
	d.adding = true
	return d.pr.StartBroadcastEcho(d.leader, tree.AddEdgeSpec(res.EdgeNum)), false, nil
}

// runPhase: detect and break cycles left by the previous phase's merges,
// then elect leaders and run FindAny-C per fragment.
func (sp *Protocol) runPhase(p *congest.Proc, pr *tree.Protocol, cfg BuildConfig, phase int, meter *congest.PhaseMeter, scratch *congest.FanoutScratch[findany.Reason], drivers *[]*fragDriver) (PhaseStat, error) {
	nw := sp.nw
	meter.Begin(nw)
	var stat PhaseStat

	elect, err := pr.ElectAll(p)
	if err != nil {
		return stat, err
	}
	stat.CycleNodes = len(elect.CycleNodes)
	if len(elect.CycleNodes) > 0 {
		nBefore := countCycles(elect.CycleNodes)
		if err := sp.breakCycles(p, elect.CycleNodes, phase, cfg.Seed); err != nil {
			return stat, err
		}
		// Second election: surviving cycles are wiped entirely.
		elect, err = pr.ElectAll(p)
		if err != nil {
			return stat, err
		}
		if len(elect.CycleNodes) > 0 {
			stat.CyclesWiped = countCycles(elect.CycleNodes)
			for _, cn := range elect.CycleNodes {
				node := nw.Node(cn.Node)
				node.StageUnmark(cn.Left)
				node.StageUnmark(cn.Right)
			}
			nw.ApplyStaged()
			// Third election for this phase's leaders.
			elect, err = pr.ElectAll(p)
			if err != nil {
				return stat, err
			}
			if len(elect.CycleNodes) > 0 {
				return stat, fmt.Errorf("st: cycle survived a full wipe at phase %d", phase)
			}
		}
		stat.CyclesBroken = nBefore - stat.CyclesWiped
	}
	stat.Fragments = len(elect.Leaders)
	if o := nw.Obs(); o != nil {
		o.PhaseStart("st", phase, stat.Fragments, nw.Now())
	}

	outcomes := scratch.Outcomes(len(elect.Leaders))
	if cfg.Drivers == congest.DriverGoroutine {
		procs := scratch.Procs()
		for i, leader := range elect.Leaders {
			i, leader := i, leader
			procs = append(procs, p.GoTagged("findany", uint64(phase), uint64(leader), func(fp *congest.Proc) error {
				r := fragmentRand(cfg.Seed, phase, leader)
				res, err := findany.Run(fp, pr, leader, r, cfg.FindAny)
				if err != nil {
					return err
				}
				outcomes[i] = res.Reason
				if res.Reason == findany.FoundEdge {
					if _, err := pr.BroadcastEcho(fp, leader, tree.AddEdgeSpec(res.EdgeNum)); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		scratch.KeepProcs(procs)
		if err := p.WaitAll(procs...); err != nil {
			return stat, err
		}
	} else {
		tasks := scratch.Tasks()
		for i, leader := range elect.Leaders {
			for len(*drivers) <= i {
				*drivers = append(*drivers, &fragDriver{m: findany.NewMachine()})
			}
			d := (*drivers)[i]
			d.init(pr, leader, fragmentRand(cfg.Seed, phase, leader), cfg.FindAny, &outcomes[i])
			tasks = append(tasks, p.GoStepTagged("findany", uint64(phase), uint64(leader), d))
		}
		scratch.KeepTasks(tasks)
		if err := p.WaitTasks(tasks...); err != nil {
			return stat, err
		}
	}
	p.AwaitQuiescence()
	nw.ApplyStaged()

	for _, o := range outcomes {
		switch o {
		case findany.FoundEdge:
			stat.Merges++
		case findany.EmptyCut:
			stat.Empties++
		case findany.GaveUp:
			stat.GaveUps++
		}
	}
	cost := meter.End()
	stat.Messages, stat.Bits, stat.Rounds = cost.Messages, cost.Bits, cost.Rounds
	stat.Classes = cost.Classes
	if o := nw.Obs(); o != nil {
		o.PhaseEnd("st", phase, nw.Now(), cost)
	}
	return stat, nil
}

// breakCycles runs the random-exclusion round: every cycle node picks one
// of its two cycle edges uniformly and sends an exclude along it; edges
// picked from both ends get unmarked at the barrier.
func (sp *Protocol) breakCycles(p *congest.Proc, cycleNodes []tree.CycleNode, phase int, seed uint64) error {
	nw := sp.nw
	sid := nw.NewSession(nil)
	picks := make(map[congest.NodeID]congest.NodeID, len(cycleNodes))
	for _, cn := range cycleNodes {
		r := sp.tr.NodeRand(cn.Node, sid)
		pick := cn.Left
		if r.Bool() {
			pick = cn.Right
		}
		picks[cn.Node] = pick
	}
	sp.picks[sid] = picks
	for _, cn := range cycleNodes {
		nw.Send(cn.Node, picks[cn.Node], KindExclude, sid, 8, nil)
	}
	p.AwaitQuiescence()
	nw.ApplyStaged()
	delete(sp.picks, sid)
	nw.CompleteSession(sid, nil, nil)
	return nil
}

// countCycles groups cycle nodes into their disjoint cycles by walking
// neighbour links (simulation bookkeeping for statistics only).
func countCycles(nodes []tree.CycleNode) int {
	next := make(map[congest.NodeID][2]congest.NodeID, len(nodes))
	for _, cn := range nodes {
		next[cn.Node] = [2]congest.NodeID{cn.Left, cn.Right}
	}
	seen := make(map[congest.NodeID]bool, len(nodes))
	cycles := 0
	for _, cn := range nodes {
		if seen[cn.Node] {
			continue
		}
		cycles++
		// walk the cycle
		cur, prev := cn.Node, congest.NodeID(0)
		for !seen[cur] {
			seen[cur] = true
			nb := next[cur]
			step := nb[0]
			if step == prev {
				step = nb[1]
			}
			prev, cur = cur, step
			if _, ok := next[cur]; !ok {
				break // defensive: neighbour not reported as cycle node
			}
		}
	}
	return cycles
}

func fragmentRand(seed uint64, phase int, leader congest.NodeID) *rng.RNG {
	return rng.New(seed ^ uint64(phase)*0x9e3779b97f4a7c15 ^ uint64(leader)*0xff51afd7ed558ccd)
}
