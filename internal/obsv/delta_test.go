package obsv

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"kkt/internal/congest"
)

// driveStep feeds one scripted engine step into the recorder: a round-end
// ledger update plus a rotating mix of phase, repair, session and counter
// traffic. Step counts are chosen so a few thousand steps overflow both
// the round-sample ring (forcing a stride rebase) and the event ring
// (forcing drops) — the two delta paths that rewrite history.
func driveStep(r *Recorder, i int, byKind []congest.KindCount) {
	byKind[0].Messages += uint64(i%7 + 1)
	byKind[0].Bits += uint64(i % 97)
	byKind[1].Messages += uint64(i % 3)
	byKind[1].Bits += uint64(i % 11)
	var load []uint64
	if i%2 == 0 {
		load = []uint64{uint64(i), uint64(2 * i)}
	}
	r.RoundEnd(int64(i+1), uint64(13*i), uint64(190*i), byKind, load)
	switch i % 5 {
	case 0:
		r.PhaseStart("mst", i/5, 40-i/5, int64(i+1))
	case 1:
		r.PhaseEnd("mst", i/5, int64(i+1), congest.PhaseCosts{
			Messages: uint64(i), Bits: uint64(8 * i), Rounds: int64(i % 9),
			Classes: []congest.ClassCost{{Class: "fragment", Messages: uint64(i), Bits: uint64(4 * i)}},
		})
	case 2:
		r.RepairStart("mst.delete", int64(i+1))
		r.RepairDone("mst.delete", "replace", int64(i+1), int64(i%17+1), uint64(i), uint64(2*i))
	case 3:
		r.SessionOpen(uint64(i), int64(i+1))
		r.SessionDone(uint64(i), int64(i+1), i%30 == 3)
	case 4:
		r.Count("backoff.retry", uint64(i%4+1))
	}
}

// TestDeltaRoundTrip drives a recorder through a long scripted run,
// snapshotting at irregular intervals, and checks that the chain of
// Apply(…, Diff(…)) reconstructions stays exactly equal to the full
// snapshots — including across a sample-ring rebase and event-ring drops,
// and with every delta round-tripped through its JSON wire form.
func TestDeltaRoundTrip(t *testing.T) {
	kinds := []congest.KindID{congest.Kind("obsv.delta.alpha"), congest.Kind("obsv.delta.beta")}
	byKind := make([]congest.KindCount, int(kinds[1])+1)
	_ = kinds

	r := NewRecorder("delta-test")
	prev := r.Snapshot()
	acc := prev
	const steps = 3000
	var sawRebase bool
	for i := 0; i < steps; i++ {
		driveStep(r, i, byKind)
		if i%97 != 0 && i != steps-1 {
			continue
		}
		cur := r.Snapshot()
		d := Diff(prev, cur)
		if d.SamplesRebase {
			sawRebase = true
		}
		blob, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal delta at step %d: %v", i, err)
		}
		var wire Delta
		if err := json.Unmarshal(blob, &wire); err != nil {
			t.Fatalf("unmarshal delta at step %d: %v", i, err)
		}
		acc = Apply(acc, wire)
		if !reflect.DeepEqual(acc, cur) {
			t.Fatalf("delta chain diverged from full snapshot at step %d:\n applied %+v\n want    %+v", i, diffSummary(acc, cur), "")
		}
		prev = cur
	}
	if !sawRebase {
		t.Error("script never overflowed the sample ring; rebase path untested")
	}
	final := r.Snapshot()
	if final.EventsDropped == 0 {
		t.Error("script never overflowed the event ring; drop/trim path untested")
	}
	if d := Diff(final, final); !d.Empty() {
		t.Errorf("Diff of identical snapshots not empty: %+v", d)
	}
}

// diffSummary localizes a DeepEqual failure to the first differing field,
// keeping the failure message readable.
func diffSummary(got, want Snapshot) string {
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	for i := 0; i < gv.NumField(); i++ {
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			return fmt.Sprintf("field %s: got %+v want %+v",
				gv.Type().Field(i).Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
	return "snapshots equal field-by-field (aliasing?)"
}

// TestSnapshotConcurrent hammers the recorder from a writer goroutine
// while readers snapshot and diff continuously — the daemon's publishing
// pattern. Run under -race this is the Recorder's thread-safety gate.
func TestSnapshotConcurrent(t *testing.T) {
	congest.Kind("obsv.delta.alpha")
	byKind := make([]congest.KindCount, int(congest.Kind("obsv.delta.beta"))+1)
	r := NewRecorder("race-test")

	const steps = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < steps; i++ {
			driveStep(r, i, byKind)
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := r.Snapshot()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur := r.Snapshot()
				d := Diff(prev, cur)
				if got := Apply(prev, d); !reflect.DeepEqual(got, cur) {
					t.Errorf("concurrent delta chain diverged: %s", diffSummary(got, cur))
					return
				}
				prev = cur
			}
		}()
	}
	wg.Wait()

	// The writer finished after the readers' last snapshot: one final
	// delta must still reconcile.
	cur := r.Snapshot()
	if got := Apply(cur, Diff(cur, cur)); !reflect.DeepEqual(got, cur) {
		t.Errorf("identity delta not a fixed point: %s", diffSummary(got, cur))
	}
}
