package obsv

import "kkt/internal/congest"

// Snapshot deltas: the incremental form a streaming subscriber receives.
// Diff(prev, cur) captures everything that changed between two snapshots
// of the same recorder; Apply(base, d) reconstructs cur from prev exactly
// (the delta round-trip contract, enforced by TestDeltaRoundTrip). A
// subscriber that misses deltas cannot resynchronize from the stream — the
// publisher must hand it a fresh full snapshot instead (see the serve
// layer's per-client resync-on-drop).
//
// Encoding choices, smallest-first:
//   - Monotone scalar aggregates (totals, session/repair stats, drop
//     counters) are carried whole when changed — they are a handful of
//     words.
//   - Round samples and trace events are appended when the previous
//     snapshot is a prefix of the current one; the sample ring's adaptive
//     thinning and stride doubling rewrite history, which a delta signals
//     with SamplesRebase (full replacement).
//   - Phase aggregates are upserted by index: the recorder only appends
//     phases and mutates each one exactly once (its PhaseEnd), so an
//     upsert list stays short.
//   - Kind totals, shard load and named counters are replaced whole when
//     changed; they are bounded by the kind table / shard count / distinct
//     counter names, not by run length.

// DeltaTotals is the scalar cost header of a delta.
type DeltaTotals struct {
	Now      int64  `json:"now"`
	Messages uint64 `json:"messages"`
	Bits     uint64 `json:"bits"`
}

// PhaseUpdate upserts one phase aggregate at its index.
type PhaseUpdate struct {
	Index int      `json:"index"`
	Phase PhaseAgg `json:"phase"`
}

// Delta is the set of changes between two snapshots of one recorder. Nil
// / absent fields mean "unchanged"; see the package comment for the
// append-vs-replace encoding of each field.
type Delta struct {
	Totals        *DeltaTotals      `json:"totals,omitempty"`
	ByKind        []KindTotal       `json:"by_kind,omitempty"`
	ShardLoad     []uint64          `json:"shard_load,omitempty"`
	SampleStride  *uint64           `json:"sample_stride,omitempty"`
	Samples       []RoundSample     `json:"samples,omitempty"`
	SamplesRebase bool              `json:"samples_rebase,omitempty"`
	Phases        []PhaseUpdate     `json:"phases,omitempty"`
	PhasesDropped *uint64           `json:"phases_dropped,omitempty"`
	Sessions      *SessionStats     `json:"sessions,omitempty"`
	Repairs       *RepairStats      `json:"repairs,omitempty"`
	Counts        map[string]uint64 `json:"counts,omitempty"`
	Events        []Event           `json:"events,omitempty"`
	EventsDropped *uint64           `json:"events_dropped,omitempty"`
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool {
	return d.Totals == nil && d.ByKind == nil && d.ShardLoad == nil &&
		d.SampleStride == nil && d.Samples == nil && !d.SamplesRebase &&
		d.Phases == nil && d.PhasesDropped == nil && d.Sessions == nil &&
		d.Repairs == nil && d.Counts == nil && d.Events == nil &&
		d.EventsDropped == nil
}

// Diff returns the changes from prev to cur. Both must be snapshots of
// the same recorder, taken in that order; Diff never mutates either.
func Diff(prev, cur Snapshot) Delta {
	var d Delta
	if prev.Now != cur.Now || prev.Messages != cur.Messages || prev.Bits != cur.Bits {
		d.Totals = &DeltaTotals{Now: cur.Now, Messages: cur.Messages, Bits: cur.Bits}
	}
	if !kindTotalsEqual(prev.ByKind, cur.ByKind) {
		d.ByKind = append([]KindTotal(nil), cur.ByKind...)
	}
	if !uint64sEqual(prev.ShardLoad, cur.ShardLoad) {
		d.ShardLoad = append([]uint64(nil), cur.ShardLoad...)
	}
	if prev.SampleStride != cur.SampleStride {
		s := cur.SampleStride
		d.SampleStride = &s
	}
	switch {
	case samplesPrefix(prev.RoundSamples, cur.RoundSamples):
		if n := len(cur.RoundSamples) - len(prev.RoundSamples); n > 0 {
			d.Samples = append([]RoundSample(nil), cur.RoundSamples[len(prev.RoundSamples):]...)
		}
	default:
		// The ring thinned (or otherwise rewrote history): replace whole.
		d.Samples = append([]RoundSample(nil), cur.RoundSamples...)
		d.SamplesRebase = true
	}
	for i := range cur.Phases {
		if i >= len(prev.Phases) || !phaseAggEqual(prev.Phases[i], cur.Phases[i]) {
			d.Phases = append(d.Phases, PhaseUpdate{Index: i, Phase: copyPhaseAgg(cur.Phases[i])})
		}
	}
	if prev.PhasesDropped != cur.PhasesDropped {
		v := cur.PhasesDropped
		d.PhasesDropped = &v
	}
	if prev.Sessions != cur.Sessions {
		s := cur.Sessions
		d.Sessions = &s
	}
	if !repairStatsEqual(prev.Repairs, cur.Repairs) {
		r := cur.Repairs
		r.ByAction = copyMap(cur.Repairs.ByAction)
		d.Repairs = &r
	}
	if !mapsEqual(prev.Counts, cur.Counts) {
		d.Counts = copyMap(cur.Counts)
	}
	if evs := newEvents(prev.Events, cur.Events); len(evs) > 0 {
		d.Events = append([]Event(nil), evs...)
	}
	if prev.EventsDropped != cur.EventsDropped {
		v := cur.EventsDropped
		d.EventsDropped = &v
	}
	return d
}

// Apply reconstructs the successor snapshot from base and a delta
// produced by Diff against that same base. The result shares no memory
// with either input.
func Apply(base Snapshot, d Delta) Snapshot {
	s := base
	// Deep-copy the slices/maps the shallow copy aliases.
	s.ByKind = append([]KindTotal(nil), base.ByKind...)
	s.ShardLoad = append([]uint64(nil), base.ShardLoad...)
	s.RoundSamples = append([]RoundSample(nil), base.RoundSamples...)
	s.Phases = make([]PhaseAgg, len(base.Phases))
	for i := range base.Phases {
		s.Phases[i] = copyPhaseAgg(base.Phases[i])
	}
	s.Repairs.ByAction = copyMap(base.Repairs.ByAction)
	s.Counts = copyMap(base.Counts)
	s.Events = append([]Event(nil), base.Events...)

	if d.Totals != nil {
		s.Now, s.Messages, s.Bits = d.Totals.Now, d.Totals.Messages, d.Totals.Bits
	}
	if d.ByKind != nil {
		s.ByKind = append([]KindTotal(nil), d.ByKind...)
	}
	if d.ShardLoad != nil {
		s.ShardLoad = append([]uint64(nil), d.ShardLoad...)
	}
	if d.SampleStride != nil {
		s.SampleStride = *d.SampleStride
	}
	if d.SamplesRebase {
		s.RoundSamples = append([]RoundSample(nil), d.Samples...)
	} else if len(d.Samples) > 0 {
		s.RoundSamples = append(s.RoundSamples, d.Samples...)
	}
	for _, pu := range d.Phases {
		for pu.Index >= len(s.Phases) {
			s.Phases = append(s.Phases, PhaseAgg{})
		}
		s.Phases[pu.Index] = copyPhaseAgg(pu.Phase)
	}
	if d.PhasesDropped != nil {
		s.PhasesDropped = *d.PhasesDropped
	}
	if d.Sessions != nil {
		s.Sessions = *d.Sessions
	}
	if d.Repairs != nil {
		s.Repairs = *d.Repairs
		s.Repairs.ByAction = copyMap(d.Repairs.ByAction)
	}
	if d.Counts != nil {
		s.Counts = copyMap(d.Counts)
	}
	if len(d.Events) > 0 {
		s.Events = append(s.Events, d.Events...)
		// Mirror the recorder's bounded ring: only the most recent
		// maxEvents survive.
		if n := len(s.Events); n > maxEvents {
			s.Events = append([]Event(nil), s.Events[n-maxEvents:]...)
		}
	}
	if d.EventsDropped != nil {
		s.EventsDropped = *d.EventsDropped
	}
	return s
}

// newEvents returns the suffix of cur whose Seq is newer than prev's
// newest (event sequence numbers are strictly increasing, so the ring's
// chronological order makes this a suffix).
func newEvents(prev, cur []Event) []Event {
	if len(cur) == 0 {
		return nil
	}
	var last uint64
	if len(prev) > 0 {
		last = prev[len(prev)-1].Seq
	}
	i := len(cur)
	for i > 0 && cur[i-1].Seq > last {
		i--
	}
	return cur[i:]
}

// samplesPrefix reports whether prev is a (possibly equal) prefix of cur.
func samplesPrefix(prev, cur []RoundSample) bool {
	if len(prev) > len(cur) {
		return false
	}
	for i := range prev {
		if prev[i] != cur[i] {
			return false
		}
	}
	return true
}

func copyPhaseAgg(pa PhaseAgg) PhaseAgg {
	pa.Classes = append([]congest.ClassCost(nil), pa.Classes...)
	return pa
}

func kindTotalsEqual(a, b []KindTotal) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func uint64sEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func phaseAggEqual(a, b PhaseAgg) bool {
	if a.Proto != b.Proto || a.Phase != b.Phase || a.Fragments != b.Fragments ||
		a.StartNow != b.StartNow || a.EndNow != b.EndNow ||
		a.Messages != b.Messages || a.Bits != b.Bits || a.Rounds != b.Rounds ||
		a.Done != b.Done || len(a.Classes) != len(b.Classes) {
		return false
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			return false
		}
	}
	return true
}

func repairStatsEqual(a, b RepairStats) bool {
	if a.Started != b.Started || a.Finished != b.Finished ||
		a.Messages != b.Messages || a.Bits != b.Bits ||
		a.RoundsSum != b.RoundsSum || a.RoundsMin != b.RoundsMin || a.RoundsMax != b.RoundsMax ||
		a.RoundsP50 != b.RoundsP50 || a.RoundsP90 != b.RoundsP90 || a.RoundsP99 != b.RoundsP99 {
		return false
	}
	return mapsEqual(a.ByAction, b.ByAction)
}

func mapsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}