package obsv

import (
	"sort"
	"sync"

	"kkt/internal/congest"
)

// Bounds; see doc.go for how each keeps recorder memory independent of run
// length.
const (
	maxRoundSamples = 1024
	maxEvents       = 512
	maxPhaseAggs    = 4096
	maxLatSamples   = 256
)

// RoundSample is one sampled point of the cumulative cost timeline.
type RoundSample struct {
	Now      int64  `json:"now"`
	Messages uint64 `json:"messages"`
	Bits     uint64 `json:"bits"`
}

// Event is one trace event from the bounded event ring.
type Event struct {
	Seq    uint64 `json:"seq"`
	Type   string `json:"type"` // phase-start | phase-end | repair-start | repair-done
	Proto  string `json:"proto,omitempty"`
	Phase  int    `json:"phase,omitempty"`
	Op     string `json:"op,omitempty"`
	Action string `json:"action,omitempty"`
	Now    int64  `json:"now"`
}

// PhaseAgg is the monotone aggregate of one protocol phase: started once,
// finished once, never mutated afterwards.
type PhaseAgg struct {
	Proto     string              `json:"proto"`
	Phase     int                 `json:"phase"`
	Fragments int                 `json:"fragments"`
	StartNow  int64               `json:"start_now"`
	EndNow    int64               `json:"end_now"`
	Messages  uint64              `json:"messages"`
	Bits      uint64              `json:"bits"`
	Rounds    int64               `json:"rounds"`
	Classes   []congest.ClassCost `json:"classes,omitempty"`
	Done      bool                `json:"done"`
}

// SessionStats aggregates session lifecycle events.
type SessionStats struct {
	Opened    uint64 `json:"opened"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// RepairStats aggregates repair operations: counts, cost, round-latency
// extremes, and nearest-rank percentiles over a bounded ring of the most
// recent repair latencies (a live storm view, not an exact all-time
// distribution).
type RepairStats struct {
	Started   uint64            `json:"started"`
	Finished  uint64            `json:"finished"`
	Messages  uint64            `json:"messages"`
	Bits      uint64            `json:"bits"`
	RoundsSum int64             `json:"rounds_sum"`
	RoundsMin int64             `json:"rounds_min"`
	RoundsMax int64             `json:"rounds_max"`
	RoundsP50 int64             `json:"rounds_p50,omitempty"`
	RoundsP90 int64             `json:"rounds_p90,omitempty"`
	RoundsP99 int64             `json:"rounds_p99,omitempty"`
	ByAction  map[string]uint64 `json:"by_action,omitempty"`
}

// KindTotal is the cumulative cost of one message kind, resolved to its
// interned name.
type KindTotal struct {
	Kind     string `json:"kind"`
	Messages uint64 `json:"messages"`
	Bits     uint64 `json:"bits"`
}

// Snapshot is a consistent deep copy of a recorder's state.
type Snapshot struct {
	Label         string            `json:"label"`
	Now           int64             `json:"now"`
	Messages      uint64            `json:"messages"`
	Bits          uint64            `json:"bits"`
	ByKind        []KindTotal       `json:"by_kind,omitempty"`
	ShardLoad     []uint64          `json:"shard_load,omitempty"`
	SampleStride  uint64            `json:"sample_stride"`
	RoundSamples  []RoundSample     `json:"round_samples,omitempty"`
	Phases        []PhaseAgg        `json:"phases,omitempty"`
	PhasesDropped uint64            `json:"phases_dropped,omitempty"`
	Sessions      SessionStats      `json:"sessions"`
	Repairs       RepairStats       `json:"repairs"`
	Counts        map[string]uint64 `json:"counts,omitempty"`
	Events        []Event           `json:"events,omitempty"`
	EventsDropped uint64            `json:"events_dropped,omitempty"`
}

// Recorder implements congest.Observer; see doc.go for its invariants.
type Recorder struct {
	mu    sync.Mutex
	label string

	now      int64
	messages uint64
	bits     uint64
	byKind   []congest.KindCount
	load     []uint64

	roundCalls uint64
	stride     uint64
	samples    []RoundSample

	phases        []PhaseAgg
	phasesDropped uint64

	events        []Event
	eventHead     int
	eventSeq      uint64
	eventsDropped uint64

	sessions SessionStats
	repairs  RepairStats
	lats     []int64 // ring of recent repair round-latencies
	latHead  int
	counts   map[string]uint64
}

var _ congest.Observer = (*Recorder)(nil)

// NewRecorder returns a recorder labelled for snapshot consumers (e.g.
// "scenario#trial").
func NewRecorder(label string) *Recorder {
	return &Recorder{label: label, stride: 1}
}

// RoundEnd implements congest.Observer.
func (r *Recorder) RoundEnd(now int64, messages, bits uint64, byKind []congest.KindCount, shardLoad []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now, r.messages, r.bits = now, messages, bits
	r.byKind = append(r.byKind[:0], byKind...)
	if shardLoad != nil {
		r.load = append(r.load[:0], shardLoad...)
	}
	if r.roundCalls%r.stride == 0 {
		if len(r.samples) >= maxRoundSamples {
			// Thin to every other sample and double the stride: coverage of
			// the whole run is preserved at half the resolution.
			n := 0
			for i := 0; i < len(r.samples); i += 2 {
				r.samples[n] = r.samples[i]
				n++
			}
			r.samples = r.samples[:n]
			r.stride *= 2
		}
		r.samples = append(r.samples, RoundSample{Now: now, Messages: messages, Bits: bits})
	}
	r.roundCalls++
}

// SessionOpen implements congest.Observer.
func (r *Recorder) SessionOpen(serial uint64, now int64) {
	r.mu.Lock()
	r.sessions.Opened++
	r.mu.Unlock()
}

// SessionDone implements congest.Observer.
func (r *Recorder) SessionDone(serial uint64, now int64, failed bool) {
	r.mu.Lock()
	r.sessions.Completed++
	if failed {
		r.sessions.Failed++
	}
	r.mu.Unlock()
}

// PhaseStart implements congest.Observer.
func (r *Recorder) PhaseStart(proto string, phase, fragments int, now int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.phases) >= maxPhaseAggs {
		r.phasesDropped++
	} else {
		r.phases = append(r.phases, PhaseAgg{Proto: proto, Phase: phase, Fragments: fragments, StartNow: now})
	}
	r.event(Event{Type: "phase-start", Proto: proto, Phase: phase, Now: now})
}

// PhaseEnd implements congest.Observer.
func (r *Recorder) PhaseEnd(proto string, phase int, now int64, cost congest.PhaseCosts) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.phases) - 1; i >= 0; i-- {
		pa := &r.phases[i]
		if pa.Proto == proto && pa.Phase == phase && !pa.Done {
			pa.EndNow = now
			pa.Messages, pa.Bits, pa.Rounds = cost.Messages, cost.Bits, cost.Rounds
			pa.Classes = append([]congest.ClassCost(nil), cost.Classes...)
			pa.Done = true
			break
		}
	}
	r.event(Event{Type: "phase-end", Proto: proto, Phase: phase, Now: now})
}

// RepairStart implements congest.Observer.
func (r *Recorder) RepairStart(op string, now int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.repairs.Started++
	r.event(Event{Type: "repair-start", Op: op, Now: now})
}

// RepairDone implements congest.Observer.
func (r *Recorder) RepairDone(op, action string, now int64, rounds int64, messages, bits uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rp := &r.repairs
	rp.Finished++
	rp.Messages += messages
	rp.Bits += bits
	rp.RoundsSum += rounds
	if rp.Finished == 1 || rounds < rp.RoundsMin {
		rp.RoundsMin = rounds
	}
	if rounds > rp.RoundsMax {
		rp.RoundsMax = rounds
	}
	if rp.ByAction == nil {
		rp.ByAction = make(map[string]uint64)
	}
	rp.ByAction[op+"/"+action]++
	if len(r.lats) < maxLatSamples {
		r.lats = append(r.lats, rounds)
	} else {
		r.lats[r.latHead] = rounds
		r.latHead = (r.latHead + 1) % maxLatSamples
	}
	r.event(Event{Type: "repair-done", Op: op, Action: action, Now: now})
}

// Count implements congest.Observer.
func (r *Recorder) Count(name string, delta uint64) {
	r.mu.Lock()
	if r.counts == nil {
		r.counts = make(map[string]uint64)
	}
	r.counts[name] += delta
	r.mu.Unlock()
}

// event appends to the bounded ring; callers hold r.mu.
func (r *Recorder) event(e Event) {
	r.eventSeq++
	e.Seq = r.eventSeq
	if len(r.events) < maxEvents {
		r.events = append(r.events, e)
		return
	}
	r.events[r.eventHead] = e
	r.eventHead = (r.eventHead + 1) % maxEvents
	r.eventsDropped++
}

// Snapshot returns a consistent deep copy of the recorder's state, safe to
// serialize while the engine keeps appending.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Label:         r.label,
		Now:           r.now,
		Messages:      r.messages,
		Bits:          r.bits,
		SampleStride:  r.stride,
		Sessions:      r.sessions,
		Repairs:       r.repairs,
		PhasesDropped: r.phasesDropped,
		EventsDropped: r.eventsDropped,
	}
	s.Repairs.ByAction = copyMap(r.repairs.ByAction)
	if len(r.lats) > 0 {
		sorted := append([]int64(nil), r.lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.Repairs.RoundsP50 = nearestRank(sorted, 50)
		s.Repairs.RoundsP90 = nearestRank(sorted, 90)
		s.Repairs.RoundsP99 = nearestRank(sorted, 99)
	}
	s.Counts = copyMap(r.counts)
	for id, kc := range r.byKind {
		if kc.Messages != 0 || kc.Bits != 0 {
			s.ByKind = append(s.ByKind, KindTotal{Kind: congest.KindID(id).String(), Messages: kc.Messages, Bits: kc.Bits})
		}
	}
	sort.Slice(s.ByKind, func(i, j int) bool { return s.ByKind[i].Kind < s.ByKind[j].Kind })
	s.ShardLoad = append([]uint64(nil), r.load...)
	s.RoundSamples = append([]RoundSample(nil), r.samples...)
	s.Phases = make([]PhaseAgg, len(r.phases))
	for i, pa := range r.phases {
		pa.Classes = append([]congest.ClassCost(nil), pa.Classes...)
		s.Phases[i] = pa
	}
	if len(r.events) > 0 {
		s.Events = make([]Event, 0, len(r.events))
		s.Events = append(s.Events, r.events[r.eventHead:]...)
		s.Events = append(s.Events, r.events[:r.eventHead]...)
	}
	return s
}

// nearestRank is the nearest-rank percentile of a sorted sample.
func nearestRank(sorted []int64, pct int) int64 {
	idx := (pct*len(sorted) + 99) / 100 // ceil(pct/100 * n)
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

func copyMap(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
