package obsv

import (
	"testing"

	"kkt/internal/congest"
)

// TestRoundSampleStrideAdapts drives far more rounds than the sample cap
// and checks the adaptive stride keeps the ring bounded while covering the
// whole run.
func TestRoundSampleStrideAdapts(t *testing.T) {
	r := NewRecorder("stride")
	const rounds = 10 * maxRoundSamples
	for i := 0; i < rounds; i++ {
		r.RoundEnd(int64(i), uint64(i), uint64(i)*8, nil, nil)
	}
	s := r.Snapshot()
	if len(s.RoundSamples) > maxRoundSamples {
		t.Fatalf("%d samples exceed cap %d", len(s.RoundSamples), maxRoundSamples)
	}
	if s.SampleStride < 2 {
		t.Errorf("stride stayed %d after %d rounds — never adapted", s.SampleStride, rounds)
	}
	if len(s.RoundSamples) < maxRoundSamples/4 {
		t.Errorf("only %d samples kept — thinning too aggressive", len(s.RoundSamples))
	}
	// Coverage: first sample is round 0, last is near the end, and the
	// series is strictly increasing.
	if s.RoundSamples[0].Now != 0 {
		t.Errorf("first sample at round %d, want 0", s.RoundSamples[0].Now)
	}
	last := s.RoundSamples[len(s.RoundSamples)-1]
	if last.Now < rounds-int64(2*s.SampleStride) {
		t.Errorf("last sample at round %d — tail of the run uncovered (stride %d)", last.Now, s.SampleStride)
	}
	for i := 1; i < len(s.RoundSamples); i++ {
		if s.RoundSamples[i].Now <= s.RoundSamples[i-1].Now {
			t.Fatalf("samples not increasing at %d: %d then %d", i, s.RoundSamples[i-1].Now, s.RoundSamples[i].Now)
		}
	}
	if s.Messages != rounds-1 || s.Now != rounds-1 {
		t.Errorf("totals (now=%d, msgs=%d) lost — want latest round %d", s.Now, s.Messages, rounds-1)
	}
}

// TestEventRingBounded overflows the event ring and checks oldest-first
// eviction with an accurate drop count.
func TestEventRingBounded(t *testing.T) {
	r := NewRecorder("events")
	const total = maxEvents + 100
	for i := 0; i < total; i++ {
		r.RepairStart("op", int64(i))
	}
	s := r.Snapshot()
	if len(s.Events) != maxEvents {
		t.Fatalf("%d events in ring, want %d", len(s.Events), maxEvents)
	}
	if s.EventsDropped != 100 {
		t.Errorf("dropped=%d, want 100", s.EventsDropped)
	}
	// Ring unrolls oldest-first: sequence numbers are consecutive and end
	// at the newest event.
	for i, e := range s.Events {
		if want := uint64(100 + i + 1); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
}

// TestPhaseAggAndRepairStats exercises the phase matching and repair
// min/max bookkeeping.
func TestPhaseAggAndRepairStats(t *testing.T) {
	r := NewRecorder("aggs")
	r.PhaseStart("mst", 1, 64, 10)
	r.PhaseEnd("mst", 1, 25, congest.PhaseCosts{
		Messages: 100, Bits: 800, Rounds: 15,
		Classes: []congest.ClassCost{{Class: "tree", Messages: 100, Bits: 800}},
	})
	r.PhaseStart("mst", 2, 16, 25)

	r.RepairDone("mst.delete", "LocalFix", 40, 7, 50, 400)
	r.RepairDone("mst.delete", "Rebuild", 90, 31, 500, 4000)
	r.RepairDone("mst.delete", "LocalFix", 95, 3, 20, 160)

	s := r.Snapshot()
	if len(s.Phases) != 2 {
		t.Fatalf("%d phases, want 2", len(s.Phases))
	}
	p1 := s.Phases[0]
	if !p1.Done || p1.Messages != 100 || p1.Rounds != 15 || p1.EndNow != 25 {
		t.Errorf("phase 1 = %+v — end not folded in", p1)
	}
	if len(p1.Classes) != 1 || p1.Classes[0].Class != "tree" {
		t.Errorf("phase 1 classes = %+v", p1.Classes)
	}
	if s.Phases[1].Done {
		t.Error("phase 2 marked done without PhaseEnd")
	}
	rp := s.Repairs
	if rp.Finished != 3 || rp.RoundsMin != 3 || rp.RoundsMax != 31 || rp.RoundsSum != 41 {
		t.Errorf("repair stats = %+v", rp)
	}
	// Nearest-rank over {3, 7, 31}: P50 = 2nd, P90/P99 = 3rd.
	if rp.RoundsP50 != 7 || rp.RoundsP90 != 31 || rp.RoundsP99 != 31 {
		t.Errorf("latency percentiles = p50:%d p90:%d p99:%d, want 7/31/31",
			rp.RoundsP50, rp.RoundsP90, rp.RoundsP99)
	}
	if rp.ByAction["mst.delete/LocalFix"] != 2 || rp.ByAction["mst.delete/Rebuild"] != 1 {
		t.Errorf("by-action = %v", rp.ByAction)
	}
	// Events carry the full trace in order.
	types := make([]string, len(s.Events))
	for i, e := range s.Events {
		types[i] = e.Type
	}
	want := []string{"phase-start", "phase-end", "phase-start", "repair-done", "repair-done", "repair-done"}
	if len(types) != len(want) {
		t.Fatalf("events %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("events %v, want %v", types, want)
		}
	}
}

// TestSnapshotIsDeepCopy mutates the recorder after snapshotting and checks
// the snapshot is unaffected.
func TestSnapshotIsDeepCopy(t *testing.T) {
	r := NewRecorder("copy")
	r.RoundEnd(5, 10, 80, []congest.KindCount{}, []uint64{3, 4})
	r.Count("x", 1)
	s := r.Snapshot()
	r.RoundEnd(6, 20, 160, []congest.KindCount{}, []uint64{9, 9})
	r.Count("x", 10)
	if s.Now != 5 || s.Messages != 10 {
		t.Errorf("snapshot mutated: now=%d msgs=%d", s.Now, s.Messages)
	}
	if s.ShardLoad[0] != 3 || s.ShardLoad[1] != 4 {
		t.Errorf("shard load mutated: %v", s.ShardLoad)
	}
	if s.Counts["x"] != 1 {
		t.Errorf("counts mutated: %v", s.Counts)
	}
}
