// Package obsv records congest engine trace events — per-round ledger
// snapshots, phase boundaries, protocol lifecycle events — into bounded
// in-memory structures that can be snapshotted concurrently (e.g. by an
// HTTP endpoint) while a trial is running.
//
// # Invariants
//
// Passive. A Recorder only ever copies data out of the callbacks it
// receives; nothing it stores feeds back into engine or protocol
// decisions. Seeded runs are byte-identical with a recorder attached or
// not, at any shard count — this is the engine's observer contract
// (congest.Observer) and the recorder's side of the bargain.
//
// Engine-ordered. All congest.Observer callbacks arrive on the engine
// goroutine at engine barriers, already in the deterministic
// single-threaded order. The recorder's mutex exists only so Snapshot can
// be called from other goroutines (the --obs-listen HTTP server); it never
// orders engine events.
//
// Bounded. Memory does not grow with run length:
//   - Round samples live in a ring of at most maxRoundSamples entries with
//     an adaptive stride: when the ring fills, every other sample is
//     dropped and the sampling stride doubles, so the whole run stays
//     covered at a resolution that halves as the run doubles.
//   - Trace events (phase and repair boundaries) live in a fixed-size ring
//     that overwrites the oldest entry; Snapshot reports how many were
//     dropped.
//   - Per-phase aggregates are append-only but capped at maxPhaseAggs; the
//     paper's phase budget is O(c·log n), far below the cap.
//   - Session and repair statistics are scalar aggregates; named counters
//     are one map entry per distinct name.
//
// Snapshot-consistent. Snapshot deep-copies everything under the lock, so
// readers never observe a torn state and never alias recorder-owned
// memory.
package obsv
