package modring

import (
	"testing"
	"testing/quick"

	"kkt/internal/primes"
)

func TestNewRejectsBadModuli(t *testing.T) {
	if _, err := New(10); err == nil {
		t.Error("composite modulus accepted")
	}
	if _, err := New(uint64(1) << 62); err == nil {
		t.Error("too-large modulus accepted")
	}
	if _, err := New(primes.MersennePrime61); err != nil {
		t.Errorf("2^61-1 rejected: %v", err)
	}
}

func TestFieldAxiomsSpotChecks(t *testing.T) {
	r := MustNew(101)
	for a := uint64(0); a < 101; a++ {
		if got := r.Add(a, r.Neg(a)); got != 0 {
			t.Fatalf("a + (-a) = %d for a=%d", got, a)
		}
		if a != 0 {
			if got := r.Mul(a, r.Inv(a)); got != 1 {
				t.Fatalf("a * a^-1 = %d for a=%d", got, a)
			}
		}
	}
}

func TestArithmeticProperties(t *testing.T) {
	r := Default()
	p := r.P()
	reduce := func(x uint64) uint64 { return x % p }
	f := func(a, b, c uint64) bool {
		a, b, c = reduce(a), reduce(b), reduce(c)
		// commutativity
		if r.Add(a, b) != r.Add(b, a) || r.Mul(a, b) != r.Mul(b, a) {
			return false
		}
		// associativity of add
		if r.Add(r.Add(a, b), c) != r.Add(a, r.Add(b, c)) {
			return false
		}
		// distributivity
		if r.Mul(a, r.Add(b, c)) != r.Add(r.Mul(a, b), r.Mul(a, c)) {
			return false
		}
		// sub is inverse of add
		if r.Sub(r.Add(a, b), b) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	r := MustNew(1009)
	for _, a := range []uint64{0, 1, 2, 57, 1008} {
		want := uint64(1)
		for e := uint64(0); e < 50; e++ {
			if got := r.Pow(a, e); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
			}
			want = r.Mul(want, a)
		}
	}
}

func TestEvalRootProduct(t *testing.T) {
	r := MustNew(97)
	// P(z) = (z-3)(z-5)(z-7); at z=10: 7*5*3 = 105 = 8 mod 97
	if got := r.EvalRootProduct(10, []uint64{3, 5, 7}); got != 8 {
		t.Errorf("EvalRootProduct = %d, want 8", got)
	}
	// empty product is 1
	if got := r.EvalRootProduct(42, nil); got != 1 {
		t.Errorf("empty product = %d, want 1", got)
	}
	// evaluating at a root gives 0
	if got := r.EvalRootProduct(5, []uint64{3, 5, 7}); got != 0 {
		t.Errorf("product at root = %d, want 0", got)
	}
}

func TestEvalRootProductPermutationInvariant(t *testing.T) {
	// The multiset-equality test relies on the product being order-free.
	r := Default()
	f := func(alpha uint64, roots []uint64) bool {
		if len(roots) > 40 {
			roots = roots[:40]
		}
		fwd := r.EvalRootProduct(alpha, roots)
		rev := make([]uint64, len(roots))
		for i, x := range roots {
			rev[len(roots)-1-i] = x
		}
		return fwd == r.EvalRootProduct(alpha, rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchwartzZippelErrorRate(t *testing.T) {
	// Distinct multisets of size k disagree at a random point with
	// probability >= 1 - k/p. With p = 2^61-1 and k = 10 a disagreement
	// must be observed essentially always; run a few hundred trials.
	r := Default()
	setA := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	setB := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 11} // differs in one root
	seed := uint64(12345)
	for trial := 0; trial < 300; trial++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		alpha := seed % r.P()
		if r.EvalRootProduct(alpha, setA) == r.EvalRootProduct(alpha, setB) {
			t.Fatalf("distinct multisets agreed at alpha=%d (prob ~ 2^-57)", alpha)
		}
	}
	// Equal multisets in different order always agree.
	setC := []uint64{10, 1, 9, 2, 8, 3, 7, 4, 6, 5}
	for trial := 0; trial < 50; trial++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		alpha := seed % r.P()
		if r.EvalRootProduct(alpha, setA) != r.EvalRootProduct(alpha, setC) {
			t.Fatal("equal multisets disagreed")
		}
	}
}
