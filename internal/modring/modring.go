// Package modring implements arithmetic in the ring Z_p for a fixed prime
// modulus p < 2^62. HP-TestOut (paper §2.2) evaluates the products
// P(D)(z) = prod_{e in D} (z - edgeNumber(e)) mod p at a random point; every
// node performs these multiplications locally and the partial products are
// combined up the tree.
package modring

import (
	"fmt"
	"math/bits"

	"kkt/internal/primes"
)

// Ring is arithmetic modulo a fixed prime. The zero value is invalid; use
// New. Ring is immutable and safe for concurrent use.
type Ring struct {
	p uint64
}

// New returns a Ring over Z_p. p must be a prime < 2^62 so that all
// intermediate values stay in range for the bits-based mulmod.
func New(p uint64) (Ring, error) {
	if p >= uint64(1)<<62 {
		return Ring{}, fmt.Errorf("modring: modulus %d >= 2^62", p)
	}
	if !primes.IsPrime(p) {
		return Ring{}, fmt.Errorf("modring: modulus %d is not prime", p)
	}
	return Ring{p: p}, nil
}

// MustNew is New but panics on error.
func MustNew(p uint64) Ring {
	r, err := New(p)
	if err != nil {
		panic(err)
	}
	return r
}

// Default returns the ring over the Mersenne prime 2^61-1, the simulator's
// standard HP-TestOut modulus.
func Default() Ring { return Ring{p: primes.MersennePrime61} }

// P returns the modulus.
func (r Ring) P() uint64 { return r.p }

// Bits returns the size of the modulus in bits (the |p| of the paper's
// message-size analysis).
func (r Ring) Bits() int { return bits.Len64(r.p) }

// Reduce maps an arbitrary uint64 into [0, p).
func (r Ring) Reduce(x uint64) uint64 { return x % r.p }

// Add returns a+b mod p. Inputs must already be reduced.
func (r Ring) Add(a, b uint64) uint64 {
	s := a + b // cannot overflow: a,b < 2^62
	if s >= r.p {
		s -= r.p
	}
	return s
}

// Sub returns a-b mod p. Inputs must already be reduced.
func (r Ring) Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return r.p - b + a
}

// Neg returns -a mod p. Input must already be reduced.
func (r Ring) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return r.p - a
}

// Mul returns a*b mod p for any uint64 inputs.
func (r Ring) Mul(a, b uint64) uint64 { return primes.MulMod(a, b, r.p) }

// Pow returns a^e mod p.
func (r Ring) Pow(a, e uint64) uint64 { return primes.PowMod(a, e, r.p) }

// Inv returns the multiplicative inverse of a (a must be nonzero mod p),
// via Fermat's little theorem.
func (r Ring) Inv(a uint64) uint64 {
	a = r.Reduce(a)
	if a == 0 {
		panic("modring: zero has no inverse")
	}
	return r.Pow(a, r.p-2)
}

// EvalRootProduct evaluates prod_i (alpha - roots[i]) mod p. This is the
// local polynomial evaluation each node performs over the edge numbers of
// its up- or down-edge set.
func (r Ring) EvalRootProduct(alpha uint64, roots []uint64) uint64 {
	alpha = r.Reduce(alpha)
	prod := uint64(1)
	for _, root := range roots {
		prod = r.Mul(prod, r.Sub(alpha, r.Reduce(root)))
	}
	return prod
}
