module kkt

go 1.24
