package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// golden compares got against testdata/<name>, rewriting the file under
// -update. Goldens pin the CLI's user-visible output and — for the bench
// report — the exact BENCH_*.json bytes, so identical seeds must keep
// producing identical artifacts across refactors.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// exec runs one CLI invocation and returns (exit code, stdout, stderr).
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestListTableGolden(t *testing.T) {
	code, out, _ := exec(t, "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	golden(t, "list.txt", []byte(out))
}

func TestListJSONGolden(t *testing.T) {
	code, out, _ := exec(t, "list", "--json")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	golden(t, "list.json", []byte(out))
}

func TestRunTableGolden(t *testing.T) {
	code, out, stderr := exec(t, "run", "mst-build-fixed/ring/sync", "--trials", "2", "--seed", "7")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	golden(t, "run_mst_build_fixed.txt", []byte(out))
}

func TestRunJSONGolden(t *testing.T) {
	code, out, stderr := exec(t, "run", "mst-build-fixed/ring/sync", "--trials", "2", "--seed", "7", "--json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	golden(t, "run_mst_build_fixed.json", []byte(out))
}

func TestRunFlagsAfterScenarioName(t *testing.T) {
	_, before, _ := exec(t, "run", "--trials", "2", "--seed", "7", "mst-build-fixed/ring/sync")
	_, after, _ := exec(t, "run", "mst-build-fixed/ring/sync", "--trials", "2", "--seed", "7")
	if before != after {
		t.Error("flag placement changed the output")
	}
}

// TestBenchGolden pins both the rendered table and the BENCH_*.json
// report bytes for a fixed (filter, trials, seed). The report golden is
// the regression gate for "identical seeds give byte-identical reports":
// any core change that shifts message counts, timing or ordering for
// these scenarios fails here.
func TestBenchGolden(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_test.json")
	code, out, stderr := exec(t, "bench", "--filter", "ring", "--trials", "2", "--seed", "7", "--quiet", "--out", outPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	// The temp path varies per run; normalize it before comparing.
	out = strings.ReplaceAll(out, outPath, "BENCH_test.json")
	golden(t, "bench_ring.txt", []byte(out))
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "bench_ring_report.json", blob)
}

func TestBenchJSONMatchesReportFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_test.json")
	code, out, stderr := exec(t, "bench", "--filter", "ring", "--trials", "2", "--seed", "7", "--quiet", "--json", "--out", outPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(blob) {
		t.Error("bench --json stdout differs from the written report")
	}
}

func TestHelpFlagExitsZero(t *testing.T) {
	for _, cmd := range []string{"list", "run", "bench"} {
		code, _, stderr := exec(t, cmd, "-h")
		if code != 0 {
			t.Errorf("kkt %s -h: exit = %d, want 0 (stderr: %q)", cmd, code, stderr)
		}
		if !strings.Contains(stderr, "Usage of kkt "+cmd) {
			t.Errorf("kkt %s -h: usage not printed: %q", cmd, stderr)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	code, _, stderr := exec(t, "run", "--bogus-flag")
	if code != 2 {
		t.Errorf("exit = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr, "bogus-flag") {
		t.Errorf("flag error not reported: %q", stderr)
	}
}

func TestUnknownCommandExitsTwo(t *testing.T) {
	code, _, stderr := exec(t, "frobnicate")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown command") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestNoArgsExitsTwo(t *testing.T) {
	code, _, stderr := exec(t)
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "Commands:") {
		t.Errorf("usage not printed: %q", stderr)
	}
}

// TestUnknownScenarioExitsTwo: a mistyped scenario name is a usage error
// (exit 2, like unknown flags), and close registered names are suggested.
func TestUnknownScenarioExitsTwo(t *testing.T) {
	code, _, stderr := exec(t, "run", "mst-build-fixd/ring/sync")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown scenario") {
		t.Errorf("stderr = %q", stderr)
	}
	if !strings.Contains(stderr, "did you mean") || !strings.Contains(stderr, "mst-build-fixed/ring/sync") {
		t.Errorf("suggestions missing: %q", stderr)
	}
}

// TestObsHoldWithoutListenExitsTwo: --obs-hold is meaningless without
// --obs-listen; it used to be silently dropped, which let a CI scrape
// misconfiguration serve nothing. Now it is a usage error on both
// commands.
func TestObsHoldWithoutListenExitsTwo(t *testing.T) {
	for _, args := range [][]string{
		{"run", "mst-build-fixed/ring/sync", "--obs-hold"},
		{"bench", "--filter", "ring", "--quiet", "--obs-hold"},
	} {
		code, _, stderr := exec(t, args...)
		if code != 2 {
			t.Errorf("kkt %s: exit = %d, want 2 (usage error)", strings.Join(args, " "), code)
		}
		if !strings.Contains(stderr, "--obs-hold requires --obs-listen") {
			t.Errorf("kkt %s: misconfiguration not reported: %q", strings.Join(args, " "), stderr)
		}
	}
}

// TestShardFallbackWarns: asking for more shards than the engine can use
// (the partition clamps to the node count) must warn on stderr instead of
// silently running narrower than requested.
func TestShardFallbackWarns(t *testing.T) {
	code, _, stderr := exec(t, "run", "mst-build-fixed/ring/sync", "--trials", "1", "--shards", "4096")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "not the requested 4096") {
		t.Errorf("shard fallback not warned: %q", stderr)
	}
	// The honored case must stay quiet.
	code, _, stderr = exec(t, "run", "mst-build-fixed/ring/sync", "--trials", "1", "--shards", "2")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "warning") {
		t.Errorf("unexpected warning for an honored shard count: %q", stderr)
	}
}

// TestBenchUnknownFilterExitsTwo: a filter matching nothing is a usage
// error (exit 2), with suggestions when the filter resembles a name.
func TestBenchUnknownFilterExitsTwo(t *testing.T) {
	code, _, stderr := exec(t, "bench", "--filter", "zzz-no-match", "--quiet")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no scenario matches") {
		t.Errorf("stderr = %q", stderr)
	}
	code, _, stderr = exec(t, "bench", "--filter", "mst-buld", "--quiet")
	if code != 2 {
		t.Errorf("near-miss filter: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "did you mean") {
		t.Errorf("near-miss filter suggestions missing: %q", stderr)
	}
}
