package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScalingTableGolden pins the rendered sweep table and the
// SCALING_*.json report bytes for a tiny fixed ladder. Like the bench
// golden, the report file is the regression gate for "identical configs
// give byte-identical reports".
func TestScalingTableGolden(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "SCALING_test.json")
	code, out, stderr := exec(t, "scaling",
		"--families", "gnm", "--algos", "mst,flood",
		"--ladder", "64,128,256", "--seeds", "3", "--seed", "7",
		"--quiet", "--out", outPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	out = strings.ReplaceAll(out, outPath, "SCALING_test.json")
	golden(t, "scaling_tiny.txt", []byte(out))
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "scaling_tiny_report.json", blob)
}

func TestScalingJSONMatchesReportFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "SCALING_test.json")
	code, out, stderr := exec(t, "scaling",
		"--families", "gnm", "--algos", "flood",
		"--ladder", "64,128,256", "--seeds", "2", "--seed", "7",
		"--quiet", "--json", "--out", outPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(blob) {
		t.Error("scaling --json stdout differs from the written report")
	}
	if !strings.Contains(out, `"schema": "kkt/scaling/v1"`) {
		t.Errorf("report schema missing: %s", out[:120])
	}
}

// TestScalingUnknownVocabExitsTwo: mistyped families, algorithms and
// density knobs are usage errors (exit 2) with "did you mean"
// suggestions, matching the kkt run convention for scenario names.
func TestScalingUnknownVocabExitsTwo(t *testing.T) {
	cases := []struct {
		args    []string
		report  string
		suggest string
	}{
		{[]string{"scaling", "--families", "gnn"}, "unknown family", "gnm"},
		{[]string{"scaling", "--families", "hypercub"}, "unknown family", "hypercube"},
		{[]string{"scaling", "--algos", "mts,ghs"}, "unknown algorithm", "mst"},
		{[]string{"scaling", "--algos", "floood"}, "unknown algorithm", "flood"},
		{[]string{"scaling", "--density", "cubic"}, "unknown density", ""},
	}
	for _, tc := range cases {
		code, _, stderr := exec(t, tc.args...)
		if code != 2 {
			t.Errorf("%v: exit = %d, want 2", tc.args, code)
		}
		if !strings.Contains(stderr, tc.report) {
			t.Errorf("%v: %q not reported: %q", tc.args, tc.report, stderr)
		}
		if tc.suggest != "" && (!strings.Contains(stderr, "did you mean") || !strings.Contains(stderr, tc.suggest)) {
			t.Errorf("%v: suggestion %q missing: %q", tc.args, tc.suggest, stderr)
		}
	}
}

// TestScalingMalformedLadderExitsTwo: every malformed --ladder shape is a
// reported usage error, not a silent default or a runtime failure.
func TestScalingMalformedLadderExitsTwo(t *testing.T) {
	cases := []struct {
		ladder string
		want   string
	}{
		{"64:32:5", "lo 64 not below hi 32"},
		{"64:4096", "want lo:hi:rungs"},
		{"64:4096:1", "want an integer >= 2"},
		{"64:4096:x", "want an integer >= 2"},
		{"abc,128", "positive integer"},
		{"512", "want >= 2"},
		{"512,512", "want >= 2"},
		{"4,64", "too small"},
		{",", "no sizes"},
	}
	for _, tc := range cases {
		code, _, stderr := exec(t, "scaling", "--ladder", tc.ladder)
		if code != 2 {
			t.Errorf("--ladder %q: exit = %d, want 2", tc.ladder, code)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("--ladder %q: error %q missing from %q", tc.ladder, tc.want, stderr)
		}
	}
}

func TestScalingPositionalArgExitsTwo(t *testing.T) {
	code, _, stderr := exec(t, "scaling", "gnm")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no positional arguments") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestParseLadderShapes(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"256:4096:5", []int{256, 512, 1024, 2048, 4096}},
		{"1k:4k:3", []int{1024, 2048, 4096}},
		{"64,128, 256", []int{64, 128, 256}},
		{"2k", []int{2048}},
	}
	for _, tc := range cases {
		got, err := parseLadder(tc.in)
		if err != nil {
			t.Errorf("parseLadder(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseLadder(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseLadder(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}
