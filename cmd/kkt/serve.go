package main

// kkt serve / kkt trace / kkt ws: the live topology-maintenance daemon and
// its companions. serve ingests an update stream (seeded churn generator or
// a replayable trace file) through the admission queue against a live
// engine, optionally pushing incremental observability deltas over a
// WebSocket at /ws on the --obs-listen mux and checkpointing durable state
// every epoch. trace compiles a fault plan into the replayable trace
// format; ws is a minimal stream subscriber for scripts and smoke gates.
import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kkt/internal/faultplan"
	"kkt/internal/obsv"
	"kkt/internal/serve"
	"kkt/internal/spanning"
)

// graphFlags are the seeded-topology flags shared by serve and trace.
type graphFlags struct {
	family    string
	n         int
	m         int
	degree    int
	maxRaw    uint64
	graphSeed uint64
}

func addGraphFlags(fs *flag.FlagSet, gf *graphFlags) {
	fs.StringVar(&gf.family, "family", "gnm", "graph family: gnm | ring | grid | expander | complete | tree")
	fs.IntVar(&gf.n, "n", 1024, "node count")
	fs.IntVar(&gf.m, "m", 0, "gnm edge count (0 = 3n)")
	fs.IntVar(&gf.degree, "degree", 0, "expander degree (0 = 4)")
	fs.Uint64Var(&gf.maxRaw, "max-raw", 0, "max raw edge weight (0 = 1024)")
	fs.Uint64Var(&gf.graphSeed, "graph-seed", 1, "seed of the generated initial topology")
}

func (gf graphFlags) spec() serve.GraphSpec {
	return serve.GraphSpec{
		Family: gf.family, N: gf.n, M: gf.m, Degree: gf.degree,
		MaxRaw: gf.maxRaw, Seed: gf.graphSeed,
	}
}

// parseChurn parses the --churn plan string: a comma-separated k=v list
// whose keys mirror faultplan.Plan ("tree-deletes=3,deletes=2,inserts=2").
func parseChurn(s string) (faultplan.Plan, error) {
	var p faultplan.Plan
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("churn: %q is not key=value", kv)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return p, fmt.Errorf("churn: bad count in %q", kv)
		}
		switch strings.TrimSpace(k) {
		case "partitions":
			p.Partitions = n
		case "partition-size":
			p.PartitionSize = n
		case "bursts":
			p.Bursts = n
		case "burst-radius":
			p.BurstRadius = n
		case "bridge-deletes":
			p.BridgeDeletes = n
		case "tree-deletes":
			p.TreeEdgeDeletes = n
		case "hub-deletes":
			p.HubDeletes = n
		case "deletes":
			p.Deletes = n
		case "inserts":
			p.Inserts = n
		case "weight-changes":
			p.WeightChanges = n
		case "heals":
			p.Heals = n
		default:
			return p, fmt.Errorf("churn: unknown stage %q", k)
		}
	}
	return p, nil
}

const defaultChurn = "tree-deletes=3,deletes=2,inserts=2,weight-changes=1"

func shortDigest(d string) string {
	if len(d) > 19 {
		return d[:19] // "sha256:" + 12 hex chars
	}
	return d
}

func cmdServe(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("kkt serve", stderr)
	var gf graphFlags
	addGraphFlags(fs, &gf)
	algo := fs.String("algo", "mst", "maintained structure: mst (weighted) | st (unweighted)")
	seed := fs.Uint64("seed", 1, "daemon seed (drives churn compilation, op seeds, and per-epoch engine seeds)")
	events := fs.Int("events", 0, "total update events to process (0 = 256 with --churn, full file with --trace)")
	epochEvents := fs.Int("epoch-events", 64, "events ingested per epoch (checkpoint granularity)")
	wave := fs.Int("wave", 0, "max concurrent repairs per admission wave (0 = admit default)")
	shards := fs.Int("shards", 1, "engine shard lanes (execution knob; digests are shard-independent)")
	churn := fs.String("churn", defaultChurn, "per-epoch churn plan, recompiled against the live topology (ignored with --trace)")
	tracePath := fs.String("trace", "", "replay this trace file instead of generating churn")
	ckptPath := fs.String("checkpoint", "", "write durable state to this file every --checkpoint-every epochs")
	ckptEvery := fs.Int("checkpoint-every", 1, "checkpoint cadence in epochs")
	resume := fs.Bool("resume", false, "resume from the --checkpoint file instead of starting fresh")
	var of obsFlags
	addObsFlags(fs, &of)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := of.validate(stderr); err != nil {
		return err
	}
	if *resume && *ckptPath == "" {
		err := errors.New("--resume requires --checkpoint")
		fmt.Fprintln(stderr, "kkt:", err)
		return usageError{err}
	}

	cfg := serve.Config{
		Algo: *algo, Seed: *seed, Wave: *wave, Shards: *shards,
		EpochEvents: *epochEvents, Events: *events,
		CheckpointPath: *ckptPath, CheckpointEvery: *ckptEvery,
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		hdr, evs, err := serve.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Spec, cfg.Trace, cfg.TraceDigest = hdr.Spec, evs, hdr.Digest
		fmt.Fprintf(stderr, "serve: trace %s: %d events against %s n=%d (%s)\n",
			*tracePath, len(evs), hdr.Spec.Family, hdr.Spec.N, shortDigest(hdr.Digest))
	} else {
		plan, err := parseChurn(*churn)
		if err != nil {
			fmt.Fprintln(stderr, "kkt:", err)
			return usageError{err}
		}
		cfg.Spec = gf.spec()
		cfg.Churn = plan
		if cfg.Events == 0 {
			cfg.Events = 256
		}
	}

	// Observability: the recorder joins /timeline + /metrics, and the push
	// hub mounts at /ws on the same mux. With no --obs-listen the daemon
	// runs with observation fully disabled (nil observer, no publisher).
	var (
		stopObs func()
		pub     *serve.Publisher
	)
	if of.listen != "" {
		rec := obsv.NewRecorder("serve")
		hub := serve.NewHub()
		st, stop, err := of.start(stderr, func(mux *http.ServeMux) { mux.Handle("/ws", hub) })
		if err != nil {
			return err
		}
		st.addRecorder(rec)
		stopObs = stop
		pub = serve.NewPublisher(hub, rec)
		cfg.Observer = rec
	}
	cfg.OnWave = func(wi serve.WaveInfo) {
		if pub == nil {
			return
		}
		resolved := wi.Stats.Repairs + wi.Stats.Inline + wi.Stats.Skipped
		pub.Publish(serve.ServeStats{
			Epoch: wi.Epoch, EventsDone: resolved, EventsTotal: cfg.Events,
			QueueDepth: wi.Pending, IngestLag: cfg.Events - resolved,
			Repairs: wi.Stats.Repairs, Waves: wi.Stats.Waves, Retries: wi.Stats.Retries,
		})
	}
	cfg.OnEpoch = func(ei serve.EpochInfo) {
		mark := ""
		if ei.Checkpointed {
			mark = " ckpt"
		}
		fmt.Fprintf(stderr, "serve: epoch %d: events %d/%d digest %s%s\n",
			ei.Epoch, ei.EventsDone, ei.EventsTotal, shortDigest(ei.Digest), mark)
		if pub != nil {
			pub.Publish(serve.ServeStats{
				Epoch: ei.Epoch, EventsDone: ei.EventsDone, EventsTotal: ei.EventsTotal,
				IngestLag: ei.EventsTotal - ei.EventsDone, Digest: ei.Digest,
			})
		}
	}

	var (
		d   *serve.Daemon
		err error
	)
	if *resume {
		cp, cerr := serve.ReadCheckpoint(*ckptPath)
		if cerr != nil {
			return cerr
		}
		d, err = serve.Resume(cfg, cp)
		if err == nil {
			fmt.Fprintf(stderr, "serve: resumed at epoch %d (%d/%d events)\n", cp.Epoch, cp.EventsDone, cfg.Events)
		}
	} else {
		d, err = serve.New(cfg)
	}
	if err != nil {
		if stopObs != nil {
			stopObs()
		}
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	sum, err := d.Run(ctx)
	// A cancelled context surfaces directly at epoch boundaries and as a
	// watchdog trip mid-epoch; either way, signal arrival means a graceful
	// interruption, not a daemon failure.
	interrupted := err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil)
	if err != nil && !interrupted {
		if stopObs != nil {
			stopObs()
		}
		return err
	}
	if interrupted {
		fmt.Fprintf(stdout, "serve: interrupted epochs=%d events=%d repairs=%d digest=%s\n",
			sum.Epochs, sum.EventsDone, sum.Stats.Repairs, sum.Digest)
		if *ckptPath != "" {
			fmt.Fprintf(stderr, "serve: resume with --checkpoint %s --resume\n", *ckptPath)
		}
	} else {
		fmt.Fprintf(stdout, "serve: done epochs=%d events=%d repairs=%d digest=%s\n",
			sum.Epochs, sum.EventsDone, sum.Stats.Repairs, sum.Digest)
	}
	if stopObs != nil {
		if of.hold && !interrupted {
			holdObs(stderr)
		}
		stopObs()
	}
	return nil
}

func cmdTrace(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("kkt trace", stderr)
	var gf graphFlags
	addGraphFlags(fs, &gf)
	algo := fs.String("algo", "mst", "forest the plan's tree-targeting stages aim at: mst | st")
	seed := fs.Uint64("seed", 1, "compile seed (same spec + plan + seed = byte-identical trace)")
	churn := fs.String("churn", defaultChurn, "fault plan to compile")
	events := fs.Int("events", 0, "truncate the trace to this many events (0 = all)")
	out := fs.String("out", "", "output file (default stdout)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	spec := gf.spec().WithDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	plan, err := parseChurn(*churn)
	if err != nil {
		fmt.Fprintln(stderr, "kkt:", err)
		return usageError{err}
	}
	if plan.Empty() {
		err := errors.New("churn: empty plan compiles to zero events")
		fmt.Fprintln(stderr, "kkt:", err)
		return usageError{err}
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	g := spec.Build(0)
	var forest []int
	switch *algo {
	case "mst":
		forest = spanning.Kruskal(g)
	case "st":
		forest = spanning.BFSForest(g)
	default:
		return fmt.Errorf("unknown algo %q (want mst or st)", *algo)
	}
	evs := faultplan.Compile(plan, g, forest, *seed)
	if len(evs) == 0 {
		return errors.New("plan compiled to zero events against this graph")
	}
	if *events > 0 && *events < len(evs) {
		evs = evs[:*events]
	}
	hdr := serve.TraceHeader{Spec: spec, Digest: serve.GraphDigest(g)}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := serve.WriteTrace(w, hdr, evs); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "kkt: trace: %d events, initial graph %s\n", len(evs), shortDigest(hdr.Digest))
	return nil
}

func cmdWS(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("kkt ws", stderr)
	maxMsgs := fs.Int("max", 0, "disconnect after this many messages (0 = until the stream closes)")
	timeout := fs.Duration("timeout", 30*time.Second, "dial + per-message read deadline (0 = none)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		err := errors.New("ws takes the daemon's URL (ws://host:port/ws, or just host:port)")
		fmt.Fprintln(stderr, "kkt:", err)
		return usageError{err}
	}
	raw := fs.Arg(0)
	// accept flags after the URL too
	if err := parseFlags(fs, fs.Args()[1:]); err != nil {
		return err
	}
	if !strings.Contains(raw, "://") {
		raw = "ws://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return err
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/ws"
	}
	c, err := serve.DialWS(u.String(), *timeout)
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; *maxMsgs == 0 || i < *maxMsgs; i++ {
		if *timeout > 0 {
			c.SetReadDeadline(time.Now().Add(*timeout))
		}
		msg, err := c.ReadMessage()
		if err != nil {
			if errors.Is(err, serve.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		fmt.Fprintf(stdout, "%s\n", msg)
	}
	return nil
}
