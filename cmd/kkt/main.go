// Command kkt is the experiment CLI over the CONGEST simulator: list the
// registered scenarios, run one of them, or bench the whole suite into a
// BENCH_*.json report. Thin shell over internal/harness, in the style of
// tooling-first Go repos: all engine logic lives in internal packages.
//
// Usage:
//
//	kkt list [--json]
//	kkt run <scenario> [--trials N] [--seed S] [--workers W] [--shards S] [--json]
//	        [--timeout D] [--obs-listen ADDR] [--obs-hold] [--footprint]
//	kkt bench [--filter SUBSTR] [--exclude SUBSTRS] [--trials N] [--seed S]
//	          [--workers W] [--shards S] [--json] [--out FILE] [--quiet]
//	          [--timeout D] [--obs-listen ADDR] [--obs-hold]
//	kkt scaling [--families LIST] [--algos LIST] [--ladder LO:HI:RUNGS|N,N,...]
//	            [--seeds N] [--seed S] [--density const|sqrt|quad] [--workers W]
//	            [--shards S] [--timeout D] [--json] [--out FILE] [--quiet]
//	kkt serve [graph flags | --trace FILE] [--events N] [--epoch-events N]
//	          [--churn PLAN] [--checkpoint FILE] [--resume] [--obs-listen ADDR]
//	kkt trace [graph flags] --churn PLAN [--events N] [--out FILE]
//	kkt ws URL [--max N] [--timeout D]
//
// --obs-listen serves live observability while trials run: JSON snapshots at
// /timeline, Prometheus text at /metrics, and net/http/pprof at
// /debug/pprof/. Under `kkt serve` it additionally mounts a WebSocket push
// stream at /ws. Observation is passive — reports stay byte-identical with
// it on or off.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"kkt/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it dispatches a full CLI invocation
// against the given streams and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = cmdList(args[1:], stdout, stderr)
	case "run":
		err = cmdRun(args[1:], stdout, stderr)
	case "bench":
		err = cmdBench(args[1:], stdout, stderr)
	case "scaling":
		err = cmdScaling(args[1:], stdout, stderr)
	case "serve":
		err = cmdServe(args[1:], stdout, stderr)
	case "trace":
		err = cmdTrace(args[1:], stdout, stderr)
	case "ws":
		err = cmdWS(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stderr)
	default:
		fmt.Fprintf(stderr, "kkt: unknown command %q\n\n", args[0])
		usage(stderr)
		return 2
	}
	if errors.Is(err, flag.ErrHelp) {
		// -h/--help: the flag set already printed its usage; that is a
		// successful invocation, not an error.
		return 0
	}
	var ue usageError
	if errors.As(err, &ue) {
		// Bad flags are usage errors (exit 2, like unknown commands); the
		// flag set already reported them to stderr.
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "kkt:", err)
		return 1
	}
	return 0
}

// usageError marks a flag-parse failure so run can map it to exit code 2,
// matching the pre-dispatch usage errors.
type usageError struct{ error }

// parseFlags wraps fs.Parse, tagging parse failures (other than -h) as
// usage errors.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprint(w, `kkt — experiment harness for the KKT'15 CONGEST algorithms

Commands:
  list     show the registered scenarios
  run      run one scenario and print its metrics
  bench    run the suite and write a BENCH_*.json report
  scaling  sweep size ladders and fit cost-vs-m exponents (the o(m) gate)
  serve    run the topology-maintenance daemon over an update stream
  trace    compile a fault plan into a replayable trace file
  ws       subscribe to a serve daemon's WebSocket push stream

Run 'kkt <command> -h' for command flags.
`)
}

// runFlags are the flags shared by run and bench.
type runFlags struct {
	trials  int
	seed    uint64
	workers int
	shards  int
	timeout time.Duration
	jsonOut bool
}

func addRunFlags(fs *flag.FlagSet, rf *runFlags) {
	fs.IntVar(&rf.trials, "trials", 4, "seeded trials per scenario")
	fs.Uint64Var(&rf.seed, "seed", 1, "base seed (identical seeds give byte-identical metrics)")
	fs.IntVar(&rf.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&rf.shards, "shards", 1, "shards per trial: multi-core single trials, metrics byte-identical at any value")
	fs.DurationVar(&rf.timeout, "timeout", 0, "wall-clock budget per trial; an over-budget trial is cancelled and reported as failed (0 = none)")
	fs.BoolVar(&rf.jsonOut, "json", false, "emit JSON instead of a table")
}

func (rf runFlags) runConfig() harness.RunConfig {
	return harness.RunConfig{
		Trials: rf.trials, Seed: rf.seed,
		Workers: rf.workers, Shards: rf.shards,
		Timeout: rf.timeout,
	}
}

// newFlagSet builds a flag set that reports errors to stderr instead of
// exiting the process, so command functions stay testable.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func cmdList(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("kkt list", stderr)
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	specs := harness.Builtin().Specs()
	if *jsonOut {
		return writeJSON(stdout, specs)
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SCENARIO\tFAMILY\tN\tSCHED\tALGO\tFAULTS\tDESCRIPTION")
	for _, s := range specs {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			s.Name, s.Family, s.N, s.Sched, s.Algo, faultsLabel(s), s.Description)
	}
	return tw.Flush()
}

// faultsLabel renders the FAULTS column: an exact count for fixed fault
// workloads, a ~prefixed estimate for compiled fault plans (the exact event
// count depends on the seed and the graph).
func faultsLabel(s harness.Spec) string {
	if s.Plan != nil {
		return "~" + strconv.Itoa(s.Plan.Approx())
	}
	return strconv.Itoa(s.Faults.Total())
}

func cmdRun(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("kkt run", stderr)
	var rf runFlags
	var of obsFlags
	addRunFlags(fs, &rf)
	addObsFlags(fs, &of)
	footprint := fs.Bool("footprint", false, "print per-trial driver/heap footprint to stderr after the run")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("run takes a scenario name (see 'kkt list')")
	}
	name := fs.Arg(0)
	// accept flags after the scenario name too
	if err := parseFlags(fs, fs.Args()[1:]); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("run takes exactly one scenario name (see 'kkt list')")
	}
	if err := of.validate(stderr); err != nil {
		return err
	}
	reg := harness.Builtin()
	if _, ok := reg.Get(name); !ok {
		return unknownScenario(stderr, reg, name)
	}
	cfg := rf.runConfig()
	var stopObs func()
	if of.listen != "" {
		st, stop, err := of.start(stderr, nil)
		if err != nil {
			return err
		}
		stopObs = stop
		cfg.Observe = st.observe
	}
	results, err := harness.RunNamed(reg, []string{name}, cfg)
	if err != nil {
		if stopObs != nil {
			stopObs()
		}
		return err
	}
	if rf.jsonOut {
		if err := writeJSON(stdout, results[0]); err != nil {
			return err
		}
	} else if err := harness.WriteTable(stdout, results); err != nil {
		return err
	}
	if *footprint {
		printFootprint(stderr, results)
	}
	if stopObs != nil {
		if of.hold {
			holdObs(stderr)
		}
		stopObs()
	}
	warnShardFallback(stderr, rf.shards, results)
	return reportTrialErrors(stderr, results)
}

func cmdBench(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("kkt bench", stderr)
	var rf runFlags
	var of obsFlags
	addRunFlags(fs, &rf)
	addObsFlags(fs, &of)
	filter := fs.String("filter", "", "only scenarios whose name contains this substring")
	exclude := fs.String("exclude", "", "skip scenarios whose name contains any of these comma-separated substrings")
	out := fs.String("out", "BENCH_suite.json", "report file path")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := of.validate(stderr); err != nil {
		return err
	}
	reg := harness.Builtin()
	specs := reg.Match(*filter)
	if *exclude != "" {
		kept := specs[:0]
		for _, s := range specs {
			if !nameExcluded(s.Name, *exclude) {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	if len(specs) == 0 {
		fmt.Fprintf(stderr, "kkt: no scenario matches filter %q / exclude %q\n", *filter, *exclude)
		printSuggestions(stderr, reg.Suggest(*filter))
		return usageError{fmt.Errorf("no scenario matches")}
	}
	cfg := rf.runConfig().Normalized()
	var stopObs func()
	if of.listen != "" {
		st, stop, err := of.start(stderr, nil)
		if err != nil {
			return err
		}
		stopObs = stop
		cfg.Observe = st.observe
	}
	total := len(specs) * cfg.Trials
	var done atomic.Int64
	if !*quiet {
		cfg.OnTrialDone = func(spec harness.Spec, trial int) {
			fmt.Fprintf(stderr, "\r[%d/%d] %-32s", done.Add(1), total, spec.Name)
		}
	}
	results := harness.RunAll(specs, cfg)
	if !*quiet {
		fmt.Fprintln(stderr)
	}
	if stopObs != nil {
		if of.hold {
			holdObs(stderr)
		}
		stopObs()
	}

	suite := "builtin"
	if *filter != "" {
		suite = fmt.Sprintf("builtin[filter=%s]", *filter)
	}
	if *exclude != "" {
		suite += fmt.Sprintf("[exclude=%s]", *exclude)
	}
	report := harness.NewReport(suite, cfg, results)
	blob, err := report.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	if rf.jsonOut {
		if _, err := stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := harness.WriteTable(stdout, results); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nreport written to %s\n", *out)
	}
	warnShardFallback(stderr, rf.shards, results)
	return reportTrialErrors(stderr, results)
}

// unknownScenario reports a scenario name the registry does not know, with
// "did you mean" candidates, and maps it to exit code 2: a mistyped name is
// a usage error, not a runtime failure, so CI scripts can tell the two
// apart.
func unknownScenario(stderr io.Writer, reg *harness.Registry, name string) error {
	fmt.Fprintf(stderr, "kkt: unknown scenario %q (see 'kkt list')\n", name)
	printSuggestions(stderr, reg.Suggest(name))
	return usageError{fmt.Errorf("unknown scenario")}
}

func printSuggestions(stderr io.Writer, names []string) {
	if len(names) == 0 {
		return
	}
	fmt.Fprintln(stderr, "did you mean:")
	for _, n := range names {
		fmt.Fprintf(stderr, "  %s\n", n)
	}
}

// warnShardFallback surfaces on stderr every scenario whose trials ran on
// a different shard count than --shards requested (the engine clamps the
// partition to the node count). Reports stay byte-identical either way —
// the warning is about wall-clock expectations: a user asking for N-way
// parallelism should never silently get less.
func warnShardFallback(stderr io.Writer, requested int, results []harness.Result) {
	if requested <= 1 {
		return
	}
	for _, res := range results {
		for _, t := range res.Trials {
			if t.Error == "" && t.Shards != requested {
				fmt.Fprintf(stderr, "kkt: warning: %s ran on %d shard(s), not the requested %d (shard count is clamped to the node count)\n",
					res.Spec.Name, t.Shards, requested)
				break
			}
		}
	}
}

// nameExcluded reports whether name contains any of the comma-separated
// substrings in excludes (empty fragments are ignored).
func nameExcluded(name, excludes string) bool {
	for _, frag := range strings.Split(excludes, ",") {
		if frag != "" && strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// reportTrialErrors surfaces failed trials on stderr and returns an error
// if any trial errored (so CI catches regressions).
func reportTrialErrors(stderr io.Writer, results []harness.Result) error {
	failed := 0
	for _, res := range results {
		for _, t := range res.Trials {
			if t.Error != "" {
				failed++
				fmt.Fprintf(stderr, "kkt: %s trial %d (seed %d): %s\n", res.Spec.Name, t.Trial, t.Seed, t.Error)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d trial(s) failed", failed)
	}
	return nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
