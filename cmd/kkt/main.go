// Command kkt is the experiment CLI over the CONGEST simulator: list the
// registered scenarios, run one of them, or bench the whole suite into a
// BENCH_*.json report. Thin shell over internal/harness, in the style of
// tooling-first Go repos: all engine logic lives in internal packages.
//
// Usage:
//
//	kkt list [--json]
//	kkt run <scenario> [--trials N] [--seed S] [--workers W] [--json]
//	kkt bench [--filter SUBSTR] [--trials N] [--seed S] [--workers W]
//	          [--json] [--out FILE] [--quiet]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"text/tabwriter"

	"kkt/internal/harness"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kkt: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kkt:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `kkt — experiment harness for the KKT'15 CONGEST algorithms

Commands:
  list   show the registered scenarios
  run    run one scenario and print its metrics
  bench  run the suite and write a BENCH_*.json report

Run 'kkt <command> -h' for command flags.
`)
}

// runFlags are the flags shared by run and bench.
type runFlags struct {
	trials  int
	seed    uint64
	workers int
	jsonOut bool
}

func addRunFlags(fs *flag.FlagSet, rf *runFlags) {
	fs.IntVar(&rf.trials, "trials", 4, "seeded trials per scenario")
	fs.Uint64Var(&rf.seed, "seed", 1, "base seed (identical seeds give byte-identical metrics)")
	fs.IntVar(&rf.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.BoolVar(&rf.jsonOut, "json", false, "emit JSON instead of a table")
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("kkt list", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := harness.Builtin().Specs()
	if *jsonOut {
		return writeJSON(specs)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SCENARIO\tFAMILY\tN\tSCHED\tALGO\tFAULTS\tDESCRIPTION")
	for _, s := range specs {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%d\t%s\n",
			s.Name, s.Family, s.N, s.Sched, s.Algo, s.Faults.Total(), s.Description)
	}
	return tw.Flush()
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("kkt run", flag.ExitOnError)
	var rf runFlags
	addRunFlags(fs, &rf)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("run takes a scenario name (see 'kkt list')")
	}
	name := fs.Arg(0)
	// accept flags after the scenario name too
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("run takes exactly one scenario name (see 'kkt list')")
	}
	reg := harness.Builtin()
	cfg := harness.RunConfig{Trials: rf.trials, Seed: rf.seed, Workers: rf.workers}
	results, err := harness.RunNamed(reg, []string{name}, cfg)
	if err != nil {
		return err
	}
	if rf.jsonOut {
		if err := writeJSON(results[0]); err != nil {
			return err
		}
	} else if err := harness.WriteTable(os.Stdout, results); err != nil {
		return err
	}
	return reportTrialErrors(results)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("kkt bench", flag.ExitOnError)
	var rf runFlags
	addRunFlags(fs, &rf)
	filter := fs.String("filter", "", "only scenarios whose name contains this substring")
	out := fs.String("out", "BENCH_suite.json", "report file path")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := harness.Builtin()
	specs := reg.Match(*filter)
	if len(specs) == 0 {
		return fmt.Errorf("no scenario matches %q", *filter)
	}
	cfg := harness.RunConfig{Trials: rf.trials, Seed: rf.seed, Workers: rf.workers}.Normalized()
	total := len(specs) * cfg.Trials
	var done atomic.Int64
	if !*quiet {
		cfg.OnTrialDone = func(spec harness.Spec, trial int) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d] %-32s", done.Add(1), total, spec.Name)
		}
	}
	results := harness.RunAll(specs, cfg)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}

	suite := "builtin"
	if *filter != "" {
		suite = fmt.Sprintf("builtin[filter=%s]", *filter)
	}
	report := harness.NewReport(suite, cfg, results)
	blob, err := report.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	if rf.jsonOut {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := harness.WriteTable(os.Stdout, results); err != nil {
			return err
		}
		fmt.Printf("\nreport written to %s\n", *out)
	}
	return reportTrialErrors(results)
}

// reportTrialErrors surfaces failed trials on stderr and returns an error
// if any trial errored (so CI catches regressions).
func reportTrialErrors(results []harness.Result) error {
	failed := 0
	for _, res := range results {
		for _, t := range res.Trials {
			if t.Error != "" {
				failed++
				fmt.Fprintf(os.Stderr, "kkt: %s trial %d (seed %d): %s\n", res.Spec.Name, t.Trial, t.Seed, t.Error)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d trial(s) failed", failed)
	}
	return nil
}

func writeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
