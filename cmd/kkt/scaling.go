package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"kkt/internal/harness"
	"kkt/internal/scaling"
)

// scalingAlgoNames maps the CLI's short algorithm names to the harness
// constants, matching the vocabulary of `kkt list` scenario names.
var scalingAlgoNames = map[string]string{
	"mst":        harness.AlgoMSTBuildAdaptive,
	"st":         harness.AlgoSTBuild,
	"mst-repair": harness.AlgoMSTRepair,
	"st-repair":  harness.AlgoSTRepair,
	"ghs":        harness.AlgoGHS,
	"flood":      harness.AlgoFlood,
}

func scalingAlgoVocab() []string {
	out := make([]string, 0, len(scalingAlgoNames))
	for k := range scalingAlgoNames {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cmdScaling(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("kkt scaling", stderr)
	families := fs.String("families", "gnm", "comma-separated graph families: "+strings.Join(scaling.Families, ", "))
	algos := fs.String("algos", "mst,ghs,flood", "comma-separated algorithms: "+strings.Join(scalingAlgoVocab(), ", "))
	ladderFlag := fs.String("ladder", "256:4096:5", "size ladder: lo:hi:rungs (geometric steps) or a comma list of n values; k suffix = ×1024")
	seeds := fs.Int("seeds", 3, "seeded trials per rung (per-seed slopes feed the confidence intervals)")
	seed := fs.Uint64("seed", 1, "base seed (identical seeds give byte-identical reports)")
	density := fs.String("density", scaling.DensityQuad, "gnm density law: "+strings.Join(scaling.Densities, ", ")+" (quad grows m = n²/8 so o(m) is visible)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 1, "shards per trial: multi-core single trials, reports byte-identical at any value")
	timeout := fs.Duration("timeout", 0, "wall-clock budget per trial (0 = none)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	out := fs.String("out", "SCALING_sweep.json", "report file path")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "kkt: scaling takes no positional arguments (got %q)\n", fs.Arg(0))
		return usageError{fmt.Errorf("scaling takes no positional arguments")}
	}

	cfg := scaling.Config{
		Seeds:   *seeds,
		Seed:    *seed,
		Density: *density,
		Shards:  *shards,
		Workers: *workers,
		Timeout: *timeout,
	}
	var err error
	if cfg.Families, err = splitVocab(stderr, "family", *families, scaling.Families, nil); err != nil {
		return err
	}
	if cfg.Algos, err = splitVocab(stderr, "algorithm", *algos, scalingAlgoVocab(), scalingAlgoNames); err != nil {
		return err
	}
	if !containsString(scaling.Densities, *density) {
		fmt.Fprintf(stderr, "kkt: unknown density %q\n", *density)
		printSuggestions(stderr, harness.SuggestNames(scaling.Densities, *density))
		return usageError{fmt.Errorf("unknown density")}
	}
	if cfg.Ladder, err = parseLadder(*ladderFlag); err != nil {
		fmt.Fprintf(stderr, "kkt: %v\n", err)
		return usageError{err}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(stderr, "kkt: %v\n", err)
		return usageError{err}
	}

	total := cfg.TotalTrials()
	var done atomic.Int64
	if !*quiet {
		cfg.OnTrialDone = func(spec harness.Spec, trial int) {
			fmt.Fprintf(stderr, "\r[%d/%d] %-40s", done.Add(1), total, spec.Name)
		}
	}
	rep, err := scaling.Run(cfg)
	if !*quiet {
		fmt.Fprintln(stderr)
	}
	if err != nil {
		return err
	}

	blob, err := rep.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	if *jsonOut {
		if _, err := stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := rep.WriteTable(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nreport written to %s\n", *out)
	}
	return reportSweepErrors(stderr, rep)
}

// splitVocab parses a comma-separated flag against a closed vocabulary,
// preserving order and dropping duplicates. Unknown words are usage
// errors (exit 2) with "did you mean" candidates, like mistyped scenario
// names. A non-nil rename maps accepted words to their harness names.
func splitVocab(stderr io.Writer, what, flagVal string, vocab []string, rename map[string]string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, w := range strings.Split(flagVal, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !containsString(vocab, w) {
			fmt.Fprintf(stderr, "kkt: unknown %s %q\n", what, w)
			printSuggestions(stderr, harness.SuggestNames(vocab, w))
			return nil, usageError{fmt.Errorf("unknown %s", what)}
		}
		if rename != nil {
			w = rename[w]
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(stderr, "kkt: no %s given\n", what)
		return nil, usageError{fmt.Errorf("no %s given", what)}
	}
	return out, nil
}

// parseLadder parses the --ladder flag: either "lo:hi:rungs" (a geometric
// ladder from lo to hi in the given number of rungs) or an explicit comma
// list of sizes. Sizes take a k suffix meaning ×1024.
func parseLadder(s string) ([]int, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("malformed ladder %q: want lo:hi:rungs, e.g. 256:4096:5", s)
		}
		lo, err := parseSize(parts[0])
		if err != nil {
			return nil, fmt.Errorf("malformed ladder %q: %v", s, err)
		}
		hi, err := parseSize(parts[1])
		if err != nil {
			return nil, fmt.Errorf("malformed ladder %q: %v", s, err)
		}
		rungs, err := strconv.Atoi(parts[2])
		if err != nil || rungs < 2 {
			return nil, fmt.Errorf("malformed ladder %q: rung count %q, want an integer >= 2", s, parts[2])
		}
		if lo >= hi {
			return nil, fmt.Errorf("malformed ladder %q: lo %d not below hi %d", s, lo, hi)
		}
		ratio := float64(hi) / float64(lo)
		out := make([]int, rungs)
		for i := range out {
			frac := float64(i) / float64(rungs-1)
			out[i] = int(float64(lo)*math.Pow(ratio, frac) + 0.5)
		}
		out[rungs-1] = hi
		return out, nil
	}
	var out []int
	for _, w := range strings.Split(s, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		n, err := parseSize(w)
		if err != nil {
			return nil, fmt.Errorf("malformed ladder %q: %v", s, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("malformed ladder %q: no sizes", s)
	}
	return out, nil
}

// parseSize parses one ladder size, accepting a k suffix (×1024).
func parseSize(s string) (int, error) {
	mult := 1
	if strings.HasSuffix(s, "k") || strings.HasSuffix(s, "K") {
		mult = 1024
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("size %q, want a positive integer (k suffix = ×1024)", s)
	}
	return n * mult, nil
}

// reportSweepErrors surfaces errored trial points on stderr and returns
// an error if any point failed, so CI catches sweep regressions.
func reportSweepErrors(stderr io.Writer, rep *scaling.Report) error {
	failed := 0
	for _, c := range rep.Cells {
		for _, r := range c.Rungs {
			for _, p := range r.Points {
				if p.Error != "" {
					failed++
					fmt.Fprintf(stderr, "kkt: scaling/%s/%s n=%d (seed %d): %s\n", c.Family, c.Algo, r.N, p.Seed, p.Error)
				}
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d sweep trial(s) failed", failed)
	}
	return nil
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
