package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"kkt/internal/obsv"
	"kkt/internal/serve"
)

// serveArgs is the shared small-graph workload the CLI tests run; fast
// enough for -race, churny enough that digests actually move.
func serveArgs(extra ...string) []string {
	args := []string{
		"serve", "--family", "gnm", "--n", "48", "--m", "144", "--graph-seed", "11",
		"--seed", "77", "--wave", "4", "--epoch-events", "8", "--events", "64",
		"--churn", "tree-deletes=3,deletes=3,inserts=3,weight-changes=3",
	}
	return append(args, extra...)
}

// finalDigest extracts the digest from the `serve: done ...` line.
func finalDigest(t *testing.T, stdout string) string {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if strings.HasPrefix(line, "serve: done ") || strings.HasPrefix(line, "serve: interrupted ") {
			if i := strings.Index(line, "digest="); i >= 0 {
				return line[i+len("digest="):]
			}
		}
	}
	t.Fatalf("no serve summary line in output:\n%s", stdout)
	return ""
}

// TestServeResumeCLI is the tentpole gate at the CLI layer: a run cut
// short at half the events, resumed from its checkpoint, must print the
// same final digest as an uninterrupted run.
func TestServeResumeCLI(t *testing.T) {
	code, refOut, refErr := exec(t, serveArgs()...)
	if code != 0 {
		t.Fatalf("reference run exited %d:\n%s", code, refErr)
	}
	refDigest := finalDigest(t, refOut)

	ckpt := filepath.Join(t.TempDir(), "serve.ckpt")
	code, halfOut, halfErr := exec(t, serveArgs("--events", "32", "--checkpoint", ckpt)...)
	if code != 0 {
		t.Fatalf("half run exited %d:\n%s", code, halfErr)
	}
	if finalDigest(t, halfOut) == refDigest {
		t.Fatal("half-way digest equals the final digest; churn too weak to prove resume")
	}

	code, resOut, resErr := exec(t, serveArgs("--checkpoint", ckpt, "--resume")...)
	if code != 0 {
		t.Fatalf("resumed run exited %d:\n%s", code, resErr)
	}
	if got := finalDigest(t, resOut); got != refDigest {
		t.Errorf("resumed digest %s != reference %s", got, refDigest)
	}
	if !strings.Contains(resErr, "serve: resumed at epoch") {
		t.Errorf("resume did not announce itself:\n%s", resErr)
	}
}

// TestTraceExportReplayCLI: kkt trace writes a replayable file, and
// replaying it twice through kkt serve gives identical digests (and the
// same digest with churn parameters absent, proving the file is
// self-contained).
func TestTraceExportReplayCLI(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "churn.trace")
	code, _, errOut := exec(t, "trace", "--family", "gnm", "--n", "48", "--m", "144",
		"--graph-seed", "11", "--seed", "5",
		"--churn", "tree-deletes=4,deletes=4,inserts=4,weight-changes=4", "--out", trace)
	if code != 0 {
		t.Fatalf("trace exited %d:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "kkt: trace:") {
		t.Errorf("trace summary missing:\n%s", errOut)
	}

	replay := func() string {
		code, out, errOut := exec(t, "serve", "--trace", trace, "--seed", "9", "--wave", "4", "--epoch-events", "8")
		if code != 0 {
			t.Fatalf("replay exited %d:\n%s", code, errOut)
		}
		return finalDigest(t, out)
	}
	if d1, d2 := replay(), replay(); d1 != d2 {
		t.Errorf("trace replay digests differ: %s vs %s", d1, d2)
	}

	// A trace against a different initial graph must be refused.
	blob, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	tampered := filepath.Join(dir, "tampered.trace")
	if err := os.WriteFile(tampered, []byte(strings.Replace(string(blob), `"seed":11`, `"seed":12`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = exec(t, "serve", "--trace", tampered)
	if code == 0 {
		t.Error("serve accepted a trace whose graph spec was tampered with")
	}
	if !strings.Contains(errOut, "different initial graph") {
		t.Errorf("tampered trace error not surfaced:\n%s", errOut)
	}
}

// TestServeObsEndpoints boots the daemon with --obs-listen :0 and
// --obs-addr-file, subscribes over the WebSocket while it runs, and
// checks (a) the bound address is published for scripts, (b) the push
// stream delivers a full snapshot then deltas that reconstruct live
// repair progress, (c) /metrics carries the serve recorder plus the
// build-info/uptime families with exactly one HELP per family.
func TestServeObsEndpoints(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "obs.addr")

	type result struct {
		code   int
		out    string
		errOut string
	}
	// Effectively-unbounded stream: the daemon must still be mid-run
	// while the subscriber attaches and reads; the test interrupts it
	// with SIGINT once the assertions are in (deterministic, and it
	// exercises the daemon's signal path for free).
	done := make(chan result, 1)
	go func() {
		code, out, errOut := exec(t, serveArgs("--events", "1048576",
			"--obs-listen", "127.0.0.1:0", "--obs-addr-file", addrFile)...)
		done <- result{code, out, errOut}
	}()

	var addr string
	for i := 0; i < 200; i++ {
		if blob, err := os.ReadFile(addrFile); err == nil && len(blob) > 0 {
			addr = strings.TrimSpace(string(blob))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		r := <-done
		t.Fatalf("obs-addr-file never appeared; daemon exited %d:\n%s", r.code, r.errOut)
	}

	c, err := serve.DialWS("ws://"+addr+"/ws", 5*time.Second)
	if err != nil {
		select {
		case r := <-done:
			t.Fatalf("dial %s: %v; daemon already exited %d:\nstdout:\n%s\nstderr:\n%s", addr, err, r.code, r.out, r.errOut)
		case <-time.After(2 * time.Second):
			t.Fatalf("dial %s: %v (daemon still running)", addr, err)
		}
	}
	defer c.Close()

	// Scrape /metrics while the daemon is live (it may finish its 4096
	// events before the stream assertions below complete).
	metrics := httpGet(t, "http://"+addr+"/metrics")
	for _, want := range []string{
		"kkt_build_info{", "kkt_uptime_seconds", `kkt_trial_messages_total{trial="serve"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, family := range []string{"kkt_build_info", "kkt_uptime_seconds", "kkt_trial_messages_total"} {
		if n := strings.Count(metrics, "# HELP "+family+" "); n != 1 {
			t.Errorf("family %s has %d HELP lines, want exactly 1", family, n)
		}
	}

	var state obsv.Snapshot
	sawFull, sawDelta, sawRepair := false, false, false
	c.SetReadDeadline(time.Now().Add(20 * time.Second))
	for i := 0; i < 500 && !(sawFull && sawDelta && sawRepair); i++ {
		raw, err := c.ReadMessage()
		if err != nil {
			break // daemon finished and closed
		}
		var msg serve.PushMsg
		if err := json.Unmarshal(raw, &msg); err != nil {
			t.Fatalf("bad push message: %v", err)
		}
		switch {
		case msg.Full != nil:
			sawFull = true
			state = *msg.Full
		case msg.Delta != nil:
			if !sawFull {
				t.Fatal("delta before any full snapshot")
			}
			sawDelta = true
			state = obsv.Apply(state, *msg.Delta)
		}
		if state.Repairs.Finished > 0 {
			sawRepair = true
		}
	}
	if !sawFull || !sawDelta || !sawRepair {
		t.Errorf("stream incomplete: full=%v delta=%v repair=%v", sawFull, sawDelta, sawRepair)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.code != 0 {
		t.Fatalf("interrupted daemon exited %d:\n%s", r.code, r.errOut)
	}
	if !strings.Contains(r.out, "serve: interrupted ") {
		t.Errorf("daemon did not report a graceful interruption:\n%s", r.out)
	}
	finalDigest(t, r.out)
}

// TestWSCommandAgainstDaemon exercises the `kkt ws` subscriber end to end
// against a live daemon: it must print valid PushMsg JSON lines.
func TestWSCommandAgainstDaemon(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "obs.addr")
	done := make(chan int, 1)
	go func() {
		code, _, _ := exec(t, serveArgs("--events", "1048576",
			"--obs-listen", "127.0.0.1:0", "--obs-addr-file", addrFile)...)
		done <- code
	}()
	var addr string
	for i := 0; i < 200; i++ {
		if blob, err := os.ReadFile(addrFile); err == nil && len(blob) > 0 {
			addr = strings.TrimSpace(string(blob))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("obs-addr-file never appeared (daemon exit %d)", <-done)
	}

	code, out, errOut := exec(t, "ws", addr, "--max", "3", "--timeout", "20s")
	if code != 0 {
		t.Fatalf("ws exited %d:\n%s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("ws printed nothing")
	}
	for _, line := range lines {
		var msg serve.PushMsg
		if err := json.Unmarshal([]byte(line), &msg); err != nil {
			t.Errorf("ws line is not PushMsg JSON: %v\n%s", err, line)
		}
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if <-done != 0 {
		t.Error("interrupted daemon exited nonzero")
	}
}

// TestParseChurn covers the plan-string grammar.
func TestParseChurn(t *testing.T) {
	p, err := parseChurn(" tree-deletes=3, deletes=2 ,inserts=1,heals=4,")
	if err != nil {
		t.Fatal(err)
	}
	if p.TreeEdgeDeletes != 3 || p.Deletes != 2 || p.Inserts != 1 || p.Heals != 4 {
		t.Errorf("parsed plan wrong: %+v", p)
	}
	for _, bad := range []string{"deletes", "deletes=-1", "deletes=x", "bogus=1"} {
		if _, err := parseChurn(bad); err == nil {
			t.Errorf("parseChurn(%q) accepted", bad)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	var body string
	var lastErr error
	for i := 0; i < 50; i++ {
		b, err := tryGet(url)
		if err == nil {
			return b
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("GET %s: %v", url, lastErr)
	return body
}

func tryGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(blob), nil
}
