package main

// The --obs-listen endpoint: live observability for kkt run / kkt bench.
// One obsv.Recorder is registered per (scenario, trial) as trials start;
// the HTTP server snapshots them on demand, so serving never blocks or
// perturbs the engine (recorders are passive — see internal/obsv). This is
// the substrate the future `kkt serve` UI will attach to.
//
// Endpoints:
//
//	/timeline     JSON snapshots of every trial's live timeline
//	/metrics      Prometheus text format
//	/debug/pprof  net/http/pprof
import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"

	"kkt/internal/congest"
	"kkt/internal/harness"
	"kkt/internal/obsv"
)

// obsFlags are the observability flags shared by run and bench.
type obsFlags struct {
	listen string
	hold   bool
}

func addObsFlags(fs *flag.FlagSet, of *obsFlags) {
	fs.StringVar(&of.listen, "obs-listen", "", "serve live observability on this address (JSON /timeline, Prometheus /metrics, pprof /debug/pprof/)")
	fs.BoolVar(&of.hold, "obs-hold", false, "with --obs-listen: keep serving after the run completes, until interrupted")
}

// validate rejects flag combinations that would silently do nothing:
// --obs-hold without --obs-listen serves no endpoints to hold open, so a
// misconfigured CI scrape must fail loudly instead of scraping nothing.
func (of *obsFlags) validate(stderr io.Writer) error {
	if of.hold && of.listen == "" {
		err := errors.New("--obs-hold requires --obs-listen: there is no endpoint to keep serving")
		fmt.Fprintln(stderr, "kkt:", err)
		return usageError{err}
	}
	return nil
}

// obsState is the live registry behind the endpoints.
type obsState struct {
	mu   sync.Mutex
	recs []*obsv.Recorder
}

// observe is the harness.RunConfig.Observe hook: one labelled recorder per
// trial.
func (st *obsState) observe(spec harness.Spec, trial int) congest.Observer {
	rec := obsv.NewRecorder(fmt.Sprintf("%s#%d", spec.Name, trial))
	st.mu.Lock()
	st.recs = append(st.recs, rec)
	st.mu.Unlock()
	return rec
}

// snapshots returns a consistent snapshot per registered trial, sorted by
// label so output is stable regardless of worker scheduling.
func (st *obsState) snapshots() []obsv.Snapshot {
	st.mu.Lock()
	recs := append([]*obsv.Recorder(nil), st.recs...)
	st.mu.Unlock()
	snaps := make([]obsv.Snapshot, len(recs))
	for i, r := range recs {
		snaps[i] = r.Snapshot()
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Label < snaps[j].Label })
	return snaps
}

// obsTimeline is the /timeline response shape.
type obsTimeline struct {
	Trials []obsv.Snapshot `json:"trials"`
}

func (st *obsState) handleTimeline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(obsTimeline{Trials: st.snapshots()})
}

// handleMetrics renders the snapshots in Prometheus text format. Written by
// hand: the repo takes no dependencies beyond the standard library.
func (st *obsState) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snaps := st.snapshots()
	writeHelp := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	writeHelp("kkt_trial_messages_total", "Messages sent by the trial so far.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_messages_total{trial=%q} %d\n", s.Label, s.Messages)
	}
	writeHelp("kkt_trial_bits_total", "Bits sent by the trial so far.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_bits_total{trial=%q} %d\n", s.Label, s.Bits)
	}
	writeHelp("kkt_trial_rounds", "Scheduler clock of the trial (rounds or virtual time).", "gauge")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_rounds{trial=%q} %d\n", s.Label, s.Now)
	}
	writeHelp("kkt_trial_phases", "Protocol phases started by the trial.", "gauge")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_phases{trial=%q} %d\n", s.Label, len(s.Phases))
	}
	writeHelp("kkt_trial_sessions_opened_total", "Engine sessions opened.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_sessions_opened_total{trial=%q} %d\n", s.Label, s.Sessions.Opened)
	}
	writeHelp("kkt_trial_sessions_completed_total", "Engine sessions completed.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_sessions_completed_total{trial=%q} %d\n", s.Label, s.Sessions.Completed)
	}
	writeHelp("kkt_trial_repairs_finished_total", "Repair operations finished.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_repairs_finished_total{trial=%q} %d\n", s.Label, s.Repairs.Finished)
	}
	writeHelp("kkt_trial_repair_rounds", "Repair round-latency percentiles over the recent-repair ring.", "gauge")
	for _, s := range snaps {
		if s.Repairs.Finished == 0 {
			continue
		}
		fmt.Fprintf(w, "kkt_trial_repair_rounds{trial=%q,quantile=\"0.5\"} %d\n", s.Label, s.Repairs.RoundsP50)
		fmt.Fprintf(w, "kkt_trial_repair_rounds{trial=%q,quantile=\"0.9\"} %d\n", s.Label, s.Repairs.RoundsP90)
		fmt.Fprintf(w, "kkt_trial_repair_rounds{trial=%q,quantile=\"0.99\"} %d\n", s.Label, s.Repairs.RoundsP99)
	}
	writeHelp("kkt_kind_messages_total", "Messages sent, by message kind.", "counter")
	for _, s := range snaps {
		for _, kt := range s.ByKind {
			fmt.Fprintf(w, "kkt_kind_messages_total{trial=%q,kind=%q} %d\n", s.Label, kt.Kind, kt.Messages)
		}
	}
}

// startObsServer binds addr and serves the endpoints until stop is called.
// Binding happens synchronously so a bad address fails the command instead
// of racing the run.
func startObsServer(addr string, stderr io.Writer) (*obsState, func(), error) {
	st := &obsState{}
	mux := http.NewServeMux()
	mux.HandleFunc("/timeline", st.handleTimeline)
	mux.HandleFunc("/metrics", st.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs-listen: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stderr, "kkt: observability on http://%s (/timeline, /metrics, /debug/pprof/)\n", ln.Addr())
	return st, func() { _ = srv.Close() }, nil
}

// holdObs blocks until SIGINT/SIGTERM — the --obs-hold behavior that lets
// scrapers inspect a finished run (CI curls the endpoints of a
// milliseconds-long scenario this way).
func holdObs(stderr io.Writer) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	fmt.Fprintln(stderr, "kkt: --obs-hold: serving until interrupted")
	<-sig
}

// printFootprint surfaces the per-trial driver/heap footprint fields that
// are deliberately excluded from reports (execution knobs, not protocol
// observables) — the kkt run --footprint output.
func printFootprint(stderr io.Writer, results []harness.Result) {
	for _, res := range results {
		for _, t := range res.Trials {
			fmt.Fprintf(stderr, "footprint: %s trial %d: peak_driver_goroutines=%d peak_driver_tasks=%d peak_live_drivers=%d heap_sys_mb=%d async_conflicts=%d\n",
				res.Spec.Name, t.Trial, t.PeakDriverGoroutines, t.PeakDriverTasks, t.PeakLiveDrivers, t.HeapSysMB, t.AsyncConflicts)
		}
	}
}
