package main

// The --obs-listen endpoint: live observability for kkt run / kkt bench.
// One obsv.Recorder is registered per (scenario, trial) as trials start;
// the HTTP server snapshots them on demand, so serving never blocks or
// perturbs the engine (recorders are passive — see internal/obsv). This is
// the substrate the future `kkt serve` UI will attach to.
//
// Endpoints:
//
//	/timeline     JSON snapshots of every trial's live timeline
//	/metrics      Prometheus text format
//	/debug/pprof  net/http/pprof
import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"syscall"
	"time"

	"kkt/internal/congest"
	"kkt/internal/harness"
	"kkt/internal/obsv"
)

// obsFlags are the observability flags shared by run, bench and serve.
type obsFlags struct {
	listen   string
	hold     bool
	addrFile string
}

func addObsFlags(fs *flag.FlagSet, of *obsFlags) {
	fs.StringVar(&of.listen, "obs-listen", "", "serve live observability on this address (JSON /timeline, Prometheus /metrics, pprof /debug/pprof/)")
	fs.BoolVar(&of.hold, "obs-hold", false, "with --obs-listen: keep serving after the run completes, until interrupted")
	fs.StringVar(&of.addrFile, "obs-addr-file", "", "with --obs-listen: write the actually-bound address to this file (lets scripts use ':0' ephemeral ports)")
}

// validate rejects flag combinations that would silently do nothing:
// --obs-hold without --obs-listen serves no endpoints to hold open, so a
// misconfigured CI scrape must fail loudly instead of scraping nothing.
func (of *obsFlags) validate(stderr io.Writer) error {
	if of.hold && of.listen == "" {
		err := errors.New("--obs-hold requires --obs-listen: there is no endpoint to keep serving")
		fmt.Fprintln(stderr, "kkt:", err)
		return usageError{err}
	}
	if of.addrFile != "" && of.listen == "" {
		err := errors.New("--obs-addr-file requires --obs-listen: there is no bound address to write")
		fmt.Fprintln(stderr, "kkt:", err)
		return usageError{err}
	}
	return nil
}

// start binds the observability server and, if requested, publishes the
// actually-bound address to --obs-addr-file — the contract that lets
// smoke gates use ':0' instead of hard-coding ports. extra (optional)
// mounts additional handlers on the mux before serving starts.
func (of *obsFlags) start(stderr io.Writer, extra func(*http.ServeMux)) (*obsState, func(), error) {
	st, bound, stop, err := startObsServer(of.listen, stderr, extra)
	if err != nil {
		return nil, nil, err
	}
	if of.addrFile != "" {
		if werr := os.WriteFile(of.addrFile, []byte(bound+"\n"), 0o644); werr != nil {
			stop()
			return nil, nil, fmt.Errorf("obs-addr-file: %w", werr)
		}
	}
	return st, stop, nil
}

// obsState is the live registry behind the endpoints.
type obsState struct {
	mu   sync.Mutex
	recs []*obsv.Recorder
}

// observe is the harness.RunConfig.Observe hook: one labelled recorder per
// trial.
func (st *obsState) observe(spec harness.Spec, trial int) congest.Observer {
	rec := obsv.NewRecorder(fmt.Sprintf("%s#%d", spec.Name, trial))
	st.mu.Lock()
	st.recs = append(st.recs, rec)
	st.mu.Unlock()
	return rec
}

// snapshots returns a consistent snapshot per registered trial, sorted by
// label so output is stable regardless of worker scheduling.
func (st *obsState) snapshots() []obsv.Snapshot {
	st.mu.Lock()
	recs := append([]*obsv.Recorder(nil), st.recs...)
	st.mu.Unlock()
	snaps := make([]obsv.Snapshot, len(recs))
	for i, r := range recs {
		snaps[i] = r.Snapshot()
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Label < snaps[j].Label })
	return snaps
}

// obsTimeline is the /timeline response shape.
type obsTimeline struct {
	Trials []obsv.Snapshot `json:"trials"`
}

func (st *obsState) handleTimeline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(obsTimeline{Trials: st.snapshots()})
}

// procStart anchors kkt_uptime_seconds.
var procStart = time.Now()

// buildVersion reports the module version baked into the binary, or
// "devel" when built from a working tree.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// promWriter emits Prometheus text format with the exposition-format
// guarantee that each metric family's HELP/TYPE header appears exactly
// once, no matter how many call sites contribute samples to it.
type promWriter struct {
	w    io.Writer
	seen map[string]bool
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{w: w, seen: make(map[string]bool)}
}

func (p *promWriter) family(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// handleMetrics renders the snapshots in Prometheus text format. Written by
// hand: the repo takes no dependencies beyond the standard library.
func (st *obsState) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snaps := st.snapshots()
	pw := newPromWriter(w)
	writeHelp := pw.family
	writeHelp("kkt_build_info", "Build metadata; the value is always 1.", "gauge")
	fmt.Fprintf(w, "kkt_build_info{version=%q,goversion=%q} 1\n", buildVersion(), runtime.Version())
	writeHelp("kkt_uptime_seconds", "Seconds since the kkt process started.", "gauge")
	fmt.Fprintf(w, "kkt_uptime_seconds %.3f\n", time.Since(procStart).Seconds())
	writeHelp("kkt_trial_messages_total", "Messages sent by the trial so far.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_messages_total{trial=%q} %d\n", s.Label, s.Messages)
	}
	writeHelp("kkt_trial_bits_total", "Bits sent by the trial so far.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_bits_total{trial=%q} %d\n", s.Label, s.Bits)
	}
	writeHelp("kkt_trial_rounds", "Scheduler clock of the trial (rounds or virtual time).", "gauge")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_rounds{trial=%q} %d\n", s.Label, s.Now)
	}
	writeHelp("kkt_trial_phases", "Protocol phases started by the trial.", "gauge")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_phases{trial=%q} %d\n", s.Label, len(s.Phases))
	}
	writeHelp("kkt_trial_sessions_opened_total", "Engine sessions opened.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_sessions_opened_total{trial=%q} %d\n", s.Label, s.Sessions.Opened)
	}
	writeHelp("kkt_trial_sessions_completed_total", "Engine sessions completed.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_sessions_completed_total{trial=%q} %d\n", s.Label, s.Sessions.Completed)
	}
	writeHelp("kkt_trial_repairs_finished_total", "Repair operations finished.", "counter")
	for _, s := range snaps {
		fmt.Fprintf(w, "kkt_trial_repairs_finished_total{trial=%q} %d\n", s.Label, s.Repairs.Finished)
	}
	writeHelp("kkt_trial_repair_rounds", "Repair round-latency percentiles over the recent-repair ring.", "gauge")
	for _, s := range snaps {
		if s.Repairs.Finished == 0 {
			continue
		}
		fmt.Fprintf(w, "kkt_trial_repair_rounds{trial=%q,quantile=\"0.5\"} %d\n", s.Label, s.Repairs.RoundsP50)
		fmt.Fprintf(w, "kkt_trial_repair_rounds{trial=%q,quantile=\"0.9\"} %d\n", s.Label, s.Repairs.RoundsP90)
		fmt.Fprintf(w, "kkt_trial_repair_rounds{trial=%q,quantile=\"0.99\"} %d\n", s.Label, s.Repairs.RoundsP99)
	}
	writeHelp("kkt_kind_messages_total", "Messages sent, by message kind.", "counter")
	for _, s := range snaps {
		for _, kt := range s.ByKind {
			fmt.Fprintf(w, "kkt_kind_messages_total{trial=%q,kind=%q} %d\n", s.Label, kt.Kind, kt.Messages)
		}
	}
}

// startObsServer binds addr and serves the endpoints until stop is called.
// Binding happens synchronously so a bad address fails the command instead
// of racing the run, and the actually-bound address (resolving ':0') is
// returned for --obs-addr-file and printed on stderr.
func startObsServer(addr string, stderr io.Writer, extra func(*http.ServeMux)) (*obsState, string, func(), error) {
	st := &obsState{}
	mux := http.NewServeMux()
	mux.HandleFunc("/timeline", st.handleTimeline)
	mux.HandleFunc("/metrics", st.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if extra != nil {
		extra(mux)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", nil, fmt.Errorf("obs-listen: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	bound := ln.Addr().String()
	fmt.Fprintf(stderr, "kkt: observability on http://%s (/timeline, /metrics, /debug/pprof/)\n", bound)
	return st, bound, func() { _ = srv.Close() }, nil
}

// addRecorder registers an externally-owned recorder (the serve daemon's)
// so /timeline and /metrics cover it alongside harness trials.
func (st *obsState) addRecorder(rec *obsv.Recorder) {
	st.mu.Lock()
	st.recs = append(st.recs, rec)
	st.mu.Unlock()
}

// holdObs blocks until SIGINT/SIGTERM — the --obs-hold behavior that lets
// scrapers inspect a finished run (CI curls the endpoints of a
// milliseconds-long scenario this way).
func holdObs(stderr io.Writer) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	fmt.Fprintln(stderr, "kkt: --obs-hold: serving until interrupted")
	<-sig
}

// printFootprint surfaces the per-trial driver/heap footprint fields that
// are deliberately excluded from reports (execution knobs, not protocol
// observables) — the kkt run --footprint output.
func printFootprint(stderr io.Writer, results []harness.Result) {
	for _, res := range results {
		for _, t := range res.Trials {
			fmt.Fprintf(stderr, "footprint: %s trial %d: peak_driver_goroutines=%d peak_driver_tasks=%d peak_live_drivers=%d heap_sys_mb=%d async_conflicts=%d\n",
				res.Spec.Name, t.Trial, t.PeakDriverGoroutines, t.PeakDriverTasks, t.PeakLiveDrivers, t.HeapSysMB, t.AsyncConflicts)
		}
	}
}
