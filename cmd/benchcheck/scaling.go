package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file is the `scaling` subcommand: it folds a sequence of per-commit
// SCALING_*.json sweep reports (the artifact `kkt scaling` emits) into a
// slope-trajectory table, markdown or CSV — the scaling counterpart of the
// bench `history` pipeline. The markdown tracks the fitted cost-vs-m
// exponents across commits; a KKT exponent drifting up toward the
// baselines' is the regression this artifact exists to surface.

// scalingReport is the subset of the sweep report (schema kkt/scaling/v1)
// the trajectory needs. Decoded structurally instead of importing
// internal/scaling: the tool must keep reading old artifacts even as the
// sweep types evolve.
type scalingReport struct {
	Schema  string `json:"schema"`
	Seed    uint64 `json:"seed"`
	Seeds   int    `json:"seeds"`
	Density string `json:"density"`
	Ladder  []int  `json:"ladder"`
	Cells   []struct {
		Family string `json:"family"`
		Algo   string `json:"algo"`
		Rungs  []struct {
			N      int `json:"n"`
			Points []struct {
				Seed     uint64 `json:"seed"`
				M        int    `json:"m"`
				Messages uint64 `json:"messages"`
				Bits     uint64 `json:"bits"`
				Time     int64  `json:"time"`
				Valid    bool   `json:"valid"`
				Error    string `json:"error"`
			} `json:"points"`
		} `json:"rungs"`
		Fits struct {
			Messages scalingFit `json:"messages"`
			Bits     scalingFit `json:"bits"`
		} `json:"fits"`
	} `json:"cells"`
	Separations []struct {
		Family    string  `json:"family"`
		KKT       string  `json:"kkt"`
		Baseline  string  `json:"baseline"`
		Gap       float64 `json:"gap"`
		WelchT    float64 `json:"welch_t"`
		DF        float64 `json:"df"`
		Separated bool    `json:"separated"`
	} `json:"separations"`
}

type scalingFit struct {
	Slope float64 `json:"slope"`
	R2    float64 `json:"r2"`
	CILo  float64 `json:"ci_lo"`
	CIHi  float64 `json:"ci_hi"`
	Error string  `json:"error"`
}

// scalingColumn is one sweep report in the trajectory, labelled by its
// file name.
type scalingColumn struct {
	label  string
	report scalingReport
}

func cmdScaling(args []string) int {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	format := fs.String("format", "md", "output format: md or csv")
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck scaling [-format md|csv] [-o out] SCALING_report.json...")
		return 2
	}
	cols, err := loadScaling(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 1
	}
	var buf strings.Builder
	switch *format {
	case "md":
		writeScalingMarkdown(&buf, cols)
	case "csv":
		writeScalingCSV(&buf, cols)
	default:
		fmt.Fprintf(os.Stderr, "benchcheck: unknown format %q (want md or csv)\n", *format)
		return 2
	}
	if *out == "" {
		os.Stdout.WriteString(buf.String())
		return 0
	}
	if err := os.WriteFile(*out, []byte(buf.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 1
	}
	return 0
}

func loadScaling(paths []string) ([]scalingColumn, error) {
	cols := make([]scalingColumn, 0, len(paths))
	for _, path := range paths {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep scalingReport
		if err := json.Unmarshal(blob, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if !strings.HasPrefix(rep.Schema, "kkt/scaling/") {
			return nil, fmt.Errorf("%s: schema %q is not a kkt scaling report", path, rep.Schema)
		}
		label := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		cols = append(cols, scalingColumn{label: label, report: rep})
	}
	return cols, nil
}

// scalingCells returns family/algo cell keys in first-seen order across
// the columns.
func scalingCells(cols []scalingColumn) []string {
	var keys []string
	seen := make(map[string]bool)
	for _, c := range cols {
		for _, cell := range c.report.Cells {
			k := cell.Family + "/" + cell.Algo
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// writeScalingMarkdown renders the slope trajectory — one row per cell,
// one column per report, cells carrying the fitted messages exponent with
// its 95% CI — then the newest report's separation verdicts and per-rung
// mean costs.
func writeScalingMarkdown(w io.Writer, cols []scalingColumn) {
	fmt.Fprint(w, "# Scaling trajectory — fitted messages-vs-m exponents\n\n")
	fmt.Fprint(w, "| family/algo |")
	for _, c := range cols {
		fmt.Fprintf(w, " %s |", c.label)
	}
	fmt.Fprint(w, "\n|---|")
	for range cols {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, key := range scalingCells(cols) {
		fmt.Fprintf(w, "| %s |", key)
		for _, c := range cols {
			cell := ""
			for _, cc := range c.report.Cells {
				if cc.Family+"/"+cc.Algo != key {
					continue
				}
				f := cc.Fits.Messages
				if f.Error != "" {
					cell = "fit error"
				} else {
					cell = fmt.Sprintf("%.3f [%.3f, %.3f]", f.Slope, f.CILo, f.CIHi)
				}
				break
			}
			fmt.Fprintf(w, " %s |", cell)
		}
		fmt.Fprintln(w)
	}

	latest := cols[len(cols)-1]
	if len(latest.report.Separations) > 0 {
		fmt.Fprintf(w, "\n## Separation verdicts — %s\n\n", latest.label)
		fmt.Fprintln(w, "| family | kkt | baseline | slope gap | welch t | df | separated |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
		for _, s := range latest.report.Separations {
			verdict := "no"
			if s.Separated {
				verdict = "**yes**"
			}
			fmt.Fprintf(w, "| %s | %s | %s | %.3f | %.2f | %.1f | %s |\n",
				s.Family, s.KKT, s.Baseline, s.Gap, s.WelchT, s.DF, verdict)
		}
	}

	fmt.Fprintf(w, "\n## Rung costs — %s (mean messages per rung)\n", latest.label)
	for _, cc := range latest.report.Cells {
		fmt.Fprintf(w, "\n### %s/%s\n\n", cc.Family, cc.Algo)
		fmt.Fprintln(w, "| n | m | messages | bits |")
		fmt.Fprintln(w, "|---|---|---|---|")
		for _, r := range cc.Rungs {
			var m, msgs, bits float64
			count := 0
			for _, p := range r.Points {
				if p.Error != "" {
					continue
				}
				m += float64(p.M)
				msgs += float64(p.Messages)
				bits += float64(p.Bits)
				count++
			}
			if count == 0 {
				fmt.Fprintf(w, "| %d | — | all trials failed | |\n", r.N)
				continue
			}
			n := float64(count)
			fmt.Fprintf(w, "| %d | %.0f | %.0f | %.0f |\n", r.N, m/n, msgs/n, bits/n)
		}
	}
}

// writeScalingCSV renders the long-form table: one row per (report, cell,
// rung, seed) point, ready for plotting tools.
func writeScalingCSV(w io.Writer, cols []scalingColumn) {
	fmt.Fprintln(w, "artifact,density,family,algo,n,seed,m,messages,bits,time,valid,msg_slope,msg_ci_lo,msg_ci_hi")
	for _, c := range cols {
		for _, cc := range c.report.Cells {
			f := cc.Fits.Messages
			for _, r := range cc.Rungs {
				for _, p := range r.Points {
					fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%t,%g,%g,%g\n",
						c.label, c.report.Density, cc.Family, cc.Algo, r.N,
						p.Seed, p.M, p.Messages, p.Bits, p.Time, p.Valid,
						f.Slope, f.CILo, f.CIHi)
				}
			}
		}
	}
}
