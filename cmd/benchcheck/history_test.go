package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleReport mirrors the kkt/bench/v1 shape NewReport marshals; only the
// fields history reads are populated.
const sampleReport = `{
  "schema": "kkt/bench/v1",
  "suite": "builtin",
  "seed": 1,
  "trials": 2,
  "results": [
    {
      "spec": {"name": "mst-build/gnm/sync"},
      "summary": {
        "messages": {"mean": 1000.5, "p50": 990, "p99": 1100, "min": 900, "max": 1100},
        "bits": {"mean": 64000, "p50": 63000, "p99": 70000, "min": 60000, "max": 70000},
        "time": {"mean": 120, "p50": 118, "p99": 130, "min": 110, "max": 130},
        "valid": 2, "failed": 0,
        "phase_costs": [
          {"phase": 1, "fragments": 128, "merges": 80, "messages": 700, "bits": 44000, "rounds": 60},
          {"phase": 2, "fragments": 48, "merges": 47, "messages": 300, "bits": 20000, "rounds": 58}
        ]
      }
    },
    {
      "spec": {"name": "flood/gnm/sync"},
      "summary": {
        "messages": {"mean": 400, "p50": 400, "p99": 400, "min": 400, "max": 400},
        "bits": {"mean": 3200, "p50": 3200, "p99": 3200, "min": 3200, "max": 3200},
        "time": {"mean": 9, "p50": 9, "p99": 9, "min": 9, "max": 9},
        "valid": 1, "failed": 1
      }
    }
  ]
}`

func writeReport(t *testing.T, dir, name, blob string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHistoryMarkdown(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "BENCH_abc123.json", sampleReport)
	// Second column: same suite, one scenario improved.
	b := writeReport(t, dir, "BENCH_def456.json",
		strings.Replace(sampleReport, `"p50": 990`, `"p50": 880`, 1))
	cols, err := loadHistory([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := writeHistoryMarkdown(&buf, cols, "messages"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"| scenario | BENCH_abc123 | BENCH_def456 |",
		"| mst-build/gnm/sync | 990 | 880 |",
		"| flood/gnm/sync | 400 (1 failed) | 400 (1 failed) |",
		// Phase timelines come from the newest column only; flood has no
		// phases and must not get a section.
		"## Phase timelines — BENCH_def456",
		"### mst-build/gnm/sync",
		"| 1 | 700 | 44000 | 60 |",
		"| 2 | 300 | 20000 | 58 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	if err := writeHistoryMarkdown(&buf, cols, "latency"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestHistoryCSV(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "BENCH_abc123.json", sampleReport)
	cols, err := loadHistory([]string{a})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	writeHistoryCSV(&buf, cols)
	out := buf.String()
	for _, want := range []string{
		"artifact,seed,trials,scenario,messages_p50,messages_mean,bits_p50,time_p50,valid,failed,phases",
		"BENCH_abc123,1,2,mst-build/gnm/sync,990,1000.5,63000,118,2,0,2",
		"BENCH_abc123,1,2,flood/gnm/sync,400,400.0,3200,9,1,1,0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestHistoryRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	p := writeReport(t, dir, "junk.json", `{"schema": "other/v9"}`)
	if _, err := loadHistory([]string{p}); err == nil {
		t.Error("foreign schema accepted")
	}
}
