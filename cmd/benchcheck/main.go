// Command benchcheck turns `go test -bench` output into a JSON perf
// artifact, gates regressions against a committed baseline, and folds
// per-commit suite reports into a perf-trajectory table.
//
//	benchcheck parse [-o out.json]            # stdin: go test -bench output
//	benchcheck compare -baseline a.json -fresh b.json [-ns-tol 0.20] [-allocs-tol 0.02]
//	benchcheck history [-format md|csv] [-metric messages|bits|time] [-o out] BENCH_ci.json...
//	benchcheck scaling [-format md|csv] [-o out] SCALING_ci.json...
//
// compare exits non-zero when a pinned micro-benchmark regresses: an
// allocs/op increase beyond its (small) relative tolerance — which keeps
// zero-alloc baselines strict, since any allocation on a 0 baseline is an
// infinite relative increase — or an ns/op increase beyond the ns
// tolerance. ns/op is only compared when both artifacts were measured on
// the same CPU (the `cpu:` line go test prints): cross-machine wall-clock
// deltas are noise, while allocation counts are near-deterministic (the
// small tolerance absorbs sync.Pool/GC timing jitter on macro benchmarks)
// and always enforced.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's pinned numbers.
type Bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Artifact is the JSON perf artifact: the measuring CPU and the pinned
// benchmark results.
type Artifact struct {
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		os.Exit(cmdParse(os.Args[2:]))
	case "compare":
		os.Exit(cmdCompare(os.Args[2:]))
	case "history":
		os.Exit(cmdHistory(os.Args[2:]))
	case "scaling":
		os.Exit(cmdScaling(os.Args[2:]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchcheck parse [-o out.json] < bench-output")
	fmt.Fprintln(os.Stderr, "       benchcheck compare -baseline a.json -fresh b.json [-ns-tol 0.20] [-allocs-tol 0.02]")
	fmt.Fprintln(os.Stderr, "       benchcheck history [-format md|csv] [-metric messages|bits|time] [-o out] report.json...")
	fmt.Fprintln(os.Stderr, "       benchcheck scaling [-format md|csv] [-o out] SCALING_report.json...")
	os.Exit(2)
}

func cmdParse(args []string) int {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	art, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 1
	}
	blob, _ := json.MarshalIndent(art, "", "  ")
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return 0
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 1
	}
	return 0
}

// parseBench extracts benchmark result lines (and the cpu line) from go
// test -bench output. Lines it does not recognise are ignored, so make
// recipes can pipe their full transcript in.
func parseBench(r io.Reader) (Artifact, error) {
	art := Artifact{Benchmarks: make(map[string]Bench)}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			art.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-P  N  x ns/op  [y B/op  z allocs/op]
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		b := Bench{}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				seen = true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if seen {
			art.Benchmarks[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return art, err
	}
	if len(art.Benchmarks) == 0 {
		return art, fmt.Errorf("no benchmark lines found on stdin")
	}
	return art, nil
}

func cmdCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "committed baseline artifact")
	freshPath := fs.String("fresh", "", "freshly measured artifact")
	nsTol := fs.Float64("ns-tol", 0.20, "allowed fractional ns/op regression (same-CPU only)")
	allocsTol := fs.Float64("allocs-tol", 0.02, "allowed fractional allocs/op regression (0-alloc baselines stay strict)")
	_ = fs.Parse(args)
	if *basePath == "" || *freshPath == "" {
		usage()
	}
	base, err := readArtifact(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 1
	}
	fresh, err := readArtifact(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 1
	}

	sameCPU := base.CPU != "" && base.CPU == fresh.CPU
	if !sameCPU {
		fmt.Fprintf(os.Stderr, "benchcheck: cpu differs (baseline %q vs fresh %q): ns/op not compared, allocs/op still enforced\n", base.CPU, fresh.CPU)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base.Benchmarks[name]
		f, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %s: missing from fresh run\n", name)
			failed = true
			continue
		}
		bad := false
		if f.AllocsPerOp > b.AllocsPerOp*(1+*allocsTol) {
			fmt.Fprintf(os.Stderr, "FAIL %s: allocs/op %.0f -> %.0f (tolerance %.0f%%; 0-alloc baselines strict)\n",
				name, b.AllocsPerOp, f.AllocsPerOp, 100**allocsTol)
			bad = true
		}
		if sameCPU && b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+*nsTol) {
			fmt.Fprintf(os.Stderr, "FAIL %s: ns/op %.1f -> %.1f (+%.1f%%, tolerance %.0f%%)\n",
				name, b.NsPerOp, f.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1), 100**nsTol)
			bad = true
		}
		if bad {
			failed = true
		} else {
			fmt.Printf("ok   %s: ns/op %.1f -> %.1f, allocs/op %.0f -> %.0f\n",
				name, b.NsPerOp, f.NsPerOp, b.AllocsPerOp, f.AllocsPerOp)
		}
	}
	// A fresh-only benchmark is not gated at all — surface it loudly so a
	// newly pinned benchmark is not silently ungated until someone
	// remembers to refresh the baseline.
	for name := range fresh.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(os.Stderr, "WARN %s: not in baseline — run `make bench-baseline` to start gating it\n", name)
		}
	}
	if failed {
		return 1
	}
	fmt.Println("benchcheck: no regressions")
	return 0
}

func readArtifact(path string) (Artifact, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var art Artifact
	if err := json.Unmarshal(blob, &art); err != nil {
		return Artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	return art, nil
}
