package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file is the `history` subcommand: it folds a sequence of per-commit
// BENCH_ci.json suite reports (the artifact `make bench-ci` emits) into a
// perf-trajectory table, markdown or CSV. CI runs it over the current
// commit's report and uploads the result; pointing it at several downloaded
// artifacts in commit order renders the trajectory across commits.

// historyReport is the subset of the harness bench report (schema
// kkt/bench/v1) the trajectory needs. Decoded structurally instead of
// importing internal/harness: the tool must keep reading old artifacts
// even as the harness types evolve.
type historyReport struct {
	Schema  string `json:"schema"`
	Suite   string `json:"suite"`
	Seed    uint64 `json:"seed"`
	Trials  int    `json:"trials"`
	Results []struct {
		Spec struct {
			Name string `json:"name"`
		} `json:"spec"`
		Summary struct {
			Messages   historyAgg     `json:"messages"`
			Bits       historyAgg     `json:"bits"`
			Time       historyAgg     `json:"time"`
			Valid      int            `json:"valid"`
			Failed     int            `json:"failed"`
			PhaseCosts []historyPhase `json:"phase_costs"`
		} `json:"summary"`
	} `json:"results"`
}

type historyAgg struct {
	Mean float64 `json:"mean"`
	P50  uint64  `json:"p50"`
}

// historyPhase is one entry of a scenario's per-phase cost timeline
// (summed across trials by the harness).
type historyPhase struct {
	Phase    int    `json:"phase"`
	Messages uint64 `json:"messages"`
	Bits     uint64 `json:"bits"`
	Rounds   int64  `json:"rounds"`
}

// historyColumn is one report in the trajectory, labelled by its file name.
type historyColumn struct {
	label  string
	report historyReport
}

func cmdHistory(args []string) int {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	format := fs.String("format", "md", "output format: md or csv")
	metric := fs.String("metric", "messages", "markdown cell metric: messages, bits or time (p50)")
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck history [-format md|csv] [-metric messages|bits|time] [-o out] report.json...")
		return 2
	}
	cols, err := loadHistory(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 1
	}
	var buf strings.Builder
	switch *format {
	case "md":
		if err := writeHistoryMarkdown(&buf, cols, *metric); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			return 1
		}
	case "csv":
		writeHistoryCSV(&buf, cols)
	default:
		fmt.Fprintf(os.Stderr, "benchcheck: unknown format %q (want md or csv)\n", *format)
		return 2
	}
	if *out == "" {
		os.Stdout.WriteString(buf.String())
		return 0
	}
	if err := os.WriteFile(*out, []byte(buf.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 1
	}
	return 0
}

func loadHistory(paths []string) ([]historyColumn, error) {
	cols := make([]historyColumn, 0, len(paths))
	for _, path := range paths {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep historyReport
		if err := json.Unmarshal(blob, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if !strings.HasPrefix(rep.Schema, "kkt/bench/") {
			return nil, fmt.Errorf("%s: schema %q is not a kkt bench report", path, rep.Schema)
		}
		label := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		cols = append(cols, historyColumn{label: label, report: rep})
	}
	return cols, nil
}

// historyScenarios returns scenario names in first-seen order across the
// columns, so a scenario added mid-history appears after the stable ones.
func historyScenarios(cols []historyColumn) []string {
	var names []string
	seen := make(map[string]bool)
	for _, c := range cols {
		for _, r := range c.report.Results {
			if !seen[r.Spec.Name] {
				seen[r.Spec.Name] = true
				names = append(names, r.Spec.Name)
			}
		}
	}
	return names
}

// writeHistoryMarkdown renders the wide trajectory table: one row per
// scenario, one column per report, cells carrying the chosen metric's p50
// (failed trials flag the cell).
func writeHistoryMarkdown(w io.Writer, cols []historyColumn, metric string) error {
	pick := func(s historyAgg) uint64 { return s.P50 }
	switch metric {
	case "messages", "bits", "time":
	default:
		return fmt.Errorf("unknown metric %q (want messages, bits or time)", metric)
	}
	fmt.Fprintf(w, "# Perf trajectory — %s (p50)\n\n", metric)
	fmt.Fprint(w, "| scenario |")
	for _, c := range cols {
		fmt.Fprintf(w, " %s |", c.label)
	}
	fmt.Fprint(w, "\n|---|")
	for range cols {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, name := range historyScenarios(cols) {
		fmt.Fprintf(w, "| %s |", name)
		for _, c := range cols {
			cell := ""
			for _, r := range c.report.Results {
				if r.Spec.Name != name {
					continue
				}
				var agg historyAgg
				switch metric {
				case "messages":
					agg = r.Summary.Messages
				case "bits":
					agg = r.Summary.Bits
				case "time":
					agg = r.Summary.Time
				}
				cell = fmt.Sprintf("%d", pick(agg))
				if r.Summary.Failed > 0 {
					cell += fmt.Sprintf(" (%d failed)", r.Summary.Failed)
				}
				break
			}
			fmt.Fprintf(w, " %s |", cell)
		}
		fmt.Fprintln(w)
	}
	writePhaseTimelines(w, cols)
	return nil
}

// writePhaseTimelines appends the per-phase cost timelines of the newest
// report (the last column) for every scenario that carries one, so the
// markdown artifact shows where each build's budget went phase by phase.
func writePhaseTimelines(w io.Writer, cols []historyColumn) {
	if len(cols) == 0 {
		return
	}
	latest := cols[len(cols)-1]
	wrote := false
	for _, r := range latest.report.Results {
		if len(r.Summary.PhaseCosts) == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "\n## Phase timelines — %s\n", latest.label)
			wrote = true
		}
		fmt.Fprintf(w, "\n### %s\n\n", r.Spec.Name)
		fmt.Fprintln(w, "| phase | messages | bits | rounds |")
		fmt.Fprintln(w, "|---|---|---|---|")
		for _, pc := range r.Summary.PhaseCosts {
			fmt.Fprintf(w, "| %d | %d | %d | %d |\n", pc.Phase, pc.Messages, pc.Bits, pc.Rounds)
		}
	}
}

// writeHistoryCSV renders the long-form table: one row per (report,
// scenario) with every metric, ready for spreadsheet or plotting tools.
func writeHistoryCSV(w io.Writer, cols []historyColumn) {
	fmt.Fprintln(w, "artifact,seed,trials,scenario,messages_p50,messages_mean,bits_p50,time_p50,valid,failed,phases")
	for _, c := range cols {
		for _, r := range c.report.Results {
			fmt.Fprintf(w, "%s,%d,%d,%s,%d,%.1f,%d,%d,%d,%d,%d\n",
				c.label, c.report.Seed, c.report.Trials, r.Spec.Name,
				r.Summary.Messages.P50, r.Summary.Messages.Mean,
				r.Summary.Bits.P50, r.Summary.Time.P50,
				r.Summary.Valid, r.Summary.Failed, len(r.Summary.PhaseCosts))
		}
	}
}
