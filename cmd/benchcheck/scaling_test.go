package main

import (
	"strings"
	"testing"
)

// sampleScaling mirrors the kkt/scaling/v1 shape internal/scaling
// marshals; only the fields the trajectory reads are populated.
const sampleScaling = `{
  "schema": "kkt/scaling/v1",
  "seed": 1,
  "seeds": 2,
  "density": "quad",
  "ladder": [64, 128],
  "cells": [
    {
      "family": "gnm",
      "algo": "mst-build",
      "rungs": [
        {"n": 64, "points": [
          {"seed": 11, "m": 512, "messages": 4800, "bits": 930000, "time": 500, "valid": true},
          {"seed": 12, "m": 512, "messages": 6100, "bits": 1200000, "time": 740, "valid": true}
        ]},
        {"n": 128, "points": [
          {"seed": 13, "m": 2048, "messages": 12000, "bits": 2500000, "time": 900, "valid": true},
          {"seed": 14, "m": 2048, "messages": 13000, "bits": 2700000, "time": 950, "valid": true}
        ]}
      ],
      "fits": {
        "messages": {"slope": 0.631, "intercept": 2.1, "r2": 0.98, "per_seed": [0.62, 0.64], "seed_mean": 0.63, "ci_lo": 0.58, "ci_hi": 0.68},
        "bits": {"slope": 0.69, "intercept": 5.0, "r2": 0.97, "per_seed": [0.68, 0.70], "seed_mean": 0.69, "ci_lo": 0.64, "ci_hi": 0.74}
      }
    },
    {
      "family": "gnm",
      "algo": "ghs",
      "rungs": [
        {"n": 64, "points": [
          {"seed": 21, "m": 512, "messages": 9000, "bits": 400000, "time": 300, "valid": true},
          {"seed": 22, "m": 512, "messages": 9100, "bits": 410000, "time": 310, "valid": true}
        ]},
        {"n": 128, "points": [
          {"seed": 23, "m": 2048, "messages": 34000, "bits": 1500000, "time": 400, "valid": true},
          {"seed": 24, "m": 2048, "messages": 34500, "bits": 1510000, "time": 410, "valid": true}
        ]}
      ],
      "fits": {
        "messages": {"slope": 0.952, "intercept": 1.2, "r2": 0.999, "per_seed": [0.95, 0.96], "seed_mean": 0.955, "ci_lo": 0.93, "ci_hi": 0.98},
        "bits": {"slope": 0.96, "intercept": 2.2, "r2": 0.999, "per_seed": [0.95, 0.97], "seed_mean": 0.96, "ci_lo": 0.93, "ci_hi": 0.99}
      }
    }
  ],
  "separations": [
    {"family": "gnm", "metric": "messages", "kkt": "mst-build", "baseline": "ghs",
     "gap": 0.325, "welch_t": 12.4, "df": 1.9, "separated": true}
  ]
}`

func TestScalingMarkdown(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "SCALING_abc123.json", sampleScaling)
	// Second column: the KKT exponent drifted up — the table must show it.
	b := writeReport(t, dir, "SCALING_def456.json",
		strings.Replace(sampleScaling, `"slope": 0.631`, `"slope": 0.701`, 1))
	cols, err := loadScaling([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	writeScalingMarkdown(&buf, cols)
	out := buf.String()
	for _, want := range []string{
		"| family/algo | SCALING_abc123 | SCALING_def456 |",
		"| gnm/mst-build | 0.631 [0.580, 0.680] | 0.701 [0.580, 0.680] |",
		"| gnm/ghs | 0.952 [0.930, 0.980] | 0.952 [0.930, 0.980] |",
		// Separations and rung tables come from the newest column only.
		"## Separation verdicts — SCALING_def456",
		"| gnm | mst-build | ghs | 0.325 | 12.40 | 1.9 | **yes** |",
		"## Rung costs — SCALING_def456",
		"### gnm/mst-build",
		"| 64 | 512 | 5450 | 1065000 |",
		"| 128 | 2048 | 12500 | 2600000 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestScalingCSV(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "SCALING_abc123.json", sampleScaling)
	cols, err := loadScaling([]string{a})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	writeScalingCSV(&buf, cols)
	out := buf.String()
	for _, want := range []string{
		"artifact,density,family,algo,n,seed,m,messages,bits,time,valid,msg_slope,msg_ci_lo,msg_ci_hi",
		"SCALING_abc123,quad,gnm,mst-build,64,11,512,4800,930000,500,true,0.631,0.58,0.68",
		"SCALING_abc123,quad,gnm,ghs,128,24,2048,34500,1510000,410,true,0.952,0.93,0.98",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestScalingRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	p := writeReport(t, dir, "junk.json", `{"schema": "kkt/bench/v1"}`)
	if _, err := loadScaling([]string{p}); err == nil {
		t.Error("bench schema accepted as a scaling report")
	}
	// And the real artifact round-trips.
	q := writeReport(t, dir, "SCALING_ok.json", sampleScaling)
	cols, err := loadScaling([]string{q})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || len(cols[0].report.Cells) != 2 {
		t.Errorf("decoded %d columns / %d cells, want 1 / 2", len(cols), len(cols[0].report.Cells))
	}
}
