package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: kkt/internal/congest
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSend-4     	  200000	        29.19 ns/op	       0 B/op	       0 allocs/op
BenchmarkSendAsync-4	  200000	        62.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	kkt/internal/congest	0.064s
BenchmarkBuildMST 	      10	   4555666 ns/op	  444456 B/op	    4169 allocs/op
`

func TestParseBench(t *testing.T) {
	art, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if art.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", art.CPU)
	}
	send, ok := art.Benchmarks["BenchmarkSend"]
	if !ok {
		t.Fatalf("BenchmarkSend missing (GOMAXPROCS suffix not stripped?): %v", art.Benchmarks)
	}
	if send.NsPerOp != 29.19 || send.AllocsPerOp != 0 {
		t.Errorf("BenchmarkSend = %+v", send)
	}
	mst, ok := art.Benchmarks["BenchmarkBuildMST"]
	if !ok || mst.AllocsPerOp != 4169 || mst.BytesPerOp != 444456 {
		t.Errorf("BenchmarkBuildMST = %+v ok=%v", mst, ok)
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("expected an error for input without benchmark lines")
	}
}

// writeArtifact dumps an artifact for compare tests.
func writeArtifact(t *testing.T, dir, name string, art Artifact) string {
	t.Helper()
	blob, _ := json.Marshal(art)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGates(t *testing.T) {
	dir := t.TempDir()
	base := Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{
		"BenchmarkSend": {NsPerOp: 100, AllocsPerOp: 0},
	}}
	macroBase := Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{
		"BenchmarkBuild": {NsPerOp: 1000, AllocsPerOp: 2000},
	}}
	for _, tc := range []struct {
		name  string
		base  *Artifact
		fresh Artifact
		want  int
	}{
		{"macro-allocs-jitter-within-tolerance", &macroBase, Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{
			"BenchmarkBuild": {NsPerOp: 1000, AllocsPerOp: 2030}}}, 0},
		{"macro-allocs-real-regression", &macroBase, Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{
			"BenchmarkBuild": {NsPerOp: 1000, AllocsPerOp: 2500}}}, 1},
		{"identical", nil, Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{
			"BenchmarkSend": {NsPerOp: 100, AllocsPerOp: 0}}}, 0},
		{"ns-within-tolerance", nil, Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{
			"BenchmarkSend": {NsPerOp: 115, AllocsPerOp: 0}}}, 0},
		{"ns-regression", nil, Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{
			"BenchmarkSend": {NsPerOp: 150, AllocsPerOp: 0}}}, 1},
		{"ns-regression-other-cpu-skipped", nil, Artifact{CPU: "cpuY", Benchmarks: map[string]Bench{
			"BenchmarkSend": {NsPerOp: 150, AllocsPerOp: 0}}}, 0},
		{"allocs-regression", nil, Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{
			"BenchmarkSend": {NsPerOp: 100, AllocsPerOp: 1}}}, 1},
		{"allocs-regression-other-cpu-still-fails", nil, Artifact{CPU: "cpuY", Benchmarks: map[string]Bench{
			"BenchmarkSend": {NsPerOp: 100, AllocsPerOp: 1}}}, 1},
		{"missing-bench", nil, Artifact{CPU: "cpuX", Benchmarks: map[string]Bench{}}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := base
			if tc.base != nil {
				b = *tc.base
			}
			basePath := writeArtifact(t, dir, "base_"+tc.name+".json", b)
			freshPath := writeArtifact(t, dir, "fresh_"+tc.name+".json", tc.fresh)
			got := cmdCompare([]string{"-baseline", basePath, "-fresh", freshPath, "-ns-tol", "0.20"})
			if got != tc.want {
				t.Errorf("exit = %d, want %d", got, tc.want)
			}
		})
	}
}
