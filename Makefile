GO ?= go

.PHONY: build test race vet bench bench-micro bench-ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) run ./cmd/kkt bench --trials 8 --seed 1 --out BENCH_suite.json

# Micro-benchmarks with allocation reporting: the hot-path contracts
# (zero allocs on Send/dispatch) regress loudly here.
bench-micro:
	$(GO) test -run '^$$' -bench 'BenchmarkSend$$|BenchmarkSendAsync$$' -benchtime 200000x -benchmem ./internal/congest
	$(GO) test -run '^$$' -bench BenchmarkNewNetwork -benchtime 200x -benchmem ./internal/congest
	$(GO) test -run '^$$' -bench BenchmarkBuildMST -benchtime 10x -benchmem ./internal/mst
	$(GO) test -run '^$$' -bench BenchmarkRepairStorm -benchtime 10x -benchmem ./internal/harness

# Short-mode CI bench job: micro-benchmarks plus a 1-trial sweep of the
# full suite — including the 100k-node and 50k-node scale scenarios —
# emitting BENCH_ci.json as the per-commit perf artifact.
bench-ci: bench-micro
	$(GO) run ./cmd/kkt bench --trials 1 --seed 1 --quiet --out BENCH_ci.json

clean:
	rm -f BENCH_*.json
