GO ?= go

.PHONY: build test race vet bench bench-micro bench-ci bench-1m bench-history bench-baseline bench-check scaling scaling-ci obs-demo storm-demo serve-demo clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) run ./cmd/kkt bench --trials 8 --seed 1 --out BENCH_suite.json

# Micro-benchmarks with allocation reporting: the hot-path contracts
# (zero allocs on Send/dispatch) regress loudly here.
bench-micro:
	$(GO) test -run '^$$' -bench 'BenchmarkSend$$|BenchmarkSendAsync$$' -benchtime 200000x -benchmem ./internal/congest
	$(GO) test -run '^$$' -bench BenchmarkNewNetwork -benchtime 200x -benchmem ./internal/congest
	$(GO) test -run '^$$' -bench BenchmarkBuildMST -benchtime 10x -benchmem ./internal/mst
	$(GO) test -run '^$$' -bench BenchmarkRepairStorm -benchtime 10x -benchmem ./internal/harness

# Short-mode CI bench job: micro-benchmarks plus a 1-trial sweep of the
# full suite — including the 100k-node and 50k-node scale scenarios, but
# not the 1M-node headline (run `make bench-1m` for that) — emitting
# BENCH_ci.json as the per-commit perf artifact.
bench-ci: bench-micro
	$(GO) run ./cmd/kkt bench --trials 1 --seed 1 --quiet --exclude gnm-1m --out BENCH_ci.json

# The 1M-node sharded headline scenario: one seeded trial, one shard per
# core. Takes minutes; emits BENCH_1m.json.
bench-1m:
	$(GO) run ./cmd/kkt bench --filter gnm-1m --trials 1 --seed 1 --shards $$(nproc) --out BENCH_1m.json

# Fold per-commit BENCH_ci.json artifacts into the perf-trajectory table
# (markdown; see `benchcheck history -h` for CSV). Pass more reports as
# HISTORY_REPORTS to chart across commits.
HISTORY_REPORTS ?= BENCH_ci.json
bench-history:
	$(GO) run ./cmd/benchcheck history -format md -o BENCH_history.md $(HISTORY_REPORTS)

# Empirical o(m) verification sweep: ladder the KKT build against the GHS
# and flood baselines on a density-growing gnm ladder (m = n²/8), fit the
# messages-vs-m exponents, and run the one-sided Welch separation test.
# Emits SCALING_sweep.json; render it with
# `go run ./cmd/benchcheck scaling SCALING_sweep.json`. See the README's
# "Measuring the o(m) claim" section.
scaling:
	$(GO) run ./cmd/kkt scaling --families gnm --algos mst,ghs,flood --seeds 3 --out SCALING_sweep.json

# The reduced-ladder smoke sweep CI runs (≤30s): pipeline coverage, not
# statistical power.
scaling-ci:
	$(GO) run ./cmd/kkt scaling --families gnm --algos mst,flood --ladder 128:512:3 --seeds 2 --quiet --out SCALING_ci.json

# Refresh the committed perf baseline from the pinned micro-benchmarks.
# Run on the reference machine after an intentional perf change, commit
# the result.
bench-baseline:
	$(MAKE) bench-micro | $(GO) run ./cmd/benchcheck parse -o BENCH_baseline.json

# Perf regression gate: re-measure the pinned micro-benchmarks and compare
# against the committed baseline. Fails on any allocs/op increase, or on a
# >20% ns/op increase when measured on the same CPU as the baseline
# (cross-machine wall-clock is noise; allocation counts are deterministic).
bench-check:
	$(MAKE) bench-micro | $(GO) run ./cmd/benchcheck parse -o BENCH_micro_ci.json
	$(GO) run ./cmd/benchcheck compare -baseline BENCH_baseline.json -fresh BENCH_micro_ci.json

# Live-observability demo: a 100k-node sharded MST build serving JSON
# snapshots, Prometheus /metrics and pprof on :8080 while it runs, plus the
# driver/heap footprint on stderr afterwards. Scrape with e.g.
# `curl localhost:8080/metrics`.
obs-demo:
	$(GO) run ./cmd/kkt run mst-build/gnm-100k/sync --trials 1 --shards $$(nproc) --obs-listen :8080 --obs-hold --footprint

# Adversarial-robustness demo: a ~10k-repair fault-plan storm (partitions,
# correlated bursts, targeted deletions, heals) against a maintained MSF on
# 100k nodes, repairs running in overlapping waves. While it runs, :8080
# serves live repair-latency percentiles (rounds_p50/p90/p99 under
# "repairs" at /timeline, kkt_trial_repair_rounds at /metrics).
storm-demo:
	$(GO) run ./cmd/kkt run mst-repair/gnm-100k/storm --trials 1 --shards $$(nproc) --obs-listen :8080 --obs-hold --footprint

# Serving-mode demo: a live topology-maintenance daemon over a 100k-node
# graph under sustained churn, one shard per core. While it runs, :8080
# serves the usual /timeline, /metrics and pprof endpoints plus the
# WebSocket push stream at /ws — subscribe with
# `go run ./cmd/kkt ws localhost:8080`. Durable state checkpoints to
# /tmp/kkt-serve.ckpt every 4 epochs; kill the daemon at any point and
# re-run with `--resume` appended to pick up where it left off.
serve-demo:
	$(GO) run ./cmd/kkt serve --family gnm --n 100000 --m 300000 --graph-seed 1 \
		--seed 1 --shards $$(nproc) --epoch-events 128 --events 16384 \
		--churn tree-deletes=24,deletes=16,inserts=16,weight-changes=8 \
		--checkpoint /tmp/kkt-serve.ckpt --checkpoint-every 4 --obs-listen :8080

clean:
	rm -f BENCH_ci.json BENCH_suite.json BENCH_micro_ci.json BENCH_1m.json BENCH_history.md \
		SCALING_sweep.json SCALING_ci.json SCALING_history.md
