GO ?= go

.PHONY: build test race vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) run ./cmd/kkt bench --trials 8 --seed 1 --out BENCH_suite.json

clean:
	rm -f BENCH_*.json
